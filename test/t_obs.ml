(* The observability subsystem: JSON tree render/parse, the metrics
   registry, per-transaction spans, the structured trace sinks, and the
   end-to-end acceptance contract — a chaos run over the fast-commutative
   workload exercises the fast path and collision resolution, every
   committed transaction has a sim-time-ordered span tree, and two
   same-seed runs render byte-identical observability JSON. *)

module Json = Mdcc_obs.Json
module Registry = Mdcc_obs.Registry
module Span = Mdcc_obs.Span
module Obs = Mdcc_obs.Obs
module Trace = Mdcc_sim.Trace
module Engine = Mdcc_sim.Engine
module Runner = Mdcc_chaos.Runner
module Nemesis = Mdcc_chaos.Nemesis

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let index_of ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = if i + nl > hl then -1 else if String.sub hay i nl = needle then i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_render () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.Str "x\"y\n");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
      ]
  in
  Alcotest.(check string)
    "compact render" "{\"a\":1,\"b\":\"x\\\"y\\n\",\"c\":[true,null,1.5]}" (Json.to_string j)

let test_json_float_forms () =
  Alcotest.(check string) "integral float keeps .0" "[1.0]"
    (Json.to_string (Json.List [ Json.Float 1.0 ]));
  Alcotest.(check string) "nan renders as null" "[null]"
    (Json.to_string (Json.List [ Json.Float Float.nan ]));
  Alcotest.(check string) "infinity renders as null" "[null]"
    (Json.to_string (Json.List [ Json.Float Float.infinity ]))

let test_json_roundtrip () =
  let src =
    "{\"counters\":{\"x\":3},\"ls\":[1,2.5,\"s\",true,false,null],\"nested\":{\"k\":[{}]}}"
  in
  match Json.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t -> Alcotest.(check string) "render(parse(s)) = s" src (Json.to_string t)

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error e -> Alcotest.(check bool) "error mentions offset" true (String.length e > 0)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  bad "truth"

let test_json_member () =
  match Json.parse "{\"a\":{\"b\":7}}" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
    (match Json.member "a" t with
    | Some inner ->
      Alcotest.(check bool) "nested member" true (Json.member "b" inner = Some (Json.Int 7))
    | None -> Alcotest.fail "member a missing");
    Alcotest.(check bool) "absent member" true (Json.member "zz" t = None)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_counters_gauges () =
  let r = Registry.create () in
  Registry.incr r "c";
  Registry.incr r ~by:4 "c";
  Registry.incr r "a";
  Registry.set_gauge r "g" 7;
  Registry.add_gauge r "g" (-2);
  Alcotest.(check int) "counter" 5 (Registry.counter r "c");
  Alcotest.(check int) "untouched counter" 0 (Registry.counter r "zzz");
  Alcotest.(check int) "gauge" 5 (Registry.gauge r "g");
  Registry.observe r "h" 10.0;
  Registry.observe r "h" 20.0;
  Alcotest.(check int) "hist count" 2 (Registry.hist_count r "h");
  (* Counters render in sorted name order regardless of insertion order. *)
  let s = Json.to_string (Registry.to_json r) in
  let ia = index_of ~needle:"\"a\":" s and ic = index_of ~needle:"\"c\":" s in
  Alcotest.(check bool) "a before c in render" true (ia >= 0 && ic >= 0 && ia < ic)

let test_registry_json_shape () =
  let r = Registry.create () in
  Registry.incr r "n";
  Registry.observe r "lat" 5.0;
  match Json.parse (Json.to_string (Registry.to_json r)) with
  | Error e -> Alcotest.failf "registry json does not parse: %s" e
  | Ok t ->
    Alcotest.(check bool) "has counters" true (Json.member "counters" t <> None);
    Alcotest.(check bool) "has gauges" true (Json.member "gauges" t <> None);
    let h =
      match Json.member "histograms" t with
      | Some hs -> Json.member "lat" hs
      | None -> None
    in
    (match h with
    | Some hist ->
      List.iter
        (fun f ->
          Alcotest.(check bool) ("histogram has " ^ f) true (Json.member f hist <> None))
        [ "count"; "mean"; "min"; "max"; "p50"; "p95"; "p99" ]
    | None -> Alcotest.fail "histogram \"lat\" missing")

(* ------------------------------------------------------------------ *)
(* Span                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_basics () =
  let s = Span.create () in
  Span.begin_txn s ~txid:"t1" ~at:1.0;
  Span.event s ~txid:"t1" ~at:2.0 ~node:5 ~name:"propose" ~detail:"fast" ();
  Span.event s ~txid:"t1" ~at:3.0 ~node:0 ~name:"vote" ~key:"item/1" ~detail:"fast acc" ();
  Span.event s ~txid:"t2" ~at:9.0 ~node:1 ~name:"learn" ~detail:"accepted" ();
  Alcotest.(check (list string)) "txids sorted" [ "t1"; "t2" ] (Span.txids s);
  let evs = Span.events s ~txid:"t1" in
  Alcotest.(check int) "two events" 2 (List.length evs);
  Alcotest.(check string) "append order" "propose" (List.hd evs).Span.ev_name;
  Alcotest.(check (list string)) "unknown txid empty" []
    (List.map (fun e -> e.Span.ev_name) (Span.events s ~txid:"zzz"))

let test_span_json_groups_keys () =
  let s = Span.create () in
  Span.begin_txn s ~txid:"t1" ~at:1.0;
  Span.event s ~txid:"t1" ~at:2.0 ~node:5 ~name:"propose" ~detail:"fast" ();
  Span.event s ~txid:"t1" ~at:3.0 ~node:0 ~name:"vote" ~key:"b" ~detail:"acc" ();
  Span.event s ~txid:"t1" ~at:3.5 ~node:1 ~name:"vote" ~key:"a" ~detail:"acc" ();
  let j = Span.txn_to_json s ~txid:"t1" in
  Alcotest.(check bool) "txid field" true (Json.member "txid" j = Some (Json.Str "t1"));
  Alcotest.(check bool) "begin field" true (Json.member "begin" j = Some (Json.Float 1.0));
  let keys =
    match Json.member "keys" j with
    | Some ks ->
      List.filter_map (fun k -> Json.member "key" k) (Json.to_list ks)
    | None -> []
  in
  Alcotest.(check bool) "keys sorted" true (keys = [ Json.Str "a"; Json.Str "b" ])

(* ------------------------------------------------------------------ *)
(* Trace sinks                                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_line_sink () =
  let engine = Engine.create ~seed:1 in
  let lines = ref [] in
  let was = Trace.enabled () in
  Trace.set_sink (fun l -> lines := l :: !lines);
  Trace.enable ();
  Trace.emit engine ~tag:"t_obs" "hello %d" 42;
  Trace.reset_sink ();
  if not was then Trace.disable ();
  match !lines with
  | [ line ] ->
    Alcotest.(check bool) "rendered line carries the body" true
      (contains ~needle:"hello 42" line)
  | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls)

let test_trace_event_sink_without_enable () =
  (* The structured sink must receive events even while line tracing is
     off — collectors must not force verbose logging on. *)
  let engine = Engine.create ~seed:1 in
  let events = ref [] in
  Alcotest.(check bool) "tracing disabled" false (Trace.enabled ());
  Trace.set_event_sink (fun ev -> events := ev :: !events);
  Trace.emit engine ~tag:"t_obs" "structured %s" "path";
  Trace.reset_event_sink ();
  Trace.emit engine ~tag:"t_obs" "dropped after reset";
  match !events with
  | [ ev ] ->
    Alcotest.(check string) "source tag" "t_obs" ev.Trace.source;
    Alcotest.(check string) "body" "structured path" ev.Trace.body;
    Alcotest.(check (float 1e-9)) "virtual timestamp" 0.0 ev.Trace.at
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Acceptance: the chaos run contract                                  *)
(* ------------------------------------------------------------------ *)

let acceptance_spec = Runner.spec ~seed:1 ~scenario:Nemesis.clean ~workload:Runner.Mixed ()

let counter_of report name =
  match Json.member "counters" (Obs.metrics_json report.Runner.r_obs) with
  | Some cs -> ( match Json.member name cs with Some (Json.Int n) -> n | _ -> 0)
  | None -> 0

let test_chaos_counters () =
  let r = Runner.run acceptance_spec in
  Alcotest.(check bool) "run is clean" true (Runner.ok r);
  Alcotest.(check bool) "fast commits happened" true (counter_of r "fast_commit" > 0);
  Alcotest.(check bool) "collisions were resolved" true (counter_of r "collision_resolved" > 0)

let test_chaos_span_ordering () =
  let r = Runner.run acceptance_spec in
  let spans =
    match Obs.spans r.Runner.r_obs with
    | Some s -> s
    | None -> Alcotest.fail "chaos run has no span store"
  in
  let txids = Span.txids spans in
  Alcotest.(check bool) "every submitted txn has a span" true
    (List.length txids >= r.Runner.r_submitted);
  List.iter
    (fun txid ->
      let evs = Span.events spans ~txid in
      Alcotest.(check bool) (txid ^ " has events") true (evs <> []);
      ignore
        (List.fold_left
           (fun prev ev ->
             if ev.Span.ev_at < prev then
               Alcotest.failf "span %s out of sim-time order (%.2f after %.2f)" txid
                 ev.Span.ev_at prev;
             ev.Span.ev_at)
           Float.neg_infinity evs))
    txids

let test_chaos_obs_determinism () =
  let render () =
    let r = Runner.run acceptance_spec in
    Json.to_string (Obs.metrics_json r.Runner.r_obs)
    ^ "\n"
    ^ Json.to_string (Obs.spans_json r.Runner.r_obs)
  in
  Alcotest.(check string) "byte-identical metrics+span JSON" (render ()) (render ())

let suite =
  [
    Alcotest.test_case "json render" `Quick test_json_render;
    Alcotest.test_case "json float forms" `Quick test_json_float_forms;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json member" `Quick test_json_member;
    Alcotest.test_case "registry counters and gauges" `Quick test_registry_counters_gauges;
    Alcotest.test_case "registry json shape" `Quick test_registry_json_shape;
    Alcotest.test_case "span basics" `Quick test_span_basics;
    Alcotest.test_case "span json key groups" `Quick test_span_json_groups_keys;
    Alcotest.test_case "trace line sink" `Quick test_trace_line_sink;
    Alcotest.test_case "trace event sink without enable" `Quick test_trace_event_sink_without_enable;
    Alcotest.test_case "chaos run counters" `Quick test_chaos_counters;
    Alcotest.test_case "chaos span ordering" `Quick test_chaos_span_ordering;
    Alcotest.test_case "chaos obs determinism" `Quick test_chaos_obs_determinism;
  ]
