(* The observability subsystem: JSON tree render/parse, the metrics
   registry, per-transaction spans, the structured trace sinks, and the
   end-to-end acceptance contract — a chaos run over the fast-commutative
   workload exercises the fast path and collision resolution, every
   committed transaction has a sim-time-ordered span tree, and two
   same-seed runs render byte-identical observability JSON. *)

module Json = Mdcc_obs.Json
module Registry = Mdcc_obs.Registry
module Span = Mdcc_obs.Span
module Obs = Mdcc_obs.Obs
module Prof = Mdcc_obs.Prof
module Prometheus = Mdcc_obs.Prometheus
module Trace = Mdcc_sim.Trace
module Engine = Mdcc_sim.Engine
module Runner = Mdcc_chaos.Runner
module Nemesis = Mdcc_chaos.Nemesis
module Sweep = Mdcc_chaos.Sweep

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let index_of ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = if i + nl > hl then -1 else if String.sub hay i nl = needle then i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_render () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.Str "x\"y\n");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
      ]
  in
  Alcotest.(check string)
    "compact render" "{\"a\":1,\"b\":\"x\\\"y\\n\",\"c\":[true,null,1.5]}" (Json.to_string j)

let test_json_float_forms () =
  Alcotest.(check string) "integral float keeps .0" "[1.0]"
    (Json.to_string (Json.List [ Json.Float 1.0 ]));
  Alcotest.(check string) "nan renders as null" "[null]"
    (Json.to_string (Json.List [ Json.Float Float.nan ]));
  Alcotest.(check string) "infinity renders as null" "[null]"
    (Json.to_string (Json.List [ Json.Float Float.infinity ]))

let test_json_roundtrip () =
  let src =
    "{\"counters\":{\"x\":3},\"ls\":[1,2.5,\"s\",true,false,null],\"nested\":{\"k\":[{}]}}"
  in
  match Json.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t -> Alcotest.(check string) "render(parse(s)) = s" src (Json.to_string t)

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error e -> Alcotest.(check bool) "error mentions offset" true (String.length e > 0)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  bad "truth"

let test_json_member () =
  match Json.parse "{\"a\":{\"b\":7}}" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
    (match Json.member "a" t with
    | Some inner ->
      Alcotest.(check bool) "nested member" true (Json.member "b" inner = Some (Json.Int 7))
    | None -> Alcotest.fail "member a missing");
    Alcotest.(check bool) "absent member" true (Json.member "zz" t = None)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_counters_gauges () =
  let r = Registry.create () in
  Registry.incr r "c";
  Registry.incr r ~by:4 "c";
  Registry.incr r "a";
  Registry.set_gauge r "g" 7;
  Registry.add_gauge r "g" (-2);
  Alcotest.(check int) "counter" 5 (Registry.counter r "c");
  Alcotest.(check int) "untouched counter" 0 (Registry.counter r "zzz");
  Alcotest.(check int) "gauge" 5 (Registry.gauge r "g");
  Registry.observe r "h" 10.0;
  Registry.observe r "h" 20.0;
  Alcotest.(check int) "hist count" 2 (Registry.hist_count r "h");
  (* Counters render in sorted name order regardless of insertion order. *)
  let s = Json.to_string (Registry.to_json r) in
  let ia = index_of ~needle:"\"a\":" s and ic = index_of ~needle:"\"c\":" s in
  Alcotest.(check bool) "a before c in render" true (ia >= 0 && ic >= 0 && ia < ic)

let test_registry_json_shape () =
  let r = Registry.create () in
  Registry.incr r "n";
  Registry.observe r "lat" 5.0;
  match Json.parse (Json.to_string (Registry.to_json r)) with
  | Error e -> Alcotest.failf "registry json does not parse: %s" e
  | Ok t ->
    Alcotest.(check bool) "has counters" true (Json.member "counters" t <> None);
    Alcotest.(check bool) "has gauges" true (Json.member "gauges" t <> None);
    let h =
      match Json.member "histograms" t with
      | Some hs -> Json.member "lat" hs
      | None -> None
    in
    (match h with
    | Some hist ->
      List.iter
        (fun f ->
          Alcotest.(check bool) ("histogram has " ^ f) true (Json.member f hist <> None))
        [ "count"; "mean"; "min"; "max"; "p50"; "p95"; "p99" ]
    | None -> Alcotest.fail "histogram \"lat\" missing")

(* Registry.merge edge cases: histogram-name union on empty histograms,
   and gauge last-writer determinism under task-order folding. *)

let test_registry_merge_empty_hist () =
  let src = Registry.create () in
  Registry.ensure_hist src "lat";
  let into = Registry.create () in
  Registry.merge ~into src;
  Alcotest.(check bool) "empty histogram name unions across merge" true
    (List.mem_assoc "lat" (Registry.hist_bindings into));
  Alcotest.(check int) "still no samples" 0 (Registry.hist_count into "lat");
  (* Samples observed after the union land in the pre-created cell. *)
  Registry.observe into "lat" 3.0;
  Alcotest.(check int) "observable after union" 1 (Registry.hist_count into "lat")

let test_registry_merge_gauge_order () =
  let task value =
    let r = Registry.create () in
    Registry.set_gauge r "g" value;
    Registry.incr r ~by:value "c";
    r
  in
  let fold srcs =
    let into = Registry.create () in
    List.iter (fun src -> Registry.merge ~into src) srcs;
    into
  in
  let ab = fold [ task 1; task 2 ] and ba = fold [ task 2; task 1 ] in
  (* Gauges are last-writer-wins in *task order* — the fold order, not
     the domain schedule — so the merged value is a pure function of the
     task list. *)
  Alcotest.(check int) "gauge takes the later task's value" 2 (Registry.gauge ab "g");
  Alcotest.(check int) "reversed task order, reversed winner" 1 (Registry.gauge ba "g");
  Alcotest.(check int) "counters sum regardless of order" 3 (Registry.counter ab "c");
  Alcotest.(check int) "counters sum regardless of order (rev)" 3 (Registry.counter ba "c");
  let again = fold [ task 1; task 2 ] in
  Alcotest.(check string) "same task order renders byte-identically"
    (Json.to_string (Registry.to_json ab))
    (Json.to_string (Registry.to_json again))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_prometheus_render () =
  let r = Registry.create () in
  Registry.incr r ~by:5 "wire.cmd.get";
  Registry.set_gauge r "depth" 3;
  Registry.observe r "lat" 0.05;
  Registry.observe r "lat" 2.0;
  Registry.observe r "lat" 5000.0;
  let s = Prometheus.render r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" needle) true
        (contains ~needle s))
    [
      "# TYPE mdcc_wire_cmd_get_total counter";
      "mdcc_wire_cmd_get_total 5\n";
      "# TYPE mdcc_depth gauge";
      "mdcc_depth 3\n";
      "# TYPE mdcc_lat histogram";
      (* cumulative buckets: 0.05 <= 0.1; 2.0 joins at le=5; +Inf sees all *)
      "mdcc_lat_bucket{le=\"0.1\"} 1\n";
      "mdcc_lat_bucket{le=\"5\"} 2\n";
      "mdcc_lat_bucket{le=\"1000\"} 2\n";
      "mdcc_lat_bucket{le=\"+Inf\"} 3\n";
      "mdcc_lat_sum ";
      "mdcc_lat_count 3\n";
    ];
  (* Kinds render counters -> gauges -> histograms, each kind's families
     in sorted metric-name order, deterministically. *)
  Registry.incr r ~by:1 "another.counter";
  let s = Prometheus.render r in
  let ia = index_of ~needle:"mdcc_another_counter_total" s
  and iw = index_of ~needle:"mdcc_wire_cmd_get_total" s
  and id = index_of ~needle:"mdcc_depth" s
  and il = index_of ~needle:"mdcc_lat" s in
  Alcotest.(check bool) "counters sorted within the kind" true (ia >= 0 && ia < iw);
  Alcotest.(check bool) "counters before gauges before histograms" true
    (iw < id && id < il);
  Alcotest.(check string) "byte-identical re-render" s (Prometheus.render r)

let test_prometheus_escaping () =
  Alcotest.(check string) "metric name sanitized" "mdcc_wire_cmd_get"
    (Prometheus.metric_name "wire.cmd-get");
  Alcotest.(check string) "help escapes backslash and newline" "a\\\\b\\nc"
    (Prometheus.escape_help "a\\b\nc");
  Alcotest.(check string) "label value also escapes quotes" "q\\\"w\\nz"
    (Prometheus.escape_label_value "q\"w\nz");
  (* Keys that collide after sanitization combine rather than emitting an
     illegal duplicate family. *)
  let r = Registry.create () in
  Registry.incr r ~by:1 "a.b";
  Registry.incr r ~by:2 "a_b";
  let s = Prometheus.render r in
  Alcotest.(check bool) "colliding keys sum into one family" true
    (contains ~needle:"mdcc_a_b_total 3\n" s)

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let test_prof_spans () =
  let p = Prof.create () in
  Prof.set_enabled p true;
  let v =
    Prof.span_in p "outer" (fun () ->
        Prof.span_in p "inner" (fun () -> ());
        Prof.span_in p "inner" (fun () -> ());
        Prof.count_in p ~by:3 "widgets";
        42)
  in
  Alcotest.(check int) "span is transparent to the result" 42 v;
  let s = Prof.capture p in
  Alcotest.(check (list string))
    "hierarchical paths, sorted" [ "outer"; "outer/inner" ]
    (List.map (fun ph -> ph.Prof.ph_path) s.Prof.sn_phases);
  let find path = List.find (fun ph -> String.equal ph.Prof.ph_path path) s.Prof.sn_phases in
  Alcotest.(check int) "outer entered once" 1 (find "outer").Prof.ph_count;
  Alcotest.(check int) "inner entered twice" 2 (find "outer/inner").Prof.ph_count;
  Alcotest.(check bool) "inclusive wall nests" true
    ((find "outer").Prof.ph_wall_ms >= (find "outer/inner").Prof.ph_wall_ms);
  Alcotest.(check bool) "self time clamped non-negative" true
    (List.for_all (fun ph -> ph.Prof.ph_self_ms >= 0.0) s.Prof.sn_phases);
  Alcotest.(check (list (pair string int))) "counters" [ ("widgets", 3) ] s.Prof.sn_counters

let test_prof_disabled_is_noop () =
  let p = Prof.create () in
  Alcotest.(check bool) "fresh handle disabled" false (Prof.enabled p);
  let v = Prof.span_in p "outer" (fun () -> Prof.count_in p "c"; 9) in
  Alcotest.(check int) "body still runs" 9 v;
  let s = Prof.capture p in
  Alcotest.(check int) "no phases recorded" 0 (List.length s.Prof.sn_phases);
  Alcotest.(check int) "no counters recorded" 0 (List.length s.Prof.sn_counters)

let test_prof_with_task_and_merge () =
  let task n =
    snd
      (Prof.with_task (fun () ->
           Prof.span "work" (fun () -> Sys.opaque_identity (List.init 100 Fun.id) |> ignore);
           Prof.count ~by:n "items"))
  in
  let a = task 2 and b = task 5 in
  Alcotest.(check bool) "ambient restored to disabled" false (Prof.enabled_ambient ());
  Alcotest.(check bool) "task snapshot includes gc counters" true
    (List.mem_assoc "gc.minor_collections" a.Prof.sn_counters);
  let merged = Prof.merge a b in
  let work = List.find (fun ph -> String.equal ph.Prof.ph_path "work") merged.Prof.sn_phases in
  Alcotest.(check int) "phase counts sum across tasks" 2 work.Prof.ph_count;
  Alcotest.(check int) "counters sum across tasks" 7 (List.assoc "items" merged.Prof.sn_counters);
  Alcotest.(check bool) "merge with empty is identity on phases" true
    (Prof.merge Prof.empty_snapshot a = a);
  Alcotest.(check bool) "attributed time is the self-time sum" true
    (Prof.attributed_ms merged >= Prof.attributed_ms a)

(* --profile must be a pure side channel: the profiled sweep's reports and
   obs export render byte-identically to the unprofiled sweep's. *)
let test_profile_byte_identity () =
  let specs = Sweep.specs ~seeds:2 ~scenarios:[ Nemesis.clean ] () in
  let render rs =
    String.concat "\n" (List.map Runner.report_to_json rs)
    ^ "\n"
    ^ Json.to_string (Sweep.obs_doc rs)
  in
  let plain = Sweep.run ~jobs:2 specs in
  let profiled, snapshot = Sweep.run_profiled ~jobs:2 specs in
  Alcotest.(check string) "reports identical with and without --profile" (render plain)
    (render profiled);
  let run_one =
    List.find
      (fun ph -> String.equal ph.Prof.ph_path "sweep.run_one")
      snapshot.Prof.sn_phases
  in
  Alcotest.(check int) "one profiled span per run" (List.length specs) run_one.Prof.ph_count;
  Alcotest.(check int) "pool task counter merged in" (List.length specs)
    (List.assoc "pool.tasks" snapshot.Prof.sn_counters);
  Alcotest.(check bool) "some wall time attributed" true (Prof.attributed_ms snapshot > 0.0)

(* ------------------------------------------------------------------ *)
(* Span                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_basics () =
  let s = Span.create () in
  Span.begin_txn s ~txid:"t1" ~at:1.0;
  Span.event s ~txid:"t1" ~at:2.0 ~node:5 ~name:"propose" ~detail:"fast" ();
  Span.event s ~txid:"t1" ~at:3.0 ~node:0 ~name:"vote" ~key:"item/1" ~detail:"fast acc" ();
  Span.event s ~txid:"t2" ~at:9.0 ~node:1 ~name:"learn" ~detail:"accepted" ();
  Alcotest.(check (list string)) "txids sorted" [ "t1"; "t2" ] (Span.txids s);
  let evs = Span.events s ~txid:"t1" in
  Alcotest.(check int) "two events" 2 (List.length evs);
  Alcotest.(check string) "append order" "propose" (List.hd evs).Span.ev_name;
  Alcotest.(check (list string)) "unknown txid empty" []
    (List.map (fun e -> e.Span.ev_name) (Span.events s ~txid:"zzz"))

let test_span_json_groups_keys () =
  let s = Span.create () in
  Span.begin_txn s ~txid:"t1" ~at:1.0;
  Span.event s ~txid:"t1" ~at:2.0 ~node:5 ~name:"propose" ~detail:"fast" ();
  Span.event s ~txid:"t1" ~at:3.0 ~node:0 ~name:"vote" ~key:"b" ~detail:"acc" ();
  Span.event s ~txid:"t1" ~at:3.5 ~node:1 ~name:"vote" ~key:"a" ~detail:"acc" ();
  let j = Span.txn_to_json s ~txid:"t1" in
  Alcotest.(check bool) "txid field" true (Json.member "txid" j = Some (Json.Str "t1"));
  Alcotest.(check bool) "begin field" true (Json.member "begin" j = Some (Json.Float 1.0));
  let keys =
    match Json.member "keys" j with
    | Some ks ->
      List.filter_map (fun k -> Json.member "key" k) (Json.to_list ks)
    | None -> []
  in
  Alcotest.(check bool) "keys sorted" true (keys = [ Json.Str "a"; Json.Str "b" ])

(* ------------------------------------------------------------------ *)
(* Trace sinks                                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_line_sink () =
  let engine = Engine.create ~seed:1 in
  let lines = ref [] in
  let was = Trace.enabled () in
  Trace.set_sink (fun l -> lines := l :: !lines);
  Trace.enable ();
  Trace.emit engine ~tag:"t_obs" "hello %d" 42;
  Trace.reset_sink ();
  if not was then Trace.disable ();
  match !lines with
  | [ line ] ->
    Alcotest.(check bool) "rendered line carries the body" true
      (contains ~needle:"hello 42" line)
  | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls)

let test_trace_event_sink_without_enable () =
  (* The structured sink must receive events even while line tracing is
     off — collectors must not force verbose logging on. *)
  let engine = Engine.create ~seed:1 in
  let events = ref [] in
  Alcotest.(check bool) "tracing disabled" false (Trace.enabled ());
  Trace.set_event_sink (fun ev -> events := ev :: !events);
  Trace.emit engine ~tag:"t_obs" "structured %s" "path";
  Trace.reset_event_sink ();
  Trace.emit engine ~tag:"t_obs" "dropped after reset";
  match !events with
  | [ ev ] ->
    Alcotest.(check string) "source tag" "t_obs" ev.Trace.source;
    Alcotest.(check string) "body" "structured path" ev.Trace.body;
    Alcotest.(check (float 1e-9)) "virtual timestamp" 0.0 ev.Trace.at
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Acceptance: the chaos run contract                                  *)
(* ------------------------------------------------------------------ *)

let acceptance_spec = Runner.spec ~seed:1 ~scenario:Nemesis.clean ~workload:Runner.Mixed ()

let counter_of report name =
  match Json.member "counters" (Obs.metrics_json report.Runner.r_obs) with
  | Some cs -> ( match Json.member name cs with Some (Json.Int n) -> n | _ -> 0)
  | None -> 0

let test_chaos_counters () =
  let r = Runner.run acceptance_spec in
  Alcotest.(check bool) "run is clean" true (Runner.ok r);
  Alcotest.(check bool) "fast commits happened" true (counter_of r "fast_commit" > 0);
  Alcotest.(check bool) "collisions were resolved" true (counter_of r "collision_resolved" > 0)

let test_chaos_span_ordering () =
  let r = Runner.run acceptance_spec in
  let spans =
    match Obs.spans r.Runner.r_obs with
    | Some s -> s
    | None -> Alcotest.fail "chaos run has no span store"
  in
  let txids = Span.txids spans in
  Alcotest.(check bool) "every submitted txn has a span" true
    (List.length txids >= r.Runner.r_submitted);
  List.iter
    (fun txid ->
      let evs = Span.events spans ~txid in
      Alcotest.(check bool) (txid ^ " has events") true (evs <> []);
      ignore
        (List.fold_left
           (fun prev ev ->
             if ev.Span.ev_at < prev then
               Alcotest.failf "span %s out of sim-time order (%.2f after %.2f)" txid
                 ev.Span.ev_at prev;
             ev.Span.ev_at)
           Float.neg_infinity evs))
    txids

let test_chaos_obs_determinism () =
  let render () =
    let r = Runner.run acceptance_spec in
    Json.to_string (Obs.metrics_json r.Runner.r_obs)
    ^ "\n"
    ^ Json.to_string (Obs.spans_json r.Runner.r_obs)
  in
  Alcotest.(check string) "byte-identical metrics+span JSON" (render ()) (render ())

let suite =
  [
    Alcotest.test_case "json render" `Quick test_json_render;
    Alcotest.test_case "json float forms" `Quick test_json_float_forms;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json member" `Quick test_json_member;
    Alcotest.test_case "registry counters and gauges" `Quick test_registry_counters_gauges;
    Alcotest.test_case "registry json shape" `Quick test_registry_json_shape;
    Alcotest.test_case "registry merge: empty-histogram union" `Quick test_registry_merge_empty_hist;
    Alcotest.test_case "registry merge: gauge task order" `Quick test_registry_merge_gauge_order;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_render;
    Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
    Alcotest.test_case "profiler span hierarchy" `Quick test_prof_spans;
    Alcotest.test_case "profiler disabled is a no-op" `Quick test_prof_disabled_is_noop;
    Alcotest.test_case "profiler with_task and merge" `Quick test_prof_with_task_and_merge;
    Alcotest.test_case "--profile byte identity" `Quick test_profile_byte_identity;
    Alcotest.test_case "span basics" `Quick test_span_basics;
    Alcotest.test_case "span json key groups" `Quick test_span_json_groups_keys;
    Alcotest.test_case "trace line sink" `Quick test_trace_line_sink;
    Alcotest.test_case "trace event sink without enable" `Quick test_trace_event_sink_without_enable;
    Alcotest.test_case "chaos run counters" `Quick test_chaos_counters;
    Alcotest.test_case "chaos span ordering" `Quick test_chaos_span_ordering;
    Alcotest.test_case "chaos obs determinism" `Quick test_chaos_obs_determinism;
  ]
