(* Shared fixtures for the protocol test suites. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator

let item i = Key.make ~table:"item" ~id:(string_of_int i)

let stock_schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
      { Schema.name = "order"; bounds = []; master_dc = 0 };
    ]

let item_row stock = Value.of_list [ ("stock", Value.Int stock) ]

(* A 5-DC cluster with [items] stock rows pre-loaded. *)
let make_cluster ?(seed = 42) ?(mode = Config.Full) ?(gamma = 100) ?learn_timeout ?txn_timeout
    ?dangling_scan_every ?(maintenance = false) ?master_dc_of ?(partitions = 1) ?(items = 0)
    ?(stock = 100) ?drop_probability () =
  let engine = Engine.create ~seed in
  let config =
    Config.make ~mode ~gamma ?learn_timeout ?txn_timeout ?dangling_scan_every ~replication:5 ()
  in
  let cluster =
    Cluster.create ~engine
      ~spec:(Cluster.Spec.make ?master_dc_of ?drop_probability ~partitions ())
      ~config ~schema:stock_schema ()
  in
  if items > 0 then
    Cluster.load cluster (List.init items (fun i -> (item i, item_row stock)));
  if maintenance then Cluster.start_maintenance cluster;
  (engine, cluster)

let txid =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "t%d" !counter

(* Submit and run the simulation until the outcome callback fires. *)
let run_txn engine cluster ~dc updates =
  let coordinator = Cluster.coordinator cluster ~dc ~rank:0 in
  let result = ref None in
  Coordinator.submit coordinator
    (Txn.make ~id:(txid ()) ~updates)
    (fun outcome -> result := Some outcome);
  Engine.run ~until:(Engine.now engine +. 60_000.0) engine;
  match !result with
  | Some outcome -> outcome
  | None -> Alcotest.fail "transaction never decided"

(* Submit several transactions at once, then run to quiescence. *)
let run_txns engine cluster ~dc updates_list =
  let coordinator = Cluster.coordinator cluster ~dc ~rank:0 in
  let results = Array.make (List.length updates_list) None in
  List.iteri
    (fun i updates ->
      Coordinator.submit coordinator
        (Txn.make ~id:(txid ()) ~updates)
        (fun outcome -> results.(i) <- Some outcome))
    updates_list;
  Engine.run ~until:(Engine.now engine +. 120_000.0) engine;
  Array.to_list results
  |> List.map (function Some o -> o | None -> Alcotest.fail "transaction never decided")

let is_committed = function Txn.Committed -> true | Txn.Aborted _ -> false

let outcome_testable =
  Alcotest.testable Txn.pp_outcome (fun a b ->
      match (a, b) with
      | Txn.Committed, Txn.Committed -> true
      | Txn.Aborted _, Txn.Aborted _ -> true
      | Txn.Committed, Txn.Aborted _ | Txn.Aborted _, Txn.Committed -> false)

let stock_at cluster ~dc i =
  match Cluster.peek cluster ~dc (item i) with
  | Some (v, _) -> Value.get_int v "stock"
  | None -> Alcotest.fail "item missing"
