(* Unit + property tests for the util substrate: PRNG, statistics, tables. *)

module Rng = Mdcc_util.Rng
module Stats = Mdcc_util.Stats
module Table = Mdcc_util.Table

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* Drawing from [a] must not affect [b]'s stream. *)
  let a' = Rng.create 5 in
  let b' = Rng.split a' in
  ignore (Rng.int64 a');
  ignore (Rng.int64 a');
  Alcotest.(check int64) "split stream independent" (Rng.int64 b) (Rng.int64 b')

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "0 <= x < 7" true (x >= 0 && x < 7)
  done

let test_rng_int_in () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r 3 9 in
    Alcotest.(check bool) "3 <= x <= 9" true (x >= 3 && x <= 9)
  done

let test_rng_float_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_rng_bernoulli_frequency () =
  let r = Rng.create 6 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let freq = Float.of_int !hits /. Float.of_int n in
  Alcotest.(check bool) "bernoulli(0.3) ~ 0.3" true (freq > 0.27 && freq < 0.33)

let test_rng_exponential_mean () =
  let r = Rng.create 7 in
  let sum = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. Float.of_int n in
  Alcotest.(check bool) "exponential mean ~ 10" true (mean > 9.0 && mean < 11.0)

let test_rng_sample_distinct () =
  let r = Rng.create 8 in
  for _ = 1 to 100 do
    let xs = Rng.sample_distinct r 5 20 in
    Alcotest.(check int) "5 samples" 5 (List.length xs);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq Int.compare xs));
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20)) xs
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let feq msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_stats_mean_stddev () =
  feq "mean" 3.0 (Stats.mean [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  feq "mean empty" 0.0 (Stats.mean []);
  feq "stddev" (Float.sqrt 2.0) (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  feq "stddev singleton" 0.0 (Stats.stddev [ 42.0 ])

let test_stats_percentile () =
  let sorted = [| 10.0; 20.0; 30.0; 40.0 |] in
  feq "p0" 10.0 (Stats.percentile sorted 0.0);
  feq "p100" 40.0 (Stats.percentile sorted 100.0);
  feq "p50 interpolated" 25.0 (Stats.percentile sorted 50.0)

let test_stats_summary () =
  match Stats.summarize (List.init 100 (fun i -> Float.of_int (i + 1))) with
  | None -> Alcotest.fail "summarize returned None on a non-empty sample"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Stats.count;
    feq "min" 1.0 s.Stats.min;
    feq "max" 100.0 s.Stats.max;
    feq "median" 50.5 s.Stats.p50

let test_stats_summary_empty () =
  Alcotest.(check bool) "empty summarize is None" true (Stats.summarize [] = None);
  Alcotest.(check bool) "empty boxplot is None" true (Stats.boxplot [] = None);
  (* percentile still demands a non-empty sorted array — but totally, via a
     tagged invariant violation rather than a bare Invalid_argument. *)
  Alcotest.(check bool) "empty percentile violates" true
    (try
       ignore (Stats.percentile [||] 50.0);
       false
     with Mdcc_util.Invariant.Violation _ -> true)

let test_stats_cdf () =
  let cdf = Stats.cdf ~points:4 [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check int) "4 points" 4 (List.length cdf);
  let vs = List.map fst cdf in
  Alcotest.(check (list (float 1e-9))) "sorted values" [ 1.0; 2.0; 3.0; 4.0 ] vs;
  let last_f = snd (List.nth cdf 3) in
  feq "cdf ends at 1" 1.0 last_f;
  Alcotest.(check (list (float 1e-9))) "empty cdf" [] (List.map fst (Stats.cdf ~points:5 []))

let force_boxplot samples =
  match Stats.boxplot samples with
  | Some b -> b
  | None -> Alcotest.fail "boxplot returned None on a non-empty sample"

let test_stats_boxplot () =
  let b = force_boxplot (List.init 11 (fun i -> Float.of_int i)) in
  feq "median" 5.0 b.Stats.median;
  feq "q1" 2.5 b.Stats.q1;
  feq "q3" 7.5 b.Stats.q3;
  Alcotest.(check int) "no outliers" 0 b.Stats.outliers;
  feq "whiskers reach extremes" 0.0 b.Stats.whisker_lo;
  feq "whiskers reach extremes (hi)" 10.0 b.Stats.whisker_hi;
  let b2 = force_boxplot (1000.0 :: List.init 20 (fun i -> Float.of_int i)) in
  Alcotest.(check int) "one outlier" 1 b2.Stats.outliers;
  (* The upper whisker is the *largest in-fence sample*, not merely some
     value below the outlier (the old scan stopped at the first sample
     above the fence, leaving the whisker on the outlier side of it). *)
  feq "upper whisker on largest in-fence sample" 19.0 b2.Stats.whisker_hi

let test_stats_boxplot_all_outliers_high () =
  (* A cluster (1..20) plus three far-flung points: the whisker must land on
     the cluster's edge, skipping over *every* outlier — the old scan only
     stepped below the single largest sample. *)
  let samples = 500.0 :: 600.0 :: 700.0 :: List.init 20 (fun i -> Float.of_int (i + 1)) in
  let b = force_boxplot samples in
  Alcotest.(check int) "three outliers" 3 b.Stats.outliers;
  feq "whisker_hi on in-fence edge" 20.0 b.Stats.whisker_hi;
  feq "whisker_lo on minimum" 1.0 b.Stats.whisker_lo

let test_stats_histogram () =
  let counts = Stats.histogram ~buckets:[| 10.0; 20.0 |] [ 5.0; 15.0; 25.0; 9.0; 20.0 ] in
  Alcotest.(check (array int)) "bucketed" [| 2; 2; 1 |] counts

let test_stats_time_series () =
  let buckets =
    Stats.time_series ~width:10.0 [ (1.0, 4.0); (5.0, 6.0); (15.0, 10.0); (25.0, 2.0) ]
  in
  Alcotest.(check int) "3 buckets" 3 (List.length buckets);
  let b0 = List.nth buckets 0 in
  feq "bucket mean" 5.0 b0.Stats.mean_v;
  Alcotest.(check int) "bucket count" 2 b0.Stats.n

let test_table_render () =
  let s = Table.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines)

let test_invariant_violate () =
  let seen = ref [] in
  Mdcc_util.Invariant.set_sink (fun v -> seen := v :: !seen);
  let raised =
    try
      Mdcc_util.Invariant.violate ~node:3 ~context:"T_util.test" "bad value %d" 42
    with Mdcc_util.Invariant.Violation v ->
      Alcotest.(check string) "context" "T_util.test" v.Mdcc_util.Invariant.context;
      Alcotest.(check (option int)) "node" (Some 3) v.Mdcc_util.Invariant.node;
      Alcotest.(check string) "message" "bad value 42" v.Mdcc_util.Invariant.message;
      true
  in
  Mdcc_util.Invariant.reset_sink ();
  Alcotest.(check bool) "violation raised" true raised;
  Alcotest.(check int) "sink observed it" 1 (List.length !seen);
  Alcotest.(check bool) "to_string names the node and context" true
    (match !seen with
    | [ v ] ->
      let s = Mdcc_util.Invariant.to_string v in
      Alcotest.(check string) "printable" s s;
      String.length s > 0
    | _ -> false)

let test_invariant_require () =
  (* A true condition is free; a false one fires. *)
  Mdcc_util.Invariant.require ~context:"T_util.require" true "unused %s" "arg";
  Alcotest.(check bool) "false condition raises" true
    (try
       Mdcc_util.Invariant.require ~context:"T_util.require" false "boom";
       false
     with Mdcc_util.Invariant.Violation _ -> true)

(* Property: percentile is monotone in p. *)
let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_range 0.0 1000.0)) (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (samples, (p1, p2)) ->
      QCheck.assume (samples <> []);
      let arr = Array.of_list samples in
      Array.sort Float.compare arr;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile arr lo <= Stats.percentile arr hi)

(* Property: mean lies within [min, max]. *)
let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun samples ->
      QCheck.assume (samples <> []);
      let m = Stats.mean samples in
      let lo = List.fold_left Float.min Float.infinity samples in
      let hi = List.fold_left Float.max Float.neg_infinity samples in
      m >= lo -. 1e-6 && m <= hi +. 1e-6)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in bounds" `Quick test_rng_int_in;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng bernoulli frequency" `Quick test_rng_bernoulli_frequency;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng sample_distinct" `Quick test_rng_sample_distinct;
    Alcotest.test_case "rng shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats empty samples are total" `Quick test_stats_summary_empty;
    Alcotest.test_case "stats cdf" `Quick test_stats_cdf;
    Alcotest.test_case "stats boxplot" `Quick test_stats_boxplot;
    Alcotest.test_case "stats boxplot whisker vs outliers" `Quick test_stats_boxplot_all_outliers_high;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "stats time series" `Quick test_stats_time_series;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "invariant violate" `Quick test_invariant_violate;
    Alcotest.test_case "invariant require" `Quick test_invariant_require;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
  ]
