let () =
  Alcotest.run "mdcc"
    [
      ("util", T_util.suite);
      ("sim", T_sim.suite);
      ("paxos", T_paxos.suite);
      ("consensus", T_consensus.suite);
      ("storage", T_storage.suite);
      ("rstate", T_rstate.suite);
      ("protocol", T_protocol.suite);
      ("recovery", T_recovery.suite);
      ("stress", T_stress.suite);
      ("reads", T_reads.suite);
      ("serializable", T_serializable.suite);
      ("extensions", T_extensions.suite);
      ("core-units", T_core_units.suite);
      ("stats", T_stats.suite);
      ("sql", T_sql.suite);
      ("edge", T_edge.suite);
      ("baselines", T_baselines.suite);
      ("workload", T_workload.suite);
      ("chaos", T_chaos.suite);
      ("shard", T_shard.suite);
      ("obs", T_obs.suite);
      ("pool", T_pool.suite);
      ("lint", T_lint.suite);
      ("wire", T_wire.suite);
    ]
