(* The chaos subsystem: checker verdicts on hand-written known-bad
   histories, runner determinism, a random-nemesis smoke sweep, and
   planted-bug detection (shrunken fast quorum must be caught). *)

open Mdcc_storage
module History = Mdcc_core.History
module Checker = Mdcc_chaos.Checker
module Nemesis = Mdcc_chaos.Nemesis
module Runner = Mdcc_chaos.Runner
module Baseline = Mdcc_chaos.Baseline
module Obs = Mdcc_obs.Obs
module Registry = Mdcc_obs.Registry

let key id = Key.make ~table:"item" ~id
let stock n = Value.of_list [ ("stock", Value.Int n) ]

let history evs =
  let h = History.create () in
  List.iter (History.record h) evs;
  h

let invariants vs =
  List.sort_uniq String.compare (List.map (fun v -> v.Checker.invariant) vs)

let check_has name evs inv =
  let vs = Checker.check (history evs) in
  Alcotest.(check bool) (name ^ " flags " ^ inv) true (List.mem inv (invariants vs))

let submitted ?(time = 0.0) txn = History.Submitted { time; coordinator = 0; txn }
let decided ?(time = 10.0) txid outcome = History.Decided { time; txid; outcome }

let applied ?(time = 20.0) ?(node = 0) txid k version value =
  History.Applied { time; node; txid; key = k; version; value }

let voided ?(time = 20.0) ?(node = 0) txid k = History.Voided { time; node; txid; key = k }

let write ?(value = stock 9) k vread = (k, Update.Physical { vread; value })
let guard k vread = (k, Update.Read_guard { vread })

(* A well-behaved pair of consecutive writers must pass every invariant. *)
let test_clean_history () =
  let k = key "1" in
  let t1 = Txn.make ~id:"t1" ~updates:[ write k 1 ] in
  let t2 = Txn.make ~id:"t2" ~updates:[ write k 2 ] in
  let vs =
    Checker.check
      (history
         [
           submitted t1;
           decided "t1" Txn.Committed;
           applied "t1" k 2 (stock 9);
           submitted t2;
           decided "t2" Txn.Committed;
           applied "t2" k 3 (stock 9);
         ])
  in
  Alcotest.(check (list string)) "no violations" [] (invariants vs)

(* Two committed writers from the same read version overwrote each other. *)
let test_lost_update_flagged () =
  let k = key "1" in
  let t1 = Txn.make ~id:"t1" ~updates:[ write k 1 ] in
  let t2 = Txn.make ~id:"t2" ~updates:[ write k 1 ] in
  check_has "double write"
    [
      submitted t1;
      decided "t1" Txn.Committed;
      applied "t1" k 2 (stock 9);
      submitted t2;
      decided "t2" Txn.Committed;
      applied ~node:1 "t2" k 2 (stock 8);
    ]
    "lost-update"

(* A pure anti-dependency cycle: t1 reads a, writes b; t2 reads b, writes a.
   No key is written twice from the same version, yet no serial order can
   place both reads before the conflicting writes. *)
let test_conflict_cycle_flagged () =
  let a = key "a" and b = key "b" in
  let t1 = Txn.make ~id:"t1" ~updates:[ guard a 1; write b 1 ] in
  let t2 = Txn.make ~id:"t2" ~updates:[ guard b 1; write a 1 ] in
  let evs =
    [
      submitted t1;
      decided "t1" Txn.Committed;
      applied "t1" b 2 (stock 9);
      submitted t2;
      decided "t2" Txn.Committed;
      applied ~node:1 "t2" a 2 (stock 9);
    ]
  in
  check_has "rw cycle" evs "serializability";
  let vs = Checker.check (history evs) in
  Alcotest.(check bool) "not a lost update" false (List.mem "lost-update" (invariants vs))

(* A replica-visible state breaching the schema bound (stock >= 0). *)
let test_demarcation_flagged () =
  let k = key "1" in
  let t1 = Txn.make ~id:"t1" ~updates:[ (k, Update.Delta [ ("stock", -70) ]) ] in
  let bounds _ = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ] in
  let vs =
    Checker.check ~bounds
      (history
         [ submitted t1; decided "t1" Txn.Committed; applied "t1" k 2 (stock (-10)) ])
  in
  Alcotest.(check bool) "flags demarcation" true (List.mem "demarcation" (invariants vs))

(* One option executed while a sibling was voided: a torn transaction. *)
let test_atomic_visibility_flagged () =
  let a = key "a" and b = key "b" in
  let t1 = Txn.make ~id:"t1" ~updates:[ write a 1; write b 1 ] in
  check_has "torn txn"
    [ submitted t1; applied "t1" a 2 (stock 9); voided ~node:1 "t1" b ]
    "atomic-visibility"

(* A committed transaction read a version nobody ever installed. *)
let test_read_committed_flagged () =
  let k = key "1" in
  let t1 = Txn.make ~id:"t1" ~updates:[ write k 7 ] in
  check_has "phantom read"
    [ submitted t1; decided "t1" Txn.Committed; applied "t1" k 8 (stock 9) ]
    "read-committed"

(* The same seed must reproduce the same fault schedule and history. *)
let test_runner_determinism () =
  let spec = Runner.spec ~seed:7 ~scenario:Nemesis.random_faults () in
  let r1 = Runner.run spec in
  let r2 = Runner.run spec in
  Alcotest.(check string)
    "same fault schedule"
    (Nemesis.schedule_to_string r1.Runner.r_schedule)
    (Nemesis.schedule_to_string r2.Runner.r_schedule);
  Alcotest.(check int) "same history length" r1.Runner.r_events r2.Runner.r_events;
  Alcotest.(check int) "same commits" r1.Runner.r_committed r2.Runner.r_committed;
  Alcotest.(check int) "same aborts" r1.Runner.r_aborted r2.Runner.r_aborted

(* The determinism contract, end to end: two identical sweeps must render
   byte-identical JSON reports.  This is strictly stronger than the
   field-by-field check above — any surviving hash-order iteration in the
   engine, checker, or report renderer shows up here as a diff. *)
let test_sweep_json_determinism () =
  let sweep () =
    List.map
      (fun seed ->
        Runner.report_to_json (Runner.run (Runner.spec ~seed ~scenario:Nemesis.random_faults ())))
      [ 3; 4; 5 ]
    |> String.concat "\n"
  in
  Alcotest.(check string) "byte-identical sweep JSON" (sweep ()) (sweep ())

(* Random-nemesis smoke sweep: 20 seeds, every history must check clean. *)
let test_smoke_sweep () =
  for seed = 1 to 20 do
    let r = Runner.run (Runner.spec ~seed ~scenario:Nemesis.random_faults ()) in
    if not (Runner.ok r) then
      Alcotest.failf "seed %d: %s" seed (Runner.report_to_string ~verbose:true r);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: all transactions decided" seed)
      0 r.Runner.r_undecided
  done

(* Shrinking the fast quorum to 3 of 5 breaks quorum intersection; the
   checker must catch the resulting violations within a small sweep.
   (Seed 10 under the clean scenario is a known catching run; sweeping a
   few seeds keeps the test robust to workload-timing drift.) *)
let test_planted_bug_caught () =
  let caught = ref false in
  let seed = ref 1 in
  while (not !caught) && !seed <= 20 do
    let r =
      Runner.run
        (Runner.spec ~seed:!seed ~scenario:Nemesis.clean ~fast_quorum_override:3 ())
    in
    if not (Runner.ok r) then caught := true;
    incr seed
  done;
  Alcotest.(check bool) "planted fast-quorum bug caught" true !caught

(* Anti-entropy regression at a pinned seed: torn_broadcast cuts the
   app->remote-storage links between two DCs in both pairings, so a
   replica reaches the same version as its peers with a different applied
   delta set.  Seed 6 is a known divergence-provoking run: the sweep must
   detect the divergence, replay the missing deltas, and end with no
   replica pair still marked diverged — alongside a clean checker
   verdict. *)
let test_torn_broadcast_repair () =
  let r = Runner.run (Runner.spec ~seed:6 ~scenario:Nemesis.torn_broadcast ()) in
  if not (Runner.ok r) then
    Alcotest.failf "torn_broadcast seed 6: %s" (Runner.report_to_string ~verbose:true r);
  let reg = Obs.registry r.Runner.r_obs in
  Alcotest.(check bool) "divergence provoked" true
    (Registry.counter reg "antientropy_divergence" > 0);
  Alcotest.(check bool) "repair fired" true (Registry.counter reg "antientropy_repair" > 0);
  Alcotest.(check int) "no replica left diverged" 0 (Registry.gauge reg "diverged_replicas")

(* The baselines keep the checker honest: quorum writes (blind LWW, cannot
   abort) must trip lost-update on its contended run, while 2PC must come
   back with no violations at all. *)
let test_baseline_canary () =
  let qw = Option.get (Baseline.protocol_named "qw-3") in
  let r = Baseline.run ~txns:30 ~seed:1 qw in
  Alcotest.(check bool) "qw-3 trips lost-update and nothing unexpected" true (Baseline.ok r);
  let tpc = Option.get (Baseline.protocol_named "2pc") in
  let r2 = Baseline.run ~txns:30 ~seed:1 tpc in
  Alcotest.(check bool) "2pc is violation-free" true
    (Baseline.ok r2 && r2.Baseline.b_violations = [])

let suite =
  [
    Alcotest.test_case "clean history passes" `Quick test_clean_history;
    Alcotest.test_case "lost update flagged" `Quick test_lost_update_flagged;
    Alcotest.test_case "conflict cycle flagged" `Quick test_conflict_cycle_flagged;
    Alcotest.test_case "demarcation breach flagged" `Quick test_demarcation_flagged;
    Alcotest.test_case "atomic visibility flagged" `Quick test_atomic_visibility_flagged;
    Alcotest.test_case "read committed flagged" `Quick test_read_committed_flagged;
    Alcotest.test_case "chaos runner determinism" `Quick test_runner_determinism;
    Alcotest.test_case "sweep JSON determinism" `Quick test_sweep_json_determinism;
    Alcotest.test_case "random nemesis smoke sweep" `Slow test_smoke_sweep;
    Alcotest.test_case "planted bug caught" `Slow test_planted_bug_caught;
    Alcotest.test_case "torn broadcast repaired (pinned seed)" `Quick test_torn_broadcast_repair;
    Alcotest.test_case "baseline canary" `Quick test_baseline_canary;
  ]
