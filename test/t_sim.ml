(* Tests of the discrete-event simulator: heap, engine, topology, network. *)

module Event_queue = Mdcc_sim.Event_queue
module Engine = Mdcc_sim.Engine
module Topology = Mdcc_sim.Topology
module Net = Mdcc_sim.Network

let test_heap_ordering () =
  let q = Event_queue.create () in
  let log = ref [] in
  let push at seq = ignore (Event_queue.push q ~at ~seq (fun () -> log := (at, seq) :: !log)) in
  push 5.0 1;
  push 1.0 2;
  push 3.0 3;
  push 1.0 4;
  let rec drain () =
    match Event_queue.pop q with
    | Some e ->
      e.Event_queue.run ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (pair (float 0.0) int)))
    "time order with FIFO ties"
    [ (1.0, 2); (1.0, 4); (3.0, 3); (5.0, 1) ]
    (List.rev !log)

let test_heap_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let e = Event_queue.push q ~at:1.0 ~seq:1 (fun () -> fired := true) in
  Event_queue.cancel q e;
  Alcotest.(check bool) "cancelled popped as none" true (Event_queue.pop q = None);
  Alcotest.(check bool) "never fired" false !fired

(* Cancel-heavy churn (every pushed event is cancelled, as when every
   committed txn cancels its timeout) must not bloat the heap: cancelled
   entries are compacted away once they outnumber live ones, so heap size
   stays within a constant factor of the live count. *)
let test_heap_bounded_under_churn () =
  let q = Event_queue.create () in
  (* A bed of live events that stays in the heap throughout. *)
  for i = 1 to 32 do
    ignore (Event_queue.push q ~at:(1000.0 +. float_of_int i) ~seq:i ignore)
  done;
  let max_size = ref 0 in
  for i = 1 to 10_000 do
    let ev = Event_queue.push q ~at:(float_of_int i) ~seq:(32 + i) ignore in
    Event_queue.cancel q ev;
    if Event_queue.size q > !max_size then max_size := Event_queue.size q
  done;
  Alcotest.(check bool)
    (Printf.sprintf "heap stayed bounded (max %d)" !max_size)
    true (!max_size <= 128);
  (* Cancellation is idempotent and the live bed survives intact. *)
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | Some ev ->
      Alcotest.(check bool) "only live events pop" false ev.Event_queue.cancelled;
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all live events survived compaction" 32 !count

(* Compaction must not disturb pop order: interleave pushes and cancels,
   then check the survivors still drain in (at, seq) order. *)
let test_heap_compaction_preserves_order () =
  let q = Event_queue.create () in
  let rng = Mdcc_util.Rng.create 5 in
  let live = ref [] in
  for i = 1 to 2_000 do
    let at = Mdcc_util.Rng.float rng 1000.0 in
    let ev = Event_queue.push q ~at ~seq:i ignore in
    if Mdcc_util.Rng.float rng 1.0 < 0.7 then Event_queue.cancel q ev
    else live := (at, i) :: !live
  done;
  let expected = List.sort compare (List.rev !live) in
  let popped = ref [] in
  (* Drain through pop_before, the engine's dispatch primitive: the popped
     event's time arrives via the clock cell, not the handle. *)
  let now = { Event_queue.f = 0.0 } in
  let rec drain () =
    let ev = Event_queue.pop_before q ~limit:Float.infinity ~now in
    if not (Event_queue.is_dummy ev) then begin
      popped := (now.Event_queue.f, ev.Event_queue.seq) :: !popped;
      drain ()
    end
  in
  drain ();
  Alcotest.(check (list (pair (float 0.0) int)))
    "survivors pop in (at, seq) order" expected (List.rev !popped)

let test_heap_many () =
  let q = Event_queue.create () in
  let n = 10_000 in
  let rng = Mdcc_util.Rng.create 11 in
  for i = 1 to n do
    ignore (Event_queue.push q ~at:(Mdcc_util.Rng.float rng 1000.0) ~seq:i ignore)
  done;
  Alcotest.(check int) "size" n (Event_queue.size q);
  let last = ref neg_infinity in
  let count = ref 0 in
  let now = { Event_queue.f = 0.0 } in
  let rec drain () =
    let ev = Event_queue.pop_before q ~limit:Float.infinity ~now in
    if not (Event_queue.is_dummy ev) then begin
      Alcotest.(check bool) "monotone" true (now.Event_queue.f >= !last);
      last := now.Event_queue.f;
      incr count;
      drain ()
    end
  in
  drain ();
  Alcotest.(check int) "all popped" n !count

(* pop_before is the engine's allocation-free dispatch primitive; pin its
   limit semantics at the boundaries. *)
let test_pop_before_limit () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~at:5.0 ~seq:1 ignore);
  ignore (Event_queue.push q ~at:10.0 ~seq:2 ignore);
  let now = { Event_queue.f = 0.0 } in
  (* Limit below the earliest event: nothing pops, clock untouched. *)
  Alcotest.(check bool) "below earliest is dummy" true
    (Event_queue.is_dummy (Event_queue.pop_before q ~limit:4.99 ~now));
  Alcotest.(check (float 0.0)) "clock untouched on dummy" 0.0 now.Event_queue.f;
  Alcotest.(check int) "nothing removed" 2 (Event_queue.size q);
  (* Limit exactly at the event time: inclusive. *)
  let ev = Event_queue.pop_before q ~limit:5.0 ~now in
  Alcotest.(check bool) "limit is inclusive" false (Event_queue.is_dummy ev);
  Alcotest.(check int) "seq of popped" 1 ev.Event_queue.seq;
  Alcotest.(check (float 0.0)) "clock advanced to event time" 5.0 now.Event_queue.f;
  (* Next event is past the limit again. *)
  Alcotest.(check bool) "next beyond limit is dummy" true
    (Event_queue.is_dummy (Event_queue.pop_before q ~limit:5.0 ~now));
  Alcotest.(check (float 0.0)) "clock stays" 5.0 now.Event_queue.f

let test_pop_before_skips_cancelled () =
  (* Cancelled events at the root are discarded without advancing the
     clock, even when their times are within the limit. *)
  let q = Event_queue.create () in
  let e1 = Event_queue.push q ~at:1.0 ~seq:1 ignore in
  let e2 = Event_queue.push q ~at:2.0 ~seq:2 ignore in
  ignore (Event_queue.push q ~at:3.0 ~seq:3 ignore);
  Event_queue.cancel q e1;
  Event_queue.cancel q e2;
  let now = { Event_queue.f = 0.0 } in
  let ev = Event_queue.pop_before q ~limit:10.0 ~now in
  Alcotest.(check int) "first live event" 3 ev.Event_queue.seq;
  Alcotest.(check (float 0.0)) "clock is the live event's time" 3.0 now.Event_queue.f;
  Alcotest.(check bool) "drained" true
    (Event_queue.is_dummy (Event_queue.pop_before q ~limit:10.0 ~now));
  Alcotest.(check int) "heap empty" 0 (Event_queue.size q)

let test_pop_before_empty () =
  let q = Event_queue.create () in
  let now = { Event_queue.f = 42.0 } in
  Alcotest.(check bool) "empty heap is dummy" true
    (Event_queue.is_dummy (Event_queue.pop_before q ~limit:Float.infinity ~now));
  Alcotest.(check (float 0.0)) "clock untouched" 42.0 now.Event_queue.f

let test_engine_ordering_and_clock () =
  let e = Engine.create ~seed:1 in
  let log = ref [] in
  ignore (Engine.schedule e ~after:10.0 (fun () -> log := ("b", Engine.now e) :: !log));
  ignore (Engine.schedule e ~after:5.0 (fun () -> log := ("a", Engine.now e) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.0))))
    "fired in order at right times"
    [ ("a", 5.0); ("b", 10.0) ]
    (List.rev !log)

let test_engine_nested_schedule () =
  let e = Engine.create ~seed:1 in
  let hits = ref 0 in
  ignore
    (Engine.schedule e ~after:1.0 (fun () ->
         incr hits;
         ignore (Engine.schedule e ~after:1.0 (fun () -> incr hits))));
  Engine.run e;
  Alcotest.(check int) "nested event ran" 2 !hits;
  Alcotest.(check (float 0.0)) "clock at last event" 2.0 (Engine.now e)

let test_engine_until () =
  let e = Engine.create ~seed:1 in
  let hits = ref 0 in
  ignore (Engine.schedule e ~after:5.0 (fun () -> incr hits));
  ignore (Engine.schedule e ~after:50.0 (fun () -> incr hits));
  Engine.run ~until:10.0 e;
  Alcotest.(check int) "only first fired" 1 !hits;
  Alcotest.(check (float 0.0)) "clock advanced to until" 10.0 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "second fires later" 2 !hits

let test_engine_cancel () =
  let e = Engine.create ~seed:1 in
  let hits = ref 0 in
  let h = Engine.schedule e ~after:5.0 (fun () -> incr hits) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check int) "cancelled" 0 !hits

let test_topology_ec2 () =
  let topo = Topology.ec2_five () in
  Alcotest.(check int) "5 DCs" 5 (Topology.num_dcs topo);
  Alcotest.(check int) "5 nodes" 5 (Topology.num_nodes topo);
  Alcotest.(check (float 0.0)) "self latency 0" 0.0 (Topology.one_way topo 0 0);
  (* symmetric *)
  Alcotest.(check (float 0.0)) "symmetric" (Topology.one_way topo 0 1) (Topology.one_way topo 1 0);
  Alcotest.(check bool) "west-east < west-eu" true
    (Topology.one_way topo Topology.us_west Topology.us_east
    < Topology.one_way topo Topology.us_west 2)

let test_topology_partitioned () =
  let topo = Topology.ec2_five ~nodes_per_dc:3 () in
  Alcotest.(check int) "15 nodes" 15 (Topology.num_nodes topo);
  Alcotest.(check (list int)) "dc1 nodes" [ 3; 4; 5 ] (Topology.nodes_in_dc topo 1);
  (* Same-DC latency is the intra-DC latency. *)
  Alcotest.(check (float 0.0)) "intra" 0.5 (Topology.one_way topo 3 4)

let test_topology_add_nodes () =
  let topo = Topology.add_nodes (Topology.ec2_five ~nodes_per_dc:2 ()) ~per_dc:1 in
  Alcotest.(check int) "15 nodes" 15 (Topology.num_nodes topo);
  Alcotest.(check int) "new node in dc0" 0 (Topology.dc_of topo 10);
  Alcotest.(check int) "new node in dc4" 4 (Topology.dc_of topo 14)

type Net.payload += Ping of int

let test_network_delivery () =
  let e = Engine.create ~seed:2 in
  let topo = Topology.ec2_five () in
  let net = Net.create e topo ~jitter_sigma:0.0 () in
  let received = ref [] in
  Net.register net 1 (fun ~src p ->
      match p with Ping n -> received := (src, n, Engine.now e) :: !received | _ -> ());
  Net.send net ~src:0 ~dst:1 (Ping 42);
  Engine.run e;
  match !received with
  | [ (src, n, at) ] ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check int) "payload" 42 n;
    (* us-west <-> us-east one way = 40ms + 0.25 floor *)
    Alcotest.(check (float 0.01)) "latency" 40.25 at
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_network_failed_node_drops () =
  let e = Engine.create ~seed:2 in
  let net = Net.create e (Topology.ec2_five ()) ~jitter_sigma:0.0 () in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  Net.fail_node net 1;
  Net.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run e;
  Alcotest.(check int) "dropped" 0 !received;
  Alcotest.(check int) "stat" 1 (Net.stats net).Net.dropped;
  Net.recover_node net 1;
  Net.send net ~src:0 ~dst:1 (Ping 2);
  Engine.run e;
  Alcotest.(check int) "delivered after recovery" 1 !received

let test_network_inflight_failure () =
  (* A message in flight to a node that fails before delivery is lost. *)
  let e = Engine.create ~seed:2 in
  let net = Net.create e (Topology.ec2_five ()) ~jitter_sigma:0.0 () in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  Net.send net ~src:0 ~dst:1 (Ping 1);
  ignore (Engine.schedule e ~after:1.0 (fun () -> Net.fail_node net 1));
  Engine.run e;
  Alcotest.(check int) "in-flight message killed" 0 !received

let test_network_fail_dc () =
  let e = Engine.create ~seed:2 in
  let topo = Topology.ec2_five ~nodes_per_dc:2 () in
  let net = Net.create e topo ~jitter_sigma:0.0 () in
  let received = ref 0 in
  List.iter
    (fun n -> Net.register net n (fun ~src:_ _ -> incr received))
    (Topology.all_nodes topo);
  Net.fail_dc net 1;
  Net.send net ~src:0 ~dst:2 (Ping 1);
  Net.send net ~src:0 ~dst:3 (Ping 1);
  Net.send net ~src:0 ~dst:4 (Ping 1);
  Engine.run e;
  Alcotest.(check int) "only dc2 node got it" 1 !received

let test_network_drop_probability () =
  let e = Engine.create ~seed:3 in
  let net = Net.create e (Topology.ec2_five ()) ~drop_probability:0.5 ~jitter_sigma:0.0 () in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  for _ = 1 to 1000 do
    Net.send net ~src:0 ~dst:1 (Ping 1)
  done;
  Engine.run e;
  Alcotest.(check bool) "~half dropped" true (!received > 400 && !received < 600)

let test_network_jitter_positive () =
  let e = Engine.create ~seed:4 in
  let net = Net.create e (Topology.ec2_five ()) ~jitter_sigma:0.1 () in
  for _ = 1 to 100 do
    let l = Net.latency_sample net ~src:0 ~dst:1 in
    Alcotest.(check bool) "latency positive and near base" true (l > 20.0 && l < 100.0)
  done

let test_network_determinism () =
  let run seed =
    let e = Engine.create ~seed in
    let net = Net.create e (Topology.ec2_five ()) () in
    let log = ref [] in
    Net.register net 1 (fun ~src:_ p ->
        match p with Ping n -> log := (n, Engine.now e) :: !log | _ -> ());
    for i = 1 to 20 do
      Net.send net ~src:0 ~dst:1 (Ping i)
    done;
    Engine.run e;
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (run 9 = run 9);
  Alcotest.(check bool) "different seed, different trace" true (run 9 <> run 10)

(* The meter's size estimator walks the whole payload, so it must run once
   per message (at send), with the byte count carried into delivery — not
   recomputed.  Byte counters must be identical to the old
   size-at-both-ends behavior. *)
let test_network_meter_size_once () =
  let e = Engine.create ~seed:2 in
  let net = Net.create e (Topology.ec2_five ()) ~jitter_sigma:0.0 () in
  let size_calls = ref 0 in
  let sent_bytes = ref 0 and delivered_bytes = ref 0 in
  Net.set_meter net
    {
      Net.m_size =
        (fun p ->
          incr size_calls;
          match p with Ping n -> 100 + n | _ -> 1);
      m_on_send = (fun ~src:_ ~dst:_ ~bytes -> sent_bytes := !sent_bytes + bytes);
      m_on_deliver =
        (fun ~src:_ ~dst:_ ~bytes -> delivered_bytes := !delivered_bytes + bytes);
    };
  Net.register net 1 (fun ~src:_ _ -> ());
  for i = 1 to 10 do
    Net.send net ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run e;
  Alcotest.(check int) "size_of computed once per message" 10 !size_calls;
  Alcotest.(check int) "send bytes" 1055 !sent_bytes;
  Alcotest.(check int) "deliver bytes match send bytes" 1055 !delivered_bytes

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap bounded under cancel churn" `Quick
      test_heap_bounded_under_churn;
    Alcotest.test_case "heap compaction preserves order" `Quick
      test_heap_compaction_preserves_order;
    Alcotest.test_case "heap cancel" `Quick test_heap_cancel;
    Alcotest.test_case "heap 10k monotone" `Quick test_heap_many;
    Alcotest.test_case "pop_before limit semantics" `Quick test_pop_before_limit;
    Alcotest.test_case "pop_before skips cancelled" `Quick test_pop_before_skips_cancelled;
    Alcotest.test_case "pop_before on empty heap" `Quick test_pop_before_empty;
    Alcotest.test_case "engine ordering & clock" `Quick test_engine_ordering_and_clock;
    Alcotest.test_case "engine nested schedule" `Quick test_engine_nested_schedule;
    Alcotest.test_case "engine run until" `Quick test_engine_until;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "topology ec2" `Quick test_topology_ec2;
    Alcotest.test_case "topology partitioned" `Quick test_topology_partitioned;
    Alcotest.test_case "topology add_nodes" `Quick test_topology_add_nodes;
    Alcotest.test_case "network delivery & latency" `Quick test_network_delivery;
    Alcotest.test_case "network failed node drops" `Quick test_network_failed_node_drops;
    Alcotest.test_case "network in-flight failure" `Quick test_network_inflight_failure;
    Alcotest.test_case "network fail dc" `Quick test_network_fail_dc;
    Alcotest.test_case "network drop probability" `Quick test_network_drop_probability;
    Alcotest.test_case "network jitter" `Quick test_network_jitter_positive;
    Alcotest.test_case "network determinism" `Quick test_network_determinism;
    Alcotest.test_case "network meter sizes once" `Quick test_network_meter_size_once;
  ]
