(* The sharded keyspace: pinned cross-partition transactions, the
   [`Snapshot] read fast path, the [Cluster.Spec] smart constructor, the
   partition-aware checker extensions, and the full 150-seed shard-nemesis
   sweep. *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Coordinator = Mdcc_core.Coordinator
module History = Mdcc_core.History
module Checker = Mdcc_chaos.Checker
module Nemesis = Mdcc_chaos.Nemesis
module Runner = Mdcc_chaos.Runner
module Sweep = Mdcc_chaos.Sweep
module Obs = Mdcc_obs.Obs
module Registry = Mdcc_obs.Registry

(* ---- Spec smart constructor ---- *)

let rejects f =
  match f () with
  | _ -> false
  | exception Mdcc_util.Invariant.Violation _ -> true

let test_spec_constructor () =
  Alcotest.(check int) "default is one partition" 1 Cluster.Spec.(partitions default);
  Alcotest.(check int) "with_partitions" 4
    Cluster.Spec.(partitions (with_partitions 4 default));
  Alcotest.(check bool) "partitions < 1 rejected" true
    (rejects (fun () -> Cluster.Spec.make ~partitions:0 ()));
  Alcotest.(check bool) "app_servers < 1 rejected" true
    (rejects (fun () -> Cluster.Spec.make ~app_servers_per_dc:0 ()));
  Alcotest.(check bool) "drop probability > 1 rejected" true
    (rejects (fun () -> Cluster.Spec.make ~drop_probability:1.5 ()))

(* Two pre-loaded items that hash to different partitions; their replica
   groups must be disjoint node sets for the cross-partition tests to mean
   anything. *)
let cross_pair cluster items =
  let p0 = Cluster.partition_of cluster (item 0) in
  let rec find i =
    if i >= items then Alcotest.fail "no item in a second partition"
    else if Cluster.partition_of cluster (item i) <> p0 then i
    else find (i + 1)
  in
  (0, find 1)

(* ---- Pinned cross-partition commit: atomic across both groups ---- *)

let test_cross_partition_commit () =
  let engine, cluster = make_cluster ~partitions:4 ~items:16 () in
  let a, b = cross_pair cluster 16 in
  Alcotest.(check bool) "replica groups differ" true
    (Cluster.replicas cluster (item a) <> Cluster.replicas cluster (item b));
  let updates =
    [
      (item a, Update.Physical { vread = 1; value = item_row 7 });
      (item b, Update.Physical { vread = 1; value = item_row 9 });
    ]
  in
  let outcome = run_txn engine cluster ~dc:0 updates in
  Alcotest.check outcome_testable "spanning txn commits" Txn.Committed outcome;
  (* Both writes visible at version 2 in every data center: the commit
     crossed both Paxos groups atomically. *)
  for dc = 0 to Cluster.num_dcs cluster - 1 do
    Alcotest.(check int) (Printf.sprintf "item %d stock at dc%d" a dc) 7 (stock_at cluster ~dc a);
    Alcotest.(check int) (Printf.sprintf "item %d stock at dc%d" b dc) 9 (stock_at cluster ~dc b);
    List.iter
      (fun i ->
        match Cluster.peek cluster ~dc (item i) with
        | Some (_, version) -> Alcotest.(check int) "version advanced" 2 version
        | None -> Alcotest.fail "item missing")
      [ a; b ]
  done

(* ---- Pinned cross-partition abort: no partial visibility ---- *)

let test_cross_partition_abort () =
  let engine, cluster = make_cluster ~partitions:4 ~items:16 () in
  let a, b = cross_pair cluster 16 in
  (* Valid vread on [a]'s group, stale vread on [b]'s: the coordinator
     learns a rejection from one group and must void the other. *)
  let updates =
    [
      (item a, Update.Physical { vread = 1; value = item_row 7 });
      (item b, Update.Physical { vread = 99; value = item_row 9 });
    ]
  in
  (match run_txn engine cluster ~dc:0 updates with
  | Txn.Aborted _ -> ()
  | Txn.Committed -> Alcotest.fail "stale-vread spanning txn must abort");
  (* Neither partition shows any trace of the aborted transaction. *)
  for dc = 0 to Cluster.num_dcs cluster - 1 do
    List.iter
      (fun i ->
        Alcotest.(check int) (Printf.sprintf "item %d untouched at dc%d" i dc) 100
          (stock_at cluster ~dc i);
        match Cluster.peek cluster ~dc (item i) with
        | Some (_, version) -> Alcotest.(check int) "version unchanged" 1 version
        | None -> Alcotest.fail "item missing")
      [ a; b ]
  done

(* ---- Snapshot read fast path ---- *)

let test_snapshot_fast_path () =
  let engine, cluster = make_cluster ~partitions:4 ~items:8 () in
  let coordinator = Cluster.coordinator cluster ~dc:2 ~rank:0 in
  let reg = Obs.registry (Cluster.obs cluster) in
  let hit = ref None in
  Coordinator.read ~level:`Snapshot coordinator (item 3) (fun r -> hit := Some r);
  let rows = ref [] in
  Coordinator.scan ~level:`Snapshot coordinator ~table:"item" ~order_by:"stock" ~limit:100
    (fun r -> rows := r);
  (* The fast path sends zero messages but still defers its callback. *)
  Engine.run ~until:(Engine.now engine +. 1_000.0) engine;
  (match !hit with
  | Some (Some (value, version)) ->
    Alcotest.(check int) "snapshot value" 100 (Value.get_int value "stock");
    Alcotest.(check int) "snapshot version" 1 version
  | Some None -> Alcotest.fail "snapshot read missed a loaded row"
  | None -> Alcotest.fail "snapshot read callback never fired");
  Alcotest.(check int) "snapshot scan sees the whole keyspace" 8 (List.length !rows);
  Alcotest.(check bool) "fast path counted" true
    (Registry.counter reg "snapshot_fast_path" >= 2);
  Alcotest.(check int) "no fallback taken" 0 (Registry.counter reg "snapshot_fallback")

(* ---- Checker: decision agreement ---- *)

let key id = Key.make ~table:"item" ~id
let stock n = Value.of_list [ ("stock", Value.Int n) ]

let history evs =
  let h = History.create () in
  List.iter (History.record h) evs;
  h

let invariants vs =
  List.sort_uniq String.compare (List.map (fun v -> v.Checker.invariant) vs)

let submitted ?(time = 0.0) txn = History.Submitted { time; coordinator = 0; txn }
let decided ?(time = 10.0) txid outcome = History.Decided { time; txid; outcome }

let applied ?(time = 20.0) ?(node = 0) txid k version value =
  History.Applied { time; node; txid; key = k; version; value }

let voided ?(time = 20.0) ?(node = 0) txid k = History.Voided { time; node; txid; key = k }
let write ?(value = stock 9) k vread = (k, Update.Physical { vread; value })

let test_decision_agreement_flagged () =
  let k = key "1" in
  let t1 = Txn.make ~id:"t1" ~updates:[ write k 1 ] in
  let vs =
    Checker.check
      (history
         [ submitted t1; decided "t1" Txn.Committed; decided "t1" (Txn.Aborted Txn.Conflict) ])
  in
  Alcotest.(check bool) "conflicting decisions flagged" true
    (List.mem "decision-agreement" (invariants vs));
  (* Re-announcing the same outcome (a recovery coordinator) is fine. *)
  let vs2 =
    Checker.check
      (history
         [
           submitted t1;
           decided "t1" Txn.Committed;
           decided ~time:30.0 "t1" Txn.Committed;
           applied "t1" k 2 (stock 9);
         ])
  in
  Alcotest.(check bool) "agreeing re-announcement passes" false
    (List.mem "decision-agreement" (invariants vs2))

(* ---- Checker: cross-partition atomicity ---- *)

(* Keys "a" and "b" placed in different groups by a toy hash. *)
let toy_partition_of k = if String.equal (Key.to_string k) "item/a" then 0 else 1

let test_cross_partition_checker () =
  let a = key "a" and b = key "b" in
  let t1 = Txn.make ~id:"t1" ~updates:[ write a 1; write b 1 ] in
  let torn =
    [ submitted t1; decided "t1" Txn.Committed; applied "t1" a 2 (stock 9); voided ~node:1 "t1" b ]
  in
  let vs = Checker.check ~partition_of:toy_partition_of (history torn) in
  Alcotest.(check bool) "torn commit attributed to groups" true
    (List.mem "cross-partition-atomicity" (invariants vs));
  (* Without a partition map everything is one group: only the plain
     atomic-visibility invariant fires. *)
  let vs1 = Checker.check (history torn) in
  Alcotest.(check bool) "inert on one group" false
    (List.mem "cross-partition-atomicity" (invariants vs1));
  Alcotest.(check bool) "plain atomicity still fires" true
    (List.mem "atomic-visibility" (invariants vs1));
  (* An abort that leaked an execution into one group. *)
  let leak =
    [ submitted t1; decided "t1" (Txn.Aborted Txn.Conflict); applied "t1" a 2 (stock 9) ]
  in
  let vs2 = Checker.check ~partition_of:toy_partition_of (history leak) in
  Alcotest.(check bool) "aborted leak flagged" true
    (List.mem "cross-partition-atomicity" (invariants vs2));
  (* A clean spanning commit passes. *)
  let clean =
    [
      submitted t1;
      decided "t1" Txn.Committed;
      applied "t1" a 2 (stock 9);
      applied ~node:1 "t1" b 2 (stock 9);
    ]
  in
  Alcotest.(check (list string))
    "clean spanning commit passes" []
    (invariants (Checker.check ~partition_of:toy_partition_of (history clean)))

(* ---- The 150-seed shard-nemesis sweep (the ISSUE's acceptance bar) ---- *)

let test_shard_sweep () =
  let specs =
    Sweep.specs ~seeds:50
      ~scenarios:[ Nemesis.shard_partition; Nemesis.shard_outage; Nemesis.shard_flap ]
      ()
  in
  let reports = Sweep.run ~jobs:2 specs in
  Alcotest.(check int) "150 runs" 150 (List.length reports);
  List.iter
    (fun r ->
      if not (Runner.ok r) then
        Alcotest.failf "seed %d %s: %s" r.Runner.r_seed r.Runner.r_scenario
          (Runner.report_to_string ~verbose:true r);
      Alcotest.(check int)
        (Printf.sprintf "seed %d %s: all decided" r.Runner.r_seed r.Runner.r_scenario)
        0 r.Runner.r_undecided)
    reports

(* Shard scenarios force a multi-partition cluster even from a default
   spec, and classic scenarios never do. *)
let test_effective_partitions () =
  Alcotest.(check int) "shard scenario widens" 4
    (Runner.effective_partitions (Runner.spec ~seed:1 ~scenario:Nemesis.shard_outage ()));
  Alcotest.(check int) "explicit partitions win when larger" 8
    (Runner.effective_partitions
       (Runner.spec ~seed:1 ~partitions:8 ~scenario:Nemesis.shard_flap ()));
  Alcotest.(check int) "classic scenario stays single-partition" 1
    (Runner.effective_partitions (Runner.spec ~seed:1 ~scenario:Nemesis.clean ()))

let suite =
  [
    Alcotest.test_case "spec smart constructor" `Quick test_spec_constructor;
    Alcotest.test_case "cross-partition commit is atomic (pinned)" `Quick
      test_cross_partition_commit;
    Alcotest.test_case "cross-partition abort leaves no trace (pinned)" `Quick
      test_cross_partition_abort;
    Alcotest.test_case "snapshot read fast path" `Quick test_snapshot_fast_path;
    Alcotest.test_case "decision agreement flagged" `Quick test_decision_agreement_flagged;
    Alcotest.test_case "cross-partition checker" `Quick test_cross_partition_checker;
    Alcotest.test_case "effective partitions" `Quick test_effective_partitions;
    Alcotest.test_case "150-seed shard-nemesis sweep" `Slow test_shard_sweep;
  ]
