(* Tests for the mdcc_lint static-analysis pass.  Fixtures live in
   test/lint_fixtures/; each is scanned under a *pretend* repo-relative path
   so the scope-sensitive rules (R3, R1-simtime) see the directory they key
   on.  Assertions pin exact rule ids and line numbers: a rule that drifts
   off its line is a rule that silently stopped firing. *)

module Driver = Mdcc_lint.Driver
module Finding = Mdcc_lint.Finding
module Allowlist = Mdcc_lint.Allowlist

(* `dune runtest` runs the binary in _build/default/test (where the
   source_tree dep puts lint_fixtures/); `dune exec` runs it from the repo
   root.  Accept either. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let source ~rel file = { Driver.src_rel = rel; src_path = Filename.concat fixture_dir file }

let scan ?allow ~rel file = Driver.scan_sources ?allow [ source ~rel file ]

let hits report =
  List.map (fun f -> (f.Finding.rule, f.Finding.line)) report.Driver.rp_findings

let hit = Alcotest.(pair string int)

let test_r1_determinism () =
  let r = scan ~rel:"lib/core/r1_determinism.ml" "r1_determinism.ml" in
  (* The wall-clock reads are double-flagged since R6: they are both a
     determinism leak (R1) and a direct OS effect in the core (R6). *)
  Alcotest.(check (list hit))
    "r1 rule ids and lines"
    [
      ("R1-random", 3);
      ("R1-wallclock", 5);
      ("R6-sys", 5);
      ("R1-wallclock", 7);
      ("R6-unix", 7);
      ("R1-hash-iter", 9);
      ("R1-hash-iter", 11);
      ("R1-hash-iter", 13);
      ("R1-simtime", 15);
    ]
    (hits r);
  let idents = List.map (fun f -> f.Finding.ident) r.Driver.rp_findings in
  Alcotest.(check (list string))
    "r1 offending idents"
    [
      "Random.int";
      "Sys.time";
      "Sys.time";
      "Unix.gettimeofday";
      "Unix.gettimeofday";
      "Hashtbl.iter";
      "Hashtbl.fold";
      "Key.Tbl.to_seq";
      "proposed_at";
    ]
    idents

let test_r1_simtime_scope () =
  (* Outside lib/core, lib/paxos, lib/chaos the bare-float timestamp rule is
     silent; the location-independent R1 rules still fire. *)
  let r = scan ~rel:"lib/workload/r1_determinism.ml" "r1_determinism.ml" in
  Alcotest.(check bool)
    "no simtime finding outside scope" false
    (List.exists (fun f -> String.equal f.Finding.rule "R1-simtime") r.Driver.rp_findings);
  Alcotest.(check int) "other R1 rules still fire" 6 (List.length r.Driver.rp_findings)

let test_r2_aliasing () =
  let r = scan ~rel:"lib/core/r2_aliasing.ml" "r2_aliasing.ml" in
  Alcotest.(check (list hit))
    "r2 rule ids and lines"
    [ ("R2-payload", 9); ("R2-payload", 11); ("R2-send", 15) ]
    (hits r);
  (* The nested finding must name the full reachability trail through
     wrapper -> cache -> mutable field. *)
  let nested = List.nth r.Driver.rp_findings 1 in
  Alcotest.(check string) "nested ctor" "Evil_nested" nested.Finding.ident;
  Alcotest.(check bool) "trail mentions the mutable field" true
    (let msg = nested.Finding.message in
     let contains ~sub s =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
       n = 0 || go 0
     in
     contains ~sub:"mutable field hits" msg)

let test_r3_partiality () =
  let r = scan ~rel:"lib/core/r3_partiality.ml" "r3_partiality.ml" in
  Alcotest.(check (list hit))
    "r3 rule ids and lines"
    [
      ("R3-failwith", 3);
      ("R3-invalid-arg", 5);
      ("R3-assert-false", 7);
      ("R3-option-get", 9);
      ("R3-list-hd", 11);
    ]
    (hits r)

let test_r3_scope () =
  (* The same file outside lib/core and lib/paxos is not R3's business. *)
  let r = scan ~rel:"lib/sim/r3_partiality.ml" "r3_partiality.ml" in
  Alcotest.(check (list hit)) "no findings outside scope" [] (hits r)

let test_r4_ambient () =
  let r = scan ~rel:"lib/sim/r4_ambient.ml" "r4_ambient.ml" in
  Alcotest.(check (list hit))
    "r4 rule ids and lines"
    [
      ("R4-ambient", 4);
      ("R4-ambient", 6);
      ("R4-ambient", 8);
      ("R4-ambient", 10);
      ("R4-ambient", 13);
    ]
    (hits r);
  let idents = List.map (fun f -> f.Finding.ident) r.Driver.rp_findings in
  Alcotest.(check (list string))
    "r4 offending constructs"
    [ "ref"; "Hashtbl.create"; "Buffer.create"; "Array.make"; "ref" ]
    idents

let test_r4_scope () =
  (* Executables own their process: top-level state in bin/ is fine. *)
  let r = scan ~rel:"bin/r4_ambient.ml" "r4_ambient.ml" in
  Alcotest.(check (list hit)) "no findings outside lib/" [] (hits r)

let test_clean () =
  let r = scan ~rel:"lib/core/clean.ml" "clean.ml" in
  Alcotest.(check (list hit)) "clean file has no findings" [] (hits r);
  Alcotest.(check int) "one file scanned" 1 r.Driver.rp_scanned

let test_allowlist () =
  let rel = "lib/util/allowlisted.ml" in
  let bare = scan ~rel "allowlisted.ml" in
  Alcotest.(check (list hit)) "finding without allowlist" [ ("R1-hash-iter", 3) ] (hits bare);
  let allow = Allowlist.of_string "# test entry\nR1 lib/util/allowlisted.ml\n" in
  let r = scan ~allow ~rel "allowlisted.ml" in
  Alcotest.(check (list hit)) "suppressed by family entry" [] (hits r);
  Alcotest.(check int) "recorded as allowlisted" 1 (List.length r.Driver.rp_suppressed);
  (* A pinned line that does not match must not suppress. *)
  let wrong_line = Allowlist.of_string "R1-hash-iter lib/util/allowlisted.ml:99\n" in
  let r = scan ~allow:wrong_line ~rel "allowlisted.ml" in
  Alcotest.(check (list hit)) "wrong line does not suppress" [ ("R1-hash-iter", 3) ] (hits r)

(* A trailing-slash entry (as lint_allow.conf carries for lib/runtime_unix/)
   is a *directory* allowance: it must suppress for every file under that
   directory and for nothing else — not for the same file name in another
   tree, and not for a sibling path sharing the directory name as a string
   prefix.  This is what keeps the socket runtime's wall-clock allowance
   from silently turning R1 off repo-wide. *)
let test_allowlist_dir_scope () =
  let allow = Allowlist.of_string "# socket runtime may touch the wall clock\nR1 lib/runtime_unix/\n" in
  let inside = scan ~allow ~rel:"lib/runtime_unix/loop.ml" "allowlisted.ml" in
  Alcotest.(check (list hit)) "suppressed under the directory" [] (hits inside);
  Alcotest.(check int) "recorded as allowlisted" 1 (List.length inside.Driver.rp_suppressed);
  let nested = scan ~allow ~rel:"lib/runtime_unix/sub/deep.ml" "allowlisted.ml" in
  Alcotest.(check (list hit)) "suppressed in subdirectories too" [] (hits nested);
  let outside = scan ~allow ~rel:"lib/core/loop.ml" "allowlisted.ml" in
  Alcotest.(check (list hit)) "still fires outside the directory" [ ("R1-hash-iter", 3) ]
    (hits outside);
  let prefix_sibling = scan ~allow ~rel:"lib/runtime_unix_extras.ml" "allowlisted.ml" in
  Alcotest.(check (list hit)) "prefix-sharing sibling is not covered"
    [ ("R1-hash-iter", 3) ] (hits prefix_sibling);
  (* the directory entry suppresses only its family: R4 in the same
     directory keeps firing *)
  let r4 = scan ~allow ~rel:"lib/runtime_unix/r4_ambient.ml" "r4_ambient.ml" in
  Alcotest.(check bool) "other families unaffected by the R1 entry" true
    (List.exists (fun f -> String.length f.Finding.rule >= 2 && String.sub f.Finding.rule 0 2 = "R4") r4.Driver.rp_findings)

(* ------------------------------------------------------------------ *)
(* R5 — domain safety                                                  *)
(* ------------------------------------------------------------------ *)

let test_r5_domain () =
  let r = scan ~rel:"lib/workload/r5_domain.ml" "r5_domain.ml" in
  Alcotest.(check (list hit))
    "r5 rule ids and lines"
    [ ("R5-capture", 4); ("R5-mutate", 8); ("R5-mutate", 11); ("R5-mutate", 19) ]
    (hits r);
  let idents = List.map (fun f -> f.Finding.ident) r.Driver.rp_findings in
  Alcotest.(check (list string))
    "r5 captured variables" [ "hits"; "total"; "row"; "acc" ] idents

let test_r5_ok () =
  (* Atomics, task-local allocation, mutex-guarded closures, immutable
     captures, and non-spawner iteration are all silent. *)
  let r = scan ~rel:"lib/workload/r5_domain_ok.ml" "r5_domain_ok.ml" in
  Alcotest.(check (list hit)) "no findings" [] (hits r)

(* ------------------------------------------------------------------ *)
(* R6 — runtime purity                                                 *)
(* ------------------------------------------------------------------ *)

let test_r6_purity () =
  let r = scan ~rel:"lib/core/r6_purity.ml" "r6_purity.ml" in
  Alcotest.(check (list hit))
    "r6 rule ids and lines"
    [
      ("R6-unix", 2);
      ("R6-sys", 4);
      ("R6-channel", 6);
      ("R6-print", 8);
      ("R6-channel", 10);
      ("R6-channel", 10);
      ("R6-exit", 12);
    ]
    (hits r);
  (* The file defines its own [flush]; the call on the last line must not
     read as Stdlib.flush.  Its absence from the list above pins that. *)
  let idents = List.map (fun f -> f.Finding.ident) r.Driver.rp_findings in
  Alcotest.(check (list string))
    "r6 offending idents"
    [
      "Unix.getenv";
      "Sys.argv";
      "print_endline";
      "Printf.printf";
      "In_channel.with_open_text";
      "In_channel.input_all";
      "exit";
    ]
    idents

let test_r6_scope () =
  (* The same effects outside the five core directories are not R6's
     business (bin/ and lib/runtime_unix own their process). *)
  let r = scan ~rel:"lib/workload/r6_purity.ml" "r6_purity.ml" in
  Alcotest.(check (list hit)) "no findings outside scope" [] (hits r)

let test_r6_ok () =
  let r = scan ~rel:"lib/core/r6_purity_ok.ml" "r6_purity_ok.ml" in
  Alcotest.(check (list hit)) "sprintf/asprintf/constants are pure" [] (hits r)

(* The lib/obs carve-out: the observability layer is inside R6's scope (a
   stray wall-clock read there would leak into byte-pinned exports), with
   exactly one sanctioned escape — Obs.Clock, covered by file-scoped R1/R6
   allowlist entries mirroring lint_allow.conf.  A bare [Unix.gettimeofday]
   in any *other* lib/obs file must keep failing both rules. *)
let test_r6_obs_scope () =
  let r = scan ~rel:"lib/obs/prof.ml" "r1_determinism.ml" in
  Alcotest.(check (list hit))
    "bare wall-clock reads in lib/obs fail R1 and R6"
    [
      ("R1-random", 3);
      ("R1-wallclock", 5);
      ("R6-sys", 5);
      ("R1-wallclock", 7);
      ("R6-unix", 7);
      ("R1-hash-iter", 9);
      ("R1-hash-iter", 11);
      ("R1-hash-iter", 13);
    ]
    (hits r)

let test_r6_obs_clock_allow () =
  let allow = Allowlist.of_string "R1 lib/obs/clock.ml\nR6 lib/obs/clock.ml\n" in
  let clock = scan ~allow ~rel:"lib/obs/clock.ml" "r1_determinism.ml" in
  Alcotest.(check (list hit)) "clock.ml is fully covered by the two entries" [] (hits clock);
  Alcotest.(check bool) "suppressions recorded (entries are not stale)" true
    (List.length clock.Driver.rp_suppressed > 0);
  (* The allowance is file-scoped: a sibling in lib/obs gets no cover. *)
  let sibling = scan ~allow ~rel:"lib/obs/registry.ml" "r1_determinism.ml" in
  Alcotest.(check bool) "sibling still fails R6-unix" true
    (List.exists (fun f -> String.equal f.Finding.rule "R6-unix") sibling.Driver.rp_findings);
  Alcotest.(check bool) "sibling still fails R1-wallclock" true
    (List.exists
       (fun f -> String.equal f.Finding.rule "R1-wallclock")
       sibling.Driver.rp_findings)

(* ------------------------------------------------------------------ *)
(* R7 — protocol exhaustiveness                                        *)
(* ------------------------------------------------------------------ *)

let test_r7_exhaustive () =
  let r = scan ~rel:"lib/core/r7_exhaustive.ml" "r7_exhaustive.ml" in
  Alcotest.(check (list hit)) "r7 rule id and line" [ ("R7-unhandled", 7) ] (hits r);
  let f = List.hd r.Driver.rp_findings in
  Alcotest.(check string) "family named" "R7_exhaustive" f.Finding.ident;
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "missing constructors listed" true
    (contains ~sub:"Pong, Quit" f.Finding.message)

let test_r7_ok () =
  (* Naming every own constructor before the (extensible-variant-mandated)
     wildcard is fine; so is delegating the wildcard to another handler. *)
  let r = scan ~rel:"lib/core/r7_exhaustive_ok.ml" "r7_exhaustive_ok.ml" in
  Alcotest.(check (list hit)) "no findings" [] (hits r)

let test_r7_cross_file () =
  (* The family is declared in r7_exhaustive.ml; the receiver lives in a
     different file and names constructors with the module qualifier.  The
     link phase must carry the constructor set across. *)
  let r =
    Driver.scan_sources
      [
        source ~rel:"lib/core/r7_exhaustive.ml" "r7_exhaustive.ml";
        source ~rel:"lib/paxos/r7_receiver.ml" "r7_receiver.ml";
      ]
  in
  Alcotest.(check (list hit))
    "declaring file and foreign receiver both flagged"
    [ ("R7-unhandled", 7); ("R7-unhandled", 6) ]
    (hits r);
  let files = List.map (fun f -> f.Finding.file) r.Driver.rp_findings in
  Alcotest.(check (list string))
    "cross-file finding lands in the receiver"
    [ "lib/core/r7_exhaustive.ml"; "lib/paxos/r7_receiver.ml" ]
    files

let test_r7_scope () =
  let r =
    Driver.scan_sources
      [
        source ~rel:"lib/workload/r7_exhaustive.ml" "r7_exhaustive.ml";
        source ~rel:"lib/workload/r7_receiver.ml" "r7_receiver.ml";
      ]
  in
  Alcotest.(check (list hit)) "no findings outside scope" [] (hits r)

(* ------------------------------------------------------------------ *)
(* Allowlist normalisation and staleness                               *)
(* ------------------------------------------------------------------ *)

let test_allowlist_normalisation () =
  (* A directory entry needs no trailing slash: "lib/runtime_unix" and
     "lib/runtime_unix/" are the same scope, and neither leaks onto a
     sibling sharing the name as a string prefix. *)
  let no_slash = Allowlist.of_string "R1 lib/runtime_unix\n" in
  let with_slash = Allowlist.of_string "R1 ./lib/runtime_unix/\n" in
  List.iter
    (fun allow ->
      let inside = scan ~allow ~rel:"lib/runtime_unix/loop.ml" "allowlisted.ml" in
      Alcotest.(check (list hit)) "suppressed under the directory" [] (hits inside);
      let sibling = scan ~allow ~rel:"lib/runtime_unix_extras.ml" "allowlisted.ml" in
      Alcotest.(check (list hit)) "prefix sibling still fires"
        [ ("R1-hash-iter", 3) ] (hits sibling))
    [ no_slash; with_slash ]

let test_allowlist_stale () =
  let allow =
    Allowlist.of_string
      "R1 lib/util/allowlisted.ml\nR4 lib/never/matches.ml\nR1 lib/util/allowlisted.ml:99\n"
  in
  let r = scan ~allow ~rel:"lib/util/allowlisted.ml" "allowlisted.ml" in
  let everything = r.Driver.rp_findings @ r.Driver.rp_suppressed in
  let stale = Allowlist.unused allow everything in
  Alcotest.(check (list string))
    "entries that suppress nothing are reported stale"
    [ "R4 lib/never/matches.ml"; "R1 lib/util/allowlisted.ml:99" ]
    (List.map Allowlist.entry_to_string stale)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let all_fixtures =
  [
    source ~rel:"lib/core/r1_determinism.ml" "r1_determinism.ml";
    source ~rel:"lib/core/r2_aliasing.ml" "r2_aliasing.ml";
    source ~rel:"lib/core/r3_partiality.ml" "r3_partiality.ml";
    source ~rel:"lib/sim/r4_ambient.ml" "r4_ambient.ml";
    source ~rel:"lib/workload/r5_domain.ml" "r5_domain.ml";
    source ~rel:"lib/workload/r5_domain_ok.ml" "r5_domain_ok.ml";
    source ~rel:"lib/core/r6_purity.ml" "r6_purity.ml";
    source ~rel:"lib/core/r6_purity_ok.ml" "r6_purity_ok.ml";
    source ~rel:"lib/core/r7_exhaustive.ml" "r7_exhaustive.ml";
    source ~rel:"lib/core/r7_exhaustive_ok.ml" "r7_exhaustive_ok.ml";
    source ~rel:"lib/paxos/r7_receiver.ml" "r7_receiver.ml";
    source ~rel:"lib/core/clean.ml" "clean.ml";
    source ~rel:"lib/util/allowlisted.ml" "allowlisted.ml";
  ]

let test_json_determinism () =
  let render () = Driver.report_to_json (Driver.scan_sources all_fixtures) in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical reports" a b;
  Alcotest.(check bool) "report is non-trivial" true (String.length a > 100)

let test_jobs_byte_identity () =
  (* The whole point of the three-phase driver: a parallel scan is
     indistinguishable from the sequential one, in both report formats. *)
  let allow = Allowlist.of_string "R1 lib/util/allowlisted.ml\n" in
  let seq = Driver.scan_sources ~allow ~jobs:1 all_fixtures in
  let par = Driver.scan_sources ~allow ~jobs:4 all_fixtures in
  Alcotest.(check string) "JSON identical under --jobs 4"
    (Driver.report_to_json seq) (Driver.report_to_json par);
  Alcotest.(check string) "SARIF identical under --jobs 4"
    (Driver.report_to_sarif seq) (Driver.report_to_sarif par)

let test_sarif_shape () =
  let allow = Allowlist.of_string "R1 lib/util/allowlisted.ml\n" in
  let r = Driver.scan_sources ~allow all_fixtures in
  let doc = Driver.report_to_sarif r in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
    n = 0 || go 0
  in
  List.iter
    (fun sub -> Alcotest.(check bool) (Printf.sprintf "SARIF contains %S" sub) true (contains ~sub doc))
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"mdcc_lint\"";
      "\"ruleId\":\"R5-capture\"";
      "\"ruleId\":\"R6-exit\"";
      "\"ruleId\":\"R7-unhandled\"";
      (* the allowlisted R1 finding rides along, suppressed *)
      "\"suppressions\":[{\"kind\":\"external\"}]";
    ];
  Alcotest.(check bool) "single line" false (String.contains doc '\n')

let suite =
  [
    Alcotest.test_case "R1 determinism fixture" `Quick test_r1_determinism;
    Alcotest.test_case "R1-simtime scope" `Quick test_r1_simtime_scope;
    Alcotest.test_case "R2 aliasing fixture" `Quick test_r2_aliasing;
    Alcotest.test_case "R3 partiality fixture" `Quick test_r3_partiality;
    Alcotest.test_case "R3 scope" `Quick test_r3_scope;
    Alcotest.test_case "R4 ambient-state fixture" `Quick test_r4_ambient;
    Alcotest.test_case "R4 scope" `Quick test_r4_scope;
    Alcotest.test_case "clean fixture" `Quick test_clean;
    Alcotest.test_case "R5 domain-safety fixture" `Quick test_r5_domain;
    Alcotest.test_case "R5 negative fixture" `Quick test_r5_ok;
    Alcotest.test_case "R6 purity fixture" `Quick test_r6_purity;
    Alcotest.test_case "R6 scope" `Quick test_r6_scope;
    Alcotest.test_case "R6 negative fixture" `Quick test_r6_ok;
    Alcotest.test_case "R6 lib/obs scope" `Quick test_r6_obs_scope;
    Alcotest.test_case "R6 Obs.Clock carve-out" `Quick test_r6_obs_clock_allow;
    Alcotest.test_case "R7 exhaustiveness fixture" `Quick test_r7_exhaustive;
    Alcotest.test_case "R7 negative fixture" `Quick test_r7_ok;
    Alcotest.test_case "R7 cross-file link" `Quick test_r7_cross_file;
    Alcotest.test_case "R7 scope" `Quick test_r7_scope;
    Alcotest.test_case "allowlist suppression" `Quick test_allowlist;
    Alcotest.test_case "allowlist directory scoping" `Quick test_allowlist_dir_scope;
    Alcotest.test_case "allowlist path normalisation" `Quick test_allowlist_normalisation;
    Alcotest.test_case "allowlist stale-entry detection" `Quick test_allowlist_stale;
    Alcotest.test_case "report JSON determinism" `Quick test_json_determinism;
    Alcotest.test_case "--jobs byte identity" `Quick test_jobs_byte_identity;
    Alcotest.test_case "SARIF report shape" `Quick test_sarif_shape;
  ]
