(* Tests of the §4.4 extensions: read-guard options (full serializability)
   and session guarantees (§4.2). *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Coordinator = Mdcc_core.Coordinator
module Session = Mdcc_core.Session

let test_guard_only_txn_commits_when_current () =
  let engine, cluster = make_cluster ~items:2 () in
  let o = run_txn engine cluster ~dc:1 [ (item 0, Update.Read_guard { vread = 1 }) ] in
  Alcotest.(check bool) "current read certifies" true (is_committed o);
  Alcotest.(check int) "guard does not bump the version" 1
    (snd (Option.get (Cluster.peek cluster ~dc:0 (item 0))))

let test_guard_aborts_on_stale_read () =
  let engine, cluster = make_cluster ~items:2 () in
  let o1 =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 9 }) ]
  in
  Alcotest.(check bool) "writer" true (is_committed o1);
  let o2 = run_txn engine cluster ~dc:1 [ (item 0, Update.Read_guard { vread = 1 }) ] in
  Alcotest.(check bool) "stale read rejected" false (is_committed o2)

let test_serializable_read_write_txn () =
  (* Classic OCC pattern: read item0's price, then write item1 based on it;
     commit only if item0 is unchanged. *)
  let engine, cluster = make_cluster ~items:3 () in
  let txn =
    Txn.serializable ~id:"ser-1"
      ~reads:[ (item 0, 1) ]
      ~updates:[ (item 1, Update.Physical { vread = 1; value = item_row 42 }) ]
  in
  let c = Cluster.coordinator cluster ~dc:2 ~rank:0 in
  let r = ref None in
  Coordinator.submit c txn (fun o -> r := Some o);
  Engine.run ~until:30_000.0 engine;
  Alcotest.(check bool) "commits" true (match !r with Some o -> is_committed o | None -> false);
  Alcotest.(check int) "write applied" 42 (stock_at cluster ~dc:0 1)

let test_write_skew_prevented () =
  (* The textbook snapshot-isolation anomaly: t1 reads x writes y, t2 reads
     y writes x.  With read guards at least one must abort. *)
  let engine, cluster = make_cluster ~items:2 () in
  let t1 =
    Txn.serializable ~id:"skew-1"
      ~reads:[ (item 0, 1) ]
      ~updates:[ (item 1, Update.Physical { vread = 1; value = item_row 0 }) ]
  in
  let t2 =
    Txn.serializable ~id:"skew-2"
      ~reads:[ (item 1, 1) ]
      ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 0 }) ]
  in
  let r1 = ref None and r2 = ref None in
  Coordinator.submit (Cluster.coordinator cluster ~dc:0 ~rank:0) t1 (fun o -> r1 := Some o);
  Coordinator.submit (Cluster.coordinator cluster ~dc:4 ~rank:0) t2 (fun o -> r2 := Some o);
  Engine.run ~until:60_000.0 engine;
  let committed =
    List.length
      (List.filter
         (fun r -> match !r with Some o -> is_committed o | None -> false)
         [ r1; r2 ])
  in
  Alcotest.(check bool) "no write skew: at most one commits" true (committed <= 1)

let test_guards_commute_with_guards () =
  (* Many concurrent serializable readers of the same record all commit. *)
  let engine, cluster = make_cluster ~items:1 () in
  let results = ref [] in
  for dc = 0 to 4 do
    Coordinator.submit
      (Cluster.coordinator cluster ~dc ~rank:0)
      (Txn.make ~id:(Printf.sprintf "g%d" dc) ~updates:[ (item 0, Update.Read_guard { vread = 1 }) ])
      (fun o -> results := o :: !results)
  done;
  Engine.run ~until:30_000.0 engine;
  Alcotest.(check int) "all five readers commit" 5
    (List.length (List.filter is_committed !results))

let test_guard_blocks_concurrent_writer () =
  (* While a guard is outstanding, a conflicting write loses (or the guard
     does) — they can never both commit against the same version. *)
  let engine, cluster = make_cluster ~items:1 () in
  let r1 = ref None and r2 = ref None in
  Coordinator.submit
    (Cluster.coordinator cluster ~dc:0 ~rank:0)
    (Txn.make ~id:"guard" ~updates:[ (item 0, Update.Read_guard { vread = 1 }) ])
    (fun o -> r1 := Some o);
  Coordinator.submit
    (Cluster.coordinator cluster ~dc:1 ~rank:0)
    (Txn.make ~id:"writer" ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 3 }) ])
    (fun o -> r2 := Some o);
  Engine.run ~until:60_000.0 engine;
  (* Both decided; serializability holds regardless of who won: if the
     writer committed the guard txn must have aborted, and vice versa — but
     both aborting is also legal under contention. *)
  Alcotest.(check bool) "both decided" true (!r1 <> None && !r2 <> None);
  let c1 = match !r1 with Some o -> is_committed o | None -> false in
  let c2 = match !r2 with Some o -> is_committed o | None -> false in
  Alcotest.(check bool) "not both" true (not (c1 && c2))

(* --- sessions ----------------------------------------------------------- *)

let run_until engine extra = Engine.run ~until:(Engine.now engine +. extra) engine

let test_session_read_your_writes () =
  let engine, cluster = make_cluster ~items:1 () in
  (* DC 4's replica is cut off so its local reads would be stale. *)
  let session = Session.create (Cluster.coordinator cluster ~dc:4 ~rank:0) in
  Cluster.fail_dc cluster 4;
  let o =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 5 }) ]
  in
  Alcotest.(check bool) "write committed" true (is_committed o);
  Cluster.recover_dc cluster 4;
  (* The session also writes (learning version 3... here: version 2 via its
     own write on top). *)
  let w = ref None in
  Session.submit session
    (Txn.make ~id:"own" ~updates:[ (item 0, Update.Physical { vread = 2; value = item_row 7 }) ])
    (fun o -> w := Some o);
  run_until engine 30_000.0;
  Alcotest.(check bool) "own write committed" true
    (match !w with Some o -> is_committed o | None -> false);
  Alcotest.(check int) "watermark" 3 (Session.watermark session (item 0));
  (* DC 4's replica DID apply the visibility (it was alive again), but even
     when reading through the session the answer can never be older than
     version 3. *)
  let r = ref None in
  Session.read session (item 0) (fun x -> r := Some x);
  run_until engine 10_000.0;
  match !r with
  | Some (Some (v, version)) ->
    Alcotest.(check bool) "version >= watermark" true (version >= 3);
    Alcotest.(check int) "sees own write" 7 (Value.get_int v "stock")
  | Some None | None -> Alcotest.fail "read failed"

let test_session_monotonic_reads () =
  let engine, cluster = make_cluster ~items:1 () in
  let session = Session.create (Cluster.coordinator cluster ~dc:4 ~rank:0) in
  (* First the session observes a fresh version via a majority read path:
     write from dc0 while dc4 is partitioned, then session reads. *)
  Cluster.fail_dc cluster 4;
  let o =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 9 }) ]
  in
  Alcotest.(check bool) "committed" true (is_committed o);
  Cluster.recover_dc cluster 4;
  (* dc4's replica is still at version 1 (it missed the visibility). *)
  Alcotest.(check int) "dc4 stale" 100 (stock_at cluster ~dc:4 0);
  let r1 = ref None in
  Session.read session (item 0) (fun x -> r1 := Some x);
  run_until engine 10_000.0;
  (match !r1 with
  | Some (Some (_, version)) ->
    (* The local replica was behind the... actually behind nothing yet: the
       session had no watermark, so a stale first read is permitted.  From
       now on reads must never go backwards. *)
    let m1 = version in
    let r2 = ref None in
    Session.read session (item 0) (fun x -> r2 := Some x);
    run_until engine 10_000.0;
    (match !r2 with
    | Some (Some (_, v2)) -> Alcotest.(check bool) "monotonic" true (v2 >= m1)
    | Some None | None -> Alcotest.fail "second read failed")
  | Some None | None -> Alcotest.fail "first read failed");
  (* After the session observes the fresh version via majority read, local
     stale reads are upgraded transparently. *)
  let r3 = ref None in
  Coordinator.read ~level:`Majority (Cluster.coordinator cluster ~dc:4 ~rank:0) (item 0)
    (fun _ -> ());
  Session.submit session
    (Txn.make ~id:"touch" ~updates:[ (item 0, Update.Read_guard { vread = 2 }) ])
    (fun _ -> ());
  run_until engine 30_000.0;
  Session.read session (item 0) (fun x -> r3 := Some x);
  run_until engine 10_000.0;
  match !r3 with
  | Some (Some (_, version)) -> Alcotest.(check bool) "upgraded to fresh" true (version >= 2)
  | Some None | None -> Alcotest.fail "third read failed"

let suite =
  [
    Alcotest.test_case "guard-only txn commits when current" `Quick
      test_guard_only_txn_commits_when_current;
    Alcotest.test_case "guard aborts on stale read" `Quick test_guard_aborts_on_stale_read;
    Alcotest.test_case "serializable read+write txn" `Quick test_serializable_read_write_txn;
    Alcotest.test_case "write skew prevented" `Quick test_write_skew_prevented;
    Alcotest.test_case "guards commute with guards" `Quick test_guards_commute_with_guards;
    Alcotest.test_case "guard vs writer: never both" `Quick test_guard_blocks_concurrent_writer;
    Alcotest.test_case "session read-your-writes" `Quick test_session_read_your_writes;
    Alcotest.test_case "session monotonic reads" `Quick test_session_monotonic_reads;
  ]
