(* Edge cases and smaller behaviours not covered by the focused suites. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Topology = Mdcc_sim.Topology
module Net = Mdcc_sim.Network
module Rng = Mdcc_util.Rng
module Harness = Mdcc_protocols.Harness

let test_engine_schedule_in_past_clamps () =
  let e = Engine.create ~seed:1 in
  ignore (Engine.schedule e ~after:10.0 (fun () -> ()));
  Engine.run e;
  (* Scheduling at an absolute time in the past fires immediately (clamped
     to now), never travels back. *)
  let fired_at = ref neg_infinity in
  ignore (Engine.schedule_at e ~at:3.0 (fun () -> fired_at := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 0.0)) "clamped to now" 10.0 !fired_at

let test_engine_negative_after_clamps () =
  let e = Engine.create ~seed:1 in
  let fired = ref false in
  ignore (Engine.schedule e ~after:(-5.0) (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "fired" true !fired;
  Alcotest.(check (float 0.0)) "at time zero" 0.0 (Engine.now e)

let test_rng_copy_diverges_from_original () =
  let a = Rng.create 4 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 (Rng.copy a)) (Rng.int64 b)

let test_rng_pick_and_empty () =
  let r = Rng.create 6 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (Array.mem (Rng.pick r arr) arr)
  done;
  Alcotest.(check bool) "empty pick raises" true
    (try
       ignore (Rng.pick r [||]);
       false
     with Mdcc_util.Invariant.Violation _ -> true)

let test_topology_invalid_args () =
  Alcotest.(check bool) "bad matrix rejected" true
    (try
       ignore
         (Topology.make ~dc_names:[| "a"; "b" |] ~rtt:[| [| 0.0 |] |] ~nodes_per_dc:1 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero nodes rejected" true
    (try
       ignore (Topology.make ~dc_names:[| "a" |] ~rtt:[| [| 0.0 |] |] ~nodes_per_dc:0 ());
       false
     with Invalid_argument _ -> true)

let test_topology_custom_three_dc () =
  let topo =
    Topology.make ~dc_names:[| "x"; "y"; "z" |]
      ~rtt:[| [| 0.0; 10.0; 20.0 |]; [| 10.0; 0.0; 30.0 |]; [| 20.0; 30.0; 0.0 |] |]
      ~nodes_per_dc:2 ()
  in
  Alcotest.(check int) "6 nodes" 6 (Topology.num_nodes topo);
  Alcotest.(check (float 0.0)) "one-way" 10.0 (Topology.one_way topo 0 5)

let test_value_pp_and_key_containers () =
  let v = Value.of_list [ ("b", Value.Str "x"); ("a", Value.Int 1) ] in
  Alcotest.(check string) "pp sorted by attr" "{a=1; b=\"x\"}" (Format.asprintf "%a" Value.pp v);
  let k1 = Key.make ~table:"t" ~id:"1" and k2 = Key.make ~table:"t" ~id:"2" in
  let s = Key.Set.of_list [ k1; k2; k1 ] in
  Alcotest.(check int) "set dedups" 2 (Key.Set.cardinal s);
  let m = Key.Map.(empty |> add k1 "a" |> add k2 "b") in
  Alcotest.(check (option string)) "map find" (Some "b") (Key.Map.find_opt k2 m);
  let tbl = Key.Tbl.create 4 in
  Key.Tbl.replace tbl k1 42;
  Alcotest.(check (option int)) "tbl find" (Some 42) (Key.Tbl.find_opt tbl k1)

let test_update_predicates_and_pp () =
  Alcotest.(check bool) "guard flag" true (Update.is_read_guard (Update.Read_guard { vread = 0 }));
  Alcotest.(check bool) "delta flag" true (Update.is_commutative (Update.Delta []));
  let s = Format.asprintf "%a" Update.pp (Update.Delta [ ("x", -2); ("y", 3) ]) in
  Alcotest.(check string) "delta pp" "delta [x-2; y+3]" s;
  Alcotest.(check string) "guard pp" "guard v7"
    (Format.asprintf "%a" Update.pp (Update.Read_guard { vread = 7 }))

let test_harness_of_mdcc_round_robin () =
  let engine = Engine.create ~seed:12 in
  let config = Mdcc_core.Config.make ~replication:5 () in
  let schema = Schema.create [ { Schema.name = "item"; bounds = []; master_dc = 0 } ] in
  let cluster =
    Mdcc_core.Cluster.create ~engine
      ~spec:(Mdcc_core.Cluster.Spec.make ~app_servers_per_dc:2 ())
      ~config ~schema ()
  in
  let h = Harness.of_mdcc cluster ~name:"MDCC" in
  Alcotest.(check string) "name" "MDCC" h.Harness.name;
  Alcotest.(check int) "dcs" 5 h.Harness.num_dcs;
  h.Harness.load [ (Key.make ~table:"item" ~id:"k", Value.of_list [ ("n", Value.Int 1) ]) ];
  (* Submissions from one DC alternate over its two app servers and both
     decide. *)
  let done_count = ref 0 in
  for i = 0 to 3 do
    h.Harness.submit ~dc:1
      (Txn.make
         ~id:(Printf.sprintf "rr%d" i)
         ~updates:[ (Key.make ~table:"item" ~id:"k", Update.Delta [ ("n", 1) ]) ])
      (fun _ -> incr done_count)
  done;
  Engine.run ~until:60_000.0 engine;
  Alcotest.(check int) "all decided" 4 !done_count;
  match h.Harness.peek ~dc:0 (Key.make ~table:"item" ~id:"k") with
  | Some (v, _) -> Alcotest.(check int) "all applied" 5 (Value.get_int v "n")
  | None -> Alcotest.fail "row missing"

let test_cstruct_empty_lub_glb () =
  let module C = Mdcc_paxos.Cstruct.Make (struct
    type t = string

    let id x = x

    let commutes _ _ = false
  end) in
  Alcotest.(check bool) "lub with empty" true (C.lub C.empty C.empty = Some C.empty);
  let a = C.append C.empty "x" in
  Alcotest.(check bool) "glb with empty is empty" true (C.equal (C.glb a C.empty) C.empty);
  Alcotest.(check bool) "lub empty/a = a" true
    (match C.lub C.empty a with Some u -> C.equal u a | None -> false)

let test_session_watermark_initial () =
  let engine = Engine.create ~seed:3 in
  let config = Mdcc_core.Config.make ~replication:5 () in
  let schema = Schema.create [ { Schema.name = "item"; bounds = []; master_dc = 0 } ] in
  let cluster =
    Mdcc_core.Cluster.create ~engine ~spec:Mdcc_core.Cluster.Spec.default ~config ~schema ()
  in
  let session = Mdcc_core.Session.create (Mdcc_core.Cluster.coordinator cluster ~dc:0 ~rank:0) in
  Alcotest.(check int) "no watermark" 0
    (Mdcc_core.Session.watermark session (Key.make ~table:"item" ~id:"q"))

let suite =
  [
    Alcotest.test_case "engine schedule_at in past clamps" `Quick
      test_engine_schedule_in_past_clamps;
    Alcotest.test_case "engine negative delay clamps" `Quick test_engine_negative_after_clamps;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_diverges_from_original;
    Alcotest.test_case "rng pick" `Quick test_rng_pick_and_empty;
    Alcotest.test_case "topology invalid args" `Quick test_topology_invalid_args;
    Alcotest.test_case "topology custom 3-DC" `Quick test_topology_custom_three_dc;
    Alcotest.test_case "value pp & key containers" `Quick test_value_pp_and_key_containers;
    Alcotest.test_case "update predicates & pp" `Quick test_update_predicates_and_pp;
    Alcotest.test_case "harness round-robin" `Quick test_harness_of_mdcc_round_robin;
    Alcotest.test_case "cstruct empty lub/glb" `Quick test_cstruct_empty_lub_glb;
    Alcotest.test_case "session watermark initial" `Quick test_session_watermark_initial;
  ]
