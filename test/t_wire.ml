(* Wire front-end tests: the timer wheel, the incremental parser under
   arbitrary chunk boundaries and malformed input, the connection handler
   over a synchronous fake backend, the full wire stack over the *simulated*
   runtime (pinning that the protocol layer is runtime-agnostic), the
   socket loop's Messages.size_of byte metering, and the server binary's
   SIGTERM graceful drain. *)

module Wheel = Mdcc_runtime_unix.Timer_wheel
module Loop = Mdcc_runtime_unix.Loop
module Runtime = Mdcc_core.Runtime
module Messages = Mdcc_core.Messages
module Config = Mdcc_core.Config
module Cluster = Mdcc_core.Cluster
module Session = Mdcc_core.Session
module Engine = Mdcc_sim.Engine
module Rng = Mdcc_util.Rng
module Protocol = Mdcc_wire.Protocol
module Parser = Mdcc_wire.Parser
module Backend = Mdcc_wire.Backend
module Handler = Mdcc_wire.Handler
open Mdcc_storage

(* ---------------- timer wheel ---------------- *)

let test_wheel_order () =
  let w = Wheel.create ~now:0.0 () in
  let fired = ref [] in
  let tag name () = fired := name :: !fired in
  ignore (Wheel.set w ~now:0.0 ~after:5.0 (tag "b5"));
  ignore (Wheel.set w ~now:0.0 ~after:2.0 (tag "a2"));
  ignore (Wheel.set w ~now:0.0 ~after:5.0 (tag "c5"));
  ignore (Wheel.set w ~now:0.0 ~after:900.0 (tag "d900"));
  Alcotest.(check int) "pending" 4 (Wheel.pending w);
  Wheel.advance w ~now:10.0;
  Alcotest.(check (list string))
    "deadline order, insertion-stable within a deadline" [ "a2"; "b5"; "c5" ]
    (List.rev !fired);
  Wheel.advance w ~now:1000.0;
  Alcotest.(check (list string)) "far timer fires" [ "a2"; "b5"; "c5"; "d900" ]
    (List.rev !fired);
  Alcotest.(check int) "drained" 0 (Wheel.pending w)

let test_wheel_cancel () =
  let w = Wheel.create ~now:0.0 () in
  let fired = ref 0 in
  let h = Wheel.set w ~now:0.0 ~after:3.0 (fun () -> incr fired) in
  ignore (Wheel.set w ~now:0.0 ~after:3.0 (fun () -> incr fired));
  Wheel.cancel w h;
  Wheel.cancel w h;
  Alcotest.(check int) "cancel is lazy but counted once" 1 (Wheel.pending w);
  Wheel.advance w ~now:10.0;
  Alcotest.(check int) "only the live timer fired" 1 !fired

let test_wheel_clamp () =
  let w = Wheel.create ~now:100.0 () in
  let fired = ref false in
  ignore (Wheel.set w ~now:100.0 ~after:0.0 (fun () -> fired := true));
  Wheel.advance w ~now:100.0;
  Alcotest.(check bool) "zero-delay timer never fires at set time" false !fired;
  Wheel.advance w ~now:102.0;
  Alcotest.(check bool) "fires on the next tick" true !fired;
  (* a timer set from inside a callback lands on a later tick, not the
     one being swept — no infinite same-tick loop *)
  let again = ref 0 in
  let rec resched () =
    if !again < 3 then begin
      incr again;
      ignore (Wheel.set w ~now:110.0 ~after:0.0 resched)
    end
  in
  ignore (Wheel.set w ~now:105.0 ~after:1.0 resched);
  Wheel.advance w ~now:120.0;
  Alcotest.(check int) "reschedule chain progressed across ticks" 3 !again

(* ---------------- parser ---------------- *)

let render_item = function
  | Parser.Req r -> Format.asprintf "%a" Protocol.pp_request r
  | Parser.Bad msg -> "BAD:" ^ msg
  | Parser.Junk -> "JUNK"

let drain p =
  let rec go acc = match Parser.next p with None -> List.rev acc | Some i -> go (i :: acc) in
  go []

let items_of_feeds feeds =
  let p = Parser.create () in
  let all = List.concat_map (fun s -> Parser.feed_string p s; drain p) feeds in
  List.map render_item all

let canonical_stream =
  "version\r\nset alpha 7 0 5\r\nhello\r\ngets alpha\r\nget alpha beta\r\n"
  ^ "cas alpha 0 0 2 9\r\nhi\r\ndelete beta noreply\r\nread alpha majority\r\n"
  ^ "txn\r\nset beta 0 0 4\r\nab\rc\r\ncommit\r\nabort\r\nstats\r\n"
  ^ "stats detail\r\nmetrics\r\nGET /metrics HTTP/1.1\r\nquit\r\n"

let canonical_items =
  [
    "version";
    "set alpha flags=7 exptime=0 bytes=5 \"hello\"";
    "gets alpha";
    "get alpha beta";
    "cas alpha flags=0 exptime=0 bytes=2 \"hi\" cas=9";
    "delete beta noreply";
    "read alpha majority";
    "txn";
    (* binary-safe payload: a bare CR inside the 4-byte data block *)
    "set beta flags=0 exptime=0 bytes=4 \"ab\\rc\"";
    "commit";
    "abort";
    "stats";
    "stats detail";
    "metrics";
    "GET /metrics";
    "quit";
  ]

let test_parser_pinned () =
  Alcotest.(check (list string)) "whole-buffer feed" canonical_items
    (items_of_feeds [ canonical_stream ]);
  let bytes_feed =
    List.init (String.length canonical_stream) (fun i -> String.make 1 canonical_stream.[i])
  in
  Alcotest.(check (list string)) "byte-by-byte feed" canonical_items
    (items_of_feeds bytes_feed)

let test_parser_random_chunks () =
  (* seeded RNG: every run cuts the same streams at the same offsets *)
  let rng = Rng.create 2026 in
  for _round = 1 to 50 do
    let rec cut acc off =
      if off >= String.length canonical_stream then List.rev acc
      else begin
        let n =
          Stdlib.min (1 + Rng.int rng 9) (String.length canonical_stream - off)
        in
        cut (String.sub canonical_stream off n :: acc) (off + n)
      end
    in
    Alcotest.(check (list string)) "random chunk boundaries" canonical_items
      (items_of_feeds (cut [] 0))
  done

let test_parser_malformed () =
  let check_items name input expected =
    Alcotest.(check (list string)) name expected (items_of_feeds [ input ])
  in
  let big_key = String.make 251 'k' in
  check_items "oversized key"
    (Printf.sprintf "get %s\r\nversion\r\n" big_key)
    [ "BAD:bad key"; "version" ];
  check_items "key with control chars" "get a\tb\r\nversion\r\n" [ "BAD:bad key"; "version" ];
  check_items "bad cas token + stream stays aligned"
    "cas k 0 0 3 notanint\r\nxyz\r\nversion\r\n"
    (* the declared 3-byte payload is skipped, not replayed as a command *)
    [ "BAD:bad cas token"; "version" ];
  check_items "negative flags" "set k -1 0 3\r\nxyz\r\nversion\r\n"
    [ "BAD:bad command line format"; "version" ];
  check_items "unparseable byte count" "set k 0 0 wat\r\nget k\r\n"
    [ "BAD:bad command line format"; "get k" ];
  check_items "bad data terminator resyncs at next line" "set k 0 0 3\r\nxyzJUNK\r\nget k\r\n"
    [ "BAD:bad data chunk"; "get k" ];
  check_items "unknown command" "frobnicate now\r\nversion\r\n" [ "JUNK"; "version" ];
  check_items "empty line" "\r\nversion\r\n" [ "JUNK"; "version" ];
  check_items "missing keys" "get\r\nversion\r\n" [ "BAD:no keys"; "version" ]

let test_parser_limits () =
  (* oversized value: rejected up front, payload skipped byte-for-byte *)
  let p = Parser.create ~max_data:8 () in
  Parser.feed_string p "set k 0 0 32\r\n";
  Parser.feed_string p (String.make 16 'x');
  Parser.feed_string p (String.make 16 'y');
  Parser.feed_string p "\r\nversion\r\n";
  Alcotest.(check (list string)) "oversized value skipped"
    [ "BAD:object too large"; "version" ]
    (List.map render_item (drain p));
  (* overlong command line: rejected mid-line, tail discarded *)
  let p = Parser.create ~max_line:64 () in
  Parser.feed_string p ("get " ^ String.make 100 'a');
  Parser.feed_string p ("aaa\r\nversion\r\n");
  Alcotest.(check (list string)) "overlong line" [ "BAD:line too long"; "version" ]
    (List.map render_item (drain p));
  (* truncated payload: no item until the rest arrives, no crash *)
  let p = Parser.create () in
  Parser.feed_string p "set k 0 0 10\r\nhalf";
  Alcotest.(check int) "nothing emitted yet" 0 (List.length (drain p));
  Parser.feed_string p "other\rX";
  Alcotest.(check int) "still waiting for terminator" 0 (List.length (drain p));
  Parser.feed_string p "\n";
  (* 10 bytes arrived but the terminator bytes were "\rX" -> error *)
  Alcotest.(check (list string)) "mis-terminated once complete" [ "BAD:bad data chunk" ]
    (List.map render_item (drain p))

(* ---------------- handler over a synchronous fake backend ---------------- *)

let fake_backend () =
  let store = Hashtbl.create 16 in
  let version = ref 0 in
  let put key flags data =
    incr version;
    Hashtbl.replace store key (flags, data, !version)
  in
  let get key _level k =
    k
      (match Hashtbl.find_opt store key with
      | Some (flags, data, v) ->
        Some { Protocol.h_key = key; h_flags = flags; h_data = data; h_cas = v }
      | None -> None)
  in
  {
    Backend.b_get = get;
    b_set = (fun ~key ~flags ~data k -> put key flags data; k Backend.Stored);
    b_cas =
      (fun ~key ~flags ~data ~cas k ->
        match Hashtbl.find_opt store key with
        | None -> k Backend.Not_found
        | Some (_, _, v) when v <> cas -> k Backend.Exists
        | Some _ -> put key flags data; k Backend.Stored);
    b_delete =
      (fun key k ->
        if Hashtbl.mem store key then begin
          Hashtbl.remove store key;
          k Backend.Stored
        end
        else k Backend.Not_found);
    b_commit =
      (fun ops k ->
        List.iter
          (function
            | Backend.T_set { key; flags; data } -> put key flags data
            | Backend.T_delete key -> Hashtbl.remove store key)
          ops;
        k (Ok ()));
    b_stats = (fun () -> [ ("ping", "pong") ]);
  }

let test_handler_conversation () =
  let out = Buffer.create 256 in
  let closed = ref false in
  let h =
    Handler.create ~backend:(fake_backend ())
      ~write:(Buffer.add_string out)
      ~close:(fun () -> closed := true)
      ()
  in
  let feed s = Handler.on_data h (Bytes.of_string s) 0 (String.length s) in
  feed "version\r\n";
  feed "set a 7 0 3\r\nfoo\r\n";
  feed "gets a\r\n";
  feed "txn\r\nset b 0 0 1\r\nx\r\ndelete a\r\ncas a 0 0 3 1\r\nyyy\r\ncommit\r\n";
  feed "get a\r\nget b\r\n";
  feed "txn\r\nabort\r\ncommit\r\n";
  feed "set c 1 0 1 noreply\r\nz\r\nget c\r\n";
  feed "stats\r\n";
  Alcotest.(check string) "pinned conversation"
    ("VERSION mdcc-wire/1\r\n" ^ "STORED\r\n" ^ "VALUE a 7 3 1\r\nfoo\r\nEND\r\n"
   ^ "STARTED\r\nQUEUED\r\nQUEUED\r\nCLIENT_ERROR cas not allowed inside txn\r\nCOMMITTED\r\n"
   ^ "END\r\n" ^ "VALUE b 0 1\r\nx\r\nEND\r\n"
   ^ "STARTED\r\nABORTED by client\r\nCLIENT_ERROR no open txn\r\n"
   ^ "VALUE c 1 1\r\nz\r\nEND\r\n" ^ "STAT ping pong\r\nEND\r\n")
    (Buffer.contents out);
  Alcotest.(check bool) "idle between requests" true (Handler.idle h);
  Buffer.clear out;
  feed "quit\r\n";
  Alcotest.(check bool) "quit closes" true !closed

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Live exposition over the handler: the same registry feeds [metrics]
   (Prometheus text), [stats detail] (the verbatim-name firehose), and
   HTTP GET /metrics — and the per-verb counters it serves move with the
   conversation that precedes the scrape. *)
let test_handler_metrics () =
  let out = Buffer.create 1024 in
  let obs = Mdcc_obs.Obs.create () in
  let closed = ref false in
  let h =
    Handler.create ~backend:(fake_backend ())
      ~write:(Buffer.add_string out)
      ~close:(fun () -> closed := true)
      ~obs ()
  in
  let feed s = Handler.on_data h (Bytes.of_string s) 0 (String.length s) in
  feed "set a 0 0 3\r\nfoo\r\nget a\r\nget nope\r\n";
  Buffer.clear out;
  feed "metrics\r\n";
  let body = Buffer.contents out in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" needle) true
        (contains ~needle body))
    [
      "# TYPE mdcc_wire_cmd_set_total counter";
      "mdcc_wire_cmd_set_total 1\n";
      "mdcc_wire_cmd_get_total 2\n";
      "mdcc_wire_get_hits_total 1\n";
      "mdcc_wire_get_misses_total 1\n";
      "mdcc_wire_bytes_read_total ";
    ];
  Alcotest.(check bool) "ends with END" true
    (String.length body >= 5 && String.equal (String.sub body (String.length body - 5) 5) "END\r\n");
  Buffer.clear out;
  feed "stats detail\r\n";
  let detail = Buffer.contents out in
  Alcotest.(check bool) "stats detail serves verbatim registry names" true
    (contains ~needle:"STAT wire.cmd.get 2\r\n" detail);
  (* An HTTP scrape: headers after the request line must not echo as
     ERROR replies — the handler answers and closes first. *)
  Buffer.clear out;
  feed "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
  let http = Buffer.contents out in
  Alcotest.(check bool) "HTTP status line" true
    (contains ~needle:"HTTP/1.0 200 OK\r\n" http);
  Alcotest.(check bool) "prometheus content type" true
    (contains ~needle:"Content-Type: text/plain; version=0.0.4\r\n" http);
  Alcotest.(check bool) "body carries the counters" true
    (contains ~needle:"mdcc_wire_cmd_set_total 1\n" http);
  Alcotest.(check bool) "no ERROR echoed for header lines" false
    (contains ~needle:"ERROR" http);
  Alcotest.(check bool) "connection closed after the scrape" true !closed

let test_parser_resync_counter () =
  let p = Parser.create () in
  Parser.feed_string p "cas k 0 0 3 notanint\r\nxyz\r\nset k 0 0 3\r\nxyzJUNK\r\nversion\r\n";
  let items = List.map render_item (drain p) in
  Alcotest.(check (list string)) "stream re-aligns after both errors"
    [ "BAD:bad cas token"; "BAD:bad data chunk"; "version" ]
    items;
  Alcotest.(check int) "both resyncs counted" 2 (Parser.resyncs p)

(* ---------------- the full wire stack over the simulated runtime -------- *)

let kv_schema = Schema.create [ { Schema.name = "kv"; bounds = []; master_dc = 0 } ]

let test_wire_over_sim () =
  let engine = Engine.create ~seed:7 in
  let config = Config.make ~replication:5 () in
  let cluster = Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema:kv_schema () in
  let session = Session.create (Cluster.coordinator cluster ~dc:0 ~rank:0) in
  let counter = ref 0 in
  let next_txid () = incr counter; Printf.sprintf "w%d" !counter in
  let backend = Backend.of_session ~table:"kv" ~next_txid session in
  let out = Buffer.create 256 in
  let h =
    Handler.create ~backend ~write:(Buffer.add_string out) ~close:(fun () -> ()) ()
  in
  let feed s = Handler.on_data h (Bytes.of_string s) 0 (String.length s) in
  (* one pipelined burst; every reply is produced by real MDCC commits
     running in the DES — byte-identical on every run *)
  feed
    ("set a 0 0 5\r\nhello\r\ngets a\r\n" ^ "cas a 0 0 5 1\r\nworld\r\ngets a\r\n"
   ^ "cas a 0 0 2 1\r\nxx\r\n" ^ "txn\r\nset x 0 0 1\r\n1\r\nset y 0 0 1\r\n2\r\ncommit\r\n"
   ^ "gets x y\r\ndelete a\r\nget a\r\nread y majority\r\n");
  Engine.run ~until:120_000.0 engine;
  Alcotest.(check string) "wire conversation over the DES"
    ("STORED\r\n" ^ "VALUE a 0 5 1\r\nhello\r\nEND\r\n" ^ "STORED\r\n"
   ^ "VALUE a 0 5 2\r\nworld\r\nEND\r\n" ^ "EXISTS\r\n"
   ^ "STARTED\r\nQUEUED\r\nQUEUED\r\nCOMMITTED\r\n"
   ^ "VALUE x 0 1 1\r\n1\r\nVALUE y 0 1 1\r\n2\r\nEND\r\n" ^ "DELETED\r\n" ^ "END\r\n"
   ^ "VALUE y 0 1 1\r\n2\r\nEND\r\n")
    (Buffer.contents out);
  Alcotest.(check bool) "handler drained" true (Handler.idle h)

(* ---------------- socket loop byte metering ---------------- *)

let test_loop_meter_size_of () =
  let lp = Loop.create ~seed:3 () in
  let rt = Loop.runtime lp in
  let delivered = ref 0 in
  Runtime.register rt 1 (fun ~src:_ _payload -> incr delivered);
  let sent_bytes = ref 0 and recv_bytes = ref 0 in
  Loop.set_meter lp
    {
      Loop.w_size = Messages.size_of;
      w_on_send = (fun ~src:_ ~dst:_ ~bytes -> sent_bytes := !sent_bytes + bytes);
      w_on_deliver = (fun ~src:_ ~dst:_ ~bytes -> recv_bytes := !recv_bytes + bytes);
    };
  let payload =
    Messages.Phase1a
      { key = Key.make ~table:"kv" ~id:"x"; ballot = Mdcc_paxos.Ballot.initial_fast }
  in
  Runtime.send rt ~src:0 ~dst:1 payload;
  Loop.poll lp ~max_wait_ms:0.0;
  Alcotest.(check int) "delivered" 1 !delivered;
  let expect = Messages.size_of payload in
  Alcotest.(check bool) "size_of is positive" true (expect > 0);
  (* framing charges Messages.size_of — the single source of truth shared
     with the simulated network's meter *)
  Alcotest.(check int) "sent bytes = size_of" expect !sent_bytes;
  Alcotest.(check int) "delivered bytes = size_of" expect !recv_bytes

(* ---------------- server binary: SIGTERM graceful drain ---------------- *)

let server_exe =
  if Sys.file_exists "../bin/server_cli.exe" then "../bin/server_cli.exe"
  else "_build/default/bin/server_cli.exe"

let deadline_read fd buf ~deadline =
  let timeout = deadline -. Unix.gettimeofday () in
  if timeout <= 0.0 then Alcotest.fail "timed out waiting for server bytes";
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> Alcotest.fail "timed out waiting for server bytes"
  | _ -> Unix.read fd buf 0 (Bytes.length buf)

let count_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i acc =
    if i + n > m then acc
    else if String.equal (String.sub s i n) sub then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_server_sigterm () =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process server_exe
      [| server_exe; "--nodes"; "3"; "--port"; "0" |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  (* port announcement: "LISTENING <port>\n" *)
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 64 in
  let rec read_port () =
    let n = deadline_read out_r buf ~deadline in
    if n = 0 then Alcotest.fail "server exited before announcing its port";
    Buffer.add_subbytes acc buf 0 n;
    match String.index_opt (Buffer.contents acc) '\n' with
    | None -> read_port ()
    | Some _ -> Scanf.sscanf (Buffer.contents acc) "LISTENING %d" (fun p -> p)
  in
  let port = read_port () in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  (* a pipelined batch, then SIGTERM once the server is mid-batch *)
  let batch = Buffer.create 2048 in
  for i = 0 to 49 do
    Buffer.add_string batch (Printf.sprintf "set sk%02d 0 0 4\r\nabcd\r\n" i)
  done;
  let payload = Buffer.contents batch in
  let written = Unix.write_substring fd payload 0 (String.length payload) in
  Alcotest.(check int) "batch fits the socket buffer" (String.length payload) written;
  let replies = Buffer.create 1024 in
  let n = deadline_read fd buf ~deadline in
  Buffer.add_subbytes replies buf 0 n;
  Unix.kill pid Sys.sigterm;
  (* the drain must answer every queued set before the server exits *)
  let rec read_until_eof () =
    let n = deadline_read fd buf ~deadline in
    if n > 0 then begin
      Buffer.add_subbytes replies buf 0 n;
      read_until_eof ()
    end
  in
  read_until_eof ();
  Unix.close fd;
  Unix.close out_r;
  Alcotest.(check int) "all pipelined sets answered across the SIGTERM" 50
    (count_substring ~sub:"STORED\r\n" (Buffer.contents replies));
  let rec wait_exit () =
    match Unix.waitpid [ WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        Unix.kill pid Sys.sigkill;
        Alcotest.fail "server did not exit after SIGTERM"
      end
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait_exit ()
      end
    | _, status -> status
  in
  match wait_exit () with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "server exited %d, wanted 0" n
  | Unix.WSIGNALED s -> Alcotest.failf "server killed by signal %d" s
  | Unix.WSTOPPED _ -> Alcotest.fail "server stopped"

(* ---------------- server binary: live metrics over real TCP ------------- *)

let read_until ~pred ~deadline fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 1024 in
  let rec go () =
    if pred (Buffer.contents acc) then Buffer.contents acc
    else begin
      let n = deadline_read fd buf ~deadline in
      if n = 0 then Buffer.contents acc
      else begin
        Buffer.add_subbytes acc buf 0 n;
        go ()
      end
    end
  in
  go ()

let send_all fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "short write" (String.length s) n

let test_server_metrics () =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process server_exe
      [| server_exe; "--nodes"; "3"; "--port"; "0" |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 64 in
  let rec read_port () =
    let n = deadline_read out_r buf ~deadline in
    if n = 0 then Alcotest.fail "server exited before announcing its port";
    Buffer.add_subbytes acc buf 0 n;
    match String.index_opt (Buffer.contents acc) '\n' with
    | None -> read_port ()
    | Some _ -> Scanf.sscanf (Buffer.contents acc) "LISTENING %d" (fun p -> p)
  in
  let port = read_port () in
  let connect () =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
    fd
  in
  let counter_value body name =
    (* last space-separated token of the matching exposition line *)
    String.split_on_char '\n' body
    |> List.find_map (fun line ->
           match String.split_on_char ' ' line with
           | [ n; v ] when String.equal n name -> int_of_string_opt v
           | _ -> None)
  in
  let fd = connect () in
  let ends_with_end s =
    String.length s >= 5 && String.equal (String.sub s (String.length s - 5) 5) "END\r\n"
  in
  (* one committed set, then a scrape over the ASCII command *)
  send_all fd "set mk 0 0 5\r\nhello\r\n";
  let stored = read_until ~pred:(contains ~needle:"STORED\r\n") ~deadline fd in
  Alcotest.(check bool) "set answered" true (contains ~needle:"STORED\r\n" stored);
  send_all fd "metrics\r\n";
  let m1 = read_until ~pred:ends_with_end ~deadline fd in
  Alcotest.(check bool) "exposition has typed counter families" true
    (contains ~needle:"# TYPE mdcc_wire_cmd_set_total counter" m1);
  let sets1 =
    match counter_value m1 "mdcc_wire_cmd_set_total" with
    | Some v -> v
    | None -> Alcotest.fail "mdcc_wire_cmd_set_total missing from exposition"
  in
  Alcotest.(check int) "one set counted" 1 sets1;
  (* more load: the same counter must move on the next scrape *)
  send_all fd "set mk2 0 0 2\r\nhi\r\n";
  ignore (read_until ~pred:(contains ~needle:"STORED\r\n") ~deadline fd);
  send_all fd "metrics\r\n";
  let m2 = read_until ~pred:ends_with_end ~deadline fd in
  (match counter_value m2 "mdcc_wire_cmd_set_total" with
  | Some v -> Alcotest.(check int) "counter moved under load" 2 v
  | None -> Alcotest.fail "mdcc_wire_cmd_set_total missing from second scrape");
  send_all fd "quit\r\n";
  Unix.close fd;
  (* same registry over HTTP, for curl / a scrape job *)
  let http_fd = connect () in
  send_all http_fd "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
  let http = read_until ~pred:(fun _ -> false) ~deadline http_fd in
  Unix.close http_fd;
  Alcotest.(check bool) "HTTP 200" true (contains ~needle:"HTTP/1.0 200 OK\r\n" http);
  Alcotest.(check bool) "scrape content type" true
    (contains ~needle:"Content-Type: text/plain; version=0.0.4\r\n" http);
  Alcotest.(check bool) "HTTP body serves the same registry" true
    (contains ~needle:"mdcc_wire_cmd_set_total 2" http);
  Unix.kill pid Sys.sigterm;
  Unix.close out_r;
  let rec wait_exit () =
    match Unix.waitpid [ WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        Unix.kill pid Sys.sigkill;
        Alcotest.fail "server did not exit after SIGTERM"
      end
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait_exit ()
      end
    | _, status -> status
  in
  match wait_exit () with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "server exited %d, wanted 0" n
  | Unix.WSIGNALED s -> Alcotest.failf "server killed by signal %d" s
  | Unix.WSTOPPED _ -> Alcotest.fail "server stopped"

let suite =
  [
    Alcotest.test_case "timer wheel: firing order" `Quick test_wheel_order;
    Alcotest.test_case "timer wheel: cancellation" `Quick test_wheel_cancel;
    Alcotest.test_case "timer wheel: next-tick clamp" `Quick test_wheel_clamp;
    Alcotest.test_case "parser: pinned stream, any chunking" `Quick test_parser_pinned;
    Alcotest.test_case "parser: seeded random chunk boundaries" `Quick
      test_parser_random_chunks;
    Alcotest.test_case "parser: malformed input" `Quick test_parser_malformed;
    Alcotest.test_case "parser: limits and truncation" `Quick test_parser_limits;
    Alcotest.test_case "handler: pinned conversation" `Quick test_handler_conversation;
    Alcotest.test_case "handler: live metrics exposition" `Quick test_handler_metrics;
    Alcotest.test_case "parser: resync counter" `Quick test_parser_resync_counter;
    Alcotest.test_case "wire stack over the simulated runtime" `Quick test_wire_over_sim;
    Alcotest.test_case "socket loop meters Messages.size_of" `Quick test_loop_meter_size_of;
    Alcotest.test_case "server_cli: SIGTERM graceful drain" `Quick test_server_sigterm;
    Alcotest.test_case "server_cli: live metrics over TCP" `Quick test_server_metrics;
  ]
