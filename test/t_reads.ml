(* Read strategies (§4.2): local read-committed reads may be stale; majority
   reads return the latest committed version. *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Coordinator = Mdcc_core.Coordinator

let read_sync ~level engine c key =
  let result = ref None and got = ref false in
  Coordinator.read ~level c key (fun r ->
      result := r;
      got := true);
  Engine.run ~until:(Engine.now engine +. 10_000.0) engine;
  Alcotest.(check bool) "read answered" true !got;
  !result

let read_local_sync engine c key = read_sync ~level:`Local engine c key

let read_majority_sync engine c key = read_sync ~level:`Majority engine c key

let test_local_read_returns_committed () =
  let engine, cluster = make_cluster ~items:3 () in
  let c = Cluster.coordinator cluster ~dc:2 ~rank:0 in
  match read_local_sync engine c (item 0) with
  | Some (v, ver) ->
    Alcotest.(check int) "value" 100 (Value.get_int v "stock");
    Alcotest.(check int) "version" 1 ver
  | None -> Alcotest.fail "expected a row"

let test_local_read_missing () =
  let engine, cluster = make_cluster ~items:1 () in
  let c = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  Alcotest.(check bool) "missing row reads None" true
    (read_local_sync engine c (Key.make ~table:"item" ~id:"nope") = None)

let test_local_read_never_sees_uncommitted () =
  (* Read-committed isolation: while an option is outstanding (accepted but
     not executed), readers still see the old value. *)
  let engine, cluster = make_cluster ~items:1 () in
  let c0 = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  Coordinator.submit c0
    (Txn.make ~id:"w" ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 1 }) ])
    (fun _ -> ());
  (* 60ms: proposals have reached the acceptors (option outstanding) but no
     fast quorum has been learned yet, so nothing may be visible. *)
  Engine.run ~until:60.0 engine;
  let c1 = Cluster.coordinator cluster ~dc:1 ~rank:0 in
  (match read_local_sync engine c1 (item 0) with
  | Some (v, _) ->
    Alcotest.(check bool) "old or new, never partial" true
      (let s = Value.get_int v "stock" in
       s = 100 || s = 1)
  | None -> Alcotest.fail "row must exist");
  Engine.run engine

let test_stale_local_vs_majority () =
  (* DC 4 misses an update (outage); after recovery, a local read there is
     stale, while a majority read returns the fresh version. *)
  let engine, cluster = make_cluster ~items:1 () in
  Cluster.fail_dc cluster 4;
  let o =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 5 }) ]
  in
  Alcotest.(check bool) "committed during outage" true (is_committed o);
  Cluster.recover_dc cluster 4;
  let c4 = Cluster.coordinator cluster ~dc:4 ~rank:0 in
  (match read_local_sync engine c4 (item 0) with
  | Some (v, ver) ->
    Alcotest.(check int) "local read stale" 100 (Value.get_int v "stock");
    Alcotest.(check int) "stale version" 1 ver
  | None -> Alcotest.fail "row must exist");
  match read_majority_sync engine c4 (item 0) with
  | Some (v, ver) ->
    Alcotest.(check int) "majority read fresh" 5 (Value.get_int v "stock");
    Alcotest.(check int) "fresh version" 2 ver
  | None -> Alcotest.fail "row must exist"

let test_majority_read_of_deleted () =
  let engine, cluster = make_cluster ~items:1 () in
  let o = run_txn engine cluster ~dc:0 [ (item 0, Update.Delete { vread = 1 }) ] in
  Alcotest.(check bool) "deleted" true (is_committed o);
  let c = Cluster.coordinator cluster ~dc:3 ~rank:0 in
  Alcotest.(check bool) "majority read sees tombstone" true
    (read_majority_sync engine c (item 0) = None)

let test_scan_local () =
  let engine, cluster = make_cluster ~items:20 ~partitions:2 () in
  (* Make item 7 the best seller. *)
  let o =
    run_txn engine cluster ~dc:0
      [ (item 7, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 999) ] }) ]
  in
  Alcotest.(check bool) "setup committed" true (is_committed o);
  let c = Cluster.coordinator cluster ~dc:2 ~rank:0 in
  let got = ref None in
  Coordinator.scan c ~table:"item" ~order_by:"stock" ~limit:3 (fun rows -> got := Some rows);
  Engine.run ~until:(Engine.now engine +. 10_000.0) engine;
  match !got with
  | Some ((top_key, top_value, _) :: _ as rows) ->
    Alcotest.(check int) "limit respected" 3 (List.length rows);
    Alcotest.(check string) "best seller first" "7" top_key.Key.id;
    Alcotest.(check int) "value" 999 (Value.get_int top_value "stock")
  | Some [] -> Alcotest.fail "no rows"
  | None -> Alcotest.fail "scan never answered"

let test_scan_empty_table () =
  let engine, cluster = make_cluster ~items:2 () in
  let c = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  let got = ref None in
  Coordinator.scan c ~table:"order" ~limit:10 (fun rows -> got := Some rows);
  Engine.run ~until:10_000.0 engine;
  Alcotest.(check bool) "empty table scans empty" true (!got = Some [])

let suite =
  [
    Alcotest.test_case "local read returns committed" `Quick test_local_read_returns_committed;
    Alcotest.test_case "local read of missing row" `Quick test_local_read_missing;
    Alcotest.test_case "read-committed: no uncommitted data" `Quick
      test_local_read_never_sees_uncommitted;
    Alcotest.test_case "stale local vs fresh majority read" `Quick test_stale_local_vs_majority;
    Alcotest.test_case "majority read of deleted row" `Quick test_majority_read_of_deleted;
    Alcotest.test_case "local scan with order/limit" `Quick test_scan_local;
    Alcotest.test_case "scan of empty table" `Quick test_scan_empty_table;
  ]
