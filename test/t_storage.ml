(* Unit tests for the storage substrate: values, keys, schema, updates,
   transactions and the versioned store. *)

open Mdcc_storage

let key_a = Key.make ~table:"item" ~id:"a"

let test_value_basics () =
  let v = Value.of_list [ ("stock", Value.Int 5); ("name", Value.Str "x") ] in
  Alcotest.(check int) "get_int" 5 (Value.get_int v "stock");
  Alcotest.(check int) "missing attr is 0" 0 (Value.get_int v "absent");
  Alcotest.(check bool) "get some" true (Value.get v "name" <> None);
  let v2 = Value.add_delta v "stock" (-2) in
  Alcotest.(check int) "delta applied" 3 (Value.get_int v2 "stock");
  Alcotest.(check int) "original untouched" 5 (Value.get_int v "stock");
  let v3 = Value.add_delta v "fresh" 7 in
  Alcotest.(check int) "delta creates attr" 7 (Value.get_int v3 "fresh")

let test_value_get_int_on_string () =
  let v = Value.of_list [ ("name", Value.Str "x") ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Value.get_int v "name");
       false
     with Invalid_argument _ -> true)

let test_value_equal () =
  let a = Value.of_list [ ("x", Value.Int 1); ("y", Value.Str "s") ] in
  let b = Value.of_list [ ("y", Value.Str "s"); ("x", Value.Int 1) ] in
  Alcotest.(check bool) "order independent" true (Value.equal a b);
  Alcotest.(check bool) "differ" false (Value.equal a (Value.set a "x" (Value.Int 2)))

let test_key_ordering () =
  let a = Key.make ~table:"a" ~id:"2" and b = Key.make ~table:"b" ~id:"1" in
  Alcotest.(check bool) "table first" true (Key.compare a b < 0);
  Alcotest.(check bool) "equal" true (Key.equal key_a (Key.make ~table:"item" ~id:"a"));
  Alcotest.(check string) "to_string" "item/a" (Key.to_string key_a)

let stock_bound = { Schema.attr = "stock"; lower = Some 0; upper = Some 100 }

let schema =
  Schema.create
    [ { Schema.name = "item"; bounds = [ stock_bound ]; master_dc = 2 } ]

let test_schema_lookup () =
  Alcotest.(check int) "master dc" 2 (Schema.master_dc schema key_a);
  Alcotest.(check int) "bounds" 1 (List.length (Schema.bounds_of schema key_a));
  Alcotest.(check bool) "unknown table raises" true
    (try
       ignore (Schema.table schema "nope");
       false
     with Not_found -> true)

let test_schema_duplicate () =
  Alcotest.(check bool) "duplicate raises" true
    (try
       ignore
         (Schema.create
            [
              { Schema.name = "t"; bounds = []; master_dc = 0 };
              { Schema.name = "t"; bounds = []; master_dc = 1 };
            ]);
       false
     with Invalid_argument _ -> true)

let test_schema_check_value () =
  let ok = Value.of_list [ ("stock", Value.Int 50) ] in
  let low = Value.of_list [ ("stock", Value.Int (-1)) ] in
  let high = Value.of_list [ ("stock", Value.Int 101) ] in
  Alcotest.(check bool) "in bounds" true (Schema.check_value schema key_a ok);
  Alcotest.(check bool) "below" false (Schema.check_value schema key_a low);
  Alcotest.(check bool) "above" false (Schema.check_value schema key_a high);
  (* Missing attribute counts as 0, which is inside [0,100]. *)
  Alcotest.(check bool) "missing ok" true (Schema.check_value schema key_a Value.empty)

let test_txn_duplicate_key_rejected () =
  Alcotest.(check bool) "duplicate key raises" true
    (try
       ignore
         (Txn.make ~id:"t"
            ~updates:
              [ (key_a, Update.Delta [ ("stock", -1) ]); (key_a, Update.Delta [ ("stock", -1) ]) ]);
       false
     with Invalid_argument _ -> true)

let test_txn_predicates () =
  let ro = Txn.make ~id:"r" ~updates:[] in
  Alcotest.(check bool) "read only" true (Txn.is_read_only ro);
  let d = Txn.make ~id:"d" ~updates:[ (key_a, Update.Delta [ ("stock", -1) ]) ] in
  Alcotest.(check bool) "commutative only" true (Txn.commutative_only d);
  let m =
    Txn.make ~id:"m"
      ~updates:
        [
          (key_a, Update.Delta [ ("stock", -1) ]);
          (Key.make ~table:"item" ~id:"b", Update.Insert Value.empty);
        ]
  in
  Alcotest.(check bool) "mixed not commutative-only" false (Txn.commutative_only m)

let fresh_store () = Store.create schema

let test_store_insert_read () =
  let s = fresh_store () in
  Alcotest.(check bool) "absent" true (Store.read s key_a = None);
  Alcotest.(check int) "version 0" 0 (Store.version s key_a);
  Store.apply s key_a (Update.Insert (Value.of_list [ ("stock", Value.Int 9) ]));
  (match Store.read s key_a with
  | Some (v, ver) ->
    Alcotest.(check int) "value" 9 (Value.get_int v "stock");
    Alcotest.(check int) "version 1" 1 ver
  | None -> Alcotest.fail "expected row");
  Alcotest.(check int) "size" 1 (Store.size s)

let test_store_validate () =
  let s = fresh_store () in
  Alcotest.(check bool) "insert ok on absent" true (Store.validate s key_a (Update.Insert Value.empty));
  Alcotest.(check bool) "physical fails on absent" false
    (Store.validate s key_a (Update.Physical { vread = 0; value = Value.empty }));
  Store.apply s key_a (Update.Insert Value.empty);
  Alcotest.(check bool) "insert fails on present" false
    (Store.validate s key_a (Update.Insert Value.empty));
  Alcotest.(check bool) "physical ok at v1" true
    (Store.validate s key_a (Update.Physical { vread = 1; value = Value.empty }));
  Alcotest.(check bool) "physical stale" false
    (Store.validate s key_a (Update.Physical { vread = 0; value = Value.empty }));
  Alcotest.(check bool) "delta ok when exists" true
    (Store.validate s key_a (Update.Delta [ ("stock", 1) ]))

let test_store_version_jump () =
  (* Applying a physical update sets version = vread + 1: a replica that
     missed an update converges when it executes the next one. *)
  let s = fresh_store () in
  Store.apply s key_a (Update.Insert (Value.of_list [ ("stock", Value.Int 1) ]));
  Store.apply s key_a
    (Update.Physical { vread = 4; value = Value.of_list [ ("stock", Value.Int 42) ] });
  Alcotest.(check int) "version jumped" 5 (Store.version s key_a);
  match Store.read s key_a with
  | Some (v, _) -> Alcotest.(check int) "value" 42 (Value.get_int v "stock")
  | None -> Alcotest.fail "row"

let test_store_delete_and_reinsert () =
  let s = fresh_store () in
  Store.apply s key_a (Update.Insert (Value.of_list [ ("stock", Value.Int 1) ]));
  Store.apply s key_a (Update.Delete { vread = 1 });
  Alcotest.(check bool) "gone" true (Store.read s key_a = None);
  Alcotest.(check int) "tombstone version" 2 (Store.version s key_a);
  Store.apply s key_a (Update.Insert (Value.of_list [ ("stock", Value.Int 3) ]));
  match Store.read s key_a with
  | Some (v, ver) ->
    Alcotest.(check int) "reinserted" 3 (Value.get_int v "stock");
    Alcotest.(check int) "version continues" 3 ver
  | None -> Alcotest.fail "row"

let test_store_delta_apply () =
  let s = fresh_store () in
  Store.apply s key_a (Update.Insert (Value.of_list [ ("stock", Value.Int 10) ]));
  Store.apply s key_a (Update.Delta [ ("stock", -3); ("sold", 3) ]);
  match Store.read s key_a with
  | Some (v, ver) ->
    Alcotest.(check int) "stock" 7 (Value.get_int v "stock");
    Alcotest.(check int) "sold" 3 (Value.get_int v "sold");
    Alcotest.(check int) "version" 2 ver
  | None -> Alcotest.fail "row"

let test_store_fold_iter () =
  let s = fresh_store () in
  for i = 0 to 9 do
    Store.apply s (Key.make ~table:"item" ~id:(string_of_int i)) (Update.Insert Value.empty)
  done;
  Alcotest.(check int) "fold counts" 10 (Store.fold s ~init:0 ~f:(fun _ _ acc -> acc + 1));
  let n = ref 0 in
  Store.iter s (fun _ _ -> incr n);
  Alcotest.(check int) "iter counts" 10 !n

(* Property: a random interleaving of valid updates keeps version strictly
   increasing and equal to the number of applied updates when they are all
   deltas after one insert. *)
let prop_delta_versions =
  QCheck.Test.make ~name:"store versions count applied updates" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (int_range (-5) 5))
    (fun deltas ->
      let s = fresh_store () in
      Store.apply s key_a (Update.Insert Value.empty);
      List.iter (fun d -> Store.apply s key_a (Update.Delta [ ("stock", d) ])) deltas;
      Store.version s key_a = 1 + List.length deltas
      && Value.get_int (fst (Option.get (Store.read s key_a))) "stock"
         = List.fold_left ( + ) 0 deltas)

(* --- applied-set merging (anti-entropy repair substrate) --------------- *)

module Rstate = Mdcc_core.Rstate
module Messages = Mdcc_core.Messages

let up i = Update.Delta [ ("stock", -i) ]

let test_applied_set_idempotent () =
  let a = Rstate.applied_add (Rstate.applied_add [] "t1" (up 1)) "t2" (up 2) in
  Alcotest.(check int) "re-add is a no-op" 2 (List.length (Rstate.applied_add a "t1" (up 1)));
  Alcotest.(check bool) "merge with itself is identity" true (Rstate.applied_merge a a = a);
  Alcotest.(check bool) "membership" true
    (Rstate.applied_mem a "t1" && Rstate.applied_mem a "t2" && not (Rstate.applied_mem a "t3"))

let test_applied_set_commutative () =
  let a = Rstate.applied_add (Rstate.applied_add [] "t1" (up 1)) "t2" (up 2) in
  let b = Rstate.applied_add (Rstate.applied_add [] "t2" (up 2)) "t1" (up 1) in
  Alcotest.(check bool) "insertion order never matters" true (a = b);
  let x = Rstate.applied_add [] "t3" (up 3) in
  Alcotest.(check bool) "merge commutes" true
    (Rstate.applied_merge a x = Rstate.applied_merge x a)

let test_applied_set_merge_union () =
  let mine = Rstate.applied_add (Rstate.applied_add [] "t1" (up 1)) "t2" (up 2) in
  let theirs = Rstate.applied_add (Rstate.applied_add [] "t3" (up 3)) "t1" (up 1) in
  Alcotest.(check (list string)) "missing = theirs minus mine" [ "t3" ]
    (List.map fst (Rstate.applied_missing ~mine ~theirs));
  let merged = Rstate.applied_merge mine theirs in
  Alcotest.(check (list string)) "union, sorted" [ "t1"; "t2"; "t3" ]
    (Rstate.applied_txids merged);
  Alcotest.(check bool) "nothing missing after merge" true
    (Rstate.applied_missing ~mine:merged ~theirs = [])

let test_applied_digest_consistent () =
  let d = Messages.applied_digest in
  Alcotest.(check int) "permutation invariant"
    (d [ "a"; "b"; "c" ])
    (d [ "c"; "a"; "b" ]);
  Alcotest.(check bool) "membership sensitive" true (d [ "a"; "b" ] <> d [ "a"; "b"; "c" ]);
  (* Two replicas that merged the same entries in different orders render
     the same digest — the probe's equal-version divergence test. *)
  let mine = Rstate.applied_add (Rstate.applied_add [] "t1" (up 1)) "t2" (up 2) in
  let theirs = Rstate.applied_add (Rstate.applied_add [] "t3" (up 3)) "t1" (up 1) in
  Alcotest.(check int) "merged digests agree"
    (d (Rstate.applied_txids (Rstate.applied_merge mine theirs)))
    (d (Rstate.applied_txids (Rstate.applied_merge theirs mine)));
  Alcotest.(check bool) "diverged digests differ" true
    (d (Rstate.applied_txids mine) <> d (Rstate.applied_txids theirs))

let suite =
  [
    Alcotest.test_case "value basics" `Quick test_value_basics;
    Alcotest.test_case "value get_int on string raises" `Quick test_value_get_int_on_string;
    Alcotest.test_case "value equality" `Quick test_value_equal;
    Alcotest.test_case "key ordering" `Quick test_key_ordering;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "schema duplicate table" `Quick test_schema_duplicate;
    Alcotest.test_case "schema check_value" `Quick test_schema_check_value;
    Alcotest.test_case "txn duplicate key rejected" `Quick test_txn_duplicate_key_rejected;
    Alcotest.test_case "txn predicates" `Quick test_txn_predicates;
    Alcotest.test_case "store insert/read" `Quick test_store_insert_read;
    Alcotest.test_case "store validate" `Quick test_store_validate;
    Alcotest.test_case "store version jump" `Quick test_store_version_jump;
    Alcotest.test_case "store delete & reinsert" `Quick test_store_delete_and_reinsert;
    Alcotest.test_case "store delta apply" `Quick test_store_delta_apply;
    Alcotest.test_case "store fold/iter" `Quick test_store_fold_iter;
    Alcotest.test_case "applied set is idempotent" `Quick test_applied_set_idempotent;
    Alcotest.test_case "applied set is commutative" `Quick test_applied_set_commutative;
    Alcotest.test_case "applied set merge is union" `Quick test_applied_set_merge_union;
    Alcotest.test_case "applied digest is set-consistent" `Quick test_applied_digest_consistent;
    QCheck_alcotest.to_alcotest prop_delta_versions;
  ]
