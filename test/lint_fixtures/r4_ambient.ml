(* Planted R4 violations: mutable ambient state bound at module top level.
   Lines are pinned by t_lint — renumber the assertions if this file moves. *)

let counter = ref 0

let cache = Hashtbl.create 16

let scratch = Buffer.create 64

let table = Array.make 8 0

let hidden =
  let log = ref [] in
  fun x -> log := x :: !log

(* Fine: allocation happens per call, not per module. *)
let fresh () = ref 0

(* Fine: the DLS default closure allocates per domain. *)
let slot = Domain.DLS.new_key (fun () -> ref 0)

(* Fine: immutable top-level data. *)
let names = [ "us-west"; "us-east" ]
