(* One R1 violation, suppressed by the allowlist under test. *)

let snapshot tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
