(* Planted R3 violations: anonymous partiality in a protocol path. *)

let boom () = failwith "anonymous death"

let reject () = invalid_arg "bad argument"

let unreachable () = assert false

let yolo opt = Option.get opt

let first xs = List.hd xs
