(* R6 fixture: direct OS/channel effects in the deterministic core. *)
let env () = Unix.getenv "HOME"

let argv0 () = Sys.argv.(0)

let shout () = print_endline "hello"

let shout_fmt n = Printf.printf "%d\n" n

let slurp path = In_channel.with_open_text path In_channel.input_all

let bail () = exit 1

(* A locally defined [flush] shadows Stdlib's: calling it is not channel
   I/O and must not be flagged. *)
let flush t = t

let pump t = flush t
