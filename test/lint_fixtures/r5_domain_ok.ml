(* R5 negative fixture: every closure below is domain-safe. *)
let ok_atomic pool n =
  let total = Atomic.make 0 in
  Pool.map pool n (fun i -> Atomic.fetch_and_add total i)

let ok_task_local pool xs =
  Pool.map_list pool xs ~f:(fun x ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf (string_of_int x);
      Buffer.contents buf)

let ok_mutex pool n lock =
  let total = ref 0 in
  Pool.map pool n (fun i ->
      Mutex.lock lock;
      total := !total + i;
      Mutex.unlock lock)

let ok_immutable pool xs =
  let base = 10 in
  Pool.map_list pool xs ~f:(fun x -> base + x)

(* Not a spawner: same-domain iteration may touch local mutables freely. *)
let ok_sequential xs =
  let tbl = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace tbl x x) xs;
  Hashtbl.length tbl
