(* R7 negative fixture: complete handling and delegation are both fine. *)
type Network.payload += Ra of int | Rb of string

let complete p =
  match p with
  | Ra _ -> ()
  | Rb _ -> ()
  | _ -> ()

let delegating ~fallback p =
  match p with
  | Ra n -> ignore n
  | other -> fallback other
