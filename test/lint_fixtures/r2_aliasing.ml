(* Planted R2 violations: mutable state reachable from payloads. *)

type payload = ..

type cache = { mutable hits : int; name : string }

type wrapper = { inner : cache; tag : string }

type payload += Evil_array of int array

type payload += Evil_nested of wrapper

type payload += Clean_message of string * int

let bad_send net dst = Net.send net dst [| 1; 2; 3 |]
