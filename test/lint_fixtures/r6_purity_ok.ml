(* R6 negative fixture: pure formatting and benign constants are fine in
   the deterministic core. *)
let describe n = Printf.sprintf "n=%d" n

let pretty pp v = Format.asprintf "%a" pp v

let into_buffer fmt buf n = Format.fprintf fmt "%d" n |> fun () -> Buffer.length buf

let width () = Sys.word_size

let version () = Sys.ocaml_version
