(* R5 fixture: mutable enclosing-scope state escaping into task closures. *)
let bad_capture pool xs =
  let hits = Hashtbl.create 8 in
  Pool.map_list pool xs ~f:(fun x -> Hashtbl.length hits + x)

let bad_mutate pool n =
  let total = ref 0 in
  Pool.map pool n (fun i -> total := !total + i)

let bad_setfield pool row =
  Pool.map pool 4 (fun i -> row.version <- i)

(* Forwards its [~f] into the pool: a derived spawner the link fixpoint
   must discover, making the call below a spawn site too. *)
let derived pool xs ~f = Pool.map_list pool xs ~f

let bad_via_derived pool xs =
  let acc = ref 0 in
  derived pool xs ~f:(fun x -> acc := !acc + x)
