(* R7 cross-file fixture: handles one constructor of R7_exhaustive's
   family declared in r7_exhaustive.ml; the wildcard drops the rest. *)
let cross p =
  match p with
  | R7_exhaustive.Ping n -> n
  | _ -> 0
