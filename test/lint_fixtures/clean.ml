(* A well-behaved protocol module: sorted iteration, tagged invariants,
   simulator timestamps.  The linter must report nothing here. *)

module Table = Mdcc_util.Table
module Invariant = Mdcc_util.Invariant

type sample = { proposed_at : Mdcc_sim.Engine.sim_time; tag : string }

let count tbl = List.length (Table.sorted_bindings tbl)

let visit f tbl = Table.sorted_iter f tbl

let guarded = function
  | x :: _ -> x
  | [] -> Invariant.violate ~context:"Clean.guarded" "empty list"
