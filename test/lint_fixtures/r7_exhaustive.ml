(* R7 fixture: a payload family whose receiver drops constructors. *)
type Network.payload += Ping of int | Pong of int | Quit

let bad p =
  match p with
  | Ping n -> n
  | _ -> 0
