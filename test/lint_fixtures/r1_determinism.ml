(* Planted R1 violations: every marked line is nondeterministic. *)

let shuffle_seed () = Random.int 100

let wall_clock () = Sys.time ()

let wall_clock_us () = Unix.gettimeofday ()

let leak_order tbl = Hashtbl.iter (fun _ _ -> ()) tbl

let leak_count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0

let leak_seq tbl = Key.Tbl.to_seq tbl

type sample = { proposed_at : float; tag : string }
