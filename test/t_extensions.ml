(* Tests of the optional optimizations: message batching (conclusion of the
   paper) and the anti-entropy repair sweep (§3.2.3 / §5.3.4). *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator
module Net = Mdcc_sim.Network

let make_batched ?(batching = true) () =
  let engine = Engine.create ~seed:77 in
  let config = Config.make ~mode:Config.Full ~batching ~replication:5 () in
  let cluster =
    Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema:stock_schema ()
  in
  Cluster.load cluster (List.init 10 (fun i -> (item i, item_row 100)));
  (engine, cluster)

let multi_key_txn id =
  Txn.make ~id
    ~updates:
      [
        (item 0, Update.Delta [ ("stock", -1) ]);
        (item 1, Update.Delta [ ("stock", -1) ]);
        (item 2, Update.Delta [ ("stock", -1) ]);
      ]

let run_one_txn (engine, cluster) =
  let r = ref None in
  Coordinator.submit (Cluster.coordinator cluster ~dc:0 ~rank:0) (multi_key_txn "b1") (fun o ->
      r := Some o);
  Engine.run ~until:30_000.0 engine;
  (match !r with
  | Some Txn.Committed -> ()
  | Some (Txn.Aborted _) | None -> Alcotest.fail "txn should commit");
  (Net.stats (Cluster.network cluster)).Net.sent

let test_batching_reduces_messages () =
  let sent_plain = run_one_txn (make_batched ~batching:false ()) in
  let sent_batched = run_one_txn (make_batched ~batching:true ()) in
  (* Same 3-record commit: unbatched sends 3 proposals + 3 visibilities per
     replica; batched folds each into one message per replica. *)
  Alcotest.(check bool)
    (Printf.sprintf "batched (%d) well below unbatched (%d)" sent_batched sent_plain)
    true
    (Float.of_int sent_batched < 0.6 *. Float.of_int sent_plain)

let test_batching_preserves_outcomes () =
  (* Same workload with and without batching: identical outcomes & state. *)
  let run batching =
    let engine, cluster = make_batched ~batching () in
    let outcomes = ref [] in
    for i = 0 to 9 do
      Coordinator.submit
        (Cluster.coordinator cluster ~dc:(i mod 5) ~rank:0)
        (multi_key_txn (Printf.sprintf "t%d" i))
        (fun o -> outcomes := o :: !outcomes)
    done;
    Engine.run ~until:60_000.0 engine;
    let stocks = List.init 10 (fun i -> stock_at cluster ~dc:0 i) in
    (List.length (List.filter is_committed !outcomes), stocks)
  in
  let commits_a, stocks_a = run false in
  let commits_b, stocks_b = run true in
  Alcotest.(check int) "same commit count" commits_a commits_b;
  Alcotest.(check (list int)) "same final state" stocks_a stocks_b

let test_anti_entropy_repairs_recovered_dc () =
  let engine, cluster = make_cluster ~items:5 () in
  Cluster.fail_dc cluster 4;
  (* Commit a mix of physical and commutative updates while DC 4 is dark:
     deltas are NOT self-healing on the next update, so only the sweep can
     repair them. *)
  let o1 = run_txn engine cluster ~dc:0 [ (item 0, Update.Delta [ ("stock", -7) ]) ] in
  let o2 =
    run_txn engine cluster ~dc:1 [ (item 1, Update.Physical { vread = 1; value = item_row 33 }) ]
  in
  Alcotest.(check bool) "committed during outage" true (is_committed o1 && is_committed o2);
  Cluster.recover_dc cluster 4;
  Alcotest.(check int) "dc4 delta-stale" 100 (stock_at cluster ~dc:4 0);
  Alcotest.(check int) "dc4 physical-stale" 100 (stock_at cluster ~dc:4 1);
  Cluster.sync_dc cluster 4;
  Engine.run ~until:(Engine.now engine +. 10_000.0) engine;
  Alcotest.(check int) "delta repaired" 93 (stock_at cluster ~dc:4 0);
  Alcotest.(check int) "physical repaired" 33 (stock_at cluster ~dc:4 1);
  (* Versions agree too. *)
  for i = 0 to 4 do
    Alcotest.(check int) "version agrees"
      (snd (Option.get (Cluster.peek cluster ~dc:0 (item i))))
      (snd (Option.get (Cluster.peek cluster ~dc:4 (item i))))
  done

let test_sync_is_noop_when_current () =
  let engine, cluster = make_cluster ~items:3 () in
  let o = run_txn engine cluster ~dc:0 [ (item 0, Update.Delta [ ("stock", -1) ]) ] in
  Alcotest.(check bool) "committed" true (is_committed o);
  let before = (Net.stats (Cluster.network cluster)).Net.sent in
  Cluster.sync_dc cluster 2;
  Engine.run ~until:(Engine.now engine +. 5_000.0) engine;
  let after = (Net.stats (Cluster.network cluster)).Net.sent in
  (* Only the probe messages themselves; no catch-up traffic back. *)
  Alcotest.(check bool) "no repair traffic" true (after - before <= 5);
  Alcotest.(check int) "state unchanged" 99 (stock_at cluster ~dc:2 0)

let suite =
  [
    Alcotest.test_case "batching reduces messages" `Quick test_batching_reduces_messages;
    Alcotest.test_case "batching preserves outcomes" `Quick test_batching_preserves_outcomes;
    Alcotest.test_case "anti-entropy repairs recovered DC" `Quick
      test_anti_entropy_repairs_recovered_dc;
    Alcotest.test_case "sync is a no-op when current" `Quick test_sync_is_noop_when_current;
  ]
