(* Direct unit tests of the smaller core modules: Config, Woption, Messages,
   Trace, and the Cluster wiring invariants. *)

open Mdcc_storage
module Config = Mdcc_core.Config
module Woption = Mdcc_core.Woption
module Messages = Mdcc_core.Messages
module Cluster = Mdcc_core.Cluster
module Engine = Mdcc_sim.Engine
module Topology = Mdcc_sim.Topology
module Trace = Mdcc_sim.Trace

let test_config_quorums () =
  let c = Config.make ~replication:5 () in
  Alcotest.(check int) "classic 3/5" 3 (Config.classic_quorum c);
  Alcotest.(check int) "fast 4/5" 4 (Config.fast_quorum c);
  let c3 = Config.make ~replication:3 () in
  Alcotest.(check int) "classic 2/3" 2 (Config.classic_quorum c3);
  Alcotest.(check int) "fast 3/3" 3 (Config.fast_quorum c3);
  Alcotest.(check bool) "replication < 3 rejected" true
    (try
       ignore (Config.make ~replication:2 ());
       false
     with Mdcc_util.Invariant.Violation v ->
       String.equal v.Mdcc_util.Invariant.context "Config.make")

let test_config_mode_names () =
  Alcotest.(check string) "full" "MDCC" (Config.mode_name Config.Full);
  Alcotest.(check string) "fast" "Fast" (Config.mode_name Config.Fast_only);
  Alcotest.(check string) "multi" "Multi" (Config.mode_name Config.Multi)

let item i = Key.make ~table:"item" ~id:(string_of_int i)

let test_woption_of_txn () =
  let txn =
    Txn.make ~id:"t9"
      ~updates:
        [ (item 0, Update.Delta [ ("stock", -1) ]); (item 1, Update.Insert Value.empty) ]
  in
  let options = Woption.of_txn txn ~coordinator:42 in
  Alcotest.(check int) "one option per update" 2 (List.length options);
  List.iter
    (fun (w : Woption.t) ->
      Alcotest.(check string) "txid" "t9" w.Woption.txid;
      Alcotest.(check int) "coordinator" 42 w.Woption.coordinator;
      Alcotest.(check int) "write-set embedded" 2 (List.length w.Woption.write_set))
    options;
  Alcotest.(check bool) "commutativity flag" true
    (Woption.is_commutative (List.hd options))

let test_messages_describe () =
  let w =
    {
      Woption.txid = "t1";
      key = item 3;
      update = Update.Delta [ ("stock", -1) ];
      write_set = [ item 3 ];
      coordinator = 9;
    }
  in
  let describe p = Messages.describe p in
  Alcotest.(check string) "propose"
    "propose(fast, t1, item/3)"
    (describe (Messages.Propose { woption = w; route = `Fast }));
  Alcotest.(check string) "visibility" "visibility(t1, item/3, true)"
    (describe
       (Messages.Visibility { txid = "t1"; key = item 3; update = w.Woption.update; committed = true }));
  Alcotest.(check string) "batch" "batch(2)"
    (describe
       (Messages.Batch
          [
            Messages.Propose { woption = w; route = `Fast };
            Messages.Propose { woption = w; route = `Classic };
          ]))

let test_trace_toggle () =
  let engine = Engine.create ~seed:1 in
  Trace.disable ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  (* Emission with tracing off must still consume its arguments safely. *)
  Trace.emit engine ~tag:"test" "hello %d" 42;
  Trace.enable ();
  Alcotest.(check bool) "enabled" true (Trace.enabled ());
  Trace.disable ()

let schema = Schema.create [ { Schema.name = "item"; bounds = []; master_dc = 0 } ]

let make_cluster ~partitions =
  let engine = Engine.create ~seed:3 in
  let config = Config.make ~replication:5 () in
  Cluster.create ~engine
    ~spec:(Cluster.Spec.make ~partitions ~app_servers_per_dc:2 ())
    ~config ~schema ()

let test_cluster_replica_groups () =
  let cluster = make_cluster ~partitions:4 in
  let topo = Cluster.topology cluster in
  for i = 0 to 99 do
    let replicas = Cluster.replicas cluster (item i) in
    Alcotest.(check int) "five replicas" 5 (List.length replicas);
    (* One replica per data center, all on the same partition index. *)
    let dcs = List.map (Topology.dc_of topo) replicas |> List.sort_uniq Int.compare in
    Alcotest.(check (list int)) "one per DC" [ 0; 1; 2; 3; 4 ] dcs;
    let parts = List.map (fun r -> r mod 4) replicas |> List.sort_uniq Int.compare in
    Alcotest.(check int) "same partition" 1 (List.length parts);
    (* The master is one of the replicas. *)
    Alcotest.(check bool) "master in group" true
      (List.mem (Cluster.master_node cluster (item i)) replicas)
  done

let test_cluster_deterministic_mapping () =
  let c1 = make_cluster ~partitions:4 and c2 = make_cluster ~partitions:4 in
  for i = 0 to 49 do
    Alcotest.(check (list int)) "stable replica mapping"
      (Cluster.replicas c1 (item i))
      (Cluster.replicas c2 (item i))
  done

let test_cluster_coordinators () =
  let cluster = make_cluster ~partitions:1 in
  Alcotest.(check int) "5 DCs x 2 app servers" 10 (List.length (Cluster.coordinators cluster));
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Cluster.coordinator cluster ~dc:0 ~rank:2);
       false
     with Mdcc_util.Invariant.Violation v ->
       String.equal v.Mdcc_util.Invariant.context "Cluster.coordinator")

let test_cluster_load_and_peek () =
  let cluster = make_cluster ~partitions:2 in
  Cluster.load cluster [ (item 0, Value.of_list [ ("stock", Value.Int 5) ]) ];
  for dc = 0 to 4 do
    match Cluster.peek cluster ~dc (item 0) with
    | Some (v, 1) -> Alcotest.(check int) "loaded" 5 (Value.get_int v "stock")
    | Some (_, n) -> Alcotest.failf "unexpected version %d" n
    | None -> Alcotest.fail "row missing"
  done;
  Alcotest.(check bool) "absent key" true (Cluster.peek cluster ~dc:0 (item 1) = None)

(* Pinned network message counts on a seeded run, with and without
   batching.  [Coordinator.send_all]'s single-destination fast path (which
   skips the per-call Hashtbl) must not change what goes on the wire: any
   drift in these counts means the optimization changed behavior. *)
let send_all_counts ~batching =
  let engine = Engine.create ~seed:13 in
  let config = Config.make ~batching ~replication:5 () in
  let cluster =
    Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema ()
  in
  Cluster.load cluster
    (List.init 4 (fun i -> (item i, Value.of_list [ ("stock", Value.Int 50) ])));
  let coordinator = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  let done_ = ref 0 in
  (* Single-key txns exercise the single-destination batches; multi-key
     txns exercise the fan-out path. *)
  List.iteri
    (fun n updates ->
      Mdcc_core.Coordinator.submit coordinator
        (Txn.make ~id:(Printf.sprintf "p%d" n) ~updates)
        (fun _ -> incr done_))
    [
      [ (item 0, Update.Delta [ ("stock", -1) ]) ];
      [ (item 1, Update.Delta [ ("stock", -2) ]); (item 2, Update.Delta [ ("stock", -1) ]) ];
      [ (item 3, Update.Delta [ ("stock", -1) ]) ];
      [ (item 0, Update.Delta [ ("stock", -1) ]); (item 3, Update.Delta [ ("stock", -1) ]) ];
    ];
  Engine.run ~until:60_000.0 engine;
  Alcotest.(check int) "all decided" 4 !done_;
  let stats = Mdcc_sim.Network.stats (Cluster.network cluster) in
  (stats.Mdcc_sim.Network.sent, stats.Mdcc_sim.Network.delivered)

let test_send_all_pinned_counts () =
  let sent_b, delivered_b = send_all_counts ~batching:true in
  Alcotest.(check (pair int int))
    "batching run message counts" (70, 70) (sent_b, delivered_b);
  let sent, delivered = send_all_counts ~batching:false in
  Alcotest.(check (pair int int))
    "non-batching run message counts" (90, 90) (sent, delivered)

let suite =
  [
    Alcotest.test_case "config quorums" `Quick test_config_quorums;
    Alcotest.test_case "send_all pinned message counts" `Quick
      test_send_all_pinned_counts;
    Alcotest.test_case "config mode names" `Quick test_config_mode_names;
    Alcotest.test_case "woption of_txn" `Quick test_woption_of_txn;
    Alcotest.test_case "messages describe" `Quick test_messages_describe;
    Alcotest.test_case "trace toggle" `Quick test_trace_toggle;
    Alcotest.test_case "cluster replica groups" `Quick test_cluster_replica_groups;
    Alcotest.test_case "cluster deterministic mapping" `Quick test_cluster_deterministic_mapping;
    Alcotest.test_case "cluster coordinators" `Quick test_cluster_coordinators;
    Alcotest.test_case "cluster load & peek" `Quick test_cluster_load_and_peek;
  ]
