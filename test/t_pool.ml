(* Tests for the work-stealing pool and the parallel-sweep determinism
   contract: a --jobs N sweep must render byte-for-byte what --jobs 1
   renders, reports AND observability export alike. *)

module Pool = Mdcc_util.Pool
module Sweep = Mdcc_chaos.Sweep
module Nemesis = Mdcc_chaos.Nemesis
module Runner = Mdcc_chaos.Runner
module Json = Mdcc_obs.Json
module Obs = Mdcc_obs.Obs

let test_map_in_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let r = Pool.map pool 100 (fun i -> i * i) in
      Alcotest.(check int) "length" 100 (Array.length r);
      Array.iteri (fun i x -> Alcotest.(check int) "slot" (i * i) x) r)

let test_map_list_order () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 37 (fun i -> 37 - i) in
      let r = Pool.map_list pool xs ~f:(fun x -> x * 2) in
      Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * 2) xs) r)

let test_empty_and_single () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_list pool [] ~f:(fun x -> x));
      Alcotest.(check (list int)) "single" [ 7 ] (Pool.map_list pool [ 7 ] ~f:(fun x -> x)))

let test_jobs1_runs_on_caller () =
  (* jobs = 1 must not spawn domains: every task sees the caller's domain. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let self = Domain.self () in
      let domains = Pool.map pool 8 (fun _ -> Domain.self ()) in
      Array.iter
        (fun d -> Alcotest.(check bool) "caller domain" true (d = self))
        domains)

let test_exception_lowest_index () =
  (* Multiple failing tasks: the surfaced exception must be the lowest
     failing index — exactly what a sequential loop raises first. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool 50 (fun i ->
                 if i mod 7 = 3 then failwith (string_of_int i) else i));
          None
        with Failure msg -> Some msg
      in
      Alcotest.(check (option string)) "lowest failing index" (Some "3") raised)

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let r = Pool.map pool (10 * round) (fun i -> i + round) in
        Alcotest.(check int) "round length" (10 * round) (Array.length r);
        Alcotest.(check int) "round content" (round + 3) r.(3)
      done)

let test_default_jobs_floor () =
  Alcotest.(check bool) "at least 1" true (Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* The determinism contract, end to end                                *)
(* ------------------------------------------------------------------ *)

let render reports =
  String.concat "\n" (List.map Runner.report_to_json reports)
  ^ "\n"
  ^ Json.to_string (Sweep.obs_doc reports)

let test_sweep_byte_identity () =
  let scenarios =
    List.filteri (fun i _ -> i < 3) Nemesis.matrix
  in
  let specs = Sweep.specs ~seeds:3 ~scenarios () in
  let seq = render (Sweep.run ~jobs:1 specs) in
  let par = render (Sweep.run ~jobs:4 specs) in
  Alcotest.(check bool) "sweep output byte-identical" true (String.equal seq par);
  Alcotest.(check bool) "output non-trivial" true (String.length seq > 1000)

let test_sweep_trace_capture_identity () =
  (* A planted quorum bug makes every run re-execute with trace capture —
     the DLS trace plumbing must behave identically on worker domains. *)
  let scenarios = List.filteri (fun i _ -> i < 1) Nemesis.matrix in
  let specs = Sweep.specs ~seeds:10 ~fast_quorum_override:3 ~scenarios () in
  let seq = Sweep.run ~jobs:1 specs in
  let par = Sweep.run ~jobs:4 specs in
  Alcotest.(check bool) "violations found" true
    (List.exists (fun r -> not (Runner.ok r)) seq);
  Alcotest.(check bool) "captured traces byte-identical" true
    (String.equal (render seq) (render par))

let test_obs_merge () =
  let a = Obs.create () and b = Obs.create () in
  Obs.incr a ~by:2 "x";
  Obs.incr b ~by:3 "x";
  Obs.incr b ~by:1 "y";
  Obs.set_gauge b "g" 7;
  Obs.merge ~into:a b;
  let doc = Json.to_string (Obs.metrics_json a) in
  let counters = Option.get (Json.member "counters" (Result.get_ok (Json.parse doc))) in
  Alcotest.(check (option int)) "counter x summed" (Some 5)
    (match Json.member "x" counters with Some (Json.Int n) -> Some n | _ -> None);
  Alcotest.(check (option int)) "counter y carried" (Some 1)
    (match Json.member "y" counters with Some (Json.Int n) -> Some n | _ -> None)

let suite =
  [
    Alcotest.test_case "map fills slots in order" `Quick test_map_in_order;
    Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
    Alcotest.test_case "empty and single batches" `Quick test_empty_and_single;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs1_runs_on_caller;
    Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "default_jobs floor" `Quick test_default_jobs_floor;
    Alcotest.test_case "sweep byte-identity jobs 1 vs 4" `Quick test_sweep_byte_identity;
    Alcotest.test_case "trace capture identity under domains" `Quick
      test_sweep_trace_capture_identity;
    Alcotest.test_case "obs merge" `Quick test_obs_merge;
  ]
