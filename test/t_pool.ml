(* Tests for the work-stealing pool and the parallel-sweep determinism
   contract: a --jobs N sweep must render byte-for-byte what --jobs 1
   renders, reports AND observability export alike. *)

module Pool = Mdcc_util.Pool
module Sweep = Mdcc_chaos.Sweep
module Nemesis = Mdcc_chaos.Nemesis
module Runner = Mdcc_chaos.Runner
module Json = Mdcc_obs.Json
module Obs = Mdcc_obs.Obs

let test_map_in_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let r = Pool.map pool 100 (fun i -> i * i) in
      Alcotest.(check int) "length" 100 (Array.length r);
      Array.iteri (fun i x -> Alcotest.(check int) "slot" (i * i) x) r)

let test_map_list_order () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 37 (fun i -> 37 - i) in
      let r = Pool.map_list pool xs ~f:(fun x -> x * 2) in
      Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * 2) xs) r)

let test_empty_and_single () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_list pool [] ~f:(fun x -> x));
      Alcotest.(check (list int)) "single" [ 7 ] (Pool.map_list pool [ 7 ] ~f:(fun x -> x)))

let test_jobs1_runs_on_caller () =
  (* jobs = 1 must not spawn domains: every task sees the caller's domain. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let self = Domain.self () in
      let domains = Pool.map pool 8 (fun _ -> Domain.self ()) in
      Array.iter
        (fun d -> Alcotest.(check bool) "caller domain" true (d = self))
        domains)

let test_exception_lowest_index () =
  (* Multiple failing tasks: the surfaced exception must be the lowest
     failing index — exactly what a sequential loop raises first. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool 50 (fun i ->
                 if i mod 7 = 3 then failwith (string_of_int i) else i));
          None
        with Failure msg -> Some msg
      in
      Alcotest.(check (option string)) "lowest failing index" (Some "3") raised)

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let r = Pool.map pool (10 * round) (fun i -> i + round) in
        Alcotest.(check int) "round length" (10 * round) (Array.length r);
        Alcotest.(check int) "round content" (round + 3) r.(3)
      done)

let test_default_jobs_floor () =
  Alcotest.(check bool) "at least 1" true (Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Chunked claiming: a scheduling knob, never a semantics knob         *)
(* ------------------------------------------------------------------ *)

let test_map_chunked_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let expected = Array.init 101 (fun i -> i * 3) in
      List.iter
        (fun chunk ->
          let r = Pool.map pool ~chunk 101 (fun i -> i * 3) in
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d same result" chunk)
            true (r = expected))
        [ 1; 3; 7; 50; 101; 1000 ])

let test_map_chunked_covers_all () =
  (* Chunk larger than count, chunk not dividing count, chunk = count:
     every index must run exactly once. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun (count, chunk) ->
          let hits = Array.make count (Atomic.make 0) in
          Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
          ignore (Pool.map pool ~chunk count (fun i -> Atomic.incr hits.(i)));
          Array.iteri
            (fun i a ->
              Alcotest.(check int)
                (Printf.sprintf "count %d chunk %d index %d" count chunk i)
                1 (Atomic.get a))
            hits)
        [ (10, 3); (10, 10); (3, 10); (64, 16) ])

let test_chunked_exception_lowest_index () =
  (* Coarse chunks must not change which exception surfaces: still the
     lowest failing index, as a sequential loop would raise first. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool ~chunk:8 50 (fun i ->
                 if i mod 7 = 3 then failwith (string_of_int i) else i));
          None
        with Failure msg -> Some msg
      in
      Alcotest.(check (option string)) "lowest failing index" (Some "3") raised)

let test_chunk_invalid () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "chunk 0 violates"
        (Mdcc_util.Invariant.Violation
           {
             Mdcc_util.Invariant.node = None;
             context = "Pool.run_batch";
             message = "chunk 0 < 1";
           })
        (fun () -> ignore (Pool.map pool ~chunk:0 4 (fun i -> i))))

let test_chunk_stats_count_tasks () =
  (* Chunked claims must still account every task once in the stats. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let before = Pool.stats pool in
      ignore (Pool.map pool ~chunk:5 33 (fun i -> i));
      let after = Pool.stats pool in
      Alcotest.(check int) "tasks counted" 33 Pool.(after.tasks - before.tasks);
      Alcotest.(check int) "one batch" 1 Pool.(after.batches - before.batches))

(* ------------------------------------------------------------------ *)
(* The determinism contract, end to end                                *)
(* ------------------------------------------------------------------ *)

let render reports =
  String.concat "\n" (List.map Runner.report_to_json reports)
  ^ "\n"
  ^ Json.to_string (Sweep.obs_doc reports)

let test_sweep_byte_identity () =
  let scenarios =
    List.filteri (fun i _ -> i < 3) Nemesis.matrix
  in
  let specs = Sweep.specs ~seeds:3 ~scenarios () in
  let seq = render (Sweep.run ~jobs:1 specs) in
  let par = render (Sweep.run ~jobs:4 specs) in
  Alcotest.(check bool) "sweep output byte-identical" true (String.equal seq par);
  Alcotest.(check bool) "output non-trivial" true (String.length seq > 1000)

let test_sweep_trace_capture_identity () =
  (* A planted quorum bug makes every run re-execute with trace capture —
     the DLS trace plumbing must behave identically on worker domains. *)
  let scenarios = List.filteri (fun i _ -> i < 1) Nemesis.matrix in
  let specs = Sweep.specs ~seeds:10 ~fast_quorum_override:3 ~scenarios () in
  let seq = Sweep.run ~jobs:1 specs in
  let par = Sweep.run ~jobs:4 specs in
  Alcotest.(check bool) "violations found" true
    (List.exists (fun r -> not (Runner.ok r)) seq);
  Alcotest.(check bool) "captured traces byte-identical" true
    (String.equal (render seq) (render par))

let test_sweep_chunk_byte_identity () =
  (* The full grid: chunk (explicit fine, explicit coarse, derived default)
     x jobs (1, 2, 4) must render one byte-identical document. *)
  let scenarios = List.filteri (fun i _ -> i < 2) Nemesis.matrix in
  let specs = Sweep.specs ~seeds:3 ~scenarios () in
  let reference = render (Sweep.run ~jobs:1 ~chunk:1 specs) in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          let got = render (Sweep.run ~jobs ?chunk specs) in
          let label =
            Printf.sprintf "jobs %d chunk %s" jobs
              (match chunk with Some c -> string_of_int c | None -> "default")
          in
          Alcotest.(check bool) label true (String.equal reference got))
        [ Some 1; Some 4; None ])
    [ 1; 2; 4 ];
  Alcotest.(check bool) "output non-trivial" true (String.length reference > 1000)

let test_run_profiled_chunked () =
  (* Chunked profiling amortizes Prof.with_task across runs but must not
     change the reports, and the merged profile still counts one
     sweep.run_one span per run. *)
  let scenarios = List.filteri (fun i _ -> i < 2) Nemesis.matrix in
  let specs = Sweep.specs ~seeds:3 ~scenarios () in
  let runs = List.length specs in
  let plain = render (Sweep.run ~jobs:2 specs) in
  List.iter
    (fun chunk ->
      let reports, snapshot = Sweep.run_profiled ~jobs:2 ?chunk specs in
      let label =
        match chunk with Some c -> Printf.sprintf "chunk %d" c | None -> "chunk default"
      in
      Alcotest.(check bool) (label ^ ": reports unchanged") true
        (String.equal plain (render reports));
      let run_one_count =
        List.fold_left
          (fun acc p ->
            if p.Mdcc_obs.Prof.ph_path = "sweep.run_one" then acc + p.Mdcc_obs.Prof.ph_count
            else acc)
          0 snapshot.Mdcc_obs.Prof.sn_phases
      in
      Alcotest.(check int) (label ^ ": one span per run") runs run_one_count)
    [ Some 1; Some 4; None ]

let test_registry_chunked_merge () =
  (* Folding per-chunk merged registries in chunk order must equal folding
     every per-run registry in run order — the associativity that lets the
     sweep merge per chunk instead of per run. *)
  let mk i =
    let o = Obs.create () in
    Obs.incr o ~by:i "txn";
    Obs.incr o ~by:1 (if i mod 2 = 0 then "even" else "odd");
    Obs.set_gauge o "last" i;
    o
  in
  let runs = List.init 10 (fun i -> mk (i + 1)) in
  let flat = Obs.create () in
  List.iter (fun o -> Obs.merge ~into:flat o) runs;
  let chunked = Obs.create () in
  let rec in_chunks = function
    | [] -> ()
    | os ->
      let rec take n = function
        | x :: rest when n > 0 ->
          let taken, left = take (n - 1) rest in
          (x :: taken, left)
        | rest -> ([], rest)
      in
      let group, rest = take 3 os in
      let acc = Obs.create () in
      List.iter (fun o -> Obs.merge ~into:acc o) group;
      Obs.merge ~into:chunked acc;
      in_chunks rest
  in
  in_chunks (List.init 10 (fun i -> mk (i + 1)));
  Alcotest.(check string) "chunked merge equals flat merge"
    (Json.to_string (Obs.metrics_json flat))
    (Json.to_string (Obs.metrics_json chunked))

let test_obs_merge () =
  let a = Obs.create () and b = Obs.create () in
  Obs.incr a ~by:2 "x";
  Obs.incr b ~by:3 "x";
  Obs.incr b ~by:1 "y";
  Obs.set_gauge b "g" 7;
  Obs.merge ~into:a b;
  let doc = Json.to_string (Obs.metrics_json a) in
  let counters = Option.get (Json.member "counters" (Result.get_ok (Json.parse doc))) in
  Alcotest.(check (option int)) "counter x summed" (Some 5)
    (match Json.member "x" counters with Some (Json.Int n) -> Some n | _ -> None);
  Alcotest.(check (option int)) "counter y carried" (Some 1)
    (match Json.member "y" counters with Some (Json.Int n) -> Some n | _ -> None)

let suite =
  [
    Alcotest.test_case "map fills slots in order" `Quick test_map_in_order;
    Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
    Alcotest.test_case "empty and single batches" `Quick test_empty_and_single;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs1_runs_on_caller;
    Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "default_jobs floor" `Quick test_default_jobs_floor;
    Alcotest.test_case "chunked map keeps order" `Quick test_map_chunked_order;
    Alcotest.test_case "chunked map covers every index" `Quick test_map_chunked_covers_all;
    Alcotest.test_case "chunked lowest-index exception wins" `Quick
      test_chunked_exception_lowest_index;
    Alcotest.test_case "chunk < 1 violates" `Quick test_chunk_invalid;
    Alcotest.test_case "chunked stats count tasks" `Quick test_chunk_stats_count_tasks;
    Alcotest.test_case "sweep byte-identity jobs 1 vs 4" `Quick test_sweep_byte_identity;
    Alcotest.test_case "sweep byte-identity across chunk x jobs grid" `Quick
      test_sweep_chunk_byte_identity;
    Alcotest.test_case "profiled sweep chunking" `Quick test_run_profiled_chunked;
    Alcotest.test_case "registry chunked merge associativity" `Quick
      test_registry_chunked_merge;
    Alcotest.test_case "trace capture identity under domains" `Quick
      test_sweep_trace_capture_identity;
    Alcotest.test_case "obs merge" `Quick test_obs_merge;
  ]
