(* mdcc-experiments: command-line front end for the evaluation harness.

     dune exec bin/experiments_cli.exe -- run fig3 fig5
     dune exec bin/experiments_cli.exe -- run --all --quick
     dune exec bin/experiments_cli.exe -- run fig5 --metrics-out fig5-metrics.json
     dune exec bin/experiments_cli.exe -- demo --trace
     dune exec bin/experiments_cli.exe -- list *)

module Experiments = Mdcc_workload.Experiments
module Obs = Mdcc_obs.Obs
module Json = Mdcc_obs.Json
module Pool = Mdcc_util.Pool

let experiments =
  [
    ("fig3", "TPC-W write response-time CDF: QW-3/QW-4/MDCC/2PC/Megastore*");
    ("fig4", "TPC-W throughput scale-out: 50/100/200 clients");
    ("fig5", "micro-benchmark response-time CDF: MDCC/Fast/Multi/2PC");
    ("fig6", "commits/aborts vs. hot-spot size");
    ("fig7", "response-time boxplots vs. master locality");
    ("fig8", "latency time-series across a data-center outage");
    ("gamma", "ablation: sensitivity to the fast-policy window gamma");
    ("batching", "ablation: message batching overhead reduction");
    ("replication", "ablation: replication factor / quorum sizes");
  ]

let run_one ~quick ~pool = function
  | "fig3" -> ignore (Experiments.fig3 ~quick ~pool ())
  | "fig4" -> ignore (Experiments.fig4 ~quick ~pool ())
  | "fig5" -> ignore (Experiments.fig5 ~quick ~pool ())
  | "fig6" -> ignore (Experiments.fig6 ~quick ~pool ())
  | "fig7" -> ignore (Experiments.fig7 ~quick ~pool ())
  | "fig8" -> ignore (Experiments.fig8 ~quick ~pool ())
  | "gamma" -> ignore (Experiments.ablation_gamma ~quick ~pool ())
  | "batching" -> ignore (Experiments.ablation_batching ~quick ~pool ())
  | "replication" -> ignore (Experiments.ablation_replication ~quick ~pool ())
  | other -> Printf.eprintf "unknown experiment %S\n" other

open Cmdliner

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Run at a reduced, CI-sized scale.")

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter (fun (id, what) -> Printf.printf "  %-6s %s\n" id what) experiments
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's aggregate protocol metrics (the ambient registry snapshot) to \
           $(docv) as JSON.")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the figure fan-outs (default: cores - 1, at least 1).  Results \
           and metric exports are merged in task order, so output is byte-identical to \
           $(b,--jobs 1).")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Profile the whole run (per-phase wall/alloc breakdown on the driving domain) and \
           write the snapshot to $(docv).  Figure outputs and $(b,--metrics-out) bytes are \
           unchanged — the profile is a separate channel.")

let run_cmd =
  let doc = "Reproduce one or more of the paper's figures (default: all)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"fig3..fig8, gamma")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let run quick all ids metrics_out jobs profile =
    (* A fresh baseline, so the exported snapshot covers exactly this run. *)
    if metrics_out <> None then Obs.reset_ambient ();
    let body () =
      Pool.with_pool ~jobs (fun pool ->
          match (all, ids) with
          | true, _ | false, [] -> Experiments.run_all ~quick ~pool ()
          | false, ids -> List.iter (run_one ~quick ~pool) ids)
    in
    (match profile with
    | None -> body ()
    | Some path ->
      let (), snapshot = Mdcc_obs.Prof.with_task body in
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "mdcc.profile.v1");
            ("jobs", Json.Int jobs);
            ("profile", Mdcc_obs.Prof.snapshot_to_json snapshot);
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "profile written to %s\n" path);
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Json.to_string (Obs.metrics_json (Obs.ambient ())));
        output_char oc '\n';
        close_out oc;
        Printf.printf "metrics written to %s\n" path)
      metrics_out
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run $ quick_flag $ all $ ids $ metrics_out_arg $ jobs_arg $ profile_arg)

let demo_cmd =
  let doc = "Run one multi-record transaction with protocol tracing." in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print every protocol decision with timestamps.")
  in
  let run trace =
    if trace then Mdcc_sim.Trace.enable ();
    let open Mdcc_storage in
    let module Engine = Mdcc_sim.Engine in
    let module Cluster = Mdcc_core.Cluster in
    let module Config = Mdcc_core.Config in
    let schema =
      Schema.create
        [
          {
            Schema.name = "item";
            bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
            master_dc = 0;
          };
        ]
    in
    let engine = Engine.create ~seed:1 in
    let config = Config.make ~mode:Config.Full ~replication:5 () in
    let cluster = Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema () in
    let key i = Key.make ~table:"item" ~id:(string_of_int i) in
    Cluster.load cluster
      [
        (key 0, Value.of_list [ ("stock", Value.Int 10) ]);
        (key 1, Value.of_list [ ("stock", Value.Int 10) ]);
      ];
    let c = Cluster.coordinator cluster ~dc:2 ~rank:0 in
    Mdcc_core.Coordinator.submit c
      (Txn.make ~id:"demo"
         ~updates:
           [
             (key 0, Update.Delta [ ("stock", -2) ]);
             ( key 1,
               Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 7) ] }
             );
           ])
      (fun outcome ->
        Printf.printf "demo transaction: %s after %.0f ms\n"
          (Format.asprintf "%a" Txn.pp_outcome outcome)
          (Engine.now engine));
    Engine.run ~until:10_000.0 engine
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ trace)

let () =
  let doc = "Reproduce the MDCC paper's evaluation on the simulated WAN." in
  let info = Cmd.info "mdcc-experiments" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; demo_cmd ]))
