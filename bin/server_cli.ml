(* mdcc-server: the MDCC key/value store behind a memcached-style socket.

     dune exec bin/server_cli.exe -- --nodes 5 --port 11311
     printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' | nc 127.0.0.1 11311

   Boots an N-replica MDCC deployment (every replica in-process,
   --partitions storage nodes per simulated data center, one coordinator)
   over the real socket runtime and serves the ASCII wire protocol of
   docs/WIRE.md.

   SIGTERM / SIGINT trigger a graceful drain: stop accepting, finish
   in-flight requests and transactions, flush replies, exit 0. *)

module Loop = Mdcc_runtime_unix.Loop
module Server = Mdcc_wire.Server

(* Signal handlers only flip this flag: the loop thread may hold the
   run-queue mutex when the signal lands, so the handler must not touch
   loop state itself.  The main loop polls the flag; select's EINTR (or
   the 50 ms poll cap) bounds the reaction latency. *)
let want_shutdown = Atomic.make false

let serve nodes partitions port addr =
  if nodes < 3 then begin
    Printf.eprintf "server_cli: --nodes must be >= 3 (got %d)\n" nodes;
    exit 2
  end;
  if partitions < 1 then begin
    Printf.eprintf "server_cli: --partitions must be >= 1 (got %d)\n" partitions;
    exit 2
  end;
  let srv = Server.create ~nodes ~partitions ~addr ~port () in
  let lp = Server.loop srv in
  Printf.printf "LISTENING %d\n%!" (Server.port srv);
  let on_signal _ = Atomic.set want_shutdown true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let draining = ref false in
  while not (Loop.stop_requested lp) do
    if Atomic.get want_shutdown && not !draining then begin
      draining := true;
      prerr_endline "server_cli: draining";
      Server.shutdown srv ~on_done:(fun () -> Loop.request_stop lp)
    end;
    Loop.poll lp ~max_wait_ms:50.0
  done;
  0

open Cmdliner

let nodes_arg =
  Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Replication factor (>= 3).")

let partitions_arg =
  Arg.(
    value & opt int 1
    & info [ "partitions" ] ~docv:"N"
        ~doc:
          "Keyspace hash partitions (>= 1).  The deployment runs N storage nodes per \
           simulated data center; keys route to their partition's replica group, and \
           $(b,stats detail) exposes per-partition counters.")

let port_arg =
  Arg.(
    value & opt int 11311
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port; 0 binds an ephemeral port.")

let addr_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"ADDR" ~doc:"Bind address.")

let cmd =
  let doc = "MDCC key/value server speaking the memcached-style wire protocol" in
  Cmd.v
    (Cmd.info "mdcc-server" ~doc)
    Term.(const serve $ nodes_arg $ partitions_arg $ port_arg $ addr_arg)

let () = exit (Cmd.eval' cmd)
