(* Round-trips the observability JSON schemas through the parser.

   Runs a small deterministic chaos run (spans enabled), renders its metrics
   snapshot and span trees, parses both back with Mdcc_obs.Json, and
   validates the documented shapes plus the protocol-level invariants the
   schemas promise: counters are non-negative integers, every span's events
   are in nondecreasing sim-time order, and the fast-commutative workload
   actually exercised both the fast path and collision resolution.  Attached
   to the @obs alias (and through it @runtest) so schema drift fails the
   build. *)

module Runner = Mdcc_chaos.Runner
module Nemesis = Mdcc_chaos.Nemesis
module Obs = Mdcc_obs.Obs
module Json = Mdcc_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("obs_check: FAIL: " ^ s); exit 1) fmt

let parse_or_die ~label s =
  match Json.parse s with Ok t -> t | Error e -> fail "%s does not parse: %s" label e

let obj_or_die ~label = function
  | Json.Obj fields -> fields
  | _ -> fail "%s is not a JSON object" label

let get ~label name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "%s is missing field %S" label name

(* ---- metrics schema ---- *)

let check_metrics j =
  let top = obj_or_die ~label:"metrics" j in
  if List.length top <> 3 then fail "metrics object must have exactly 3 sections";
  (match get ~label:"metrics" "counters" j with
  | Json.Obj cs ->
    List.iter
      (function
        | _, Json.Int n when n >= 0 -> ()
        | name, Json.Int n -> fail "counter %S is negative (%d)" name n
        | name, _ -> fail "counter %S is not an integer" name)
      cs;
    let names = List.map fst cs in
    if List.sort String.compare names <> names then fail "counter names are not sorted"
  | _ -> fail "\"counters\" is not an object");
  (match get ~label:"metrics" "gauges" j with
  | Json.Obj gs ->
    List.iter (function _, Json.Int _ -> () | name, _ -> fail "gauge %S not int" name) gs
  | _ -> fail "\"gauges\" is not an object");
  match get ~label:"metrics" "histograms" j with
  | Json.Obj hs ->
    List.iter
      (fun (name, h) ->
        List.iter
          (fun field ->
            match get ~label:(Printf.sprintf "histogram %S" name) field h with
            | Json.Int _ | Json.Float _ -> ()
            | _ -> fail "histogram %S field %S is not numeric" name field)
          [ "count"; "mean"; "min"; "max"; "p50"; "p95"; "p99" ])
      hs
  | _ -> fail "\"histograms\" is not an object"

(* ---- span schema ---- *)

let check_event ~txid ~prev_at ev =
  let label = Printf.sprintf "span %s event" txid in
  let at =
    match get ~label "at" ev with
    | Json.Float f -> f
    | Json.Int i -> Float.of_int i
    | _ -> fail "%s \"at\" is not numeric" label
  in
  (match get ~label "node" ev with Json.Int _ -> () | _ -> fail "%s \"node\" not int" label);
  (match get ~label "name" ev with
  | Json.Str s when s <> "" -> ()
  | _ -> fail "%s \"name\" not a non-empty string" label);
  (match get ~label "detail" ev with Json.Str _ -> () | _ -> fail "%s \"detail\" not str" label);
  if at < prev_at then
    fail "span %s events out of sim-time order (%.2f after %.2f)" txid at prev_at;
  at

let check_span j =
  let txid =
    match get ~label:"span" "txid" j with
    | Json.Str s -> s
    | _ -> fail "span \"txid\" is not a string"
  in
  (* Root events and each key group are independently time-ordered. *)
  let check_stream evs =
    ignore (List.fold_left (fun prev ev -> check_event ~txid ~prev_at:prev ev) Float.neg_infinity evs)
  in
  check_stream (Json.to_list (get ~label:"span" "events" j));
  List.iter
    (fun kg ->
      (match get ~label:"key group" "key" kg with
      | Json.Str _ -> ()
      | _ -> fail "span %s key group has no key" txid);
      check_stream (Json.to_list (get ~label:"key group" "events" kg)))
    (Json.to_list (get ~label:"span" "keys" j));
  txid

(* ---- the run ---- *)

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1 in
  let spec = Runner.spec ~seed ~scenario:Nemesis.clean ~workload:Runner.Mixed ~txns:40 () in
  let r = Runner.run spec in
  if not (Runner.ok r) then fail "seed %d violated invariants" seed;
  let metrics_str = Json.to_string (Obs.metrics_json r.Runner.r_obs) in
  let spans_str = Json.to_string (Obs.spans_json r.Runner.r_obs) in
  (* Round trip both documents. *)
  let metrics = parse_or_die ~label:"metrics" metrics_str in
  let spans = parse_or_die ~label:"spans" spans_str in
  check_metrics metrics;
  let txids = List.map check_span (Json.to_list spans) in
  if txids = [] then fail "no span trees recorded";
  (* The fast-commutative workload must exercise the protocol's two
     signature paths: fast commits, and collision detection + resolution. *)
  let counter name =
    match Json.member "counters" metrics with
    | Some cs -> ( match Json.member name cs with Some (Json.Int n) -> n | _ -> 0)
    | None -> 0
  in
  if counter "fast_commit" = 0 then fail "seed %d: no fast commits" seed;
  if counter "collision_resolved" = 0 then fail "seed %d: no resolved collisions" seed;
  (* Re-render from the parsed tree: parse . render must be the identity on
     rendered output (the schema has one canonical form). *)
  if Json.to_string metrics <> metrics_str then fail "metrics render/parse not idempotent";
  if Json.to_string spans <> spans_str then fail "spans render/parse not idempotent";
  Printf.printf
    "obs_check: ok (seed %d: %d committed, fast_commit=%d collision_resolved=%d, %d spans)\n"
    seed r.Runner.r_committed (counter "fast_commit") (counter "collision_resolved")
    (List.length txids)
