(* mdcc_lint command-line driver.

   Exit codes: 0 clean, 1 unsuppressed findings, 2 parse/usage error. *)

module Driver = Mdcc_lint.Driver
module Finding = Mdcc_lint.Finding
module Allowlist = Mdcc_lint.Allowlist

let run allow_file json roots =
  let allow =
    match allow_file with
    | None -> []
    | Some path -> Allowlist.load path
  in
  match Driver.scan ~allow roots with
  | exception Driver.Parse_error { file; message } ->
    Printf.eprintf "lint: cannot parse %s: %s\n" file message;
    exit 2
  | exception Failure msg ->
    Printf.eprintf "lint: %s\n" msg;
    exit 2
  | report ->
    if json then print_endline (Driver.report_to_json report)
    else begin
      List.iter (fun f -> print_endline (Finding.to_string f)) report.Driver.rp_findings;
      Printf.printf "lint: %d file(s) scanned, %d violation(s), %d allowlisted\n"
        report.Driver.rp_scanned
        (List.length report.Driver.rp_findings)
        (List.length report.Driver.rp_suppressed)
    end;
    if report.Driver.rp_findings <> [] then exit 1

open Cmdliner

let allow_arg =
  let doc = "Allowlist file (RULE PATH[:LINE] per line, # comments)." in
  Arg.(value & opt (some file) None & info [ "allow" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Emit a single-line machine-readable JSON report." in
  Arg.(value & flag & info [ "json" ] ~doc)

let roots_arg =
  let doc = "Directories to scan recursively for .ml files." in
  Arg.(value & pos_all string [ "lib"; "bin" ] & info [] ~docv:"DIR" ~doc)

let cmd =
  let doc = "determinism & aliasing static analysis for the MDCC tree" in
  let info = Cmd.info "mdcc-lint" ~doc in
  Cmd.v info Term.(const run $ allow_arg $ json_arg $ roots_arg)

let () = exit (Cmd.eval cmd)
