(* mdcc_lint command-line driver.

   Exit codes: 0 clean, 1 unsuppressed findings or stale allowlist entries,
   2 parse/usage error. *)

module Driver = Mdcc_lint.Driver
module Finding = Mdcc_lint.Finding
module Allowlist = Mdcc_lint.Allowlist

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let run allow_file json sarif_file jobs check_allow roots =
  let allow =
    match allow_file with
    | None -> []
    | Some path -> Allowlist.load path
  in
  match Driver.scan ~allow ~jobs roots with
  | exception Driver.Parse_error { file; message } ->
    Printf.eprintf "lint: cannot parse %s: %s\n" file message;
    exit 2
  | exception Failure msg ->
    Printf.eprintf "lint: %s\n" msg;
    exit 2
  | report ->
    Option.iter
      (fun path -> write_file path (Driver.report_to_sarif report))
      sarif_file;
    if json then print_endline (Driver.report_to_json report)
    else begin
      List.iter (fun f -> print_endline (Finding.to_string f)) report.Driver.rp_findings;
      Printf.printf "lint: %d file(s) scanned, %d violation(s), %d allowlisted\n"
        report.Driver.rp_scanned
        (List.length report.Driver.rp_findings)
        (List.length report.Driver.rp_suppressed)
    end;
    let stale =
      if check_allow then
        Allowlist.unused allow (report.Driver.rp_findings @ report.Driver.rp_suppressed)
      else []
    in
    List.iter
      (fun e ->
        Printf.eprintf "lint: stale allowlist entry (suppresses nothing): %s\n"
          (Allowlist.entry_to_string e))
      stale;
    if report.Driver.rp_findings <> [] || stale <> [] then exit 1

open Cmdliner

let allow_arg =
  let doc = "Allowlist file (RULE PATH[:LINE] per line, # comments)." in
  Arg.(value & opt (some file) None & info [ "allow" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Emit a single-line machine-readable JSON report." in
  Arg.(value & flag & info [ "json" ] ~doc)

let sarif_arg =
  let doc = "Write a SARIF 2.1.0 report to $(docv) (for code-scanning upload)." in
  Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Analysis worker domains. Output is byte-identical for every value."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let check_allow_arg =
  let doc =
    "Fail (exit 1) if any allowlist entry suppresses nothing, so \
     suppressions cannot outlive the violations they cover."
  in
  Arg.(value & flag & info [ "check-allow" ] ~doc)

let roots_arg =
  let doc = "Directories to scan recursively for .ml files." in
  Arg.(value & pos_all string [ "lib"; "bin" ] & info [] ~docv:"DIR" ~doc)

let cmd =
  let doc = "determinism, aliasing, domain-safety, purity & protocol lints for the MDCC tree" in
  let info = Cmd.info "mdcc-lint" ~doc in
  Cmd.v info
    Term.(
      const run $ allow_arg $ json_arg $ sarif_arg $ jobs_arg $ check_allow_arg
      $ roots_arg)

let () = exit (Cmd.eval cmd)
