(* mdcc-chaos: seed-sweeping chaos runner.

     dune exec bin/chaos_cli.exe -- sweep --seeds 50
     dune exec bin/chaos_cli.exe -- sweep --seeds 20 --scenario dc_outage --json
     dune exec bin/chaos_cli.exe -- sweep --seeds 10 --obs-out obs.json
     dune exec bin/chaos_cli.exe -- sweep --seeds 50 --plant-bug 3
     dune exec bin/chaos_cli.exe -- replay --seed 17 --scenario random --trace
     dune exec bin/chaos_cli.exe -- list

   Sweeps N seeds across the scenario matrix (clean, DC outage, asymmetric
   partition, drop spike, latency surge, master failover, random), checking
   every run's history for safety violations.  Everything is deterministic:
   a violating (seed, scenario) pair replays its violation exactly. *)

module Nemesis = Mdcc_chaos.Nemesis
module Runner = Mdcc_chaos.Runner
module Sweep = Mdcc_chaos.Sweep
module Baseline = Mdcc_chaos.Baseline
module Pool = Mdcc_util.Pool
module Json = Mdcc_obs.Json

let workload_of_string = function
  | "deltas" -> Some Runner.Deltas
  | "rmw" -> Some Runner.Rmw
  | "mixed" -> Some Runner.Mixed
  | _ -> None

let make_spec ~seed ~scenario ~workload ~txns ~items ~partitions ~plant_bug ~trace =
  Runner.spec ~seed ~scenario ~workload ~txns ~items ~partitions
    ?fast_quorum_override:plant_bug ~capture_trace:trace ()

(* The sweep's full observability export, one JSON document. *)
let write_obs_out path runs =
  let oc = open_out path in
  output_string oc (Json.to_string (Sweep.obs_doc runs));
  output_char oc '\n';
  close_out oc

(* The profiler snapshot rides its own file — wall-clock durations are
   nondeterministic, so they must never share a channel with the
   byte-pinned report/obs-out outputs. *)
let write_profile path ~jobs snapshot =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "mdcc.profile.v1");
        ("jobs", Json.Int jobs);
        ("profile", Mdcc_obs.Prof.snapshot_to_json snapshot);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc

let sweep ~seeds ~scenario ~workload ~txns ~items ~partitions ~plant_bug ~json ~trace
    ~obs_out ~jobs ~chunk ~profile =
  let scenarios =
    match scenario with
    | None -> Nemesis.matrix
    | Some names ->
      List.map
        (fun name ->
          match Nemesis.scenario_named name with
          | Some s -> s
          | None ->
            Printf.eprintf "unknown scenario %S (see `chaos_cli list')\n" name;
            exit 2)
        (String.split_on_char ',' names)
  in
  let workload =
    match workload_of_string workload with
    | Some w -> w
    | None ->
      Printf.eprintf "unknown workload %S (deltas|rmw|mixed)\n" workload;
      exit 2
  in
  (* Scenario-major, seed-minor spec order; the pool merges reports back
     in that order, so output is byte-identical to a --jobs 1 sweep. *)
  let specs =
    List.concat_map
      (fun scenario ->
        List.init seeds (fun i ->
            make_spec ~seed:(i + 1) ~scenario ~workload ~txns ~items ~partitions ~plant_bug
              ~trace))
      scenarios
  in
  let all =
    match profile with
    | None -> Sweep.run ~jobs ?chunk specs
    | Some path ->
      let reports, snapshot = Sweep.run_profiled ~jobs ?chunk specs in
      write_profile path ~jobs snapshot;
      reports
  in
  let total = List.length all in
  List.iter
    (fun r ->
      if json then print_endline (Runner.report_to_json r)
      else print_endline (Runner.report_to_string ~verbose:(not (Runner.ok r)) r))
    all;
  Option.iter (fun path -> write_obs_out path all) obs_out;
  let bad = List.filter (fun r -> not (Runner.ok r)) all in
  if not json then begin
    Printf.printf "\n%d runs (%d seeds x %d scenarios): %d with violations\n" total seeds
      (List.length scenarios) (List.length bad);
    List.iter
      (fun r ->
        Printf.printf "  seed %d / %s: %s\n" r.Runner.r_seed r.Runner.r_scenario
          (String.concat "; "
             (List.map
                (fun v -> v.Mdcc_chaos.Checker.invariant)
                r.Runner.r_violations)))
      bad
  end;
  if bad <> [] then exit 1

let replay ~seed ~scenario ~workload ~txns ~items ~partitions ~plant_bug ~json ~trace =
  let scenario =
    match Nemesis.scenario_named scenario with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown scenario %S (see `chaos_cli list')\n" scenario;
      exit 2
  in
  let workload =
    match workload_of_string workload with
    | Some w -> w
    | None ->
      Printf.eprintf "unknown workload %S (deltas|rmw|mixed)\n" workload;
      exit 2
  in
  let spec = make_spec ~seed ~scenario ~workload ~txns ~items ~partitions ~plant_bug ~trace in
  let r = Runner.run spec in
  if json then print_endline (Runner.report_to_json r)
  else begin
    print_endline (Runner.report_to_string ~verbose:true r);
    if trace then begin
      print_endline "--- trace ---";
      List.iter print_endline r.Runner.r_trace
    end
  end;
  if not (Runner.ok r) then exit 1

open Cmdliner

let seeds_arg = Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per scenario.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"The seed to replay.")

let scenario_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAMES"
        ~doc:"Restrict the sweep to a comma-separated list of scenarios.")

let scenario_req =
  Arg.(value & opt string "random" & info [ "scenario" ] ~docv:"NAME" ~doc:"Scenario to run.")

let workload_arg =
  Arg.(
    value & opt string "mixed"
    & info [ "workload" ] ~docv:"W" ~doc:"Workload: deltas, rmw or mixed.")

let txns_arg =
  Arg.(value & opt int 40 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per run.")

let items_arg = Arg.(value & opt int 4 & info [ "items" ] ~docv:"N" ~doc:"Stock rows per run.")

let partitions_arg =
  Arg.(
    value & opt int 1
    & info [ "partitions" ] ~docv:"N"
        ~doc:
          "Keyspace hash partitions of the deployed cluster.  A scenario that demands more \
           (the shard_* scenarios want 4) wins over a smaller value here.")

let plant_bug_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "plant-bug" ] ~docv:"Q"
        ~doc:
          "Deliberately shrink the fast quorum to $(docv) acceptors (e.g. 3 of 5), breaking \
           quorum intersection; the sweep must catch the resulting violations.")

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per run.")

let trace_flag =
  Arg.(value & flag & info [ "trace" ] ~doc:"Capture the protocol trace in every report.")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep (default: cores - 1, at least 1).  Reports are \
           merged in seed order, so output is byte-identical to $(b,--jobs 1).")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Runs claimed per work-stealing cursor bump (default: about eight claims per \
           domain).  Purely a scheduling knob — output is byte-identical for every value.")

let obs_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-out" ] ~docv:"FILE"
        ~doc:
          "Write every run's metrics snapshot and span trees to $(docv) as one JSON document \
           ({\"runs\":[{seed,scenario,metrics,spans},..]}).")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Profile the sweep (per-phase wall/alloc breakdown, merged across worker domains \
           in task order) and write the snapshot to $(docv).  Reports and $(b,--obs-out) \
           bytes are unchanged — the profile is a separate channel.")

let sweep_cmd =
  let doc = "Sweep seeds across the scenario matrix and check every history." in
  let run seeds scenario workload txns items partitions plant_bug json trace obs_out jobs
      chunk profile =
    sweep ~seeds ~scenario ~workload ~txns ~items ~partitions ~plant_bug ~json ~trace
      ~obs_out ~jobs ~chunk ~profile
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const run $ seeds_arg $ scenario_opt $ workload_arg $ txns_arg $ items_arg
      $ partitions_arg $ plant_bug_arg $ json_flag $ trace_flag $ obs_out_arg $ jobs_arg
      $ chunk_arg $ profile_arg)

let replay_cmd =
  let doc = "Re-run a single (seed, scenario) pair, verbosely." in
  let run seed scenario workload txns items partitions plant_bug json trace =
    replay ~seed ~scenario ~workload ~txns ~items ~partitions ~plant_bug ~json ~trace
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const run $ seed_arg $ scenario_req $ workload_arg $ txns_arg $ items_arg
      $ partitions_arg $ plant_bug_arg $ json_flag $ trace_flag)

let baselines ~seeds ~protocol ~txns ~items ~jobs =
  let protos =
    match protocol with
    | None -> Baseline.protocols
    | Some name -> (
      match Baseline.protocol_named name with
      | Some p -> [ p ]
      | None ->
        Printf.eprintf "unknown baseline %S (see `chaos_cli list')\n" name;
        exit 2)
  in
  let tasks =
    List.concat_map (fun p -> List.init seeds (fun i -> (p, i + 1))) protos
  in
  let reports =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_list pool tasks ~f:(fun (p, seed) -> Baseline.run ~txns ~items ~seed p))
  in
  List.iter (fun r -> print_endline (Baseline.report_to_string r)) reports;
  let bad = List.filter (fun r -> not (Baseline.ok r)) reports in
  Printf.printf "\n%d baseline runs (%d seeds x %d protocols): %d unexpected\n"
    (seeds * List.length protos)
    seeds (List.length protos) (List.length bad);
  if bad <> [] then exit 1

let protocol_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "protocol" ] ~docv:"NAME" ~doc:"Restrict the baseline sweep to one protocol.")

let baselines_cmd =
  let doc =
    "Sweep the comparison protocols (quorum writes, 2PC, Megastore*) through the history \
     checker.  Quorum writes must trip the lost-update invariant (the checker's canary); 2PC \
     and Megastore* must come back clean."
  in
  let run seeds protocol txns items jobs = baselines ~seeds ~protocol ~txns ~items ~jobs in
  Cmd.v
    (Cmd.info "baselines" ~doc)
    Term.(const run $ seeds_arg $ protocol_opt $ txns_arg $ items_arg $ jobs_arg)

let list_cmd =
  let doc = "List the scenario matrix and the baseline protocols." in
  let run () =
    Printf.printf "scenarios:\n";
    List.iter (fun s -> Printf.printf "  %s\n" s.Nemesis.sc_name) Nemesis.matrix;
    Printf.printf "baseline protocols:\n";
    List.iter (fun p -> Printf.printf "  %s\n" (Baseline.proto_name p)) Baseline.protocols
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc = "deterministic fault-injection sweeps with history checking" in
  let info = Cmd.info "mdcc-chaos" ~doc in
  exit (Cmd.eval (Cmd.group info [ sweep_cmd; replay_cmd; baselines_cmd; list_cmd ]))
