(* Quickstart: bring up a 5-data-center MDCC deployment, run a transaction
   from each data center, and read the result.

     dune exec examples/quickstart.exe

   Everything runs on simulated time: latencies below are the wide-area
   message delays of the paper's EC2 deployment, reproduced by the
   discrete-event engine. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator

let () =
  (* 1. Declare the schema: one table with a value constraint. *)
  let schema =
    Schema.create
      [
        {
          Schema.name = "item";
          bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
          master_dc = 0;
        };
      ]
  in
  (* 2. Build the cluster: 5 data centers (the paper's EC2 regions), full
     MDCC (fast ballots + commutative options). *)
  let engine = Engine.create ~seed:42 in
  let config = Config.make ~mode:Config.Full ~replication:5 () in
  let cluster = Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema () in
  Cluster.start_maintenance cluster;
  (* 3. Load some data (replicated to every data center). *)
  let key = Key.make ~table:"item" ~id:"ocaml-book" in
  Cluster.load cluster [ (key, Value.of_list [ ("stock", Value.Int 10) ]) ];
  (* 4. Commit a transaction from each data center.  Commutative decrements
     let all five commit without a master and without conflicting. *)
  let topo = Cluster.topology cluster in
  for dc = 0 to 4 do
    let coordinator = Cluster.coordinator cluster ~dc ~rank:0 in
    let txn =
      Txn.make
        ~id:(Printf.sprintf "buy-from-dc%d" dc)
        ~updates:[ (key, Update.Delta [ ("stock", -1) ]) ]
    in
    let t0 = Engine.now engine in
    Coordinator.submit coordinator txn (fun outcome ->
        Printf.printf "  [%-12s] %-14s -> %s in %.0f ms\n"
          (Mdcc_sim.Topology.(topo.dc_names).(dc))
          txn.Txn.id
          (Format.asprintf "%a" Txn.pp_outcome outcome)
          (Engine.now engine -. t0))
  done;
  Printf.printf "submitting one buy transaction from every data center...\n";
  Engine.run ~until:60_000.0 engine;
  (* 5. Read the converged state from anywhere. *)
  (match Cluster.peek cluster ~dc:3 key with
  | Some (v, version) ->
    Printf.printf "final stock (read in %s): %d at version %d\n"
      Mdcc_sim.Topology.(topo.dc_names).(3)
      (Value.get_int v "stock") version
  | None -> print_endline "item vanished?!");
  Printf.printf "simulated wall time: %.1f s\n" (Engine.now engine /. 1000.0)
