(* Surviving a data-center outage — the Figure 8 scenario as an example.

     dune exec examples/failover.exe

   Clients in US-West issue buy transactions continuously while the US-East
   region (their closest neighbour) is killed mid-run and later restored.
   MDCC keeps committing throughout: fast quorums are 4 of 5 and a
   data-center outage leaves exactly 4 replicas — latency rises because the
   4th-closest answer now comes from farther away, but availability is
   untouched.  After the region returns, the next update to each record
   heals its straggling replica. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator
module Topology = Mdcc_sim.Topology
module Rng = Mdcc_util.Rng

let schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
    ]

let item i = Key.make ~table:"item" ~id:(string_of_int i)

let () =
  let engine = Engine.create ~seed:8 in
  let config = Config.make ~mode:Config.Full ~replication:5 () in
  let cluster = Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema () in
  Cluster.start_maintenance cluster;
  let items = 200 in
  Cluster.load cluster
    (List.init items (fun i -> (item i, Value.of_list [ ("stock", Value.Int 10_000) ])));
  let run_for = 60_000.0 in
  let fail_at = 20_000.0 and recover_at = 40_000.0 in
  (* A window of latency samples per 10s bucket. *)
  let buckets = Array.make (Float.to_int (run_for /. 10_000.0)) (0, 0.0) in
  let record t0 t1 =
    let b = Float.to_int (t0 /. 10_000.0) in
    if b >= 0 && b < Array.length buckets then begin
      let n, sum = buckets.(b) in
      buckets.(b) <- (n + 1, sum +. (t1 -. t0))
    end
  in
  (* Ten closed-loop clients in US-West. *)
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    let client_rng = Rng.split rng in
    let coordinator = Cluster.coordinator cluster ~dc:Topology.us_west ~rank:0 in
    let seq = ref 0 in
    let rec loop () =
      if Engine.now engine < run_for then begin
        incr seq;
        let txn =
          Txn.make
            ~id:(Printf.sprintf "c%d-%d" (Rng.int client_rng 1_000_000) !seq)
            ~updates:[ (item (Rng.int client_rng items), Update.Delta [ ("stock", -1) ]) ]
        in
        let t0 = Engine.now engine in
        Coordinator.submit coordinator txn (fun _ ->
            record t0 (Engine.now engine);
            loop ())
      end
    in
    ignore (Engine.schedule engine ~after:(Rng.float rng 300.0) loop)
  done;
  ignore
    (Engine.schedule_at engine ~at:fail_at (fun () ->
         Printf.printf "t=%2.0fs  *** US-EAST FAILS ***\n" (fail_at /. 1000.0);
         Cluster.fail_dc cluster Topology.us_east));
  ignore
    (Engine.schedule_at engine ~at:recover_at (fun () ->
         Printf.printf "t=%2.0fs  *** US-EAST RECOVERS ***\n" (recover_at /. 1000.0);
         Cluster.recover_dc cluster Topology.us_east));
  Engine.run ~until:(run_for +. 30_000.0) engine;
  print_endline "commit latency from US-West clients, 10 s buckets:";
  Array.iteri
    (fun i (n, sum) ->
      let mean = if n = 0 then 0.0 else sum /. Float.of_int n in
      let marker =
        if Float.of_int i *. 10_000.0 >= fail_at && Float.of_int i *. 10_000.0 < recover_at
        then "  <- outage"
        else ""
      in
      Printf.printf "  t=%3d..%3ds  %4d commits  mean %.0f ms%s\n" (i * 10) ((i + 1) * 10) n
        mean marker)
    buckets;
  print_endline "MDCC committed continuously across the outage."
