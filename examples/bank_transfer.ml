(* Geo-replicated bank transfers — multi-record atomicity plus value
   constraints (§3.2, §3.4.2).

     dune exec examples/bank_transfer.exe

   A transfer debits one account and credits another in a single MDCC
   transaction.  The debit is a commutative decrement guarded by
   "balance >= 0": MDCC's quorum demarcation prevents overdrafts even when
   transfers race from different continents, and atomic durability
   guarantees that no money is ever created or destroyed — either both the
   debit and the credit execute, or neither does. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator
module Rng = Mdcc_util.Rng

let schema =
  Schema.create
    [
      {
        Schema.name = "account";
        bounds = [ { Schema.attr = "balance"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
    ]

let account i = Key.make ~table:"account" ~id:(Printf.sprintf "acct-%d" i)

let num_accounts = 8

let initial_balance = 100

let () =
  let engine = Engine.create ~seed:2026 in
  let config = Config.make ~mode:Config.Full ~replication:5 () in
  let cluster = Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema () in
  Cluster.start_maintenance cluster;
  Cluster.load cluster
    (List.init num_accounts (fun i ->
         (account i, Value.of_list [ ("balance", Value.Int initial_balance) ])));
  Printf.printf "%d accounts with %d each; firing 60 concurrent transfers...\n" num_accounts
    initial_balance;
  let rng = Rng.create 5 in
  let commits = ref 0 and aborts = ref 0 in
  for i = 0 to 59 do
    let from_acct = Rng.int rng num_accounts in
    let to_acct = (from_acct + 1 + Rng.int rng (num_accounts - 1)) mod num_accounts in
    let amount = Rng.int_in rng 5 40 in
    let dc = Rng.int rng 5 in
    let txn =
      Txn.make
        ~id:(Printf.sprintf "xfer-%d" i)
        ~updates:
          [
            (account from_acct, Update.Delta [ ("balance", -amount) ]);
            (account to_acct, Update.Delta [ ("balance", amount) ]);
          ]
    in
    ignore
      (Engine.schedule engine ~after:(Rng.float rng 3_000.0) (fun () ->
           Coordinator.submit (Cluster.coordinator cluster ~dc ~rank:0) txn (fun outcome ->
               match outcome with
               | Txn.Committed -> incr commits
               | Txn.Aborted _ -> incr aborts)))
  done;
  Engine.run ~until:120_000.0 engine;
  Printf.printf "transfers committed: %d, rejected (insufficient funds): %d\n" !commits !aborts;
  (* Invariants: conservation of money, no overdrafts, replica agreement. *)
  let total = ref 0 in
  for i = 0 to num_accounts - 1 do
    match Cluster.peek cluster ~dc:0 (account i) with
    | Some (v, _) ->
      let balance = Value.get_int v "balance" in
      assert (balance >= 0);
      total := !total + balance;
      for dc = 1 to 4 do
        match Cluster.peek cluster ~dc (account i) with
        | Some (v', _) -> assert (Value.equal v v')
        | None -> assert false
      done
    | None -> assert false
  done;
  Printf.printf "total money in the system: %d (started with %d) -- conserved\n" !total
    (num_accounts * initial_balance);
  assert (!total = num_accounts * initial_balance);
  print_endline "no overdrafts, no lost or created money, all replicas agree."
