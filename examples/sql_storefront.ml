(* A storefront driven entirely through the SQL-like language the paper's
   TPC-W implementation uses (§5.1).

     dune exec examples/sql_storefront.exe

   Shows the language surface: auto-commit statements, atomic BEGIN/COMMIT
   transactions, commutative "stock = stock - n" updates, and a
   serializable script with certified reads. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Session = Mdcc_core.Session
module Exec = Mdcc_sql.Exec
module Parser = Mdcc_sql.Parser

let schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
      { Schema.name = "order"; bounds = []; master_dc = 0 };
    ]

let () =
  let engine = Engine.create ~seed:11 in
  let config = Config.make ~mode:Config.Full ~replication:5 () in
  let cluster = Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema () in
  Cluster.start_maintenance cluster;
  let session dc = Session.create (Cluster.coordinator cluster ~dc ~rank:0) in
  let seq = ref 0 in
  let sql ?serializable ~dc ~label src =
    incr seq;
    let s = session dc in
    Exec.run_string ?serializable s ~txid:(Printf.sprintf "sql-%d" !seq) src (function
      | Ok r ->
        Printf.printf "[%-26s] %s" label
          (Format.asprintf "%a" Txn.pp_outcome r.Exec.outcome);
        List.iter
          (fun (row : Exec.row) ->
            match row.Exec.value with
            | Some v ->
              Printf.printf "  %s -> %s" (Key.to_string row.Exec.key)
                (Format.asprintf "%a" Value.pp v)
            | None -> Printf.printf "  %s -> (absent)" (Key.to_string row.Exec.key))
          r.Exec.rows;
        print_newline ()
      | Error e -> Printf.printf "[%-26s] %s\n" label (Format.asprintf "%a" Parser.pp_error e))
  in
  (* Seed the catalogue from the EU data center. *)
  sql ~dc:2 ~label:"create item (EU)"
    "INSERT INTO item (id, stock, price, name) VALUES ('kayak', 12, 499, 'sea kayak')";
  Engine.run ~until:5_000.0 engine;
  (* Two checkouts race from different continents: commutative decrements
     both commit in one wide-area round trip. *)
  sql ~dc:0 ~label:"checkout #1 (US-West)"
    "BEGIN; UPDATE item SET stock = stock - 1 WHERE id = 'kayak'; INSERT INTO order (id, \
     item, qty) VALUES ('o-1', 'kayak', 1); COMMIT";
  sql ~dc:4 ~label:"checkout #2 (Tokyo)"
    "BEGIN; UPDATE item SET stock = stock - 2 WHERE id = 'kayak'; INSERT INTO order (id, \
     item, qty) VALUES ('o-2', 'kayak', 2); COMMIT";
  Engine.run ~until:10_000.0 engine;
  sql ~dc:3 ~label:"inventory (Singapore)" "SELECT * FROM item WHERE id = 'kayak'";
  Engine.run ~until:15_000.0 engine;
  (* A price change is an absolute write: optimistic read-modify-write. *)
  sql ~dc:1 ~label:"reprice (US-East)" "UPDATE item SET price = 449 WHERE id = 'kayak'";
  Engine.run ~until:20_000.0 engine;
  (* Overselling is rejected by the stock >= 0 constraint. *)
  sql ~dc:0 ~label:"oversell attempt"
    "UPDATE item SET stock = stock - 50 WHERE id = 'kayak'";
  Engine.run ~until:25_000.0 engine;
  (* Serializable audit: the SELECT is certified at commit time. *)
  sql ~serializable:true ~dc:2 ~label:"serializable audit (EU)"
    "BEGIN; SELECT * FROM item WHERE id = 'kayak'; INSERT INTO order (id, note) VALUES \
     ('audit-1', 'stock checked'); COMMIT";
  Engine.run ~until:35_000.0 engine;
  sql ~dc:0 ~label:"final state" "SELECT * FROM item WHERE id = 'kayak'";
  Engine.run ~until:40_000.0 engine
