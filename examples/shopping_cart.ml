(* Shopping cart checkout — the workload that motivates MDCC's commutative
   options (§1, §3.4): an e-commerce site replicated across five data
   centers sells a limited-stock item to customers everywhere at once.

     dune exec examples/shopping_cart.exe

   The checkout transaction decrements the stock of each cart item subject
   to "stock >= 0" and inserts an order record.  With MDCC the decrements
   are commutative options: customers in different continents commit in one
   wide-area round trip each, concurrently, and the constraint still holds.
   The example also shows the flip side: once stock approaches the quorum
   demarcation limit, the protocol starts rejecting (aborting) oversells. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator

let schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
      { Schema.name = "order"; bounds = []; master_dc = 0 };
    ]

let hot_item = Key.make ~table:"item" ~id:"limited-sneaker"

let checkout cluster engine ~dc ~customer ~qty ~stats =
  let coordinator = Cluster.coordinator cluster ~dc ~rank:0 in
  let order_key = Key.make ~table:"order" ~id:(Printf.sprintf "order-%s" customer) in
  let txn =
    Txn.make ~id:("checkout-" ^ customer)
      ~updates:
        [
          (hot_item, Update.Delta [ ("stock", -qty) ]);
          ( order_key,
            Update.Insert
              (Value.of_list
                 [ ("customer", Value.Str customer); ("qty", Value.Int qty) ]) );
        ]
  in
  let t0 = Engine.now engine in
  Coordinator.submit coordinator txn (fun outcome ->
      let ok = match outcome with Txn.Committed -> true | Txn.Aborted _ -> false in
      let commits, aborts, latency_sum = !stats in
      stats :=
        (if ok then (commits + 1, aborts, latency_sum +. (Engine.now engine -. t0))
         else (commits, aborts + 1, latency_sum)))

let () =
  let engine = Engine.create ~seed:7 in
  let config = Config.make ~mode:Config.Full ~replication:5 () in
  let cluster = Cluster.create ~engine ~spec:Cluster.Spec.default ~config ~schema () in
  Cluster.start_maintenance cluster;
  let initial_stock = 40 in
  Cluster.load cluster [ (hot_item, Value.of_list [ ("stock", Value.Int initial_stock) ]) ];
  Printf.printf "flash sale: %d sneakers, 30 customers across 5 continents\n" initial_stock;
  let stats = ref (0, 0, 0.0) in
  let rng = Mdcc_util.Rng.create 99 in
  for i = 0 to 29 do
    let dc = i mod 5 in
    let qty = Mdcc_util.Rng.int_in rng 1 2 in
    (* Customers arrive over ~2 seconds — heavily concurrent. *)
    let arrival = Mdcc_util.Rng.float rng 2_000.0 in
    ignore
      (Engine.schedule engine ~after:arrival (fun () ->
           checkout cluster engine ~dc ~customer:(Printf.sprintf "cust%02d" i) ~qty ~stats))
  done;
  Engine.run ~until:120_000.0 engine;
  let commits, aborts, latency_sum = !stats in
  Printf.printf "checkouts committed: %d, rejected (sold out / limit): %d\n" commits aborts;
  Printf.printf "mean commit latency: %.0f ms (one wide-area round trip)\n"
    (latency_sum /. Float.of_int (max 1 commits));
  (match Cluster.peek cluster ~dc:0 hot_item with
  | Some (v, _) ->
    let stock = Value.get_int v "stock" in
    Printf.printf "remaining stock: %d (never negative: constraint held)\n" stock;
    assert (stock >= 0)
  | None -> assert false);
  (* Every data center agrees. *)
  let reference = Cluster.peek cluster ~dc:0 hot_item in
  for dc = 1 to 4 do
    assert (
      match (reference, Cluster.peek cluster ~dc hot_item) with
      | Some (v1, _), Some (v2, _) -> Value.equal v1 v2
      | _ -> false)
  done;
  print_endline "all five data centers converged."
