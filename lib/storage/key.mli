(** Record keys: a table name plus a primary key string. *)

type t = { table : string; id : string }

val make : table:string -> id:string -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** ["table/id"], for traces and option logs. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

module Tbl : sig
  include Hashtbl.S with type key = t

  val sorted_bindings : 'a t -> (key * 'a) list
  (** All bindings in {!compare} order of the keys — the deterministic
      replacement for [iter]/[fold] (see `mdcc_lint` rule R1). *)

  val sorted_iter : (key -> 'a -> unit) -> 'a t -> unit
end
