type t = { table : string; id : string }

let make ~table ~id = { table; id }

let compare a b =
  match String.compare a.table b.table with 0 -> String.compare a.id b.id | c -> c

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (t.table, t.id)

let to_string t = t.table ^ "/" ^ t.id

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = struct
  include Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  (* Deterministic iteration: hash order depends on the table's load
     history, so every observable walk goes through these (mdcc_lint R1). *)
  let sorted_bindings t =
    fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let sorted_iter f t = List.iter (fun (k, v) -> f k v) (sorted_bindings t)
end
