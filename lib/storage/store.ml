type row = {
  mutable value : Value.t;
  mutable version : int;
  mutable exists : bool;
}

type t = { schema : Schema.t; rows : row Key.Tbl.t }

let create schema = { schema; rows = Key.Tbl.create 1024 }

let schema t = t.schema

let find t key = Key.Tbl.find_opt t.rows key

let ensure t key =
  match Key.Tbl.find_opt t.rows key with
  | Some row -> row
  | None ->
    let row = { value = Value.empty; version = 0; exists = false } in
    Key.Tbl.add t.rows key row;
    row

let read t key =
  match Key.Tbl.find_opt t.rows key with
  | Some row when row.exists -> Some (row.value, row.version)
  | Some _ | None -> None

let version t key = match Key.Tbl.find_opt t.rows key with Some r -> r.version | None -> 0

let validate t key (up : Update.t) =
  let row = find t key in
  match up with
  | Update.Insert _ -> ( match row with None -> true | Some r -> not r.exists)
  | Update.Physical { vread; _ } | Update.Delete { vread } -> (
    match row with Some r -> r.exists && r.version = vread | None -> false)
  | Update.Delta _ -> ( match row with Some r -> r.exists | None -> false)
  | Update.Read_guard { vread } -> (
    (* Reading a missing record is "version 0" (or the tombstone's). *)
    match row with Some r -> r.version = vread | None -> vread = 0)

let apply t key (up : Update.t) =
  let row = ensure t key in
  match up with
  | Update.Insert v ->
    row.value <- v;
    row.exists <- true;
    row.version <- row.version + 1
  | Update.Physical { vread; value } ->
    row.value <- value;
    row.exists <- true;
    (* Version jumps to vread + 1 so a replica that missed an intermediate
       physical update still converges (the new value is absolute). *)
    row.version <- vread + 1
  | Update.Delete { vread } ->
    row.value <- Value.empty;
    row.exists <- false;
    row.version <- vread + 1
  | Update.Delta ds ->
    row.value <- List.fold_left (fun v (attr, d) -> Value.add_delta v attr d) row.value ds;
    row.version <- row.version + 1
  | Update.Read_guard _ -> ()

let size t = Key.Tbl.length t.rows

(* Iteration is in key order, not hash order: anti-entropy sweeps and scans
   walk the store, and their message order must be a pure function of the
   store's contents for chaos seeds to replay (mdcc_lint R1). *)
let iter t f = Key.Tbl.sorted_iter f t.rows

let fold t ~init ~f =
  List.fold_left (fun acc (k, row) -> f k row acc) init (Key.Tbl.sorted_bindings t.rows)
