type bound = { attr : string; lower : int option; upper : int option }

type table = { name : string; bounds : bound list; master_dc : int }

type t = (string, table) Hashtbl.t

let create tables =
  let t = Hashtbl.create (List.length tables) in
  List.iter
    (fun tbl ->
      if Hashtbl.mem t tbl.name then
        invalid_arg ("Schema.create: duplicate table " ^ tbl.name);
      Hashtbl.add t tbl.name tbl)
    tables;
  t

let table t name =
  match Hashtbl.find_opt t name with Some tbl -> tbl | None -> raise Not_found

let tables t = List.map snd (Mdcc_util.Table.sorted_bindings ~compare:String.compare t)

let bounds_of t key = (table t key.Key.table).bounds

let master_dc t key = (table t key.Key.table).master_dc

let check_bound b v =
  (match b.lower with None -> true | Some lo -> v >= lo)
  && match b.upper with None -> true | Some hi -> v <= hi

let check_value t key value =
  List.for_all (fun b -> check_bound b (Value.get_int value b.attr)) (bounds_of t key)
