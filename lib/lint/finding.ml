type t = {
  rule : string;  (* e.g. "R1-hash-iter" *)
  file : string;  (* repo-relative path *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, as compilers print *)
  ident : string;  (* the offending identifier / constructor *)
  message : string;
}

let family rule =
  match String.index_opt rule '-' with
  | Some i -> String.sub rule 0 i
  | None -> rule

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> (
        match String.compare a.rule b.rule with
        | 0 -> String.compare a.ident b.ident
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s (%s)" f.file f.line f.col f.rule f.message f.ident

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"ident\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.rule) (json_escape f.file) f.line f.col (json_escape f.ident)
    (json_escape f.message)
