(** SARIF 2.1.0 rendering of a lint report, for CI code-scanning upload.

    The document is a single line, byte-identical across runs and across
    --jobs values: rules are the sorted set of rule ids that occur, results
    are sorted by {!Finding.compare}, and allowlisted findings appear with
    a non-empty [suppressions] array (consumers hide them; auditors can
    still see the escape surface). *)

val render : findings:Finding.t list -> suppressed:Finding.t list -> string
