(* R5 — domain safety: mutable state escaping into parallel task closures.

   The parallel sweep path (PR 5) and the socket loop's cross-domain post
   (PR 6) both run closures on other domains: [Mdcc_util.Pool] tasks,
   [Domain.spawn] bodies, [Loop.post] thunks.  A closure that captures a
   plain mutable value — a [ref], [Hashtbl], [Buffer], [Queue], an array —
   shares that value across domains with no synchronisation, which is a
   data race under OCaml 5's memory model and, even when "benign", breaks
   the same-seed byte-identity contract the pool is pinned to.

   The analysis is a syntactic escape check with a cross-file link phase:

   - [edges]: per file, record every top-level function that forwards one
     of its own parameters into a call of a (potential) spawner — the
     call-graph edges along which "runs things on another domain" is
     contagious.  [Experiments.par_map] is the canonical case: its [~f]
     lands in [Pool.map_list], so every [par_map] call site is a spawn
     site too.
   - [link]: fixpoint over all files' edges from the base spawner set
     ([Domain.spawn], [Pool.map]/[map_list]/[run_batch], [Loop.post]).
   - [check]: at every application of a spawner, analyse each closure
     literal argument (and local [let]-bound functions passed by name):
     - [R5-capture]: the closure captures a local that was visibly bound
       to a mutable constructor ([ref], [Hashtbl.create], [Buffer.create],
       [Array.make], an array literal, ...).  [Atomic.make] is exempt —
       atomics are the sanctioned cross-domain cell.
     - [R5-mutate]: the closure assigns through a captured variable
       ([x := ...], [x.f <- ...], [x.(i) <- ...], [incr]/[decr],
       [Hashtbl.replace x ...], [Buffer.add_* x ...], ...) even when the
       binding site is out of sight (a parameter, a field read).
     A closure that touches [Mutex.*] is skipped wholesale: it has taken
     explicit responsibility for its synchronisation, and lock-region
     inference is beyond a syntactic pass.  Values bound *inside* the
     closure are task-local and never flagged.

   Like the rest of mdcc_lint this is untyped and under-approximate:
   aliases and cross-function flows it cannot see stay silent, and the
   byte-identity tests remain the dynamic backstop.  What it does catch is
   the shape every real race so far has had: a closure reaching for a
   mutable local of the enclosing function. *)

open Parsetree

module Sset = Set.Make (String)
module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> strip e
  | _ -> e

(* A visibly mutable allocation.  [Atomic.make] is deliberately absent. *)
let mutable_ctor e =
  match (strip e).pexp_desc with
  | Pexp_array _ -> Some "array literal"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    let comps = Longident.flatten txt in
    match List.rev comps with
    | "ref" :: _ -> Some "ref"
    | "create" :: ("Hashtbl" | "Buffer" | "Queue" | "Stack" | "Tbl") :: _
    | ("make" | "init") :: "Array" :: _
    | ("create" | "make" | "of_string") :: "Bytes" :: _ ->
      Some (String.concat "." comps)
    | _ -> None)
  | _ -> None

(* Names bound by a pattern. *)
let rec pat_names p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> (
    match p.ppat_desc with
    | Ppat_alias (inner, _) -> txt :: pat_names inner
    | _ -> [ txt ])
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_names ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> pat_names p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_names p) fields
  | Ppat_or (a, b) -> pat_names a @ pat_names b
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p | Ppat_exception p ->
    pat_names p
  | _ -> []

(* Resolve an applied identifier to (owner module, function name); an
   unqualified lowercase call belongs to the current module. *)
let callee ~current_module txt =
  match List.rev (Longident.flatten txt) with
  | fn :: owner :: _ when String.length owner > 0 && owner.[0] >= 'A' && owner.[0] <= 'Z' ->
    Some (owner, fn)
  | [ fn ] -> Some (current_module, fn)
  | _ -> None

(* Unqualified identifiers mentioned anywhere in [e]. *)
let free_idents e =
  let acc = ref Sset.empty in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } -> acc := Sset.add x !acc
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !acc

let mentions_mutex e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match List.rev (Longident.flatten txt) with
      | _ :: "Mutex" :: _ -> found := true
      | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Per-file summary: call-graph edges for the spawner fixpoint          *)
(* ------------------------------------------------------------------ *)

type edge = {
  ed_fn : string * string;  (* defining (module, function) *)
  ed_callee : string * string;  (* applied (module, function) *)
}

type summary = { su_edges : edge list }

let rec fun_params e =
  match (strip e).pexp_desc with
  | Pexp_fun (_, _, pat, body) -> pat_names pat @ fun_params body
  | Pexp_newtype (_, body) -> fun_params body
  | _ -> []

let rec fun_body e =
  match (strip e).pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> fun_body body
  | _ -> e

(* Local [let f = ...] bindings in [e], flat (scope-insensitive: good
   enough to expand an ident argument one level at a spawn site). *)
let local_bindings e =
  let acc = ref Smap.empty in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
      List.iter
        (fun vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> acc := Smap.add txt vb.pvb_expr !acc
          | _ -> ())
        vbs
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !acc

(* Free idents of an argument expression, looking through one level of
   local let-binding so [~f:run] with [let run x = f x] sees [f]. *)
let arg_flow locals arg =
  let direct = free_idents arg in
  Sset.fold
    (fun x acc ->
      match Smap.find_opt x locals with
      | Some def -> Sset.union acc (free_idents def)
      | None -> acc)
    direct direct

let edges ~rel (str : structure) : summary =
  let rel = Rules.norm_rel rel in
  let module_ = Rules.module_name_of_rel rel in
  let out = ref [] in
  let scan_fn fname expr0 =
    let params = Sset.of_list (fun_params expr0) in
    if not (Sset.is_empty params) then begin
      let body = fun_body expr0 in
      let locals = local_bindings body in
      let super = Ast_iterator.default_iterator in
      let expr it e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
          match callee ~current_module:module_ txt with
          | Some target ->
            if
              List.exists
                (fun (_, a) -> not (Sset.is_empty (Sset.inter params (arg_flow locals a))))
                args
            then out := { ed_fn = (module_, fname); ed_callee = target } :: !out
          | None -> ())
        | _ -> ());
        super.expr it e
      in
      let it = { super with expr } in
      it.expr it body
    end
  in
  let rec scan_structure items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> scan_fn txt vb.pvb_expr
              | _ -> ())
            vbs
        | Pstr_module mb -> scan_module_expr mb.pmb_expr
        | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module_expr mb.pmb_expr) mbs
        | _ -> ())
      items
  and scan_module_expr me =
    match me.pmod_desc with
    | Pmod_structure items -> scan_structure items
    | Pmod_constraint (inner, _) -> scan_module_expr inner
    | _ -> ()
  in
  scan_structure str;
  { su_edges = List.rev !out }

(* ------------------------------------------------------------------ *)
(* Link: fixpoint over call-graph edges                                *)
(* ------------------------------------------------------------------ *)

type spawners = Sset.t  (* "Module.fn" *)

let key (m, f) = m ^ "." ^ f

let base_spawners =
  [
    ("Domain", "spawn");
    ("Pool", "map");
    ("Pool", "map_list");
    ("Pool", "run_batch");
    ("Loop", "post");
  ]

let link ~(edges : summary list) : spawners =
  let all = List.concat_map (fun s -> s.su_edges) edges in
  let rec fix spawners =
    let grown =
      List.fold_left
        (fun acc e ->
          if Sset.mem (key e.ed_callee) acc then Sset.add (key e.ed_fn) acc else acc)
        spawners all
    in
    if Sset.equal grown spawners then spawners else fix grown
  in
  fix (Sset.of_list (List.map key base_spawners))

(* ------------------------------------------------------------------ *)
(* Per-file check                                                      *)
(* ------------------------------------------------------------------ *)

(* Mutating applications: (function tail, owner constraint option). *)
let mutator_target comps args =
  let first_pos () =
    List.find_map
      (fun (lbl, a) ->
        match lbl with
        | Asttypes.Nolabel -> (
          match (strip a).pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
          | _ -> None)
        | _ -> None)
      args
  in
  match List.rev comps with
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> first_pos ()
  | "set" :: ("Array" | "Bytes") :: _ -> first_pos ()
  | ("replace" | "add" | "remove" | "reset" | "clear") :: ("Hashtbl" | "Tbl") :: _ ->
    first_pos ()
  | fn :: "Buffer" :: _ when Rules.starts_with ~prefix:"add_" fn -> first_pos ()
  | ("clear" | "reset" | "truncate") :: "Buffer" :: _ -> first_pos ()
  | ("push" | "add" | "pop" | "take" | "clear" | "transfer") :: ("Queue" | "Stack") :: _ ->
    first_pos ()
  | "fill" :: ("Array" | "Bytes") :: _ | "blit" :: ("Array" | "Bytes") :: _ ->
    first_pos ()
  | _ -> None

(* Analyse one task closure body.  [bound] holds names bound inside the
   closure (task-local); [mutables] maps enclosing-scope locals to the
   mutable constructor they were bound to. *)
let check_closure ~add ~mutables closure =
  if not (mentions_mutex closure) then begin
    let reported = ref Sset.empty in
    let report ~loc rule name what =
      if not (Sset.mem name !reported) then begin
        reported := Sset.add name !reported;
        add ~loc rule name what
      end
    in
    let rec walk bound e =
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; loc } ->
        if (not (Sset.mem x bound)) && Smap.mem x mutables then
          report ~loc "R5-capture" x (Smap.find x mutables)
      | Pexp_fun (_, default, pat, body) ->
        Option.iter (walk bound) default;
        walk (Sset.union bound (Sset.of_list (pat_names pat))) body
      | Pexp_function cases -> walk_cases bound cases
      | Pexp_let (rf, vbs, body) ->
        let bound' =
          List.fold_left
            (fun acc vb -> Sset.union acc (Sset.of_list (pat_names vb.pvb_pat)))
            bound vbs
        in
        let inner = match rf with Asttypes.Recursive -> bound' | Nonrecursive -> bound in
        List.iter (fun vb -> walk inner vb.pvb_expr) vbs;
        walk bound' body
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        walk bound scrut;
        walk_cases bound cases
      | Pexp_setfield (target, _, value) ->
        (match (strip target).pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; loc } when not (Sset.mem x bound) ->
          report ~loc "R5-mutate" x "mutable field assignment"
        | _ -> walk bound target);
        walk bound value
      | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) ->
        (match mutator_target (Longident.flatten txt) args with
        | Some x when not (Sset.mem x bound) ->
          let loc =
            (* anchor on the mutated identifier if we can find it *)
            List.fold_left
              (fun acc (_, a) ->
                match (strip a).pexp_desc with
                | Pexp_ident { txt = Longident.Lident y; loc } when String.equal y x ->
                  Some loc
                | _ -> acc)
              None args
            |> Option.value ~default:f.pexp_loc
          in
          report ~loc "R5-mutate" x "mutation through a captured variable"
        | _ -> ());
        walk bound f;
        List.iter (fun (_, a) -> walk bound a) args
      | Pexp_for (pat, lo, hi, _, body) ->
        walk bound lo;
        walk bound hi;
        walk (Sset.union bound (Sset.of_list (pat_names pat))) body
      | _ -> fallback bound e
    and walk_cases bound cases =
      List.iter
        (fun c ->
          let b = Sset.union bound (Sset.of_list (pat_names c.pc_lhs)) in
          Option.iter (walk b) c.pc_guard;
          walk b c.pc_rhs)
        cases
    and fallback bound e =
      (* Structural recursion for the remaining forms via the iterator,
         re-entering [walk] so binders stay tracked. *)
      let super = Ast_iterator.default_iterator in
      let expr _it child = walk bound child in
      let it = { super with expr } in
      super.expr it e
    in
    match (strip closure).pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> walk Sset.empty (strip closure)
    | _ -> ()
  end

let check (spawners : spawners) ~rel (str : structure) : Finding.t list =
  let rel = Rules.norm_rel rel in
  let module_ = Rules.module_name_of_rel rel in
  let out = ref [] in
  let add ~loc rule name what =
    let p = loc.Location.loc_start in
    out :=
      {
        Finding.rule;
        file = rel;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        ident = name;
        message =
          Printf.sprintf
            "%s '%s' (%s) is shared with other domains by this task closure; make it \
             Atomic.t, guard it with a mutex, or allocate it inside the task"
            (match rule with
            | "R5-capture" -> "captured mutable local"
            | _ -> "captured variable")
            name what;
      }
      :: !out
  in
  (* Walk with an environment of visibly-mutable locals in scope. *)
  let rec walk mutables e =
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk mutables vb.pvb_expr) vbs;
      let mutables' =
        List.fold_left
          (fun acc vb ->
            match (vb.pvb_pat.ppat_desc, mutable_ctor vb.pvb_expr) with
            | Ppat_var { txt; _ }, Some what -> Smap.add txt what acc
            | _ -> acc)
          mutables vbs
      in
      walk mutables' body
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) ->
      (match callee ~current_module:module_ txt with
      | Some target when Sset.mem (key target) spawners ->
        List.iter
          (fun (_, a) ->
            match (strip a).pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> check_closure ~add ~mutables a
            | _ -> ())
          args
      | _ -> ());
      walk mutables f;
      List.iter (fun (_, a) -> walk mutables a) args
    | Pexp_fun (_, default, _, body) ->
      Option.iter (walk mutables) default;
      walk mutables body
    | Pexp_function cases | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      (match e.pexp_desc with
      | Pexp_match (scrut, _) | Pexp_try (scrut, _) -> walk mutables scrut
      | _ -> ());
      List.iter
        (fun c ->
          Option.iter (walk mutables) c.pc_guard;
          walk mutables c.pc_rhs)
        cases
    | Pexp_sequence (a, b) ->
      walk mutables a;
      walk mutables b
    | Pexp_ifthenelse (c, t, e_opt) ->
      walk mutables c;
      walk mutables t;
      Option.iter (walk mutables) e_opt
    | _ ->
      let super = Ast_iterator.default_iterator in
      let expr _it child = walk mutables child in
      let it = { super with expr } in
      super.expr it e
  in
  let rec walk_structure items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (fun vb -> walk Smap.empty vb.pvb_expr) vbs
        | Pstr_module mb -> walk_module_expr mb.pmb_expr
        | Pstr_recmodule mbs -> List.iter (fun mb -> walk_module_expr mb.pmb_expr) mbs
        | _ -> ())
      items
  and walk_module_expr me =
    match me.pmod_desc with
    | Pmod_structure items -> walk_structure items
    | Pmod_constraint (inner, _) -> walk_module_expr inner
    | _ -> ()
  in
  walk_structure str;
  List.sort Finding.compare !out
