(* R6 — runtime purity.

   The deterministic core (lib/core, lib/paxos, lib/protocols, lib/storage,
   lib/wire) is parameterized over [Mdcc_core.Runtime.t]: clocks, timers,
   sends, and traces all arrive through that record, which is what lets the
   exact same state machines run under the simulator and the real socket
   loop.  A direct [Unix.*] call, a [Sys.*] read, channel I/O, or a
   process-level [exit] in those trees reopens the hole — an effect the
   replayer cannot see and the DES cannot reproduce.  R6 bans them
   syntactically; the only sanctioned home for OS ambience is
   lib/runtime_unix (which implements the Runtime interface) and the
   executables under bin/.

   lib/obs is in scope too: the observability layer runs inside the
   deterministic sweeps, so a stray [Unix.*] there would leak wall-clock
   values into byte-pinned exports.  Its one sanctioned clock is
   [Mdcc_obs.Clock] (lib/obs/clock.ml), carved out by a file-scoped
   lint_allow.conf entry — every other lib/obs file must go through it. *)

open Parsetree

let in_scope rel =
  List.exists
    (fun p -> Rules.starts_with ~prefix:p rel)
    [
      "lib/core/";
      "lib/obs/";
      "lib/paxos/";
      "lib/protocols/";
      "lib/storage/";
      "lib/wire/";
    ]

(* [Sys] members that are pure compile-time-ish constants; everything else
   in [Sys] is an environment read or an OS effect. *)
let benign_sys =
  [
    "max_string_length";
    "max_array_length";
    "max_floatarray_length";
    "int_size";
    "word_size";
    "big_endian";
    "ocaml_version";
    "backend_type";
    "opaque_identity";
  ]

(* Stdlib console/channel primitives that reach the process's file
   descriptors when used bare or via [Stdlib.]. *)
let channel_prims =
  [
    "print_string";
    "print_bytes";
    "print_char";
    "print_int";
    "print_float";
    "print_endline";
    "print_newline";
    "prerr_string";
    "prerr_bytes";
    "prerr_char";
    "prerr_int";
    "prerr_float";
    "prerr_endline";
    "prerr_newline";
    "read_line";
    "read_int";
    "read_int_opt";
    "read_float";
    "read_float_opt";
    "open_in";
    "open_in_bin";
    "open_in_gen";
    "open_out";
    "open_out_bin";
    "open_out_gen";
    "input_line";
    "input_char";
    "input_byte";
    "input_binary_int";
    "really_input";
    "really_input_string";
    "output_string";
    "output_bytes";
    "output_char";
    "output_byte";
    "output_binary_int";
    "close_in";
    "close_in_noerr";
    "close_out";
    "close_out_noerr";
    "flush";
    "flush_all";
    "stdin";
    "stdout";
    "stderr";
  ]

module Sset = Set.Make (String)

(* Every name the file binds itself (top-level lets, local lets, function
   parameters).  A bare identifier carrying one of those names resolves to
   the local binding, not to Stdlib — wire/handler.ml's own [flush] must
   not read as [Stdlib.flush].  Qualified uses are unaffected. *)
let bound_names (str : structure) =
  let acc = ref Sset.empty in
  let super = Ast_iterator.default_iterator in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } -> acc := Sset.add txt !acc
    | _ -> ());
    super.pat it p
  in
  let it = { super with pat } in
  it.structure it str;
  !acc

let check ~rel (str : structure) : Finding.t list =
  let rel = Rules.norm_rel rel in
  if not (in_scope rel) then []
  else begin
    let locally_bound = bound_names str in
    let out = ref [] in
    let add ~loc rule ident message =
      let p = loc.Location.loc_start in
      out :=
        {
          Finding.rule;
          file = rel;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          ident;
          message;
        }
        :: !out
    in
    let check_ident ~loc comps =
      let dotted = String.concat "." comps in
      match List.rev comps with
      | _ :: "Unix" :: _ ->
        add ~loc "R6-unix" dotted
          "direct OS call in the deterministic core; route the effect through Runtime.t"
      | fn :: "Sys" :: _ when not (List.mem fn benign_sys) ->
        add ~loc "R6-sys" dotted
          "ambient process state read in the deterministic core; route it through Runtime.t"
      | _ :: ("In_channel" | "Out_channel") :: _ ->
        add ~loc "R6-channel" dotted
          "channel I/O in the deterministic core; route the effect through Runtime.t"
      | ("printf" | "eprintf" | "fprintf") :: "Printf" :: _
      | ("printf" | "eprintf") :: "Format" :: _
      | ("std_formatter" | "err_formatter") :: "Format" :: _ ->
        add ~loc "R6-print" dotted
          "console output in the deterministic core; use Runtime.trace (or return the string)"
      | [ "exit" ] when not (Sset.mem "exit" locally_bound) ->
        add ~loc "R6-exit" dotted
          "process exit in the deterministic core; raise a structured error instead"
      | "exit" :: "Stdlib" :: _ ->
        add ~loc "R6-exit" dotted
          "process exit in the deterministic core; raise a structured error instead"
      | [ x ] when List.mem x channel_prims && not (Sset.mem x locally_bound) ->
        add ~loc "R6-channel" dotted
          "channel I/O in the deterministic core; route the effect through Runtime.t"
      | x :: "Stdlib" :: _ when List.mem x channel_prims ->
        add ~loc "R6-channel" dotted
          "channel I/O in the deterministic core; route the effect through Runtime.t"
      | _ -> ()
    in
    let super = Ast_iterator.default_iterator in
    let expr it e =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> check_ident ~loc (Longident.flatten txt)
      | _ -> ());
      super.expr it e
    in
    let it = { super with expr } in
    it.structure it str;
    List.rev !out
  end
