(* The three rule families, implemented as a purely syntactic pass over the
   Parsetree. The linter lints its own source tree, so this module must obey
   its own rules: no hash-order iteration, no wall clock, no bare partiality.
   The type environment is therefore a [Map], and every traversal is over
   lists built in source order. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

let norm_rel rel =
  let rel = if starts_with ~prefix:"./" rel then String.sub rel 2 (String.length rel - 2) else rel in
  String.map (fun c -> if c = '\\' then '/' else c) rel

(* R3 applies only where an anonymous failure can kill a protocol step. *)
let in_protocol_core rel =
  starts_with ~prefix:"lib/core/" rel || starts_with ~prefix:"lib/paxos/" rel

(* R3 additionally covers the shared utility layer: a bare [invalid_arg] in
   Stats or Rng surfaces as an anonymous crash in whatever protocol path
   called it, so those must route through Invariant.violate too. *)
let in_r3_scope rel = in_protocol_core rel || starts_with ~prefix:"lib/util/" rel

(* R1-simtime applies wherever timestamps feed replay / checking. *)
let in_simtime_scope rel = in_protocol_core rel || starts_with ~prefix:"lib/chaos/" rel

(* R4 covers the whole library tree: worker domains assume every module is
   either pure or routes its ambient state through Domain.DLS. *)
let in_r4_scope rel = starts_with ~prefix:"lib/" rel

let module_name_of_rel rel =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

(* ------------------------------------------------------------------ *)
(* Type environment (for R2 reachability)                              *)
(* ------------------------------------------------------------------ *)

module Smap = Map.Make (String)

type type_entry = {
  e_module : string;  (* module the declaration lives in *)
  e_mutable : string option;  (* why the type is directly mutable, if it is *)
  e_types : core_type list;  (* component types to recurse into *)
}

type env = type_entry Smap.t

let record_mutable_reason lds =
  List.find_map
    (fun ld ->
      if ld.pld_mutable = Asttypes.Mutable then Some ("mutable field " ^ ld.pld_name.txt)
      else None)
    lds

let decl_entry ~module_ (td : type_declaration) =
  let mut, types =
    match td.ptype_kind with
    | Ptype_record lds -> (record_mutable_reason lds, List.map (fun ld -> ld.pld_type) lds)
    | Ptype_variant cds ->
      let mut =
        List.find_map
          (fun cd ->
            match cd.pcd_args with
            | Pcstr_record lds -> record_mutable_reason lds
            | Pcstr_tuple _ -> None)
          cds
      in
      let types =
        List.concat_map
          (fun cd ->
            match cd.pcd_args with
            | Pcstr_tuple cts -> cts
            | Pcstr_record lds -> List.map (fun ld -> ld.pld_type) lds)
          cds
      in
      (mut, types)
    | Ptype_abstract | Ptype_open -> (None, [])
  in
  let types = match td.ptype_manifest with Some m -> m :: types | None -> types in
  { e_module = module_; e_mutable = mut; e_types = types }

(* Per-file half of env building, so the driver can harvest declarations
   from every file in parallel and fold the (order-independent) entries
   together in a sequential link phase. *)
let type_entries ~module_ (str : structure) : (string * type_entry) list =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, tds) ->
        List.map (fun td -> (module_ ^ "." ^ td.ptype_name.txt, decl_entry ~module_ td)) tds
      | _ -> [])
    str

let env_of_entries (entries : (string * type_entry) list list) : env =
  List.fold_left
    (fun env file_entries ->
      List.fold_left (fun env (k, e) -> Smap.add k e env) env file_entries)
    Smap.empty entries

let build_env (files : (string * structure) list) : env =
  env_of_entries
    (List.map (fun (module_, str) -> type_entries ~module_ str) files)

(* ------------------------------------------------------------------ *)
(* Mutability reachability (R2)                                        *)
(* ------------------------------------------------------------------ *)

(* Well-known mutable containers, recognised by the tail of the type path so
   both [Hashtbl.t] and [Mdcc_storage.Key.Tbl.t] are caught. *)
let mutable_builtin comps =
  match List.rev comps with
  | "ref" :: _ -> Some "ref cell"
  | "array" :: _ -> Some "array"
  | "bytes" :: _ -> Some "bytes"
  | "t" :: "Hashtbl" :: _ -> Some "Hashtbl.t"
  | "t" :: "Tbl" :: _ -> Some "hash table (Tbl.t)"
  | "t" :: "Buffer" :: _ -> Some "Buffer.t"
  | "t" :: "Bytes" :: _ -> Some "Bytes.t"
  | "t" :: "Queue" :: _ -> Some "Queue.t"
  | "t" :: "Stack" :: _ -> Some "Stack.t"
  | _ -> None

(* Returns a human-readable trail when [ct] can reach mutable state, [None]
   otherwise. Unresolvable constructors are assumed immutable: the pass is
   syntactic and has no cmi access, so it only follows declarations it saw. *)
let rec type_mutability (env : env) ~current_module visited (ct : core_type) : string option =
  let recurse = type_mutability env ~current_module visited in
  match ct.ptyp_desc with
  | Ptyp_constr (lid, args) -> (
    let comps = Longident.flatten lid.txt in
    match mutable_builtin comps with
    | Some why -> Some why
    | None -> (
      let n = List.length comps in
      let tname = List.nth comps (n - 1) in
      let owner = if n >= 2 then List.nth comps (n - 2) else current_module in
      let qname = owner ^ "." ^ tname in
      let via_decl =
        match Smap.find_opt qname env with
        | Some e when not (List.mem qname visited) -> (
          match e.e_mutable with
          | Some why -> Some (qname ^ ": " ^ why)
          | None ->
            List.find_map
              (type_mutability env ~current_module:e.e_module (qname :: visited))
              e.e_types
            |> Option.map (fun why -> qname ^ " -> " ^ why))
        | _ -> None
      in
      match via_decl with Some why -> Some why | None -> List.find_map recurse args))
  | Ptyp_tuple cts -> List.find_map recurse cts
  | Ptyp_alias (ct, _) | Ptyp_poly (_, ct) -> recurse ct
  | Ptyp_variant (rows, _, _) ->
    List.find_map
      (fun row ->
        match row.prf_desc with
        | Rtag (_, _, cts) -> List.find_map recurse cts
        | Rinherit ct -> recurse ct)
      rows
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                   *)
(* ------------------------------------------------------------------ *)

let hash_order_fns = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values"; "randomize" ]

let check (env : env) ~rel (str : structure) : Finding.t list =
  let rel = norm_rel rel in
  let module_ = module_name_of_rel rel in
  let out = ref [] in
  let add ~loc rule ident message =
    let p = loc.Location.loc_start in
    out :=
      {
        Finding.rule;
        file = rel;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        ident;
        message;
      }
      :: !out
  in

  (* R1 + R3: identifier uses. *)
  let check_ident ~loc comps =
    let rcomps = List.rev comps in
    let dotted = String.concat "." comps in
    let mods = match rcomps with _ :: mods -> mods | [] -> [] in
    if List.exists (String.equal "Random") mods then
      add ~loc "R1-random" dotted "nondeterministic PRNG; use the seeded Mdcc_util.Rng";
    (match rcomps with
    | "time" :: "Sys" :: _ | "time" :: "Unix" :: _ | "gettimeofday" :: "Unix" :: _ ->
      add ~loc "R1-wallclock" dotted
        "wall-clock read; use Mdcc_sim.Engine.now (profiler code: Mdcc_obs.Clock)"
    | fn :: "Hashtbl" :: _ when List.mem fn hash_order_fns ->
      add ~loc "R1-hash-iter" dotted
        "hash-order iteration; use Mdcc_util.Table.sorted_* (or Key.Tbl.sorted_*)"
    | fn :: "Tbl" :: _ when List.mem fn hash_order_fns ->
      add ~loc "R1-hash-iter" dotted "hash-order iteration; use the sorted_* helpers"
    | _ -> ());
    if in_r3_scope rel then
      match rcomps with
      | [ "failwith" ] | "failwith" :: "Stdlib" :: _ ->
        add ~loc "R3-failwith" dotted
          "anonymous failure in a protocol path; use Mdcc_util.Invariant.violate"
      | [ "invalid_arg" ] | "invalid_arg" :: "Stdlib" :: _ ->
        add ~loc "R3-invalid-arg" dotted
          "anonymous failure in a protocol path; use Mdcc_util.Invariant.violate"
      | "get" :: "Option" :: _ ->
        add ~loc "R3-option-get" dotted
          "partial Option.get; match explicitly and Invariant.violate on the impossible arm"
      | "hd" :: "List" :: _ ->
        add ~loc "R3-list-hd" dotted
          "partial List.hd; match explicitly and Invariant.violate on the impossible arm"
      | _ -> ()
  in

  (* R2-send: mutable values constructed directly at a network send site. *)
  let is_send_fn comps =
    match List.rev comps with
    | ("send" | "broadcast") :: owner :: _ ->
      String.equal owner "Net" || String.equal owner "Network"
      || String.equal owner "Runtime"
    | _ -> false
  in
  let rec mutable_literal e =
    match e.pexp_desc with
    | Pexp_array _ -> Some (e.pexp_loc, "array literal")
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let comps = Longident.flatten txt in
      match List.rev comps with
      | "ref" :: _ -> Some (e.pexp_loc, "ref cell")
      | "create" :: ("Hashtbl" | "Buffer" | "Queue" | "Stack") :: _
      | ("of_string" | "create" | "make") :: "Bytes" :: _ ->
        Some (e.pexp_loc, String.concat "." comps)
      | _ -> List.find_map (fun (_, a) -> mutable_literal a) args)
    | Pexp_tuple es -> List.find_map mutable_literal es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> mutable_literal e
    | Pexp_record (fields, base) -> (
      match List.find_map (fun (_, fe) -> mutable_literal fe) fields with
      | Some hit -> Some hit
      | None -> Option.bind base mutable_literal)
    | _ -> None
  in

  (* R2-payload: mutable state reachable from an extension of [payload]. *)
  let check_payload_extension (te : type_extension) =
    let path = Longident.flatten te.ptyext_path.txt in
    let is_payload =
      match List.rev path with "payload" :: _ -> true | _ -> false
    in
    if is_payload then
      List.iter
        (fun ec ->
          match ec.pext_kind with
          | Pext_decl (_, args, _) ->
            let types =
              match args with
              | Pcstr_tuple cts -> cts
              | Pcstr_record lds ->
                List.iter
                  (fun ld ->
                    if ld.pld_mutable = Asttypes.Mutable then
                      add ~loc:ld.pld_loc "R2-payload" ec.pext_name.txt
                        ("payload constructor has mutable field " ^ ld.pld_name.txt
                       ^ "; receivers would alias sender state across data centers"))
                  lds;
                List.map (fun ld -> ld.pld_type) lds
            in
            List.iter
              (fun ct ->
                match type_mutability env ~current_module:module_ [] ct with
                | Some trail ->
                  add ~loc:ec.pext_loc "R2-payload" ec.pext_name.txt
                    ("payload constructor carries mutable state: " ^ trail
                   ^ "; messages must be deep-immutable")
                | None -> ())
              types
          | Pext_rebind _ -> ())
        te.ptyext_constructors
  in

  (* R4-ambient: mutable values bound at module top level.  A top-level ref
     or table is process-global: worker domains spawned by Mdcc_util.Pool
     share it, racing and breaking same-seed determinism.  The walk stops at
     function and lazy boundaries — [let f () = ref 0] allocates per call,
     and a [Domain.DLS.new_key (fun () -> ...)] default allocates per
     domain, so both are fine. *)
  let rec r4_mutable e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> None
    | Pexp_newtype (_, body) -> r4_mutable body
    | Pexp_array _ -> Some (e.pexp_loc, "array literal")
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let comps = Longident.flatten txt in
      match List.rev comps with
      | "ref" :: _ -> Some (e.pexp_loc, "ref")
      | "create" :: ("Hashtbl" | "Buffer" | "Queue" | "Stack" | "Tbl") :: _
      | ("make" | "init") :: "Array" :: _
      | ("create" | "make" | "of_string") :: "Bytes" :: _
      | "make" :: "Atomic" :: _ ->
        Some (e.pexp_loc, String.concat "." comps)
      | _ -> List.find_map (fun (_, a) -> r4_mutable a) args)
    | Pexp_let (_, vbs, body) -> (
      match List.find_map (fun vb -> r4_mutable vb.pvb_expr) vbs with
      | Some hit -> Some hit
      | None -> r4_mutable body)
    | Pexp_sequence (a, b) -> (
      match r4_mutable a with Some hit -> Some hit | None -> r4_mutable b)
    | Pexp_ifthenelse (c, t, e_opt) -> (
      match r4_mutable c with
      | Some hit -> Some hit
      | None -> (
        match r4_mutable t with
        | Some hit -> Some hit
        | None -> Option.bind e_opt r4_mutable))
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) -> (
      match r4_mutable scrut with
      | Some hit -> Some hit
      | None -> List.find_map (fun c -> r4_mutable c.pc_rhs) cases)
    | Pexp_constraint (body, _) | Pexp_coerce (body, _, _) | Pexp_open (_, body) ->
      r4_mutable body
    | Pexp_tuple es -> List.find_map r4_mutable es
    | Pexp_construct (_, Some body) | Pexp_variant (_, Some body) -> r4_mutable body
    | Pexp_record (fields, base) -> (
      match List.find_map (fun (_, fe) -> r4_mutable fe) fields with
      | Some hit -> Some hit
      | None -> Option.bind base r4_mutable)
    | _ -> None
  in
  let r4_check_bindings vbs =
    List.iter
      (fun vb ->
        match r4_mutable vb.pvb_expr with
        | Some (loc, what) ->
          add ~loc "R4-ambient" what
            "top-level mutable state is shared across worker domains; allocate per call or \
             route it through Domain.DLS"
        | None -> ())
      vbs
  in
  let rec r4_structure items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> r4_check_bindings vbs
        | Pstr_module mb -> r4_module_expr mb.pmb_expr
        | Pstr_recmodule mbs -> List.iter (fun mb -> r4_module_expr mb.pmb_expr) mbs
        | _ -> ())
      items
  and r4_module_expr me =
    match me.pmod_desc with
    | Pmod_structure items -> r4_structure items
    | Pmod_constraint (inner, _) -> r4_module_expr inner
    | _ -> () (* functor bodies allocate per application *)
  in
  if in_r4_scope rel then r4_structure str;

  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ~loc (Longident.flatten txt)
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      when in_r3_scope rel ->
      add ~loc:e.pexp_loc "R3-assert-false" "assert false"
        "anonymous failure in a protocol path; use Mdcc_util.Invariant.violate"
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when is_send_fn (Longident.flatten txt) ->
      List.iter
        (fun (_, a) ->
          match mutable_literal a with
          | Some (loc, what) ->
            add ~loc "R2-send" what
              "mutable value constructed at a network send site; build an immutable payload"
          | None -> ())
        args
    | _ -> ());
    super.expr it e
  in
  let type_declaration it td =
    (if in_simtime_scope rel then
       match td.ptype_kind with
       | Ptype_record lds ->
         List.iter
           (fun ld ->
             if ends_with ~suffix:"_at" ld.pld_name.txt then
               match ld.pld_type.ptyp_desc with
               | Ptyp_constr ({ txt; _ }, []) when Longident.flatten txt = [ "float" ] ->
                 add ~loc:ld.pld_loc "R1-simtime" ld.pld_name.txt
                   "timestamp field typed bare float; use Mdcc_sim.Engine.sim_time so wall-clock \
                    values cannot leak in"
               | _ -> ())
           lds
       | _ -> ());
    super.type_declaration it td
  in
  let type_extension it te =
    check_payload_extension te;
    super.type_extension it te
  in
  let it = { super with expr; type_declaration; type_extension } in
  it.structure it str;
  List.rev !out
