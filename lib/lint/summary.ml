(* The per-file summary store.

   Phase 1 of the driver runs [of_structure] on every file — in parallel
   when --jobs > 1 — harvesting everything the cross-file analyses need:
   type declarations (R2 reachability), payload constructor sets and
   dispatch sites (R7), and call-graph edges (R5 spawner propagation).
   [link] then folds the summaries sequentially, in sorted file order, into
   the one [linked] value phase 2 threads through every per-file check.
   Keeping the harvest separate from the check is what makes the parallel
   scan byte-identical to the sequential one: phase 1 is a pure function of
   one file, the link is a deterministic fold, and phase 2 is again a pure
   function of (file, linked). *)

type file = {
  f_module : string;
  f_types : (string * Rules.type_entry) list;
  f_exhaustive : Exhaustive.summary;
  f_escape : Escape.summary;
}

type linked = {
  l_env : Rules.env;
  l_families : Exhaustive.families;
  l_spawners : Escape.spawners;
}

let of_structure ~rel (str : Parsetree.structure) : file =
  let rel = Rules.norm_rel rel in
  let module_ = Rules.module_name_of_rel rel in
  {
    f_module = module_;
    f_types = Rules.type_entries ~module_ str;
    f_exhaustive = Exhaustive.summarize ~rel str;
    f_escape = Escape.edges ~rel str;
  }

let link (files : file list) : linked =
  {
    l_env = Rules.env_of_entries (List.map (fun f -> f.f_types) files);
    l_families = Exhaustive.link ~decls:(List.map (fun f -> f.f_exhaustive) files);
    l_spawners = Escape.link ~edges:(List.map (fun f -> f.f_escape) files);
  }
