(** R6 — runtime purity for the deterministic core.

    lib/core, lib/paxos, lib/protocols, lib/storage, and lib/wire may not
    touch the OS directly: no [Unix.*] ([R6-unix]), no effectful [Sys.*]
    ([R6-sys]; pure constants like [Sys.word_size] are exempt), no channel
    or console I/O ([R6-channel]: [open_in], [print_endline], [stdout],
    [In_channel.*], ...), no [Printf.printf]/[Format.eprintf]-style console
    formatting ([R6-print]; [sprintf]/[asprintf] and
    formatter-parameterised [fprintf] are pure and allowed), and no [exit]
    ([R6-exit]).  Every effect must flow through the [Mdcc_core.Runtime.t]
    record, which is what keeps the same state machines byte-identical
    under the simulator and the socket loop. *)

val check : rel:string -> Parsetree.structure -> Finding.t list
(** [R6-*] findings for one file, in source order; empty outside the five
    scoped directories. *)
