(** Explicit suppression list for lint findings.

    File format: one entry per line, [#] starts a comment.

    {v
    <rule-or-family> <path>[:<line>]
    R1              lib/util/table.ml      # whole family, whole file
    R1-hash-iter    lib/foo.ml:42          # one rule, one line
    *               lib/generated.ml       # everything in a file
    R1              lib/runtime_unix       # whole family, whole directory
    v}

    A path matches a finding when it names the finding's file exactly or is
    a directory prefix of it ("lib/foo" covers "lib/foo/bar.ml" but never
    the sibling "lib/foobar.ml").  A trailing ['/'] is accepted and
    ignored — "lib/runtime_unix" and "lib/runtime_unix/" are the same
    entry.  The allowance is always path-scoped, never global. *)

type entry = {
  a_rule : string;  (** rule id, family prefix, or ["*"] *)
  a_path : string;  (** normalised: norm_rel applied, trailing '/' stripped *)
  a_line : int option;
  a_raw : string;  (** the source line as written, for diagnostics *)
}

type t = entry list

val of_string : string -> t
(** Parse allowlist text. Raises [Failure] on a malformed line. *)

val load : string -> t
(** Read and parse an allowlist file. *)

val permits : t -> Finding.t -> bool
(** [permits t f] is true when some entry matches [f]'s rule (exactly, by
    family prefix, or ["*"]), file path, and — when the entry pins one —
    line number. *)

val unused : t -> Finding.t list -> entry list
(** Entries that permit none of the given findings (which should be the
    full pre-suppression finding list).  A non-empty result means the
    allowlist has gone stale: either the underlying violation was fixed or
    the path/rule no longer exists.  [lint_cli --check-allow] fails on
    these so suppressions cannot outlive what they suppress. *)

val entry_to_string : entry -> string
(** The entry as written in the file (comment stripped), for error
    messages. *)
