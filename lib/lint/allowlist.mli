(** Explicit suppression list for lint findings.

    File format: one entry per line, [#] starts a comment.

    {v
    <rule-or-family> <path>[:<line>]
    R1              lib/util/table.ml      # whole family, whole file
    R1-hash-iter    lib/foo.ml:42          # one rule, one line
    *               lib/generated.ml       # everything in a file
    R1              lib/runtime_unix/      # whole family, whole directory
    v}

    A path with a trailing ['/'] allows the rule for every file under that
    directory — and nowhere else: the allowance is path-scoped, never
    global, and the slash cannot match a sibling file sharing the name as
    a prefix. *)

type entry = { a_rule : string; a_path : string; a_line : int option }
type t = entry list

val of_string : string -> t
(** Parse allowlist text. Raises [Failure] on a malformed line. *)

val load : string -> t
(** Read and parse an allowlist file. *)

val permits : t -> Finding.t -> bool
(** [permits t f] is true when some entry matches [f]'s rule (exactly, by
    family prefix, or ["*"]), file path, and — when the entry pins one —
    line number. *)
