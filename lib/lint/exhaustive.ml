(* R7 — protocol exhaustiveness.

   [Network.payload] is an open extensible type, so OCaml cannot check a
   receiver's dispatch match for exhaustiveness: every [match payload with]
   needs a wildcard arm to absorb the *other* modules' constructors, and
   that same wildcard silently swallows any constructor of the receiver's
   own message family that was forgotten — exactly how a newly added
   message type gets dropped on the floor with no compiler diagnostic.

   R7 closes the gap in two halves:

   - per file, [summarize] extracts (a) the constructor set of every
     [type ... payload += ...] extension and (b) every match that names at
     least one payload constructor and ends in a wildcard arm, recording
     which constructors are named explicitly and whether the wildcard
     *delegates* (re-forwards the scrutinee, like Fabric's registration
     shims) or *drops* (returns without using the message);

   - at link time, [check] joins the two: a dropping wildcard in a match
     that names constructors of family F must be preceded by an explicit
     arm for {e every} constructor of F.  When all of F is named, the
     wildcard only ever sees foreign payloads and is legitimate.

   Scope: lib/core, lib/paxos, lib/protocols — the receivers whose silent
   drops would stall the commit protocol.  (lib/chaos matches payloads to
   target faults at specific message types; partial matching is its job.) *)

open Parsetree

let in_scope rel =
  List.exists
    (fun p -> Rules.starts_with ~prefix:p rel)
    [ "lib/core/"; "lib/paxos/"; "lib/protocols/" ]

type decl = { dc_module : string; dc_ctor : string }

type site = {
  st_module : string;  (* family owner the named constructors resolve to *)
  st_named : string list;  (* constructors matched explicitly, sorted, deduped *)
  st_line : int;  (* wildcard arm position *)
  st_col : int;
}

type summary = { sm_decls : decl list; sm_sites : site list }

(* Constructor names matched at the top level of one case pattern, as
   (owner module option, constructor) pairs; or-patterns contribute every
   branch. *)
let rec pattern_ctors p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> (
    match List.rev (Longident.flatten txt) with
    | ctor :: owner :: _ -> [ (Some owner, ctor) ]
    | [ ctor ] -> [ (None, ctor) ]
    | [] -> [])
  | Ppat_or (a, b) -> pattern_ctors a @ pattern_ctors b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) -> pattern_ctors p
  | _ -> []

let rec is_wildcard_pattern p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var { txt; _ } -> Some (Some txt)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
    is_wildcard_pattern p
  | _ -> None

(* Does [e] mention the identifier [name] (unqualified)?  Used to detect
   delegation: a wildcard arm that re-forwards the scrutinee is not a
   silent drop. *)
let mentions name e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } when String.equal x name -> found := true
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let summarize ~rel (str : structure) : summary =
  let rel = Rules.norm_rel rel in
  let module_ = Rules.module_name_of_rel rel in
  let decls = ref [] in
  let sites = ref [] in

  let collect_typext (te : type_extension) =
    let is_payload =
      match List.rev (Longident.flatten te.ptyext_path.txt) with
      | "payload" :: _ -> true
      | _ -> false
    in
    if is_payload then
      List.iter
        (fun ec ->
          match ec.pext_kind with
          | Pext_decl _ ->
            decls := { dc_module = module_; dc_ctor = ec.pext_name.txt } :: !decls
          | Pext_rebind _ -> ())
        te.ptyext_constructors
  in

  let collect_match scrut cases =
    (* Explicitly named constructors, grouped by resolved owner module. *)
    let named =
      List.concat_map
        (fun c ->
          List.map
            (fun (owner, ctor) -> (Option.value owner ~default:module_, ctor))
            (pattern_ctors c.pc_lhs))
        cases
    in
    (* The covering wildcard: an unguarded catch-all arm.  Guarded
       wildcards do not cover, so keep looking past them. *)
    let wild =
      List.find_map
        (fun c ->
          match is_wildcard_pattern c.pc_lhs with
          | Some binder when c.pc_guard = None -> Some (c, binder)
          | _ -> None)
        cases
    in
    match wild with
    | None -> ()
    | Some (c, binder) ->
      let delegates =
        (match binder with Some v -> mentions v c.pc_rhs | None -> false)
        ||
        match scrut with
        | Some { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ } ->
          mentions x c.pc_rhs
        | _ -> false
      in
      if not delegates then begin
        let p = c.pc_lhs.ppat_loc.Location.loc_start in
        (* One site per owner module named in the match; the link phase
           keeps only owners that actually declare a payload family. *)
        let owners =
          List.sort_uniq String.compare (List.map fst named)
        in
        List.iter
          (fun owner ->
            let ctors =
              List.filter_map
                (fun (o, c) -> if String.equal o owner then Some c else None)
                named
              |> List.sort_uniq String.compare
            in
            sites :=
              {
                st_module = owner;
                st_named = ctors;
                st_line = p.Lexing.pos_lnum;
                st_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
              }
              :: !sites)
          owners
      end
  in

  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_match (scrut, cases) -> collect_match (Some scrut) cases
    | Pexp_function cases -> collect_match None cases
    | _ -> ());
    super.expr it e
  in
  let type_extension it te =
    collect_typext te;
    super.type_extension it te
  in
  let it = { super with expr; type_extension } in
  it.structure it str;
  { sm_decls = List.rev !decls; sm_sites = List.rev !sites }

module Smap = Map.Make (String)

type families = string list Smap.t

let link ~(decls : summary list) : families =
  List.fold_left
    (fun fams sm ->
      List.fold_left
        (fun fams d ->
          let existing = Option.value (Smap.find_opt d.dc_module fams) ~default:[] in
          Smap.add d.dc_module (d.dc_ctor :: existing) fams)
        fams sm.sm_decls)
    Smap.empty decls
  |> Smap.map (List.sort_uniq String.compare)

let check (fams : families) ~rel (sm : summary) : Finding.t list =
  let rel = Rules.norm_rel rel in
  if not (in_scope rel) then []
  else
    List.filter_map
      (fun st ->
        match Smap.find_opt st.st_module fams with
        | None -> None  (* named constructors are not a payload family *)
        | Some family ->
          (* Only a match that names at least one constructor *of the
             family* is a payload dispatch; a match over some other type
             declared in the same module (e.g. [Messages.status]) is not. *)
          let names_family = List.exists (fun c -> List.mem c family) st.st_named in
          let missing =
            List.filter (fun c -> not (List.mem c st.st_named)) family
          in
          if (not names_family) || missing = [] then None
          else
            Some
              {
                Finding.rule = "R7-unhandled";
                file = rel;
                line = st.st_line;
                col = st.st_col;
                ident = st.st_module;
                message =
                  Printf.sprintf
                    "wildcard arm silently drops %d %s payload constructor(s): %s; name every \
                     constructor explicitly (an explicit ignore arm is fine) so new message \
                     types cannot vanish here"
                    (List.length missing) st.st_module
                    (String.concat ", " missing);
              })
      sm.sm_sites
    |> List.sort Finding.compare
