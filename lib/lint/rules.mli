(** The three mdcc_lint rule families, as a syntactic Parsetree pass.

    - R1 determinism: [R1-random] (any [Random.*]), [R1-wallclock]
      ([Sys.time], [Unix.gettimeofday], [Unix.time]), [R1-hash-iter]
      ([Hashtbl.iter]/[fold]/[to_seq*]/[randomize] and the same through any
      [*.Tbl] functor instance), [R1-simtime] (record fields named [*_at]
      typed bare [float] inside lib/core, lib/paxos, lib/chaos).
    - R2 cross-node aliasing: [R2-payload] (mutable state syntactically
      reachable from a [type payload += ...] constructor, through the type
      declarations collected from the scanned files), [R2-send] (mutable
      value constructed directly at a [Net.send]/[Net.broadcast] call).
    - R3 partiality (lib/core and lib/paxos only): [R3-failwith],
      [R3-invalid-arg], [R3-assert-false], [R3-option-get], [R3-list-hd].

    The pass is untyped: aliases, local opens, and shadowing can hide an
    identifier from it. It trades soundness for zero build-time cost and no
    cmi dependencies; the allowlist covers the deliberate escapes. *)

type env
(** Type declarations harvested from all scanned files, keyed by
    ["Module.typename"], used for R2 reachability. *)

type type_entry
(** One harvested type declaration (opaque; see {!type_entries}). *)

val type_entries :
  module_:string -> Parsetree.structure -> (string * type_entry) list
(** The per-file half of {!build_env}: harvest one file's top-level type
    declarations. Safe to run per-file in parallel; entries are
    order-independent until folded by {!env_of_entries}. *)

val env_of_entries : (string * type_entry) list list -> env
(** Fold per-file entry lists into one environment. Later files win on
    (unlikely) module-name collisions; feed files in sorted order for
    determinism. *)

val build_env : (string * Parsetree.structure) list -> env
(** [build_env [(module_name, ast); ...]] =
    [env_of_entries] over [type_entries] of each file. *)

val check : env -> rel:string -> Parsetree.structure -> Finding.t list
(** Run every rule over one file. [rel] is the repo-relative path; it
    selects the R3 / R1-simtime scopes and appears in findings. Findings
    are returned in source order. *)

val norm_rel : string -> string
(** Normalise a repo-relative path: strip a leading ["./"], forward
    slashes. *)

val starts_with : prefix:string -> string -> bool
(** Shared prefix test used by the scope predicates of every rule
    module (OCaml 5.1's [String.starts_with] rebuilt so the linter has no
    stdlib-version sensitivity). *)

val module_name_of_rel : string -> string
(** ["lib/core/messages.ml"] -> ["Messages"]. *)
