(** File discovery, parsing, and report assembly for mdcc_lint.

    The scan is a pipeline: a sequential parse (compiler-libs' lexer
    keeps global mutable state, so [Parse.implementation] is not
    domain-safe), a parallel per-file harvest ({!Summary.of_structure}),
    a sequential cross-file link ({!Summary.link} over sources in
    sorted-path order), and a parallel per-file check phase (R1–R7).
    Both parallel phases run over [Mdcc_util.Pool], whose task-order
    result merging — plus the final {!Finding.compare} sort — pins
    [?jobs:n] output byte-identical to [?jobs:1]. *)

exception Parse_error of { file : string; message : string }

type source = {
  src_rel : string;  (** repo-relative path, used for scoping and findings *)
  src_path : string;  (** path to read from disk (may differ in tests) *)
}

type report = {
  rp_scanned : int;  (** number of files parsed *)
  rp_findings : Finding.t list;  (** violations, sorted by [Finding.compare] *)
  rp_suppressed : Finding.t list;  (** violations matched by the allowlist *)
}

val collect : string list -> source list
(** Recursively gather every [.ml] under the given roots, children in byte
    order, skipping dot-entries and [_build]. The result is sorted by
    relative path, so the scan order — and hence the report — is
    deterministic. *)

val scan_sources : ?allow:Allowlist.t -> ?jobs:int -> source list -> report
(** Parse and check the given sources with [jobs] worker domains (default
    1, i.e. fully sequential). Raises {!Parse_error} if a file does not
    parse. Tests use this entry point with fixture files mapped to pretend
    repo paths. *)

val scan : ?allow:Allowlist.t -> ?jobs:int -> string list -> report
(** [scan roots] = [scan_sources (collect roots)]. *)

val report_to_json : report -> string
(** One-line JSON document; byte-identical across runs for identical
    inputs. *)

val report_to_sarif : report -> string
(** One-line SARIF 2.1.0 document (see {!Sarif.render}); byte-identical
    across runs and across [jobs] values. *)
