(** File discovery, parsing, and report assembly for mdcc_lint. *)

exception Parse_error of { file : string; message : string }

type source = {
  src_rel : string;  (** repo-relative path, used for scoping and findings *)
  src_path : string;  (** path to read from disk (may differ in tests) *)
}

type report = {
  rp_scanned : int;  (** number of files parsed *)
  rp_findings : Finding.t list;  (** violations, sorted by [Finding.compare] *)
  rp_suppressed : Finding.t list;  (** violations matched by the allowlist *)
}

val collect : string list -> source list
(** Recursively gather every [.ml] under the given roots, children in byte
    order, skipping dot-entries and [_build]. The result is sorted by
    relative path, so the scan order — and hence the report — is
    deterministic. *)

val scan_sources : ?allow:Allowlist.t -> source list -> report
(** Parse and check the given sources. Raises {!Parse_error} if a file does
    not parse. Tests use this entry point with fixture files mapped to
    pretend repo paths. *)

val scan : ?allow:Allowlist.t -> string list -> report
(** [scan roots] = [scan_sources (collect roots)]. *)

val report_to_json : report -> string
(** One-line JSON document; byte-identical across runs for identical
    inputs. *)
