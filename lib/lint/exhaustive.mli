(** R7 — protocol exhaustiveness for open [payload] dispatch matches.

    [Network.payload] is extensible, so receivers must carry a wildcard arm
    for foreign constructors — and that wildcard silently swallows any
    forgotten constructor of the receiver's {e own} family.  R7 extracts
    every [type ... payload += ...] constructor set and every dispatch
    match, then (cross-file) demands that a non-delegating wildcard be
    preceded by an explicit arm for every constructor of the family it
    dispatches on.  Scope: lib/core, lib/paxos, lib/protocols. *)

type summary
(** Per-file extract: payload constructor declarations + dispatch sites. *)

type families
(** Link result: family owner module -> sorted constructor set. *)

val summarize : rel:string -> Parsetree.structure -> summary

val link : decls:summary list -> families
(** Join every file's constructor declarations into family sets. *)

val check : families -> rel:string -> summary -> Finding.t list
(** [R7-unhandled] findings for this file's dispatch sites, sorted. *)
