(** One lint finding, with a stable total order so reports are
    deterministic byte-for-byte. *)

type t = {
  rule : string;  (** rule id, ["<family>-<check>"], e.g. ["R1-hash-iter"] *)
  file : string;  (** repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as compilers print *)
  ident : string;  (** the offending identifier / constructor *)
  message : string;
}

val family : string -> string
(** ["R1-hash-iter"] -> ["R1"]. *)

val compare : t -> t -> int
(** Order by (file, line, col, rule, ident). *)

val to_string : t -> string
(** [file:line:col: [rule] message (ident)] — the human-readable line. *)

val to_json : t -> string

val json_escape : string -> string
