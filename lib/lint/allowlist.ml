type entry = {
  a_rule : string;
  a_path : string;
  a_line : int option;
  a_raw : string;
}

type t = entry list

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_path tok =
  match String.rindex_opt tok ':' with
  | Some i -> (
    let path = String.sub tok 0 i in
    let tail = String.sub tok (i + 1) (String.length tok - i - 1) in
    match int_of_string_opt tail with
    | Some line -> (path, Some line)
    | None -> (tok, None))
  | None -> (tok, None)

(* Entries are stored with the path normalised the same way finding paths
   are (norm_rel) and with any trailing '/' stripped, so "lib/runtime_unix"
   and "lib/runtime_unix/" denote the same directory scope. *)
let norm_path path =
  let path = Rules.norm_rel path in
  let n = String.length path in
  if n > 1 && path.[n - 1] = '/' then String.sub path 0 (n - 1) else path

let of_string text =
  String.split_on_char '\n' text
  |> List.concat_map (fun line ->
         let body = String.trim (strip_comment line) in
         if String.equal body "" then []
         else
           match
             String.split_on_char ' ' body
             |> List.concat_map (String.split_on_char '\t')
             |> List.filter (fun t -> not (String.equal t ""))
           with
           | [ rule; path_tok ] ->
             let path, a_line = parse_path path_tok in
             [ { a_rule = rule; a_path = norm_path path; a_line; a_raw = body } ]
           | _ -> failwith (Printf.sprintf "malformed allowlist line: %S" body))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let rule_matches entry_rule finding_rule =
  String.equal entry_rule "*"
  || String.equal entry_rule finding_rule
  || String.equal entry_rule (Finding.family finding_rule)

(* An entry path matches a finding's file when it names that file exactly or
   is a proper directory prefix of it ("lib/foo" covers "lib/foo/bar.ml" but
   never the sibling "lib/foobar.ml" — the separator is part of the test).
   Directory-ness needs no trailing slash; normalisation stripped it. *)
let path_matches entry_path file =
  String.equal entry_path file
  || Rules.starts_with ~prefix:(entry_path ^ "/") file

let entry_permits (e : entry) (f : Finding.t) =
  rule_matches e.a_rule f.Finding.rule
  && path_matches e.a_path f.Finding.file
  && match e.a_line with None -> true | Some l -> l = f.Finding.line

let permits (t : t) (f : Finding.t) = List.exists (fun e -> entry_permits e f) t

let unused (t : t) (findings : Finding.t list) =
  List.filter (fun e -> not (List.exists (entry_permits e) findings)) t

let entry_to_string (e : entry) = e.a_raw
