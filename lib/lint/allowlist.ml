type entry = { a_rule : string; a_path : string; a_line : int option }
type t = entry list

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_path tok =
  match String.rindex_opt tok ':' with
  | Some i -> (
    let path = String.sub tok 0 i in
    let tail = String.sub tok (i + 1) (String.length tok - i - 1) in
    match int_of_string_opt tail with
    | Some line -> (path, Some line)
    | None -> (tok, None))
  | None -> (tok, None)

let of_string text =
  String.split_on_char '\n' text
  |> List.concat_map (fun line ->
         let line = String.trim (strip_comment line) in
         if String.equal line "" then []
         else
           match
             String.split_on_char ' ' line
             |> List.concat_map (String.split_on_char '\t')
             |> List.filter (fun t -> not (String.equal t ""))
           with
           | [ rule; path_tok ] ->
             let a_path, a_line = parse_path path_tok in
             [ { a_rule = rule; a_path; a_line } ]
           | _ -> failwith (Printf.sprintf "malformed allowlist line: %S" line))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let rule_matches entry_rule finding_rule =
  String.equal entry_rule "*"
  || String.equal entry_rule finding_rule
  || String.equal entry_rule (Finding.family finding_rule)

(* A path ending in '/' is a directory allowance: it matches every file
   under that directory (and only those — the trailing slash cannot match a
   sibling file sharing the prefix).  Anything else must match the finding's
   file exactly. *)
let path_matches entry_path file =
  let n = String.length entry_path in
  if n > 0 && entry_path.[n - 1] = '/' then
    String.length file > n && String.equal (String.sub file 0 n) entry_path
  else String.equal entry_path file

let permits (t : t) (f : Finding.t) =
  List.exists
    (fun e ->
      rule_matches e.a_rule f.Finding.rule
      && path_matches e.a_path f.Finding.file
      && match e.a_line with None -> true | Some l -> l = f.Finding.line)
    t
