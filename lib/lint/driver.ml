exception Parse_error of { file : string; message : string }

type source = { src_rel : string; src_path : string }

type report = {
  rp_scanned : int;
  rp_findings : Finding.t list;
  rp_suppressed : Finding.t list;
}

let parse_file ~rel ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf rel;
      try Parse.implementation lexbuf
      with exn -> raise (Parse_error { file = rel; message = Printexc.to_string exn }))

(* Deterministic recursive walk: children visited in byte order, hidden
   directories and build artefacts skipped. *)
let rec walk dir acc =
  let entries = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  List.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || String.equal name "_build" then acc
      else
        let full = Filename.concat dir name in
        if Sys.is_directory full then walk full acc
        else if Filename.check_suffix name ".ml" then
          { src_rel = Rules.norm_rel full; src_path = full } :: acc
        else acc)
    acc entries

let collect roots =
  List.fold_left (fun acc root -> walk root acc) [] roots
  |> List.sort (fun a b -> String.compare a.src_rel b.src_rel)

let scan_sources ?(allow = []) sources =
  let parsed =
    List.map (fun s -> (s, parse_file ~rel:s.src_rel ~path:s.src_path)) sources
  in
  let env =
    Rules.build_env
      (List.map (fun (s, str) -> (Rules.module_name_of_rel s.src_rel, str)) parsed)
  in
  let all =
    List.concat_map (fun (s, str) -> Rules.check env ~rel:s.src_rel str) parsed
    |> List.sort Finding.compare
  in
  let rp_suppressed, rp_findings = List.partition (Allowlist.permits allow) all in
  { rp_scanned = List.length sources; rp_findings; rp_suppressed }

let scan ?allow roots = scan_sources ?allow (collect roots)

let report_to_json r =
  let arr fs = String.concat "," (List.map Finding.to_json fs) in
  Printf.sprintf "{\"version\":1,\"scanned\":%d,\"violations\":%d,\"findings\":[%s],\"allowlisted\":[%s]}"
    r.rp_scanned (List.length r.rp_findings) (arr r.rp_findings) (arr r.rp_suppressed)
