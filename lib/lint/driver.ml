exception Parse_error of { file : string; message : string }

type source = { src_rel : string; src_path : string }

type report = {
  rp_scanned : int;
  rp_findings : Finding.t list;
  rp_suppressed : Finding.t list;
}

let parse_file ~rel ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf rel;
      try Parse.implementation lexbuf
      with exn -> raise (Parse_error { file = rel; message = Printexc.to_string exn }))

(* Deterministic recursive walk: children visited in byte order, hidden
   directories and build artefacts skipped. *)
let rec walk dir acc =
  let entries = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  List.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || String.equal name "_build" then acc
      else
        let full = Filename.concat dir name in
        if Sys.is_directory full then walk full acc
        else if Filename.check_suffix name ".ml" then
          { src_rel = Rules.norm_rel full; src_path = full } :: acc
        else acc)
    acc entries

let collect roots =
  List.fold_left (fun acc root -> walk root acc) [] roots
  |> List.sort (fun a b -> String.compare a.src_rel b.src_rel)

(* Three-phase scan.

   Parse   (sequential): compiler-libs' lexer keeps global mutable state
                         (its string/comment buffers), so Parse.implementation
                         is not domain-safe and every file is parsed on the
                         caller's domain, in sorted order.
   Harvest (parallel)  : build each file's Summary.file from its AST — a
                         pure function of one structure.
   Link    (sequential): fold every summary, in the sorted source order
                         [collect] pinned, into one Summary.linked.
   Check   (parallel)  : run every per-file check against the linked
                         environment; again pure per file.

   Pool.map_list merges results in task order, so the concatenation below
   is the same list a sequential loop would build; the final sort then
   makes even that ordering irrelevant.  Together these pin --jobs N
   output byte-identical to --jobs 1. *)
let scan_sources ?(allow = []) ?(jobs = 1) sources =
  let parsed =
    List.map (fun s -> (s, parse_file ~rel:s.src_rel ~path:s.src_path)) sources
  in
  Mdcc_util.Pool.with_pool ~jobs (fun pool ->
      let harvested =
        Mdcc_util.Pool.map_list pool parsed ~f:(fun (s, str) ->
            (s, str, Summary.of_structure ~rel:s.src_rel str))
      in
      let linked = Summary.link (List.map (fun (_, _, sm) -> sm) harvested) in
      let all =
        Mdcc_util.Pool.map_list pool harvested ~f:(fun (s, str, sm) ->
            Rules.check linked.Summary.l_env ~rel:s.src_rel str
            @ Purity.check ~rel:s.src_rel str
            @ Escape.check linked.Summary.l_spawners ~rel:s.src_rel str
            @ Exhaustive.check linked.Summary.l_families ~rel:s.src_rel
                sm.Summary.f_exhaustive)
        |> List.concat
        |> List.sort Finding.compare
      in
      let rp_suppressed, rp_findings = List.partition (Allowlist.permits allow) all in
      { rp_scanned = List.length sources; rp_findings; rp_suppressed })

let scan ?allow ?jobs roots = scan_sources ?allow ?jobs (collect roots)

let report_to_json r =
  let arr fs = String.concat "," (List.map Finding.to_json fs) in
  Printf.sprintf "{\"version\":2,\"scanned\":%d,\"violations\":%d,\"findings\":[%s],\"allowlisted\":[%s]}"
    r.rp_scanned (List.length r.rp_findings) (arr r.rp_findings) (arr r.rp_suppressed)

let report_to_sarif r =
  Sarif.render ~findings:r.rp_findings ~suppressed:r.rp_suppressed
