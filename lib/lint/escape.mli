(** R5 — domain safety: a syntactic escape analysis flagging mutable state
    captured by closures that run on other domains ([Mdcc_util.Pool] tasks,
    [Domain.spawn] bodies, [Loop.post] thunks).

    Two rule ids: [R5-capture] (a local visibly bound to a mutable
    constructor is captured by a task closure) and [R5-mutate] (a task
    closure assigns through a captured variable).  [Atomic.make] values are
    exempt, closures touching [Mutex.*] are skipped as
    explicitly-synchronised, and anything bound inside the closure is
    task-local and never flagged.

    Spawner-ness is contagious along the call graph: {!edges} records, per
    file, which top-level functions forward a parameter into a spawner
    call, and {!link} closes the set over all files from the base spawners
    — so a wrapper like [Experiments.par_map] makes its own call sites
    spawn sites. *)

type summary
(** Per-file call-graph edges feeding the link fixpoint. *)

type spawners
(** Link result: the closed set of functions that run closures on other
    domains. *)

val edges : rel:string -> Parsetree.structure -> summary

val link : edges:summary list -> spawners

val check : spawners -> rel:string -> Parsetree.structure -> Finding.t list
(** [R5-*] findings for one file, sorted by {!Finding.compare}. *)
