(** Per-file analysis summaries and the cross-file link phase.

    Phase 1 (parallelisable): {!of_structure} harvests one file's type
    declarations (R2), payload constructor sets + dispatch sites (R7), and
    call-graph edges (R5).  Link (sequential): {!link} folds every file's
    summary, in sorted file order, into the {!linked} environment phase 2
    threads through the per-file checks.  Both halves are pure, which is
    what pins --jobs N output byte-identical to --jobs 1. *)

type file = {
  f_module : string;
  f_types : (string * Rules.type_entry) list;
  f_exhaustive : Exhaustive.summary;
  f_escape : Escape.summary;
}

type linked = {
  l_env : Rules.env;
  l_families : Exhaustive.families;
  l_spawners : Escape.spawners;
}

val of_structure : rel:string -> Parsetree.structure -> file

val link : file list -> linked
