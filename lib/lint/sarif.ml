(* SARIF 2.1.0 exporter.

   One run, one driver ("mdcc_lint"), one result per finding.  Suppressed
   (allowlisted) findings are emitted too, carrying a non-empty
   [suppressions] array — SARIF consumers (GitHub code scanning included)
   hide them but keep the escape surface auditable, mirroring what the
   in-house JSON report does with its "allowlisted" array.

   Rendering is by hand, like Finding.to_json: the rules array lists the
   rule ids that actually occur (sorted), results are sorted by
   Finding.compare, and nothing depends on ambient state — the document is
   byte-identical across runs and across --jobs values. *)

let esc = Finding.json_escape

(* Static metadata for the known rule ids; unknown ids fall back to their
   family so a new rule is never unrepresentable. *)
let rule_help rule =
  match rule with
  | "R1-random" -> "Nondeterministic PRNG; use the seeded Mdcc_util.Rng."
  | "R1-wallclock" -> "Wall-clock read; use the runtime clock (Engine.now / Runtime.now)."
  | "R1-hash-iter" -> "Hash-order iteration; use the sorted_* helpers."
  | "R1-simtime" -> "Timestamp field typed bare float; use Engine.sim_time."
  | "R2-payload" -> "Message payload can reach mutable state; payloads must be deep-immutable."
  | "R2-send" -> "Mutable value constructed at a network send site."
  | "R3-failwith" | "R3-invalid-arg" | "R3-assert-false" | "R3-option-get" | "R3-list-hd" ->
    "Anonymous partiality in a protocol path; use Mdcc_util.Invariant.violate."
  | "R4-ambient" -> "Top-level mutable state is shared across worker domains."
  | "R5-capture" -> "Task closure captures a mutable local; it races across domains."
  | "R5-mutate" -> "Task closure mutates a captured variable; it races across domains."
  | "R6-unix" | "R6-sys" | "R6-channel" | "R6-print" | "R6-exit" ->
    "Direct OS/channel effect in the deterministic core; route it through Runtime.t."
  | "R7-unhandled" ->
    "Payload dispatch wildcard silently drops constructors of its own message family."
  | r -> Printf.sprintf "mdcc_lint rule family %s." (Finding.family r)

let result_json ~rule_index ~suppressed (f : Finding.t) =
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"error\",\"message\":{\"text\":\"%s\"},\
     \"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\",\
     \"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]%s}"
    (esc f.Finding.rule) rule_index
    (esc (Printf.sprintf "%s (%s)" f.Finding.message f.Finding.ident))
    (esc f.Finding.file) f.Finding.line (f.Finding.col + 1)
    (if suppressed then ",\"suppressions\":[{\"kind\":\"external\"}]" else "")

let render ~findings ~suppressed =
  let tagged =
    List.map (fun f -> (f, false)) findings
    @ List.map (fun f -> (f, true)) suppressed
  in
  let tagged = List.sort (fun (a, _) (b, _) -> Finding.compare a b) tagged in
  let rule_ids =
    List.sort_uniq String.compare (List.map (fun (f, _) -> f.Finding.rule) tagged)
  in
  let index_of rule =
    let rec go i = function
      | [] -> 0
      | r :: _ when String.equal r rule -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 rule_ids
  in
  let rules =
    String.concat ","
      (List.map
         (fun id ->
           Printf.sprintf
             "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\
              \"defaultConfiguration\":{\"level\":\"error\"}}"
             (esc id) (esc (rule_help id)))
         rule_ids)
  in
  let results =
    String.concat ","
      (List.map
         (fun (f, supp) ->
           result_json ~rule_index:(index_of f.Finding.rule) ~suppressed:supp f)
         tagged)
  in
  Printf.sprintf
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"runs\":[{\"tool\":{\"driver\":{\"name\":\"mdcc_lint\",\"version\":\"2.0.0\",\
     \"informationUri\":\"https://github.com/mdcc/mdcc/blob/main/docs/LINT.md\",\
     \"rules\":[%s]}},\"columnKind\":\"utf16CodeUnits\",\
     \"originalUriBaseIds\":{\"SRCROOT\":{\"uri\":\"file:///./\"}},\"results\":[%s]}]}"
    rules results
