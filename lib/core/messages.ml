open Mdcc_storage
open Mdcc_paxos

(* A committed-state snapshot used by recovery and anti-entropy.  [included]
   lists every transaction whose effect is folded into [value]: the receiver
   marks them visible so a late Visibility delivery cannot re-apply them
   (commutative deltas carry no version guard, so state transfer without the
   txid watermark double-counts them). *)
type rebase = { value : Value.t; version : int; exists : bool; included : Txn.id list }

type vote = { woption : Woption.t; decision : Woption.decision; ballot : Ballot.t }

type status =
  | Status_unknown
  | Status_pending of vote
  | Status_decided of bool

type Mdcc_sim.Network.payload +=
  | Propose of { woption : Woption.t; route : [ `Fast | `Classic ] }
  | Phase1a of { key : Key.t; ballot : Ballot.t }
  | Phase1b of {
      key : Key.t;
      ballot : Ballot.t;
      ok : bool;
      promised : Ballot.t;
      votes : vote list;
      version : int;
      value : Value.t;
      exists : bool;
      included : Txn.id list;
      decided : (Txn.id * bool) list;
    }
  | Phase2a of {
      key : Key.t;
      ballot : Ballot.t;
      woption : Woption.t;
      decision : Woption.decision;
      classic_until : int;
      rebase : rebase option;
    }
  | Phase2b_master of {
      key : Key.t;
      txid : Txn.id;
      ballot : Ballot.t;
      ok : bool;
      decision : Woption.decision;
    }
  | Phase2b_fast of {
      key : Key.t;
      txid : Txn.id;
      decision : Woption.decision;
      acceptor : int;
    }
  | Learned of { key : Key.t; txid : Txn.id; decision : Woption.decision }
  | Redirect of { key : Key.t; txid : Txn.id; master : int; classic_until : int }
  | Visibility of { txid : Txn.id; key : Key.t; update : Update.t; committed : bool }
  | Start_recovery of { key : Key.t; woption : Woption.t option }
  | Status_query of { txid : Txn.id; key : Key.t }
  | Status_reply of { txid : Txn.id; key : Key.t; status : status; acceptor : int }
  | Catchup_request of { key : Key.t }
  | Catchup of { key : Key.t; rebase : rebase }
  | Read_request of { rid : int; key : Key.t }
  | Read_reply of { rid : int; key : Key.t; value : Value.t; version : int; exists : bool }
  | Batch of Mdcc_sim.Network.payload list
  | Sync_request of { entries : (Key.t * int) list }
  | Scan_request of { rid : int; table : string; order_by : string option; limit : int }
  | Scan_reply of { rid : int; rows : (Key.t * Value.t * int) list }

let decision_str = function Woption.Accepted -> "acc" | Woption.Rejected -> "rej"

let describe = function
  | Propose { woption; route } ->
    Printf.sprintf "propose(%s, %s, %s)"
      (match route with `Fast -> "fast" | `Classic -> "classic")
      woption.Woption.txid
      (Key.to_string woption.Woption.key)
  | Phase1a { key; ballot } ->
    Printf.sprintf "phase1a(%s, %s)" (Key.to_string key) (Format.asprintf "%a" Ballot.pp ballot)
  | Phase1b { key; ok; votes; _ } ->
    Printf.sprintf "phase1b(%s, ok=%b, votes=%d)" (Key.to_string key) ok (List.length votes)
  | Phase2a { key; woption; decision; _ } ->
    Printf.sprintf "phase2a(%s, %s, %s)" (Key.to_string key) woption.Woption.txid
      (decision_str decision)
  | Phase2b_master { key; txid; ok; decision; _ } ->
    Printf.sprintf "phase2b_m(%s, %s, ok=%b, %s)" (Key.to_string key) txid ok
      (decision_str decision)
  | Phase2b_fast { key; txid; decision; acceptor } ->
    Printf.sprintf "phase2b_f(%s, %s, %s, a%d)" (Key.to_string key) txid
      (decision_str decision) acceptor
  | Learned { key; txid; decision } ->
    Printf.sprintf "learned(%s, %s, %s)" (Key.to_string key) txid (decision_str decision)
  | Redirect { key; txid; master; classic_until } ->
    Printf.sprintf "redirect(%s, %s, m=%d, until=%d)" (Key.to_string key) txid master
      classic_until
  | Visibility { txid; key; committed; _ } ->
    Printf.sprintf "visibility(%s, %s, %b)" txid (Key.to_string key) committed
  | Start_recovery { key; woption } ->
    Printf.sprintf "start_recovery(%s, %s)" (Key.to_string key)
      (match woption with Some w -> w.Woption.txid | None -> "-")
  | Status_query { txid; key } -> Printf.sprintf "status?(%s, %s)" txid (Key.to_string key)
  | Status_reply { txid; key; acceptor; _ } ->
    Printf.sprintf "status!(%s, %s, a%d)" txid (Key.to_string key) acceptor
  | Catchup_request { key } -> Printf.sprintf "catchup?(%s)" (Key.to_string key)
  | Catchup { key; _ } -> Printf.sprintf "catchup!(%s)" (Key.to_string key)
  | Batch items -> Printf.sprintf "batch(%d)" (List.length items)
  | Sync_request { entries } -> Printf.sprintf "sync?(%d keys)" (List.length entries)
  | _ -> "<other>"
