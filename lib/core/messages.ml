open Mdcc_storage
open Mdcc_paxos

(* A committed-state snapshot used by recovery and anti-entropy.  [included]
   lists every transaction whose effect is folded into [value], with the
   update it contributed: the receiver marks them visible so a late
   Visibility delivery cannot re-apply them (commutative deltas carry no
   version guard, so state transfer without the txid watermark double-counts
   them), and keeps the updates so it can later offer them to a diverged
   peer in a [Sync_reply]. *)
type rebase = {
  value : Value.t;
  version : int;
  exists : bool;
  included : (Txn.id * Update.t) list;
}

type vote = { woption : Woption.t; decision : Woption.decision; ballot : Ballot.t }

type status =
  | Status_unknown
  | Status_pending of vote
  | Status_decided of bool

type Mdcc_sim.Network.payload +=
  | Propose of { woption : Woption.t; route : [ `Fast | `Classic ] }
  | Phase1a of { key : Key.t; ballot : Ballot.t }
  | Phase1b of {
      key : Key.t;
      ballot : Ballot.t;
      ok : bool;
      promised : Ballot.t;
      votes : vote list;
      version : int;
      value : Value.t;
      exists : bool;
      included : (Txn.id * Update.t) list;
      decided : (Txn.id * bool) list;
    }
  | Phase2a of {
      key : Key.t;
      ballot : Ballot.t;
      woption : Woption.t;
      decision : Woption.decision;
      classic_until : int;
      rebase : rebase option;
    }
  | Phase2b_master of {
      key : Key.t;
      txid : Txn.id;
      ballot : Ballot.t;
      ok : bool;
      decision : Woption.decision;
    }
  | Phase2b_fast of {
      key : Key.t;
      txid : Txn.id;
      decision : Woption.decision;
      acceptor : int;
    }
  | Learned of { key : Key.t; txid : Txn.id; decision : Woption.decision }
  | Redirect of { key : Key.t; txid : Txn.id; master : int; classic_until : int }
  | Visibility of { txid : Txn.id; key : Key.t; update : Update.t; committed : bool }
  | Start_recovery of { key : Key.t; woption : Woption.t option }
  | Status_query of { txid : Txn.id; key : Key.t }
  | Status_reply of { txid : Txn.id; key : Key.t; status : status; acceptor : int }
  | Catchup_request of { key : Key.t }
  | Catchup of { key : Key.t; rebase : rebase }
  | Read_request of { rid : int; key : Key.t }
  | Read_reply of { rid : int; key : Key.t; value : Value.t; version : int; exists : bool }
  | Batch of Mdcc_sim.Network.payload list
  | Sync_request of { entries : (Key.t * int * int) list }
  | Sync_reply of { key : Key.t; version : int; applied : (Txn.id * Update.t) list }
  | Scan_request of { rid : int; table : string; order_by : string option; limit : int }
  | Scan_reply of { rid : int; rows : (Key.t * Value.t * int) list }

let decision_str = function Woption.Accepted -> "acc" | Woption.Rejected -> "rej"

(* Order-independent digest of the transaction ids folded into a replica's
   committed value.  Two replicas at the same version whose digests differ
   have applied different delta sets — the equal-version divergence the
   ROADMAP calls out.  A handwritten fold over the sorted list rather than
   [Hashtbl.hash], which caps its traversal and would silently collide on
   long txid lists. *)
let applied_digest txids =
  let sorted = List.sort String.compare txids in
  List.fold_left
    (fun acc txid ->
      String.fold_left (fun a c -> (a * 131) + Char.code c) ((acc * 257) + 1) txid)
    0x811c9dc5 sorted
  land 0x3FFFFFFF

(* Estimated wire size (bytes) of a payload for the per-node traffic
   instruments.  Coarse by design: a fixed per-message header plus the
   variable-length parts that dominate real encodings (keys, values, vote
   and txid lists). *)
let header_bytes = 16

let key_bytes key = String.length (Key.to_string key)

let value_bytes value =
  List.fold_left
    (fun acc (name, _scalar) -> acc + String.length name + 8)
    0
    (Value.to_list value)

let update_bytes = function
  | Update.Insert value -> 1 + value_bytes value
  | Update.Physical { value; _ } -> 5 + value_bytes value
  | Update.Delete _ -> 5
  | Update.Delta deltas ->
    1 + List.fold_left (fun acc (attr, _) -> acc + String.length attr + 8) 0 deltas
  | Update.Read_guard _ -> 5

let woption_bytes (w : Woption.t) =
  String.length w.Woption.txid + key_bytes w.Woption.key
  + update_bytes w.Woption.update
  + List.fold_left (fun acc k -> acc + key_bytes k) 0 w.Woption.write_set
  + 4

let vote_bytes v = woption_bytes v.woption + 9

let applied_entry_bytes (txid, update) = String.length txid + update_bytes update

let rebase_bytes (r : rebase) =
  value_bytes r.value + 5
  + List.fold_left (fun acc e -> acc + applied_entry_bytes e) 0 r.included

let rec size_of payload =
  header_bytes
  +
  match payload with
  | Propose { woption; _ } -> woption_bytes woption + 1
  | Phase1a { key; _ } -> key_bytes key + 8
  | Phase1b { key; votes; value; included; decided; _ } ->
    key_bytes key + 17 + value_bytes value
    + List.fold_left (fun acc v -> acc + vote_bytes v) 0 votes
    + List.fold_left (fun acc e -> acc + applied_entry_bytes e) 0 included
    + List.fold_left (fun acc (txid, _) -> acc + String.length txid + 1) 0 decided
  | Phase2a { key; woption; rebase; _ } ->
    key_bytes key + 13 + woption_bytes woption
    + (match rebase with Some r -> rebase_bytes r | None -> 0)
  | Phase2b_master { key; txid; _ } -> key_bytes key + String.length txid + 10
  | Phase2b_fast { key; txid; _ } -> key_bytes key + String.length txid + 5
  | Learned { key; txid; _ } -> key_bytes key + String.length txid + 1
  | Redirect { key; txid; _ } -> key_bytes key + String.length txid + 8
  | Visibility { txid; key; update; _ } ->
    String.length txid + key_bytes key + update_bytes update + 1
  | Start_recovery { key; woption } ->
    key_bytes key + (match woption with Some w -> woption_bytes w | None -> 0)
  | Status_query { txid; key } -> String.length txid + key_bytes key
  | Status_reply { txid; key; status; _ } ->
    String.length txid + key_bytes key + 4
    + (match status with Status_pending v -> vote_bytes v | _ -> 1)
  | Catchup_request { key } -> key_bytes key
  | Catchup { key; rebase } -> key_bytes key + rebase_bytes rebase
  | Read_request { key; _ } -> key_bytes key + 4
  | Read_reply { key; value; _ } -> key_bytes key + value_bytes value + 9
  | Batch items ->
    (* Batched messages share one header; count the parts in full. *)
    List.fold_left (fun acc item -> acc + size_of item) 0 items
  | Sync_request { entries } ->
    List.fold_left (fun acc (key, _, _) -> acc + key_bytes key + 8) 0 entries
  | Sync_reply { key; applied; _ } ->
    key_bytes key + 4
    + List.fold_left (fun acc e -> acc + applied_entry_bytes e) 0 applied
  | Scan_request { table; order_by; _ } ->
    String.length table + 8
    + (match order_by with Some a -> String.length a | None -> 0)
  | Scan_reply { rows; _ } ->
    4
    + List.fold_left
        (fun acc (key, value, _) -> acc + key_bytes key + value_bytes value + 4)
        0 rows
  | _ -> 0

let describe = function
  | Propose { woption; route } ->
    Printf.sprintf "propose(%s, %s, %s)"
      (match route with `Fast -> "fast" | `Classic -> "classic")
      woption.Woption.txid
      (Key.to_string woption.Woption.key)
  | Phase1a { key; ballot } ->
    Printf.sprintf "phase1a(%s, %s)" (Key.to_string key) (Format.asprintf "%a" Ballot.pp ballot)
  | Phase1b { key; ok; votes; _ } ->
    Printf.sprintf "phase1b(%s, ok=%b, votes=%d)" (Key.to_string key) ok (List.length votes)
  | Phase2a { key; woption; decision; _ } ->
    Printf.sprintf "phase2a(%s, %s, %s)" (Key.to_string key) woption.Woption.txid
      (decision_str decision)
  | Phase2b_master { key; txid; ok; decision; _ } ->
    Printf.sprintf "phase2b_m(%s, %s, ok=%b, %s)" (Key.to_string key) txid ok
      (decision_str decision)
  | Phase2b_fast { key; txid; decision; acceptor } ->
    Printf.sprintf "phase2b_f(%s, %s, %s, a%d)" (Key.to_string key) txid
      (decision_str decision) acceptor
  | Learned { key; txid; decision } ->
    Printf.sprintf "learned(%s, %s, %s)" (Key.to_string key) txid (decision_str decision)
  | Redirect { key; txid; master; classic_until } ->
    Printf.sprintf "redirect(%s, %s, m=%d, until=%d)" (Key.to_string key) txid master
      classic_until
  | Visibility { txid; key; committed; _ } ->
    Printf.sprintf "visibility(%s, %s, %b)" txid (Key.to_string key) committed
  | Start_recovery { key; woption } ->
    Printf.sprintf "start_recovery(%s, %s)" (Key.to_string key)
      (match woption with Some w -> w.Woption.txid | None -> "-")
  | Status_query { txid; key } -> Printf.sprintf "status?(%s, %s)" txid (Key.to_string key)
  | Status_reply { txid; key; acceptor; _ } ->
    Printf.sprintf "status!(%s, %s, a%d)" txid (Key.to_string key) acceptor
  | Catchup_request { key } -> Printf.sprintf "catchup?(%s)" (Key.to_string key)
  | Catchup { key; _ } -> Printf.sprintf "catchup!(%s)" (Key.to_string key)
  | Batch items -> Printf.sprintf "batch(%d)" (List.length items)
  | Sync_request { entries } -> Printf.sprintf "sync?(%d keys)" (List.length entries)
  | Sync_reply { key; version; applied } ->
    Printf.sprintf "sync!(%s, v%d, %d applied)" (Key.to_string key) version
      (List.length applied)
  | Read_request { rid; key } -> Printf.sprintf "read?(%d, %s)" rid (Key.to_string key)
  | Read_reply { rid; key; version; exists; _ } ->
    Printf.sprintf "read!(%d, %s, v%d, %b)" rid (Key.to_string key) version exists
  | Scan_request { rid; table; limit; _ } ->
    Printf.sprintf "scan?(%d, %s, limit=%d)" rid table limit
  | Scan_reply { rid; rows } -> Printf.sprintf "scan!(%d, %d rows)" rid (List.length rows)
  | _ -> "<other>"
