(** A storage node: Paxos acceptor, per-record master, and recovery agent.

    The paper maps Paxos roles onto the architecture as: clients are
    app-servers, proposers are masters, acceptors are storage nodes, and all
    nodes are learners (§3.1.1), with masters placed on storage nodes.  One
    [Storage_node.t] therefore plays three roles:

    {ol
    {- {b Acceptor} — votes on fast proposals (SetCompatible: version
       validation, one-outstanding-option, quorum demarcation), answers
       Phase1a/Phase2a, executes options on Visibility, and redirects fast
       proposers to the master while a record is inside its classic (γ)
       window;}
    {- {b Master} — for records whose mastership maps here: the stable
       classic path (Multi-Paxos, Phase 1 skipped) serializing physical
       options and pipelining commutative ones with escrow validation, and
       {e collision recovery}: Phase1a to all replicas, computing the safe
       decision for every pending option from the Fast Paxos intersection
       rule, re-proposing via classic Phase2a with a re-base of straggler
       replicas, and imposing [classic_until = version + γ];}
    {- {b Recovery agent} — a periodic scan detects pending options older
       than the transaction timeout (a dangling transaction whose app-server
       died, §3.2.3), reconstructs the write-set from the option itself,
       quorum-reads every key's status, forces undecided instances through
       the master, and issues the final Visibility on the dead coordinator's
       behalf.}} *)

open Mdcc_storage

type t

val create :
  runtime:Runtime.t ->
  config:Config.t ->
  node_id:int ->
  schema:Schema.t ->
  replicas:(Key.t -> int list) ->
  master_of:(Key.t -> int) ->
  ?ctx:Ctx.t ->
  unit ->
  t
(** Build the node and register its message handler on the runtime's
    transport — simulated network or real sockets, the state machine cannot
    tell ({!Runtime}).
    [replicas key] must list the full replica group of [key] (including this
    node when it replicates [key]); [master_of key] is the node currently
    responsible for classic ballots on [key].  [ctx] (default {!Ctx.default})
    bundles the cross-cutting dependencies: when its [history] is set, every
    option execution/void is recorded into it (chaos testing); its [obs]
    receives acceptor/master counters — option verdicts with reject reasons,
    Phase 1 rounds, recoveries, anti-entropy repairs and divergence — and
    vote/visibility/repair span events.  [ctx.local_nodes] is ignored here
    (it is a coordinator concern). *)

val node_id : t -> int

val store : t -> Store.t
(** The node's committed state (for local reads and test inspection). *)

val load : t -> (Key.t * Value.t) list -> unit
(** Bulk-load committed rows (version 1) — experiment setup, no protocol. *)

val pending_options : t -> int
(** Outstanding (undecided-visibility) options across all records. *)

val sync_with_masters : t -> unit
(** Anti-entropy sweep: probe the master of every key this node holds with
    the local (version, applied-set digest); newer committed state comes
    back via [Catchup], and equal-version digest mismatches trigger the
    [Sync_reply] applied-set exchange that replays missing committed deltas
    on both sides until the replicas hold the union.  The "background
    process" that brings a recovered data center up to date (§5.3.4). *)

val sync_with_peers : t -> unit
(** Like {!sync_with_masters}, but probe {e every} replica of every key this
    node holds.  A node restarting after a crash may be stale even on keys
    it masters (the other replicas kept committing while it was down), which
    the master-directed sweep cannot repair.  Part of the
    restart-with-recovery path ({!Cluster.restart_node}). *)

val start_maintenance : t -> unit
(** Arm the periodic dangling-transaction scan (call after setup; scans run
    every [config.dangling_scan_every] ms forever). *)
