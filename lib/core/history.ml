open Mdcc_storage

type event =
  | Submitted of { time : float; coordinator : int; txn : Txn.t }
  | Decided of { time : float; txid : Txn.id; outcome : Txn.outcome }
  | Applied of {
      time : float;
      node : int;
      txid : Txn.id;
      key : Key.t;
      version : int;
      value : Value.t;
    }
  | Voided of { time : float; node : int; txid : Txn.id; key : Key.t }
  | Fault of { time : float; label : string }

type t = { mutable rev : event list; mutable count : int }

let create () = { rev = []; count = 0 }

let record t ev =
  t.rev <- ev :: t.rev;
  t.count <- t.count + 1

let events t = List.rev t.rev

let length t = t.count

let clear t =
  t.rev <- [];
  t.count <- 0

let pp_event ppf = function
  | Submitted { time; coordinator; txn } ->
    Format.fprintf ppf "[%10.2f] submit  %s by app%d %a" time txn.Txn.id coordinator Txn.pp txn
  | Decided { time; txid; outcome } ->
    Format.fprintf ppf "[%10.2f] decide  %s -> %a" time txid Txn.pp_outcome outcome
  | Applied { time; node; txid; key; version; value } ->
    Format.fprintf ppf "[%10.2f] apply   %s %s@%d = %a (node%d)" time txid (Key.to_string key)
      version Value.pp value node
  | Voided { time; node; txid; key } ->
    Format.fprintf ppf "[%10.2f] void    %s %s (node%d)" time txid (Key.to_string key) node
  | Fault { time; label } -> Format.fprintf ppf "[%10.2f] FAULT   %s" time label
