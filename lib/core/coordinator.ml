open Mdcc_storage
open Mdcc_paxos
module Net = Mdcc_sim.Network
module Engine = Mdcc_sim.Engine
module Rng = Mdcc_util.Rng
module Table = Mdcc_util.Table
module Invariant = Mdcc_util.Invariant
module Obs = Mdcc_obs.Obs

type key_state = {
  woption : Woption.t;
  mutable votes : (int * Woption.decision) list;
  mutable learned : Woption.decision option;
  mutable collided : bool;  (** Start_recovery already sent for this window *)
  mutable collided_at : Engine.sim_time option;
      (** when the collision was detected, for resolution-latency metrics *)
  mutable redirected : bool;  (** already re-routed to the master *)
  mutable attempts : int;  (** timeout-driven recovery attempts *)
}

type txn_state = {
  txn : Txn.t;
  callback : Txn.outcome -> unit;
  mutable keys : key_state Key.Map.t;
  mutable undecided : int;
  mutable timeout : Runtime.timer option;
}

type stats = {
  mutable fast_commits : int;
  mutable assisted_commits : int;
  mutable aborts : int;
  mutable collisions : int;
  mutable redirects : int;
  mutable timeout_recoveries : int;
}

type read_state = {
  r_key : Key.t;
  r_need : int;
  r_cb : (Value.t * int) option -> unit;
  mutable r_replies : (int * (Value.t * int * bool)) list;
  mutable r_done : bool;
}

type scan_state = {
  s_order_by : string option;
  s_limit : int;
  s_cb : (Key.t * Value.t * int) list -> unit;
  mutable s_missing : int;
  mutable s_rows : (Key.t * Value.t * int) list;
}

type snapshot_source = {
  snap_read : Key.t -> (Value.t * int) option;
  snap_scan : table:string -> (Key.t * Value.t * int) list;
}

type t = {
  runtime : Runtime.t;
  config : Config.t;
  id : int;
  dc : int;
  replicas : Key.t -> int list;
  master_of : Key.t -> int;
  local_nodes : int list;  (* storage nodes of this app-server's DC *)
  snapshot : snapshot_source option;  (* co-located stores, for `Snapshot reads *)
  txns : (Txn.id, txn_state) Hashtbl.t;
  hints : (Key.t, float) Hashtbl.t;  (** classic-routing hint -> expiry time *)
  reads : (int, read_state) Hashtbl.t;
  scans : (int, scan_state) Hashtbl.t;
  mutable next_rid : int;
  stats : stats;
  rng : Rng.t;
  history : History.t option;  (* chaos-testing execution recorder *)
  obs : Obs.t;
  trace_tag : string;  (* "app<id>", rendered once — not per trace point *)
}

let record t ev = match t.history with Some h -> History.record h ev | None -> ()

(* How long a collision keeps steering this coordinator to the master before
   it probes fast ballots again (client-side half of the γ policy). *)
let hint_ttl = 2000.0

let node_id t = t.id

let now t = Runtime.now t.runtime

let send t dst payload = Runtime.send t.runtime ~src:t.id ~dst payload

let trace t fmt = Runtime.trace t.runtime ~tag:t.trace_tag fmt

(* Guard for trace points whose arguments allocate (key renderings,
   pretty-printed outcomes): [trace] itself skips formatting when nobody
   listens, but argument evaluation happens at the call site. *)
let tracing t = Runtime.tracing t.runtime

let span t ~txid ~name ?key ~detail () =
  Obs.span_event t.obs ~txid ~at:(now t) ~node:t.id ~name ?key ~detail ()

let n t = t.config.Config.replication

let hint_active t key =
  match Hashtbl.find_opt t.hints key with
  | Some expiry when now t < expiry -> true
  | Some _ ->
    Hashtbl.remove t.hints key;
    false
  | None -> false

let set_hint t key = Hashtbl.replace t.hints key (now t +. hint_ttl)

let route_classic t key = t.config.Config.mode = Config.Multi || hint_active t key

(* Send per-destination, folding into Batch messages when configured.
   [send_all] sits on the propose/learn hot path, so the common shapes —
   batching off, an empty or singleton list, or every payload bound for
   one destination — skip the per-call Hashtbl and sorted iteration. *)
let send_all t pairs =
  if not t.config.Config.batching then List.iter (fun (dst, p) -> send t dst p) pairs
  else begin
    match pairs with
    | [] -> ()
    | [ (dst, p) ] -> send t dst p
    | (dst0, p0) :: rest when List.for_all (fun (dst, _) -> dst = dst0) rest ->
      send t dst0 (Messages.Batch (p0 :: List.map snd rest))
    | pairs ->
      let by_dst = Hashtbl.create 8 in
      List.iter
        (fun (dst, p) ->
          let existing = Option.value (Hashtbl.find_opt by_dst dst) ~default:[] in
          Hashtbl.replace by_dst dst (p :: existing))
        pairs;
      Table.sorted_iter ~compare:Int.compare
        (fun dst ps ->
          match ps with
          | [ p ] -> send t dst p
          | ps -> send t dst (Messages.Batch (List.rev ps)))
        by_dst
  end

let propose_payloads t (ks : key_state) =
  let w = ks.woption in
  let key_str = Key.to_string w.Woption.key in
  if route_classic t w.Woption.key then begin
    ks.redirected <- true;
    span t ~txid:w.Woption.txid ~name:"propose" ~key:key_str ~detail:"classic" ();
    [ (t.master_of w.Woption.key, Messages.Propose { woption = w; route = `Classic }) ]
  end
  else begin
    span t ~txid:w.Woption.txid ~name:"propose" ~key:key_str ~detail:"fast" ();
    List.map
      (fun replica -> (replica, Messages.Propose { woption = w; route = `Fast }))
      (t.replicas w.Woption.key)
  end

let decide t (ts : txn_state) =
  (match ts.timeout with Some h -> Runtime.cancel_timer t.runtime h | None -> ());
  Hashtbl.remove t.txns ts.txn.Txn.id;
  let rejected =
    Key.Map.fold
      (fun _ ks acc ->
        match ks.learned with Some Woption.Rejected -> ks.woption :: acc | Some Woption.Accepted | None -> acc)
      ts.keys []
  in
  let committed = rejected = [] in
  let outcome =
    if committed then Txn.Committed
    else if List.for_all (fun w -> Woption.is_commutative w) rejected then
      Txn.Aborted Txn.Constraint_violation
    else Txn.Aborted Txn.Conflict
  in
  (match outcome with
  | Txn.Committed ->
    let pure_fast =
      Key.Map.for_all
        (fun _ ks -> not (ks.collided || ks.redirected || ks.attempts > 0))
        ts.keys
    in
    if pure_fast && t.config.Config.mode <> Config.Multi then begin
      t.stats.fast_commits <- t.stats.fast_commits + 1;
      Obs.incr t.obs "fast_commit"
    end
    else begin
      t.stats.assisted_commits <- t.stats.assisted_commits + 1;
      Obs.incr t.obs "assisted_commit"
    end
  | Txn.Aborted Txn.Constraint_violation ->
    t.stats.aborts <- t.stats.aborts + 1;
    Obs.incr t.obs "abort_constraint"
  | Txn.Aborted _ ->
    t.stats.aborts <- t.stats.aborts + 1;
    Obs.incr t.obs "abort_conflict");
  let outcome_str = Format.asprintf "%a" Txn.pp_outcome outcome in
  span t ~txid:ts.txn.Txn.id ~name:"decide" ~detail:outcome_str ();
  trace t "decide %s %s" ts.txn.Txn.id outcome_str;
  record t (History.Decided { time = now t; txid = ts.txn.Txn.id; outcome });
  (* Asynchronous Learned/Visibility notification: execute or void every
     option; correctness does not depend on its timing (§3.2.1). *)
  let pairs =
    Key.Map.fold
      (fun key ks acc ->
        List.fold_left
          (fun acc replica ->
            ( replica,
              Messages.Visibility
                { txid = ts.txn.Txn.id; key; update = ks.woption.Woption.update; committed } )
            :: acc)
          acc (t.replicas key))
      ts.keys []
  in
  send_all t pairs;
  ts.callback outcome

let learn t (ts : txn_state) (ks : key_state) decision =
  match ks.learned with
  | Some _ -> ()
  | None ->
    ks.learned <- Some decision;
    ts.undecided <- ts.undecided - 1;
    let key_str = Key.to_string ks.woption.Woption.key in
    span t ~txid:ts.txn.Txn.id ~name:"learn" ~key:key_str
      ~detail:(match decision with Woption.Accepted -> "accepted" | Woption.Rejected -> "rejected")
      ();
    (match ks.collided_at with
    | Some at ->
      (* The collision on this key has now been resolved (either way). *)
      ks.collided_at <- None;
      Obs.incr t.obs "collision_resolved";
      Obs.observe t.obs "collision_resolve_ms" (now t -. at);
      span t ~txid:ts.txn.Txn.id ~name:"collision_resolved" ~key:key_str ~detail:"" ()
    | None -> ());
    if ts.undecided = 0 then decide t ts

let start_recovery_for t (ks : key_state) =
  let w = ks.woption in
  let key = w.Woption.key in
  set_hint t key;
  (* Rotate through replicas on repeated attempts so a failed master does
     not block the transaction forever. *)
  let master = t.master_of key in
  let target =
    if ks.attempts = 0 then master
    else begin
      let others = List.filter (fun r -> r <> master) (t.replicas key) in
      let all = master :: others in
      List.nth all (ks.attempts mod List.length all)
    end
  in
  ks.attempts <- ks.attempts + 1;
  if tracing t then
    trace t "start_recovery %s %s via node %d" w.Woption.txid (Key.to_string key) target;
  span t ~txid:w.Woption.txid ~name:"start_recovery" ~key:(Key.to_string key)
    ~detail:(Printf.sprintf "via node %d" target)
    ();
  (* Timeout-driven recoveries run outside any delivery, so re-establish the
     causal context explicitly for the recovery cascade. *)
  Net.with_trace_context (Some w.Woption.txid) (fun () ->
      send t target (Messages.Start_recovery { key; woption = Some w }))

let on_vote t txid key acceptor decision =
  match Hashtbl.find_opt t.txns txid with
  | None -> ()
  | Some ts -> (
    match Key.Map.find_opt key ts.keys with
    | None -> ()
    | Some ks ->
      if ks.learned = None && not (List.mem_assoc acceptor ks.votes) then begin
        ks.votes <- (acceptor, decision) :: ks.votes;
        let acks =
          List.length (List.filter (fun (_, d) -> d = Woption.Accepted) ks.votes)
        in
        let rejects =
          List.length (List.filter (fun (_, d) -> d = Woption.Rejected) ks.votes)
        in
        let qf = Config.fast_quorum t.config in
        if acks >= qf then learn t ts ks Woption.Accepted
        else if rejects >= qf then learn t ts ks Woption.Rejected
        else if Quorum.fast_impossible ~n:(n t) ~acks ~rejects && not ks.collided then begin
          (* Fast Paxos collision: no outcome can reach a fast quorum. *)
          ks.collided <- true;
          ks.collided_at <- Some (now t);
          t.stats.collisions <- t.stats.collisions + 1;
          Obs.incr t.obs "collision";
          span t ~txid ~name:"collision" ~key:(Key.to_string key)
            ~detail:(Printf.sprintf "acks=%d rejects=%d" acks rejects)
            ();
          start_recovery_for t ks
        end
      end)

let on_learned t txid key decision =
  match Hashtbl.find_opt t.txns txid with
  | None -> ()
  | Some ts -> (
    match Key.Map.find_opt key ts.keys with
    | None -> ()
    | Some ks -> learn t ts ks decision)

let on_redirect t txid key master =
  match Hashtbl.find_opt t.txns txid with
  | None -> ()
  | Some ts -> (
    match Key.Map.find_opt key ts.keys with
    | None -> ()
    | Some ks ->
      set_hint t key;
      if ks.learned = None && not ks.redirected then begin
        ks.redirected <- true;
        t.stats.redirects <- t.stats.redirects + 1;
        Obs.incr t.obs "redirect";
        span t ~txid ~name:"redirect" ~key:(Key.to_string key)
          ~detail:(Printf.sprintf "to master %d" master)
          ();
        send t master (Messages.Propose { woption = ks.woption; route = `Classic })
      end)

let rec arm_timeout t (ts : txn_state) =
  let jitter = Rng.float t.rng 100.0 in
  ts.timeout <-
    Some
      (Runtime.set_timer t.runtime ~after:(t.config.Config.learn_timeout +. jitter) (fun () ->
           if Hashtbl.mem t.txns ts.txn.Txn.id then begin
             Key.Map.iter
               (fun _ ks ->
                 if ks.learned = None then begin
                   t.stats.timeout_recoveries <- t.stats.timeout_recoveries + 1;
                   Obs.incr t.obs "timeout_recovery";
                   start_recovery_for t ks
                 end)
               ts.keys;
             arm_timeout t ts
           end))

let submit t txn callback =
  if Txn.is_read_only txn then
    Runtime.spawn t.runtime (fun () -> callback Txn.Committed)
  else begin
    let options = Woption.of_txn txn ~coordinator:t.id in
    let keys =
      List.fold_left
        (fun m (w : Woption.t) ->
          Key.Map.add w.Woption.key
            { woption = w; votes = []; learned = None; collided = false;
              collided_at = None; redirected = false; attempts = 0 }
            m)
        Key.Map.empty options
    in
    let ts = { txn; callback; keys; undecided = Key.Map.cardinal keys; timeout = None } in
    Hashtbl.replace t.txns txn.Txn.id ts;
    record t (History.Submitted { time = now t; coordinator = t.id; txn });
    Obs.incr t.obs "txn_submitted";
    Obs.begin_txn t.obs ~txid:txn.Txn.id ~at:(now t);
    span t ~txid:txn.Txn.id ~name:"submit"
      ~detail:(Printf.sprintf "%d keys" (Key.Map.cardinal keys))
      ();
    (* Establish the causal trace context: every Propose (and every message
       it triggers in turn) is attributed to this transaction's span. *)
    Net.with_trace_context (Some txn.Txn.id) (fun () ->
        send_all t (Key.Map.fold (fun _ ks acc -> propose_payloads t ks @ acc) keys []));
    arm_timeout t ts
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let local_replica t key =
  match List.find_opt (fun r -> Runtime.dc_of t.runtime r = t.dc) (t.replicas key) with
  | Some r -> r
  | None -> (
    match t.replicas key with
    | r :: _ -> r
    | [] ->
      Invariant.violate ~node:t.id ~context:"Coordinator.local_replica"
        "key %s has no replicas" (Key.to_string key))

let new_read t key ~need cb =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  Hashtbl.replace t.reads rid { r_key = key; r_need = need; r_cb = cb; r_replies = []; r_done = false };
  rid

let read_local t key cb =
  Obs.incr t.obs "read_local";
  let rid = new_read t key ~need:1 cb in
  send t (local_replica t key) (Messages.Read_request { rid; key })

let read_majority t key cb =
  Obs.incr t.obs "read_majority";
  let rid = new_read t key ~need:(Config.classic_quorum t.config) cb in
  List.iter (fun r -> send t r (Messages.Read_request { rid; key })) (t.replicas key)

(* Snapshot reads: serve straight from the co-located partition stores,
   skipping the option machinery and the network entirely.  The callback is
   still deferred through the runtime so `Snapshot keeps the same
   callback-asynchrony contract as every other level.  An app-server wired
   without co-located stores (no [snapshot] source) degrades to [`Local]. *)
let read_snapshot t key cb =
  match t.snapshot with
  | Some s ->
    Obs.incr t.obs "snapshot_fast_path";
    Runtime.spawn t.runtime (fun () -> cb (s.snap_read key))
  | None ->
    Obs.incr t.obs "snapshot_fallback";
    read_local t key cb

let read ?(level = `Local) t key cb =
  match level with
  | `Local -> read_local t key cb
  | `Majority -> read_majority t key cb
  | `Snapshot -> read_snapshot t key cb

let on_read_reply t rid acceptor value version exists =
  match Hashtbl.find_opt t.reads rid with
  | None -> ()
  | Some rs ->
    if (not rs.r_done) && not (List.mem_assoc acceptor rs.r_replies) then begin
      rs.r_replies <- (acceptor, (value, version, exists)) :: rs.r_replies;
      if List.length rs.r_replies >= rs.r_need then begin
        rs.r_done <- true;
        Hashtbl.remove t.reads rid;
        let freshest =
          List.fold_left
            (fun best (_, (v, ver, ex)) ->
              match best with
              | Some (_, bver, _) when bver >= ver -> best
              | Some _ | None -> Some (v, ver, ex))
            None rs.r_replies
        in
        match freshest with
        | Some (v, ver, true) -> rs.r_cb (Some (v, ver))
        | Some (_, _, false) | None -> rs.r_cb None
      end
    end

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let order_rows ?order_by ~limit rows =
  let merged =
    match order_by with
    | None -> rows
    | Some attr ->
      List.sort
        (fun (_, v1, _) (_, v2, _) -> Int.compare (Value.get_int v2 attr) (Value.get_int v1 attr))
        rows
  in
  take limit merged

let scan_local t ~table ?order_by ~limit cb =
  match t.local_nodes with
  | [] -> cb []
  | nodes ->
    let rid = t.next_rid in
    t.next_rid <- t.next_rid + 1;
    Hashtbl.replace t.scans rid
      { s_order_by = order_by; s_limit = limit; s_cb = cb; s_missing = List.length nodes;
        s_rows = [] };
    List.iter
      (fun node -> send t node (Messages.Scan_request { rid; table; order_by; limit }))
      nodes

let on_scan_reply t rid rows =
  match Hashtbl.find_opt t.scans rid with
  | None -> ()
  | Some ss ->
    ss.s_rows <- rows @ ss.s_rows;
    ss.s_missing <- ss.s_missing - 1;
    if ss.s_missing = 0 then begin
      Hashtbl.remove t.scans rid;
      ss.s_cb (order_rows ?order_by:ss.s_order_by ~limit:ss.s_limit ss.s_rows)
    end

let scan_snapshot t ~table ?order_by ~limit cb =
  match t.snapshot with
  | Some s ->
    Obs.incr t.obs "snapshot_fast_path";
    Runtime.spawn t.runtime (fun () ->
        cb (order_rows ?order_by ~limit (s.snap_scan ~table)))
  | None ->
    Obs.incr t.obs "snapshot_fallback";
    scan_local t ~table ?order_by ~limit cb

let scan ?(level = `Local) t ~table ?order_by ~limit cb =
  match level with
  | `Local -> scan_local t ~table ?order_by ~limit cb
  | `Snapshot -> scan_snapshot t ~table ?order_by ~limit cb
  | `Majority ->
    (* Discover candidate rows with a local scan, then upgrade each one to a
       majority read so the result reflects the freshest committed state a
       quorum knows.  Rows that turn out deleted at the majority drop out
       (the result can be shorter than [limit]). *)
    scan_local t ~table ?order_by ~limit (fun rows ->
        if rows = [] then cb []
        else begin
          let results = Key.Tbl.create (List.length rows) in
          let remaining = ref (List.length rows) in
          let finish () =
            let upgraded =
              List.filter_map
                (fun (key, _, _) ->
                  match Key.Tbl.find_opt results key with
                  | Some (Some (v, ver)) -> Some (key, v, ver)
                  | Some None | None -> None)
                rows
            in
            cb (order_rows ?order_by ~limit upgraded)
          in
          List.iter
            (fun (key, _, _) ->
              read_majority t key (fun res ->
                  Key.Tbl.replace results key res;
                  decr remaining;
                  if !remaining = 0 then finish ()))
            rows
        end)

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

let rec handle t ~src payload =
  match payload with
  | Messages.Batch items -> List.iter (handle t ~src) items
  | Messages.Phase2b_fast { key; txid; decision; acceptor } -> on_vote t txid key acceptor decision
  | Messages.Learned { key; txid; decision } -> on_learned t txid key decision
  | Messages.Redirect { key; txid; master; classic_until = _ } -> on_redirect t txid key master
  | Messages.Read_reply { rid; key = _; value; version; exists } ->
    on_read_reply t rid src value version exists
  | Messages.Scan_reply { rid; rows } -> on_scan_reply t rid rows
  (* Acceptor- and storage-bound traffic; a coordinator is never their
     destination, so receiving one is a routing mistake we ignore. *)
  | Messages.Propose _ | Messages.Phase1a _ | Messages.Phase1b _ | Messages.Phase2a _
  | Messages.Phase2b_master _ | Messages.Visibility _ | Messages.Start_recovery _
  | Messages.Status_query _ | Messages.Status_reply _ | Messages.Catchup_request _
  | Messages.Catchup _ | Messages.Sync_request _ | Messages.Sync_reply _
  | Messages.Read_request _ | Messages.Scan_request _ -> ()
  | _ -> ()

let create ~runtime ~config ~node_id ~replicas ~master_of ?snapshot ?(ctx = Ctx.default ())
    () =
  let history = ctx.Ctx.history
  and obs = ctx.Ctx.obs
  and local_nodes = ctx.Ctx.local_nodes in
  let t =
    {
      runtime;
      config;
      id = node_id;
      dc = Runtime.dc_of runtime node_id;
      replicas;
      master_of;
      local_nodes;
      snapshot;
      txns = Hashtbl.create 256;
      hints = Hashtbl.create 256;
      reads = Hashtbl.create 64;
      scans = Hashtbl.create 16;
      next_rid = 0;
      stats =
        {
          fast_commits = 0;
          assisted_commits = 0;
          aborts = 0;
          collisions = 0;
          redirects = 0;
          timeout_recoveries = 0;
        };
      rng = Rng.split (Runtime.rng runtime);
      history;
      obs;
      trace_tag = Printf.sprintf "app%d" node_id;
    }
  in
  Runtime.register runtime node_id (fun ~src payload -> handle t ~src payload);
  t

let inflight t = Hashtbl.length t.txns

let stats t = t.stats

let obs t = t.obs
