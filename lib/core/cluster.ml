open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Net = Mdcc_sim.Network
module Topology = Mdcc_sim.Topology
module Invariant = Mdcc_util.Invariant
module Obs = Mdcc_obs.Obs

type t = {
  engine : Engine.t;
  net : Net.t;
  config : Config.t;
  topo : Topology.t;
  schema : Schema.t;
  partitions : int;
  app_per_dc : int;
  dcs : int;
  nodes : Storage_node.t array;  (* node id = dc * partitions + partition *)
  coords : Coordinator.t array;  (* app id = dcs*partitions + dc*app_per_dc + rank *)
  master_dc_of : Key.t -> int;
  obs : Obs.t;
}

let partition_of t key = Key.hash key mod t.partitions

let replicas_fn ~dcs ~partitions key =
  let p = Key.hash key mod partitions in
  List.init dcs (fun dc -> (dc * partitions) + p)

let default_master_dc ~dcs key =
  (* Decorrelated from the partition hash so masters spread evenly. *)
  Hashtbl.hash (Key.to_string key ^ "#master") mod dcs

module Spec = struct
  type t = {
    topology : Topology.t option;
    partitions : int;
    app_servers_per_dc : int;
    jitter_sigma : float;
    drop_probability : float;
    master_dc_of : (Key.t -> int) option;
  }

  let validate spec =
    if spec.partitions < 1 then
      Invariant.violate ~context:"Cluster.Spec" "partitions must be >= 1 (got %d)"
        spec.partitions;
    if spec.app_servers_per_dc < 1 then
      Invariant.violate ~context:"Cluster.Spec" "app_servers_per_dc must be >= 1 (got %d)"
        spec.app_servers_per_dc;
    if spec.drop_probability < 0.0 || spec.drop_probability > 1.0 then
      Invariant.violate ~context:"Cluster.Spec" "drop_probability must be in [0,1] (got %g)"
        spec.drop_probability;
    spec

  let make ?topology ?(partitions = 1) ?(app_servers_per_dc = 1) ?(jitter_sigma = 0.05)
      ?(drop_probability = 0.0) ?master_dc_of () =
    validate
      { topology; partitions; app_servers_per_dc; jitter_sigma; drop_probability;
        master_dc_of }

  let default = make ()

  let with_topology topo spec = validate { spec with topology = Some topo }
  let with_partitions partitions spec = validate { spec with partitions }

  let with_app_servers app_servers_per_dc spec =
    validate { spec with app_servers_per_dc }

  let with_jitter jitter_sigma spec = validate { spec with jitter_sigma }
  let with_drop_probability drop_probability spec = validate { spec with drop_probability }
  let with_master_dc_of f spec = { spec with master_dc_of = Some f }
  let partitions spec = spec.partitions
end

let create ~engine ~spec ?(ctx = Ctx.default ()) ~config ~schema () =
  let { Spec.topology; partitions; app_servers_per_dc; jitter_sigma; drop_probability;
        master_dc_of } =
    Spec.validate spec
  in
  let obs = ctx.Ctx.obs in
  let storage_topo =
    match topology with
    | Some topo -> topo
    | None -> Topology.ec2_five ~nodes_per_dc:partitions ()
  in
  let dcs = Topology.num_dcs storage_topo in
  if config.Config.replication <> dcs then
    Invariant.violate ~context:"Cluster.create"
      "config.replication (%d) must equal the number of data centers (%d)"
      config.Config.replication dcs;
  if Topology.num_nodes storage_topo <> dcs * partitions then
    Invariant.violate ~context:"Cluster.create"
      "topology must have exactly `partitions` (%d) nodes per DC" partitions;
  let topo = Topology.add_nodes storage_topo ~per_dc:app_servers_per_dc in
  let net = Net.create engine topo ~drop_probability ~jitter_sigma () in
  (* Per-node traffic instruments, charged at the network edge so every
     protocol message — including Batch folding — is counted once. *)
  Net.set_meter net
    {
      Net.m_size = Messages.size_of;
      m_on_send =
        (fun ~src ~dst:_ ~bytes ->
          Obs.incr obs (Printf.sprintf "net.sent.node%02d" src);
          Obs.incr obs ~by:bytes (Printf.sprintf "net.sent_bytes.node%02d" src));
      m_on_deliver =
        (fun ~src:_ ~dst ~bytes ->
          Obs.incr obs (Printf.sprintf "net.recv.node%02d" dst);
          Obs.incr obs ~by:bytes (Printf.sprintf "net.recv_bytes.node%02d" dst));
    };
  let master_dc_of =
    match master_dc_of with Some f -> f | None -> default_master_dc ~dcs
  in
  let replicas = replicas_fn ~dcs ~partitions in
  let master_of key =
    let p = Key.hash key mod partitions in
    (master_dc_of key * partitions) + p
  in
  let runtime = Runtime.of_network net in
  let nodes =
    Array.init (dcs * partitions) (fun node_id ->
        Storage_node.create ~runtime ~config ~node_id ~schema ~replicas ~master_of ~ctx ())
  in
  let base = dcs * partitions in
  (* Snapshot source of a data center: direct handles on its partition
     stores, for the coordinator's zero-message [`Snapshot] read level. *)
  let snapshot_for dc =
    {
      Coordinator.snap_read =
        (fun key ->
          let p = Key.hash key mod partitions in
          Store.read (Storage_node.store nodes.((dc * partitions) + p)) key);
      snap_scan =
        (fun ~table ->
          let rows = ref [] in
          for p = partitions - 1 downto 0 do
            Store.iter
              (Storage_node.store nodes.((dc * partitions) + p))
              (fun key row ->
                if row.Store.exists && String.equal key.Key.table table then
                  rows := (key, row.Store.value, row.Store.version) :: !rows)
          done;
          !rows);
    }
  in
  let coords =
    Array.init (dcs * app_servers_per_dc) (fun i ->
        let dc = i / app_servers_per_dc in
        let local_nodes = List.init partitions (fun p -> (dc * partitions) + p) in
        Coordinator.create ~runtime ~config ~node_id:(base + i) ~replicas ~master_of
          ~snapshot:(snapshot_for dc) ~ctx:(Ctx.with_local_nodes ctx local_nodes) ())
  in
  { engine; net; config; topo; schema; partitions; app_per_dc = app_servers_per_dc; dcs;
    nodes; coords; master_dc_of; obs }

let engine t = t.engine

let network t = t.net

let topology t = t.topo

let config t = t.config

let num_dcs t = t.dcs

let num_partitions t = t.partitions

let obs t = t.obs

let coordinator t ~dc ~rank =
  if dc < 0 || dc >= t.dcs || rank < 0 || rank >= t.app_per_dc then
    Invariant.violate ~context:"Cluster.coordinator" "dc %d / rank %d out of range" dc rank;
  t.coords.((dc * t.app_per_dc) + rank)

let coordinators t = Array.to_list t.coords

let storage_nodes t = Array.to_list t.nodes

let replicas t key = replicas_fn ~dcs:t.dcs ~partitions:t.partitions key

let master_node t key = (t.master_dc_of key * t.partitions) + partition_of t key

let load t rows =
  (* Group rows by partition and load each replica of that partition. *)
  List.iter
    (fun (key, value) ->
      List.iter (fun node -> Storage_node.load t.nodes.(node) [ (key, value) ]) (replicas t key))
    rows

let peek t ~dc key =
  let node = (dc * t.partitions) + partition_of t key in
  Store.read (Storage_node.store t.nodes.(node)) key

let start_maintenance t = Array.iter Storage_node.start_maintenance t.nodes

let fail_dc t dc = Net.fail_dc t.net dc

let recover_dc t dc = Net.recover_dc t.net dc

let sync_dc t dc =
  for p = 0 to t.partitions - 1 do
    Storage_node.sync_with_masters t.nodes.((dc * t.partitions) + p)
  done

let fail_node t node = Net.fail_node t.net node

let restart_node t node =
  Net.recover_node t.net node;
  (* A restarting storage node immediately runs the peer-directed
     anti-entropy sweep: its committed store survived the crash (durable
     storage), but it may have missed whole instances while down. *)
  if node < Array.length t.nodes then Storage_node.sync_with_peers t.nodes.(node)

let sync_all t = Array.iter Storage_node.sync_with_peers t.nodes
