(** Session read guarantees on top of read-committed (§4.2).

    Plain local reads may be stale (a replica can miss updates).  The paper
    sketches how to strengthen them: monotonic reads and read-your-writes
    can be guaranteed by making sure the local replica "participates in the
    quorum" — operationally, by falling back to an up-to-date (majority)
    read whenever the local replica is behind what the session has already
    observed.

    A session tracks, per key, the highest version it has read or written
    (its {e watermark}).  Both {!read} and {!scan} take the unified
    [?level] parameter:

    {ul
    {- [`Local] — raw read-committed read of the local replica, bypassing
       the watermark (what {!Coordinator.read} [`Local] does);}
    {- [`Session] — serve locally when the replica is at or above the
       watermark, silently upgrade to a majority read otherwise;}
    {- [`Majority] — always read a classic quorum;}
    {- [`Snapshot] — the zero-message point-in-time fast path
       ({!Coordinator.read} [`Snapshot]): serve the co-located partition
       store directly, bypassing watermarks {e and} the network.  No
       session guarantee — it is the explicit opt-out for read-only
       analytics.}}

    {b The default is [`Session]} — it is the level this module exists to
    provide, it is never weaker than what the caller already observed, and
    callers wanting the cheaper or stronger guarantee now say so explicitly
    instead of reaching for a different entry point.  {!submit} advances
    watermarks when a transaction commits, so subsequent [`Session] reads
    see the session's own writes. *)

open Mdcc_storage

type level = [ `Local | `Session | `Majority | `Snapshot ]
(** See the module description for the four guarantees. *)

type t

val create : Coordinator.t -> t
(** A fresh session bound to one app-server. *)

val read :
  ?level:level -> t -> Key.t -> ((Value.t * int) option -> unit) -> unit
(** Read one key at the given [level] (default [`Session]: monotonic,
    read-your-writes — never returns a version below the session's
    watermark for the key). *)

val scan :
  ?level:level ->
  t ->
  table:string ->
  ?order_by:string ->
  limit:int ->
  ((Key.t * Value.t * int) list -> unit) ->
  unit
(** Table scan at the given [level] (default [`Session]).  A [`Session]
    scan runs locally and upgrades only the rows the session knows to be
    stale (below-watermark version, or dirtied by the session's own delta
    write) to majority reads; [`Local] is the raw analytic scan that may
    miss the session's writes; [`Majority] upgrades every row; [`Snapshot]
    is the in-process merge of the co-located partition stores (zero
    messages, no watermark interaction).  Scanned versions feed the
    watermarks at [`Session] and [`Majority]. *)

val submit : t -> Txn.t -> (Txn.outcome -> unit) -> unit
(** {!Coordinator.submit}, additionally advancing the watermarks of the
    written keys when the transaction commits. *)

val watermark : t -> Key.t -> int
(** The session's current lower bound for the key's version (0 if never
    observed). *)
