(** The runtime a protocol component runs on.

    The MDCC state machines ({!Coordinator}, {!Storage_node}, and the
    {!Session} layer above them) never talk to a clock, a scheduler or a
    transport directly: they go through this interface.  Two
    implementations exist —

    {ul
    {- {!of_network}: the discrete-event simulator ([lib/sim]), where time
       is virtual, delivery order is deterministic and executions are
       replayable.  This is the {e verification} substrate: every chaos
       run, experiment and pinned test drives the state machines through
       it.}
    {- [Mdcc_runtime_unix]: real OS sockets, domains and a timer wheel —
       the {e deployment} substrate the wire front-end serves traffic
       from.}}

    The determinism contract (R1–R4, docs/LINT.md) is what makes this
    split safe: because the state machines contain no ambient time,
    randomness or I/O, the very same code is chaos-checked under the
    simulator and served under the socket runtime. *)

type timer
(** A cancellable pending timer (a protocol timeout). *)

type t

val make :
  now:(unit -> float) ->
  send:(src:int -> dst:int -> Mdcc_sim.Network.payload -> unit) ->
  register:(int -> (src:int -> Mdcc_sim.Network.payload -> unit) -> unit) ->
  set_timer:(after:float -> (unit -> unit) -> (unit -> unit)) ->
  spawn:((unit -> unit) -> unit) ->
  rng:Mdcc_util.Rng.t ->
  dc_of:(int -> int) ->
  trace:(tag:string -> string -> unit) ->
  tracing:(unit -> bool) ->
  unit ->
  t
(** Assemble a runtime from its primitives.  [set_timer ~after f] must run
    [f] once, [after] milliseconds from now, and return the cancel thunk;
    [spawn f] must run [f] asynchronously but promptly (the "later, not
    reentrantly" primitive used for completion callbacks); [rng] is the
    runtime's root RNG, split once per component at create time; [trace]
    receives the rendered line; [tracing] reports whether anybody is
    listening — {!val-trace} consults it {e before} formatting, so it must
    be cheap and must return [true] whenever [trace] would record. *)

val now : t -> float
(** The runtime's clock, in milliseconds.  Virtual under the simulator,
    monotonic-process time under the socket runtime — never the wall
    clock of rule R1. *)

val send : t -> src:int -> dst:int -> Mdcc_sim.Network.payload -> unit
(** Queue a message for asynchronous delivery to node [dst].  Delivery (if
    it happens at all — real networks drop) runs the destination's
    registered handler with the sender's causal trace context restored. *)

val register : t -> int -> (src:int -> Mdcc_sim.Network.payload -> unit) -> unit
(** Install the message handler of a node id.  Re-registering replaces the
    handler (a node restarting with fresh state). *)

val set_timer : t -> after:float -> (unit -> unit) -> timer
(** [set_timer t ~after f] runs [f] once, [after] milliseconds from now. *)

val cancel_timer : t -> timer -> unit
(** Cancel a pending timer; a no-op if it already fired or was cancelled. *)

val spawn : t -> (unit -> unit) -> unit
(** Run a thunk asynchronously, as soon as possible.  Used to keep
    user-facing callbacks off the caller's stack. *)

val rng : t -> Mdcc_util.Rng.t
(** The runtime's root RNG.  Components [Rng.split] it at set-up time so
    their streams are independent of scheduling order. *)

val dc_of : t -> int -> int
(** Data center of a node id (replica locality for local reads). *)

val tracing : t -> bool
(** Whether any trace consumer is listening.  Guard trace points whose
    {e arguments} are expensive to build (key renderings, pretty-printed
    outcomes) with this — {!val-trace} skips the formatting itself when
    disabled, but OCaml evaluates arguments at the call site regardless. *)

val trace : t -> tag:string -> ('a, unit, string, unit) format4 -> 'a
(** Emit a protocol trace line attributed to [tag] at the runtime's
    current time.  When no consumer is listening the arguments are
    consumed without formatting ({!Printf.ikfprintf}), so a disabled
    trace point allocates nothing. *)

val of_network : Mdcc_sim.Network.t -> t
(** The simulator runtime: timers are engine events, [send] is simulated
    wide-area delivery with latency, jitter, drops and failures, [now] is
    virtual time, and [spawn] is a zero-delay event. *)
