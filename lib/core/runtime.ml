module Net = Mdcc_sim.Network
module Engine = Mdcc_sim.Engine
module Topology = Mdcc_sim.Topology
module Trace = Mdcc_sim.Trace
module Rng = Mdcc_util.Rng

type timer = unit -> unit

type t = {
  r_now : unit -> float;
  r_send : src:int -> dst:int -> Net.payload -> unit;
  r_register : int -> (src:int -> Net.payload -> unit) -> unit;
  r_set_timer : after:float -> (unit -> unit) -> (unit -> unit);
  r_spawn : (unit -> unit) -> unit;
  r_rng : Rng.t;
  r_dc_of : int -> int;
  r_trace : tag:string -> string -> unit;
  r_tracing : unit -> bool;
}

let make ~now ~send ~register ~set_timer ~spawn ~rng ~dc_of ~trace ~tracing () =
  {
    r_now = now;
    r_send = send;
    r_register = register;
    r_set_timer = set_timer;
    r_spawn = spawn;
    r_rng = rng;
    r_dc_of = dc_of;
    r_trace = trace;
    r_tracing = tracing;
  }

let now t = t.r_now ()

let send t ~src ~dst payload = t.r_send ~src ~dst payload

let register t node handler = t.r_register node handler

let set_timer t ~after f = t.r_set_timer ~after f

let cancel_timer _t (cancel : timer) = cancel ()

let spawn t f = t.r_spawn f

let rng t = t.r_rng

let dc_of t node = t.r_dc_of node

let tracing t = t.r_tracing ()

(* When nobody is listening, [ikfprintf] consumes the format arguments
   without building the string — a disabled trace point costs one indirect
   call and zero allocation instead of a full [ksprintf] rendering. *)
let trace t ~tag fmt =
  if t.r_tracing () then Printf.ksprintf (fun msg -> t.r_trace ~tag msg) fmt
  else Printf.ikfprintf ignore () fmt

let of_network net =
  let engine = Net.engine net in
  let topo = Net.topology net in
  let th = Trace.handle () in
  {
    r_now = (fun () -> Engine.now engine);
    r_send = (fun ~src ~dst payload -> Net.send net ~src ~dst payload);
    r_register = (fun node handler -> Net.register net node handler);
    r_set_timer =
      (fun ~after f ->
        let h = Engine.schedule engine ~after f in
        fun () -> Engine.cancel engine h);
    r_spawn = (fun f -> ignore (Engine.schedule engine ~after:0.0 f));
    r_rng = Engine.rng engine;
    r_dc_of = (fun node -> Topology.dc_of topo node);
    r_trace = (fun ~tag msg -> Trace.record_at th ~at:(Engine.now engine) ~tag msg);
    r_tracing = (fun () -> Trace.active th);
  }
