open Mdcc_storage
open Mdcc_paxos
module Rng = Mdcc_util.Rng
module Table = Mdcc_util.Table
module Obs = Mdcc_obs.Obs

(* A classic Phase 2 round this master is running for one option. *)
type round = {
  r_opt : Woption.t;
  r_dec : Woption.decision;
  r_ballot : Ballot.t;
  mutable r_acks : int list;
  mutable r_notify : int list;
}

(* Collision recovery / mastership acquisition in progress for one record. *)
type recovery = {
  mutable rc_ballot : Ballot.t;
  mutable rc_resp : (int * Messages.vote list * Messages.rebase * (Txn.id * bool) list) list;
  mutable rc_extras : Woption.t list;
  mutable rc_notify : int list;
  mutable rc_done : bool;
}

(* Master-role state for one record. *)
type mstate = {
  m_key : Key.t;
  mutable m_led : Ballot.t option;
  mutable m_highest : int;
  mutable m_rounds : round list;
  mutable m_queue : (Woption.t * int list) list;
  mutable m_recovery : recovery option;
}

(* Dangling-transaction recovery in progress at this node. *)
type txrec = {
  tx_id : Txn.id;
  tx_keys : Key.t list;
  mutable tx_opts : Woption.t Key.Map.t;
  mutable tx_replies : (int * Messages.status) list Key.Map.t;
  mutable tx_learned : Woption.decision Key.Map.t;
  mutable tx_asked : Key.Set.t;  (* keys already escalated to their master *)
  mutable tx_done : bool;
}

type t = {
  runtime : Runtime.t;
  config : Config.t;
  id : int;
  schema : Schema.t;
  replicas : Key.t -> int list;
  master_of : Key.t -> int;
  store : Store.t;
  records : Rstate.t Key.Tbl.t;
  visible : (string, bool) Hashtbl.t;  (* "txid#key" -> txn committed? *)
  decided_log : (string, (Txn.id * bool) list) Hashtbl.t;
      (* key -> visibility outcomes known at this replica.  A visibility is
         a final decision, yet it erases the option's pending vote, so later
         classic ballots cannot re-learn it from votes alone: the log is
         shipped in Phase1b (recovery must honor it) and its committed
         subset in every rebase (receivers dedupe late Visibilities). *)
  masters : mstate Key.Tbl.t;
  recoveries : (Txn.id, txrec) Hashtbl.t;
  rng : Rng.t;
  history : History.t option;  (* chaos-testing execution recorder *)
  obs : Obs.t;
  diverged : (string, unit) Hashtbl.t;
      (* "src#key" pairs currently known diverged at equal version (applied
         anti-entropy digests differ); drives the diverged_replicas gauge *)
  trace_tag : string;  (* "node<id>", rendered once — not per trace point *)
}

let record t ev = match t.history with Some h -> History.record h ev | None -> ()

let node_id t = t.id

let store t = t.store

let vkey txid key = txid ^ "#" ^ Key.to_string key

let decided_for t key =
  Option.value (Hashtbl.find_opt t.decided_log (Key.to_string key)) ~default:[]

let record_decided t key txid committed =
  let k = Key.to_string key in
  let cur = Option.value (Hashtbl.find_opt t.decided_log k) ~default:[] in
  if not (List.mem_assoc txid cur) then Hashtbl.replace t.decided_log k ((txid, committed) :: cur)

let default_classic_until config =
  match config.Config.mode with Config.Multi -> max_int | Config.Full | Config.Fast_only -> 0

let rstate t key =
  match Key.Tbl.find_opt t.records key with
  | Some rs -> rs
  | None ->
    let rs = Rstate.create ~classic_until:(default_classic_until t.config) key in
    Key.Tbl.add t.records key rs;
    rs

(* The applied set lives on the record's Rstate — the authoritative list of
   committed updates folded into our copy of [key], which is what the
   anti-entropy digest must summarize.  (The decided log is the wrong
   source: it also remembers committed read guards, which never change the
   value, and keeps txids whose effect a later rebase clobbered.) *)
let applied_of t key = (rstate t key).Rstate.applied

let applied_digest_of t key =
  Messages.applied_digest (Rstate.applied_txids (applied_of t key))

(* A snapshot of our committed state, tagged with every transaction folded
   into it. *)
let rebase_of t key =
  let row = Store.ensure t.store key in
  {
    Messages.value = row.Store.value;
    version = row.Store.version;
    exists = row.Store.exists;
    included = applied_of t key;
  }

let mstate t key =
  match Key.Tbl.find_opt t.masters key with
  | Some ms -> ms
  | None ->
    let led =
      (* In Multi mode the statically-assigned master owns an implicit
         classic ballot from the start (stable master, Phase 1 skipped). *)
      if t.config.Config.mode = Config.Multi && t.master_of key = t.id then
        Some (Ballot.classic ~number:1 ~proposer:t.id)
      else None
    in
    let ms =
      { m_key = key; m_led = led; m_highest = 1; m_rounds = []; m_queue = []; m_recovery = None }
    in
    Key.Tbl.add t.masters key ms;
    ms

let valuation t key =
  let row = Store.ensure t.store key in
  { Rstate.value = row.Store.value; version = row.Store.version; exists = row.Store.exists }

let bounds t key = Schema.bounds_of t.schema key

let n_qf t = (t.config.Config.replication, Config.fast_quorum t.config)

let send t dst payload = Runtime.send t.runtime ~src:t.id ~dst payload

let now t = Runtime.now t.runtime

let trace t fmt = Runtime.trace t.runtime ~tag:t.trace_tag fmt

(* Guard for trace points whose arguments allocate (key renderings,
   verdict strings): [trace] itself skips formatting when nobody listens,
   but argument evaluation happens at the call site. *)
let tracing t = Runtime.tracing t.runtime

let span t ~txid ~name ?key ~detail () =
  Obs.span_event t.obs ~txid ~at:(now t) ~node:t.id ~name ?key ~detail ()

let reject_counter = function
  | Rstate.Version_validation -> "option_reject_version"
  | Rstate.Outstanding_option -> "option_reject_outstanding"
  | Rstate.Demarcation -> "option_reject_demarcation"

let count_verdict t decision reason =
  match (decision, reason) with
  | Woption.Accepted, _ -> Obs.incr t.obs "option_accept"
  | Woption.Rejected, Some r -> Obs.incr t.obs (reject_counter r)
  | Woption.Rejected, None -> ()

(* ------------------------------------------------------------------ *)
(* Acceptor role                                                       *)
(* ------------------------------------------------------------------ *)

(* Answer a fast (master-bypassing) proposal: SetCompatible + promise to the
   first proposer, or a redirect while the record runs classic ballots. *)
let fast_propose t (w : Woption.t) =
  let key = w.Woption.key in
  let rs = rstate t key in
  let reply decision =
    send t w.Woption.coordinator
      (Messages.Phase2b_fast { key; txid = w.Woption.txid; decision; acceptor = t.id })
  in
  match Hashtbl.find_opt t.visible (vkey w.Woption.txid key) with
  | Some committed -> reply (if committed then Woption.Accepted else Woption.Rejected)
  | None -> (
    match Rstate.find_pending rs w.Woption.txid with
    | Some p -> reply p.Rstate.decision
    | None ->
      let row = valuation t key in
      let era_classic = Rstate.in_classic_era rs ~version:row.Rstate.version in
      if (not era_classic) && not (Ballot.is_fast rs.Rstate.promised) then
        (* The γ window ended: lazily fall back to the implicit fast ballot. *)
        rs.Rstate.promised <- Ballot.initial_fast;
      if era_classic then
        send t w.Woption.coordinator
          (Messages.Redirect
             {
               key;
               txid = w.Woption.txid;
               master = t.master_of key;
               classic_until = rs.Rstate.classic_until;
             })
      else begin
        (* A physical update whose vread is ahead of us means we missed an
           update: ask the master for the committed state (anti-entropy). *)
        (match w.Woption.update with
        | Update.Physical { vread; _ } | Update.Delete { vread } | Update.Read_guard { vread } ->
          if vread > row.Rstate.version && t.master_of key <> t.id then
            send t (t.master_of key) (Messages.Catchup_request { key })
        | Update.Insert _ | Update.Delta _ -> ());
        let n, qf = n_qf t in
        let decision, reason =
          Rstate.evaluate_why ~bounds:(bounds t key) ~demarcation:(`Quorum (n, qf)) row
            ~accepted:(Rstate.accepted rs) w.Woption.update
        in
        count_verdict t decision reason;
        Rstate.add_pending rs
          {
            Rstate.woption = w;
            decision;
            ballot = Ballot.initial_fast;
            proposed_at = now t;
          };
        let verdict_str =
          match (decision, reason) with
          | Woption.Accepted, _ -> "acc"
          | Woption.Rejected, Some Rstate.Version_validation -> "rej:version"
          | Woption.Rejected, Some Rstate.Outstanding_option -> "rej:outstanding"
          | Woption.Rejected, Some Rstate.Demarcation -> "rej:demarcation"
          | Woption.Rejected, None -> "rej"
        in
        let key_str = Key.to_string key in
        trace t "fast vote %s %s %s" w.Woption.txid key_str verdict_str;
        span t ~txid:w.Woption.txid ~name:"vote" ~key:key_str
          ~detail:("fast " ^ verdict_str) ();
        reply decision
      end)

(* Phase1b contents, as a tuple so the master can be invoked synchronously
   for its own replica. *)
let acceptor_phase1a t key ballot =
  let rs = rstate t key in
  let ok = Ballot.compare ballot rs.Rstate.promised > 0 in
  if ok then rs.Rstate.promised <- ballot;
  let votes =
    List.map
      (fun (p : Rstate.pending) ->
        { Messages.woption = p.Rstate.woption; decision = p.Rstate.decision; ballot = p.Rstate.ballot })
      rs.Rstate.pending
  in
  (ok, rs.Rstate.promised, votes, rebase_of t key, decided_for t key)

let apply_rebase t key (rb : Messages.rebase) =
  let row = Store.ensure t.store key in
  if rb.Messages.version > row.Store.version then begin
    Obs.incr t.obs "antientropy_repair";
    row.Store.value <- rb.Messages.value;
    row.Store.version <- rb.Messages.version;
    row.Store.exists <- rb.Messages.exists;
    (* The re-based state already reflects these transactions: mark them
       visible so a late Visibility cannot re-apply them (deltas carry no
       version guard, so a commutative update would otherwise be counted
       twice), and drop any still-pending option they left behind.  The
       applied set becomes exactly [included] — the value now reflects
       those transactions and no others; anything we had applied that the
       rebaser lacked was clobbered with the overwrite and will come back
       through Sync_reply repair from a replica that still holds it. *)
    let rs = rstate t key in
    rs.Rstate.applied <- rb.Messages.included;
    List.iter
      (fun (txid, _update) ->
        if not (Hashtbl.mem t.visible (vkey txid key)) then begin
          Hashtbl.replace t.visible (vkey txid key) true;
          Rstate.remove_pending rs txid
        end;
        record_decided t key txid true)
      rb.Messages.included
  end

let acceptor_phase2a t key ballot (w : Woption.t) decision classic_until rebase =
  let rs = rstate t key in
  if Ballot.compare ballot rs.Rstate.promised >= 0 then begin
    rs.Rstate.promised <- ballot;
    rs.Rstate.classic_until <- Stdlib.max rs.Rstate.classic_until classic_until;
    (match rebase with Some rb -> apply_rebase t key rb | None -> ());
    match Hashtbl.find_opt t.visible (vkey w.Woption.txid key) with
    | Some committed ->
      (* The option's visibility already executed here: that decision is
         final, answer it instead of the proposer's. *)
      (true, ballot, if committed then Woption.Accepted else Woption.Rejected)
    | None ->
      Rstate.add_pending rs { Rstate.woption = w; decision; ballot; proposed_at = now t };
      span t ~txid:w.Woption.txid ~name:"vote" ~key:(Key.to_string key)
        ~detail:
          ("classic "
          ^ match decision with Woption.Accepted -> "acc" | Woption.Rejected -> "rej")
        ();
      (true, ballot, decision)
  end
  else (false, rs.Rstate.promised, decision)

(* Execute or void an option (Algorithm 3, ApplyVisibility). *)
let visibility t txid key (update : Update.t) committed =
  let unknown_update =
    (* A recovery that learned the transaction committed without ever seeing
       this key's real option ships a placeholder update (vread = -1). *)
    committed && match update with Update.Physical { vread; _ } -> vread < 0 | _ -> false
  in
  if unknown_update then begin
    (* We cannot execute what we do not know.  Refuse the message: the
       pending vote stays (so conflicting rounds cannot validate against our
       stale row) and the master's committed state — whose rebase watermark
       settles this transaction — repairs us instead. *)
    if not (Hashtbl.mem t.visible (vkey txid key)) then begin
      if tracing t then
        trace t "visibility %s %s unknown update: catching up" txid (Key.to_string key);
      if t.master_of key <> t.id then
        send t (t.master_of key) (Messages.Catchup_request { key })
    end
  end
  else if not (Hashtbl.mem t.visible (vkey txid key)) then begin
    Hashtbl.replace t.visible (vkey txid key) committed;
    record_decided t key txid committed;
    let rs = rstate t key in
    Rstate.remove_pending rs txid;
    if committed then begin
      let row = Store.ensure t.store key in
      let apply_it =
        match update with
        | Update.Physical { vread; _ } | Update.Delete { vread } ->
          (* Skip if a rebase already moved us past this instance. *)
          row.Store.version <= vread
        | Update.Insert _ -> not row.Store.exists
        | Update.Delta _ -> true
        | Update.Read_guard _ -> false
      in
      (* Track every committed value-affecting update in the record's
         applied set (even when the physical apply is skipped — a skip
         means a rebase already folded the effect in).  Read guards never
         change the value, so they stay out: the anti-entropy digest must
         not diverge over no-ops one replica happened to miss. *)
      (match update with
      | Update.Read_guard _ -> ()
      | Update.Insert _ | Update.Physical _ | Update.Delete _ | Update.Delta _ ->
        Rstate.mark_applied rs txid update);
      if apply_it then begin
        Store.apply t.store key update;
        record t
          (History.Applied
             {
               time = now t;
               node = t.id;
               txid;
               key;
               version = row.Store.version;
               value = row.Store.value;
             })
      end
    end
    else record t (History.Voided { time = now t; node = t.id; txid; key });
    Obs.incr t.obs (if committed then "visibility_exec" else "visibility_void");
    let verdict = if committed then "exec" else "void" in
    span t ~txid ~name:"visible" ~key:(Key.to_string key) ~detail:verdict ();
    if tracing t then trace t "visibility %s %s -> %s" txid (Key.to_string key) verdict
  end

let status_query t ~src txid key =
  let status =
    match Hashtbl.find_opt t.visible (vkey txid key) with
    | Some committed -> Messages.Status_decided committed
    | None -> (
      match Rstate.find_pending (rstate t key) txid with
      | Some p ->
        Messages.Status_pending
          { Messages.woption = p.Rstate.woption; decision = p.Rstate.decision; ballot = p.Rstate.ballot }
      | None -> Messages.Status_unknown)
  in
  send t src (Messages.Status_reply { txid; key; status; acceptor = t.id })

(* ------------------------------------------------------------------ *)
(* Master role                                                         *)
(* ------------------------------------------------------------------ *)

let qc t = Config.classic_quorum t.config

let dedup_add x xs = if List.mem x xs then xs else x :: xs

let union a b = List.fold_left (fun acc x -> dedup_add x acc) a b

let rec master_phase2b t ~src key txid ballot ok _decision =
  let ms = mstate t key in
  match List.find_opt (fun r -> String.equal r.r_opt.Woption.txid txid) ms.m_rounds with
  | None -> ()
  | Some r ->
    if not (Ballot.equal r.r_ballot ballot) then ()
    else if ok then begin
      r.r_acks <- dedup_add src r.r_acks;
      if List.length r.r_acks >= qc t then begin
        ms.m_rounds <- List.filter (fun r' -> r' != r) ms.m_rounds;
        let targets = union [ r.r_opt.Woption.coordinator ] r.r_notify in
        List.iter
          (fun dst ->
            if dst = t.id then txn_recovery_learned t txid key r.r_dec
            else send t dst (Messages.Learned { key; txid; decision = r.r_dec }))
          targets;
        Obs.incr t.obs "classic_learned";
        if tracing t then
          trace t "classic learned %s %s %s" txid (Key.to_string key)
            (match r.r_dec with Woption.Accepted -> "acc" | Woption.Rejected -> "rej");
        process_queue t key
      end
    end
    else begin
      (* Someone holds a higher ballot: step down and re-decide the option
         through full recovery. *)
      ms.m_highest <- Stdlib.max ms.m_highest ballot.Ballot.number;
      ms.m_led <- None;
      ms.m_rounds <- List.filter (fun r' -> r' != r) ms.m_rounds;
      start_recovery t key ~extras:[ r.r_opt ] ~notify:r.r_notify
    end

and broadcast_phase2a t key ballot (w : Woption.t) decision ~classic_until ~rebase =
  List.iter
    (fun replica ->
      if replica = t.id then begin
        let ok, b, d = acceptor_phase2a t key ballot w decision classic_until rebase in
        master_phase2b t ~src:t.id key w.Woption.txid b ok d
      end
      else
        send t replica
          (Messages.Phase2a { key; ballot; woption = w; decision; classic_until; rebase }))
    (t.replicas key)

(* Stable-master classic round: validate with escrow against our own state
   (our own pendings mirror every in-flight classic option) and replicate the
   decision. *)
and start_round t key (w : Woption.t) ~notify =
  let ms = mstate t key in
  match ms.m_led with
  | None -> start_recovery t key ~extras:[ w ] ~notify
  | Some ballot ->
    let rs = rstate t key in
    let row = valuation t key in
    let decision, reason =
      Rstate.evaluate_why ~bounds:(bounds t key) ~demarcation:`Escrow row
        ~accepted:(Rstate.accepted rs) w.Woption.update
    in
    count_verdict t decision reason;
    let r = { r_opt = w; r_dec = decision; r_ballot = ballot; r_acks = []; r_notify = notify } in
    ms.m_rounds <- r :: ms.m_rounds;
    broadcast_phase2a t key ballot w decision ~classic_until:rs.Rstate.classic_until ~rebase:None

and can_run_now t key (w : Woption.t) =
  let ms = mstate t key in
  ms.m_recovery = None
  && (ms.m_rounds = []
     || (Update.is_commutative w.Woption.update
        && List.for_all (fun r -> Update.is_commutative r.r_opt.Woption.update) ms.m_rounds))

and process_queue t key =
  let ms = mstate t key in
  match ms.m_queue with
  | [] -> ()
  | (w, notify) :: rest ->
    if ms.m_recovery = None && ms.m_led <> None && can_run_now t key w then begin
      ms.m_queue <- rest;
      start_round t key w ~notify;
      process_queue t key
    end

and master_propose t (w : Woption.t) ~notify =
  let key = w.Woption.key in
  let txid = w.Woption.txid in
  let ms = mstate t key in
  let rs = rstate t key in
  let tell decision =
    List.iter
      (fun dst ->
        if dst = t.id then txn_recovery_learned t txid key decision
        else send t dst (Messages.Learned { key; txid; decision }))
      (union [ w.Woption.coordinator ] notify)
  in
  match Hashtbl.find_opt t.visible (vkey txid key) with
  | Some committed -> tell (if committed then Woption.Accepted else Woption.Rejected)
  | None -> (
    match List.find_opt (fun r -> String.equal r.r_opt.Woption.txid txid) ms.m_rounds with
    | Some r -> r.r_notify <- union r.r_notify notify
    | None -> (
      match ms.m_recovery with
      | Some rc ->
        if not (List.exists (fun o -> String.equal o.Woption.txid txid) rc.rc_extras) then
          rc.rc_extras <- w :: rc.rc_extras;
        rc.rc_notify <- union rc.rc_notify notify
      | None -> (
        match Rstate.find_pending rs txid with
        | Some _ ->
          (* A local vote for the option exists — fast, or classic from a
             round we no longer track.  Either way a vote is not a decision
             (the round may have died short of a quorum), and re-running a
             fresh round against our own state would have the option
             conflicting with its own pending vote.  Recovery reads a quorum
             and classifies the vote correctly. *)
          start_recovery t key ~extras:[ w ] ~notify
        | None ->
          let row = valuation t key in
          let era_classic = Rstate.in_classic_era rs ~version:row.Rstate.version in
          if ms.m_led <> None && era_classic then begin
            if ms.m_queue = [] && can_run_now t key w then start_round t key w ~notify
            else ms.m_queue <- ms.m_queue @ [ (w, notify) ]
          end
          else start_recovery t key ~extras:[ w ] ~notify)))

(* Collision recovery: Phase 1 to everybody, then decide every pending
   option safely and re-propose at a classic ballot. *)
and start_recovery t key ~extras ~notify =
  let ms = mstate t key in
  match ms.m_recovery with
  | Some rc ->
    List.iter
      (fun w ->
        if not (List.exists (fun o -> String.equal o.Woption.txid w.Woption.txid) rc.rc_extras)
        then rc.rc_extras <- w :: rc.rc_extras)
      extras;
    rc.rc_notify <- union rc.rc_notify notify
  | None ->
    ms.m_led <- None;
    (* Fold any interrupted rounds and queued work into the recovery. *)
    let extras =
      extras
      @ List.map (fun r -> r.r_opt) ms.m_rounds
      @ List.map fst ms.m_queue
    in
    let notify = union notify (List.concat_map (fun r -> r.r_notify) ms.m_rounds) in
    let notify = union notify (List.concat_map snd ms.m_queue) in
    ms.m_rounds <- [];
    ms.m_queue <- [];
    ms.m_highest <- ms.m_highest + 1;
    let rc =
      {
        rc_ballot = Ballot.classic ~number:ms.m_highest ~proposer:t.id;
        rc_resp = [];
        rc_extras = extras;
        rc_notify = notify;
        rc_done = false;
      }
    in
    ms.m_recovery <- Some rc;
    Obs.incr t.obs "recovery_start";
    trace t "recovery start %s ballot=%d" (Key.to_string key) ms.m_highest;
    broadcast_phase1a t key rc;
    watch_recovery t key rc

and broadcast_phase1a t key rc =
  Obs.incr t.obs "phase1_round";
  let ballot = rc.rc_ballot in
  List.iter
    (fun replica ->
      if replica = t.id then begin
        let ok, promised, votes, rb, decided = acceptor_phase1a t key ballot in
        master_phase1b t ~src:t.id key ballot ok promised votes rb decided
      end
      else send t replica (Messages.Phase1a { key; ballot }))
    (t.replicas key)

(* Re-drive Phase 1 if the recovery stalls (lost messages, failed DC). *)
and watch_recovery t key rc =
  let timeout = t.config.Config.learn_timeout +. Rng.float t.rng 200.0 in
  ignore
    (Runtime.set_timer t.runtime ~after:timeout (fun () ->
         let ms = mstate t key in
         match ms.m_recovery with
         | Some rc' when rc' == rc && not rc.rc_done ->
           ms.m_highest <- ms.m_highest + 1;
           rc.rc_ballot <- Ballot.classic ~number:ms.m_highest ~proposer:t.id;
           rc.rc_resp <- [];
           broadcast_phase1a t key rc;
           watch_recovery t key rc
         | Some _ | None -> ()))

and master_phase1b t ~src key ballot ok promised votes rebase decided =
  let ms = mstate t key in
  match ms.m_recovery with
  | Some rc when Ballot.equal ballot rc.rc_ballot && not rc.rc_done ->
    if ok then begin
      if not (List.exists (fun (a, _, _, _) -> a = src) rc.rc_resp) then
        rc.rc_resp <- (src, votes, rebase, decided) :: rc.rc_resp;
      if List.length rc.rc_resp >= qc t then resolve_recovery t key rc
    end
    else begin
      (* Nacked: someone promised higher; back off and retry above it. *)
      ms.m_highest <- Stdlib.max ms.m_highest promised.Ballot.number;
      ms.m_highest <- ms.m_highest + 1;
      rc.rc_ballot <- Ballot.classic ~number:ms.m_highest ~proposer:t.id;
      rc.rc_resp <- [];
      let backoff = 20.0 +. Rng.float t.rng 150.0 in
      ignore
        (Runtime.set_timer t.runtime ~after:backoff (fun () ->
             match ms.m_recovery with
             | Some rc' when rc' == rc && not rc.rc_done -> broadcast_phase1a t key rc
             | Some _ | None -> ()))
    end
  | Some _ | None -> ()

and resolve_recovery t key rc =
  let ms = mstate t key in
  let n, qf = n_qf t in
  let quorum_size = List.length rc.rc_resp in
  (* Re-base: the freshest committed state any responder reported. *)
  let rebase =
    List.fold_left
      (fun best (_, _, rb, _) ->
        if rb.Messages.version > best.Messages.version then rb else best)
      (rebase_of t key) rc.rc_resp
  in
  apply_rebase t key rebase;
  (* Candidate options: every pending vote reported, plus escalated extras. *)
  let candidates : (string, Woption.t * (Woption.decision * Ballot.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (_, votes, _, _) ->
      List.iter
        (fun (v : Messages.vote) ->
          let txid = v.Messages.woption.Woption.txid in
          let w, vs =
            match Hashtbl.find_opt candidates txid with
            | Some (w, vs) -> (w, vs)
            | None -> (v.Messages.woption, [])
          in
          Hashtbl.replace candidates txid (w, (v.Messages.decision, v.Messages.ballot) :: vs))
        votes)
    rc.rc_resp;
  List.iter
    (fun (w : Woption.t) ->
      if not (Hashtbl.mem candidates w.Woption.txid) then
        Hashtbl.replace candidates w.Woption.txid (w, []))
    rc.rc_extras;
  (* Visibility outcomes known anywhere in the quorum (or locally) are final
     — a concurrent recovery already executed or voided these options, and
     this ballot must confirm, not contradict, them. *)
  let known_viz : (Txn.id, bool) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (txid, c) -> Hashtbl.replace known_viz txid c) (decided_for t key);
  List.iter
    (fun (_, _, _, decided) ->
      List.iter (fun (txid, c) -> Hashtbl.replace known_viz txid c) decided)
    rc.rc_resp;
  (* Split candidates: decided-by-visibility, classic-voted (a vote cast in
     some classic round — for each option only its highest-ballot vote
     matters), fast-threshold ("might have been chosen" at the fast
     ballot), and free. *)
  let threshold = qf - (n - quorum_size) in
  let already_visible = ref [] and classic_voted = ref [] and fast_forced = ref [] in
  let free = ref [] in
  (* Sorted by txid: the order candidates are classified (and therefore the
     order recovered options re-propose) must not depend on hash order. *)
  Table.sorted_iter ~compare:String.compare
    (fun txid (w, votes) ->
      match Hashtbl.find_opt known_viz txid with
      | Some committed ->
        already_visible :=
          (w, if committed then Woption.Accepted else Woption.Rejected) :: !already_visible
      | None -> (
        let classic_votes =
          List.filter (fun (_, b) -> not (Ballot.is_fast b)) votes
          |> List.sort (fun (_, b1) (_, b2) -> Ballot.compare b2 b1)
        in
        match classic_votes with
        | (d, b) :: _ -> classic_voted := (w, d, b) :: !classic_voted
        | [] ->
          let acc = List.length (List.filter (fun (d, _) -> d = Woption.Accepted) votes) in
          let rej = List.length (List.filter (fun (d, _) -> d = Woption.Rejected) votes) in
          if acc >= threshold then fast_forced := (w, Woption.Accepted) :: !fast_forced
          else if rej >= threshold then fast_forced := (w, Woption.Rejected) :: !fast_forced
          else free := w :: !free))
    candidates;
  let base_val =
    {
      Rstate.value = rebase.Messages.value;
      version = rebase.Messages.version;
      exists = rebase.Messages.exists;
    }
  in
  let as_pending w d =
    { Rstate.woption = w; decision = d; ballot = rc.rc_ballot; proposed_at = now t }
  in
  let accepted_so_far = ref [] in
  let instance_of (w : Woption.t) =
    match w.Woption.update with
    | Update.Physical { vread; _ } | Update.Delete { vread } | Update.Read_guard { vread } ->
      vread
    | Update.Insert _ -> 0
    | Update.Delta _ -> max_int
  in
  let sort_opts =
    List.sort (fun a b ->
        match Int.compare (instance_of a) (instance_of b) with
        | 0 -> String.compare a.Woption.txid b.Woption.txid
        | c -> c)
  in
  (* A classic vote proves the option *might* have been chosen in that
     round, nothing more: the round may have died short of a quorum, and its
     stale vote can linger in an acceptor's log long after a higher ballot
     chose a conflicting option (whose own votes vanish once visibility
     executes them).  So accepted non-commutative classic-voted options are
     re-validated against the re-based state, highest ballot first.  That
     order is what makes this safe: had the option truly been chosen, a
     classic quorum voted for it, every later recovery quorum intersects
     that one, so no conflicting option could have been chosen since —
     the re-based state still satisfies it and re-validation re-accepts it.
     An option re-validation rejects provably was never chosen. *)
  let classic_checked =
    let sorted =
      List.sort (fun (_, _, b1) (_, _, b2) -> Ballot.compare b2 b1) !classic_voted
    in
    List.map
      (fun ((w : Woption.t), d, _) ->
        if d = Woption.Accepted && not (Update.is_commutative w.Woption.update) then begin
          let d' =
            Rstate.evaluate ~bounds:(bounds t key) ~demarcation:`Escrow base_val
              ~accepted:!accepted_so_far w.Woption.update
          in
          if d' = Woption.Accepted then accepted_so_far := as_pending w d' :: !accepted_so_far;
          (w, d')
        end
        else begin
          if d = Woption.Accepted then accepted_so_far := as_pending w d :: !accepted_so_far;
          (w, d)
        end)
      sorted
  in
  (* Fast votes likewise only prove a non-commutative option *might* have
     been chosen (the rest of the fast quorum is outside this view).  When
     such an option no longer applies to the re-based state, or conflicts
     with an option already validated above, it cannot in fact have been
     chosen — a fast quorum would have had to intersect the classic /
     rebasing quorum — so it must be rejected, not committed alongside.
     Commutative deltas keep the threshold decision: they carry no instance
     to conflict on. *)
  let fast_checked =
    let sorted =
      sort_opts (List.map fst !fast_forced)
      |> List.map (fun w -> (w, List.assq w !fast_forced))
    in
    List.map
      (fun ((w : Woption.t), d) ->
        if d = Woption.Accepted && not (Update.is_commutative w.Woption.update) then begin
          let d' =
            Rstate.evaluate ~bounds:(bounds t key) ~demarcation:`Escrow base_val
              ~accepted:!accepted_so_far w.Woption.update
          in
          if d' = Woption.Accepted then accepted_so_far := as_pending w d' :: !accepted_so_far;
          (w, d')
        end
        else begin
          if d = Woption.Accepted then accepted_so_far := as_pending w d :: !accepted_so_far;
          (w, d)
        end)
      sorted
  in
  (* Validate the free options deterministically, oldest instance first,
     against the re-based state plus everything already forced accepted. *)
  let decided_free =
    List.map
      (fun w ->
        let d =
          Rstate.evaluate ~bounds:(bounds t key) ~demarcation:`Escrow base_val
            ~accepted:!accepted_so_far w.Woption.update
        in
        if d = Woption.Accepted then accepted_so_far := as_pending w d :: !accepted_so_far;
        (w, d))
      (sort_opts !free)
  in
  (* Install the classic window and become the stable master. *)
  let classic_until =
    match t.config.Config.mode with
    | Config.Multi -> max_int
    | Config.Full | Config.Fast_only -> rebase.Messages.version + t.config.Config.gamma
  in
  let rs = rstate t key in
  rs.Rstate.classic_until <- Stdlib.max rs.Rstate.classic_until classic_until;
  rc.rc_done <- true;
  ms.m_recovery <- None;
  ms.m_led <- Some rc.rc_ballot;
  (* Options already executed: just tell everyone who asked. *)
  List.iter
    (fun ((w : Woption.t), d) ->
      List.iter
        (fun dst ->
          if dst = t.id then txn_recovery_learned t w.Woption.txid key d
          else send t dst (Messages.Learned { key; txid = w.Woption.txid; decision = d }))
        (union [ w.Woption.coordinator ] rc.rc_notify))
    !already_visible;
  (* Re-propose every undecided option at the classic ballot. *)
  let outcomes = classic_checked @ fast_checked @ decided_free in
  List.iter
    (fun ((w : Woption.t), d) ->
      let r =
        { r_opt = w; r_dec = d; r_ballot = rc.rc_ballot; r_acks = []; r_notify = rc.rc_notify }
      in
      ms.m_rounds <- r :: ms.m_rounds)
    outcomes;
  List.iter
    (fun ((w : Woption.t), d) ->
      broadcast_phase2a t key rc.rc_ballot w d ~classic_until ~rebase:(Some rebase))
    outcomes;
  trace t "recovery resolved %s: %d options (%d forced, %d free)" (Key.to_string key)
    (List.length outcomes)
    (List.length classic_checked + List.length fast_checked)
    (List.length decided_free)

(* ------------------------------------------------------------------ *)
(* Dangling-transaction recovery (app-server failure, §3.2.3)          *)
(* ------------------------------------------------------------------ *)

and txn_recovery_learned t txid key decision =
  match Hashtbl.find_opt t.recoveries txid with
  | None -> ()
  | Some tr ->
    if not (Key.Map.mem key tr.tx_learned) then begin
      tr.tx_learned <- Key.Map.add key decision tr.tx_learned;
      evaluate_txn_recovery t tr
    end

and synthetic_reject_option t txid key keys =
  (* Seal an instance for an option no replica has ever seen: a physical
     update with an impossible read version is deterministically rejected,
     which makes the abort durable. *)
  {
    Woption.txid;
    key;
    update = Update.Physical { vread = -1; value = Value.empty };
    write_set = keys;
    coordinator = t.id;
  }

and evaluate_txn_recovery t tr =
  if not tr.tx_done then begin
    let n, qf = n_qf t in
    ignore n;
    (* Short-circuit: any replica that already executed a Visibility knows
       the whole transaction's outcome. *)
    let decided_outcome =
      Key.Map.fold
        (fun _ replies acc ->
          match acc with
          | Some _ -> acc
          | None ->
            List.fold_left
              (fun acc (_, st) ->
                match (acc, st) with
                | None, Messages.Status_decided c -> Some c
                | acc, (Messages.Status_decided _ | Messages.Status_pending _ | Messages.Status_unknown) ->
                  acc)
              None replies)
        tr.tx_replies None
    in
    (* Record any options we learned about from pending votes. *)
    Key.Map.iter
      (fun key replies ->
        List.iter
          (fun (_, st) ->
            match st with
            | Messages.Status_pending v ->
              if not (Key.Map.mem key tr.tx_opts) then
                tr.tx_opts <- Key.Map.add key v.Messages.woption tr.tx_opts
            | Messages.Status_decided _ | Messages.Status_unknown -> ())
          replies)
      tr.tx_replies;
    let key_decision key =
      match Key.Map.find_opt key tr.tx_learned with
      | Some d -> Some d
      | None -> (
        match Key.Map.find_opt key tr.tx_replies with
        | None -> None
        | Some replies ->
          let votes =
            List.filter_map
              (fun (_, st) ->
                match st with
                | Messages.Status_pending v -> Some v.Messages.decision
                | Messages.Status_decided _ | Messages.Status_unknown -> None)
              replies
          in
          let acc = List.length (List.filter (fun d -> d = Woption.Accepted) votes) in
          let rej = List.length (List.filter (fun d -> d = Woption.Rejected) votes) in
          if acc >= qf then Some Woption.Accepted
          else if rej >= qf then Some Woption.Rejected
          else None)
    in
    match decided_outcome with
    | Some committed -> finish_txn_recovery t tr committed
    | None ->
      let undecided = List.filter (fun k -> key_decision k = None) tr.tx_keys in
      if undecided = [] then begin
        let committed =
          List.for_all (fun k -> key_decision k = Some Woption.Accepted) tr.tx_keys
        in
        finish_txn_recovery t tr committed
      end
      else
        (* Escalate undecided instances to their masters once we have heard
           from a classic quorum for that key. *)
        List.iter
          (fun key ->
            if not (Key.Set.mem key tr.tx_asked) then begin
              let replies =
                match Key.Map.find_opt key tr.tx_replies with Some r -> r | None -> []
              in
              if List.length replies >= qc t then begin
                tr.tx_asked <- Key.Set.add key tr.tx_asked;
                let w =
                  match Key.Map.find_opt key tr.tx_opts with
                  | Some w -> w
                  | None -> synthetic_reject_option t tr.tx_id key tr.tx_keys
                in
                let master = t.master_of key in
                if master = t.id then master_propose t w ~notify:[ t.id ]
                else send t master (Messages.Start_recovery { key; woption = Some w })
              end
            end)
          undecided
  end

and finish_txn_recovery t tr committed =
  tr.tx_done <- true;
  trace t "txn recovery %s -> %s" tr.tx_id (if committed then "commit" else "abort");
  List.iter
    (fun key ->
      let update =
        match Key.Map.find_opt key tr.tx_opts with
        | Some w -> w.Woption.update
        | None -> Update.Physical { vread = -1; value = Value.empty }
      in
      List.iter
        (fun replica ->
          if replica = t.id then visibility t tr.tx_id key update committed
          else
            send t replica (Messages.Visibility { txid = tr.tx_id; key; update; committed }))
        (t.replicas key))
    tr.tx_keys

let start_txn_recovery t (w : Woption.t) =
  if not (Hashtbl.mem t.recoveries w.Woption.txid) then begin
    let tr =
      {
        tx_id = w.Woption.txid;
        tx_keys = w.Woption.write_set;
        tx_opts = Key.Map.singleton w.Woption.key w;
        tx_replies = Key.Map.empty;
        tx_learned = Key.Map.empty;
        tx_asked = Key.Set.empty;
        tx_done = false;
      }
    in
    Hashtbl.replace t.recoveries w.Woption.txid tr;
    trace t "txn recovery start %s (%d keys)" w.Woption.txid (List.length tr.tx_keys);
    List.iter
      (fun key ->
        List.iter
          (fun replica ->
            if replica = t.id then status_query t ~src:t.id w.Woption.txid key
            else send t replica (Messages.Status_query { txid = w.Woption.txid; key }))
          (t.replicas key))
      tr.tx_keys;
    (* If recovery stalls (failed replicas), forget it so a later scan can
       retry from scratch with fresh messages. *)
    ignore
      (Runtime.set_timer t.runtime ~after:(3.0 *. t.config.Config.txn_timeout) (fun () ->
           match Hashtbl.find_opt t.recoveries w.Woption.txid with
           | Some tr' when tr' == tr && not tr.tx_done ->
             Hashtbl.remove t.recoveries w.Woption.txid
           | Some _ | None -> ()))
  end

let txn_recovery_status t txid key status acceptor =
  match Hashtbl.find_opt t.recoveries txid with
  | None -> ()
  | Some tr ->
    let replies = match Key.Map.find_opt key tr.tx_replies with Some r -> r | None -> [] in
    if not (List.exists (fun (a, _) -> a = acceptor) replies) then begin
      tr.tx_replies <- Key.Map.add key ((acceptor, status) :: replies) tr.tx_replies;
      evaluate_txn_recovery t tr
    end

(* Periodic scan for pending options whose coordinator went silent.  The
   record's master reacts after one timeout; other replicas after three, so
   a single node usually drives each recovery.  Candidates are collected
   first: starting a recovery mutates [t.records]. *)
let scan_dangling t =
  let deadline_factor key = if t.master_of key = t.id then 1.0 else 3.0 in
  let stale = ref [] in
  Key.Tbl.sorted_iter
    (fun key rs ->
      List.iter
        (fun (p : Rstate.pending) ->
          let age = now t -. p.Rstate.proposed_at in
          if
            age > t.config.Config.txn_timeout *. deadline_factor key
            && not (Hashtbl.mem t.recoveries p.Rstate.woption.Woption.txid)
          then stale := p.Rstate.woption :: !stale)
        rs.Rstate.pending)
    t.records;
  List.iter (start_txn_recovery t) !stale

(* ------------------------------------------------------------------ *)
(* Anti-entropy repair (Sync_reply reconciliation)                      *)
(* ------------------------------------------------------------------ *)

(* Merge a peer's applied set into ours by replaying every committed
   commutative option we are missing.  Deterministic: the missing entries
   arrive (and are replayed) in txid order, and txid membership in the
   applied set makes each replay idempotent — merging the same Sync_reply
   twice, or two replies in either order, produces the same state.  Only
   deltas are replayed blindly: they commute, so folding a committed delta
   into any state that lacks it is always correct.  A missing {e physical}
   entry at equal version means our committed state is genuinely stale;
   that is version-based catch-up's job, so we pull a full rebase instead.
   Answer with our merged set when the peer is missing entries we hold —
   gated on having learned something new ourselves, so the exchange
   terminates after at most one reply each way. *)
let sync_repair t ~src key (theirs : (Txn.id * Update.t) list) =
  let rs = rstate t key in
  let missing = Rstate.applied_missing ~mine:rs.Rstate.applied ~theirs in
  let merged = ref 0 in
  let stale = ref false in
  List.iter
    (fun (txid, (update : Update.t)) ->
      match update with
      | Update.Delta _ ->
        let row = Store.ensure t.store key in
        Hashtbl.replace t.visible (vkey txid key) true;
        record_decided t key txid true;
        Rstate.remove_pending rs txid;
        Store.apply t.store key update;
        Rstate.mark_applied rs txid update;
        incr merged;
        Obs.incr t.obs "antientropy_repair";
        record t
          (History.Applied
             {
               time = now t;
               node = t.id;
               txid;
               key;
               version = row.Store.version;
               value = row.Store.value;
             });
        span t ~txid ~name:"repair" ~key:(Key.to_string key) ~detail:"replay delta" ();
        trace t "repair %s %s: replayed delta from node %d" txid (Key.to_string key) src
      | Update.Insert _ | Update.Physical _ | Update.Delete _ | Update.Read_guard _ ->
        stale := true)
    missing;
  if !stale && t.id <> src then send t src (Messages.Catchup_request { key });
  (* Repaired: this pair is no longer diverged from our point of view. *)
  let dkey = Printf.sprintf "%d#%s" src (Key.to_string key) in
  if Hashtbl.mem t.diverged dkey then begin
    Hashtbl.remove t.diverged dkey;
    Obs.add_gauge t.obs "diverged_replicas" (-1)
  end;
  if !merged > 0 && Rstate.applied_missing ~mine:theirs ~theirs:rs.Rstate.applied <> []
  then
    send t src
      (Messages.Sync_reply
         {
           key;
           version = (Store.ensure t.store key).Store.version;
           applied = rs.Rstate.applied;
         })

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

let rec handle t ~src payload =
  match payload with
  | Messages.Batch items -> List.iter (handle t ~src) items
  | Messages.Sync_request { entries } ->
    (* Anti-entropy: answer with the committed state of any key where we are
       ahead of the prober, and ask for theirs where we are behind.  At
       equal versions, compare applied-set digests — matching versions with
       different digests mean the replicas applied different commutative
       delta sets (equal-version divergence).  Flag the pair on the
       diverged_replicas gauge and answer with our full applied set in a
       Sync_reply so the prober can replay what it is missing; the mark
       clears when a later probe agrees again or when the prober's
       counter-reply repairs us. *)
    List.iter
      (fun (key, version, digest) ->
        let row = Store.ensure t.store key in
        if row.Store.version > version then
          send t src (Messages.Catchup { key; rebase = rebase_of t key })
        else if row.Store.version < version then
          (* The prober is ahead of us: pull its committed state. *)
          send t src (Messages.Catchup_request { key })
        else if row.Store.version > 0 then begin
          let dkey = Printf.sprintf "%d#%s" src (Key.to_string key) in
          let ours = applied_digest_of t key in
          if ours <> digest then begin
            if not (Hashtbl.mem t.diverged dkey) then begin
              Hashtbl.replace t.diverged dkey ();
              Obs.incr t.obs "antientropy_divergence";
              Obs.add_gauge t.obs "diverged_replicas" 1;
              trace t "anti-entropy divergence with node %d on %s at v%d" src
                (Key.to_string key) version
            end;
            send t src
              (Messages.Sync_reply
                 { key; version = row.Store.version; applied = applied_of t key })
          end
          else if Hashtbl.mem t.diverged dkey then begin
            Hashtbl.remove t.diverged dkey;
            Obs.add_gauge t.obs "diverged_replicas" (-1)
          end
        end)
      entries
  | Messages.Sync_reply { key; version = _; applied } -> sync_repair t ~src key applied
  | Messages.Propose { woption; route = `Fast } -> fast_propose t woption
  | Messages.Propose { woption; route = `Classic } -> master_propose t woption ~notify:[]
  | Messages.Phase1a { key; ballot } ->
    let ok, promised, votes, rb, decided = acceptor_phase1a t key ballot in
    send t src
      (Messages.Phase1b
         {
           key;
           ballot;
           ok;
           promised;
           votes;
           version = rb.Messages.version;
           value = rb.Messages.value;
           exists = rb.Messages.exists;
           included = rb.Messages.included;
           decided;
         })
  | Messages.Phase1b { key; ballot; ok; promised; votes; version; value; exists; included; decided }
    ->
    master_phase1b t ~src key ballot ok promised votes
      { Messages.value; version; exists; included }
      decided
  | Messages.Phase2a { key; ballot; woption; decision; classic_until; rebase } ->
    let ok, b, d = acceptor_phase2a t key ballot woption decision classic_until rebase in
    send t src
      (Messages.Phase2b_master { key; txid = woption.Woption.txid; ballot = b; ok; decision = d })
  | Messages.Phase2b_master { key; txid; ballot; ok; decision } ->
    master_phase2b t ~src key txid ballot ok decision
  | Messages.Learned { key; txid; decision } -> txn_recovery_learned t txid key decision
  | Messages.Visibility { txid; key; update; committed } -> visibility t txid key update committed
  | Messages.Start_recovery { key; woption } -> (
    match woption with
    | Some w -> master_propose t w ~notify:[ src ]
    | None -> start_recovery t key ~extras:[] ~notify:[ src ])
  | Messages.Status_query { txid; key } -> status_query t ~src txid key
  | Messages.Status_reply { txid; key; status; acceptor } ->
    txn_recovery_status t txid key status acceptor
  | Messages.Catchup_request { key } ->
    let row = Store.ensure t.store key in
    if row.Store.version > 0 then
      send t src (Messages.Catchup { key; rebase = rebase_of t key })
  | Messages.Catchup { key; rebase } -> apply_rebase t key rebase
  | Messages.Scan_request { rid; table; order_by; limit } ->
    let rows = ref [] in
    Store.iter t.store (fun key row ->
        if row.Store.exists && String.equal key.Key.table table then
          rows := (key, row.Store.value, row.Store.version) :: !rows);
    let rows =
      match order_by with
      | None -> !rows
      | Some attr ->
        List.sort
          (fun (_, v1, _) (_, v2, _) ->
            Int.compare (Value.get_int v2 attr) (Value.get_int v1 attr))
          !rows
    in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    send t src (Messages.Scan_reply { rid; rows = take limit rows })
  | Messages.Read_request { rid; key } ->
    let row = Store.ensure t.store key in
    send t src
      (Messages.Read_reply
         { rid; key; value = row.Store.value; version = row.Store.version; exists = row.Store.exists })
  (* Coordinator-bound replies; a storage node never consumes them. *)
  | Messages.Phase2b_fast _ | Messages.Redirect _ | Messages.Read_reply _
  | Messages.Scan_reply _ -> ()
  | _ -> ()

let create ~runtime ~config ~node_id ~schema ~replicas ~master_of ?(ctx = Ctx.default ()) () =
  let history = ctx.Ctx.history and obs = ctx.Ctx.obs in
  let t =
    {
      runtime;
      config;
      id = node_id;
      schema;
      replicas;
      master_of;
      store = Store.create schema;
      records = Key.Tbl.create 1024;
      visible = Hashtbl.create 4096;
      decided_log = Hashtbl.create 1024;
      masters = Key.Tbl.create 256;
      recoveries = Hashtbl.create 64;
      rng = Rng.split (Runtime.rng runtime);
      history;
      obs;
      diverged = Hashtbl.create 16;
      trace_tag = Printf.sprintf "node%d" node_id;
    }
  in
  Runtime.register runtime node_id (fun ~src payload -> handle t ~src payload);
  t

let load t rows =
  List.iter
    (fun (key, value) ->
      let row = Store.ensure t.store key in
      row.Store.value <- value;
      row.Store.version <- 1;
      row.Store.exists <- true)
    rows

let pending_options t =
  List.fold_left
    (fun acc (_, rs) -> acc + List.length rs.Rstate.pending)
    0
    (Key.Tbl.sorted_bindings t.records)

(* Anti-entropy sweep: probe the master of every key we hold with our
   version; stale keys come back via Catchup.  The "background process" that
   brings a recovered data center up to date (§5.3.4). *)
let sync_with_masters t =
  let by_master = Hashtbl.create 8 in
  Store.iter t.store (fun key row ->
      let master = t.master_of key in
      if master <> t.id then begin
        let existing = Option.value (Hashtbl.find_opt by_master master) ~default:[] in
        let digest = applied_digest_of t key in
        Hashtbl.replace by_master master ((key, row.Store.version, digest) :: existing)
      end);
  (* Probe masters in node-id order; entry lists are already in key order
     because [Store.iter] is sorted. *)
  Table.sorted_iter ~compare:Int.compare
    (fun master entries -> send t master (Messages.Sync_request { entries }))
    by_master

(* Stronger anti-entropy for a node restarting after a crash: probe every
   replica of every key we hold, not just the masters.  A crashed node may
   have missed instances of keys it {e masters} — their state is newer at the
   other replicas, which the master-directed sweep above never asks. *)
let sync_with_peers t =
  let by_peer = Hashtbl.create 8 in
  Store.iter t.store (fun key row ->
      List.iter
        (fun peer ->
          if peer <> t.id then begin
            let existing = Option.value (Hashtbl.find_opt by_peer peer) ~default:[] in
            let digest = applied_digest_of t key in
            Hashtbl.replace by_peer peer ((key, row.Store.version, digest) :: existing)
          end)
        (t.replicas key));
  Table.sorted_iter ~compare:Int.compare
    (fun peer entries -> send t peer (Messages.Sync_request { entries }))
    by_peer

let start_maintenance t =
  let period = t.config.Config.dangling_scan_every in
  if period > 0.0 then begin
    let rec loop () =
      scan_dangling t;
      ignore (Runtime.set_timer t.runtime ~after:period loop)
    in
    ignore (Runtime.set_timer t.runtime ~after:period loop)
  end
