open Mdcc_storage
module Obs = Mdcc_obs.Obs

type t = {
  coordinator : Coordinator.t;
  watermarks : int Key.Tbl.t;
  (* Keys written by a delta whose resulting version is unknown: the next
     read must go to a majority once, then the watermark is precise again. *)
  dirty : unit Key.Tbl.t;
}

let create coordinator =
  { coordinator; watermarks = Key.Tbl.create 64; dirty = Key.Tbl.create 16 }

let watermark t key = Option.value (Key.Tbl.find_opt t.watermarks key) ~default:0

let observe t key version =
  if version > watermark t key then Key.Tbl.replace t.watermarks key version

let read t key callback =
  let obs = Coordinator.obs t.coordinator in
  let deliver result =
    (match result with Some (_, version) -> observe t key version | None -> ());
    Key.Tbl.remove t.dirty key;
    callback result
  in
  if Key.Tbl.mem t.dirty key then begin
    Obs.incr obs "session_read_dirty_upgrade";
    Coordinator.read_majority t.coordinator key deliver
  end
  else
    Coordinator.read_local t.coordinator key (fun result ->
        let fresh_enough =
          match result with
          | Some (_, version) -> version >= watermark t key
          | None -> watermark t key = 0
        in
        if fresh_enough then begin
          Obs.incr obs "session_read_fresh";
          deliver result
        end
        else begin
          Obs.incr obs "session_read_stale_upgrade";
          Coordinator.read_majority t.coordinator key deliver
        end)

let scan t ~table ?order_by ~limit cb =
  Coordinator.scan_local t.coordinator ~table ?order_by ~limit cb

let submit t txn callback =
  Coordinator.submit t.coordinator txn (fun outcome ->
      (match outcome with
      | Txn.Committed ->
        List.iter
          (fun (key, up) ->
            match up with
            | Update.Physical { vread; _ } | Update.Delete { vread } -> observe t key (vread + 1)
            | Update.Insert _ -> observe t key 1
            | Update.Read_guard { vread } -> observe t key vread
            | Update.Delta _ -> Key.Tbl.replace t.dirty key ())
          txn.Txn.updates
      | Txn.Aborted _ -> ());
      callback outcome)
