open Mdcc_storage
module Obs = Mdcc_obs.Obs

type level = [ `Local | `Session | `Majority | `Snapshot ]

type t = {
  coordinator : Coordinator.t;
  watermarks : int Key.Tbl.t;
  (* Keys written by a delta whose resulting version is unknown: the next
     read must go to a majority once, then the watermark is precise again. *)
  dirty : unit Key.Tbl.t;
}

let create coordinator =
  { coordinator; watermarks = Key.Tbl.create 64; dirty = Key.Tbl.create 16 }

let watermark t key = Option.value (Key.Tbl.find_opt t.watermarks key) ~default:0

let observe t key version =
  if version > watermark t key then Key.Tbl.replace t.watermarks key version

let read ?(level = `Session) t key callback =
  let obs = Coordinator.obs t.coordinator in
  let deliver result =
    (match result with Some (_, version) -> observe t key version | None -> ());
    Key.Tbl.remove t.dirty key;
    callback result
  in
  match level with
  | `Local ->
    (* Raw read-committed local read: no watermark upgrade, and the key
       stays dirty — a later [`Session] read still knows to catch up.  The
       returned version is still observed (monotonic bookkeeping is free). *)
    Coordinator.read ~level:`Local t.coordinator key (fun result ->
        (match result with Some (_, version) -> observe t key version | None -> ());
        callback result)
  | `Snapshot ->
    (* Point-in-time fast path: no watermark machinery at all — the caller
       explicitly trades session guarantees for a zero-message read. *)
    Coordinator.read ~level:`Snapshot t.coordinator key callback
  | `Majority -> Coordinator.read ~level:`Majority t.coordinator key deliver
  | `Session ->
    if Key.Tbl.mem t.dirty key then begin
      Obs.incr obs "session_read_dirty_upgrade";
      Coordinator.read ~level:`Majority t.coordinator key deliver
    end
    else
      Coordinator.read ~level:`Local t.coordinator key (fun result ->
          let fresh_enough =
            match result with
            | Some (_, version) -> version >= watermark t key
            | None -> watermark t key = 0
          in
          if fresh_enough then begin
            Obs.incr obs "session_read_fresh";
            deliver result
          end
          else begin
            Obs.incr obs "session_read_stale_upgrade";
            Coordinator.read ~level:`Majority t.coordinator key deliver
          end)

(* Same descending-sort-then-truncate the coordinator applies to scans, so
   session-level row upgrades do not change the result shape. *)
let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let order_rows ?order_by ~limit rows =
  let merged =
    match order_by with
    | None -> rows
    | Some attr ->
      List.sort
        (fun (_, v1, _) (_, v2, _) -> Int.compare (Value.get_int v2 attr) (Value.get_int v1 attr))
        rows
  in
  take limit merged

let scan ?(level = `Session) t ~table ?order_by ~limit cb =
  let obs = Coordinator.obs t.coordinator in
  let observe_rows rows = List.iter (fun (key, _, version) -> observe t key version) rows in
  match level with
  | `Local -> Coordinator.scan ~level:`Local t.coordinator ~table ?order_by ~limit cb
  | `Snapshot -> Coordinator.scan ~level:`Snapshot t.coordinator ~table ?order_by ~limit cb
  | `Majority ->
    Coordinator.scan ~level:`Majority t.coordinator ~table ?order_by ~limit (fun rows ->
        observe_rows rows;
        cb rows)
  | `Session ->
    (* Scan locally, then upgrade only the rows the session knows to be
       stale (version below the watermark, or dirtied by an own delta
       write) to majority reads — read-your-writes for scans without paying
       wide-area cost for rows the session never touched. *)
    Coordinator.scan ~level:`Local t.coordinator ~table ?order_by ~limit (fun rows ->
        let stale (key, _, version) =
          Key.Tbl.mem t.dirty key || version < watermark t key
        in
        let to_upgrade = List.filter stale rows in
        if to_upgrade = [] then begin
          observe_rows rows;
          cb (order_rows ?order_by ~limit rows)
        end
        else begin
          Obs.incr obs "session_scan_stale_upgrade";
          let results = Key.Tbl.create (List.length to_upgrade) in
          let remaining = ref (List.length to_upgrade) in
          let finish () =
            let upgraded =
              List.filter_map
                (fun ((key, _, _) as row) ->
                  if not (stale row) then Some row
                  else
                    match Key.Tbl.find_opt results key with
                    | Some (Some (v, ver)) -> Some (key, v, ver)
                    | Some None | None -> None)
                rows
            in
            observe_rows upgraded;
            cb (order_rows ?order_by ~limit upgraded)
          in
          List.iter
            (fun (key, _, _) ->
              Coordinator.read ~level:`Majority t.coordinator key (fun res ->
                  Key.Tbl.replace results key res;
                  Key.Tbl.remove t.dirty key;
                  decr remaining;
                  if !remaining = 0 then finish ()))
            to_upgrade
        end)

let submit t txn callback =
  Coordinator.submit t.coordinator txn (fun outcome ->
      (match outcome with
      | Txn.Committed ->
        List.iter
          (fun (key, up) ->
            match up with
            | Update.Physical { vread; _ } | Update.Delete { vread } -> observe t key (vread + 1)
            | Update.Insert _ -> observe t key 1
            | Update.Read_guard { vread } -> observe t key vread
            | Update.Delta _ -> Key.Tbl.replace t.dirty key ())
          txn.Txn.updates
      | Txn.Aborted _ -> ());
      callback outcome)
