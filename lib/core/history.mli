(** Execution-history recording for chaos testing.

    A history is a flat, chronological log of everything the safety checker
    needs to decide whether an execution was correct: what each transaction
    proposed (its write-set carries the read versions as the [vread] of every
    physical/guard update), what the coordinator decided, which replicas
    executed or voided each option (and the committed value/version that
    resulted), and which faults the nemesis injected along the way.

    Recording is entirely passive — it never draws randomness or schedules
    events — so wiring a recorder into a cluster does not perturb the
    simulated execution: a run with a recorder is event-for-event identical
    to the same seed without one. *)

open Mdcc_storage

type event =
  | Submitted of { time : float; coordinator : int; txn : Txn.t }
      (** the commit protocol started for this transaction *)
  | Decided of { time : float; txid : Txn.id; outcome : Txn.outcome }
      (** the coordinator's decision callback fired *)
  | Applied of {
      time : float;
      node : int;
      txid : Txn.id;
      key : Key.t;
      version : int;  (** committed version after executing the option *)
      value : Value.t;  (** committed value after executing the option *)
    }  (** a replica executed a committed option (Visibility, committed) *)
  | Voided of { time : float; node : int; txid : Txn.id; key : Key.t }
      (** a replica voided an aborted option (Visibility, aborted) *)
  | Fault of { time : float; label : string }
      (** a nemesis fault was injected (for violation reports) *)

type t

val create : unit -> t

val record : t -> event -> unit

val events : t -> event list
(** All recorded events, in recording (chronological) order. *)

val length : t -> int

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
