type mode = Full | Fast_only | Multi

type t = {
  mode : mode;
  replication : int;
  gamma : int;
  learn_timeout : float;
  txn_timeout : float;
  dangling_scan_every : float;
  batching : bool;
  fast_quorum_override : int option;
}

let make ?(mode = Full) ?(gamma = 100) ?(learn_timeout = 1200.0) ?(txn_timeout = 5000.0)
    ?(dangling_scan_every = 1000.0) ?(batching = false) ?fast_quorum_override ~replication () =
  let module Invariant = Mdcc_util.Invariant in
  if replication < 3 then
    Invariant.violate ~context:"Config.make" "replication must be >= 3, got %d" replication;
  (match fast_quorum_override with
  | Some q when q < 1 || q > replication ->
    Invariant.violate ~context:"Config.make" "fast_quorum_override %d out of range [1, %d]" q
      replication
  | Some _ | None -> ());
  { mode; replication; gamma; learn_timeout; txn_timeout; dangling_scan_every; batching;
    fast_quorum_override }

let classic_quorum t = Mdcc_paxos.Quorum.classic_size ~n:t.replication

let fast_quorum t =
  match t.fast_quorum_override with
  | Some q -> q
  | None -> Mdcc_paxos.Quorum.fast_size ~n:t.replication

let mode_name = function Full -> "MDCC" | Fast_only -> "Fast" | Multi -> "Multi"
