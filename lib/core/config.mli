(** Protocol configuration: the knobs the paper's evaluation turns.

    The three configurations benchmarked in §5.3 are all instances of the
    same code base:
    {ul
    {- [Full] — "MDCC": fast ballots plus commutative options with quorum
       demarcation;}
    {- [Fast_only] — "Fast": fast ballots, but every update is treated as a
       physical (version-checked) update;}
    {- [Multi] — "Multi": every instance is classic, owned by a per-record
       master (Multi-Paxos; a stable master skips Phase 1).}} *)

type mode = Full | Fast_only | Multi

type t = {
  mode : mode;
  replication : int;  (** replicas per record = number of data centers *)
  gamma : int;
      (** instances forced classic after a collision before fast is retried
          (γ, default 100; §3.3.2) *)
  learn_timeout : float;
      (** ms the coordinator waits for an option before triggering collision
          recovery at the master *)
  txn_timeout : float;
      (** ms after which a storage node treats an undecided pending option as
          a dangling transaction and starts recovery (§3.2.3) *)
  dangling_scan_every : float;  (** period of the dangling-transaction scan *)
  batching : bool;
      (** fold messages for the same destination node into one network
          message (proposals and visibility notifications) — the batching
          optimization of the paper's conclusion *)
  fast_quorum_override : int option;
      (** {b testing only}: force {!fast_quorum} to this size instead of the
          safe [ceil(3n/4)].  Exists so the chaos checker can demonstrate it
          catches real protocol bugs — an undersized fast quorum (e.g. 3 of
          5) breaks the Fast Paxos intersection requirement and must show up
          as a safety violation.  Never set this in a real deployment. *)
}

val make :
  ?mode:mode ->
  ?gamma:int ->
  ?learn_timeout:float ->
  ?txn_timeout:float ->
  ?dangling_scan_every:float ->
  ?batching:bool ->
  ?fast_quorum_override:int ->
  replication:int ->
  unit ->
  t

val classic_quorum : t -> int
(** [floor(n/2) + 1]; 3 for the paper's 5 data centers. *)

val fast_quorum : t -> int
(** 4 for the paper's 5 data centers. *)

val mode_name : mode -> string
