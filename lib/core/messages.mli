(** The MDCC wire protocol.

    Constructors extend the simulator's {!Mdcc_sim.Network.payload} so every
    MDCC component shares the cluster's network.  The message set follows
    Algorithms 1–3 of the paper, plus the recovery and catch-up traffic the
    prose describes (§3.2.3, §4.2):

    {ul
    {- [Propose] — app-server to acceptors (fast route) or to the record's
       master (classic route);}
    {- [Phase1a]/[Phase1b] — master establishing a classic ballot;}
    {- [Phase2a]/[Phase2b_master] — master-ordered classic acceptance;}
    {- [Phase2b_fast] — acceptor's direct answer to a fast proposal, sent
       straight to the learning app-server (master bypass);}
    {- [Learned] — master informing the app-server of a classic outcome;}
    {- [Redirect] — acceptor telling a fast proposer the record currently
       runs classic ballots (fast-policy γ window) and who the master is;}
    {- [Visibility] — app-server executing / voiding learned options;}
    {- [Start_recovery] — anybody asking a master to resolve a collision;}
    {- [Status_query]/[Status_reply] — dangling-transaction recovery reading
       a quorum of option logs;}
    {- [Catchup_request]/[Catchup] — straggler replica anti-entropy.}} *)

open Mdcc_storage
open Mdcc_paxos

type rebase = {
  value : Value.t;
  version : int;
  exists : bool;
  included : (Txn.id * Update.t) list;
}
(** Committed state shipped by a master to re-base stragglers / reset the
    commutative base value after a demarcation collision (§3.4.2).
    [included] is the watermark of transactions folded into [value], each
    with the update it contributed: the receiver marks them visible so a
    late Visibility delivery cannot re-apply them (commutative deltas carry
    no version guard, so state transfer without the watermark would
    double-count them), and keeps the updates so it can later offer them to
    a diverged peer in a [Sync_reply]. *)

type vote = { woption : Woption.t; decision : Woption.decision; ballot : Ballot.t }
(** One pending acceptance reported in Phase1b or to recovery. *)

type status =
  | Status_unknown  (** no trace of the transaction at this replica *)
  | Status_pending of vote
  | Status_decided of bool  (** visibility already executed: committed? *)

type Mdcc_sim.Network.payload +=
  | Propose of { woption : Woption.t; route : [ `Fast | `Classic ] }
  | Phase1a of { key : Key.t; ballot : Ballot.t }
  | Phase1b of {
      key : Key.t;
      ballot : Ballot.t;
      ok : bool;  (** false: nack, [promised] is higher *)
      promised : Ballot.t;
      votes : vote list;
      version : int;
      value : Value.t;
      exists : bool;
      included : (Txn.id * Update.t) list;
      decided : (Txn.id * bool) list;
          (** visibility outcomes this acceptor knows for the key: final
              decisions a recovery must confirm, never contradict (the
              executed/voided option no longer appears in [votes]) *)
    }
  | Phase2a of {
      key : Key.t;
      ballot : Ballot.t;
      woption : Woption.t;
      decision : Woption.decision;
      classic_until : int;  (** fast-policy window the master imposes *)
      rebase : rebase option;
    }
  | Phase2b_master of {
      key : Key.t;
      txid : Txn.id;
      ballot : Ballot.t;
      ok : bool;
      decision : Woption.decision;
    }
  | Phase2b_fast of {
      key : Key.t;
      txid : Txn.id;
      decision : Woption.decision;
      acceptor : int;
    }
  | Learned of { key : Key.t; txid : Txn.id; decision : Woption.decision }
  | Redirect of { key : Key.t; txid : Txn.id; master : int; classic_until : int }
  | Visibility of {
      txid : Txn.id;
      key : Key.t;
      update : Update.t;
      committed : bool;
    }
  | Start_recovery of { key : Key.t; woption : Woption.t option }
  | Status_query of { txid : Txn.id; key : Key.t }
  | Status_reply of { txid : Txn.id; key : Key.t; status : status; acceptor : int }
  | Catchup_request of { key : Key.t }
  | Catchup of { key : Key.t; rebase : rebase }
  | Read_request of { rid : int; key : Key.t }
      (** read of the committed state of one replica (reads never touch the
          protocol; a single-replica read is the paper's default, possibly
          stale, read-committed read) *)
  | Read_reply of { rid : int; key : Key.t; value : Value.t; version : int; exists : bool }
  | Batch of Mdcc_sim.Network.payload list
      (** several protocol messages for the same destination folded into one
          network message — the batching optimization the paper's
          conclusion proposes to reduce message overhead *)
  | Sync_request of { entries : (Key.t * int * int) list }
      (** anti-entropy probe: "here are my (version, applied-set digest)
          pairs for these keys; send me a [Catchup] for any you know to be
          newer" — the background bulk-repair process §3.2.3/§5.3.4 mention
          for replicas that missed updates during an outage.  The digest
          (see {!applied_digest}) lets the receiver detect two replicas at
          the same version with different applied delta sets — the
          equal-version divergence commutative updates can produce — and
          answer with its own applied set in a [Sync_reply] so both sides
          converge on the union *)
  | Sync_reply of { key : Key.t; version : int; applied : (Txn.id * Update.t) list }
      (** anti-entropy repair: the responder's full applied set for one
          diverged key.  The receiver replays every committed commutative
          option it has not itself applied (txid-membership guarded, so the
          exchange is idempotent) and answers with its merged set if the
          sender is still missing entries — after at most one reply each
          way both replicas hold the union *)
  | Scan_request of { rid : int; table : string; order_by : string option; limit : int }
      (** read-committed scan of one replica's rows of a table, optionally
          sorted descending by an integer attribute — the local analytic
          reads TPC-W's browsing interactions (best sellers, search) issue *)
  | Scan_reply of { rid : int; rows : (Key.t * Value.t * int) list }

val describe : Mdcc_sim.Network.payload -> string
(** Short human-readable form for traces (["propose(fast, t1, item/4)"]). *)

val applied_digest : Txn.id list -> int
(** Order-independent digest of the transaction ids folded into a replica's
    committed value, exchanged in [Sync_request] entries.  Equal versions
    with different digests mean diverged replicas. *)

val size_of : Mdcc_sim.Network.payload -> int
(** Estimated wire size in bytes, used by the network meter to charge
    per-node byte counters.  A coarse model — fixed header plus the
    dominant variable-length parts — not a serialization. *)
