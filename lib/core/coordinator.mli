(** The app-server side of MDCC: the stateless DB library / transaction
    manager.

    A coordinator proposes options for every update of a transaction, learns
    them, and — crucially — is {e not allowed to abort} a transaction it has
    proposed: the outcome is a deterministic function of the learned options
    (all accepted → commit; any rejected → abort), which is what makes the
    single-round-trip commit safe (§3.2.1).  After deciding it sends
    asynchronous Visibility messages to execute or void the options.

    Routing implements the fast-policy from the client side: fast
    (master-bypassing) proposals by default, classic proposals through the
    record's master in Multi mode or while a collision hint for the record
    is fresh; [Redirect] answers from acceptors install such hints.
    Collisions (no fast quorum possible for either outcome) and learn
    timeouts escalate to [Start_recovery] at the master — rotating through
    replicas on repeated timeouts so a dead master is bypassed. *)

open Mdcc_storage

type t

type snapshot_source = {
  snap_read : Key.t -> (Value.t * int) option;
      (** committed value+version of the key at this DC's replica *)
  snap_scan : table:string -> (Key.t * Value.t * int) list;
      (** all live rows of a table across this DC's partition stores *)
}
(** Direct handles on the storage-node stores co-located with the
    app-server, one per partition of its data center.  They power the
    [`Snapshot] read level: a point-in-time read-committed view served with
    {e zero} protocol messages.  Only deployments that actually co-locate
    app-servers with storage (the simulated cluster, the wire server's
    in-process replica group) can provide one. *)

val create :
  runtime:Runtime.t ->
  config:Config.t ->
  node_id:int ->
  replicas:(Key.t -> int list) ->
  master_of:(Key.t -> int) ->
  ?snapshot:snapshot_source ->
  ?ctx:Ctx.t ->
  unit ->
  t
(** Registers the app-server's message handler on the runtime's transport
    ({!Runtime.register}) — the coordinator never touches a clock or a
    socket except through [runtime], so the same state machine runs under
    the simulator and the real socket runtime.  [snapshot], when the
    deployment co-locates storage with the app-server, enables the
    [`Snapshot] read fast path (without it, [`Snapshot] degrades to
    [`Local]).  [ctx] (default {!Ctx.default}) bundles the cross-cutting
    dependencies: [ctx.local_nodes] are the storage nodes of this
    app-server's data center (needed only for local {!scan}s); when
    [ctx.history] is set, every submission and decision is recorded into it
    (chaos testing); [ctx.obs] receives protocol-path counters and, at
    submit/propose/learn/decide, the transaction's span events. *)

val node_id : t -> int

val submit : t -> Txn.t -> (Txn.outcome -> unit) -> unit
(** Run the commit protocol for a write-set; the callback fires exactly once
    at decision time (Visibility is sent asynchronously after it). *)

val read :
  ?level:[ `Local | `Majority | `Snapshot ] ->
  t ->
  Key.t ->
  ((Value.t * int) option -> unit) ->
  unit
(** The one read entry point.  [`Local] (the default) is the paper's
    read-committed read of the replica in the app-server's own data center —
    one local round trip, possibly stale (§4.2).  [`Majority] queries all
    replicas and returns the freshest committed version once a classic
    quorum answered — up to date, at wide-area cost.  [`Snapshot] serves the
    co-located partition store directly — zero messages, read-committed,
    point-in-time; counted in obs as [snapshot_fast_path] (or
    [snapshot_fallback] when no {!snapshot_source} is wired, in which case
    it behaves as [`Local]).  (Session-consistent reads live one layer up:
    {!Session.read} with its [`Session] level.) *)

val scan :
  ?level:[ `Local | `Majority | `Snapshot ] ->
  t ->
  table:string ->
  ?order_by:string ->
  limit:int ->
  ((Key.t * Value.t * int) list -> unit) ->
  unit
(** Scan of a whole table, optionally sorted descending by an integer
    attribute and truncated to [limit] rows — what TPC-W's best-sellers /
    search interactions run.  [`Local] (the default) is a read-committed
    scan of the local data center's replicas, possibly stale.  [`Majority]
    discovers candidate rows locally, then upgrades each to a majority read
    (rows deleted at the majority drop out, so the result may be shorter
    than [limit]).  [`Snapshot] merges the co-located partition stores in
    process — the read-only fast path for analytics: no Scan_request
    round-trips, no option machinery. *)

val inflight : t -> int
(** Transactions submitted but not yet decided (diagnostics). *)

type stats = {
  mutable fast_commits : int;
      (** committed with every option learned on the pure fast path: one
          wide-area round trip, no master involved — the paper's headline
          common case *)
  mutable assisted_commits : int;
      (** committed, but some option needed a redirect, collision recovery
          or timeout assistance (or the mode is Multi) *)
  mutable aborts : int;
  mutable collisions : int;  (** fast-quorum collisions detected *)
  mutable redirects : int;  (** classic-window redirects followed *)
  mutable timeout_recoveries : int;  (** learn timeouts that escalated *)
}

val stats : t -> stats
(** Protocol-path counters for this app-server (live; not reset). *)

val obs : t -> Mdcc_obs.Obs.t
(** The observability handle this coordinator reports into. *)
