open Mdcc_storage
open Mdcc_paxos
module Engine = Mdcc_sim.Engine

type pending = {
  woption : Woption.t;
  mutable decision : Woption.decision;
  mutable ballot : Ballot.t;
  mutable proposed_at : Engine.sim_time;
}

type t = {
  key : Key.t;
  mutable promised : Ballot.t;
  mutable classic_until : int;
  mutable pending : pending list;
  mutable applied : (Txn.id * Update.t) list;
}

let create ?(classic_until = 0) key =
  { key; promised = Ballot.initial_fast; classic_until; pending = []; applied = [] }

(* The applied set — every committed transaction folded into this replica's
   copy of the record, with the update it contributed.  Kept sorted by txid
   so iteration order, digests and merges are deterministic (lint R1), and
   updated idempotently: membership by txid is the guard that makes replays
   of commutative deltas safe. *)

let entry_compare (a, _) (b, _) = String.compare a b

let applied_mem applied txid = List.exists (fun (id, _) -> String.equal id txid) applied

let applied_add applied txid update =
  if applied_mem applied txid then applied
  else List.merge entry_compare [ (txid, update) ] applied

let applied_txids applied = List.map fst applied

let applied_missing ~mine ~theirs =
  List.filter (fun (txid, _) -> not (applied_mem mine txid)) theirs

let applied_merge mine theirs =
  List.fold_left (fun acc (txid, up) -> applied_add acc txid up) mine theirs

let mark_applied t txid update = t.applied <- applied_add t.applied txid update

let find_pending t txid =
  List.find_opt (fun p -> String.equal p.woption.Woption.txid txid) t.pending

let remove_pending t txid =
  t.pending <- List.filter (fun p -> not (String.equal p.woption.Woption.txid txid)) t.pending

let add_pending t p =
  remove_pending t p.woption.Woption.txid;
  t.pending <- t.pending @ [ p ]

let accepted t = List.filter (fun p -> p.decision = Woption.Accepted) t.pending

let in_classic_era t ~version = version < t.classic_until

type valuation = { value : Value.t; version : int; exists : bool }

type demarcation = [ `Quorum of int * int | `Escrow ]

(* Exact integer test of  base + pending_neg + delta_neg >= L  with
   L = lower + (n - qf) / n * (base - lower): multiply through by n. *)
let demarcation_lower_ok ~n ~qf ~base ~lower ~pending_neg ~delta_neg =
  n * (base + pending_neg + delta_neg) >= (n * lower) + ((n - qf) * (base - lower))

let demarcation_upper_ok ~n ~qf ~base ~upper ~pending_pos ~delta_pos =
  n * (base + pending_pos + delta_pos) <= (n * upper) - ((n - qf) * (upper - base))

let attr_delta deltas attr =
  List.fold_left (fun acc (a, d) -> if String.equal a attr then acc + d else acc) 0 deltas

(* Worst-case sums of outstanding accepted deltas for one attribute: the
   permutation of commit/abort outcomes that drives the value lowest keeps
   only the negative deltas; highest keeps only the positive ones. *)
let pending_sums accepted_pendings attr =
  List.fold_left
    (fun (neg, pos) p ->
      let d = attr_delta (Update.deltas p.woption.Woption.update) attr in
      (neg + Stdlib.min 0 d, pos + Stdlib.max 0 d))
    (0, 0) accepted_pendings

let delta_ok ~bounds ~demarcation valuation ~accepted deltas =
  let check (b : Schema.bound) =
    let base = Value.get_int valuation.value b.Schema.attr in
    let pending_neg, pending_pos = pending_sums accepted b.Schema.attr in
    let d = attr_delta deltas b.Schema.attr in
    let delta_neg = Stdlib.min 0 d and delta_pos = Stdlib.max 0 d in
    let lower_ok =
      match b.Schema.lower with
      | None -> true
      | Some lower -> (
        match demarcation with
        | `Quorum (n, qf) -> demarcation_lower_ok ~n ~qf ~base ~lower ~pending_neg ~delta_neg
        | `Escrow -> base + pending_neg + delta_neg >= lower)
    in
    let upper_ok =
      match b.Schema.upper with
      | None -> true
      | Some upper -> (
        match demarcation with
        | `Quorum (n, qf) -> demarcation_upper_ok ~n ~qf ~base ~upper ~pending_pos ~delta_pos
        | `Escrow -> base + pending_pos + delta_pos <= upper)
    in
    lower_ok && upper_ok
  in
  List.for_all check bounds

let value_in_bounds ~bounds value =
  List.for_all
    (fun (b : Schema.bound) -> Schema.check_bound b (Value.get_int value b.Schema.attr))
    bounds

type reject_reason = Version_validation | Outstanding_option | Demarcation

(* The same conjunctions as the original single-expression [evaluate], but
   evaluated in a fixed order so a rejection names its {e first} failing
   clause: committed-state/version validation, then the one-outstanding-
   option rule, then value bounds / quorum demarcation.  The ordering
   cannot change the decision — only which reason a multiply-invalid
   option reports. *)
let classify ~bounds ~demarcation valuation ~accepted (up : Update.t) =
  let no_outstanding = accepted = [] in
  let no_outstanding_physical =
    List.for_all (fun p -> Update.is_commutative p.woption.Woption.update) accepted
  in
  match up with
  | Update.Insert v ->
    if valuation.exists then Some Version_validation
    else if not no_outstanding then Some Outstanding_option
    else if not (value_in_bounds ~bounds v) then Some Demarcation
    else None
  | Update.Physical { vread; value } ->
    if not (valuation.exists && valuation.version = vread) then Some Version_validation
    else if not no_outstanding then Some Outstanding_option
    else if not (value_in_bounds ~bounds value) then Some Demarcation
    else None
  | Update.Delete { vread } ->
    if not (valuation.exists && valuation.version = vread) then Some Version_validation
    else if not no_outstanding then Some Outstanding_option
    else None
  | Update.Delta deltas ->
    if not valuation.exists then Some Version_validation
    else if not no_outstanding_physical then Some Outstanding_option
    else if not (delta_ok ~bounds ~demarcation valuation ~accepted deltas) then
      Some Demarcation
    else None
  | Update.Read_guard { vread } ->
    (* Serializable reads (§4.4): valid while the read version is current
       and no write is outstanding; outstanding guards are fine (shared
       "locks" commute with each other). *)
    if valuation.version <> vread then Some Version_validation
    else if
      not
        (List.for_all (fun p -> Update.is_read_guard p.woption.Woption.update) accepted)
    then Some Outstanding_option
    else None

let evaluate_why ~bounds ~demarcation valuation ~accepted up =
  match classify ~bounds ~demarcation valuation ~accepted up with
  | None -> (Woption.Accepted, None)
  | Some reason -> (Woption.Rejected, Some reason)

let evaluate ~bounds ~demarcation valuation ~accepted up =
  fst (evaluate_why ~bounds ~demarcation valuation ~accepted up)
