(* Shared construction context for protocol nodes.

   Coordinator, storage node and cluster constructors used to grow parallel
   optional-argument tails (?history, ?obs, ?local_nodes, ...); every new
   cross-cutting concern meant touching each signature and call site.  A
   [Ctx.t] bundles them once: build one context at the edge (a test, a CLI,
   the chaos runner), thread the same value everywhere. *)

type t = {
  history : History.t option;
      (* passive execution recorder for the chaos checker, if any *)
  obs : Mdcc_obs.Obs.t;  (* metrics registry + span collector *)
  local_nodes : int list;
      (* storage nodes co-located with a coordinator (one per partition);
         only coordinators consume this — other nodes ignore it *)
}

let make ?history ?obs ?(local_nodes = []) () =
  let obs = match obs with Some o -> o | None -> Mdcc_obs.Obs.ambient () in
  { history; obs; local_nodes }

let default () = make ()

let with_local_nodes t local_nodes = { t with local_nodes }

let record t ev = match t.history with None -> () | Some h -> History.record h ev
