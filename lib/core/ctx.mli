(** Shared construction context for protocol nodes.

    Bundles the cross-cutting optional dependencies — history recorder,
    observability handle, co-located storage nodes — that [Coordinator.create],
    [Storage_node.create] and [Cluster.create] all need, so they are threaded
    as one value instead of parallel optional-argument tails.  Build one at
    the edge with {!make} and pass it everywhere; omitting [?ctx] on any
    constructor is equivalent to passing {!default}[ ()]. *)

type t = {
  history : History.t option;
      (** passive execution recorder for the chaos checker, if any *)
  obs : Mdcc_obs.Obs.t;  (** metrics registry + span collector *)
  local_nodes : int list;
      (** storage nodes co-located with a coordinator (one per partition);
          only coordinators consume this — other nodes ignore it *)
}

val make :
  ?history:History.t -> ?obs:Mdcc_obs.Obs.t -> ?local_nodes:int list -> unit -> t
(** [obs] defaults to {!Mdcc_obs.Obs.ambient}[ ()]; [history] to none;
    [local_nodes] to the empty list. *)

val default : unit -> t
(** [default () = make ()] — ambient observability, no recorder. *)

val with_local_nodes : t -> int list -> t
(** A copy of [t] scoped to one coordinator's co-located storage nodes. *)

val record : t -> History.event -> unit
(** Record into the context's history, if one is attached. *)
