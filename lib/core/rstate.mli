(** Per-record Paxos/option state kept by every replica.

    This module holds the state one storage node keeps for one record —
    promised ballot, the fast-policy window, the list of pending options —
    and the {e pure} decision logic shared by all three places the paper
    makes an accept/reject decision: the acceptor's fast path
    (SetCompatible, Algorithm 3 lines 83–99), the master's classic
    validation, and collision/dangling recovery.

    The decision logic implements:
    {ul
    {- write-write conflict detection via version preconditions
       ([vread] must equal the current version);}
    {- the "one outstanding option per record" rule (an accepted, not yet
       executed option makes conflicting later options {e rejected}, which is
       the paper's deadlock-avoidance trick of §3.2.2 — the loser learns a
       rejection instead of blocking);}
    {- commutative acceptance with value constraints: quorum demarcation
       ([`Quorum]) on acceptors, plain escrow ([`Escrow]) at a master that is
       the sole decider (§3.4.2).}} *)

open Mdcc_storage
open Mdcc_paxos

type pending = {
  woption : Woption.t;
  mutable decision : Woption.decision;  (** this replica's current vote *)
  mutable ballot : Ballot.t;  (** ballot the vote was cast at *)
  mutable proposed_at : Mdcc_sim.Engine.sim_time;
      (** {e simulated} time, for dangling detection.  The [sim_time]
          type (not bare [float]) is how lint rule R1 asserts the field
          is fed from the engine clock, never the wall clock: the only
          writers are [Storage_node]'s [now t] call sites. *)
}

type t = {
  key : Key.t;
  mutable promised : Ballot.t;  (** highest Phase1a answered (mbal_a) *)
  mutable classic_until : int;
      (** record versions below this must use classic ballots (γ window);
          [max_int] in Multi mode *)
  mutable pending : pending list;  (** outstanding options, arrival order *)
  mutable applied : (Txn.id * Update.t) list;
      (** every committed transaction folded into this replica's copy of the
          record, with the update it contributed — sorted by txid.  This is
          the authoritative input to the anti-entropy digest and the set
          exchanged in [Sync_reply] repair; txid membership is what makes
          replaying a commutative delta idempotent. *)
}

val create : ?classic_until:int -> Key.t -> t

(** {2 Applied-set operations}

    Pure functions over txid-sorted applied sets, plus the one mutator
    ({!mark_applied}).  All are deterministic and idempotent:
    [applied_add s txid up] is a no-op when [txid] is already a member, so
    merging the same [Sync_reply] twice — or in either order — yields the
    same set. *)

val applied_mem : (Txn.id * Update.t) list -> Txn.id -> bool

val applied_add :
  (Txn.id * Update.t) list -> Txn.id -> Update.t -> (Txn.id * Update.t) list
(** Insert preserving txid order; identity if [txid] is already present. *)

val applied_txids : (Txn.id * Update.t) list -> Txn.id list

val applied_missing :
  mine:(Txn.id * Update.t) list ->
  theirs:(Txn.id * Update.t) list ->
  (Txn.id * Update.t) list
(** The entries of [theirs] absent from [mine] (txid order preserved) —
    exactly what a repair has to replay. *)

val applied_merge :
  (Txn.id * Update.t) list -> (Txn.id * Update.t) list -> (Txn.id * Update.t) list
(** Set union keyed by txid ([mine] wins on duplicates); commutative up to
    the update payloads and associative, so repair converges regardless of
    exchange order. *)

val mark_applied : t -> Txn.id -> Update.t -> unit
(** Record that this replica folded [txid]'s update into its value. *)

val find_pending : t -> Txn.id -> pending option

val remove_pending : t -> Txn.id -> unit

val add_pending : t -> pending -> unit
(** Appends; replaces an existing entry with the same transaction id. *)

val accepted : t -> pending list
(** Pending options currently voted [Accepted]. *)

val in_classic_era : t -> version:int -> bool
(** Must proposals for the next instance go through the master? *)

type valuation = { value : Value.t; version : int; exists : bool }
(** The committed state a decision is evaluated against. *)

type demarcation = [ `Quorum of int * int  (** (n, fast-quorum size) *) | `Escrow ]

type reject_reason =
  | Version_validation
      (** missing/stale record or [vread] mismatch — write-write conflict *)
  | Outstanding_option
      (** an accepted, unexecuted option blocks this one (§3.2.2) *)
  | Demarcation  (** value bounds / quorum-demarcation limit exceeded *)

val evaluate :
  bounds:Schema.bound list ->
  demarcation:demarcation ->
  valuation ->
  accepted:pending list ->
  Update.t ->
  Woption.decision
(** The accept/reject decision for a new option given committed state and
    the already-accepted outstanding options.  Deterministic; safe to run
    at any replica that has the same inputs. *)

val evaluate_why :
  bounds:Schema.bound list ->
  demarcation:demarcation ->
  valuation ->
  accepted:pending list ->
  Update.t ->
  Woption.decision * reject_reason option
(** [evaluate] plus the first failing clause on rejection (checked in the
    fixed order version validation → outstanding option → demarcation, so
    the reason is deterministic even for multiply-invalid options).  The
    decision is identical to {!evaluate}'s. *)

val demarcation_lower_ok :
  n:int -> qf:int -> base:int -> lower:int -> pending_neg:int -> delta_neg:int -> bool
(** Exact integer form of the lower-limit test
    [base + pending_neg + delta_neg >= L],
    [L = lower + (n-qf)/n * (base - lower)] — exposed for direct unit and
    property testing of the §3.4.2 formula. *)

val demarcation_upper_ok :
  n:int -> qf:int -> base:int -> upper:int -> pending_pos:int -> delta_pos:int -> bool
