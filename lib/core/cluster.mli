(** Cluster assembly: the paper's deployment in one value.

    Builds the simulated deployment of Figure 1: [partitions] storage nodes
    per data center (every data center holds a full replica, range/hash
    partitioned inside the DC), plus [app_servers_per_dc] stateless
    app-servers running the DB library (the {!Coordinator}).  The replica
    group of a key is its partition's storage node in every data center;
    the record's master is the replica in [master_dc_of key] (uniformly
    hashed by default — experiments override it to control master
    locality, Figure 7). *)

open Mdcc_storage

type t

val create :
  engine:Mdcc_sim.Engine.t ->
  ?topology:Mdcc_sim.Topology.t ->
  ?partitions:int ->
  ?app_servers_per_dc:int ->
  ?jitter_sigma:float ->
  ?drop_probability:float ->
  ?master_dc_of:(Key.t -> int) ->
  ?ctx:Ctx.t ->
  config:Config.t ->
  schema:Schema.t ->
  unit ->
  t
(** [topology] must contain exactly [partitions] nodes per data center (the
    storage nodes); app-server nodes are appended automatically.  Default
    topology: the paper's five EC2 regions.  [config.replication] must equal
    the number of data centers.  [ctx] (default {!Ctx.default}) is threaded
    into every coordinator and storage node: when its [history] is set they
    all record into it (chaos testing; see {!Mdcc_chaos.Runner}), and its
    [obs] is fed per-node message/byte counters through a network meter
    installed at create time.  [ctx.local_nodes] is overridden per
    coordinator with the storage nodes of its data center. *)

val engine : t -> Mdcc_sim.Engine.t
val network : t -> Mdcc_sim.Network.t
val topology : t -> Mdcc_sim.Topology.t
val config : t -> Config.t
val num_dcs : t -> int

val obs : t -> Mdcc_obs.Obs.t
(** The observability handle every component of this cluster reports to. *)

val coordinator : t -> dc:int -> rank:int -> Coordinator.t
(** The [rank]-th app-server of a data center
    ([0 <= rank < app_servers_per_dc]). *)

val coordinators : t -> Coordinator.t list

val storage_nodes : t -> Storage_node.t list

val replicas : t -> Key.t -> int list
(** Node ids of the key's replica group (one per data center). *)

val master_node : t -> Key.t -> int

val load : t -> (Key.t * Value.t) list -> unit
(** Install committed rows (version 1) on every replica — experiment
    setup. *)

val peek : t -> dc:int -> Key.t -> (Value.t * int) option
(** Direct inspection of the committed state at a data center's replica
    (bypasses the network; for tests and invariant checks). *)

val start_maintenance : t -> unit
(** Arm the dangling-transaction scan on every storage node. *)

val fail_dc : t -> int -> unit
(** Kill a data center (all messages to/from it are dropped). *)

val recover_dc : t -> int -> unit

val sync_dc : t -> int -> unit
(** Run the anti-entropy sweep on every storage node of a data center
    (typically right after {!recover_dc}). *)

val fail_node : t -> int -> unit
(** Crash a single node (all its traffic is dropped until restart). *)

val restart_node : t -> int -> unit
(** Restart-with-recovery entry point: bring a crashed node back (its
    committed store is durable and survives the crash) and immediately run
    the peer-directed anti-entropy sweep so it repairs any instance it
    missed while down.  App-server nodes are simply reconnected. *)

val sync_all : t -> unit
(** Peer-directed anti-entropy on every storage node — what a chaos run
    executes after healing all faults so replicas can reconverge. *)
