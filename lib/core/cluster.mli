(** Cluster assembly: the paper's deployment in one value.

    Builds the simulated deployment of Figure 1: [partitions] storage nodes
    per data center (hash-partitioned keyspace — each node holds [1/partitions]
    of the keys, and each data center holds one node of every partition),
    plus [app_servers_per_dc] stateless app-servers running the DB library
    (the {!Coordinator}).  A key's {e replica group} is its partition's
    storage node in every data center — [num_dcs] nodes, not the whole
    cluster; a transaction whose write-set hashes to several partitions
    simply runs its per-record Paxos instances against several groups and
    is still decided atomically by the coordinator (the learned-all rule of
    §3.2.1 never looks at group boundaries).  The record's master is the
    replica in [master_dc_of key] (uniformly hashed by default —
    experiments override it to control master locality, Figure 7).

    A deployment is described by a {!Spec.t} — build one with {!Spec.make}
    or derive from {!Spec.default} with the [Spec.with_*] functional
    updates, then hand it to {!create}. *)

open Mdcc_storage

type t

(** First-class deployment description: what used to be a tail of optional
    arguments on [create].  Values are validated on construction
    ([partitions >= 1], [app_servers_per_dc >= 1],
    [0 <= drop_probability <= 1]). *)
module Spec : sig
  type t = private {
    topology : Mdcc_sim.Topology.t option;
        (** storage topology; [None] = the paper's five EC2 regions with
            [partitions] storage nodes each *)
    partitions : int;  (** hash partitions of the keyspace per DC *)
    app_servers_per_dc : int;
    jitter_sigma : float;  (** lognormal latency jitter of the sim network *)
    drop_probability : float;  (** iid message-drop rate of the sim network *)
    master_dc_of : (Key.t -> int) option;
        (** master-locality policy; [None] = uniform hash *)
  }

  val make :
    ?topology:Mdcc_sim.Topology.t ->
    ?partitions:int ->
    ?app_servers_per_dc:int ->
    ?jitter_sigma:float ->
    ?drop_probability:float ->
    ?master_dc_of:(Key.t -> int) ->
    unit ->
    t
  (** Smart constructor; defaults: 1 partition, 1 app-server per DC,
      jitter 0.05, no drops, hashed masters, EC2-five topology. *)

  val default : t
  (** [make ()] — the paper's five-DC single-partition deployment. *)

  val with_topology : Mdcc_sim.Topology.t -> t -> t
  val with_partitions : int -> t -> t
  val with_app_servers : int -> t -> t
  val with_jitter : float -> t -> t
  val with_drop_probability : float -> t -> t
  val with_master_dc_of : (Key.t -> int) -> t -> t

  val partitions : t -> int
end

val create :
  engine:Mdcc_sim.Engine.t ->
  spec:Spec.t ->
  ?ctx:Ctx.t ->
  config:Config.t ->
  schema:Schema.t ->
  unit ->
  t
(** Builds the deployment [spec] describes.  [spec.topology], when given,
    must contain exactly [spec.partitions] nodes per data center (the
    storage nodes); app-server nodes are appended automatically.
    [config.replication] must equal the number of data centers.  [ctx]
    (default {!Ctx.default}) is threaded into every coordinator and storage
    node: when its [history] is set they all record into it (chaos testing;
    see {!Mdcc_chaos.Runner}), and its [obs] is fed per-node message/byte
    counters through a network meter installed at create time.
    [ctx.local_nodes] is overridden per coordinator with the storage nodes
    of its data center, and every coordinator is wired a
    {!Coordinator.snapshot_source} over its DC's partition stores (the
    [`Snapshot] read fast path). *)

val engine : t -> Mdcc_sim.Engine.t
val network : t -> Mdcc_sim.Network.t
val topology : t -> Mdcc_sim.Topology.t
val config : t -> Config.t
val num_dcs : t -> int

val num_partitions : t -> int
(** Hash partitions of the keyspace ([spec.partitions]). *)

val partition_of : t -> Key.t -> int
(** The partition a key hashes to ([Key.hash key mod num_partitions]). *)

val obs : t -> Mdcc_obs.Obs.t
(** The observability handle every component of this cluster reports to. *)

val coordinator : t -> dc:int -> rank:int -> Coordinator.t
(** The [rank]-th app-server of a data center
    ([0 <= rank < app_servers_per_dc]). *)

val coordinators : t -> Coordinator.t list

val storage_nodes : t -> Storage_node.t list

val replicas : t -> Key.t -> int list
(** Node ids of the key's replica group: the storage node holding the key's
    partition in {e every} data center ([num_dcs] nodes — a 1/[partitions]
    slice of the cluster, not all of it).  Two keys share a replica group
    iff they hash to the same partition. *)

val master_node : t -> Key.t -> int
(** The key's master replica: the node of the key's partition in
    [master_dc_of key]'s data center — always a member of
    [replicas t key]. *)

val load : t -> (Key.t * Value.t) list -> unit
(** Install committed rows (version 1) on every replica — experiment
    setup. *)

val peek : t -> dc:int -> Key.t -> (Value.t * int) option
(** Direct inspection of the committed state at a data center's replica
    (bypasses the network; for tests and invariant checks). *)

val start_maintenance : t -> unit
(** Arm the dangling-transaction scan on every storage node. *)

val fail_dc : t -> int -> unit
(** Kill a data center (all messages to/from it are dropped). *)

val recover_dc : t -> int -> unit

val sync_dc : t -> int -> unit
(** Run the anti-entropy sweep on every storage node of a data center
    (typically right after {!recover_dc}). *)

val fail_node : t -> int -> unit
(** Crash a single node (all its traffic is dropped until restart). *)

val restart_node : t -> int -> unit
(** Restart-with-recovery entry point: bring a crashed node back (its
    committed store is durable and survives the crash) and immediately run
    the peer-directed anti-entropy sweep so it repairs any instance it
    missed while down.  App-server nodes are simply reconnected. *)

val sync_all : t -> unit
(** Peer-directed anti-entropy on every storage node — what a chaos run
    executes after healing all faults so replicas can reconverge. *)
