module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Harness = Mdcc_protocols.Harness

type protocol = Mdcc | Fast | Multi | Qw of int | Two_pc | Megastore

let name = function
  | Mdcc -> "MDCC"
  | Fast -> "Fast"
  | Multi -> "Multi"
  | Qw k -> Printf.sprintf "QW-%d" k
  | Two_pc -> "2PC"
  | Megastore -> "Megastore*"

let commutative = function
  | Mdcc | Qw _ -> true
  | Fast | Multi | Two_pc | Megastore -> false

let make protocol ~seed ~schema ?(partitions = 1) ?(app_servers_per_dc = 1) ?(gamma = 100)
    ?master_dc_of ?obs ~rows () =
  let engine = Engine.create ~seed in
  match protocol with
  | Mdcc | Fast | Multi ->
    let mode =
      match protocol with
      | Mdcc -> Config.Full
      | Fast -> Config.Fast_only
      | Multi | Qw _ | Two_pc | Megastore -> Config.Multi
    in
    let config = Config.make ~mode ~gamma ~replication:5 () in
    let spec = Cluster.Spec.make ~partitions ~app_servers_per_dc ?master_dc_of () in
    let cluster =
      Cluster.create ~engine ~spec ~config ~schema ~ctx:(Mdcc_core.Ctx.make ?obs ()) ()
    in
    Cluster.load cluster rows;
    Cluster.start_maintenance cluster;
    Harness.of_mdcc cluster ~name:(name protocol)
  | Qw k ->
    let fabric = Mdcc_protocols.Fabric.create ~engine ~partitions ~app_servers_per_dc ~schema () in
    let qw = Mdcc_protocols.Quorum_writes.create ~fabric ~w:k in
    let harness = Mdcc_protocols.Quorum_writes.harness qw in
    harness.Harness.load rows;
    harness
  | Two_pc ->
    let fabric = Mdcc_protocols.Fabric.create ~engine ~partitions ~app_servers_per_dc ~schema () in
    let tpc = Mdcc_protocols.Two_phase_commit.create ~fabric in
    let harness = Mdcc_protocols.Two_phase_commit.harness tpc in
    harness.Harness.load rows;
    harness
  | Megastore ->
    (* One entity group: a single partition regardless of the request. *)
    let fabric = Mdcc_protocols.Fabric.create ~engine ~partitions:1 ~app_servers_per_dc ~schema () in
    let ms = Mdcc_protocols.Megastore.create ~fabric () in
    let harness = Mdcc_protocols.Megastore.harness ms in
    harness.Harness.load rows;
    harness
