open Mdcc_storage

type sample = {
  submitted_at : float;
  latency : float;
  outcome : Txn.outcome;
  dc : int;
}

type t = { warmup : float; mutable rev_samples : sample list; mutable rev_all : sample list }

let create ~warmup = { warmup; rev_samples = []; rev_all = [] }

let add t s =
  t.rev_all <- s :: t.rev_all;
  if s.submitted_at >= t.warmup then t.rev_samples <- s :: t.rev_samples

let samples t = List.rev t.rev_samples

let is_commit s = match s.outcome with Txn.Committed -> true | Txn.Aborted _ -> false

let commit_count t = List.length (List.filter is_commit t.rev_samples)

let abort_count t = List.length (List.filter (fun s -> not (is_commit s)) t.rev_samples)

let commit_latencies t =
  List.rev_map (fun s -> s.latency) (List.filter is_commit t.rev_samples)

let throughput t ~duration =
  if duration <= 0.0 then 0.0 else Float.of_int (commit_count t) /. (duration /. 1000.0)

let summary t = Mdcc_util.Stats.summarize (commit_latencies t)

let latency_series t =
  List.rev_map (fun s -> (s.submitted_at, s.latency)) (List.filter is_commit t.rev_all)
