(** One-call construction of any benchmarked system configuration.

    Maps the protocol names of the evaluation section onto concrete
    deployments sharing the same topology, schema and initial data:
    MDCC / Fast / Multi are {!Mdcc_core} configurations; QW-k, 2PC and
    Megastore* come from {!Mdcc_protocols}. *)

open Mdcc_storage

type protocol =
  | Mdcc  (** full protocol: fast ballots + commutative options *)
  | Fast  (** fast ballots, no commutative support *)
  | Multi  (** classic ballots with per-record masters *)
  | Qw of int  (** quorum writes with write quorum k *)
  | Two_pc
  | Megastore

val name : protocol -> string

val commutative : protocol -> bool
(** Should the workload use delta updates?  Only the full MDCC protocol and
    the QW baselines (which apply any update blindly) take deltas; Fast,
    Multi, 2PC and Megastore* get read-modify-write updates, as in the
    paper. *)

val make :
  protocol ->
  seed:int ->
  schema:Schema.t ->
  ?partitions:int ->
  ?app_servers_per_dc:int ->
  ?gamma:int ->
  ?master_dc_of:(Key.t -> int) ->
  ?obs:Mdcc_obs.Obs.t ->
  rows:(Key.t * Value.t) list ->
  unit ->
  Mdcc_protocols.Harness.t
(** Fresh engine + deployment, pre-loaded with [rows].  Megastore* forces a
    single partition (one entity group).  [obs] (MDCC-family protocols
    only) defaults to the calling domain's ambient handle; experiment
    drivers running protocols in parallel pass a fresh handle per run and
    merge afterwards. *)
