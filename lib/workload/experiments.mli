(** Reproductions of every figure/table in the paper's evaluation (§5).

    Each function runs the experiment on the simulated 5-region deployment,
    prints the same rows/series the paper reports (plus the paper's own
    numbers for comparison), and returns the measured data for programmatic
    checks.  [quick:true] shrinks clients/duration for use in tests; the
    default scale is the benchmark scale recorded in EXPERIMENTS.md.

    Every driver takes an optional worker [pool] ({!Mdcc_util.Pool.t}) and
    fans its independent simulations out across it.  Each simulation gets a
    fresh {!Mdcc_obs.Obs.t}; the handles are merged into the caller's
    ambient registry in task order once the batch completes, so metric
    exports are byte-identical with and without a pool.  Omitting [pool]
    runs sequentially through the same code path.

    Correspondence:
    {ul
    {- {!fig3} — TPC-W write-transaction response-time CDF (QW-3, QW-4,
       MDCC, 2PC, Megastore), §5.2.1;}
    {- {!fig4} — TPC-W throughput scale-out (50/100/200 clients), §5.2.2;}
    {- {!fig5} — micro-benchmark response-time CDF (MDCC, Fast, Multi,
       2PC), §5.3.1;}
    {- {!fig6} — commits/aborts vs. hot-spot size, §5.3.2;}
    {- {!fig7} — response-time box plots vs. master locality, §5.3.3;}
    {- {!fig8} — latency time-series across a data-center failure, §5.3.4;}
    {- {!ablation_gamma} — extra ablation: sensitivity to the fast-policy
       window γ (DESIGN.md §5).}} *)

type latency_row = {
  proto : string;
  summary : Mdcc_util.Stats.summary option;
  cdf : (float * float) list;
  commits : int;
  aborts : int;
}

val fig3 : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> latency_row list

val fig4 : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> (string * (int * float) list) list
(** Per protocol: [(concurrent clients, committed txn/s)] at each scale
    point. *)

val fig5 : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> latency_row list

val fig6 : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> (float * (string * int * int) list) list
(** Per hot-spot size: [(protocol, commits, aborts)]. *)

val fig7 : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> (float * (string * Mdcc_util.Stats.boxplot) list) list
(** Per locality fraction: [(protocol, latency box plot)]. *)

val fig8 : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> float * float * Mdcc_util.Stats.series_bucket list
(** Mean commit latency before / after the US-East outage, plus the 10 s
    time-series buckets. *)

val ablation_gamma : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> (int * (int * int * float)) list
(** Per γ: (commits, aborts, median latency) on the contended micro
    workload. *)

val ablation_batching : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> (bool * int * int * float) list
(** Per batching setting: (messages sent, commits, median latency) on the
    uniform micro workload — the message-overhead optimization from the
    paper's conclusion. *)

val ablation_replication : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> (int * int * float) list
(** Per replication factor (3 vs. 5 data centers): (commits, median
    latency).  DESIGN.md's quorum-size ablation: with n=3 the fast quorum
    is all three replicas, so the fast path has no slack. *)

val run_all : ?quick:bool -> ?pool:Mdcc_util.Pool.t -> unit -> unit
(** Every experiment in sequence (the benchmark harness entry point). *)
