open Mdcc_storage

type ctx = {
  rng : Mdcc_util.Rng.t;
  dc : int;
  client_id : int;
  mutable seq : int;
}

type t = {
  name : string;
  prepare : ctx -> Mdcc_protocols.Harness.t -> (Txn.t -> unit) -> unit;
}

let make_ctx ~rng ~dc ~client_id = { rng; dc; client_id; seq = 0 }

let fresh_txid ctx =
  ctx.seq <- ctx.seq + 1;
  Printf.sprintf "c%d-%d" ctx.client_id ctx.seq

let read_many (harness : Mdcc_protocols.Harness.t) ~dc keys k =
  match keys with
  | [] -> k []
  | _ ->
    let remaining = ref (List.length keys) in
    let results = ref [] in
    List.iter
      (fun key ->
        harness.Mdcc_protocols.Harness.read_local ~dc key (fun r ->
            results := (key, r) :: !results;
            decr remaining;
            if !remaining = 0 then k !results))
      keys
