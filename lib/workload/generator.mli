(** Workload generators: how a simulated client builds its next transaction.

    A generator's [prepare] may issue local reads through the harness (the
    optimistic-execution phase: collecting read versions for the write-set)
    and then yields the transaction to submit.  A transaction with an empty
    write-set models a read-only web interaction: the runner executes it but
    does not measure it, matching the paper, which reports response times of
    write transactions only. *)

open Mdcc_storage

type ctx = {
  rng : Mdcc_util.Rng.t;
  dc : int;  (** client's data center *)
  client_id : int;
  mutable seq : int;  (** per-client transaction counter *)
}

type t = {
  name : string;
  prepare : ctx -> Mdcc_protocols.Harness.t -> (Txn.t -> unit) -> unit;
}

val make_ctx : rng:Mdcc_util.Rng.t -> dc:int -> client_id:int -> ctx
(** Fresh client context with [seq = 0] — used by the experiment harness and
    by the chaos runner's scripted clients. *)

val fresh_txid : ctx -> Txn.id
(** Unique id ["c<client>-<seq>"]; increments [seq]. *)

val read_many :
  Mdcc_protocols.Harness.t ->
  dc:int ->
  Key.t list ->
  ((Key.t * (Value.t * int) option) list -> unit) ->
  unit
(** Issue local reads for all keys (in parallel) and continue with the
    results once all have answered. *)
