module Stats = Mdcc_util.Stats
module Table = Mdcc_util.Table
module Rng = Mdcc_util.Rng
module Pool = Mdcc_util.Pool
module Obs = Mdcc_obs.Obs
module Topology = Mdcc_sim.Topology

type latency_row = {
  proto : string;
  summary : Stats.summary option;
  cdf : (float * float) list;
  commits : int;
  aborts : int;
}

type scale = {
  clients : int;
  items : int;
  partitions : int;
  warmup : float;
  duration : float;
  drain : float;
  seed : int;
}

let bench_scale =
  {
    clients = 100;
    items = 10_000;
    partitions = 2;
    warmup = 10_000.0;
    duration = 45_000.0;
    drain = 45_000.0;
    seed = 7;
  }

let quick_scale =
  {
    clients = 15;
    items = 600;
    partitions = 1;
    warmup = 2_000.0;
    duration = 8_000.0;
    drain = 20_000.0;
    seed = 7;
  }

let scale_of quick = if quick then quick_scale else bench_scale

let spec_of scale ~clients_per_dc =
  {
    Runner.clients_per_dc;
    warmup = scale.warmup;
    duration = scale.duration;
    drain = scale.drain;
    seed = scale.seed;
  }

let even_spread ~num_dcs clients =
  let base = clients / num_dcs and extra = clients mod num_dcs in
  Array.init num_dcs (fun dc -> base + if dc < extra then 1 else 0)

let progress fmt = Printf.eprintf (fmt ^^ "\n%!")

(* Run [f ~obs] once per list element, each against a fresh obs handle,
   across the pool (sequential when [pool] is absent).  Afterwards every
   handle is folded into the calling domain's ambient obs {e in task
   order}, so the ambient metrics export ([--metrics-out],
   [bench_metrics.json]) is identical whether the tasks ran on one domain
   or eight.  Tasks must not print; drivers print from the merged results
   after the batch. *)
let par_map ?pool xs ~f =
  let tasks = List.map (fun x -> (x, Obs.create ())) xs in
  let run (x, obs) = f ~obs x in
  let results =
    match pool with
    | Some pool -> Pool.map_list pool tasks ~f:run
    | None -> List.map run tasks
  in
  let ambient = Obs.ambient () in
  List.iter (fun (_, obs) -> Obs.merge ~into:ambient obs) tasks;
  results

(* Split [xs] into consecutive groups of [n] (the last may be shorter) —
   used to regroup a flattened (outer x inner) task list by outer key. *)
let rec chunks n = function
  | [] -> []
  | xs ->
    let rec take k acc rest =
      match rest with
      | _ when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let group, rest = take n [] xs in
    group :: chunks n rest

let row_of_metrics proto metrics =
  {
    proto;
    summary = Metrics.summary metrics;
    cdf = Stats.cdf ~points:20 (Metrics.commit_latencies metrics);
    commits = Metrics.commit_count metrics;
    aborts = Metrics.abort_count metrics;
  }

let median_str = function Some (s : Stats.summary) -> Table.fms s.Stats.p50 | None -> "-"

let p99_str = function Some (s : Stats.summary) -> Table.fms s.Stats.p99 | None -> "-"

let print_latency_table ~title ~paper_medians rows =
  Printf.printf "\n== %s ==\n" title;
  Table.print
    ~headers:[ "protocol"; "median(ms)"; "p90(ms)"; "p99(ms)"; "commits"; "aborts"; "paper median(ms)" ]
    (List.map
       (fun r ->
         let p90 =
           match r.summary with Some s -> Table.fms s.Stats.p90 | None -> "-"
         in
         [
           r.proto;
           median_str r.summary;
           p90;
           p99_str r.summary;
           string_of_int r.commits;
           string_of_int r.aborts;
           (match List.assoc_opt r.proto paper_medians with
           | Some v -> Table.fms v
           | None -> "-");
         ])
       rows);
  (* CDF curves, the figure's actual content. *)
  List.iter
    (fun r ->
      if r.cdf <> [] then begin
        Printf.printf "  CDF %-10s " r.proto;
        List.iter
          (fun (v, f) -> if Float.rem (f *. 100.0) 25.0 < 5.1 then Printf.printf "p%.0f=%.0fms " (f *. 100.0) v)
          r.cdf;
        print_newline ()
      end)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 3: TPC-W response-time CDF                                    *)
(* ------------------------------------------------------------------ *)

let run_tpcw protocol scale ~all_in_dc ~obs =
  let rng = Rng.create ((scale.seed * 17) + 3) in
  let p =
    { Tpcw.default with items = scale.items; commutative = Setup.commutative protocol }
  in
  let rows = Tpcw.rows p ~rng in
  let harness =
    Setup.make protocol ~seed:scale.seed ~schema:Tpcw.schema ~partitions:scale.partitions ~obs
      ~rows ()
  in
  let clients_per_dc =
    match all_in_dc with
    | Some dc -> Array.init 5 (fun d -> if d = dc then scale.clients else 0)
    | None -> even_spread ~num_dcs:5 scale.clients
  in
  Runner.run harness (Tpcw.generator p) (spec_of scale ~clients_per_dc)

let fig3_protocols = [ Setup.Qw 3; Setup.Qw 4; Setup.Mdcc; Setup.Two_pc; Setup.Megastore ]

let fig3_paper_medians =
  [ ("QW-3", 188.0); ("QW-4", 260.0); ("MDCC", 278.0); ("2PC", 668.0); ("Megastore*", 17_810.0) ]

(* The paper plays in Megastore*'s favour: its clients (and master) all
   sit in US-West; everyone else gets geo-distributed clients. *)
let tpcw_all_in_dc = function
  | Setup.Megastore -> Some Topology.us_west
  | Setup.Mdcc | Setup.Fast | Setup.Multi | Setup.Qw _ | Setup.Two_pc -> None

let fig3 ?(quick = false) ?pool () =
  let scale = scale_of quick in
  progress "[fig3] running %d protocols..." (List.length fig3_protocols);
  let rows =
    par_map ?pool fig3_protocols ~f:(fun ~obs protocol ->
        let metrics = run_tpcw protocol scale ~all_in_dc:(tpcw_all_in_dc protocol) ~obs in
        row_of_metrics (Setup.name protocol) metrics)
  in
  print_latency_table ~title:"Figure 3: TPC-W write transaction response times (CDF)"
    ~paper_medians:fig3_paper_medians rows;
  rows

(* ------------------------------------------------------------------ *)
(* Figure 4: TPC-W throughput scale-out                                 *)
(* ------------------------------------------------------------------ *)

let fig4 ?(quick = false) ?pool () =
  let base = scale_of quick in
  let points =
    if quick then [ (10, 400, 1); (20, 800, 2) ]
    else [ (50, 5_000, 2); (100, 10_000, 4); (200, 20_000, 8); (400, 40_000, 16) ]
  in
  (* Flatten protocol x scale-point into one task list so the pool can
     schedule every simulation independently, then regroup per protocol. *)
  let tasks =
    List.concat_map
      (fun protocol -> List.map (fun pt -> (protocol, pt)) points)
      fig3_protocols
  in
  progress "[fig4] running %d protocol/scale points..." (List.length tasks);
  let flat =
    par_map ?pool tasks ~f:(fun ~obs (protocol, (clients, items, partitions)) ->
        let scale = { base with clients; items; partitions } in
        let metrics = run_tpcw protocol scale ~all_in_dc:(tpcw_all_in_dc protocol) ~obs in
        (clients, Metrics.throughput metrics ~duration:scale.duration))
  in
  let results =
    List.map2
      (fun protocol series -> (Setup.name protocol, series))
      fig3_protocols
      (chunks (List.length points) flat)
  in
  Printf.printf "\n== Figure 4: TPC-W committed transactions per second (scale-out) ==\n";
  let headers =
    "protocol" :: List.map (fun (c, _, _) -> Printf.sprintf "%d clients" c) points
  in
  Table.print ~headers
    (List.map
       (fun (name, series) -> name :: List.map (fun (_, tps) -> Table.fms tps) series)
       results);
  Printf.printf
    "  paper shape: QW highest; MDCC within ~10%% of QW-4; 2PC well below; Megastore* lowest and flat.\n";
  results

(* ------------------------------------------------------------------ *)
(* Figure 5: micro-benchmark response-time CDF                          *)
(* ------------------------------------------------------------------ *)

let run_micro protocol scale ~params ~master_dc_of ~gamma ~clients_per_dc ~obs ?events () =
  let rng = Rng.create ((scale.seed * 23) + 5) in
  let rows = Micro.rows params ~rng in
  let harness =
    Setup.make protocol ~seed:scale.seed ~schema:Micro.schema ~partitions:scale.partitions
      ~gamma ?master_dc_of ~obs ~rows ()
  in
  Runner.run ?events harness (Micro.generator params) (spec_of scale ~clients_per_dc)

let fig5_protocols = [ Setup.Mdcc; Setup.Fast; Setup.Multi; Setup.Two_pc ]

let fig5_paper_medians =
  [ ("MDCC", 245.0); ("Fast", 276.0); ("Multi", 388.0); ("2PC", 543.0) ]

let micro_params protocol scale =
  {
    Micro.default with
    num_items = scale.items;
    commutative = Setup.commutative protocol;
  }

let fig5 ?(quick = false) ?pool () =
  let scale = scale_of quick in
  progress "[fig5] running %d protocols..." (List.length fig5_protocols);
  let rows =
    par_map ?pool fig5_protocols ~f:(fun ~obs protocol ->
        let params = micro_params protocol scale in
        let metrics =
          run_micro protocol scale ~params ~master_dc_of:None ~gamma:100
            ~clients_per_dc:(even_spread ~num_dcs:5 scale.clients) ~obs ()
        in
        row_of_metrics (Setup.name protocol) metrics)
  in
  print_latency_table ~title:"Figure 5: micro-benchmark response times (CDF)"
    ~paper_medians:fig5_paper_medians rows;
  rows

(* ------------------------------------------------------------------ *)
(* Figure 6: commits/aborts vs. hot-spot size                           *)
(* ------------------------------------------------------------------ *)

let fig6_protocols = [ Setup.Two_pc; Setup.Multi; Setup.Fast; Setup.Mdcc ]

let fig6 ?(quick = false) ?pool () =
  let scale = scale_of quick in
  let hotspots = if quick then [ 0.02; 0.90 ] else [ 0.02; 0.05; 0.10; 0.20; 0.50; 0.90 ] in
  let tasks =
    List.concat_map (fun h -> List.map (fun p -> (h, p)) fig6_protocols) hotspots
  in
  progress "[fig6] running %d hotspot/protocol points..." (List.length tasks);
  let flat =
    par_map ?pool tasks ~f:(fun ~obs (hotspot, protocol) ->
        (* Finite stock matters here: with a small hot spot the hot items
           approach the demarcation limit, which is what makes the
           commutative path collide and degrade at 2% in the paper. *)
        let params =
          { (micro_params protocol scale) with Micro.hotspot = Some (hotspot, 0.9) }
        in
        let metrics =
          run_micro protocol scale ~params ~master_dc_of:None ~gamma:100
            ~clients_per_dc:(even_spread ~num_dcs:5 scale.clients) ~obs ()
        in
        (Setup.name protocol, Metrics.commit_count metrics, Metrics.abort_count metrics))
  in
  let results =
    List.map2
      (fun h per_proto -> (h, per_proto))
      hotspots
      (chunks (List.length fig6_protocols) flat)
  in
  Printf.printf "\n== Figure 6: commits/aborts for varying hot-spot sizes ==\n";
  Table.print
    ~headers:[ "hotspot"; "protocol"; "commits"; "aborts" ]
    (List.concat_map
       (fun (h, per_proto) ->
         List.map
           (fun (name, c, a) ->
             [ Printf.sprintf "%.0f%%" (h *. 100.0); name; string_of_int c; string_of_int a ])
           per_proto)
       results);
  Printf.printf
    "  paper shape: large hotspot (low conflict): MDCC most commits; 5%%: Fast below Multi; 2%%: Fast & MDCC collapse.\n";
  results

(* ------------------------------------------------------------------ *)
(* Figure 7: response times vs. master locality                         *)
(* ------------------------------------------------------------------ *)

let fig7_protocols = [ Setup.Multi; Setup.Mdcc ]

let fig7 ?(quick = false) ?pool () =
  let scale = scale_of quick in
  let localities = if quick then [ 1.0; 0.2 ] else [ 1.0; 0.8; 0.6; 0.4; 0.2 ] in
  let master_dc_of = Some (Micro.master_dc_of ~num_dcs:5) in
  let tasks =
    List.concat_map (fun l -> List.map (fun p -> (l, p)) fig7_protocols) localities
  in
  progress "[fig7] running %d locality/protocol points..." (List.length tasks);
  let flat =
    par_map ?pool tasks ~f:(fun ~obs (locality, protocol) ->
        let params =
          { (micro_params protocol scale) with Micro.locality = Some locality }
        in
        let metrics =
          run_micro protocol scale ~params ~master_dc_of ~gamma:100
            ~clients_per_dc:(even_spread ~num_dcs:5 scale.clients) ~obs ()
        in
        let latencies = Metrics.commit_latencies metrics in
        let box =
          match Stats.boxplot latencies with
          | Some b -> b
          | None ->
            { Stats.whisker_lo = 0.; q1 = 0.; median = 0.; q3 = 0.; whisker_hi = 0.; outliers = 0 }
        in
        (Setup.name protocol, box))
  in
  let results =
    List.map2
      (fun l per_proto -> (l, per_proto))
      localities
      (chunks (List.length fig7_protocols) flat)
  in
  Printf.printf "\n== Figure 7: response times for varying master locality (boxplots) ==\n";
  Table.print
    ~headers:[ "locality"; "protocol"; "lo"; "q1"; "median"; "q3"; "hi" ]
    (List.concat_map
       (fun (l, per_proto) ->
         List.map
           (fun (name, (b : Stats.boxplot)) ->
             [
               Printf.sprintf "%.0f%%" (l *. 100.0);
               name;
               Table.fms b.Stats.whisker_lo;
               Table.fms b.Stats.q1;
               Table.fms b.Stats.median;
               Table.fms b.Stats.q3;
               Table.fms b.Stats.whisker_hi;
             ])
           per_proto)
       results);
  Printf.printf "  paper shape: Multi beats MDCC only near 100%% locality; MDCC flat across localities.\n";
  results

(* ------------------------------------------------------------------ *)
(* Figure 8: data-center failure                                        *)
(* ------------------------------------------------------------------ *)

let fig8 ?(quick = false) ?pool () =
  let scale = scale_of quick in
  (* All clients in US-West; kill US-East (the closest DC) mid-run. *)
  let total = if quick then 30_000.0 else 240_000.0 in
  let fail_at = total /. 2.0 in
  let scale = { scale with warmup = 0.0; duration = total } in
  progress "[fig8] running the outage timeline...";
  (* One simulation; par_map still threads the fresh-obs-and-merge path so
     the ambient export matches the other figures' accounting. *)
  let metrics =
    match
      par_map ?pool [ () ] ~f:(fun ~obs () ->
          let params = micro_params Setup.Mdcc scale in
          let rng = Rng.create ((scale.seed * 23) + 5) in
          let rows = Micro.rows params ~rng in
          let harness =
            Setup.make Setup.Mdcc ~seed:scale.seed ~schema:Micro.schema
              ~partitions:scale.partitions ~obs ~rows ()
          in
          let clients_per_dc =
            Array.init 5 (fun d -> if d = Topology.us_west then scale.clients else 0)
          in
          let events =
            [ (fail_at, fun () -> harness.Mdcc_protocols.Harness.fail_dc Topology.us_east) ]
          in
          Runner.run ~events harness (Micro.generator params) (spec_of scale ~clients_per_dc))
    with
    | [ m ] -> m
    | _ -> Mdcc_util.Invariant.violate ~context:"Experiments.fig8" "single task returned none"
  in
  let series = Metrics.latency_series metrics in
  let before = List.filter_map (fun (t, l) -> if t < fail_at then Some l else None) series in
  let skip = 2_000.0 in
  let after =
    List.filter_map (fun (t, l) -> if t >= fail_at +. skip then Some l else None) series
  in
  let mean_before = Stats.mean before and mean_after = Stats.mean after in
  let buckets = Stats.time_series ~width:10_000.0 series in
  Printf.printf "\n== Figure 8: response times across a US-East outage at t=%.0fs ==\n"
    (fail_at /. 1000.0);
  Table.print
    ~headers:[ "t(s)"; "txns"; "mean latency(ms)" ]
    (List.map
       (fun (b : Stats.series_bucket) ->
         [
           Printf.sprintf "%.0f" (b.Stats.t_start /. 1000.0);
           string_of_int b.Stats.n;
           Table.fms b.Stats.mean_v;
         ])
       buckets);
  Printf.printf "  mean before failure: %.1f ms, after: %.1f ms (paper: 173.5 -> 211.7 ms)\n"
    mean_before mean_after;
  (mean_before, mean_after, buckets)

(* ------------------------------------------------------------------ *)
(* Ablation: fast-policy γ                                              *)
(* ------------------------------------------------------------------ *)

let ablation_gamma ?(quick = false) ?pool () =
  let scale = scale_of quick in
  let gammas = if quick then [ 0; 100 ] else [ 0; 10; 100; 1000 ] in
  progress "[ablation-gamma] running %d gamma settings..." (List.length gammas);
  let results =
    par_map ?pool gammas ~f:(fun ~obs gamma ->
        let params =
          { (micro_params Setup.Mdcc scale) with
            Micro.hotspot = Some (0.05, 0.9);
            commutative = false (* force collisions so γ matters *) }
        in
        let metrics =
          run_micro Setup.Mdcc scale ~params ~master_dc_of:None ~gamma
            ~clients_per_dc:(even_spread ~num_dcs:5 scale.clients) ~obs ()
        in
        let median =
          match Metrics.summary metrics with Some s -> s.Stats.p50 | None -> 0.0
        in
        (gamma, (Metrics.commit_count metrics, Metrics.abort_count metrics, median)))
  in
  Printf.printf "\n== Ablation: fast-policy window γ (contended, non-commutative) ==\n";
  Table.print
    ~headers:[ "gamma"; "commits"; "aborts"; "median(ms)" ]
    (List.map
       (fun (g, (c, a, m)) -> [ string_of_int g; string_of_int c; string_of_int a; Table.fms m ])
       results);
  results

(* ------------------------------------------------------------------ *)
(* Ablation: replication factor (quorum sizes)                          *)
(* ------------------------------------------------------------------ *)

let ablation_replication ?(quick = false) ?pool () =
  let scale = scale_of quick in
  progress "[ablation-replication] running 2 replication factors...";
  let results =
    par_map ?pool [ 3; 5 ] ~f:(fun ~obs dcs ->
        let params = { (micro_params Setup.Mdcc scale) with Micro.num_dcs = dcs } in
        let rng = Rng.create ((scale.seed * 23) + 5) in
        let rows = Micro.rows params ~rng in
        let engine = Mdcc_sim.Engine.create ~seed:scale.seed in
        let config = Mdcc_core.Config.make ~mode:Mdcc_core.Config.Full ~replication:dcs () in
        (* First [dcs] EC2 regions. *)
        let base = Topology.ec2_five ~nodes_per_dc:scale.partitions () in
        let topology =
          Topology.make
            ~dc_names:(Array.sub base.Topology.dc_names 0 dcs)
            ~rtt:(Array.init dcs (fun i -> Array.sub base.Topology.rtt.(i) 0 dcs))
            ~nodes_per_dc:scale.partitions ()
        in
        let cluster =
          Mdcc_core.Cluster.create ~engine
            ~spec:(Mdcc_core.Cluster.Spec.make ~topology ~partitions:scale.partitions ())
            ~config ~schema:Micro.schema ~ctx:(Mdcc_core.Ctx.make ~obs ()) ()
        in
        Mdcc_core.Cluster.load cluster rows;
        Mdcc_core.Cluster.start_maintenance cluster;
        let harness = Mdcc_protocols.Harness.of_mdcc cluster ~name:"MDCC" in
        let metrics =
          Runner.run harness (Micro.generator params)
            (spec_of scale ~clients_per_dc:(even_spread ~num_dcs:dcs scale.clients))
        in
        let median = match Metrics.summary metrics with Some s -> s.Stats.p50 | None -> 0.0 in
        (dcs, Metrics.commit_count metrics, median))
  in
  Printf.printf "\n== Ablation: replication factor (fast quorum |Q_F|) ==\n";
  Table.print
    ~headers:[ "DCs"; "Qc"; "Qf"; "commits"; "median(ms)" ]
    (List.map
       (fun (dcs, commits, median) ->
         [
           string_of_int dcs;
           string_of_int (Mdcc_paxos.Quorum.classic_size ~n:dcs);
           string_of_int (Mdcc_paxos.Quorum.fast_size ~n:dcs);
           string_of_int commits;
           Table.fms median;
         ])
       results);
  Printf.printf
    "  n=3 needs ALL replicas for a fast quorum (no fast-path slack); n=5 tolerates one slow/failed DC.\n";
  results

(* ------------------------------------------------------------------ *)
(* Ablation: message batching                                           *)
(* ------------------------------------------------------------------ *)

let ablation_batching ?(quick = false) ?pool () =
  let scale = scale_of quick in
  progress "[ablation-batching] running batching on/off...";
  let results =
    par_map ?pool [ false; true ] ~f:(fun ~obs batching ->
        let params = micro_params Setup.Mdcc scale in
        let rng = Rng.create ((scale.seed * 23) + 5) in
        let rows = Micro.rows params ~rng in
        let engine = Mdcc_sim.Engine.create ~seed:scale.seed in
        let config =
          Mdcc_core.Config.make ~mode:Mdcc_core.Config.Full ~batching ~replication:5 ()
        in
        let cluster =
          Mdcc_core.Cluster.create ~engine
            ~spec:(Mdcc_core.Cluster.Spec.make ~partitions:scale.partitions ())
            ~config ~schema:Micro.schema ~ctx:(Mdcc_core.Ctx.make ~obs ()) ()
        in
        Mdcc_core.Cluster.load cluster rows;
        Mdcc_core.Cluster.start_maintenance cluster;
        let harness = Mdcc_protocols.Harness.of_mdcc cluster ~name:"MDCC" in
        let metrics =
          Runner.run harness (Micro.generator params)
            (spec_of scale ~clients_per_dc:(even_spread ~num_dcs:5 scale.clients))
        in
        let sent = (Mdcc_sim.Network.stats (Mdcc_core.Cluster.network cluster)).Mdcc_sim.Network.sent in
        let commits = Metrics.commit_count metrics in
        let median = match Metrics.summary metrics with Some s -> s.Stats.p50 | None -> 0.0 in
        (batching, sent, commits, median))
  in
  Printf.printf "\n== Ablation: message batching (micro, MDCC) ==\n";
  Table.print
    ~headers:[ "batching"; "messages"; "commits"; "msgs/commit"; "median(ms)" ]
    (List.map
       (fun (b, sent, commits, median) ->
         [
           string_of_bool b;
           string_of_int sent;
           string_of_int commits;
           Table.fms (Float.of_int sent /. Float.of_int (Stdlib.max 1 commits));
           Table.fms median;
         ])
       results);
  results

let run_all ?(quick = false) ?pool () =
  ignore (fig3 ~quick ?pool ());
  ignore (fig4 ~quick ?pool ());
  ignore (fig5 ~quick ?pool ());
  ignore (fig6 ~quick ?pool ());
  ignore (fig7 ~quick ?pool ());
  ignore (fig8 ~quick ?pool ());
  ignore (ablation_gamma ~quick ?pool ());
  ignore (ablation_batching ~quick ?pool ());
  ignore (ablation_replication ~quick ?pool ())
