(** Descriptive statistics over latency samples.

    Every experiment in the paper reports one of: a CDF of response times
    (Figures 3 and 5), a throughput count (Figure 4), commit/abort counts
    (Figure 6), box plots (Figure 7) or a time series with means (Figure 8).
    This module computes all of those summaries from raw [float] samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}
(** Five-number-and-then-some summary of a sample set. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile sorted p] is the [p]-th percentile ([0 <= p <= 100]) of an
    array already sorted ascending, using linear interpolation between
    ranks.  An empty array is a caller bug and routes through
    {!Invariant.violate} (raises [Invariant.Violation]). *)

val summarize : float list -> summary option
(** Full summary of a sample list (sorts a private copy); [None] on the
    empty list. *)

val cdf : points:int -> float list -> (float * float) list
(** [cdf ~points samples] is the empirical CDF down-sampled to at most
    [points] [(value, cumulative-fraction)] pairs, suitable for plotting or
    for printing the Figure-3/5 curves. *)

type boxplot = {
  whisker_lo : float;
  q1 : float;
  median : float;
  q3 : float;
  whisker_hi : float;
  outliers : int;
}
(** Tukey box plot: whiskers at the last sample within 1.5 IQR of the box. *)

val boxplot : float list -> boxplot option
(** Box-plot summary of a sample list; [None] on the empty list.  Whiskers
    are the extreme samples still inside the Tukey fences, found by explicit
    first-in-fence scans from each end of the sorted sample. *)

val histogram : buckets:float array -> float list -> int array
(** [histogram ~buckets samples] counts samples per bucket; [buckets] holds
    ascending upper bounds, and a final overflow bucket is appended (the
    result has [Array.length buckets + 1] cells). *)

type series_bucket = { t_start : float; n : int; mean_v : float }
(** One bucket of a time series: window start, sample count, mean value. *)

val time_series : width:float -> (float * float) list -> series_bucket list
(** [time_series ~width samples] buckets [(timestamp, value)] pairs into
    windows of [width] and reports the per-window mean — the Figure 8 view. *)
