type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the advanced state through two
   xor-multiply rounds (constants from the reference implementation). *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = int64 t in
  { state = seed }

(* Keep 62 random bits: a 63-bit value can overflow OCaml's native int
   (63-bit) and come out negative through Int64.to_int. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then Invariant.violate ~context:"Rng.int" "bound must be positive (got %d)" bound;
  nonneg t mod bound

let int_in t lo hi =
  if hi < lo then Invariant.violate ~context:"Rng.int_in" "empty range [%d, %d]" lo hi;
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits -> uniform float in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  bound *. (Float.of_int bits /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. Float.log u

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = Float.exp (mu +. (sigma *. gaussian t))

let pick t arr =
  if Array.length arr = 0 then Invariant.violate ~context:"Rng.pick" "empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct t k bound =
  if k > bound then Invariant.violate ~context:"Rng.sample_distinct" "k (%d) > bound (%d)" k bound;
  (* For the small k used by workloads a rejection loop is cheapest. *)
  let rec draw acc n =
    if n = 0 then acc
    else
      let x = int t bound in
      if List.mem x acc then draw acc n else draw (x :: acc) (n - 1)
  in
  draw [] k
