(** Work-stealing worker pool on OCaml 5 domains.

    A pool of [jobs] domains (the caller participates, so [jobs - 1] are
    spawned) drains indexed task batches by atomic work stealing: every
    participant claims the next unclaimed task index until none remain.
    Results are merged {e in task-index order}, so a parallel {!map} returns
    byte-for-byte what the sequential loop would — the repository's
    determinism contract holds under [--jobs N].

    Each seeded simulation is an independent single-threaded run; domain
    safety only requires that runs not share ambient state.  All per-run
    ambient state in this repo ([Network] trace context, [Trace] sinks,
    [Invariant] sink, the [Obs] ambient handle) lives in [Domain.DLS], so a
    fresh worker domain starts from the same defaults a fresh process
    would.  Lint rule R4 keeps it that way. *)

type t

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the rest of the process; never less than 1. *)

val create : ?jobs:int -> unit -> t
(** Spawn a persistent pool.  [jobs] defaults to {!default_jobs}; [jobs = 1]
    spawns no domains and runs every batch inline.  Violates on [jobs < 1]. *)

val jobs : t -> int

val map : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map t n f] computes [|f 0; ...; f (n-1)|], stealing indices across the
    pool.  [chunk] (default 1) is how many {e consecutive} indices one
    cursor bump claims: coarse chunks cut contention on the shared cursor
    from [n] atomic increments to [n/chunk], at the cost of coarser load
    balancing.  Results, order and exception semantics are independent of
    [chunk] — if any task raises, the exception of the {e lowest} failing
    index is re-raised (with its backtrace) after the batch drains, the
    same exception a sequential loop would have raised first.  Violates on
    [chunk < 1].  Tasks must not share mutable state; each [f i] runs on
    an arbitrary domain. *)

val map_list : t -> ?chunk:int -> 'a list -> f:('a -> 'b) -> 'b list
(** {!map} over a list, preserving order. *)

val shutdown : t -> unit
(** Park and join the worker domains.  The pool is unusable afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (even on exceptions). *)

type stats = { batches : int; tasks : int; stolen : int }
(** Lifetime work accounting: batches submitted, tasks claimed, and the
    subset of tasks claimed by a spawned worker rather than the calling
    domain ([stolen = 0] when [jobs = 1]). *)

val stats : t -> stats
(** Snapshot of the pool's counters.  Read by the profiling layer
    ([lib/obs] depends on this library, so the pool cannot call the
    profiler itself); values only ever increase. *)
