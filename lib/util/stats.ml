type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let mean = function
  | [] -> 0.0
  | samples -> List.fold_left ( +. ) 0.0 samples /. Float.of_int (List.length samples)

let stddev samples =
  match samples with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean samples in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 samples in
    Float.sqrt (sq /. Float.of_int (List.length samples))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Invariant.violate ~context:"Stats.percentile" "empty sample";
  if p <= 0.0 then sorted.(0)
  else if p >= 100.0 then sorted.(n - 1)
  else begin
    let rank = p /. 100.0 *. Float.of_int (n - 1) in
    let lo = Float.to_int (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. Float.of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let sorted_of_list samples =
  let arr = Array.of_list samples in
  Array.sort Float.compare arr;
  arr

let summarize samples =
  let arr = sorted_of_list samples in
  let n = Array.length arr in
  if n = 0 then None
  else
    Some
      {
        count = n;
        mean = mean samples;
        stddev = stddev samples;
        min = arr.(0);
        max = arr.(n - 1);
        p25 = percentile arr 25.0;
        p50 = percentile arr 50.0;
        p75 = percentile arr 75.0;
        p90 = percentile arr 90.0;
        p95 = percentile arr 95.0;
        p99 = percentile arr 99.0;
      }

let cdf ~points samples =
  let arr = sorted_of_list samples in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let steps = Stdlib.min points n in
    List.init steps (fun i ->
        let idx = (i + 1) * n / steps - 1 in
        (arr.(idx), Float.of_int (idx + 1) /. Float.of_int n))
  end

type boxplot = {
  whisker_lo : float;
  q1 : float;
  median : float;
  q3 : float;
  whisker_hi : float;
  outliers : int;
}

(* First sample inside a fence, scanning the sorted array in the given
   direction; [None] when every sample lies beyond the fence. *)
let first_in_fence arr ~indices ~inside =
  let found = ref None in
  (try
     List.iter
       (fun i -> if inside arr.(i) then (found := Some arr.(i); raise Exit))
       indices
   with Exit -> ());
  !found

let boxplot samples =
  let arr = sorted_of_list samples in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let q1 = percentile arr 25.0
    and median = percentile arr 50.0
    and q3 = percentile arr 75.0 in
    let iqr = q3 -. q1 in
    let lo_fence = q1 -. (1.5 *. iqr) and hi_fence = q3 +. (1.5 *. iqr) in
    let outliers = ref 0 in
    Array.iter (fun x -> if x < lo_fence || x > hi_fence then incr outliers) arr;
    (* Whiskers: the extreme samples still inside the fences — lowest
       in-fence sample scanning up, highest scanning down.  If every sample
       is outside a fence (possible only when the IQR collapses relative to
       wild extremes), fall back to the box edge so the whisker stays
       meaningful rather than pointing at an outlier. *)
    let asc = List.init n (fun i -> i) in
    let desc = List.init n (fun i -> n - 1 - i) in
    let whisker_lo =
      match first_in_fence arr ~indices:asc ~inside:(fun x -> x >= lo_fence) with
      | Some x -> x
      | None -> q1
    in
    let whisker_hi =
      match first_in_fence arr ~indices:desc ~inside:(fun x -> x <= hi_fence) with
      | Some x -> x
      | None -> q3
    in
    Some { whisker_lo; q1; median; q3; whisker_hi; outliers = !outliers }
  end

let histogram ~buckets samples =
  let counts = Array.make (Array.length buckets + 1) 0 in
  let place x =
    let rec find i =
      if i >= Array.length buckets then Array.length buckets
      else if x <= buckets.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    counts.(i) <- counts.(i) + 1
  in
  List.iter place samples;
  counts

type series_bucket = { t_start : float; n : int; mean_v : float }

let time_series ~width samples =
  match samples with
  | [] -> []
  | _ ->
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (t, v) ->
        let bucket = Float.to_int (t /. width) in
        let n, sum = try Hashtbl.find tbl bucket with Not_found -> (0, 0.0) in
        Hashtbl.replace tbl bucket (n + 1, sum +. v))
      samples;
    Table.sorted_bindings ~compare:Int.compare tbl
    |> List.map (fun (b, (n, sum)) ->
           { t_start = Float.of_int b *. width; n; mean_v = sum /. Float.of_int n })
