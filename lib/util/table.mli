(** Table utilities: deterministic hashtable iteration, plus minimal
    aligned ASCII tables for the benchmark harness output.

    The iteration helpers exist because [Hashtbl.iter]/[fold] visit
    bindings in hash order — an order no chaos seed controls — and replay
    determinism requires every observable iteration to be a pure function
    of the run's inputs.  `mdcc_lint` rule R1 forbids direct hash-order
    iteration outside this module (and the other designated helpers). *)

val sorted_bindings : ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings of the table, sorted by key ([Stdlib.compare] by default).
    Intended for tables used with [Hashtbl.replace] semantics (at most one
    binding per key). *)

val sorted_iter : ?compare:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [Hashtbl.iter] in sorted key order.  Note the argument order follows
    [Hashtbl.iter]: the visitor first, the table last. *)

val sorted_keys : ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
(** The table's keys in sorted order. *)

val render : headers:string list -> string list list -> string
(** [render ~headers rows] lays the table out with every column padded to its
    widest cell, a separator line under the header, and one row per line. *)

val print : headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fms : float -> string
(** Format a latency in milliseconds with one decimal, e.g. ["277.5"]. *)

val fpct : float -> string
(** Format a fraction as a percentage with one decimal, e.g. ["12.5%"]. *)
