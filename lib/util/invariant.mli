(** Tagged invariant violations for the protocol core.

    A bare [failwith] or [assert false] in a protocol path tears the
    process down anonymously: a chaos replay sees the exception but not
    {e which node's} invariant died, or in what context.  `mdcc_lint`
    rule R3 forbids the bare forms in [lib/core] and [lib/paxos]; this
    module is the replacement.  [violate] raises {!Violation} carrying the
    node id and a context tag, and first hands the violation to an
    optional sink so a chaos run records it in its trace/history before
    the exception unwinds. *)

type t = { node : int option; context : string; message : string }

exception Violation of t

val to_string : t -> string

val violate : ?node:int -> context:string -> ('a, unit, string, 'b) format4 -> 'a
(** Report the violation to the current sink, then raise {!Violation}. *)

val require : ?node:int -> context:string -> bool -> ('a, unit, string, unit) format4 -> 'a
(** [require cond ...] is a no-op when [cond] holds and [violate]
    otherwise. *)

val set_sink : (t -> unit) -> unit
(** Install a hook that observes every violation just before it is
    raised.  The chaos runner points this at its history recorder. *)

val reset_sink : unit -> unit
