(* A work-stealing worker pool on OCaml 5 domains.

   Tasks are indexed [0, count): a batch publishes one shared cursor and
   every participant — the spawned worker domains plus the calling domain —
   steals the next unclaimed index with an atomic fetch-and-add until the
   batch is drained.  Results are written to a slot keyed by task index, so
   the merged output is in task order no matter which domain ran what: a
   parallel [map] returns exactly what the sequential loop would.

   The pool is persistent: domains are spawned once at [create] and parked
   on a condition variable between batches, so per-batch overhead is a
   broadcast, not a spawn.  With [jobs = 1] no domains are spawned at all
   and [map] degenerates to a plain sequential loop. *)

type batch = {
  b_run : int -> unit;  (* never raises; exceptions are captured in slots *)
  b_count : int;
  b_chunk : int;  (* indices claimed per cursor bump; >= 1 *)
  b_next : int Atomic.t;
  b_completed : int Atomic.t;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  mutable batch : batch option;
  mutable generation : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  (* Lifetime stats, read by the profiler layer (lib/obs cannot be a
     dependency here — it already depends on this library).  Atomics: the
     claim loop updates them from every participating domain. *)
  st_batches : int Atomic.t;
  st_tasks : int Atomic.t;
  st_stolen : int Atomic.t;
}

type stats = { batches : int; tasks : int; stolen : int }

let stats t =
  {
    batches = Atomic.get t.st_batches;
    tasks = Atomic.get t.st_tasks;
    stolen = Atomic.get t.st_stolen;
  }

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

(* Claim-and-run until the batch cursor runs past the end: each cursor bump
   claims a contiguous run of [b_chunk] indices, so a coarse chunk turns N
   contended fetch-and-adds into N/chunk.  Whoever completes the last task
   retires the batch and wakes the caller. *)
let drain ?(stolen = false) t b =
  let rec claim () =
    let i0 = Atomic.fetch_and_add b.b_next b.b_chunk in
    if i0 < b.b_count then begin
      let hi = min (i0 + b.b_chunk) b.b_count in
      let claimed = hi - i0 in
      Atomic.fetch_and_add t.st_tasks claimed |> ignore;
      if stolen then Atomic.fetch_and_add t.st_stolen claimed |> ignore;
      for i = i0 to hi - 1 do
        b.b_run i
      done;
      let completed = claimed + Atomic.fetch_and_add b.b_completed claimed in
      if completed = b.b_count then begin
        Mutex.lock t.mutex;
        t.batch <- None;
        Condition.broadcast t.all_done;
        Mutex.unlock t.mutex
      end;
      claim ()
    end
  in
  claim ()

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while
      (not t.stop) && (Option.is_none t.batch || t.generation = !seen)
    do
      Condition.wait t.has_work t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let b = t.batch in
      Mutex.unlock t.mutex;
      (match b with Some b -> drain ~stolen:true t b | None -> ());
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j ->
      if j < 1 then Invariant.violate ~context:"Pool.create" "jobs %d < 1" j;
      j
    | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      batch = None;
      generation = 0;
      stop = false;
      domains = [];
      st_batches = Atomic.make 0;
      st_tasks = Atomic.make 0;
      st_stolen = Atomic.make 0;
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let run_batch t ~count ?(chunk = 1) ~run () =
  if chunk < 1 then
    Invariant.violate ~context:"Pool.run_batch" "chunk %d < 1" chunk;
  if count > 0 then begin
    Atomic.incr t.st_batches;
    if t.jobs = 1 || count = 1 then begin
      Atomic.fetch_and_add t.st_tasks count |> ignore;
      for i = 0 to count - 1 do
        run i
      done
    end
    else begin
      let b =
        {
          b_run = run;
          b_count = count;
          b_chunk = chunk;
          b_next = Atomic.make 0;
          b_completed = Atomic.make 0;
        }
      in
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        Invariant.violate ~context:"Pool.map" "pool already shut down"
      end;
      if Option.is_some t.batch then begin
        Mutex.unlock t.mutex;
        Invariant.violate ~context:"Pool.map" "concurrent map on the same pool"
      end;
      t.batch <- Some b;
      t.generation <- t.generation + 1;
      Condition.broadcast t.has_work;
      Mutex.unlock t.mutex;
      (* The caller steals tasks too: jobs = N means N domains working. *)
      drain t b;
      Mutex.lock t.mutex;
      while Atomic.get b.b_completed < b.b_count do
        Condition.wait t.all_done t.mutex
      done;
      Mutex.unlock t.mutex
    end
  end

type 'a slot = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

let map t ?chunk n f =
  if n < 0 then Invariant.violate ~context:"Pool.map" "negative count %d" n;
  let slots = Array.make n Pending in
  run_batch t ~count:n ?chunk
    ~run:(fun i ->
      slots.(i) <-
        (match f i with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())))
    ();
  (* Re-raise deterministically: the lowest-index failure wins, matching
     what a sequential loop would have raised first. *)
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending | Done _ -> ())
    slots;
  Array.map
    (function
      | Done v -> v
      | Pending | Failed _ ->
        Invariant.violate ~context:"Pool.map" "task slot left unfilled")
    slots

let map_list t ?chunk xs ~f =
  let arr = Array.of_list xs in
  Array.to_list (map t ?chunk (Array.length arr) (fun i -> f arr.(i)))

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
