type t = { node : int option; context : string; message : string }

exception Violation of t

let to_string v =
  Printf.sprintf "invariant violation%s in %s: %s"
    (match v.node with Some n -> Printf.sprintf " at node%d" n | None -> "")
    v.context v.message

let () =
  Printexc.register_printer (function
    | Violation v -> Some (to_string v)
    | _ -> None)

let default_sink (_ : t) = ()

(* The sink is domain-local so parallel chaos runs can each record
   violations into their own history without cross-talk. *)
let sink : (t -> unit) Domain.DLS.key = Domain.DLS.new_key (fun () -> default_sink)

let set_sink f = Domain.DLS.set sink f

let reset_sink () = Domain.DLS.set sink default_sink

let fire v =
  (Domain.DLS.get sink) v;
  raise (Violation v)

let violate ?node ~context fmt =
  Printf.ksprintf (fun message -> fire { node; context; message }) fmt

let require ?node ~context cond fmt =
  Printf.ksprintf
    (fun message -> if not cond then fire { node; context; message })
    fmt
