(* ------------------------------------------------------------------ *)
(* Deterministic hashtable iteration                                   *)
(* ------------------------------------------------------------------ *)

(* [Hashtbl.iter]/[fold] visit bindings in hash order, which depends on the
   table's load history and the runtime's hash function — nothing a chaos
   seed controls.  Every module that needs to walk a hashtable goes through
   these sorted helpers instead (enforced by rule R1 of `mdcc_lint`); this
   module is the designated allowlisted wrapper around [Hashtbl.fold]. *)

let sorted_bindings ?(compare = Stdlib.compare) tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sorted_iter ?compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare tbl)

let sorted_keys ?compare tbl = List.map fst (sorted_bindings ?compare tbl)

let render ~headers rows =
  let all = headers :: rows in
  let cols = List.fold_left (fun m r -> Stdlib.max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- Stdlib.max width.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  let rule = List.mapi (fun i _ -> String.make width.(i) '-') headers in
  emit_row rule;
  List.iter emit_row rows;
  Buffer.contents buf

let print ~headers rows = print_string (render ~headers rows)

let fms v = Printf.sprintf "%.1f" v

let fpct v = Printf.sprintf "%.1f%%" (v *. 100.0)
