open Mdcc_storage
module Loop = Mdcc_runtime_unix.Loop
module Runtime = Mdcc_core.Runtime
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator
module Storage_node = Mdcc_core.Storage_node
module Session = Mdcc_core.Session
module Messages = Mdcc_core.Messages
module Ctx = Mdcc_core.Ctx
module Obs = Mdcc_obs.Obs

type t = {
  sv_loop : Loop.t;
  sv_coord : Coordinator.t;
  sv_obs : Obs.t;
  sv_table : string;
  sv_partitions : int;
  mutable sv_port : int;
  mutable sv_handlers : Handler.t list;
  mutable sv_txid : int;
}

let loop t = t.sv_loop
let port t = t.sv_port
let obs t = t.sv_obs
let coordinator t = t.sv_coord

let next_txid t () =
  t.sv_txid <- t.sv_txid + 1;
  Printf.sprintf "wire%06d" t.sv_txid

(* The memcached-compatible field set, backed by the live registry the
   handlers write into, followed by the MDCC-specific coordinator stats.
   Field names track memcached's ("uptime", "cmd_get", "get_hits", …) so
   existing dashboards/clients can point at this server unchanged. *)
let stats t () =
  let reg = Obs.registry t.sv_obs in
  let c name = string_of_int (Mdcc_obs.Registry.counter reg name) in
  let s = Coordinator.stats t.sv_coord in
  [
    ("uptime", string_of_int (int_of_float (Loop.now t.sv_loop /. 1000.0)));
    ("partitions", string_of_int t.sv_partitions);
    ("uptime_ms", string_of_int (int_of_float (Loop.now t.sv_loop)));
    ("curr_connections", string_of_int (Loop.open_conns t.sv_loop));
    ("total_connections", c "wire.connections");
    ("bytes_read", c "wire.bytes_read");
    ("bytes_written", c "wire.bytes_written");
    ("cmd_get", c "wire.cmd.get");
    ("cmd_set", c "wire.cmd.set");
    ("cmd_cas", c "wire.cmd.cas");
    ("cmd_delete", c "wire.cmd.delete");
    ("get_hits", c "wire.get_hits");
    ("get_misses", c "wire.get_misses");
    ("cas_hits", c "wire.cas_hits");
    ("cas_misses", c "wire.cas_misses");
    ("cas_badval", c "wire.cas_badval");
    ("delete_hits", c "wire.delete_hits");
    ("delete_misses", c "wire.delete_misses");
    ("parser_errors", c "wire.parser_errors");
    ("parser_resyncs", c "wire.parser_resyncs");
    ("fast_commits", string_of_int s.Coordinator.fast_commits);
    ("assisted_commits", string_of_int s.Coordinator.assisted_commits);
    ("aborts", string_of_int s.Coordinator.aborts);
    ("collisions", string_of_int s.Coordinator.collisions);
    ("redirects", string_of_int s.Coordinator.redirects);
    ("timeout_recoveries", string_of_int s.Coordinator.timeout_recoveries);
    ("inflight", string_of_int (Coordinator.inflight t.sv_coord));
  ]

let create ?(seed = 1) ?(nodes = 5) ?(partitions = 1) ?(table = "kv") ?(addr = "127.0.0.1")
    ?(port = 11311) () =
  (* The same node-id layout the simulated cluster uses: storage node
     [dc * partitions + p] is data center [dc]'s replica of hash partition
     [p]; the coordinator (node id [nodes * partitions]) lives in DC 0 and
     reads its partition stores locally. *)
  let storage_n = nodes * partitions in
  let lp =
    Loop.create ~seed ~dc_of:(fun id -> if id < storage_n then id / partitions else 0) ()
  in
  let runtime = Loop.runtime lp in
  let config = Config.make ~replication:nodes () in
  let schema = Mdcc_storage.Schema.create [ { name = table; bounds = []; master_dc = 0 } ] in
  let observ = Obs.create () in
  let ctx = Ctx.make ~obs:observ ~local_nodes:(List.init partitions Fun.id) () in
  (* Key routing: the key's partition replica in every DC — the exact hash
     the simulated cluster's coordinator routes by. *)
  let partition_of key = Key.hash key mod partitions in
  let replicas key =
    let p = partition_of key in
    List.init nodes (fun dc -> (dc * partitions) + p)
  in
  let master_of key =
    let master_dc = Hashtbl.hash (Key.to_string key ^ "#master") mod nodes in
    (master_dc * partitions) + partition_of key
  in
  let storage =
    List.init storage_n (fun i ->
        Storage_node.create ~runtime ~config ~node_id:i ~schema ~replicas ~master_of ~ctx ())
  in
  List.iter Storage_node.start_maintenance storage;
  (* Snapshot source: direct handles on DC 0's partition stores (they are
     in-process), powering the wire protocol's [read <key> snapshot]. *)
  let snapshot =
    {
      Coordinator.snap_read =
        (fun key ->
          Mdcc_storage.Store.read
            (Storage_node.store (List.nth storage (partition_of key)))
            key);
      snap_scan =
        (fun ~table ->
          let rows = ref [] in
          for p = partitions - 1 downto 0 do
            Mdcc_storage.Store.iter (Storage_node.store (List.nth storage p))
              (fun key row ->
                if row.Mdcc_storage.Store.exists && String.equal key.Key.table table then
                  rows :=
                    (key, row.Mdcc_storage.Store.value, row.Mdcc_storage.Store.version)
                    :: !rows)
          done;
          !rows);
    }
  in
  let coord =
    Coordinator.create ~runtime ~config ~node_id:storage_n ~replicas ~master_of ~snapshot
      ~ctx ()
  in
  Loop.set_meter lp
    {
      Loop.w_size = Messages.size_of;
      w_on_send =
        (fun ~src ~dst:_ ~bytes ->
          Obs.incr observ (Printf.sprintf "net.sent.node%02d" src);
          Obs.incr observ ~by:bytes (Printf.sprintf "net.sent_bytes.node%02d" src));
      w_on_deliver =
        (fun ~src:_ ~dst ~bytes ->
          Obs.incr observ (Printf.sprintf "net.recv.node%02d" dst);
          Obs.incr observ ~by:bytes (Printf.sprintf "net.recv_bytes.node%02d" dst));
    };
  let t =
    {
      sv_loop = lp;
      sv_coord = coord;
      sv_obs = observ;
      sv_table = table;
      sv_partitions = partitions;
      sv_port = 0;
      sv_handlers = [];
      sv_txid = 0;
    }
  in
  let bound =
    Loop.listen lp ~addr ~port (fun conn ->
        let session = Session.create coord in
        let backend =
          Backend.of_session ~table:t.sv_table ~stats:(stats t)
            ~partition_of:(fun id -> partition_of (Key.make ~table:t.sv_table ~id))
            ~obs:observ ~next_txid:(next_txid t) session
        in
        let handler =
          Handler.create ~backend
            ~write:(fun s -> Loop.write conn s)
            ~close:(fun () -> Loop.close conn)
            ~obs:observ ()
        in
        t.sv_handlers <- handler :: t.sv_handlers;
        Obs.incr observ "wire.connections";
        {
          Loop.on_data = (fun buf off len -> Handler.on_data handler buf off len);
          on_close =
            (fun () -> t.sv_handlers <- List.filter (fun h -> h != handler) t.sv_handlers);
        })
  in
  t.sv_port <- bound;
  (* Periodic gauge snapshot on the timer wheel: loop/coordinator state
     (connection count, write-queue depths, wheel occupancy, inflight) is
     copied into the registry every quarter second, so a [metrics] scrape
     only renders already-materialized gauges and never walks the
     connection list on the request path. *)
  let rec snapshot () =
    Obs.set_gauge observ "wire.curr_connections" (Loop.open_conns lp);
    Obs.set_gauge observ "wire.buffered_bytes" (Loop.buffered_bytes lp);
    Obs.set_gauge observ "wire.max_conn_buffered" (Loop.max_conn_buffered lp);
    Obs.set_gauge observ "wire.timers_pending" (Loop.timers_pending lp);
    Obs.set_gauge observ "wire.uptime_ms" (int_of_float (Loop.now lp));
    Obs.set_gauge observ "coord.inflight" (Coordinator.inflight coord);
    ignore (Runtime.set_timer runtime ~after:250.0 snapshot)
  in
  Runtime.spawn runtime snapshot;
  t

let run t = Loop.run t.sv_loop

let shutdown ?(grace_ms = 5000.0) t ~on_done =
  Loop.close_listeners t.sv_loop;
  let runtime = Loop.runtime t.sv_loop in
  let deadline = Loop.now t.sv_loop +. grace_ms in
  let rec check () =
    let drained =
      List.for_all Handler.idle t.sv_handlers
      && Coordinator.inflight t.sv_coord = 0
      && Loop.buffered_bytes t.sv_loop = 0
    in
    if drained || Loop.now t.sv_loop >= deadline then on_done ()
    else ignore (Runtime.set_timer runtime ~after:5.0 check)
  in
  Runtime.spawn runtime check
