(** The client-facing wire protocol: memcached's ASCII text protocol with a
    transactional extension.

    The classic verbs map onto single-update MDCC transactions — [set] is a
    read-then-[Physical] write (or [Insert]), [cas] reuses the record
    version as the cas token (MDCC's [vread] {e is} a compare-and-swap
    token), [delete] a versioned tombstone.  Two extensions expose what
    memcached cannot say:

    {ul
    {- [txn] … [commit] — buffer several [set]/[delete]s and commit them as
       {e one} MDCC transaction (atomic multi-record write-set, §2);}
    {- [read <key> \[local|session|majority|snapshot\]] — a [get] with an
       explicit consistency level, surfacing {!Mdcc_core.Session.read}'s
       [?level] ([snapshot] is the zero-message fast path against the
       in-process partition stores).}}

    This module is the pure vocabulary: request values produced by
    {!Parser} and response strings consumed by {!Handler}. *)

type level = [ `Local | `Session | `Majority | `Snapshot ]

type store = {
  s_key : string;
  s_flags : int;
  s_exptime : int;  (** accepted for compatibility; MDCC records don't expire *)
  s_data : string;
  s_noreply : bool;
}
(** A [set]/[cas] payload: header fields plus the data block. *)

type request =
  | Get of { keys : string list; with_cas : bool }  (** [get] / [gets] *)
  | Set of store
  | Cas of { store : store; cas : int }
  | Delete of { key : string; noreply : bool }
  | Read of { key : string; level : level }
  | Txn  (** open a transaction: subsequent writes are buffered *)
  | Commit  (** submit the buffered write-set as one transaction *)
  | Abort  (** discard the buffered write-set *)
  | Stats
  | Stats_detail  (** every live registry entry as [STAT] lines *)
  | Metrics  (** Prometheus text exposition of the live registry *)
  | Http_get of string
      (** [GET <path> HTTP/1.x] — lets [curl]/a scrape job hit
          [/metrics] on the same port; answered with an HTTP response
          and an immediate close *)
  | Version
  | Quit

type hit = { h_key : string; h_flags : int; h_data : string; h_cas : int }
(** One [VALUE] answer; [h_cas] is the MDCC record version. *)

val level_of_string : string -> level option
val level_name : level -> string

(** {1 Response rendering}

    Strings are pre-terminated with [\r\n]; {!render_hit} appends the
    two-line [VALUE] block to a caller-owned buffer so multi-key answers
    build one contiguous write. *)

val render_hit : Buffer.t -> with_cas:bool -> hit -> unit

val end_line : string
val stored : string
val not_stored : string
val exists : string
val not_found : string
val deleted : string

val started : string
(** answer to [txn] *)

val queued : string
(** answer to a buffered write *)

val committed : string

val aborted : string -> string
(** [ABORTED <reason>] *)

val error : string
(** unknown command *)

val client_error : string -> string
val server_error : string -> string
val stat_line : string -> string -> string
val version_line : string -> string

val http_response : status:string -> content_type:string -> string -> string
(** [http_response ~status ~content_type body]: a complete HTTP/1.0
    response ([Connection: close]) carrying [body]. *)

val pp_request : Format.formatter -> request -> unit
(** Canonical one-line rendering, used by the parser tests to pin the
    request stream independently of chunk boundaries. *)
