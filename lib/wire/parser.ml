type item =
  | Req of Protocol.request
  | Bad of string
  | Junk

(* A parsed [set]/[cas] header waiting for its data block. *)
type header = {
  hd_key : string;
  hd_flags : int;
  hd_exptime : int;
  hd_bytes : int;
  hd_noreply : bool;
  hd_cas : int option;  (* [Some tok] for cas *)
}

type mode =
  | Line  (* scanning for the next \n-terminated command line *)
  | Data of header  (* waiting for hd_bytes + \r\n of payload *)
  | Skip_data of { mutable remaining : int }  (* discarding a rejected block *)
  | Skip_line  (* discarding the tail of an overlong line *)

type t = {
  mutable buf : bytes;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* unconsumed bytes from [start] *)
  mutable scan : int;  (* prefix of [len] already searched for \n *)
  out : item Queue.t;
  mutable mode : mode;
  mutable resyncs : int;  (* times we entered a Skip_* recovery mode *)
  max_key : int;
  max_data : int;
  max_line : int;
}

let create ?(max_key = 250) ?(max_data = 1024 * 1024) ?(max_line = 8192) () =
  {
    buf = Bytes.create 4096;
    start = 0;
    len = 0;
    scan = 0;
    out = Queue.create ();
    mode = Line;
    resyncs = 0;
    max_key;
    max_data;
    max_line;
  }

let pending_bytes t = t.len

let resyncs t = t.resyncs

let resync t mode =
  t.resyncs <- t.resyncs + 1;
  t.mode <- mode

let consume t n =
  t.start <- t.start + n;
  t.len <- t.len - n;
  t.scan <- 0;
  if t.len = 0 then t.start <- 0

let ensure_room t n =
  let cap = Bytes.length t.buf in
  if t.start + t.len + n > cap then
    if t.len + n <= cap then begin
      (* reclaim the consumed prefix *)
      Bytes.blit t.buf t.start t.buf 0 t.len;
      t.start <- 0
    end
    else begin
      let cap' = ref (cap * 2) in
      while t.len + n > !cap' do
        cap' := !cap' * 2
      done;
      let buf' = Bytes.create !cap' in
      Bytes.blit t.buf t.start buf' 0 t.len;
      t.buf <- buf';
      t.start <- 0
    end

let emit t item = Queue.add item t.out

(* ------------------------------------------------------------------ *)
(* Command-line parsing                                                *)
(* ------------------------------------------------------------------ *)

let key_ok t k =
  let n = String.length k in
  n > 0 && n <= t.max_key && String.for_all (fun ch -> ch > ' ' && ch <> '\x7f') k

let nonneg_int s =
  match int_of_string_opt s with Some n when n >= 0 -> Some n | Some _ | None -> None

(* [set]/[cas] header: on success switch to Data mode; on a bad header with
   a parseable byte count, skip the announced block so the payload is not
   replayed as commands. *)
let parse_store t ~cas tokens =
  let fail ?bytes msg =
    emit t (Bad msg);
    match bytes with
    | Some b when b > 0 -> resync t (Skip_data { remaining = b + 2 })
    | Some _ | None -> ()
  in
  match tokens with
  | key :: flags :: exptime :: bytes :: rest ->
    let bytes_opt = nonneg_int bytes in
    let cas_tok, rest =
      if cas then match rest with tok :: more -> (Some tok, more) | [] -> (None, [])
      else (None, rest)
    in
    let noreply, junk =
      match rest with
      | [] -> (false, false)
      | [ "noreply" ] -> (true, false)
      | _ -> (false, true)
    in
    if junk then fail ?bytes:bytes_opt "bad command line format"
    else if not (key_ok t key) then fail ?bytes:bytes_opt "bad key"
    else begin
      match (nonneg_int flags, nonneg_int exptime, bytes_opt) with
      | _, _, None -> fail "bad command line format"
      | _, _, Some b when b > t.max_data -> fail ~bytes:b "object too large"
      | Some f, Some e, Some b -> (
        match (cas, cas_tok) with
        | false, _ ->
          t.mode <- Data { hd_key = key; hd_flags = f; hd_exptime = e; hd_bytes = b;
                           hd_noreply = noreply; hd_cas = None }
        | true, Some tok -> (
          match nonneg_int tok with
          | Some c ->
            t.mode <- Data { hd_key = key; hd_flags = f; hd_exptime = e; hd_bytes = b;
                             hd_noreply = noreply; hd_cas = Some c }
          | None -> fail ~bytes:b "bad cas token")
        | true, None -> fail ~bytes:b "bad command line format")
      | _, _, Some b -> fail ~bytes:b "bad command line format"
    end
  | _ -> fail "bad command line format"

let parse_get t keys ~with_cas =
  if keys = [] then emit t (Bad "no keys")
  else if List.for_all (key_ok t) keys then emit t (Req (Get { keys; with_cas }))
  else emit t (Bad "bad key")

let parse_line t line =
  let tokens = List.filter (fun s -> s <> "") (String.split_on_char ' ' line) in
  match tokens with
  | [] -> emit t Junk
  | "get" :: keys -> parse_get t keys ~with_cas:false
  | "gets" :: keys -> parse_get t keys ~with_cas:true
  | "set" :: rest -> parse_store t ~cas:false rest
  | "cas" :: rest -> parse_store t ~cas:true rest
  | [ "delete"; key ] when key_ok t key -> emit t (Req (Delete { key; noreply = false }))
  | [ "delete"; key; "noreply" ] when key_ok t key ->
    emit t (Req (Delete { key; noreply = true }))
  | "delete" :: _ -> emit t (Bad "bad key")
  | [ "read"; key ] when key_ok t key -> emit t (Req (Read { key; level = `Session }))
  | [ "read"; key; lvl ] when key_ok t key -> (
    match Protocol.level_of_string lvl with
    | Some level -> emit t (Req (Read { key; level }))
    | None -> emit t (Bad "bad read level"))
  | "read" :: _ -> emit t (Bad "bad key")
  | [ "txn" ] -> emit t (Req Txn)
  | [ "commit" ] -> emit t (Req Commit)
  | [ "abort" ] -> emit t (Req Abort)
  | [ "stats" ] -> emit t (Req Stats)
  | [ "stats"; "detail" ] -> emit t (Req Stats_detail)
  | [ "metrics" ] -> emit t (Req Metrics)
  (* An HTTP request line on the ASCII port: curl / a Prometheus scrape
     job asking for /metrics.  The handler answers with a full HTTP
     response and closes, so the request's header lines are never
     interpreted as commands. *)
  | [ "GET"; path; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
    emit t (Req (Http_get path))
  | [ "version" ] -> emit t (Req Version)
  | [ "quit" ] -> emit t (Req Quit)
  | _ -> emit t Junk

(* ------------------------------------------------------------------ *)
(* The chunk-boundary-oblivious driver                                 *)
(* ------------------------------------------------------------------ *)

let find_newline t =
  let stop = t.start + t.len in
  let rec go i = if i >= stop then None else if Bytes.get t.buf i = '\n' then Some i else go (i + 1) in
  go (t.start + t.scan)

let rec advance t =
  match t.mode with
  | Line -> (
    match find_newline t with
    | Some abs ->
      let line_len = abs - t.start in
      let line_len = if line_len > 0 && Bytes.get t.buf (abs - 1) = '\r' then line_len - 1 else line_len in
      let line = Bytes.sub_string t.buf t.start line_len in
      consume t (abs - t.start + 1);
      parse_line t line;
      advance t
    | None ->
      t.scan <- t.len;
      if t.len > t.max_line then begin
        emit t (Bad "line too long");
        consume t t.len;
        resync t Skip_line
      end)
  | Data hd ->
    let need = hd.hd_bytes + 2 in
    if t.len >= need then begin
      let ok =
        Bytes.get t.buf (t.start + hd.hd_bytes) = '\r'
        && Bytes.get t.buf (t.start + hd.hd_bytes + 1) = '\n'
      in
      if ok then begin
        let data = Bytes.sub_string t.buf t.start hd.hd_bytes in
        consume t need;
        t.mode <- Line;
        let store =
          { Protocol.s_key = hd.hd_key; s_flags = hd.hd_flags; s_exptime = hd.hd_exptime;
            s_data = data; s_noreply = hd.hd_noreply }
        in
        emit t
          (match hd.hd_cas with
          | None -> Req (Set store)
          | Some cas -> Req (Cas { store; cas }));
        advance t
      end
      else begin
        consume t hd.hd_bytes;
        emit t (Bad "bad data chunk");
        resync t Skip_line;
        advance t
      end
    end
  | Skip_data s ->
    let take = Stdlib.min t.len s.remaining in
    consume t take;
    s.remaining <- s.remaining - take;
    if s.remaining = 0 then begin
      t.mode <- Line;
      advance t
    end
  | Skip_line -> (
    match find_newline t with
    | Some abs ->
      consume t (abs - t.start + 1);
      t.mode <- Line;
      advance t
    | None ->
      consume t t.len)

let feed t b off n =
  if n > 0 then begin
    ensure_room t n;
    Bytes.blit b off t.buf (t.start + t.len) n;
    t.len <- t.len + n;
    advance t
  end

let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

let next t = Queue.take_opt t.out
