(** One MDCC deployment behind one TCP listener.

    {!create} assembles [nodes] storage nodes (one per simulated data
    center — the wire deployment runs every replica in-process, the
    multi-DC latency being the simulator's job) and one coordinator over a
    {!Mdcc_runtime_unix.Loop}, then listens for wire-protocol clients.
    Every connection gets its own {!Mdcc_core.Session} (session
    consistency is per-connection, exactly memcached's client contract)
    feeding a {!Handler} through a {!Backend}.

    Inter-node traffic is metered with {!Mdcc_core.Messages.size_of} — the
    same byte accounting the simulated cluster installs — into the server's
    observability registry ([net.sent.*], [net.recv_bytes.*], …).

    {!shutdown} is the graceful drain: stop accepting, let in-flight
    requests and transactions finish, flush reply queues, then hand
    control back — the [server_cli] wires it to SIGTERM. *)

type t

val create :
  ?seed:int ->
  ?nodes:int ->
  ?partitions:int ->
  ?table:string ->
  ?addr:string ->
  ?port:int ->
  unit ->
  t
(** [nodes] (default 5, minimum 3) is the replication factor (simulated
    data centers); [partitions] (default 1) hash-partitions the keyspace —
    the deployment runs [nodes * partitions] storage nodes laid out exactly
    like the simulated cluster ([dc * partitions + p]), keys route to their
    partition's replica group by the coordinator's hash, and [stats detail]
    carries per-partition request counters.  [port] (default 11311) may be
    0 to bind an ephemeral port — read it back with {!port}.  The value
    table [table] (default ["kv"]) holds records shaped [{data; flags}]. *)

val loop : t -> Mdcc_runtime_unix.Loop.t
val port : t -> int
val obs : t -> Mdcc_obs.Obs.t
val coordinator : t -> Mdcc_core.Coordinator.t

val run : t -> unit
(** Drive the event loop until {!Mdcc_runtime_unix.Loop.request_stop}. *)

val shutdown : ?grace_ms:float -> t -> on_done:(unit -> unit) -> unit
(** Close the listeners, then poll every few milliseconds until every
    connection handler is idle, the coordinator has no in-flight
    transaction and all reply bytes are flushed — or [grace_ms] (default
    5000) elapsed.  [on_done] runs on the loop. *)
