(** Per-connection protocol state machine.

    Requests on one connection execute strictly in arrival order: an
    asynchronous operation marks the handler busy and parsing resumes only
    when its continuation fires, so replies come back in request order and
    a pipelined [set k] … [gets k] always observes the acknowledged write.
    Responses accumulate in one buffer per pump and flush as a single
    write, keeping pipelined bursts to one syscall each way.

    The handler also owns the [txn]/[commit] extension state: between [txn]
    and [commit], [set]/[delete] are buffered (answered [QUEUED]) instead
    of submitted, and [commit] hands the whole write-set to
    {!Backend.t.b_commit} as one MDCC transaction. *)

type t

val create :
  backend:Backend.t ->
  write:(string -> unit) ->
  close:(unit -> unit) ->
  ?obs:Mdcc_obs.Obs.t ->
  unit ->
  t
(** [write] receives ready response bytes; [close] is called after [quit]
    (and after the farewell bytes were handed to [write]).  [obs]
    (default: the domain's ambient handle) receives the live wire
    counters — per-verb requests ([wire.cmd.*]), get/cas/delete
    hits+misses, [wire.bytes_read]/[wire.bytes_written],
    [wire.parser_errors]/[wire.parser_resyncs], commit outcomes — and is
    the registry served by [metrics] / [stats detail].  The server passes
    one shared handle so every connection feeds one exposition. *)

val on_data : t -> bytes -> int -> int -> unit
(** Feed raw bytes from the socket (the loop's scratch buffer; copied). *)

val idle : t -> bool
(** No request executing and no complete unanswered request buffered — the
    per-connection drain predicate for graceful shutdown. *)
