type level = [ `Local | `Session | `Majority | `Snapshot ]

type store = {
  s_key : string;
  s_flags : int;
  s_exptime : int;
  s_data : string;
  s_noreply : bool;
}

type request =
  | Get of { keys : string list; with_cas : bool }
  | Set of store
  | Cas of { store : store; cas : int }
  | Delete of { key : string; noreply : bool }
  | Read of { key : string; level : level }
  | Txn
  | Commit
  | Abort
  | Stats
  | Stats_detail
  | Metrics
  | Http_get of string
  | Version
  | Quit

type hit = { h_key : string; h_flags : int; h_data : string; h_cas : int }

let level_of_string = function
  | "local" -> Some `Local
  | "session" -> Some `Session
  | "majority" -> Some `Majority
  | "snapshot" -> Some `Snapshot
  | _ -> None

let level_name = function
  | `Local -> "local"
  | `Session -> "session"
  | `Majority -> "majority"
  | `Snapshot -> "snapshot"

let render_hit buf ~with_cas h =
  Buffer.add_string buf "VALUE ";
  Buffer.add_string buf h.h_key;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int h.h_flags);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (String.length h.h_data));
  if with_cas then begin
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int h.h_cas)
  end;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf h.h_data;
  Buffer.add_string buf "\r\n"

let end_line = "END\r\n"
let stored = "STORED\r\n"
let not_stored = "NOT_STORED\r\n"
let exists = "EXISTS\r\n"
let not_found = "NOT_FOUND\r\n"
let deleted = "DELETED\r\n"
let started = "STARTED\r\n"
let queued = "QUEUED\r\n"
let committed = "COMMITTED\r\n"
let aborted reason = Printf.sprintf "ABORTED %s\r\n" reason
let error = "ERROR\r\n"
let client_error msg = Printf.sprintf "CLIENT_ERROR %s\r\n" msg
let server_error msg = Printf.sprintf "SERVER_ERROR %s\r\n" msg
let stat_line name value = Printf.sprintf "STAT %s %s\r\n" name value
let version_line v = Printf.sprintf "VERSION %s\r\n" v

(* Minimal HTTP/1.0 response for scrapers that speak GET instead of the
   ASCII protocol (curl, a Prometheus scrape job).  Connection: close —
   the handler tears the connection down after the body, which also stops
   the request's remaining header lines from being parsed as commands. *)
let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let pp_store ppf verb s =
  Format.fprintf ppf "%s %s flags=%d exptime=%d bytes=%d%s%s" verb s.s_key s.s_flags
    s.s_exptime (String.length s.s_data)
    (if s.s_noreply then " noreply" else "")
    (if String.length s.s_data <= 32 then Printf.sprintf " %S" s.s_data else "")

let pp_request ppf = function
  | Get { keys; with_cas } ->
    Format.fprintf ppf "%s %s" (if with_cas then "gets" else "get") (String.concat " " keys)
  | Set s -> pp_store ppf "set" s
  | Cas { store; cas } ->
    pp_store ppf "cas" store;
    Format.fprintf ppf " cas=%d" cas
  | Delete { key; noreply } ->
    Format.fprintf ppf "delete %s%s" key (if noreply then " noreply" else "")
  | Read { key; level } -> Format.fprintf ppf "read %s %s" key (level_name level)
  | Txn -> Format.pp_print_string ppf "txn"
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"
  | Stats -> Format.pp_print_string ppf "stats"
  | Stats_detail -> Format.pp_print_string ppf "stats detail"
  | Metrics -> Format.pp_print_string ppf "metrics"
  | Http_get path -> Format.fprintf ppf "GET %s" path
  | Version -> Format.pp_print_string ppf "version"
  | Quit -> Format.pp_print_string ppf "quit"
