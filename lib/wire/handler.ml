module Obs = Mdcc_obs.Obs
module Registry = Mdcc_obs.Registry
module Prometheus = Mdcc_obs.Prometheus

type t = {
  parser : Parser.t;
  backend : Backend.t;
  write : string -> unit;
  close : unit -> unit;
  obs : Obs.t;
  out : Buffer.t;  (* replies of the current pump, flushed as one write *)
  mutable busy : bool;  (* an async operation owns the connection *)
  mutable txn : Backend.txn_op list option;  (* buffered ops, newest first *)
  mutable closed : bool;
  mutable seen_resyncs : int;  (* parser resyncs already counted *)
}

let create ~backend ~write ~close ?obs () =
  {
    parser = Parser.create ();
    backend;
    write;
    close;
    obs = (match obs with Some o -> o | None -> Obs.ambient ());
    out = Buffer.create 256;
    busy = false;
    txn = None;
    closed = false;
    seen_resyncs = 0;
  }

(* pump runs until the parser is drained or an operation went async, so an
   idle handler never sits on a complete unanswered request. *)
let idle t = not t.busy

let flush t =
  if Buffer.length t.out > 0 then begin
    let s = Buffer.contents t.out in
    Buffer.clear t.out;
    Obs.incr t.obs ~by:(String.length s) "wire.bytes_written";
    t.write s
  end

let emit t s = Buffer.add_string t.out s

let store_reply = function
  | Backend.Stored -> Protocol.stored
  | Backend.Not_stored -> Protocol.not_stored
  | Backend.Exists -> Protocol.exists
  | Backend.Not_found -> Protocol.not_found
  | Backend.Server_busy msg -> Protocol.server_error msg

let delete_reply = function
  | Backend.Stored -> Protocol.deleted
  | Backend.Not_found -> Protocol.not_found
  | Backend.Not_stored | Backend.Exists -> Protocol.server_error "unexpected delete status"
  | Backend.Server_busy msg -> Protocol.server_error msg

(* Per-verb request counters, named so the live [stats] command can map
   them onto memcached's cmd_* / *_hits / *_misses fields. *)
let verb_counter = function
  | Protocol.Get _ -> "wire.cmd.get"
  | Set _ -> "wire.cmd.set"
  | Cas _ -> "wire.cmd.cas"
  | Delete _ -> "wire.cmd.delete"
  | Read _ -> "wire.cmd.read"
  | Txn -> "wire.cmd.txn"
  | Commit -> "wire.cmd.commit"
  | Abort -> "wire.cmd.abort"
  | Stats -> "wire.cmd.stats"
  | Stats_detail -> "wire.cmd.stats"
  | Metrics -> "wire.cmd.metrics"
  | Http_get _ -> "wire.cmd.metrics"
  | Version -> "wire.cmd.version"
  | Quit -> "wire.cmd.quit"

let count_hit t prefix = function
  | Some _ -> Obs.incr t.obs (prefix ^ "_hits")
  | None -> Obs.incr t.obs (prefix ^ "_misses")

let rec pump t =
  if (not t.busy) && not t.closed then
    match Parser.next t.parser with
    | None -> flush t
    | Some Parser.Junk ->
      Obs.incr t.obs "wire.parser_errors";
      emit t Protocol.error;
      pump t
    | Some (Parser.Bad msg) ->
      Obs.incr t.obs "wire.parser_errors";
      emit t (Protocol.client_error msg);
      pump t
    | Some (Parser.Req r) ->
      Obs.incr t.obs (verb_counter r);
      request t r

and finish t =
  t.busy <- false;
  pump t

and request t r =
  match (t.txn, r) with
  (* ---- transaction mode: buffer writes, answer QUEUED ---- *)
  | Some ops, Protocol.Set s ->
    t.txn <- Some (Backend.T_set { key = s.s_key; flags = s.s_flags; data = s.s_data } :: ops);
    emit t Protocol.queued;
    pump t
  | Some ops, Delete { key; _ } ->
    t.txn <- Some (Backend.T_delete key :: ops);
    emit t Protocol.queued;
    pump t
  | Some _, Cas _ ->
    (* the commit-time read chooses vread; a client cas token has no slot *)
    emit t (Protocol.client_error "cas not allowed inside txn");
    pump t
  | Some _, Txn ->
    emit t (Protocol.client_error "txn already open");
    pump t
  | Some ops, Commit ->
    t.txn <- None;
    t.busy <- true;
    t.backend.b_commit (List.rev ops) (fun res ->
        (match res with
        | Ok () ->
          Obs.incr t.obs "wire.commit_ok";
          emit t Protocol.committed
        | Error reason ->
          Obs.incr t.obs "wire.commit_aborted";
          emit t (Protocol.aborted reason));
        finish t)
  | Some _, Abort ->
    t.txn <- None;
    emit t (Protocol.aborted "by client");
    pump t
  | None, (Commit | Abort) ->
    emit t (Protocol.client_error "no open txn");
    pump t
  | None, Txn ->
    t.txn <- Some [];
    emit t Protocol.started;
    pump t
  (* ---- reads: allowed in either mode, never joined to the write-set ---- *)
  | _, Get { keys; with_cas } ->
    t.busy <- true;
    let rec loop = function
      | [] ->
        emit t Protocol.end_line;
        finish t
      | key :: rest ->
        t.backend.b_get key `Session (fun hit ->
            count_hit t "wire.get" hit;
            (match hit with
            | Some h -> Protocol.render_hit t.out ~with_cas h
            | None -> ());
            loop rest)
    in
    loop keys
  | _, Read { key; level } ->
    t.busy <- true;
    t.backend.b_get key level (fun hit ->
        count_hit t "wire.get" hit;
        (match hit with
        | Some h -> Protocol.render_hit t.out ~with_cas:true h
        | None -> ());
        emit t Protocol.end_line;
        finish t)
  (* ---- autocommit writes ---- *)
  | None, Set s ->
    t.busy <- true;
    t.backend.b_set ~key:s.s_key ~flags:s.s_flags ~data:s.s_data (fun st ->
        if not s.s_noreply then emit t (store_reply st);
        finish t)
  | None, Cas { store = s; cas } ->
    t.busy <- true;
    t.backend.b_cas ~key:s.s_key ~flags:s.s_flags ~data:s.s_data ~cas (fun st ->
        (match st with
        | Backend.Stored -> Obs.incr t.obs "wire.cas_hits"
        | Backend.Exists -> Obs.incr t.obs "wire.cas_badval"
        | Backend.Not_found -> Obs.incr t.obs "wire.cas_misses"
        | Backend.Not_stored | Backend.Server_busy _ -> ());
        if not s.s_noreply then emit t (store_reply st);
        finish t)
  | None, Delete { key; noreply } ->
    t.busy <- true;
    t.backend.b_delete key (fun st ->
        (match st with
        | Backend.Stored -> Obs.incr t.obs "wire.delete_hits"
        | Backend.Not_found -> Obs.incr t.obs "wire.delete_misses"
        | Backend.Not_stored | Backend.Exists | Backend.Server_busy _ -> ());
        if not noreply then emit t (delete_reply st);
        finish t)
  (* ---- immediate answers ---- *)
  | _, Stats ->
    List.iter (fun (name, v) -> emit t (Protocol.stat_line name v)) (t.backend.b_stats ());
    emit t Protocol.end_line;
    pump t
  | _, Stats_detail ->
    (* Every live registry entry, verbatim names: the firehose companion
       to the memcached-compatible [stats] field set. *)
    let reg = Obs.registry t.obs in
    List.iter
      (fun (name, v) -> emit t (Protocol.stat_line name (string_of_int v)))
      (Registry.counter_bindings reg);
    List.iter
      (fun (name, v) -> emit t (Protocol.stat_line name (string_of_int v)))
      (Registry.gauge_bindings reg);
    List.iter
      (fun (name, samples) ->
        emit t
          (Protocol.stat_line (name ^ ".count")
             (string_of_int (List.length samples))))
      (Registry.hist_bindings reg);
    emit t Protocol.end_line;
    pump t
  | _, Metrics ->
    emit t (Prometheus.render (Obs.registry t.obs));
    emit t Protocol.end_line;
    pump t
  | _, Http_get path ->
    (* Answer and close: the HTTP request's header lines are still in the
       parser, and closing first keeps them from echoing as ERRORs. *)
    (match path with
    | "/metrics" ->
      emit t
        (Protocol.http_response ~status:"200 OK"
           ~content_type:"text/plain; version=0.0.4"
           (Prometheus.render (Obs.registry t.obs)))
    | _ ->
      emit t
        (Protocol.http_response ~status:"404 Not Found" ~content_type:"text/plain"
           "not found\n"));
    t.closed <- true;
    flush t;
    t.close ()
  | _, Version ->
    emit t (Protocol.version_line "mdcc-wire/1");
    pump t
  | _, Quit ->
    t.closed <- true;
    flush t;
    t.close ()

let on_data t buf off len =
  if not t.closed then begin
    Obs.incr t.obs ~by:len "wire.bytes_read";
    Parser.feed t.parser buf off len;
    let r = Parser.resyncs t.parser in
    if r > t.seen_resyncs then begin
      Obs.incr t.obs ~by:(r - t.seen_resyncs) "wire.parser_resyncs";
      t.seen_resyncs <- r
    end;
    pump t
  end
