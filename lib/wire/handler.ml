type t = {
  parser : Parser.t;
  backend : Backend.t;
  write : string -> unit;
  close : unit -> unit;
  out : Buffer.t;  (* replies of the current pump, flushed as one write *)
  mutable busy : bool;  (* an async operation owns the connection *)
  mutable txn : Backend.txn_op list option;  (* buffered ops, newest first *)
  mutable closed : bool;
}

let create ~backend ~write ~close () =
  {
    parser = Parser.create ();
    backend;
    write;
    close;
    out = Buffer.create 256;
    busy = false;
    txn = None;
    closed = false;
  }

(* pump runs until the parser is drained or an operation went async, so an
   idle handler never sits on a complete unanswered request. *)
let idle t = not t.busy

let flush t =
  if Buffer.length t.out > 0 then begin
    let s = Buffer.contents t.out in
    Buffer.clear t.out;
    t.write s
  end

let emit t s = Buffer.add_string t.out s

let store_reply = function
  | Backend.Stored -> Protocol.stored
  | Backend.Not_stored -> Protocol.not_stored
  | Backend.Exists -> Protocol.exists
  | Backend.Not_found -> Protocol.not_found
  | Backend.Server_busy msg -> Protocol.server_error msg

let delete_reply = function
  | Backend.Stored -> Protocol.deleted
  | Backend.Not_found -> Protocol.not_found
  | Backend.Not_stored | Backend.Exists -> Protocol.server_error "unexpected delete status"
  | Backend.Server_busy msg -> Protocol.server_error msg

let rec pump t =
  if (not t.busy) && not t.closed then
    match Parser.next t.parser with
    | None -> flush t
    | Some Parser.Junk ->
      emit t Protocol.error;
      pump t
    | Some (Parser.Bad msg) ->
      emit t (Protocol.client_error msg);
      pump t
    | Some (Parser.Req r) -> request t r

and finish t =
  t.busy <- false;
  pump t

and request t r =
  match (t.txn, r) with
  (* ---- transaction mode: buffer writes, answer QUEUED ---- *)
  | Some ops, Protocol.Set s ->
    t.txn <- Some (Backend.T_set { key = s.s_key; flags = s.s_flags; data = s.s_data } :: ops);
    emit t Protocol.queued;
    pump t
  | Some ops, Delete { key; _ } ->
    t.txn <- Some (Backend.T_delete key :: ops);
    emit t Protocol.queued;
    pump t
  | Some _, Cas _ ->
    (* the commit-time read chooses vread; a client cas token has no slot *)
    emit t (Protocol.client_error "cas not allowed inside txn");
    pump t
  | Some _, Txn ->
    emit t (Protocol.client_error "txn already open");
    pump t
  | Some ops, Commit ->
    t.txn <- None;
    t.busy <- true;
    t.backend.b_commit (List.rev ops) (fun res ->
        (match res with
        | Ok () -> emit t Protocol.committed
        | Error reason -> emit t (Protocol.aborted reason));
        finish t)
  | Some _, Abort ->
    t.txn <- None;
    emit t (Protocol.aborted "by client");
    pump t
  | None, (Commit | Abort) ->
    emit t (Protocol.client_error "no open txn");
    pump t
  | None, Txn ->
    t.txn <- Some [];
    emit t Protocol.started;
    pump t
  (* ---- reads: allowed in either mode, never joined to the write-set ---- *)
  | _, Get { keys; with_cas } ->
    t.busy <- true;
    let rec loop = function
      | [] ->
        emit t Protocol.end_line;
        finish t
      | key :: rest ->
        t.backend.b_get key `Session (fun hit ->
            (match hit with
            | Some h -> Protocol.render_hit t.out ~with_cas h
            | None -> ());
            loop rest)
    in
    loop keys
  | _, Read { key; level } ->
    t.busy <- true;
    t.backend.b_get key level (fun hit ->
        (match hit with
        | Some h -> Protocol.render_hit t.out ~with_cas:true h
        | None -> ());
        emit t Protocol.end_line;
        finish t)
  (* ---- autocommit writes ---- *)
  | None, Set s ->
    t.busy <- true;
    t.backend.b_set ~key:s.s_key ~flags:s.s_flags ~data:s.s_data (fun st ->
        if not s.s_noreply then emit t (store_reply st);
        finish t)
  | None, Cas { store = s; cas } ->
    t.busy <- true;
    t.backend.b_cas ~key:s.s_key ~flags:s.s_flags ~data:s.s_data ~cas (fun st ->
        if not s.s_noreply then emit t (store_reply st);
        finish t)
  | None, Delete { key; noreply } ->
    t.busy <- true;
    t.backend.b_delete key (fun st ->
        if not noreply then emit t (delete_reply st);
        finish t)
  (* ---- immediate answers ---- *)
  | _, Stats ->
    List.iter (fun (name, v) -> emit t (Protocol.stat_line name v)) (t.backend.b_stats ());
    emit t Protocol.end_line;
    pump t
  | _, Version ->
    emit t (Protocol.version_line "mdcc-wire/1");
    pump t
  | _, Quit ->
    t.closed <- true;
    flush t;
    t.close ()

let on_data t buf off len =
  if not t.closed then begin
    Parser.feed t.parser buf off len;
    pump t
  end
