(** The storage face of the wire layer: asynchronous key/value operations
    over an MDCC {!Mdcc_core.Session}.

    A backend is a record of continuation-passing operations so {!Handler}
    is testable against a synchronous fake, and so the same handler runs
    over the simulated runtime (deterministic tests) and the socket runtime
    (the real server) without change.

    {!of_session} implements the memcached verbs on MDCC semantics:
    values live in one table as [{data : Str; flags : Int}] records; [set]
    reads at [`Session] level to learn the current version and submits a
    [Physical] (or [Insert]) single-update transaction, retrying a bounded
    number of times on write-write conflict; [cas] submits with
    [vread = cas] — the record version {e is} the cas token, so [EXISTS] is
    exactly MDCC's conflict abort; [commit] turns the buffered ops into one
    multi-record write-set and submits it once, surfacing an abort to the
    client instead of retrying (the transactional client owns its retry
    policy). *)

type status =
  | Stored  (** the write (or delete) took effect *)
  | Not_stored  (** rejected by a value constraint *)
  | Exists  (** cas token stale — someone else wrote first *)
  | Not_found
  | Server_busy of string  (** retries exhausted / replicas unreachable *)

type txn_op =
  | T_set of { key : string; flags : int; data : string }
  | T_delete of string

type t = {
  b_get : string -> Protocol.level -> (Protocol.hit option -> unit) -> unit;
  b_set : key:string -> flags:int -> data:string -> (status -> unit) -> unit;
  b_cas : key:string -> flags:int -> data:string -> cas:int -> (status -> unit) -> unit;
  b_delete : string -> (status -> unit) -> unit;
  b_commit : txn_op list -> ((unit, string) result -> unit) -> unit;
  b_stats : unit -> (string * string) list;
}

val of_session :
  ?table:string ->
  ?retries:int ->
  ?stats:(unit -> (string * string) list) ->
  ?partition_of:(string -> int) ->
  ?obs:Mdcc_obs.Obs.t ->
  next_txid:(unit -> Mdcc_storage.Txn.id) ->
  Mdcc_core.Session.t ->
  t
(** [table] (default ["kv"]) must be declared in the cluster's schema;
    [retries] (default 8) bounds conflict retries of the single-key verbs;
    [next_txid] must yield server-unique transaction ids.  When both
    [partition_of] (the server's key-to-partition hash — the same routing
    the coordinator applies) and [obs] are given, every verb is also
    tallied per partition ([wire.partition.pNN.reads] / [.writes]), which
    [stats detail] then exposes. *)
