open Mdcc_storage
module Session = Mdcc_core.Session
module Obs = Mdcc_obs.Obs

type status = Stored | Not_stored | Exists | Not_found | Server_busy of string

type txn_op =
  | T_set of { key : string; flags : int; data : string }
  | T_delete of string

type t = {
  b_get : string -> Protocol.level -> (Protocol.hit option -> unit) -> unit;
  b_set : key:string -> flags:int -> data:string -> (status -> unit) -> unit;
  b_cas : key:string -> flags:int -> data:string -> cas:int -> (status -> unit) -> unit;
  b_delete : string -> (status -> unit) -> unit;
  b_commit : txn_op list -> ((unit, string) result -> unit) -> unit;
  b_stats : unit -> (string * string) list;
}

let encode ~flags ~data = Value.of_list [ ("data", Str data); ("flags", Int flags) ]

let decode key (value, version) =
  let data =
    match Value.get value "data" with
    | Some (Str s) -> s
    | Some (Int i) -> string_of_int i
    | None -> ""
  in
  let flags = match Value.get value "flags" with Some (Int f) -> f | _ -> 0 in
  { Protocol.h_key = key; h_flags = flags; h_data = data; h_cas = version }

let reason_of = function
  | Txn.Conflict -> "conflict"
  | Txn.Constraint_violation -> "constraint violation"
  | Txn.Node_unreachable -> "replicas unreachable"
  | Txn.Recovered_abort -> "recovered as aborted"

let of_session ?(table = "kv") ?(retries = 8) ?(stats = fun () -> []) ?partition_of ?obs
    ~next_txid session =
  let key_of id = Key.make ~table ~id in
  (* Per-partition request accounting, when the deployment is partitioned:
     [partition_of] is the server's key hash — the same routing the
     coordinator applies — so [stats detail] shows where the keyspace load
     actually lands ([wire.partition.p00.reads], [.writes], ...). *)
  let tally verb id =
    match (partition_of, obs) with
    | Some pf, Some o -> Obs.incr o (Printf.sprintf "wire.partition.p%02d.%s" (pf id) verb)
    | _, _ -> ()
  in
  let get id level k =
    tally "reads" id;
    Session.read ~level session (key_of id) (fun found -> k (Option.map (decode id) found))
  in
  let submit1 key update k =
    Session.submit session (Txn.make ~id:(next_txid ()) ~updates:[ (key, update) ]) k
  in
  (* Read-modify-write with bounded conflict retries: each retry re-reads at
     [`Session] level, so it observes the version that beat it. *)
  let set ~key ~flags ~data k =
    tally "writes" key;
    let value = encode ~flags ~data in
    let rec attempt budget =
      Session.read ~level:`Session session (key_of key) (fun cur ->
          let update =
            match cur with
            | Some (_, vread) -> Update.Physical { vread; value }
            | None -> Update.Insert value
          in
          submit1 (key_of key) update (function
            | Txn.Committed -> k Stored
            | Txn.Aborted Txn.Constraint_violation -> k Not_stored
            | Txn.Aborted (Txn.Conflict | Txn.Recovered_abort) when budget > 0 ->
              attempt (budget - 1)
            | Txn.Aborted reason -> k (Server_busy (reason_of reason))))
    in
    attempt retries
  in
  let cas ~key ~flags ~data ~cas k =
    tally "writes" key;
    Session.read ~level:`Session session (key_of key) (function
      | None -> k Not_found
      | Some (_, version) when version <> cas -> k Exists
      | Some _ ->
        submit1 (key_of key) (Update.Physical { vread = cas; value = encode ~flags ~data })
          (function
          | Txn.Committed -> k Stored
          | Txn.Aborted Txn.Conflict -> k Exists
          | Txn.Aborted Txn.Constraint_violation -> k Not_stored
          | Txn.Aborted reason -> k (Server_busy (reason_of reason))))
  in
  let delete key k =
    tally "writes" key;
    let rec attempt budget =
      Session.read ~level:`Session session (key_of key) (function
        | None -> k Not_found
        | Some (_, vread) ->
          submit1 (key_of key) (Update.Delete { vread }) (function
            | Txn.Committed -> k Stored
            | Txn.Aborted (Txn.Conflict | Txn.Recovered_abort) when budget > 0 ->
              attempt (budget - 1)
            | Txn.Aborted reason -> k (Server_busy (reason_of reason))))
    in
    attempt retries
  in
  (* One multi-record transaction.  [Txn.make] rejects duplicate keys, so
     collapse the buffered ops to the last write per key first; reads then
     resolve each key's current version to build the write-set. *)
  let commit ops k =
    List.iter
      (fun op ->
        tally "writes" (match op with T_set { key; _ } -> key | T_delete key -> key))
      ops;
    let module S = Set.Make (String) in
    let _, deduped =
      List.fold_left
        (fun (seen, acc) op ->
          let key = match op with T_set { key; _ } -> key | T_delete key -> key in
          if S.mem key seen then (seen, acc) else (S.add key seen, op :: acc))
        (S.empty, []) (List.rev ops)
    in
    let rec resolve acc = function
      | [] ->
        if acc = [] then k (Ok ())
        else
          Session.submit session
            (Txn.make ~id:(next_txid ()) ~updates:(List.rev acc))
            (function
            | Txn.Committed -> k (Ok ())
            | Txn.Aborted reason -> k (Error (reason_of reason)))
      | T_set { key; flags; data } :: rest ->
        let value = encode ~flags ~data in
        Session.read ~level:`Session session (key_of key) (fun cur ->
            let update =
              match cur with
              | Some (_, vread) -> Update.Physical { vread; value }
              | None -> Update.Insert value
            in
            resolve ((key_of key, update) :: acc) rest)
      | T_delete key :: rest ->
        Session.read ~level:`Session session (key_of key) (function
          | None -> resolve acc rest  (* deleting an absent record: a no-op *)
          | Some (_, vread) -> resolve ((key_of key, Update.Delete { vread }) :: acc) rest)
    in
    resolve [] deduped
  in
  { b_get = get; b_set = set; b_cas = cas; b_delete = delete; b_commit = commit;
    b_stats = stats }
