(** Incremental, allocation-conscious parser for the ASCII protocol.

    Bytes arrive in arbitrary chunks ({!feed}); complete items come out of
    {!next}.  The parser owns one growable byte buffer — chunk boundaries
    never force re-parsing, consumed prefixes are reclaimed by compaction,
    and the only per-request allocations are the line/data strings handed
    to the caller.

    Malformed input never raises and never desynchronizes the stream: a bad
    command line yields {!item.Bad} (rendered as [CLIENT_ERROR]) and
    parsing resumes at the next line; an oversized or mis-terminated data
    block is skipped byte-for-byte first, so the declared payload is not
    reinterpreted as commands. *)

type t

type item =
  | Req of Protocol.request
  | Bad of string  (** answer with [CLIENT_ERROR <msg>] *)
  | Junk  (** unknown command — answer with [ERROR] *)

val create : ?max_key:int -> ?max_data:int -> ?max_line:int -> unit -> t
(** Limits: key length (default 250, memcached's), data-block bytes
    (default 1 MiB), command-line length (default 8 KiB). *)

val feed : t -> bytes -> int -> int -> unit
(** [feed t buf off len] ingests a chunk.  The bytes are copied; the caller
    may reuse [buf] immediately (it is the event loop's scratch buffer). *)

val feed_string : t -> string -> unit

val next : t -> item option
(** The next complete item, or [None] until more bytes arrive. *)

val pending_bytes : t -> int
(** Buffered bytes not yet parsed into items (diagnostics). *)

val resyncs : t -> int
(** Times the parser entered a skip-and-resynchronize recovery (bad
    header with a declared data block, mis-terminated chunk, overlong
    line) — the [metrics] resync counter's source. *)
