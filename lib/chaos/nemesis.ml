open Mdcc_core
module Engine = Mdcc_sim.Engine
module Net = Mdcc_sim.Network
module Topology = Mdcc_sim.Topology
module Rng = Mdcc_util.Rng

type fault =
  | Crash_node of int
  | Restart_node of int
  | Fail_dc of int
  | Recover_dc of int
  | Cut_link of { src : int; dst : int }
  | Heal_link of { src : int; dst : int }
  | Isolate_dc_inbound of int
  | Heal_dc_links of int
  | Drop_spike of float
  | Latency_surge of float
  | Heal_all

let label = function
  | Crash_node n -> Printf.sprintf "crash node%d" n
  | Restart_node n -> Printf.sprintf "restart node%d" n
  | Fail_dc dc -> Printf.sprintf "fail dc%d" dc
  | Recover_dc dc -> Printf.sprintf "recover dc%d" dc
  | Cut_link { src; dst } -> Printf.sprintf "cut link %d->%d" src dst
  | Heal_link { src; dst } -> Printf.sprintf "heal link %d->%d" src dst
  | Isolate_dc_inbound dc -> Printf.sprintf "isolate dc%d inbound" dc
  | Heal_dc_links dc -> Printf.sprintf "heal dc%d links" dc
  | Drop_spike p -> Printf.sprintf "drop probability %.2f" p
  | Latency_surge f -> Printf.sprintf "latency x%.1f" f
  | Heal_all -> "heal all"

let apply cluster fault =
  let net = Cluster.network cluster in
  let topo = Cluster.topology cluster in
  match fault with
  | Crash_node n -> Cluster.fail_node cluster n
  | Restart_node n -> Cluster.restart_node cluster n
  | Fail_dc dc -> Cluster.fail_dc cluster dc
  | Recover_dc dc ->
    Cluster.recover_dc cluster dc;
    Cluster.sync_dc cluster dc
  | Cut_link { src; dst } -> Net.cut_link net ~src ~dst
  | Heal_link { src; dst } -> Net.heal_link net ~src ~dst
  | Isolate_dc_inbound dc ->
    List.iter
      (fun dst ->
        List.iter
          (fun src -> if Topology.dc_of topo src <> dc then Net.cut_link net ~src ~dst)
          (Topology.all_nodes topo))
      (Topology.nodes_in_dc topo dc)
  | Heal_dc_links dc ->
    List.iter
      (fun inside ->
        List.iter
          (fun other ->
            Net.heal_link net ~src:other ~dst:inside;
            Net.heal_link net ~src:inside ~dst:other)
          (Topology.all_nodes topo))
      (Topology.nodes_in_dc topo dc)
  | Drop_spike p -> Net.set_drop_probability net p
  | Latency_surge f -> Net.set_latency_factor net f
  | Heal_all -> Net.heal_all net

type schedule = (float * fault) list

let install ?history cluster schedule =
  let engine = Cluster.engine cluster in
  List.iter
    (fun (time, fault) ->
      ignore
        (Engine.schedule_at engine ~at:time (fun () ->
             (match history with
             | Some h -> History.record h (History.Fault { time = Engine.now engine; label = label fault })
             | None -> ());
             apply cluster fault)))
    schedule

let schedule_to_string schedule =
  match schedule with
  | [] -> "  (no faults)"
  | _ ->
    String.concat "\n"
      (List.map (fun (time, fault) -> Printf.sprintf "  %8.1f  %s" time (label fault)) schedule)

type scenario = {
  sc_name : string;
  sc_partitions : int;
  sc_build : rng:Rng.t -> cluster:Cluster.t -> horizon:float -> schedule;
}

(* A fault window inside [0, horizon]: start in the first part of the run,
   end before the horizon so the heal phase gets exercised too. *)
let window rng ~horizon =
  let start = (0.1 +. Rng.float rng 0.3) *. horizon in
  let stop = start +. ((0.2 +. Rng.float rng 0.3) *. horizon) in
  (start, Float.min stop (0.95 *. horizon))

let storage_node_ids cluster =
  List.map Storage_node.node_id (Cluster.storage_nodes cluster)

let clean =
  { sc_name = "clean"; sc_partitions = 1;
    sc_build = (fun ~rng:_ ~cluster:_ ~horizon:_ -> []) }

let dc_outage =
  {
    sc_name = "dc_outage";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let dc = Rng.int rng (Cluster.num_dcs cluster) in
        let start, stop = window rng ~horizon in
        [ (start, Fail_dc dc); (stop, Recover_dc dc) ]);
  }

let asymmetric_partition =
  {
    sc_name = "asymmetric_partition";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let dc = Rng.int rng (Cluster.num_dcs cluster) in
        let start, stop = window rng ~horizon in
        [ (start, Isolate_dc_inbound dc); (stop, Heal_dc_links dc) ]);
  }

let drop_spike =
  {
    sc_name = "drop_spike";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let base = Net.base_drop_probability (Cluster.network cluster) in
        let start, stop = window rng ~horizon in
        [ (start, Drop_spike 0.15); (stop, Drop_spike base) ]);
  }

let latency_surge =
  {
    sc_name = "latency_surge";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster:_ ~horizon ->
        let start, stop = window rng ~horizon in
        [ (start, Latency_surge 6.0); (stop, Latency_surge 1.0) ]);
  }

let master_failover =
  {
    sc_name = "master_failover";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let nodes = Array.of_list (storage_node_ids cluster) in
        let victim = Rng.pick rng nodes in
        let start, stop = window rng ~horizon in
        [ (start, Crash_node victim); (stop, Restart_node victim) ]);
  }

let random_faults =
  {
    sc_name = "random";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let dcs = Cluster.num_dcs cluster in
        let nodes = Array.of_list (storage_node_ids cluster) in
        let base = Net.base_drop_probability (Cluster.network cluster) in
        let pair () =
          let start, stop = window rng ~horizon in
          match Rng.int rng 6 with
          | 0 ->
            let dc = Rng.int rng dcs in
            [ (start, Fail_dc dc); (stop, Recover_dc dc) ]
          | 1 ->
            let dc = Rng.int rng dcs in
            [ (start, Isolate_dc_inbound dc); (stop, Heal_dc_links dc) ]
          | 2 ->
            let v = Rng.pick rng nodes in
            [ (start, Crash_node v); (stop, Restart_node v) ]
          | 3 ->
            [ (start, Drop_spike (0.05 +. Rng.float rng 0.15)); (stop, Drop_spike base) ]
          | 4 -> [ (start, Latency_surge (2.0 +. Rng.float rng 6.0)); (stop, Latency_surge 1.0) ]
          | _ ->
            let src = Rng.pick rng nodes and dst = Rng.pick rng nodes in
            [ (start, Cut_link { src; dst }); (stop, Heal_link { src; dst }) ]
        in
        let k = 2 + Rng.int rng 3 in
        List.concat (List.init k (fun _ -> pair ()))
        |> List.sort (fun (a, _) (b, _) -> Float.compare a b));
  }

(* --- divergence-provoking scenarios ---------------------------------- *)

(* Tearing a coordinator's visibility broadcast needs node ids on both
   sides: the rank-0 app server of a DC (chaos clients submit through
   rank 0) and the storage nodes of a remote DC. *)
let app_node cluster dc = Coordinator.node_id (Cluster.coordinator cluster ~dc ~rank:0)

let storage_in_dc cluster dc =
  let topo = Cluster.topology cluster in
  List.filter (fun n -> Topology.dc_of topo n = dc) (storage_node_ids cluster)

let two_distinct_dcs rng cluster =
  let dcs = Cluster.num_dcs cluster in
  let d1 = Rng.int rng dcs in
  (d1, (d1 + 1 + Rng.int rng (dcs - 1)) mod dcs)

(* Cut app(d1)->storage(d2) and app(d2)->storage(d1) for the window.
   Commits still reach a fast quorum (4 of 5 with the torn replica cut
   off), but that replica hears neither the proposal nor the visibility
   broadcast.  On commutative delta keys this manufactures equal-version
   divergence — same version, different applied sets — which version
   catch-up cannot see and only the applied-set exchange repairs. *)
let torn_broadcast_schedule ~start ~stop cluster (d1, d2) =
  let cuts =
    List.concat_map
      (fun (app_dc, dst_dc) ->
        let a = app_node cluster app_dc in
        List.map (fun n -> (a, n)) (storage_in_dc cluster dst_dc))
      [ (d1, d2); (d2, d1) ]
  in
  List.map (fun (src, dst) -> (start, Cut_link { src; dst })) cuts
  @ List.map (fun (src, dst) -> (stop, Heal_link { src; dst })) cuts

let torn_broadcast =
  {
    sc_name = "torn_broadcast";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let pair = two_distinct_dcs rng cluster in
        let start, stop = window rng ~horizon in
        torn_broadcast_schedule ~start ~stop cluster pair);
  }

let torn_broadcast_crash =
  {
    sc_name = "torn_broadcast_crash";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let (d1, _) as pair = two_distinct_dcs rng cluster in
        let start, stop = window rng ~horizon in
        let sched = torn_broadcast_schedule ~start ~stop cluster pair in
        (* Mid-window app-server crash: d1's in-flight transactions lose
           their coordinator and must finish via dangling recovery, on top
           of the torn visibility. *)
        let mid = start +. ((stop -. start) /. 2.0) in
        let a = app_node cluster d1 in
        sched @ [ (mid, Crash_node a); (stop, Restart_node a) ]);
  }

let partition_heal =
  {
    sc_name = "partition_heal";
    sc_partitions = 1;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let d1, d2 = two_distinct_dcs rng cluster in
        let topo = Cluster.topology cluster in
        let n1 = Topology.nodes_in_dc topo d1 and n2 = Topology.nodes_in_dc topo d2 in
        let start, stop = window rng ~horizon in
        let pairs =
          List.concat_map (fun a -> List.concat_map (fun b -> [ (a, b); (b, a) ]) n2) n1
        in
        List.map (fun (src, dst) -> (start, Cut_link { src; dst })) pairs
        @ List.map (fun (src, dst) -> (stop, Heal_link { src; dst })) pairs);
  }

(* --- shard-scoped scenarios ------------------------------------------ *)

(* Partitions cut *between* shards, not between whole data centers: one
   hash-partition's replica group degrades while every other group keeps
   its fast path — exactly the asymmetry a cross-partition transaction has
   to commit (or abort) atomically across.  All three demand a
   multi-partition cluster ([sc_partitions] = 4); the runner widens the
   deployment accordingly. *)

(* Replica of partition [p] in data center [dc] (the node-id layout the
   cluster guarantees). *)
let shard_replica cluster ~dc ~p = (dc * Cluster.num_partitions cluster) + p

let shard_replicas cluster p =
  List.init (Cluster.num_dcs cluster) (fun dc -> shard_replica cluster ~dc ~p)

(* Cut one random app server off one random partition group, both
   directions.  Its cross-partition transactions have one write-set key
   wedged (no proposal can reach the group) while sibling keys in other
   groups learn immediately — the decision must wait, and recovery for the
   wedged key must not tear the transaction. *)
let shard_partition =
  {
    sc_name = "shard_partition";
    sc_partitions = 4;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let p = Rng.int rng (Cluster.num_partitions cluster) in
        let dc = Rng.int rng (Cluster.num_dcs cluster) in
        let a = app_node cluster dc in
        let start, stop = window rng ~horizon in
        let pairs =
          List.concat_map (fun n -> [ (a, n); (n, a) ]) (shard_replicas cluster p)
        in
        List.map (fun (src, dst) -> (start, Cut_link { src; dst })) pairs
        @ List.map (fun (src, dst) -> (stop, Heal_link { src; dst })) pairs);
  }

(* Crash one partition group's replicas in two distinct DCs: that group
   drops below the fast quorum (3 of 5 live) and must commit through
   collisions/classic recovery, while every other group still has all 5 —
   per-group quorum asymmetry under one transaction. *)
let shard_outage =
  {
    sc_name = "shard_outage";
    sc_partitions = 4;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let p = Rng.int rng (Cluster.num_partitions cluster) in
        let d1, d2 = two_distinct_dcs rng cluster in
        let start, stop = window rng ~horizon in
        [
          (start, Crash_node (shard_replica cluster ~dc:d1 ~p));
          (start, Crash_node (shard_replica cluster ~dc:d2 ~p));
          (stop, Restart_node (shard_replica cluster ~dc:d1 ~p));
          (stop, Restart_node (shard_replica cluster ~dc:d2 ~p));
        ]);
  }

(* Flap a single replica of one partition group: crash/restart it three
   times inside the window.  Each restart runs the peer-directed
   anti-entropy sweep against its own group only — repair must stay
   shard-scoped and still converge. *)
let shard_flap =
  {
    sc_name = "shard_flap";
    sc_partitions = 4;
    sc_build =
      (fun ~rng ~cluster ~horizon ->
        let p = Rng.int rng (Cluster.num_partitions cluster) in
        let dc = Rng.int rng (Cluster.num_dcs cluster) in
        let victim = shard_replica cluster ~dc ~p in
        let start, stop = window rng ~horizon in
        let flaps = 3 in
        let slot = (stop -. start) /. float_of_int (2 * flaps) in
        List.concat
          (List.init flaps (fun i ->
               let down = start +. (float_of_int (2 * i) *. slot) in
               let up = down +. slot in
               [ (down, Crash_node victim); (up, Restart_node victim) ])));
  }

let matrix =
  [ clean; dc_outage; asymmetric_partition; drop_spike; latency_surge; master_failover;
    random_faults; torn_broadcast; torn_broadcast_crash; partition_heal; shard_partition;
    shard_outage; shard_flap ]

let scenario_named name = List.find_opt (fun s -> String.equal s.sc_name name) matrix
