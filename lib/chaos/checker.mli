(** History-based safety checking.

    Given a recorded {!Mdcc_core.History.t}, decide whether the execution
    was correct.  Checked invariants:

    {ol
    {- {b atomic-visibility} — a transaction's options are executed
       everywhere or voided everywhere: no replica may execute an option of
       a transaction another replica (or the coordinator) aborted;}
    {- {b lost-update} — at most one committed physical/delete writer per
       (key, read-version): two committed transactions that both updated the
       same record from the same version overwrote each other;}
    {- {b decision-agreement} — a transaction decided more than once (a
       recovery coordinator may re-announce a dangling transaction's fate)
       is decided the {e same} way every time: a cross-partition
       transaction whose groups settle on different outcomes is a torn
       commit;}
    {- {b cross-partition-atomicity} — atomic visibility attributed to
       hash-partition groups: a transaction whose write-set spans two or
       more partitions must not commit in one group while voided in
       another, nor leak an execution into any group after an abort (inert
       when [partition_of] maps every key to one group);}
    {- {b read-committed} — every version a committed transaction read
       (the [vread] of its physical/guard updates) is a version that
       actually existed: installed by some committed option, or the initial
       load;}
    {- {b serializability} — the conflict graph of committed {e classic}
       transactions (those whose updates all carry read versions: physical
       updates, deletes, read guards — no commutative deltas) is acyclic,
       using the per-key version order for write-write, write-read and
       read-write (anti-dependency) edges;}
    {- {b demarcation} — every committed state a replica passed through
       satisfies the schema's value constraints ([stock >= 0] at every
       acceptor-visible state, §3.4.2).}}

    The checker is pure: it never looks at live cluster state, so it can be
    run on histories from any source — including the hand-written known-bad
    histories in [test/t_chaos.ml]. *)

open Mdcc_storage

type violation = { invariant : string; detail : string }

val check :
  ?bounds:(Key.t -> Schema.bound list) ->
  ?partition_of:(Key.t -> int) ->
  Mdcc_core.History.t ->
  violation list
(** All violations found, in invariant order.  [bounds] supplies the value
    constraints for the demarcation check (default: none); [partition_of]
    is the deployment's key-to-partition hash for the cross-partition
    check (default: everything in one group, which disables it). *)

val violation_to_string : violation -> string
