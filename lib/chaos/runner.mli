(** The chaos runner: one seeded, fully deterministic fault-injection run.

    A run builds the paper's 5-DC cluster with a {!Mdcc_core.History.t}
    recorder wired in, drives a scripted workload of concurrent transactions
    from random data centers, injects the scenario's fault schedule, then
    heals every fault, lets recovery and anti-entropy quiesce the system,
    and finally checks the recorded history ({!Checker}) plus the live final
    state (replica convergence, delta accounting, liveness).

    Everything — workload, fault schedule, network jitter, message drops —
    derives from [spec.seed], so a violating seed reproduces its violation
    exactly, including with tracing enabled. *)

open Mdcc_core

type workload =
  | Deltas  (** commutative decrements against [stock >= 0] (demarcation) *)
  | Rmw  (** serializable read-modify-writes with read guards *)
  | Mixed  (** both, on disjoint key sets *)

type spec = {
  seed : int;
  scenario : Nemesis.scenario;
  workload : workload;
  txns : int;  (** transactions submitted over the horizon *)
  items : int;  (** pre-loaded stock rows *)
  partitions : int;
      (** keyspace hash partitions; the run uses
          [max partitions scenario.sc_partitions], so shard scenarios get a
          multi-partition cluster even at the default *)
  stock : int;  (** initial stock per item *)
  horizon : float;  (** ms: submission + fault window; healing starts here *)
  drain : float;  (** ms after the horizon for recovery to quiesce *)
  mode : Config.mode;
  fast_quorum_override : int option;  (** plant a protocol bug (see Config) *)
  capture_trace : bool;  (** record the interleaved protocol trace *)
}

val spec :
  ?workload:workload ->
  ?txns:int ->
  ?items:int ->
  ?partitions:int ->
  ?stock:int ->
  ?horizon:float ->
  ?drain:float ->
  ?mode:Config.mode ->
  ?fast_quorum_override:int ->
  ?capture_trace:bool ->
  seed:int ->
  scenario:Nemesis.scenario ->
  unit ->
  spec
(** Defaults: [Mixed] workload, 40 txns, 4 items, 1 partition, stock 60,
    10 s horizon, 60 s drain, [Full] mode, no override, no trace. *)

val effective_partitions : spec -> int
(** [max spec.partitions spec.scenario.sc_partitions] — the partition count
    the run actually deploys. *)

type report = {
  r_seed : int;
  r_scenario : string;
  r_schedule : Nemesis.schedule;  (** the generated fault schedule *)
  r_submitted : int;
  r_committed : int;
  r_aborted : int;
  r_undecided : int;  (** submitted but never decided (liveness violation) *)
  r_events : int;  (** history length *)
  r_violations : Checker.violation list;
  r_trace : string list;  (** captured trace lines (empty unless requested) *)
  r_obs : Mdcc_obs.Obs.t;
      (** the run's private observability handle (spans enabled): protocol
          counters plus per-transaction causal span trees *)
}

val run : spec -> report

val ok : report -> bool
(** No violations. *)

val report_to_string : ?verbose:bool -> report -> string
(** One line per run; [verbose] adds the fault schedule, violations, and the
    run's metrics snapshot and span trees (so a violating seed's report is a
    complete diagnosis artifact). *)

val report_to_json : report -> string
(** Self-contained JSON object (seed, scenario, schedule, counters,
    violations, trace, metrics snapshot, span trees). *)
