open Mdcc_storage
module History = Mdcc_core.History
module Table = Mdcc_util.Table

type violation = { invariant : string; detail : string }

let violation_to_string v = Printf.sprintf "[%s] %s" v.invariant v.detail

(* Everything the checker knows about one transaction id. *)
type info = {
  mutable txn : Txn.t option;  (* from Submitted *)
  mutable decided : Txn.outcome option;  (* first Decided *)
  mutable decisions : Txn.outcome list;  (* every Decided, event order *)
  mutable applied : (int * Key.t * int * Value.t) list;  (* node, key, version, value *)
  mutable voided : (int * Key.t) list;  (* node, key *)
}

let gather history =
  let tbl : (Txn.id, info) Hashtbl.t = Hashtbl.create 256 in
  let get txid =
    match Hashtbl.find_opt tbl txid with
    | Some i -> i
    | None ->
      let i = { txn = None; decided = None; decisions = []; applied = []; voided = [] } in
      Hashtbl.add tbl txid i;
      i
  in
  List.iter
    (fun ev ->
      match ev with
      | History.Submitted { txn; _ } -> (get txn.Txn.id).txn <- Some txn
      | History.Decided { txid; outcome; _ } ->
        let i = get txid in
        i.decisions <- i.decisions @ [ outcome ];
        if i.decided = None then i.decided <- Some outcome
      | History.Applied { node; txid; key; version; value; _ } ->
        let i = get txid in
        i.applied <- (node, key, version, value) :: i.applied
      | History.Voided { node; txid; key; _ } ->
        let i = get txid in
        i.voided <- (node, key) :: i.voided
      | History.Fault _ -> ())
    (History.events history);
  tbl

(* Did the transaction commit?  Prefer the coordinator's decision; fall back
   to visibility evidence for transactions finished by recovery alone. *)
let committed info =
  match info.decided with
  | Some Txn.Committed -> true
  | Some (Txn.Aborted _) -> false
  | None -> info.applied <> []

(* The read-set of a submitted transaction: (key, version) pairs carried as
   the vread of its physical / delete / read-guard updates. *)
let reads_of (txn : Txn.t) =
  List.filter_map
    (fun (key, up) ->
      match up with
      | Update.Physical { vread; _ } | Update.Delete { vread } | Update.Read_guard { vread } ->
        Some (key, vread)
      | Update.Insert _ | Update.Delta _ -> None)
    txn.Txn.updates

(* ------------------------------------------------------------------ *)
(* 1. Atomic visibility                                                *)
(* ------------------------------------------------------------------ *)

let check_atomic_visibility tbl =
  let out = ref [] in
  Table.sorted_iter ~compare:String.compare
    (fun txid info ->
      let add detail = out := { invariant = "atomic-visibility"; detail } :: !out in
      if info.applied <> [] && info.voided <> [] then
        add
          (Printf.sprintf "txn %s executed at %s but voided at %s" txid
             (String.concat "," (List.map (fun (n, _, _, _) -> Printf.sprintf "node%d" n) info.applied))
             (String.concat "," (List.map (fun (n, _) -> Printf.sprintf "node%d" n) info.voided)))
      else begin
        match info.decided with
        | Some Txn.Committed when info.voided <> [] ->
          add (Printf.sprintf "txn %s decided Committed but voided at a replica" txid)
        | Some (Txn.Aborted _) when info.applied <> [] ->
          add (Printf.sprintf "txn %s decided Aborted but executed at a replica" txid)
        | Some _ | None -> ()
      end)
    tbl;
  !out

(* ------------------------------------------------------------------ *)
(* 1b. Decision agreement                                              *)
(* ------------------------------------------------------------------ *)

(* One transaction, one fate.  A transaction can be decided more than once
   (a recovery coordinator re-deriving the outcome of a dangling
   transaction is allowed to re-announce it), but every announcement must
   agree: a cross-partition transaction whose groups settle on different
   outcomes is exactly the torn commit sharding must never produce. *)
let check_decision_agreement tbl =
  let out = ref [] in
  Table.sorted_iter ~compare:String.compare
    (fun txid info ->
      let commits = List.exists (fun o -> o = Txn.Committed) info.decisions in
      let aborts =
        List.exists (function Txn.Aborted _ -> true | Txn.Committed -> false) info.decisions
      in
      if commits && aborts then
        out :=
          {
            invariant = "decision-agreement";
            detail =
              Printf.sprintf "txn %s decided both Committed and Aborted (%s)" txid
                (String.concat ", "
                   (List.map (Format.asprintf "%a" Txn.pp_outcome) info.decisions));
          }
          :: !out)
    tbl;
  !out

(* ------------------------------------------------------------------ *)
(* 1c. Cross-partition atomicity                                       *)
(* ------------------------------------------------------------------ *)

(* Atomic visibility, attributed to partition groups.  For a transaction
   whose write-set spans two or more hash partitions, visibility evidence
   must point the same way in every group: a commit applied by partition A
   but voided by partition B (or an abort that leaked an execution into
   any group) is a torn cross-partition transaction, reported with the
   groups named so a replay starts at the right replica set.  With one
   partition (the default [partition_of]) the check is inert — the plain
   atomic-visibility invariant already covers single-group mixes. *)
let check_cross_partition ~partition_of tbl =
  let out = ref [] in
  let module IS = Set.Make (Int) in
  let groups_of keys = IS.elements (IS.of_list (List.map partition_of keys)) in
  let render ps =
    String.concat "," (List.map (Printf.sprintf "p%02d") ps)
  in
  Table.sorted_iter ~compare:String.compare
    (fun txid info ->
      match info.txn with
      | Some txn when List.length (groups_of (List.map fst txn.Txn.updates)) >= 2 ->
        let applied_in = groups_of (List.map (fun (_, k, _, _) -> k) info.applied) in
        let voided_in = groups_of (List.map snd info.voided) in
        let add detail =
          out := { invariant = "cross-partition-atomicity"; detail } :: !out
        in
        if committed info && voided_in <> [] then
          add
            (Printf.sprintf
               "committed txn %s torn across groups: applied in [%s], voided in [%s]" txid
               (render applied_in) (render voided_in))
        else if (not (committed info)) && applied_in <> [] then
          add
            (Printf.sprintf "aborted txn %s leaked execution into group(s) [%s]" txid
               (render applied_in))
      | Some _ | None -> ())
    tbl;
  !out

(* ------------------------------------------------------------------ *)
(* 2. Lost updates                                                     *)
(* ------------------------------------------------------------------ *)

let check_lost_updates tbl =
  (* (key, vread) -> committed physical/delete writers *)
  let writers : (Key.t * int, Txn.id list) Hashtbl.t = Hashtbl.create 64 in
  Table.sorted_iter ~compare:String.compare
    (fun txid info ->
      match info.txn with
      | Some txn when committed info ->
        List.iter
          (fun (key, up) ->
            match up with
            | Update.Physical { vread; _ } | Update.Delete { vread } ->
              let k = (key, vread) in
              let existing = Option.value (Hashtbl.find_opt writers k) ~default:[] in
              Hashtbl.replace writers k (txid :: existing)
            | Update.Insert _ | Update.Delta _ | Update.Read_guard _ -> ())
          txn.Txn.updates
      | Some _ | None -> ())
    tbl;
  List.fold_left
    (fun acc ((key, vread), txids) ->
      match txids with
      | [] | [ _ ] -> acc
      | _ ->
        {
          invariant = "lost-update";
          detail =
            Printf.sprintf "%d committed writers of %s from version %d: %s" (List.length txids)
              (Key.to_string key) vread
              (String.concat ", " (List.sort String.compare txids));
        }
        :: acc)
    [] (Table.sorted_bindings writers)

(* ------------------------------------------------------------------ *)
(* 3. Read-committed visibility                                        *)
(* ------------------------------------------------------------------ *)

let check_read_committed tbl =
  (* Versions that ever existed per key: the initial load (<= 1), every
     version a replica committed (Applied events), and the version every
     committed physical/delete installed (vread + 1) — the latter covers
     replicas whose execution was subsumed by a re-base. *)
  let valid : (Key.t, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let mark key v =
    let set =
      match Hashtbl.find_opt valid key with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.add valid key s;
        s
    in
    Hashtbl.replace set v ()
  in
  let is_valid key v =
    v <= 1
    || (match Hashtbl.find_opt valid key with Some s -> Hashtbl.mem s v | None -> false)
  in
  Table.sorted_iter ~compare:String.compare
    (fun _ info ->
      List.iter (fun (_, key, version, _) -> mark key version) info.applied;
      match info.txn with
      | Some txn when committed info ->
        List.iter
          (fun (key, up) ->
            match up with
            | Update.Physical { vread; _ } | Update.Delete { vread } -> mark key (vread + 1)
            | Update.Insert _ | Update.Delta _ | Update.Read_guard _ -> ())
          txn.Txn.updates
      | Some _ | None -> ())
    tbl;
  let out = ref [] in
  Table.sorted_iter ~compare:String.compare
    (fun txid info ->
      match info.txn with
      | Some txn when committed info ->
        List.iter
          (fun (key, vread) ->
            if not (is_valid key vread) then
              out :=
                {
                  invariant = "read-committed";
                  detail =
                    Printf.sprintf "txn %s read %s at version %d, which never existed" txid
                      (Key.to_string key) vread;
                }
                :: !out)
          (reads_of txn)
      | Some _ | None -> ())
    tbl;
  !out

(* ------------------------------------------------------------------ *)
(* 4. Serializability: conflict-graph acyclicity                       *)
(* ------------------------------------------------------------------ *)

(* Classic (non-commutative) transaction: all updates carry read versions,
   so its position in the per-key version order is well defined. *)
let is_classic (txn : Txn.t) =
  List.for_all
    (fun (_, up) ->
      match up with
      | Update.Physical _ | Update.Delete _ | Update.Read_guard _ | Update.Insert _ -> true
      | Update.Delta _ -> false)
    txn.Txn.updates

let check_serializability tbl =
  (* Participants: committed classic transactions with known write-sets. *)
  let participants : (Txn.id * Txn.t * info) list =
    List.fold_left
      (fun acc (txid, info) ->
        match info.txn with
        | Some txn when committed info && is_classic txn -> (txid, txn, info) :: acc
        | Some _ | None -> acc)
      [] (Table.sorted_bindings ~compare:String.compare tbl)
  in
  (* Writers per key with the version each write installed. *)
  let writers : (Key.t, (Txn.id * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_writer key txid wver =
    match Hashtbl.find_opt writers key with
    | Some l -> l := (txid, wver) :: !l
    | None -> Hashtbl.add writers key (ref [ (txid, wver) ])
  in
  List.iter
    (fun (txid, txn, info) ->
      List.iter
        (fun (key, up) ->
          match up with
          | Update.Physical { vread; _ } | Update.Delete { vread } -> add_writer key txid (vread + 1)
          | Update.Insert _ ->
            (* Position an insert by the version a replica committed it at. *)
            let versions =
              List.filter_map
                (fun (_, k, v, _) -> if Key.equal k key then Some v else None)
                info.applied
            in
            let wver = match versions with [] -> 1 | vs -> List.fold_left min max_int vs in
            add_writer key txid wver
          | Update.Delta _ | Update.Read_guard _ -> ())
        txn.Txn.updates)
    participants;
  (* Conflict-graph edges from the version order. *)
  let edges : (Txn.id, Txn.id list ref) Hashtbl.t = Hashtbl.create 64 in
  let edge a b =
    if not (String.equal a b) then begin
      match Hashtbl.find_opt edges a with
      | Some l -> if not (List.mem b !l) then l := b :: !l
      | None -> Hashtbl.add edges a (ref [ b ])
    end
  in
  List.iter (fun (txid, _, _) -> if not (Hashtbl.mem edges txid) then Hashtbl.add edges txid (ref [])) participants;
  (* WW: per-key version order. *)
  Table.sorted_iter
    (fun _ l ->
      let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) !l in
      let rec link = function
        | (a, _) :: ((b, _) :: _ as tl) ->
          edge a b;
          link tl
        | [ _ ] | [] -> ()
      in
      link sorted)
    writers;
  (* WR and RW: a reader of (key, v) comes after every writer that installed
     a version <= v and before every writer that installed a version > v. *)
  List.iter
    (fun (txid, txn, _) ->
      List.iter
        (fun (key, v) ->
          match Hashtbl.find_opt writers key with
          | None -> ()
          | Some l ->
            List.iter
              (fun (w, wver) -> if wver <= v then edge w txid else edge txid w)
              !l)
        (reads_of txn))
    participants;
  (* Cycle detection (iterative-enough DFS; histories are small). *)
  let color : (Txn.id, int) Hashtbl.t = Hashtbl.create 64 in
  let cycle = ref None in
  let rec dfs path node =
    if !cycle = None then begin
      match Hashtbl.find_opt color node with
      | Some 1 ->
        (* Back edge: the segment of the path (recent-first) from the caller
           back to [node] is the cycle. *)
        let rec seg = function
          | x :: _ when String.equal x node -> [ x ]
          | x :: tl -> x :: seg tl
          | [] -> []
        in
        cycle := Some ((List.rev (seg path) @ [ node ]))
      | Some _ -> ()
      | None ->
        Hashtbl.replace color node 1;
        (match Hashtbl.find_opt edges node with
        | Some l -> List.iter (dfs (node :: path)) !l
        | None -> ());
        Hashtbl.replace color node 2
    end
  in
  (* DFS roots in sorted order: *which* cycle gets reported must be a pure
     function of the history, not of hash-table layout. *)
  List.iter
    (fun (node, _) -> if !cycle = None then dfs [] node)
    (Table.sorted_bindings ~compare:String.compare edges);
  match !cycle with
  | None -> []
  | Some path ->
    [
      {
        invariant = "serializability";
        detail =
          Printf.sprintf "conflict cycle among committed transactions: %s"
            (String.concat " -> " path);
      };
    ]

(* ------------------------------------------------------------------ *)
(* 5. Demarcation: value constraints at every replica-visible state    *)
(* ------------------------------------------------------------------ *)

let check_demarcation ~bounds tbl =
  let out = ref [] in
  Table.sorted_iter ~compare:String.compare
    (fun txid info ->
      List.iter
        (fun (node, key, version, value) ->
          List.iter
            (fun (b : Schema.bound) ->
              let v = Value.get_int value b.Schema.attr in
              if not (Schema.check_bound b v) then
                out :=
                  {
                    invariant = "demarcation";
                    detail =
                      Printf.sprintf "node%d committed %s@%d with %s = %d (txn %s), violating %s"
                        node (Key.to_string key) version b.Schema.attr v txid
                        (match (b.Schema.lower, b.Schema.upper) with
                        | Some lo, Some hi -> Printf.sprintf "%d <= %s <= %d" lo b.Schema.attr hi
                        | Some lo, None -> Printf.sprintf "%s >= %d" b.Schema.attr lo
                        | None, Some hi -> Printf.sprintf "%s <= %d" b.Schema.attr hi
                        | None, None -> "(no bound)");
                  }
                  :: !out)
            (bounds key))
        info.applied)
    tbl;
  !out

let check ?(bounds = fun _ -> []) ?(partition_of = fun _ -> 0) history =
  let tbl = gather history in
  List.concat
    [
      check_atomic_visibility tbl;
      check_decision_agreement tbl;
      check_cross_partition ~partition_of tbl;
      check_lost_updates tbl;
      check_read_committed tbl;
      check_serializability tbl;
      check_demarcation ~bounds tbl;
    ]
