(** Parallel seed sweeps over a {!Pool.t} of domains.

    A sweep is an embarrassingly parallel list of independent seeded runs.
    {!run} farms the specs across worker domains and returns reports {e in
    spec order} ([Pool.map] merges by task index), so every downstream
    rendering — per-run report lines, the [--obs-out] document — is
    byte-identical to a sequential [--jobs 1] sweep.  Each run is
    single-threaded on its domain; all per-run ambient state (trace
    context, trace/invariant sinks, ambient obs) is domain-local, so runs
    cannot cross-contaminate. *)

val specs :
  ?workload:Runner.workload ->
  ?txns:int ->
  ?items:int ->
  ?partitions:int ->
  ?fast_quorum_override:int ->
  ?capture_trace:bool ->
  seeds:int ->
  scenarios:Nemesis.scenario list ->
  unit ->
  Runner.spec list
(** The standard sweep grid, scenario-major: for each scenario in order,
    seeds [1..seeds]. *)

val run_one : Runner.spec -> Runner.report
(** One run; on a violation the same spec is re-run with trace capture so
    the report carries the full protocol interleaving.  Deterministic — the
    re-run reproduces the violation exactly. *)

val run : ?jobs:int -> ?chunk:int -> Runner.spec list -> Runner.report list
(** [run ~jobs specs] maps {!run_one} over [specs] on a fresh pool of
    [jobs] domains (default {!Mdcc_util.Pool.default_jobs}); reports come
    back in spec order.  [chunk] is the claim granularity — how many
    consecutive specs one work-stealing claim takes (default: about eight
    claims per domain, [max 1 (count / (jobs * 8))]).  Output is
    byte-identical for every [chunk] and [jobs] combination; raises
    [Invalid_argument] on [chunk < 1]. *)

val run_on : ?chunk:int -> Mdcc_util.Pool.t -> Runner.spec list -> Runner.report list
(** {!run} on an existing pool. *)

val run_profiled :
  ?jobs:int ->
  ?chunk:int ->
  Runner.spec list ->
  Runner.report list * Mdcc_obs.Prof.snapshot
(** {!run} with every {e chunk} of consecutive specs bracketed by one
    {!Mdcc_obs.Prof.with_task} (so handle/snapshot overhead is amortized
    across the chunk — a pool task is a chunk here, which is what the
    [pool.tasks] counter counts); per-chunk snapshots merge in chunk
    order, plus [pool.batches] / [pool.tasks] / [pool.stolen] counters
    from the pool.  Per-run ["sweep.run_one"] spans inside the chunk keep
    phase paths and counts identical to a per-run profile.  The reports
    are identical to {!run}'s — the profile rides a separate channel so
    the byte-pinned sweep outputs are untouched by [--profile]. *)

val obs_doc : Runner.report list -> Mdcc_obs.Json.t
(** The sweep's observability export:
    [{"runs":[{seed,scenario,metrics,spans},..]}] in report order. *)
