open Mdcc_storage
open Mdcc_core
module Engine = Mdcc_sim.Engine
module Trace = Mdcc_sim.Trace
module Rng = Mdcc_util.Rng
module Invariant = Mdcc_util.Invariant
module Generator = Mdcc_workload.Generator
module Obs = Mdcc_obs.Obs
module Json = Mdcc_obs.Json

type workload = Deltas | Rmw | Mixed

type spec = {
  seed : int;
  scenario : Nemesis.scenario;
  workload : workload;
  txns : int;
  items : int;
  partitions : int;
  stock : int;
  horizon : float;
  drain : float;
  mode : Config.mode;
  fast_quorum_override : int option;
  capture_trace : bool;
}

let spec ?(workload = Mixed) ?(txns = 40) ?(items = 4) ?(partitions = 1) ?(stock = 60)
    ?(horizon = 10_000.0) ?(drain = 60_000.0) ?(mode = Config.Full) ?fast_quorum_override
    ?(capture_trace = false) ~seed ~scenario () =
  { seed; scenario; workload; txns; items; partitions; stock; horizon; drain; mode;
    fast_quorum_override; capture_trace }

(* The deployment is at least as wide as the scenario demands: shard
   scenarios ask for a multi-partition keyspace even when the spec left
   [partitions] at its default. *)
let effective_partitions s = max s.partitions s.scenario.Nemesis.sc_partitions

type report = {
  r_seed : int;
  r_scenario : string;
  r_schedule : Nemesis.schedule;
  r_submitted : int;
  r_committed : int;
  r_aborted : int;
  r_undecided : int;
  r_events : int;
  r_violations : Checker.violation list;
  r_trace : string list;
  r_obs : Obs.t;
}

let ok r = r.r_violations = []

(* ------------------------------------------------------------------ *)
(* Fixture                                                             *)
(* ------------------------------------------------------------------ *)

let item i = Key.make ~table:"item" ~id:(string_of_int i)

let stock_schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
    ]

let item_row stock = Value.of_list [ ("stock", Value.Int stock) ]

(* Key style under the Mixed workload: even items take commutative deltas,
   odd items take serializable read-modify-writes.  Keeping the styles on
   disjoint keys keeps the per-key version order meaningful for the
   serializability check. *)
let delta_keys s =
  match s.workload with
  | Deltas -> List.init s.items (fun i -> i)
  | Rmw -> []
  | Mixed -> List.filter (fun i -> i mod 2 = 0) (List.init s.items (fun i -> i))

let rmw_keys s =
  match s.workload with
  | Deltas -> []
  | Rmw -> List.init s.items (fun i -> i)
  | Mixed -> List.filter (fun i -> i mod 2 = 1) (List.init s.items (fun i -> i))

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

type decided = { d_txn : Txn.t; d_outcome : Txn.outcome }

let build_delta_txn rng ctx keys =
  let i = List.nth keys (Rng.int rng (List.length keys)) in
  let amount = -Rng.int_in rng 1 2 in
  Txn.make ~id:(Generator.fresh_txid ctx) ~updates:[ (item i, Update.Delta [ ("stock", amount) ]) ]

(* Optimistic read-modify-write: read two records at this DC's replica (the
   optimistic-execution phase), write one with a physical update, guard the
   other — write skew would commit a conflict cycle, which the checker's
   serializability invariant must rule out. *)
let build_rmw_txn rng ctx cluster ~dc keys =
  let n = List.length keys in
  let i = List.nth keys (Rng.int rng n) in
  let j = List.nth keys (Rng.int rng n) in
  let read key =
    match Cluster.peek cluster ~dc key with Some (v, ver) -> (v, ver) | None -> (item_row 0, 0)
  in
  let v_i, ver_i = read (item i) in
  let stock = Value.get_int v_i "stock" in
  let value = Value.set v_i "stock" (Value.Int (max 0 (stock - 1))) in
  let reads =
    if j <> i then [ (item i, ver_i); (item j, snd (read (item j))) ] else [ (item i, ver_i) ]
  in
  Txn.serializable ~id:(Generator.fresh_txid ctx) ~reads
    ~updates:[ (item i, Update.Physical { vread = ver_i; value }) ]

let run s =
  let engine = Engine.create ~seed:s.seed in
  let config =
    Config.make ~mode:s.mode ~learn_timeout:600.0 ~txn_timeout:1500.0 ~dangling_scan_every:500.0
      ?fast_quorum_override:s.fast_quorum_override ~replication:5 ()
  in
  let history = History.create () in
  (* Fresh per-run handle (spans on): two same-seed runs must render
     byte-identical metrics and span JSON, so no shared ambient state. *)
  let obs = Obs.create ~spans:true () in
  let cluster =
    Cluster.create ~engine
      ~spec:(Cluster.Spec.make ~partitions:(effective_partitions s) ())
      ~ctx:(Ctx.make ~history ~obs ()) ~config ~schema:stock_schema ()
  in
  Cluster.load cluster (List.init s.items (fun i -> (item i, item_row s.stock)));
  Cluster.start_maintenance cluster;
  (* The fault schedule derives from the seed alone: same seed, same runs. *)
  let sched_rng = Rng.create ((s.seed * 2654435761) lxor 0x6e656d) in
  let schedule =
    s.scenario.Nemesis.sc_build ~rng:sched_rng ~cluster ~horizon:s.horizon
    @ [ (s.horizon, Nemesis.Heal_all) ]
  in
  Nemesis.install ~history cluster schedule;
  (* After healing, two peer-directed anti-entropy sweeps (spaced so the
     first round's catchups land before the second probes). *)
  ignore (Engine.schedule_at engine ~at:(s.horizon +. 4_000.0) (fun () -> Cluster.sync_all cluster));
  ignore (Engine.schedule_at engine ~at:(s.horizon +. 12_000.0) (fun () -> Cluster.sync_all cluster));
  (* Trace capture (the violating-seed replay path). *)
  let trace_buf = ref [] in
  let was_tracing = Trace.enabled () in
  if s.capture_trace then begin
    Trace.set_sink (fun line -> trace_buf := line :: !trace_buf);
    Trace.enable ()
  end;
  (* Tagged invariant violations (Util.Invariant) land in the recorded
     history before the exception unwinds, so a replay shows *where* a
     protocol invariant died instead of an anonymous process teardown. *)
  Invariant.set_sink (fun v ->
      History.record history
        (History.Fault { time = Engine.now engine; label = Invariant.to_string v });
      Trace.emit engine ~tag:"invariant" "%s" (Invariant.to_string v));
  (* Scripted clients: [txns] transactions at random times from random DCs. *)
  let crng = Rng.create ((s.seed * 31) + 7) in
  let dcs = Cluster.num_dcs cluster in
  let ctxs =
    Array.init dcs (fun dc -> Generator.make_ctx ~rng:(Rng.split crng) ~dc ~client_id:dc)
  in
  let decided = ref [] in
  let submitted = ref 0 in
  let deltas = delta_keys s and rmws = rmw_keys s in
  for _ = 1 to s.txns do
    let dc = Rng.int crng dcs in
    let at = Rng.float crng s.horizon in
    let style_delta =
      match (deltas, rmws) with
      | [], _ -> false
      | _, [] -> true
      | _, _ -> Rng.bool crng
    in
    incr submitted;
    ignore
      (Engine.schedule_at engine ~at (fun () ->
           (* Build at submission time so reads see the current local state. *)
           let txn =
             if style_delta then build_delta_txn crng ctxs.(dc) deltas
             else build_rmw_txn crng ctxs.(dc) cluster ~dc rmws
           in
           Coordinator.submit
             (Cluster.coordinator cluster ~dc ~rank:0)
             txn
             (fun outcome -> decided := { d_txn = txn; d_outcome = outcome } :: !decided)))
  done;
  Engine.run ~until:(s.horizon +. s.drain) engine;
  Invariant.reset_sink ();
  if s.capture_trace then begin
    Trace.reset_sink ();
    if not was_tracing then Trace.disable ()
  end;
  (* ---- checks ---- *)
  let violations =
    ref
      (Checker.check ~bounds:(Schema.bounds_of stock_schema)
         ~partition_of:(Cluster.partition_of cluster) history)
  in
  let add invariant detail = violations := !violations @ [ { Checker.invariant; detail } ] in
  (* Liveness: everything submitted must have decided once all faults healed. *)
  let undecided = !submitted - List.length !decided in
  if undecided > 0 then
    add "liveness" (Printf.sprintf "%d of %d transactions never decided" undecided !submitted);
  (* Convergence: after heal + anti-entropy + drain, every replica agrees. *)
  for i = 0 to s.items - 1 do
    let reference = Cluster.peek cluster ~dc:0 (item i) in
    for dc = 1 to dcs - 1 do
      let got = Cluster.peek cluster ~dc (item i) in
      let equal =
        match (reference, got) with
        | None, None -> true
        | Some (v1, ver1), Some (v2, ver2) -> Value.equal v1 v2 && ver1 = ver2
        | Some _, None | None, Some _ -> false
      in
      if not equal then
        add "convergence"
          (Printf.sprintf "item %d differs between dc0 (%s) and dc%d (%s)" i
             (match reference with Some (_, v) -> Printf.sprintf "v%d" v | None -> "-")
             dc
             (match got with Some (_, v) -> Printf.sprintf "v%d" v | None -> "-"))
    done
  done;
  (* Delta accounting: on keys only ever written commutatively, the final
     stock must equal the initial stock plus the committed deltas. *)
  let physical_touched = Hashtbl.create 16 in
  let expected = Hashtbl.create 16 in
  List.iter
    (fun { d_txn; d_outcome } ->
      match d_outcome with
      | Txn.Committed ->
        List.iter
          (fun (key, up) ->
            match up with
            | Update.Delta ds ->
              let sum = List.fold_left (fun a (_, d) -> a + d) 0 ds in
              let existing = Option.value (Hashtbl.find_opt expected key) ~default:0 in
              Hashtbl.replace expected key (existing + sum)
            | Update.Physical _ | Update.Insert _ | Update.Delete _ ->
              Hashtbl.replace physical_touched key ()
            | Update.Read_guard _ -> ())
          d_txn.Txn.updates
      | Txn.Aborted _ -> ())
    !decided;
  List.iter
    (fun i ->
      let key = item i in
      if not (Hashtbl.mem physical_touched key) then begin
        let committed_deltas = Option.value (Hashtbl.find_opt expected key) ~default:0 in
        let want = s.stock + committed_deltas in
        match Cluster.peek cluster ~dc:0 key with
        | Some (v, _) ->
          let got = Value.get_int v "stock" in
          if got <> want then
            add "accounting"
              (Printf.sprintf "item %d stock is %d, expected initial %d + committed deltas %d = %d"
                 i got s.stock committed_deltas want)
        | None -> add "accounting" (Printf.sprintf "item %d disappeared" i)
      end)
    (delta_keys s);
  (* Repair: every divergence the anti-entropy probes detected must have
     been driven to resolution before the run ends — a nonzero gauge means
     some replica pair is still marked diverged after heal + sweeps. *)
  let diverged = Mdcc_obs.Registry.gauge (Obs.registry obs) "diverged_replicas" in
  if diverged <> 0 then
    add "repair"
      (Printf.sprintf "diverged_replicas gauge still %d after heal + anti-entropy" diverged);
  let committed =
    List.length (List.filter (fun d -> d.d_outcome = Txn.Committed) !decided)
  in
  {
    r_seed = s.seed;
    r_scenario = s.scenario.Nemesis.sc_name;
    r_schedule = schedule;
    r_submitted = !submitted;
    r_committed = committed;
    r_aborted = List.length !decided - committed;
    r_undecided = undecided;
    r_events = History.length history;
    r_violations = !violations;
    r_trace = List.rev !trace_buf;
    r_obs = obs;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report_to_string ?(verbose = false) r =
  let head =
    Printf.sprintf "seed %4d  %-20s  %3d txns: %3d committed %3d aborted %d undecided  %5d events  %s"
      r.r_seed r.r_scenario r.r_submitted r.r_committed r.r_aborted r.r_undecided r.r_events
      (if r.r_violations = [] then "ok"
       else Printf.sprintf "%d VIOLATIONS" (List.length r.r_violations))
  in
  if (not verbose) && r.r_violations = [] then head
  else
    String.concat "\n"
      ((head
        :: (Printf.sprintf "  fault schedule:\n%s" (Nemesis.schedule_to_string r.r_schedule))
        :: List.map (fun v -> "  " ^ Checker.violation_to_string v) r.r_violations)
      @ (if verbose then
           [
             "  metrics: " ^ Json.to_string (Obs.metrics_json r.r_obs);
             "  spans: " ^ Json.to_string (Obs.spans_json r.r_obs);
           ]
         else []))

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_to_json r =
  let strings l = String.concat "," (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) l) in
  Printf.sprintf
    "{\"seed\":%d,\"scenario\":\"%s\",\"submitted\":%d,\"committed\":%d,\"aborted\":%d,\
     \"undecided\":%d,\"events\":%d,\"schedule\":[%s],\"violations\":[%s],\"trace\":[%s],\
     \"metrics\":%s,\"spans\":%s}"
    r.r_seed (json_escape r.r_scenario) r.r_submitted r.r_committed r.r_aborted r.r_undecided
    r.r_events
    (String.concat ","
       (List.map
          (fun (t, f) -> Printf.sprintf "{\"at\":%.1f,\"fault\":\"%s\"}" t (json_escape (Nemesis.label f)))
          r.r_schedule))
    (String.concat ","
       (List.map
          (fun (v : Checker.violation) ->
            Printf.sprintf "{\"invariant\":\"%s\",\"detail\":\"%s\"}" (json_escape v.Checker.invariant)
              (json_escape v.Checker.detail))
          r.r_violations))
    (strings r.r_trace)
    (Json.to_string (Obs.metrics_json r.r_obs))
    (Json.to_string (Obs.spans_json r.r_obs))
