(** The comparison protocols (§5.2) through the history checker.

    Quorum writes, 2PC and Megastore* are driven by the same contended
    stock workload the MDCC chaos runs use, with the history recorded at
    the {!Mdcc_protocols.Harness} boundary ([Submitted] at hand-off,
    [Decided] at the outcome callback).  Write-sets and outcomes alone are
    enough for the checker's lost-update and serializability invariants;
    the replica-level invariants need [Applied] events and are vacuous
    here.

    Each protocol carries an expectation: the invariants it is {e required}
    to violate and those it is {e allowed} to.  Quorum writes is the
    deliberate canary — blind last-writer-wins that cannot abort — so the
    checker must flag lost updates on its runs; 2PC and Megastore* must
    come back clean.  A QW run with no lost-update flag fails the sweep
    just as loudly as a dirty 2PC run: it means the checker lost its
    teeth. *)

type proto
(** A baseline protocol plus its violation expectations. *)

val protocols : proto list
(** The sweep set: [qw-3] (required: lost-update), [2pc] (clean),
    [megastore] (clean). *)

val proto_name : proto -> string

val protocol_named : string -> proto option

type report = {
  b_protocol : string;
  b_seed : int;
  b_submitted : int;
  b_committed : int;
  b_aborted : int;
  b_undecided : int;
  b_required : string list;  (** invariants that must appear in violations *)
  b_allowed : string list;  (** invariants that may appear in violations *)
  b_violations : Checker.violation list;
}

val ok : report -> bool
(** Every required invariant fired, and nothing outside the allowed set
    did. *)

val run :
  ?txns:int ->
  ?items:int ->
  ?stock:int ->
  ?horizon:float ->
  ?drain:float ->
  seed:int ->
  proto ->
  report
(** One seeded, fault-free run: even items take commutative decrements,
    odd items take contended read-modify-writes submitted in same-instant
    pairs from two DCs (both writers read the same version — the
    lost-update crucible).  Ends with the checker plus liveness,
    cross-DC convergence and delta-accounting checks. *)

val report_to_string : report -> string
