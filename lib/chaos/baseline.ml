(* The comparison protocols (§5.2) through the history checker.

   Quorum writes, 2PC and Megastore* are driven by the same contended
   stock workload the MDCC chaos runs use, with the history recorded at
   the harness boundary: [Submitted] when the client hands the transaction
   to the protocol, [Decided] when the outcome callback fires.  Write-sets
   and outcomes alone are enough for the checker's lost-update and
   serializability invariants; the replica-level invariants (atomic
   visibility, demarcation) need [Applied] events and are vacuous here.

   Quorum writes is the deliberate canary: it blindly applies
   last-writer-wins updates and cannot abort, so under same-instant
   read-modify-write pairs the checker MUST flag lost updates.  A baseline
   run is ok when every violation found was expected for the protocol AND
   every required violation actually fired — a sweep where QW comes back
   clean means the checker lost its teeth, and fails just as loudly as an
   unexpected violation in 2PC or Megastore*. *)

open Mdcc_storage
open Mdcc_core
module Engine = Mdcc_sim.Engine
module Rng = Mdcc_util.Rng
module Fabric = Mdcc_protocols.Fabric
module Harness = Mdcc_protocols.Harness

type proto = {
  p_name : string;
  p_required : string list;
  p_allowed : string list;
  p_make : engine:Engine.t -> schema:Schema.t -> Harness.t;
}

let proto_name p = p.p_name

(* QW's blind LWW commits both writers of a same-version pair, so the
   lost-update flag is required.  Downstream symptoms of the same defect
   are allowed but not required (they depend on the seed's interleaving):
   the doomed writers form a write-write/anti-dependency cycle
   (serializability); both writes bump the replica's version, so later
   clients observe versions no single committed writer installed
   (read-committed); and replicas that saw the two writes in different
   delivery orders end divergent (convergence). *)
let protocols =
  [
    {
      p_name = "qw-3";
      p_required = [ "lost-update" ];
      p_allowed = [ "lost-update"; "serializability"; "read-committed"; "convergence" ];
      p_make =
        (fun ~engine ~schema ->
          let fabric = Fabric.create ~engine ~schema () in
          Mdcc_protocols.Quorum_writes.(harness (create ~fabric ~w:3)));
    };
    {
      p_name = "2pc";
      p_required = [];
      p_allowed = [];
      p_make =
        (fun ~engine ~schema ->
          let fabric = Fabric.create ~engine ~schema () in
          Mdcc_protocols.Two_phase_commit.(harness (create ~fabric)));
    };
    {
      p_name = "megastore";
      p_required = [];
      p_allowed = [];
      p_make =
        (fun ~engine ~schema ->
          let fabric = Fabric.create ~engine ~schema () in
          Mdcc_protocols.Megastore.(harness (create ~fabric ())));
    };
  ]

let protocol_named name = List.find_opt (fun p -> String.equal p.p_name name) protocols

type report = {
  b_protocol : string;
  b_seed : int;
  b_submitted : int;
  b_committed : int;
  b_aborted : int;
  b_undecided : int;
  b_required : string list;
  b_allowed : string list;
  b_violations : Checker.violation list;
}

let invariants_of r =
  List.sort_uniq String.compare (List.map (fun v -> v.Checker.invariant) r.b_violations)

let ok r =
  let got = invariants_of r in
  List.for_all (fun i -> List.mem i got) r.b_required
  && List.for_all (fun i -> List.mem i r.b_allowed) got

(* Same fixture as Runner: a stock table with a non-negativity bound. *)
let item i = Key.make ~table:"item" ~id:(string_of_int i)
let item_row stock = Value.of_list [ ("stock", Value.Int stock) ]

let stock_schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
    ]

let run ?(txns = 40) ?(items = 4) ?(stock = 60) ?(horizon = 10_000.0) ?(drain = 60_000.0) ~seed
    proto =
  let engine = Engine.create ~seed in
  let h = proto.p_make ~engine ~schema:stock_schema in
  let history = History.create () in
  let submitted = ref 0 and decided = ref [] in
  let submit ~dc txn =
    incr submitted;
    History.record history
      (History.Submitted { time = Engine.now engine; coordinator = dc; txn });
    h.Harness.submit ~dc txn (fun outcome ->
        History.record history
          (History.Decided { time = Engine.now engine; txid = txn.Txn.id; outcome });
        decided := (txn, outcome) :: !decided)
  in
  h.Harness.load (List.init items (fun i -> (item i, item_row stock)));
  let rng = Rng.create ((seed * 31) + 11) in
  let txid = ref 0 in
  let fresh () =
    incr txid;
    Printf.sprintf "%s-%d" proto.p_name !txid
  in
  (* Even items take commutative decrements; odd items take contended
     read-modify-writes submitted in same-instant pairs from two DCs — the
     lost-update crucible: both writers peek the same version before
     either write lands, so a protocol without validation commits both. *)
  let deltas = List.filter (fun i -> i mod 2 = 0) (List.init items Fun.id) in
  let rmws = List.filter (fun i -> i mod 2 = 1) (List.init items Fun.id) in
  let n = ref 0 in
  while !n < txns do
    let at = Rng.float rng horizon in
    if deltas <> [] && (rmws = [] || Rng.bool rng) then begin
      let i = List.nth deltas (Rng.int rng (List.length deltas)) in
      let dc = Rng.int rng h.Harness.num_dcs in
      let amount = -Rng.int_in rng 1 2 in
      let id = fresh () in
      incr n;
      ignore
        (Engine.schedule_at engine ~at (fun () ->
             submit ~dc (Txn.make ~id ~updates:[ (item i, Update.Delta [ ("stock", amount) ]) ])))
    end
    else begin
      let i = List.nth rmws (Rng.int rng (List.length rmws)) in
      let dc1 = Rng.int rng h.Harness.num_dcs in
      let dc2 = (dc1 + 1 + Rng.int rng (h.Harness.num_dcs - 1)) mod h.Harness.num_dcs in
      let submit_rmw dc id () =
        let vread, value =
          match h.Harness.peek ~dc (item i) with
          | Some (v, ver) ->
            (ver, Value.set v "stock" (Value.Int (max 0 (Value.get_int v "stock" - 1))))
          | None -> (0, item_row 0)
        in
        submit ~dc (Txn.make ~id ~updates:[ (item i, Update.Physical { vread; value }) ])
      in
      let id1 = fresh () and id2 = fresh () in
      n := !n + 2;
      ignore (Engine.schedule_at engine ~at (submit_rmw dc1 id1));
      ignore (Engine.schedule_at engine ~at (submit_rmw dc2 id2))
    end
  done;
  Engine.run ~until:(horizon +. drain) engine;
  (* ---- checks (mirrors Runner.run's post-conditions) ---- *)
  let violations = ref (Checker.check ~bounds:(Schema.bounds_of stock_schema) history) in
  let add invariant detail = violations := !violations @ [ { Checker.invariant; detail } ] in
  let undecided = !submitted - List.length !decided in
  if undecided > 0 then
    add "liveness" (Printf.sprintf "%d of %d transactions never decided" undecided !submitted);
  for i = 0 to items - 1 do
    let reference = h.Harness.peek ~dc:0 (item i) in
    for dc = 1 to h.Harness.num_dcs - 1 do
      let got = h.Harness.peek ~dc (item i) in
      let equal =
        match (reference, got) with
        | None, None -> true
        | Some (v1, ver1), Some (v2, ver2) -> Value.equal v1 v2 && ver1 = ver2
        | Some _, None | None, Some _ -> false
      in
      if not equal then
        add "convergence"
          (Printf.sprintf "item %d differs between dc0 and dc%d after drain" i dc)
    done
  done;
  (* Delta accounting on keys only ever written commutatively. *)
  List.iter
    (fun i ->
      let key = item i in
      let committed_deltas =
        List.fold_left
          (fun acc (txn, outcome) ->
            match outcome with
            | Txn.Committed ->
              List.fold_left
                (fun acc (k, up) ->
                  match up with
                  | Update.Delta ds when Key.equal k key ->
                    acc + List.fold_left (fun a (_, d) -> a + d) 0 ds
                  | _ -> acc)
                acc txn.Txn.updates
            | Txn.Aborted _ -> acc)
          0 !decided
      in
      let want = stock + committed_deltas in
      match h.Harness.peek ~dc:0 key with
      | Some (v, _) ->
        let got = Value.get_int v "stock" in
        if got <> want then
          add "accounting"
            (Printf.sprintf "item %d stock is %d, expected initial %d + committed deltas %d = %d"
               i got stock committed_deltas want)
      | None -> add "accounting" (Printf.sprintf "item %d disappeared" i))
    deltas;
  let committed =
    List.length (List.filter (fun (_, o) -> o = Txn.Committed) !decided)
  in
  {
    b_protocol = proto.p_name;
    b_seed = seed;
    b_submitted = !submitted;
    b_committed = committed;
    b_aborted = List.length !decided - committed;
    b_undecided = undecided;
    b_required = proto.p_required;
    b_allowed = proto.p_allowed;
    b_violations = !violations;
  }

let report_to_string r =
  let verdict =
    if ok r then
      match invariants_of r with
      | [] -> "ok (clean)"
      | got -> Printf.sprintf "ok (expected: %s)" (String.concat "," got)
    else
      Printf.sprintf "UNEXPECTED: found [%s], required [%s], allowed [%s]"
        (String.concat "," (invariants_of r))
        (String.concat "," r.b_required)
        (String.concat "," r.b_allowed)
  in
  let head =
    Printf.sprintf "seed %4d  %-10s  %3d txns: %3d committed %3d aborted %d undecided  %s"
      r.b_seed r.b_protocol r.b_submitted r.b_committed r.b_aborted r.b_undecided verdict
  in
  if ok r then head
  else
    String.concat "\n"
      (head :: List.map (fun v -> "  " ^ Checker.violation_to_string v) r.b_violations)
