(** The nemesis: declarative, schedulable fault injection.

    A fault schedule is a list of [(time, fault)] pairs over the simulated
    clock.  Schedules can be written explicitly (scripted scenarios) or
    generated from a seeded RNG ({!random_faults}), so every chaos run —
    including its faults — is reproducible from a single seed.

    Faults cover the failure modes of the paper's evaluation and beyond:
    whole-data-center outages (§5.3.4's Figure 8 experiment), single-node
    crashes with restart-and-recover, {e directed} link cuts (asymmetric
    partitions a [fail_dc] cannot express), random message-drop spikes, and
    WAN latency surges. *)

open Mdcc_core

type fault =
  | Crash_node of int  (** fail one node; its store survives for restart *)
  | Restart_node of int  (** recover the node + peer anti-entropy sweep *)
  | Fail_dc of int  (** the paper's data-center outage *)
  | Recover_dc of int  (** recover the DC + master-directed anti-entropy *)
  | Cut_link of { src : int; dst : int }  (** cut the directed link *)
  | Heal_link of { src : int; dst : int }
  | Isolate_dc_inbound of int
      (** cut every link {e into} the DC: it can send but not receive — an
          asymmetric partition *)
  | Heal_dc_links of int  (** heal every cut link touching the DC *)
  | Drop_spike of float  (** set the network's drop probability *)
  | Latency_surge of float  (** set the network's latency factor *)
  | Heal_all  (** recover everything and restore base drop/latency *)

val label : fault -> string

val apply : Cluster.t -> fault -> unit
(** Execute the fault against the cluster's network immediately. *)

type schedule = (float * fault) list

val install : ?history:History.t -> Cluster.t -> schedule -> unit
(** Schedule every fault on the cluster's engine.  When [history] is given,
    each fault is recorded as a {!History.Fault} event at injection time. *)

val schedule_to_string : schedule -> string

(** A named schedule generator: given the run's RNG, cluster and fault
    horizon (faults are generated in [\[0, horizon\]]), produce a schedule.
    The same RNG state yields the same schedule.  [sc_partitions] is the
    minimum keyspace partition count the scenario is meaningful at (1 for
    the classic matrix; the shard scenarios demand a multi-partition
    cluster, and {!Runner} widens the deployment to at least this). *)
type scenario = {
  sc_name : string;
  sc_partitions : int;
  sc_build : rng:Mdcc_util.Rng.t -> cluster:Cluster.t -> horizon:float -> schedule;
}

val clean : scenario  (** no faults — the baseline *)

val dc_outage : scenario  (** fail a random DC mid-run, recover it later *)

val asymmetric_partition : scenario
(** isolate a random DC's inbound links for a window *)

val drop_spike : scenario  (** 15% random message loss for a window *)

val latency_surge : scenario  (** 6x WAN latency for a window *)

val master_failover : scenario
(** crash a random storage node (per-key master for ~1/5 of the keys) and
    restart it later — forces coordinator master-bypass rotation *)

val random_faults : scenario
(** 2–4 random fault/heal pairs drawn from all of the above *)

val torn_broadcast : scenario
(** Cut the app->remote-storage links between two random DCs in both
    pairings for a window.  Commits still reach a fast quorum, but the cut
    replica misses both the proposal and the visibility broadcast — on
    commutative delta keys this manufactures equal-version divergence
    (same version, different applied sets), the failure mode only the
    applied-set anti-entropy exchange repairs. *)

val torn_broadcast_crash : scenario
(** {!torn_broadcast} plus a mid-window crash/restart of one of the torn
    app servers, forcing dangling-transaction recovery on top of the
    divergence. *)

val partition_heal : scenario
(** Full bidirectional link cut between two random DCs for a window, then
    heal — the classic split-brain-and-reconcile shape. *)

val shard_partition : scenario
(** Cut one random app server off one random hash-partition's replica
    group (both directions) for a window: its cross-partition transactions
    have one write-set key unreachable while sibling keys in other groups
    learn immediately — the atomic-commit rule must hold the outcome until
    the wedged key resolves, without tearing the transaction. *)

val shard_outage : scenario
(** Crash one partition group's replicas in two distinct DCs for a window:
    that group falls below the fast quorum and commits via
    collision/classic recovery while every other group keeps the fast path
    — per-group quorum asymmetry inside single transactions. *)

val shard_flap : scenario
(** Crash/restart one replica of one partition group three times inside
    the window; every restart runs the peer anti-entropy sweep against its
    own group only. *)

val matrix : scenario list
(** The scenario matrix the chaos CLI sweeps: [clean; dc_outage;
    asymmetric_partition; drop_spike; latency_surge; master_failover;
    random_faults; torn_broadcast; torn_broadcast_crash; partition_heal;
    shard_partition; shard_outage; shard_flap]. *)

val scenario_named : string -> scenario option
