module Pool = Mdcc_util.Pool
module Obs = Mdcc_obs.Obs
module Json = Mdcc_obs.Json
module Prof = Mdcc_obs.Prof

let specs ?workload ?txns ?items ?partitions ?fast_quorum_override ?capture_trace ~seeds
    ~scenarios () =
  List.concat_map
    (fun scenario ->
      List.init seeds (fun i ->
          Runner.spec ?workload ?txns ?items ?partitions ?fast_quorum_override
            ?capture_trace ~seed:(i + 1) ~scenario ()))
    scenarios

let run_one spec =
  let r = Runner.run spec in
  if Runner.ok r || spec.Runner.capture_trace then r
  else Runner.run { spec with Runner.capture_trace = true }

let run_on pool specs = Pool.map_list pool specs ~f:run_one

let run ?jobs specs = Pool.with_pool ?jobs (fun pool -> run_on pool specs)

(* Profiled variant: each run executes under [Prof.with_task] (a fresh
   enabled per-domain profiler handle), and the per-task snapshots fold
   together in task order — exactly the [Registry.merge] discipline, so
   the aggregate is independent of which domain ran what.  The reports
   are the same values [run] returns; only the extra snapshot channel
   differs, keeping report/obs-out bytes identical with or without
   profiling. *)
let run_profiled ?jobs specs =
  let pairs, pool_stats =
    Pool.with_pool ?jobs (fun pool ->
        let before = Pool.stats pool in
        let pairs =
          Pool.map_list pool specs ~f:(fun spec ->
              Prof.with_task (fun () ->
                  Prof.span "sweep.run_one" (fun () -> run_one spec)))
        in
        let after = Pool.stats pool in
        ( pairs,
          Pool.
            {
              batches = after.batches - before.batches;
              tasks = after.tasks - before.tasks;
              stolen = after.stolen - before.stolen;
            } ))
  in
  let reports = List.map fst pairs in
  let profile =
    List.fold_left
      (fun acc (_, snap) -> Prof.merge acc snap)
      Prof.empty_snapshot pairs
  in
  let profile =
    Prof.merge profile
      {
        Prof.sn_phases = [];
        sn_counters =
          [
            ("pool.batches", pool_stats.Pool.batches);
            ("pool.stolen", pool_stats.Pool.stolen);
            ("pool.tasks", pool_stats.Pool.tasks);
          ];
      }
  in
  (reports, profile)

let obs_doc reports =
  Json.Obj
    [
      ( "runs",
        Json.List
          (List.map
             (fun (r : Runner.report) ->
               Json.Obj
                 [
                   ("seed", Json.Int r.Runner.r_seed);
                   ("scenario", Json.Str r.Runner.r_scenario);
                   ("metrics", Obs.metrics_json r.Runner.r_obs);
                   ("spans", Obs.spans_json r.Runner.r_obs);
                 ])
             reports) );
    ]
