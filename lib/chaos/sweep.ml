module Pool = Mdcc_util.Pool
module Obs = Mdcc_obs.Obs
module Json = Mdcc_obs.Json
module Prof = Mdcc_obs.Prof

let specs ?workload ?txns ?items ?partitions ?fast_quorum_override ?capture_trace ~seeds
    ~scenarios () =
  List.concat_map
    (fun scenario ->
      List.init seeds (fun i ->
          Runner.spec ?workload ?txns ?items ?partitions ?fast_quorum_override
            ?capture_trace ~seed:(i + 1) ~scenario ()))
    scenarios

let run_one spec =
  let r = Runner.run spec in
  if Runner.ok r || spec.Runner.capture_trace then r
  else Runner.run { spec with Runner.capture_trace = true }

(* Default claim granularity: coarse enough that cursor traffic and
   per-task bookkeeping are a rounding error (about eight claims per
   domain), fine enough that the domains stay load-balanced when run
   costs vary.  Chunking never changes output: tasks keep their indices,
   so results merge in spec order whatever the granularity. *)
let default_chunk ~jobs ~count = max 1 (count / (max 1 jobs * 8))

let resolve_chunk ?chunk ~jobs ~count () =
  match chunk with
  | Some c ->
    if c < 1 then invalid_arg "Sweep: chunk < 1";
    c
  | None -> default_chunk ~jobs ~count

let run_on ?chunk pool specs =
  let chunk =
    resolve_chunk ?chunk ~jobs:(Pool.jobs pool) ~count:(List.length specs) ()
  in
  Pool.map_list pool ~chunk specs ~f:run_one

let run ?jobs ?chunk specs =
  Pool.with_pool ?jobs (fun pool -> run_on ?chunk pool specs)

(* Split [xs] into groups of [chunk] consecutive elements, in order. *)
let chunk_list ~chunk xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = chunk then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  match xs with [] -> [] | x :: rest -> go [] [ x ] 1 rest

(* Profiled variant: each {e chunk} of consecutive runs executes under one
   [Prof.with_task] (a fresh enabled per-domain profiler handle), and the
   per-chunk snapshots fold together in chunk order — exactly the
   [Registry.merge] discipline, so the aggregate is independent of which
   domain ran what.  Bracketing the chunk rather than every run amortizes
   the handle/snapshot/merge cost across the chunk; the per-run
   ["sweep.run_one"] span inside is unchanged, so phase paths and counts
   are those of a per-run profile.  The reports are the same values [run]
   returns; only the extra snapshot channel differs, keeping
   report/obs-out bytes identical with or without profiling. *)
let run_profiled ?jobs ?chunk specs =
  let pairs, pool_stats =
    Pool.with_pool ?jobs (fun pool ->
        let chunk =
          resolve_chunk ?chunk ~jobs:(Pool.jobs pool)
            ~count:(List.length specs) ()
        in
        let groups = chunk_list ~chunk specs in
        let before = Pool.stats pool in
        let pairs =
          Pool.map_list pool groups ~f:(fun group ->
              Prof.with_task (fun () ->
                  List.map
                    (fun spec -> Prof.span "sweep.run_one" (fun () -> run_one spec))
                    group))
        in
        let after = Pool.stats pool in
        ( pairs,
          Pool.
            {
              batches = after.batches - before.batches;
              tasks = after.tasks - before.tasks;
              stolen = after.stolen - before.stolen;
            } ))
  in
  let reports = List.concat_map fst pairs in
  let profile =
    List.fold_left
      (fun acc (_, snap) -> Prof.merge acc snap)
      Prof.empty_snapshot pairs
  in
  let profile =
    Prof.merge profile
      {
        Prof.sn_phases = [];
        sn_counters =
          [
            ("pool.batches", pool_stats.Pool.batches);
            ("pool.stolen", pool_stats.Pool.stolen);
            ("pool.tasks", pool_stats.Pool.tasks);
          ];
      }
  in
  (reports, profile)

let obs_doc reports =
  Json.Obj
    [
      ( "runs",
        Json.List
          (List.map
             (fun (r : Runner.report) ->
               Json.Obj
                 [
                   ("seed", Json.Int r.Runner.r_seed);
                   ("scenario", Json.Str r.Runner.r_scenario);
                   ("metrics", Obs.metrics_json r.Runner.r_obs);
                   ("spans", Obs.spans_json r.Runner.r_obs);
                 ])
             reports) );
    ]
