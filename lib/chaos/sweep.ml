module Pool = Mdcc_util.Pool
module Obs = Mdcc_obs.Obs
module Json = Mdcc_obs.Json

let specs ?workload ?txns ?items ?fast_quorum_override ?capture_trace ~seeds
    ~scenarios () =
  List.concat_map
    (fun scenario ->
      List.init seeds (fun i ->
          Runner.spec ?workload ?txns ?items ?fast_quorum_override ?capture_trace
            ~seed:(i + 1) ~scenario ()))
    scenarios

let run_one spec =
  let r = Runner.run spec in
  if Runner.ok r || spec.Runner.capture_trace then r
  else Runner.run { spec with Runner.capture_trace = true }

let run_on pool specs = Pool.map_list pool specs ~f:run_one

let run ?jobs specs = Pool.with_pool ?jobs (fun pool -> run_on pool specs)

let obs_doc reports =
  Json.Obj
    [
      ( "runs",
        Json.List
          (List.map
             (fun (r : Runner.report) ->
               Json.Obj
                 [
                   ("seed", Json.Int r.Runner.r_seed);
                   ("scenario", Json.Str r.Runner.r_scenario);
                   ("metrics", Obs.metrics_json r.Runner.r_obs);
                   ("spans", Obs.spans_json r.Runner.r_obs);
                 ])
             reports) );
    ]
