module Table = Mdcc_util.Table

type event = {
  ev_at : float;
  ev_node : int;
  ev_name : string;
  ev_key : string option;
  ev_detail : string;
}

type span = { mutable sp_begin : float; mutable sp_events : event list (* reversed *) }

type t = { spans : (string, span) Hashtbl.t }

let create () = { spans = Hashtbl.create 64 }

let find t txid = Hashtbl.find_opt t.spans txid

let begin_txn t ~txid ~at =
  match find t txid with
  | Some sp -> if sp.sp_begin < 0.0 then sp.sp_begin <- at
  | None -> Hashtbl.replace t.spans txid { sp_begin = at; sp_events = [] }

let event t ~txid ~at ~node ~name ?key ~detail () =
  let sp =
    match find t txid with
    | Some sp -> sp
    | None ->
        let sp = { sp_begin = -1.0; sp_events = [] } in
        Hashtbl.replace t.spans txid sp;
        sp
  in
  sp.sp_events <-
    { ev_at = at; ev_node = node; ev_name = name; ev_key = key; ev_detail = detail }
    :: sp.sp_events

let events t ~txid =
  match find t txid with Some sp -> List.rev sp.sp_events | None -> []

let txids t = Table.sorted_keys ~compare:String.compare t.spans

let clear t = Hashtbl.reset t.spans

let event_json ev =
  Json.Obj
    [
      ("at", Json.Float ev.ev_at);
      ("node", Json.Int ev.ev_node);
      ("name", Json.Str ev.ev_name);
      ("detail", Json.Str ev.ev_detail);
    ]

let txn_to_json t ~txid =
  let evs = events t ~txid in
  let root = List.filter (fun ev -> ev.ev_key = None) evs in
  let keyed = List.filter (fun ev -> ev.ev_key <> None) evs in
  let keys =
    List.sort_uniq String.compare
      (List.filter_map (fun ev -> ev.ev_key) keyed)
  in
  let begin_at = match find t txid with Some sp -> sp.sp_begin | None -> -1.0 in
  Json.Obj
    [
      ("txid", Json.Str txid);
      ("begin", Json.Float begin_at);
      ("events", Json.List (List.map event_json root));
      ( "keys",
        Json.List
          (List.map
             (fun k ->
               Json.Obj
                 [
                   ("key", Json.Str k);
                   ( "events",
                     Json.List
                       (List.filter_map
                          (fun ev ->
                            if ev.ev_key = Some k then Some (event_json ev)
                            else None)
                          keyed) );
                 ])
             keys) );
    ]

let to_json t = Json.List (List.map (fun txid -> txn_to_json t ~txid) (txids t))
