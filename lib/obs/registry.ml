module Table = Mdcc_util.Table

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, float list ref) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

(* Exception-style lookup: [find_opt] allocates a [Some] per call, and
   [incr] runs once per counted protocol event — the found case must not
   allocate. *)
let cell tbl name =
  match Hashtbl.find tbl name with
  | r -> r
  | exception Not_found ->
      let r = ref 0 in
      Hashtbl.replace tbl name r;
      r

let incr t ?(by = 1) name =
  let r = cell t.counters name in
  r := !r + by

let set_gauge t name v = cell t.gauges name := v

let add_gauge t name d =
  let r = cell t.gauges name in
  r := !r + d

let hist_cell t name =
  match Hashtbl.find t.hists name with
  | r -> r
  | exception Not_found ->
      let r = ref [] in
      Hashtbl.replace t.hists name r;
      r

let ensure_hist t name = ignore (hist_cell t name)

let observe t name sample =
  let r = hist_cell t name in
  r := sample :: !r

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0

let hist_count t name =
  match Hashtbl.find_opt t.hists name with
  | Some r -> List.length !r
  | None -> 0

let sorted_ints tbl =
  Table.sorted_bindings ~compare:String.compare tbl
  |> List.map (fun (name, r) -> (name, !r))

let counter_bindings t = sorted_ints t.counters
let gauge_bindings t = sorted_ints t.gauges

let hist_bindings t =
  Table.sorted_bindings ~compare:String.compare t.hists
  |> List.map (fun (name, r) -> (name, List.rev !r))

let merge ~into src =
  Prof.count "registry.merge";
  Prof.span "registry.merge" @@ fun () ->
  let sorted tbl = Table.sorted_bindings ~compare:String.compare tbl in
  List.iter (fun (name, r) -> incr into ~by:!r name) (sorted src.counters);
  (* Gauges take src's value unconditionally — last writer wins exactly as
     it would in a sequential run, so folding per-task registries in task
     order reproduces the sequential final value even when a task sets a
     gauge back to 0 (the cell exists, so it still overwrites). *)
  List.iter (fun (name, r) -> set_gauge into name !r) (sorted src.gauges);
  List.iter
    (fun (name, r) ->
      (* Union the histogram name even when src recorded no samples, so a
         merged snapshot lists the same histograms a sequential run would
         (per-domain profiler handles create empty hists routinely).
         Samples were prepended, so [List.rev] restores observation order;
         appending them keeps the merged histogram's sample list equal to
         what a single sequential run would have accumulated. *)
      ensure_hist into name;
      List.iter (fun sample -> observe into name sample) (List.rev !r))
    (sorted src.hists)

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists

let hist_json samples =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then Json.Obj [ ("count", Json.Int 0) ]
  else
    let pct p =
      let idx = int_of_float (Float.of_int (n - 1) *. p) in
      arr.(idx)
    in
    let sum = Array.fold_left ( +. ) 0.0 arr in
    Json.Obj
      [
        ("count", Json.Int n);
        ("mean", Json.Float (sum /. Float.of_int n));
        ("min", Json.Float arr.(0));
        ("max", Json.Float arr.(n - 1));
        ("p50", Json.Float (pct 0.50));
        ("p95", Json.Float (pct 0.95));
        ("p99", Json.Float (pct 0.99));
      ]

let to_json t =
  let ints tbl =
    Json.Obj
      (List.map
         (fun (name, r) -> (name, Json.Int !r))
         (Table.sorted_bindings ~compare:String.compare tbl))
  in
  let hists =
    Json.Obj
      (List.map
         (fun (name, r) -> (name, hist_json (List.rev !r)))
         (Table.sorted_bindings ~compare:String.compare t.hists))
  in
  Json.Obj
    [
      ("counters", ints t.counters);
      ("gauges", ints t.gauges);
      ("histograms", hists);
    ]
