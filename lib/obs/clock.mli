(** The sanctioned wall clock.

    R1 bans wall-clock reads everywhere in lib/ so simulated runs stay
    pure functions of their seed; profiling is the one consumer that
    genuinely needs elapsed real time.  This module is the single
    allowlisted home for that effect — use it (via {!Prof}) instead of
    calling [Unix.gettimeofday] directly, which the lint still rejects in
    every other file. *)

val wall_ms : unit -> float
(** Wall-clock time in milliseconds since the epoch. *)

val monotonic_ms : unit -> float
(** {!wall_ms} clamped per domain to never decrease, so span durations
    are non-negative even across clock steps.  Values are only
    comparable within one domain. *)
