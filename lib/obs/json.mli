(** A minimal JSON tree: enough to render the observability exports
    deterministically and to parse them back for schema validation.

    The repository deliberately has no external JSON dependency; exporters
    build values of {!t} and render with {!to_string}.  Rendering is a pure
    function of the tree — object members are emitted in the order given, so
    callers build objects from sorted bindings
    ({!Mdcc_util.Table.sorted_bindings}) and two identical runs produce
    byte-identical output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no-whitespace) rendering.  Strings are escaped per RFC 8259;
    non-finite floats render as [null] (JSON has no representation for
    them). *)

val parse : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries the offset and
    reason of the first syntax error; trailing garbage is an error.  Numbers
    without [.]/[e] parse as [Int], all others as [Float]. *)

val member : string -> t -> t option
(** [member name (Obj _)] looks up a field; [None] on missing field or
    non-object. *)

val to_list : t -> t list
(** The elements of a [List]; [\[\]] otherwise. *)
