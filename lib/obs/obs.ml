type t = { registry : Registry.t; spans : Span.t option }

let create ?(spans = false) () =
  {
    registry = Registry.create ();
    spans = (if spans then Some (Span.create ()) else None);
  }

let registry t = t.registry
let spans t = t.spans
let incr t ?by name = Registry.incr t.registry ?by name
let set_gauge t name v = Registry.set_gauge t.registry name v
let add_gauge t name d = Registry.add_gauge t.registry name d
let observe t name sample = Registry.observe t.registry name sample

let begin_txn t ~txid ~at =
  match t.spans with Some sp -> Span.begin_txn sp ~txid ~at | None -> ()

let span_event t ~txid ~at ~node ~name ?key ~detail () =
  match t.spans with
  | Some sp -> Span.event sp ~txid ~at ~node ~name ?key ~detail ()
  | None -> ()

let metrics_json t = Registry.to_json t.registry

let spans_json t =
  match t.spans with Some sp -> Span.to_json sp | None -> Json.List []

let ambient_handle = create ()
let ambient () = ambient_handle

let reset_ambient () =
  Registry.clear ambient_handle.registry;
  match ambient_handle.spans with Some sp -> Span.clear sp | None -> ()
