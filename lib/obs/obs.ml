type t = { registry : Registry.t; spans : Span.t option }

let create ?(spans = false) () =
  {
    registry = Registry.create ();
    spans = (if spans then Some (Span.create ()) else None);
  }

let registry t = t.registry
let spans t = t.spans
let incr t ?by name = Registry.incr t.registry ?by name
let set_gauge t name v = Registry.set_gauge t.registry name v
let add_gauge t name d = Registry.add_gauge t.registry name d
let observe t name sample = Registry.observe t.registry name sample

let begin_txn t ~txid ~at =
  match t.spans with Some sp -> Span.begin_txn sp ~txid ~at | None -> ()

let span_event t ~txid ~at ~node ~name ?key ~detail () =
  match t.spans with
  | Some sp -> Span.event sp ~txid ~at ~node ~name ?key ~detail ()
  | None -> ()

let metrics_json t = Registry.to_json t.registry

let spans_json t =
  match t.spans with Some sp -> Span.to_json sp | None -> Json.List []

let merge ~into src = Registry.merge ~into:into.registry src.registry

(* One ambient handle per domain: a worker domain gets a fresh, empty
   default instead of scribbling into the main domain's registry.  Code
   that wants cross-domain aggregation runs with an explicit fresh handle
   per task and [merge]s the results in task order. *)
let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())
let ambient () = Domain.DLS.get ambient_key

let reset_ambient () =
  let h = ambient () in
  Registry.clear h.registry;
  match h.spans with Some sp -> Span.clear sp | None -> ()
