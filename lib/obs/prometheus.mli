(** Prometheus text exposition (version 0.0.4) of a {!Registry.t}.

    Counters render as [mdcc_<key>_total] with [# TYPE counter], gauges
    as [mdcc_<key>] with [# TYPE gauge], histograms with fixed
    millisecond buckets ([le] ∈ 0.1 … 1000, plus +Inf), [_sum] and
    [_count].  Keys are sanitized (every byte outside [[a-zA-Z0-9_:]]
    becomes ['_']); keys that collide after sanitization are combined
    (counters and histogram samples sum, gauges keep one value).  Output
    is a pure function of the registry: kinds render counters, gauges,
    then histograms, each kind's families in sorted metric-name order,
    so identical registries render byte-identically. *)

val render : Registry.t -> string
(** The full exposition body, ready to serve as
    [Content-Type: text/plain; version=0.0.4]. *)

val metric_name : string -> string
(** ["mdcc_"] + the sanitized registry key (no family suffix). *)

val escape_help : string -> string
(** Escape [\ ] and newline for HELP lines. *)

val escape_label_value : string -> string
(** Escape backslash, newline, and double quote for label values. *)
