(* The one sanctioned wall-clock read in the library tree.

   Profiling needs real elapsed time, but R1 bans wall-clock reads so the
   deterministic core can never grow a hidden time dependency.  The
   compromise: this module is the only file allowed to touch
   [Unix.gettimeofday] (a path-scoped [lint_allow.conf] entry for R1 and
   R6 covers exactly [lib/obs/clock.ml]), and everything else — including
   the rest of lib/obs — must go through it.  A bare [Unix.gettimeofday]
   anywhere else in lib/ still fails the lint. *)

let wall_ms () = Unix.gettimeofday () *. 1000.0

(* Per-domain monotonic clamp: NTP steps can move [gettimeofday]
   backwards, which would produce negative span durations.  Each domain
   remembers the last value it handed out and never goes below it.  The
   state lives in [Domain.DLS] so worker domains don't contend (and lint
   rule R4's closure-boundary exemption makes the key legal). *)
type state = { mutable last : float }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { last = 0.0 })

let monotonic_ms () =
  let s = Domain.DLS.get state_key in
  let t = wall_ms () in
  let t = if t > s.last then t else s.last in
  s.last <- t;
  t
