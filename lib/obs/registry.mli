(** Deterministic metrics registry: counters, gauges, and histograms keyed
    by name.  All values derive from sim time and protocol events, never the
    wall clock, so a snapshot is a pure function of the run.  Snapshots
    iterate in sorted name order ({!Mdcc_util.Table.sorted_bindings}) and
    render byte-identically across identical runs. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at zero first. *)

val set_gauge : t -> string -> int -> unit

val add_gauge : t -> string -> int -> unit
(** Add a (possibly negative) delta to a gauge, creating it at zero. *)

val observe : t -> string -> float -> unit
(** Record one sample into a histogram, creating it empty first. *)

val ensure_hist : t -> string -> unit
(** Create a histogram with no samples if absent (so {!merge} and
    renderers see it even before the first observation). *)

val counter : t -> string -> int
(** Current value of a counter ([0] if never incremented). *)

val gauge : t -> string -> int

val hist_count : t -> string -> int
(** Number of samples observed into a histogram. *)

val counter_bindings : t -> (string * int) list
val gauge_bindings : t -> (string * int) list
(** Current values in sorted name order. *)

val hist_bindings : t -> (string * float list) list
(** Histograms in sorted name order, samples in observation order;
    includes empty histograms created by {!ensure_hist}. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters add, gauges take
    [src]'s value (last write wins, as in a sequential run), histogram
    samples append in observation order and histogram {e names} union
    even when [src] recorded no samples.  Iteration is in sorted name
    order, so merging the same sources in the same order is
    deterministic.  [src] is unchanged. *)

val clear : t -> unit

val to_json : t -> Json.t
(** [{"counters":{..},"gauges":{..},"histograms":{name:{"count":..,"mean":..,
    "min":..,"max":..,"p50":..,"p95":..,"p99":..}}}] with every object's
    members in sorted name order. *)
