type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Deterministic float rendering: integer-valued floats as "n.0" so they
   survive a render/parse/render round trip unchanged; everything else via
   %.6g which is stable across runs (the inputs are sim times and derived
   statistics, never accumulated platform-dependent noise). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* --- Parser: recursive descent over a string with an offset cursor. --- *)

exception Syntax of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Syntax (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then (
      pos := !pos + len;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char buf e;
                  loop ()
              | 'n' ->
                  Buffer.add_char buf '\n';
                  loop ()
              | 'r' ->
                  Buffer.add_char buf '\r';
                  loop ()
              | 't' ->
                  Buffer.add_char buf '\t';
                  loop ()
              | 'b' ->
                  Buffer.add_char buf '\b';
                  loop ()
              | 'f' ->
                  Buffer.add_char buf '\012';
                  loop ()
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape"
                  else
                    let hex = String.sub s !pos 4 in
                    let code =
                      try int_of_string ("0x" ^ hex)
                      with _ -> fail "bad \\u escape"
                    in
                    pos := !pos + 4;
                    (* Decode to UTF-8 so escape/parse round-trips for the
                       control characters we emit; BMP only, which covers
                       everything this library produces. *)
                    if code < 0x80 then Buffer.add_char buf (Char.chr code)
                    else if code < 0x800 then (
                      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
                    else (
                      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                      Buffer.add_char buf
                        (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
                    loop ()
              | _ -> fail "unknown escape")
        | c ->
            Buffer.add_char buf c;
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec loop () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          loop ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          loop ()
      | _ -> ()
    in
    loop ();
    if !pos = start then fail "expected number"
    else
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "malformed number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let parse_member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec members acc =
            let kv = parse_member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage" else v
  with
  | v -> Ok v
  | exception Syntax (at, msg) ->
      Error (Printf.sprintf "JSON syntax error at offset %d: %s" at msg)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function List xs -> xs | _ -> []
