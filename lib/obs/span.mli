(** Per-transaction causal spans.  A span is opened when a transaction is
    submitted ({!begin_txn}) and accumulates timestamped events from every
    protocol layer that handles the transaction — coordinator propose,
    acceptor vote, learn, visibility — attributed via the trace context the
    network carries on each envelope.  Events are stored in append order;
    because the simulator delivers events in nondecreasing sim time, that is
    also sim-time order, which the acceptance tests verify. *)

type t

type event = {
  ev_at : float;  (** sim time (ms) at which the event was recorded *)
  ev_node : int;  (** node id that recorded it; [-1] for the client edge *)
  ev_name : string;  (** e.g. ["propose"], ["vote"], ["learn"], ["visible"] *)
  ev_key : string option;  (** record key the event concerns, if any *)
  ev_detail : string;  (** free-form detail, e.g. the vote verdict *)
}

val create : unit -> t

val begin_txn : t -> txid:string -> at:float -> unit
(** Open a span.  Re-opening an existing txid is a no-op (recovery paths may
    race the original submission). *)

val event :
  t ->
  txid:string ->
  at:float ->
  node:int ->
  name:string ->
  ?key:string ->
  detail:string ->
  unit ->
  unit
(** Append an event to a span.  Unknown txids open a span implicitly (events
    attributed to a transaction whose begin the sink never saw — e.g. a
    recovery replica — must not be dropped). *)

val events : t -> txid:string -> event list
(** Events of one span in append order; [[]] for unknown txids. *)

val txids : t -> string list
(** All txids with a span, sorted. *)

val clear : t -> unit

val txn_to_json : t -> txid:string -> Json.t
(** One span tree: [{"txid":..,"begin":..,"events":[..],"keys":[{"key":..,
    "events":[..]}]}].  Root ["events"] lists events with no key; ["keys"]
    groups the rest under their record key, keys sorted, events in append
    order within each group. *)

val to_json : t -> Json.t
(** All span trees as a list, txids sorted. *)
