(** The observability handle threaded through the protocol: a metrics
    {!Registry.t} plus an optional per-transaction {!Span.t} store.  Every
    protocol component takes [?obs] (defaulting to the domain-local
    {!ambient} handle, whose span store is disabled so long-running drivers
    don't accumulate unbounded state); the chaos runner creates a fresh
    handle per run with spans enabled. *)

type t

val create : ?spans:bool -> unit -> t
(** [create ()] has no span store; [create ~spans:true ()] records spans. *)

val registry : t -> Registry.t
val spans : t -> Span.t option

val incr : t -> ?by:int -> string -> unit
val set_gauge : t -> string -> int -> unit
val add_gauge : t -> string -> int -> unit
val observe : t -> string -> float -> unit
(** Registry pass-throughs. *)

val begin_txn : t -> txid:string -> at:float -> unit

val span_event :
  t ->
  txid:string ->
  at:float ->
  node:int ->
  name:string ->
  ?key:string ->
  detail:string ->
  unit ->
  unit
(** No-ops when the span store is disabled. *)

val metrics_json : t -> Json.t
val spans_json : t -> Json.t
(** [spans_json] is [List []] when spans are disabled. *)

val merge : into:t -> t -> unit
(** Fold [src]'s registry into [into]'s ({!Registry.merge}).  Span stores
    are not merged — aggregate runs keep spans per-handle. *)

val ambient : unit -> t
(** The {e domain-local} default handle (spans disabled).  Drivers that
    export metrics — [experiments_cli --metrics-out], [bench] — snapshot
    this.  Each domain sees its own handle: parallel tasks that should feed
    one export run against explicit fresh handles and {!merge} them in task
    order on the calling domain. *)

val reset_ambient : unit -> unit
(** Clear the calling domain's ambient registry (fresh baseline before a
    driver run). *)
