(* Prometheus text exposition (format version 0.0.4) of a Registry.

   Registry keys are free-form dotted names ("net.sent.node03",
   "wire.cmd.get"); Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*.
   We sanitize by mapping every illegal byte to '_' and prefixing
   "mdcc_", which also guarantees a legal first character.  Distinct
   registry keys can collapse to one metric name ("a.b" and "a_b"), so
   same-name entries are summed before rendering — duplicate series are
   invalid exposition.  Output is deterministic: one pass over the
   registry's sorted bindings, groups emitted in sorted metric-name
   order. *)

let sanitize key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    key

let metric_name key = "mdcc_" ^ sanitize key

(* HELP text: '\' -> "\\", newline -> "\n".  Label values additionally
   escape '"'. *)
let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Histogram buckets in milliseconds — registry histograms record
   latencies in ms throughout the repo.  Fixed so scrapes are comparable
   across runs; +Inf is implicit in [render_hist]. *)
let buckets = [ 0.1; 0.5; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1000.0 ]

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Group sorted (key, value) pairs by sanitized metric name, combining
   values of colliding keys with [combine]; keeps the first original key
   for the HELP line.  Input sorted by original key; output is sorted by
   metric name (re-sorted, since sanitization can reorder). *)
let group_by_metric ~combine pairs =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (key, v) ->
      let name = metric_name key in
      match Hashtbl.find_opt tbl name with
      | None -> Hashtbl.replace tbl name (key, v)
      | Some (k0, v0) -> Hashtbl.replace tbl name (k0, combine v0 v))
    pairs;
  Mdcc_util.Table.sorted_bindings ~compare:String.compare tbl

let render_int_family buf ~typ ~suffix (name, (key, v)) =
  let full = name ^ suffix in
  Printf.bprintf buf "# HELP %s MDCC registry %s %s\n" full typ
    (escape_help key);
  Printf.bprintf buf "# TYPE %s %s\n" full typ;
  Printf.bprintf buf "%s %d\n" full v

let render_hist buf (name, (key, samples)) =
  Printf.bprintf buf "# HELP %s MDCC registry histogram %s (ms)\n" name
    (escape_help key);
  Printf.bprintf buf "# TYPE %s histogram\n" name;
  let total = List.length samples in
  let sum = List.fold_left ( +. ) 0.0 samples in
  List.iter
    (fun le ->
      let n = List.length (List.filter (fun s -> s <= le) samples) in
      Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" name (float_str le) n)
    buckets;
  Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" name total;
  Printf.bprintf buf "%s_sum %g\n" name sum;
  Printf.bprintf buf "%s_count %d\n" name total

let render registry =
  let buf = Buffer.create 4096 in
  Registry.counter_bindings registry
  |> group_by_metric ~combine:( + )
  |> List.iter (render_int_family buf ~typ:"counter" ~suffix:"_total");
  (* Colliding gauges keep the last (sorted-order) value — summing two
     last-writer-wins cells would be meaningless. *)
  Registry.gauge_bindings registry
  |> group_by_metric ~combine:(fun _ v -> v)
  |> List.iter (render_int_family buf ~typ:"gauge" ~suffix:"");
  Registry.hist_bindings registry
  |> group_by_metric ~combine:( @ )
  |> List.iter (render_hist buf);
  Buffer.contents buf
