(* Hierarchical per-domain profiler.

   Each domain carries one ambient handle in [Domain.DLS]; profiling is
   {e off} by default and every instrumentation point ([span], [count])
   collapses to a DLS read plus a boolean test when disabled, so the hot
   paths it decorates pay nothing unless a CLI passed [--profile].

   When enabled, [span name f] times [f] with {!Clock.monotonic_ms} and
   charges [Gc.minor_words] deltas to a node keyed by the {e hierarchical}
   path of enclosing spans ("sweep/run/engine"), so self time = inclusive
   − children attributes every measured millisecond to exactly one phase.
   [with_task] brackets a unit of parallel work with a fresh enabled
   handle and returns an immutable {!snapshot}; snapshots merge
   associatively in task order, mirroring [Registry.merge], so a
   [--jobs N] profile aggregates exactly like the metrics registry does.

   Profiler output always rides a separate channel (BENCH_profile.json,
   [--profile FILE]) — never the byte-pinned sweep/obs/metrics reports —
   because wall-clock durations are not deterministic. *)

type node = {
  n_path : string;
  mutable n_count : int;
  mutable n_wall_ms : float; (* inclusive *)
  mutable n_child_ms : float;
  mutable n_minor_words : float;
}

type t = {
  mutable p_enabled : bool;
  p_nodes : (string, node) Hashtbl.t;
  p_counters : (string, int ref) Hashtbl.t;
  mutable p_cur : string; (* path of the innermost open span, "" at top *)
}

let create () =
  {
    p_enabled = false;
    p_nodes = Hashtbl.create 32;
    p_counters = Hashtbl.create 32;
    p_cur = "";
  }

let enabled t = t.p_enabled
let set_enabled t on = t.p_enabled <- on

let node t path =
  match Hashtbl.find_opt t.p_nodes path with
  | Some n -> n
  | None ->
      let n =
        { n_path = path; n_count = 0; n_wall_ms = 0.0; n_child_ms = 0.0;
          n_minor_words = 0.0 }
      in
      Hashtbl.replace t.p_nodes path n;
      n

let span_in t name f =
  if not t.p_enabled then f ()
  else begin
    let parent = t.p_cur in
    let path = if parent = "" then name else parent ^ "/" ^ name in
    t.p_cur <- path;
    let t0 = Clock.monotonic_ms () in
    let w0 = Gc.minor_words () in
    let finish () =
      let dt = Clock.monotonic_ms () -. t0 in
      let dw = Gc.minor_words () -. w0 in
      t.p_cur <- parent;
      let n = node t path in
      n.n_count <- n.n_count + 1;
      n.n_wall_ms <- n.n_wall_ms +. dt;
      n.n_minor_words <- n.n_minor_words +. dw;
      if parent <> "" then begin
        let pn = node t parent in
        pn.n_child_ms <- pn.n_child_ms +. dt
      end
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* Exception-style lookup: counting happens inside measured phases, so a
   [Some] allocated per count would inflate the very minor-words numbers
   the profiler reports. *)
let count_in t ?(by = 1) name =
  if t.p_enabled then begin
    let r =
      match Hashtbl.find t.p_counters name with
      | r -> r
      | exception Not_found ->
          let r = ref 0 in
          Hashtbl.replace t.p_counters name r;
          r
    in
    r := !r + by
  end

(* One ambient handle per domain, like [Obs.ambient]: a worker domain
   starts from a fresh disabled handle, never the spawner's. *)
let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())
let ambient () = Domain.DLS.get ambient_key
let span name f = span_in (ambient ()) name f
let count ?by name = count_in (ambient ()) ?by name
let enabled_ambient () = (ambient ()).p_enabled

type phase = {
  ph_path : string;
  ph_count : int;
  ph_wall_ms : float;
  ph_self_ms : float;
  ph_minor_words : float;
}

type snapshot = {
  sn_phases : phase list; (* sorted by path *)
  sn_counters : (string * int) list; (* sorted by name *)
}

let empty_snapshot = { sn_phases = []; sn_counters = [] }

let capture t =
  let sn_phases =
    Mdcc_util.Table.sorted_bindings ~compare:String.compare t.p_nodes
    |> List.map (fun (_, n) ->
           {
             ph_path = n.n_path;
             ph_count = n.n_count;
             ph_wall_ms = n.n_wall_ms;
             ph_self_ms = Float.max 0.0 (n.n_wall_ms -. n.n_child_ms);
             ph_minor_words = n.n_minor_words;
           })
  in
  let sn_counters =
    Mdcc_util.Table.sorted_bindings ~compare:String.compare t.p_counters
    |> List.map (fun (name, r) -> (name, !r))
  in
  { sn_phases; sn_counters }

(* Merge two sorted assoc-like lists, combining equal keys.  Both inputs
   are sorted (capture pins that), so the result is too — merging in task
   order is associative and key order never depends on arrival order. *)
let rec merge_sorted ~key ~combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys ->
      let c = String.compare (key x) (key y) in
      if c = 0 then combine x y :: merge_sorted ~key ~combine xs ys
      else if c < 0 then x :: merge_sorted ~key ~combine xs b
      else y :: merge_sorted ~key ~combine a ys

let merge a b =
  let phase x y =
    {
      ph_path = x.ph_path;
      ph_count = x.ph_count + y.ph_count;
      ph_wall_ms = x.ph_wall_ms +. y.ph_wall_ms;
      ph_self_ms = x.ph_self_ms +. y.ph_self_ms;
      ph_minor_words = x.ph_minor_words +. y.ph_minor_words;
    }
  in
  {
    sn_phases =
      merge_sorted ~key:(fun p -> p.ph_path) ~combine:phase a.sn_phases
        b.sn_phases;
    sn_counters =
      merge_sorted ~key:fst
        ~combine:(fun (k, x) (_, y) -> (k, x + y))
        a.sn_counters b.sn_counters;
  }

let with_task f =
  let prev = Domain.DLS.get ambient_key in
  let h = create () in
  h.p_enabled <- true;
  Domain.DLS.set ambient_key h;
  let restore () = Domain.DLS.set ambient_key prev in
  let g0 = Gc.quick_stat () in
  match f () with
  | v ->
      let g1 = Gc.quick_stat () in
      let snap = capture h in
      restore ();
      let gc =
        [
          ("gc.major_collections",
           g1.Gc.major_collections - g0.Gc.major_collections);
          ("gc.minor_collections",
           g1.Gc.minor_collections - g0.Gc.minor_collections);
          ("gc.promoted_words",
           int_of_float (g1.Gc.promoted_words -. g0.Gc.promoted_words));
        ]
      in
      (v, merge snap { sn_phases = []; sn_counters = gc })
  | exception e ->
      restore ();
      raise e

let snapshot_to_json s =
  let phases =
    Json.List
      (List.map
         (fun p ->
           Json.Obj
             [
               ("path", Json.Str p.ph_path);
               ("count", Json.Int p.ph_count);
               ("wall_ms", Json.Float p.ph_wall_ms);
               ("self_ms", Json.Float p.ph_self_ms);
               ("minor_words", Json.Float p.ph_minor_words);
             ])
         s.sn_phases)
  in
  let counters =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.sn_counters)
  in
  Json.Obj [ ("phases", phases); ("counters", counters) ]

let attributed_ms s =
  List.fold_left (fun acc p -> acc +. p.ph_self_ms) 0.0 s.sn_phases
