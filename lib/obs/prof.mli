(** Hierarchical per-domain profiler (off by default).

    Instrumentation points call {!span} / {!count} against the calling
    domain's ambient handle; with profiling disabled (the default) both
    collapse to a [Domain.DLS] read and a boolean test, so decorated hot
    paths cost nothing in normal runs and all byte-identity pins are
    untouched.  Enabled handles time spans with {!Clock.monotonic_ms}
    (the sanctioned clock — R1 still bans every other wall-clock read)
    and charge [Gc.minor_words] deltas per hierarchical span path.

    Parallel aggregation mirrors [Registry.merge]: wrap each task in
    {!with_task} and fold the returned snapshots in task order with
    {!merge}.  Profiler output must ride its own channel ([--profile
    FILE], BENCH_profile.json) — wall time is not deterministic, so it
    must never leak into byte-pinned reports. *)

type t

val create : unit -> t
(** A fresh disabled handle. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val span_in : t -> string -> (unit -> 'a) -> 'a
(** [span_in t name f] runs [f], charging its wall time and minor
    allocation to [parent-path/name] when [t] is enabled.  Exceptions
    propagate; the span still closes. *)

val count_in : t -> ?by:int -> string -> unit

val ambient : unit -> t
(** The calling domain's handle.  Fresh (disabled) per domain. *)

val span : string -> (unit -> 'a) -> 'a
(** {!span_in} on the ambient handle. *)

val count : ?by:int -> string -> unit
(** {!count_in} on the ambient handle. *)

val enabled_ambient : unit -> bool

(** {2 Snapshots} *)

type phase = {
  ph_path : string;  (** "/"-joined path of enclosing spans *)
  ph_count : int;
  ph_wall_ms : float;  (** inclusive *)
  ph_self_ms : float;  (** inclusive − children, clamped ≥ 0 *)
  ph_minor_words : float;
}

type snapshot = {
  sn_phases : phase list;  (** sorted by [ph_path] *)
  sn_counters : (string * int) list;  (** sorted by name *)
}

val empty_snapshot : snapshot

val capture : t -> snapshot
(** Immutable copy of [t]'s accumulators, sorted. *)

val with_task : (unit -> 'a) -> 'a * snapshot
(** Install a fresh {e enabled} handle as the calling domain's ambient,
    run [f], capture, and restore the previous handle (also on
    exceptions, though the snapshot is then lost).  The snapshot gains
    [gc.minor_collections] / [gc.major_collections] /
    [gc.promoted_words] counters from a [Gc.quick_stat] bracket — taken
    only at this coarse boundary because [quick_stat] itself
    allocates. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum by phase path / counter name.  Associative; fold in
    task order like [Registry.merge]. *)

val attributed_ms : snapshot -> float
(** Sum of self time over all phases — the numerator of the
    "≥ 95 % of measured wall time attributed" acceptance check. *)

val snapshot_to_json : snapshot -> Json.t
