type node_id = int

type t = {
  dc_names : string array;
  node_dc : int array;
  rtt : float array array;
  intra_rtt : float;
}

let make ~dc_names ~rtt ?(intra_rtt = 1.0) ~nodes_per_dc () =
  let d = Array.length dc_names in
  if Array.length rtt <> d || Array.exists (fun row -> Array.length row <> d) rtt then
    invalid_arg "Topology.make: rtt matrix must be square and match dc_names";
  if nodes_per_dc <= 0 then invalid_arg "Topology.make: nodes_per_dc must be positive";
  let node_dc = Array.init (d * nodes_per_dc) (fun n -> n / nodes_per_dc) in
  { dc_names; node_dc; rtt; intra_rtt }

(* Approximate 2012 inter-region round-trip times in milliseconds between the
   five EC2 regions the paper deployed on.  Allocated per call rather than
   bound at top level (R4): topologies built on different worker domains
   must never share array storage. *)
let ec2_rtt () =
  [|
    (*                CA     VA     IE     SG     TK *)
    (* us-west *) [| 0.0; 80.0; 170.0; 230.0; 120.0 |];
    (* us-east *) [| 80.0; 0.0; 90.0; 250.0; 170.0 |];
    (* eu      *) [| 170.0; 90.0; 0.0; 290.0; 270.0 |];
    (* ap-sg   *) [| 230.0; 250.0; 290.0; 0.0; 95.0 |];
    (* ap-tk   *) [| 120.0; 170.0; 270.0; 95.0; 0.0 |];
  |]

let ec2_names () = [| "us-west"; "us-east"; "eu-ireland"; "ap-singapore"; "ap-tokyo" |]

let ec2_five ?(nodes_per_dc = 1) () =
  make ~dc_names:(ec2_names ()) ~rtt:(ec2_rtt ()) ~nodes_per_dc ()

let us_west = 0
let us_east = 1

let num_dcs t = Array.length t.dc_names

let num_nodes t = Array.length t.node_dc

let dc_of t node = t.node_dc.(node)

let nodes_in_dc t dc =
  let acc = ref [] in
  for n = num_nodes t - 1 downto 0 do
    if t.node_dc.(n) = dc then acc := n :: !acc
  done;
  !acc

let all_nodes t = List.init (num_nodes t) Fun.id

let one_way t a b =
  if a = b then 0.0
  else begin
    let da = dc_of t a and db = dc_of t b in
    if da = db then t.intra_rtt /. 2.0 else t.rtt.(da).(db) /. 2.0
  end

let add_nodes t ~per_dc =
  if per_dc < 0 then invalid_arg "Topology.add_nodes: negative per_dc";
  let extra = Array.concat (List.init (num_dcs t) (fun dc -> Array.make per_dc dc)) in
  { t with node_dc = Array.append t.node_dc extra }
