(** Simulated wide-area message passing.

    Messages between nodes are delivered by scheduling an engine event after
    the topology's base one-way latency plus lognormal jitter.  The network
    can drop messages at random, and whole nodes or data centers can be
    failed (their inbound {e and} outbound traffic is discarded) — that is
    exactly how the paper simulates a data-center outage ("we prevented the
    data center from receiving any messages", §5.3.4).

    Message payloads use the extensible variant {!payload}, so every protocol
    library declares its own constructors while sharing one network. *)

type payload = ..
(** Extend with your protocol's message type:
    [type Network.payload += Ping of int]. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;  (** lost to failures or random drops *)
}

type meter = {
  m_size : payload -> int;
      (** estimated wire size of a payload, bytes *)
  m_on_send : src:Topology.node_id -> dst:Topology.node_id -> bytes:int -> unit;
  m_on_deliver : src:Topology.node_id -> dst:Topology.node_id -> bytes:int -> unit;
}
(** Observability hook: called on every send attempt (before drop checks)
    and on every actual delivery.  The network knows nothing about payload
    contents, so the size estimator is supplied by the protocol layer. *)

type t

val create :
  Engine.t -> Topology.t -> ?drop_probability:float -> ?jitter_sigma:float -> unit -> t
(** [create engine topo] builds a network.  [drop_probability] (default 0)
    applies to every message independently.  [jitter_sigma] (default 0.05)
    is the sigma of the multiplicative lognormal latency jitter; 0 disables
    jitter entirely. *)

val engine : t -> Engine.t
val topology : t -> Topology.t

val register : t -> Topology.node_id -> (src:Topology.node_id -> payload -> unit) -> unit
(** Install the message handler of a node.  Re-registering replaces the
    handler (used by tests to model a node restarting with fresh state). *)

val send : t -> src:Topology.node_id -> dst:Topology.node_id -> payload -> unit
(** Queue a message for delivery.  Delivery is skipped silently if either
    endpoint is failed (at send {e or} delivery time), the message is
    dropped, or [dst] has no handler. *)

val broadcast :
  t -> src:Topology.node_id -> dsts:Topology.node_id list -> payload -> unit
(** [send] to every destination (including [src] itself if listed: loopback
    delivery still costs the intra-node latency of one event). *)

val fail_node : t -> Topology.node_id -> unit
val recover_node : t -> Topology.node_id -> unit
val is_failed : t -> Topology.node_id -> bool

val fail_dc : t -> int -> unit
(** Fail every node of a data center. *)

val recover_dc : t -> int -> unit

val cut_link : t -> src:Topology.node_id -> dst:Topology.node_id -> unit
(** Cut the {e directed} link [src -> dst]: messages from [src] to [dst] are
    dropped (at send or delivery time) until {!heal_link}.  Cutting only one
    direction yields the asymmetric partitions that [fail_node]/[fail_dc]
    cannot express — a node that can send but not receive, or vice versa. *)

val heal_link : t -> src:Topology.node_id -> dst:Topology.node_id -> unit

val link_cut : t -> src:Topology.node_id -> dst:Topology.node_id -> bool

val set_drop_probability : t -> float -> unit
(** Change the random-drop probability of a {e live} network (the chaos
    nemesis' drop-probability spike).  Raises [Invalid_argument] outside
    [\[0, 1)]. *)

val drop_probability : t -> float

val base_drop_probability : t -> float
(** The value given at {!create} (what {!heal_all} restores). *)

val set_latency_factor : t -> float -> unit
(** Multiply every subsequent latency draw by this factor (default 1.0) —
    the nemesis' latency surge.  Raises [Invalid_argument] if [<= 0]. *)

val latency_factor : t -> float

val heal_all : t -> unit
(** Recover every node, heal every cut link, and restore the create-time
    drop probability and a latency factor of 1.0.  In-flight messages that
    were already dropped stay dropped. *)

val latency_sample : t -> src:Topology.node_id -> dst:Topology.node_id -> float
(** One latency draw for the pair, exactly as [send] would use (exposed for
    tests and for modelling local reads). *)

val stats : t -> stats

val set_meter : t -> meter -> unit
(** Install the (single) observability meter.  Replaces any previous one. *)

val clear_meter : t -> unit

val with_trace_context : string option -> (unit -> 'a) -> 'a
(** [with_trace_context (Some txid) f] runs [f] with the causal trace
    context set.  Every {!send} inside [f] captures the context into its
    delivery, and the receiving handler runs with it restored — so replies
    and cascading sends inherit the originating transaction id without any
    payload change.  The previous context is restored when [f] returns or
    raises.  Exact in the single-threaded simulator. *)

val trace_context : unit -> string option
(** The transaction id attributed to the current execution, if any. *)
