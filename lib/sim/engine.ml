module Rng = Mdcc_util.Rng
module Prof = Mdcc_obs.Prof

type sim_time = float

(* The clock lives in an [Event_queue.fcell] (a flat one-float record): a
   mutable [float] field in this mixed record would allocate a box on
   every advance, i.e. once per dispatched event. *)
type t = {
  now : Event_queue.fcell;
  mutable seq : int;
  queue : Event_queue.t;
  rng : Rng.t;
  prof : Prof.t;  (* resolved once at create — never a DLS read per event *)
}

type handle = Event_queue.event

let create ~seed =
  {
    now = { Event_queue.f = 0.0 };
    seq = 0;
    queue = Event_queue.create ();
    rng = Rng.create seed;
    prof = Prof.ambient ();
  }

let now t = t.now.Event_queue.f

let rng t = t.rng

let schedule_at t ~at f =
  let now = t.now.Event_queue.f in
  let at = if at < now then now else at in
  t.seq <- t.seq + 1;
  Event_queue.push t.queue ~at ~seq:t.seq f

let schedule t ~after f =
  schedule_at t ~at:(t.now.Event_queue.f +. Float.max 0.0 after) f

let cancel t h = Event_queue.cancel t.queue h

let pending t = Event_queue.size t.queue

let step t =
  let ev = Event_queue.pop_before t.queue ~limit:Float.infinity ~now:t.now in
  if Event_queue.is_dummy ev then false
  else begin
    ev.Event_queue.run ();
    true
  end

(* The dispatch loop: [pop_before] hands back the next live event and
   advances the clock cell in place, allocating nothing per event. *)
let drain t ~limit =
  let queue = t.queue and now = t.now in
  let rec loop () =
    let ev = Event_queue.pop_before queue ~limit ~now in
    if not (Event_queue.is_dummy ev) then begin
      ev.Event_queue.run ();
      loop ()
    end
  in
  loop ()

let run ?until t =
  Prof.span_in t.prof "engine.run" (fun () ->
      match until with
      | None -> drain t ~limit:Float.infinity
      | Some limit ->
        drain t ~limit;
        if t.now.Event_queue.f < limit then t.now.Event_queue.f <- limit)
