module Rng = Mdcc_util.Rng

type sim_time = float

type t = {
  mutable now : sim_time;
  mutable seq : int;
  queue : Event_queue.t;
  rng : Rng.t;
}

type handle = Event_queue.event

let create ~seed = { now = 0.0; seq = 0; queue = Event_queue.create (); rng = Rng.create seed }

let now t = t.now

let rng t = t.rng

let schedule_at t ~at f =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Event_queue.push t.queue ~at ~seq:t.seq f

let schedule t ~after f = schedule_at t ~at:(t.now +. Float.max 0.0 after) f

let cancel t h = Event_queue.cancel t.queue h

let pending t = Event_queue.size t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some ev ->
    t.now <- ev.Event_queue.at;
    ev.Event_queue.run ();
    true

let run ?until t =
  Mdcc_obs.Prof.span "engine.run" (fun () ->
      match until with
      | None -> while step t do () done
      | Some limit ->
        let continue = ref true in
        while !continue do
          match Event_queue.peek_time t.queue with
          | Some at when at <= limit -> ignore (step t)
          | Some _ | None -> continue := false
        done;
        if t.now < limit then t.now <- limit)
