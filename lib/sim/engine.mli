(** The discrete-event simulation engine: a virtual clock plus an event heap.

    All protocol code in this repository is written against this engine
    instead of wall-clock time and OS threads.  Time is a [float] in
    milliseconds.  Executions are deterministic: the only source of
    randomness is the engine's seeded {!Mdcc_util.Rng.t}, and simultaneous
    events fire in scheduling order. *)

type t

type sim_time = float
(** A point on the {e simulated} clock, in milliseconds.  Protocol state
    that stores a timestamp must use this alias rather than bare [float]:
    `mdcc_lint` rule R1 statically asserts that [*_at] record fields in
    the protocol core are typed [sim_time], which makes "fed from the
    engine clock, never the wall clock" checkable at build time. *)

type handle
(** A cancellable scheduled event (used to implement protocol timeouts). *)

val create : seed:int -> t
(** Fresh engine with virtual time 0 and an RNG derived from [seed]. *)

val now : t -> sim_time
(** Current virtual time in milliseconds. *)

val rng : t -> Mdcc_util.Rng.t
(** The engine's root RNG.  Components should [Rng.split] it at set-up time
    so their streams are independent of scheduling order. *)

val schedule : t -> after:float -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] at [now t +. after] (clamped to now). *)

val schedule_at : t -> at:float -> (unit -> unit) -> handle
(** Absolute-time variant of {!schedule}. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; a no-op if it already fired or was already
    cancelled.  Cancel-heavy runs stay compact: the queue drops dead
    entries once they outnumber live ones. *)

val pending : t -> int
(** Number of events still queued (upper bound; includes cancelled ones). *)

val run : ?until:float -> t -> unit
(** Process events in timestamp order until the heap is empty, or until the
    next event would fire strictly after [until].  The clock is left at the
    time of the last executed event (or at [until] if given). *)

val step : t -> bool
(** Execute exactly one event; [false] if the heap was empty. *)
