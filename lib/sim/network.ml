module Rng = Mdcc_util.Rng
module Prof = Mdcc_obs.Prof

type payload = ..

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

type meter = {
  m_size : payload -> int;
  m_on_send : src:Topology.node_id -> dst:Topology.node_id -> bytes:int -> unit;
  m_on_deliver : src:Topology.node_id -> dst:Topology.node_id -> bytes:int -> unit;
}

(* The trace context is the causal envelope: a transaction id set around a
   send is captured into the delivery closure and restored around the
   receiving handler, so any message the handler sends in turn inherits it.
   Each simulation is single-threaded, which makes this implicit propagation
   exact — no payload constructor needs to change to carry the id.  The
   context is domain-local: parallel sweeps each see their own cell, so a
   worker domain cannot leak a transaction id into a sibling's run.

   [Domain.DLS] holds one mutable {e cell} per domain rather than the value
   itself: a network resolves its domain's cell once at [create], so the
   per-send read is a field load, not a DLS lookup.  The module-level
   [with_trace_context]/[trace_context] go through DLS and see the same
   cell — semantics are identical to storing the value in DLS directly. *)
type ctx_cell = { mutable ctx : string option }

let ctx_key : ctx_cell Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { ctx = None })

let trace_context () = (Domain.DLS.get ctx_key).ctx

let with_trace_context ctx f =
  let cell = Domain.DLS.get ctx_key in
  let saved = cell.ctx in
  cell.ctx <- ctx;
  match f () with
  | v ->
    cell.ctx <- saved;
    v
  | exception e ->
    cell.ctx <- saved;
    raise e

type t = {
  engine : Engine.t;
  topo : Topology.t;
  base_drop_probability : float;
  mutable drop_probability : float;
  mutable latency_factor : float;
  jitter_sigma : float;
  rng : Rng.t;
  handlers : (src:Topology.node_id -> payload -> unit) option array;
  failed : bool array;
  cut : (Topology.node_id * Topology.node_id, unit) Hashtbl.t;
  stats : stats;
  mutable meter : meter option;
  ctx_cell : ctx_cell;  (* this domain's trace-context cell, resolved once *)
  prof : Prof.t;  (* likewise — never a DLS read per send *)
}

let create engine topo ?(drop_probability = 0.0) ?(jitter_sigma = 0.05) () =
  {
    engine;
    topo;
    base_drop_probability = drop_probability;
    drop_probability;
    latency_factor = 1.0;
    jitter_sigma;
    rng = Rng.split (Engine.rng engine);
    handlers = Array.make (Topology.num_nodes topo) None;
    failed = Array.make (Topology.num_nodes topo) false;
    cut = Hashtbl.create 64;
    stats = { sent = 0; delivered = 0; dropped = 0 };
    meter = None;
    ctx_cell = Domain.DLS.get ctx_key;
    prof = Prof.ambient ();
  }

let set_meter t m = t.meter <- Some m

let clear_meter t = t.meter <- None

let engine t = t.engine

let topology t = t.topo

let register t node handler = t.handlers.(node) <- Some handler

let latency_sample t ~src ~dst =
  let base = Topology.one_way t.topo src dst in
  (* Minimum processing/stack delay so even loopback costs one event tick. *)
  let floor_latency = 0.25 in
  let jitter =
    if t.jitter_sigma <= 0.0 then 1.0
    else Rng.lognormal t.rng ~mu:0.0 ~sigma:t.jitter_sigma
  in
  floor_latency +. (base *. t.latency_factor *. jitter)

let link_cut t ~src ~dst = Hashtbl.mem t.cut (src, dst)

let blocked t ~src ~dst = t.failed.(src) || t.failed.(dst) || link_cut t ~src ~dst

let send t ~src ~dst payload =
  t.stats.sent <- t.stats.sent + 1;
  Prof.count_in t.prof "network.send";
  (* Size the payload once at send time and carry the byte count into the
     delivery closure: [m_size] walks the whole message, and computing it
     again at delivery doubled the metering cost of every message. *)
  let sized_bytes =
    match t.meter with
    | Some m ->
      let bytes = m.m_size payload in
      m.m_on_send ~src ~dst ~bytes;
      Prof.count_in t.prof ~by:bytes "network.sized_bytes";
      bytes
    | None -> 0
  in
  if blocked t ~src ~dst then t.stats.dropped <- t.stats.dropped + 1
  else if t.drop_probability > 0.0 && Rng.bernoulli t.rng t.drop_probability then
    t.stats.dropped <- t.stats.dropped + 1
  else begin
    let delay = latency_sample t ~src ~dst in
    let ctx = t.ctx_cell.ctx in
    ignore
      (Engine.schedule t.engine ~after:delay (fun () ->
           (* Failures and link cuts that happened while the message was in
              flight also kill it: a dead data center receives nothing. *)
           if blocked t ~src ~dst then t.stats.dropped <- t.stats.dropped + 1
           else begin
             match t.handlers.(dst) with
             | None -> t.stats.dropped <- t.stats.dropped + 1
             | Some handler ->
               t.stats.delivered <- t.stats.delivered + 1;
               (match t.meter with
               | Some m ->
                 (* A meter installed after the send was not sized; fall
                    back to sizing at delivery so its counters still move. *)
                 let bytes =
                   if sized_bytes > 0 then sized_bytes else m.m_size payload
                 in
                 m.m_on_deliver ~src ~dst ~bytes
               | None -> ());
               (* Inline context save/restore: [with_trace_context] would
                  cost a closure and a [Fun.protect] record per delivery. *)
               let cell = t.ctx_cell in
               let saved = cell.ctx in
               cell.ctx <- ctx;
               (match handler ~src payload with
               | () -> cell.ctx <- saved
               | exception e ->
                 cell.ctx <- saved;
                 raise e)
           end))
  end

let broadcast t ~src ~dsts payload = List.iter (fun dst -> send t ~src ~dst payload) dsts

let fail_node t node = t.failed.(node) <- true

let recover_node t node = t.failed.(node) <- false

let is_failed t node = t.failed.(node)

let fail_dc t dc = List.iter (fail_node t) (Topology.nodes_in_dc t.topo dc)

let recover_dc t dc = List.iter (recover_node t) (Topology.nodes_in_dc t.topo dc)

let cut_link t ~src ~dst = Hashtbl.replace t.cut (src, dst) ()

let heal_link t ~src ~dst = Hashtbl.remove t.cut (src, dst)

let set_drop_probability t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Network.set_drop_probability";
  t.drop_probability <- p

let drop_probability t = t.drop_probability

let base_drop_probability t = t.base_drop_probability

let set_latency_factor t f =
  if f <= 0.0 then invalid_arg "Network.set_latency_factor";
  t.latency_factor <- f

let latency_factor t = t.latency_factor

let heal_all t =
  Array.fill t.failed 0 (Array.length t.failed) false;
  Hashtbl.reset t.cut;
  t.drop_probability <- t.base_drop_probability;
  t.latency_factor <- 1.0

let stats t = t.stats
