let flag = ref false

let enable () = flag := true

let disable () = flag := false

let enabled () = !flag

let stdout_sink line = print_endline line

let sink = ref stdout_sink

let set_sink f = sink := f

let reset_sink () = sink := stdout_sink

let emit engine ~tag fmt =
  Printf.ksprintf
    (fun msg ->
      if !flag then
        !sink (Printf.sprintf "[%10.2f] %-12s %s" (Engine.now engine) tag msg))
    fmt
