type event = { at : float; source : string; body : string }

let render ev = Printf.sprintf "[%10.2f] %-12s %s" ev.at ev.source ev.body

let stdout_sink line = print_endline line

(* Trace state is domain-local: a chaos worker re-running a violating seed
   with tracing enabled must not turn tracing on (or redirect the sink) for
   runs executing concurrently on sibling domains.  Fresh domains start
   from the same defaults a fresh process would. *)
type state = {
  mutable flag : bool;
  mutable sink : string -> unit;
  mutable event_sink : (event -> unit) option;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { flag = false; sink = stdout_sink; event_sink = None })

let state () = Domain.DLS.get key

let enable () = (state ()).flag <- true

let disable () = (state ()).flag <- false

let enabled () = (state ()).flag

let set_sink f = (state ()).sink <- f

let reset_sink () = (state ()).sink <- stdout_sink

let set_event_sink f = (state ()).event_sink <- Some f

let reset_event_sink () = (state ()).event_sink <- None

let record ev =
  let s = state () in
  (match s.event_sink with Some f -> f ev | None -> ());
  if s.flag then s.sink (render ev)

(* A handle is this domain's state cell, resolved once.  Runtimes hold one
   so the per-trace-point liveness check is two field loads, not a DLS
   lookup — and the check happens *before* any formatting, so a disabled
   trace point costs no allocation at all. *)
type handle = state

let handle = state

let active (h : handle) = h.flag || h.event_sink <> None

let record_at (h : handle) ~at ~tag body =
  if h.flag || h.event_sink <> None then begin
    let ev = { at; source = tag; body } in
    (match h.event_sink with Some f -> f ev | None -> ());
    if h.flag then h.sink (render ev)
  end

let emit engine ~tag fmt =
  Printf.ksprintf
    (fun msg ->
      let s = state () in
      if s.flag || s.event_sink <> None then
        record { at = Engine.now engine; source = tag; body = msg })
    fmt

let emit_at ~at ~tag fmt =
  Printf.ksprintf
    (fun msg ->
      let s = state () in
      if s.flag || s.event_sink <> None then record { at; source = tag; body = msg })
    fmt
