type event = { at : float; source : string; body : string }

let flag = ref false

let enable () = flag := true

let disable () = flag := false

let enabled () = !flag

let render ev = Printf.sprintf "[%10.2f] %-12s %s" ev.at ev.source ev.body

let stdout_sink line = print_endline line

let sink = ref stdout_sink

let set_sink f = sink := f

let reset_sink () = sink := stdout_sink

let event_sink : (event -> unit) option ref = ref None

let set_event_sink f = event_sink := Some f

let reset_event_sink () = event_sink := None

let record ev =
  (match !event_sink with Some f -> f ev | None -> ());
  if !flag then !sink (render ev)

let emit engine ~tag fmt =
  Printf.ksprintf
    (fun msg ->
      if !flag || !event_sink <> None then
        record { at = Engine.now engine; source = tag; body = msg })
    fmt
