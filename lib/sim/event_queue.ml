module Prof = Mdcc_obs.Prof

type event = {
  seq : int;
  mutable cancelled : bool;
  run : unit -> unit;
}

(* The heap is split into two parallel pre-sized arrays: [ats] holds the
   event times unboxed ([float array] is flat), [evs] the handles.  A
   mixed record would box its [float] field, costing two words per push
   and a pointer chase per heap comparison; the split layout allocates
   nothing per operation beyond the handle itself and keeps the compare
   path inside one cache-friendly float array. *)
type t = {
  mutable ats : float array;
  mutable evs : event array;
  mutable len : int;
  mutable dead : int;  (* cancelled entries still sitting in the heap *)
  prof : Prof.t;  (* resolved once at create — never a DLS read per op *)
}

let dummy = { seq = 0; cancelled = true; run = ignore }

(* Below this size, cancelled entries are cheap enough to leave in place. *)
let compact_floor = 64

let create () =
  {
    ats = Array.make compact_floor 0.0;
    evs = Array.make compact_floor dummy;
    len = 0;
    dead = 0;
    prof = Prof.ambient ();
  }

let size t = t.len

let is_empty t = t.len = 0

let before t i j =
  let ai = t.ats.(i) and aj = t.ats.(j) in
  ai < aj || (ai = aj && t.evs.(i).seq < t.evs.(j).seq)

let grow t =
  let cap = 2 * Array.length t.evs in
  let ats = Array.make cap 0.0 and evs = Array.make cap dummy in
  Array.blit t.ats 0 ats 0 t.len;
  Array.blit t.evs 0 evs 0 t.len;
  t.ats <- ats;
  t.evs <- evs

let swap t i j =
  let a = t.ats.(i) and e = t.evs.(i) in
  t.ats.(i) <- t.ats.(j);
  t.evs.(i) <- t.evs.(j);
  t.ats.(j) <- a;
  t.evs.(j) <- e

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t l !smallest then smallest := l;
  if r < t.len && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* Drop every cancelled entry and re-heapify the survivors.  Heap order is
   a function only of the [(at, seq)] total order over live entries, so pop
   order — and therefore the simulation — is unaffected. *)
let compact t =
  Prof.count_in t.prof "event_queue.compact";
  let live = ref 0 in
  for i = 0 to t.len - 1 do
    let ev = t.evs.(i) in
    if not ev.cancelled then begin
      t.ats.(!live) <- t.ats.(i);
      t.evs.(!live) <- ev;
      incr live
    end
  done;
  Array.fill t.evs !live (t.len - !live) dummy;
  t.len <- !live;
  t.dead <- 0;
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done

let push t ~at ~seq run =
  Prof.count_in t.prof "event_queue.push";
  if t.len = Array.length t.evs then begin
    (* Reclaim dead entries before paying for a bigger array. *)
    if t.dead * 2 > t.len then compact t;
    if t.len = Array.length t.evs then grow t
  end;
  let ev = { seq; cancelled = false; run } in
  t.ats.(t.len) <- at;
  t.evs.(t.len) <- ev;
  t.len <- t.len + 1;
  sift_up t (t.len - 1);
  ev

(* Cancellation is lazy (the entry stays until popped), but a cancel-heavy
   run — every committed transaction cancels its timeout — would otherwise
   bloat the heap with dead entries.  Compact once they outnumber the live
   ones, so heap size stays within a constant factor of the live count. *)
let cancel t ev =
  if not ev.cancelled then begin
    Prof.count_in t.prof "event_queue.cancel";
    ev.cancelled <- true;
    t.dead <- t.dead + 1;
    if t.len >= compact_floor && t.dead * 2 > t.len then compact t
  end

(* Remove the root without inspecting it.  [drop_root] is the only place
   an entry leaves the heap. *)
let drop_root t =
  let ev = t.evs.(0) in
  t.len <- t.len - 1;
  t.ats.(0) <- t.ats.(t.len);
  t.evs.(0) <- t.evs.(t.len);
  t.evs.(t.len) <- dummy;
  if t.len > 0 then sift_down t 0;
  if ev.cancelled && t.dead > 0 then t.dead <- t.dead - 1

(* A single-field float record is stored flat, so writing [c.f] is a raw
   float store — the engine's clock lives in one of these and advances
   without a box per event. *)
type fcell = { mutable f : float }

(* The engine's dispatch primitive: remove and return the earliest live
   event whose time is <= [limit], discarding cancelled roots on the way;
   [dummy] when none qualifies.  The popped event's time is written into
   [now] (the engine's clock cell).  Everything stays in unboxed floats —
   no option, no float box, no closure — so a simulation's inner loop
   allocates nothing per dispatched event. *)
let rec pop_before t ~limit ~now =
  if t.len = 0 then dummy
  else begin
    let ev = t.evs.(0) in
    if ev.cancelled then begin
      drop_root t;
      pop_before t ~limit ~now
    end
    else if t.ats.(0) <= limit then begin
      now.f <- t.ats.(0);
      drop_root t;
      Prof.count_in t.prof "event_queue.pop";
      ev
    end
    else dummy
  end

let is_dummy ev = ev == dummy

let rec pop t =
  if t.len = 0 then None
  else begin
    let ev = t.evs.(0) in
    drop_root t;
    if ev.cancelled then pop t
    else begin
      Prof.count_in t.prof "event_queue.pop";
      Some ev
    end
  end

let rec peek_time t =
  if t.len = 0 then None
  else if t.evs.(0).cancelled then begin
    (* Lazily discard cancelled events sitting at the root. *)
    drop_root t;
    peek_time t
  end
  else Some t.ats.(0)
