type event = {
  at : float;
  seq : int;
  mutable cancelled : bool;
  run : unit -> unit;
}

type t = {
  mutable heap : event array;
  mutable len : int;
  mutable dead : int;  (* cancelled entries still sitting in the heap *)
}

let dummy = { at = 0.0; seq = 0; cancelled = true; run = ignore }

(* Below this size, cancelled entries are cheap enough to leave in place. *)
let compact_floor = 64

let create () = { heap = Array.make compact_floor dummy; len = 0; dead = 0 }

let size t = t.len

let is_empty t = t.len = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let bigger = Array.make (Array.length t.heap * 2) dummy in
  Array.blit t.heap 0 bigger 0 t.len;
  t.heap <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

(* Drop every cancelled entry and re-heapify the survivors.  Heap order is
   a function only of the [(at, seq)] total order over live entries, so pop
   order — and therefore the simulation — is unaffected. *)
let compact t =
  Mdcc_obs.Prof.count "event_queue.compact";
  let live = ref 0 in
  for i = 0 to t.len - 1 do
    let ev = t.heap.(i) in
    if not ev.cancelled then begin
      t.heap.(!live) <- ev;
      incr live
    end
  done;
  Array.fill t.heap !live (t.len - !live) dummy;
  t.len <- !live;
  t.dead <- 0;
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done

let push t ~at ~seq run =
  Mdcc_obs.Prof.count "event_queue.push";
  if t.len = Array.length t.heap then begin
    (* Reclaim dead entries before paying for a bigger array. *)
    if t.dead * 2 > t.len then compact t;
    if t.len = Array.length t.heap then grow t
  end;
  let ev = { at; seq; cancelled = false; run } in
  t.heap.(t.len) <- ev;
  t.len <- t.len + 1;
  sift_up t (t.len - 1);
  ev

(* Cancellation is lazy (the entry stays until popped), but a cancel-heavy
   run — every committed transaction cancels its timeout — would otherwise
   bloat the heap with dead entries.  Compact once they outnumber the live
   ones, so heap size stays within a constant factor of the live count. *)
let cancel t ev =
  if not ev.cancelled then begin
    Mdcc_obs.Prof.count "event_queue.cancel";
    ev.cancelled <- true;
    t.dead <- t.dead + 1;
    if t.len >= compact_floor && t.dead * 2 > t.len then compact t
  end

let pop_any t =
  if t.len = 0 then None
  else begin
    let ev = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy;
    if t.len > 0 then sift_down t 0;
    if ev.cancelled && t.dead > 0 then t.dead <- t.dead - 1;
    Some ev
  end

let rec pop t =
  match pop_any t with
  | None -> None
  | Some ev ->
      if ev.cancelled then pop t
      else begin
        Mdcc_obs.Prof.count "event_queue.pop";
        Some ev
      end

let rec peek_time t =
  if t.len = 0 then None
  else if t.heap.(0).cancelled then begin
    (* Lazily discard cancelled events sitting at the root. *)
    ignore (pop_any t);
    peek_time t
  end
  else Some t.heap.(0).at
