(** Lightweight, globally-switched protocol tracing.

    Disabled by default so the hot simulation loop pays only a flag check;
    enable it in tests or from the CLI's [--trace] flag to get a readable
    interleaved log of protocol decisions with virtual timestamps. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val emit : Engine.t -> tag:string -> ('a, unit, string, unit) format4 -> 'a
(** [emit engine ~tag fmt ...] formats ["[%8.2f] %-10s msg"] and hands the
    line to the current sink when tracing is enabled; otherwise the
    arguments are consumed and ignored. *)

val set_sink : (string -> unit) -> unit
(** Redirect trace lines (without trailing newline) to a custom consumer —
    e.g. a buffer, so a chaos run can attach the interleaved protocol trace
    of a violating seed to its report instead of losing it to the
    terminal. *)

val reset_sink : unit -> unit
(** Restore the default stdout sink. *)
