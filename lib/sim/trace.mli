(** Lightweight, globally-switched protocol tracing.

    Trace points produce structured {!event}s; the human-readable log line
    is one {e rendering} of an event.  Disabled by default so the hot
    simulation loop pays only a flag check; enable it in tests or from the
    CLI's [--trace] flag to get a readable interleaved log of protocol
    decisions with virtual timestamps, or install an event sink to consume
    the structured form directly. *)

type event = {
  at : float;  (** virtual (sim) timestamp, milliseconds *)
  source : string;  (** emitting component tag, e.g. ["node 3"] *)
  body : string;  (** formatted message *)
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val emit : Engine.t -> tag:string -> ('a, unit, string, unit) format4 -> 'a
(** [emit engine ~tag fmt ...] builds an {!event} and records it when
    tracing is enabled {e or} an event sink is installed; otherwise the
    arguments are consumed and ignored. *)

val emit_at : at:float -> tag:string -> ('a, unit, string, unit) format4 -> 'a
(** {!emit} with an explicit timestamp instead of an engine clock — the
    entry point for non-simulated runtimes (the socket runtime stamps
    events with its own monotonic clock). *)

val render : event -> string
(** The canonical line rendering ["[%10.2f] %-12s %s"] used by the line
    sink. *)

val set_sink : (string -> unit) -> unit
(** Redirect rendered trace lines (without trailing newline) to a custom
    consumer — e.g. a buffer, so a chaos run can attach the interleaved
    protocol trace of a violating seed to its report instead of losing it to
    the terminal.  Only called when tracing is enabled. *)

val reset_sink : unit -> unit
(** Restore the default stdout sink. *)

val set_event_sink : (event -> unit) -> unit
(** Install a structured consumer.  Unlike the line sink it receives events
    even while tracing is disabled — observability collectors should not
    force verbose logging on. *)

val reset_event_sink : unit -> unit

type handle
(** This domain's trace state, resolved once (a [Domain.DLS] lookup) so a
    runtime's per-trace-point liveness check is two field loads.  Like the
    profiler's ambient, a handle is only valid on the domain that resolved
    it. *)

val handle : unit -> handle

val active : handle -> bool
(** [true] when tracing is enabled or an event sink is installed — i.e.
    when building a trace line would not be wasted work.  Runtimes check
    this {e before} formatting so disabled trace points allocate nothing. *)

val record_at : handle -> at:float -> tag:string -> string -> unit
(** Record an already-rendered message as an event at [at]; a no-op unless
    {!active}. *)
