(** Binary min-heap of timestamped events.

    Ordering is by [(time, sequence-number)]: the sequence number is assigned
    by the engine at insertion, so events scheduled for the same instant fire
    in insertion order and every simulation run is fully deterministic. *)

type event = private {
  at : float;  (** virtual time in milliseconds *)
  seq : int;  (** insertion tie-breaker *)
  mutable cancelled : bool;
  run : unit -> unit;
}

type t
(** The mutable heap. *)

val create : unit -> t

val size : t -> int
(** Entries in the heap, including not-yet-discarded cancelled events.
    Cancelled entries never exceed half the heap (plus a small constant
    floor): {!cancel} compacts once they outnumber live entries. *)

val is_empty : t -> bool

val push : t -> at:float -> seq:int -> (unit -> unit) -> event
(** Insert an event; the returned handle can be cancelled. *)

val cancel : t -> event -> unit
(** Mark the event dead; it is skipped (and dropped) when popped.  When
    cancelled entries exceed half of {!size} the heap is compacted in
    place, so cancel-heavy runs stay bounded by the live event count.
    Idempotent. *)

val pop : t -> event option
(** Remove and return the earliest non-cancelled event, if any. *)

val peek_time : t -> float option
(** Timestamp of the earliest non-cancelled event, if any. *)
