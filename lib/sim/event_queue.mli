(** Binary min-heap of timestamped events.

    Ordering is by [(time, sequence-number)]: the sequence number is assigned
    by the engine at insertion, so events scheduled for the same instant fire
    in insertion order and every simulation run is fully deterministic.

    Storage is two parallel pre-sized arrays — a flat [float array] of times
    and an array of handles — so heap comparisons never chase a pointer and
    no per-operation tuple or float box is allocated: a push allocates
    exactly the returned handle, and the {!pop_before} dispatch path
    allocates nothing at all. *)

type event = private {
  seq : int;  (** insertion tie-breaker *)
  mutable cancelled : bool;
  run : unit -> unit;
}
(** A scheduled event.  The event's time lives in the heap's flat float
    array, not here — a [float] field in this mixed record would be boxed
    on every push. *)

type t
(** The mutable heap. *)

type fcell = { mutable f : float }
(** A single-field float record: stored flat, so writes are raw float
    stores.  The engine's virtual clock is one of these. *)

val create : unit -> t
(** Fresh empty heap.  The profiler handle is resolved from the ambient
    once here, never per operation. *)

val size : t -> int
(** Entries in the heap, including not-yet-discarded cancelled events.
    Cancelled entries never exceed half the heap (plus a small constant
    floor): {!cancel} compacts once they outnumber live entries. *)

val is_empty : t -> bool

val push : t -> at:float -> seq:int -> (unit -> unit) -> event
(** Insert an event; the returned handle can be cancelled. *)

val cancel : t -> event -> unit
(** Mark the event dead; it is skipped (and dropped) when popped.  When
    cancelled entries exceed half of {!size} the heap is compacted in
    place, so cancel-heavy runs stay bounded by the live event count.
    Idempotent. *)

val pop_before : t -> limit:float -> now:fcell -> event
(** Remove and return the earliest live event with time [<= limit],
    writing its time into [now]; returns {!dummy} (test with {!is_dummy})
    when the heap is empty or the next live event is after [limit].
    Allocation-free: this is the engine's dispatch primitive. *)

val is_dummy : event -> bool
(** [true] exactly for the sentinel {!pop_before} returns on exhaustion. *)

val pop : t -> event option
(** Remove and return the earliest non-cancelled event, if any. *)

val peek_time : t -> float option
(** Timestamp of the earliest non-cancelled event, if any. *)
