module Runtime = Mdcc_core.Runtime
module Net = Mdcc_sim.Network
module Trace = Mdcc_sim.Trace
module Rng = Mdcc_util.Rng
module Prof = Mdcc_obs.Prof

type meter = {
  w_size : Net.payload -> int;
  w_on_send : src:int -> dst:int -> bytes:int -> unit;
  w_on_deliver : src:int -> dst:int -> bytes:int -> unit;
}

type conn_handlers = {
  on_data : bytes -> int -> int -> unit;
  on_close : unit -> unit;
}

type conn = {
  c_fd : Unix.file_descr;
  c_loop : t;
  c_out : string Queue.t;  (* unsent chunks; head may be partially written *)
  mutable c_out_off : int;  (* written prefix of the head chunk *)
  mutable c_buffered : int;  (* total unsent bytes *)
  mutable c_open : bool;
  mutable c_close_after_flush : bool;
  mutable c_handlers : conn_handlers option;
}

and t = {
  origin : float;  (* gettimeofday at create, seconds *)
  wheel : Timer_wheel.t;
  run_q : (unit -> unit) Queue.t;  (* loop-domain only *)
  posted : (unit -> unit) Queue.t;  (* cross-domain, under [posted_mx] *)
  posted_mx : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  handlers : (int, src:int -> Net.payload -> unit) Hashtbl.t;
  mutable listeners : (Unix.file_descr * (conn -> conn_handlers)) list;
  mutable conns : conn list;
  rng : Rng.t;
  dc_of : int -> int;
  stop : bool Atomic.t;
  mutable meter : meter option;
  rbuf : bytes;  (* shared read scratch *)
  mutable rt : Runtime.t option;  (* built once, cyclically *)
}

let clock t = (Unix.gettimeofday () -. t.origin) *. 1000.0

let now = clock

let create ?(seed = 1) ?(dc_of = fun _ -> 0) () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let origin = Unix.gettimeofday () in
  {
    origin;
    wheel = Timer_wheel.create ~now:0.0 ();
    run_q = Queue.create ();
    posted = Queue.create ();
    posted_mx = Mutex.create ();
    wake_r;
    wake_w;
    handlers = Hashtbl.create 32;
    listeners = [];
    conns = [];
    rng = Rng.create seed;
    dc_of;
    stop = Atomic.make false;
    meter = None;
    rbuf = Bytes.create 65536;
    rt = None;
  }

let set_meter t m = t.meter <- Some m

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

let post t f =
  Mutex.lock t.posted_mx;
  Queue.add f t.posted;
  Mutex.unlock t.posted_mx;
  wake t

let request_stop t =
  Atomic.set t.stop true;
  wake t

let stop_requested t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* The Runtime interface                                               *)
(* ------------------------------------------------------------------ *)

let deliver t ~src ~dst payload =
  (* Capture the sender's causal context now; restore it around the
     destination handler — the socket-runtime twin of Network.send. *)
  let ctx = Net.trace_context () in
  (match t.meter with
  | Some m -> m.w_on_send ~src ~dst ~bytes:(m.w_size payload)
  | None -> ());
  Queue.add
    (fun () ->
      match Hashtbl.find_opt t.handlers dst with
      | None -> ()
      | Some handler ->
        (match t.meter with
        | Some m -> m.w_on_deliver ~src ~dst ~bytes:(m.w_size payload)
        | None -> ());
        Net.with_trace_context ctx (fun () -> handler ~src payload))
    t.run_q

let runtime t =
  match t.rt with
  | Some rt -> rt
  | None ->
    let th = Trace.handle () in
    let rt =
      Runtime.make
        ~now:(fun () -> clock t)
        ~send:(fun ~src ~dst payload -> deliver t ~src ~dst payload)
        ~register:(fun node handler -> Hashtbl.replace t.handlers node handler)
        ~set_timer:(fun ~after f ->
          let timer = Timer_wheel.set t.wheel ~now:(clock t) ~after f in
          fun () -> Timer_wheel.cancel t.wheel timer)
        ~spawn:(fun f -> Queue.add f t.run_q)
        ~rng:t.rng
        ~dc_of:t.dc_of
        ~trace:(fun ~tag msg -> Trace.record_at th ~at:(clock t) ~tag msg)
        ~tracing:(fun () -> Trace.active th)
        ()
    in
    t.rt <- Some rt;
    rt

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let conn_buffered c = c.c_buffered

let open_conns t = List.length t.conns

let buffered_bytes t = List.fold_left (fun acc c -> acc + c.c_buffered) 0 t.conns

let max_conn_buffered t =
  List.fold_left (fun acc c -> max acc c.c_buffered) 0 t.conns

let timers_pending t = Timer_wheel.pending t.wheel

let teardown c =
  if c.c_open then begin
    c.c_open <- false;
    c.c_loop.conns <- List.filter (fun c' -> c' != c) c.c_loop.conns;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    match c.c_handlers with Some h -> h.on_close () | None -> ()
  end

(* Write as much of the queue as the socket accepts; true = fully flushed. *)
let flush_out c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.c_out) do
    let chunk = Queue.peek c.c_out in
    let len = String.length chunk - c.c_out_off in
    match Unix.write_substring c.c_fd chunk c.c_out_off len with
    | n ->
      c.c_buffered <- c.c_buffered - n;
      if n = len then begin
        ignore (Queue.pop c.c_out);
        c.c_out_off <- 0
      end
      else begin
        c.c_out_off <- c.c_out_off + n;
        continue := false
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      teardown c;
      continue := false
  done;
  c.c_open && Queue.is_empty c.c_out

let write c data =
  if c.c_open && String.length data > 0 then begin
    Queue.add data c.c_out;
    c.c_buffered <- c.c_buffered + String.length data;
    ignore (flush_out c)
  end

let close c =
  if c.c_open then
    if Queue.is_empty c.c_out then teardown c else c.c_close_after_flush <- true

let listen t ?(backlog = 64) ?(addr = "127.0.0.1") ~port on_conn =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  t.listeners <- (fd, on_conn) :: t.listeners;
  match Unix.getsockname fd with
  | ADDR_INET (_, bound) -> bound
  | ADDR_UNIX _ -> port

let close_listeners t =
  List.iter (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- []

let accept_ready t (lfd, on_conn) =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _peer ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      let c =
        {
          c_fd = fd;
          c_loop = t;
          c_out = Queue.create ();
          c_out_off = 0;
          c_buffered = 0;
          c_open = true;
          c_close_after_flush = false;
          c_handlers = None;
        }
      in
      t.conns <- c :: t.conns;
      c.c_handlers <- Some (on_conn c)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let read_ready t c =
  match Unix.read c.c_fd t.rbuf 0 (Bytes.length t.rbuf) with
  | 0 -> teardown c
  | n -> ( match c.c_handlers with Some h -> h.on_data t.rbuf 0 n | None -> ())
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> teardown c

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)
(* ------------------------------------------------------------------ *)

let drain_posted t =
  Mutex.lock t.posted_mx;
  Queue.transfer t.posted t.run_q;
  Mutex.unlock t.posted_mx

let drain_run_q t =
  while not (Queue.is_empty t.run_q) do
    (Queue.pop t.run_q) ()
  done

(* Phase spans cost a DLS read + branch each when profiling is off (the
   default); with [--profile] they attribute the loop's time across
   drain / timer-wheel / select / socket-I/O. *)
let poll t ~max_wait_ms =
  Prof.span "loop.drain" (fun () ->
      drain_posted t;
      drain_run_q t);
  Prof.span "loop.timers" (fun () ->
      Timer_wheel.advance t.wheel ~now:(clock t);
      drain_run_q t);
  let timeout =
    if not (Queue.is_empty t.run_q) then 0.0
    else begin
      let cap = Float.max 0.0 max_wait_ms in
      match Timer_wheel.next_deadline t.wheel with
      | None -> cap
      | Some at -> Float.min cap (Float.max 0.0 (at -. clock t))
    end
  in
  let reads =
    (t.wake_r :: List.map fst t.listeners)
    @ List.filter_map (fun c -> if c.c_open then Some c.c_fd else None) t.conns
  in
  let writes =
    List.filter_map
      (fun c -> if c.c_open && not (Queue.is_empty c.c_out) then Some c.c_fd else None)
      t.conns
  in
  let selected =
    Prof.span "loop.select" (fun () ->
        match Unix.select reads writes [] (timeout /. 1000.0) with
        | exception Unix.Unix_error (EINTR, _, _) -> None
        | exception Unix.Unix_error (EBADF, _, _) -> None
        | readable, writable, _ -> Some (readable, writable))
  in
  match selected with
  | None -> ()
  | Some (readable, writable) ->
    Prof.span "loop.io" (fun () ->
        if List.mem t.wake_r readable then begin
          let continue = ref true in
          while !continue do
            match Unix.read t.wake_r t.rbuf 0 64 with
            | n -> continue := n = 64
            | exception Unix.Unix_error _ -> continue := false
          done
        end;
        List.iter
          (fun (lfd, on_conn) ->
            if List.mem lfd readable then accept_ready t (lfd, on_conn))
          t.listeners;
        (* Snapshot: handlers may open/close connections while we iterate. *)
        let snapshot = t.conns in
        List.iter
          (fun c ->
            if c.c_open && List.mem c.c_fd writable then
              if flush_out c && c.c_close_after_flush then teardown c)
          snapshot;
        List.iter
          (fun c -> if c.c_open && List.mem c.c_fd readable then read_ready t c)
          snapshot)

let run t =
  while not (Atomic.get t.stop) do
    poll t ~max_wait_ms:100.0
  done
