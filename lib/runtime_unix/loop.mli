(** The real-time runtime: a select-based event loop over OS sockets.

    One loop runs on one domain and executes {e all} protocol state-machine
    callbacks — message deliveries, timers, spawned thunks — sequentially,
    preserving the single-threaded execution discipline the state machines
    were verified under in the simulator.  Sibling domains (signal
    handlers, load-generator threads, a supervising CLI) talk to the loop
    only through {!post} and {!request_stop}, both cross-domain safe.

    Node-to-node messages stay in-process: {!Mdcc_core.Runtime.send}
    enqueues the delivery on the run queue (asynchronous, never reentrant),
    with the sender's causal trace context captured and restored exactly as
    the simulated network does.  The sockets carry {e client} traffic — the
    memcached-style wire protocol of [Mdcc_wire] — via listeners,
    per-connection read callbacks, and per-connection write queues flushed
    as the peer drains them. *)

type t

val create : ?seed:int -> ?dc_of:(int -> int) -> unit -> t
(** [seed] (default 1) feeds the runtime's root {!Mdcc_util.Rng}; [dc_of]
    (default [fun _ -> 0]) gives replica locality to the coordinator's
    local reads. *)

val runtime : t -> Mdcc_core.Runtime.t
(** The {!Mdcc_core.Runtime} interface of this loop: [now] is monotonic
    process time in milliseconds, timers live on a {!Timer_wheel}, sends
    are run-queue deliveries. *)

val now : t -> float
(** Milliseconds since {!create} (the runtime's clock). *)

type meter = {
  w_size : Mdcc_sim.Network.payload -> int;
  w_on_send : src:int -> dst:int -> bytes:int -> unit;
  w_on_deliver : src:int -> dst:int -> bytes:int -> unit;
}
(** Observability hook mirroring {!Mdcc_sim.Network.meter}: the size
    estimator is supplied by the protocol layer ([Messages.size_of]), so
    byte accounting has a single source of truth across both runtimes. *)

val set_meter : t -> meter -> unit

(** {1 Connections} *)

type conn

type conn_handlers = {
  on_data : bytes -> int -> int -> unit;
      (** [on_data buf off len]: bytes read from the peer.  The buffer is
          the loop's scratch buffer — consume or copy before returning. *)
  on_close : unit -> unit;  (** peer closed, or {!close} completed *)
}

val listen :
  t -> ?backlog:int -> ?addr:string -> port:int -> (conn -> conn_handlers) -> int
(** Open a listening TCP socket ([addr] defaults to 127.0.0.1) and return
    the bound port (useful with [port:0] for an ephemeral port). *)

val close_listeners : t -> unit
(** Stop accepting new connections (first step of a graceful drain);
    established connections are untouched. *)

val write : conn -> string -> unit
(** Queue bytes for the peer; flushed eagerly when the socket allows and
    from the loop as it becomes writable.  Silently dropped on a closed
    connection (the peer is gone; the protocol has no one to answer). *)

val close : conn -> unit
(** Flush the pending write queue, then close. *)

val conn_buffered : conn -> int
(** Bytes queued but not yet written to the socket. *)

val open_conns : t -> int

val buffered_bytes : t -> int
(** Total unflushed bytes across connections (drain predicate input). *)

val max_conn_buffered : t -> int
(** Largest single connection write-queue depth, in bytes (the
    [metrics] gauge for per-connection backpressure). *)

val timers_pending : t -> int
(** Live timers on the wheel (the [metrics] occupancy gauge). *)

(** {1 Driving the loop} *)

val post : t -> (unit -> unit) -> unit
(** Enqueue a thunk from any domain; wakes the loop if it is sleeping in
    select.  The thunk runs on the loop domain. *)

val request_stop : t -> unit
(** Ask {!run} to return after the current iteration.  Async-signal and
    cross-domain safe (an atomic flag plus a self-pipe wake-up). *)

val stop_requested : t -> bool

val poll : t -> max_wait_ms:float -> unit
(** One loop iteration: drain posted/spawned thunks, advance the timer
    wheel, then select on listeners/connections for at most [max_wait_ms]
    (clipped to the next timer deadline; 0 returns immediately).  Exposed
    for tests and custom drivers. *)

val run : t -> unit
(** Iterate {!poll} until {!request_stop}. *)
