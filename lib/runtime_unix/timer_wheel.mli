(** A hashed timer wheel for the socket runtime.

    Timers are bucketed into fixed-width ticks on a circular slot array;
    setting and cancelling are O(1), and {!advance} fires everything due as
    the cursor sweeps forward.  Same-tick timers fire in (deadline,
    insertion) order so the wheel preserves the scheduling discipline the
    simulator's event heap gives protocol timeouts. *)

type t

type timer
(** A pending timer; cancellation is lazy (O(1) flag flip). *)

val create : ?slots:int -> ?tick_ms:float -> now:float -> unit -> t
(** [slots] (default 512) circular buckets of [tick_ms] (default 1.0)
    milliseconds each.  [now] anchors the cursor. *)

val set : t -> now:float -> after:float -> (unit -> unit) -> timer
(** [set t ~now ~after f] schedules [f] at [now +. after] (clamped to the
    next tick — a timer never fires inside the call that sets it). *)

val cancel : t -> timer -> unit
(** A no-op if the timer already fired or was already cancelled. *)

val advance : t -> now:float -> unit
(** Fire every live timer with a deadline at or before [now].  Callbacks
    may set new timers (including zero-delay ones: they land on a future
    tick and fire in the same sweep only once the cursor reaches it). *)

val next_deadline : t -> float option
(** Earliest live deadline, for the I/O multiplexer's sleep bound. *)

val pending : t -> int
(** Live (set, not yet fired, not cancelled) timers. *)
