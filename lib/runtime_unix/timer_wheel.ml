type entry = {
  e_at : float;  (* absolute deadline, ms *)
  e_tick : int;  (* tick the entry fires on *)
  e_seq : int;  (* insertion order, for stable same-tick firing *)
  e_cb : unit -> unit;
  mutable e_live : bool;
}

type timer = entry

type t = {
  slots : entry list array;  (* unordered; sorted at fire time *)
  tick_ms : float;
  mutable cursor : int;  (* last fully-processed tick *)
  mutable seq : int;
  mutable live : int;
}

(* The slot lists are physically mutable via Array.set only — no per-entry
   links, so a cancelled timer is simply skipped and dropped at sweep time. *)

let tick_of t at = int_of_float (Float.max 0.0 at /. t.tick_ms)

let create ?(slots = 512) ?(tick_ms = 1.0) ~now () =
  if slots <= 0 || tick_ms <= 0.0 then
    invalid_arg "Timer_wheel.create: slots and tick_ms must be positive";
  let t = { slots = Array.make slots []; tick_ms; cursor = 0; seq = 0; live = 0 } in
  t.cursor <- tick_of t now;
  t

let set t ~now ~after f =
  let at = now +. Float.max 0.0 after in
  (* Never on or before the cursor: a timer set "for now" fires on the next
     sweep step, exactly like the simulator's clamped-to-now events. *)
  let tick = Stdlib.max (tick_of t at) (t.cursor + 1) in
  let e = { e_at = at; e_tick = tick; e_seq = t.seq; e_cb = f; e_live = true } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  let idx = tick mod Array.length t.slots in
  t.slots.(idx) <- e :: t.slots.(idx);
  e

let cancel t e =
  if e.e_live then begin
    e.e_live <- false;
    t.live <- t.live - 1
  end

let advance t ~now =
  let target = tick_of t now in
  while t.cursor < target do
    t.cursor <- t.cursor + 1;
    let idx = t.cursor mod Array.length t.slots in
    let due, later =
      List.partition (fun e -> e.e_tick <= t.cursor) t.slots.(idx)
    in
    t.slots.(idx) <- later;
    let due = List.filter (fun e -> e.e_live) due in
    let due =
      List.sort
        (fun a b ->
          match Float.compare a.e_at b.e_at with
          | 0 -> Int.compare a.e_seq b.e_seq
          | c -> c)
        due
    in
    List.iter
      (fun e ->
        if e.e_live then begin
          e.e_live <- false;
          t.live <- t.live - 1;
          e.e_cb ()
        end)
      due
  done

let next_deadline t =
  if t.live = 0 then None
  else
    Array.fold_left
      (fun acc entries ->
        List.fold_left
          (fun acc e ->
            if not e.e_live then acc
            else
              match acc with
              | Some best when best <= e.e_at -> acc
              | Some _ | None -> Some e.e_at)
          acc entries)
      None t.slots

let pending t = t.live
