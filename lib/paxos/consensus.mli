(** A self-contained Classic/Fast Paxos consensus instance over the
    simulated network.

    This is the textbook substrate MDCC builds on (§3.1, §3.3): one
    consensus instance deciding a single value among [n] replica acceptors,
    supporting both
    {ul
    {- {e classic ballots} — a proposer first owns a ballot via Phase 1,
       then gets a value accepted by a classic quorum; and}
    {- {e fast ballots} — anybody sends a value straight to the acceptors
       (ballot 0 is implicitly fast); the value is chosen once a fast
       quorum accepted it; conflicting fast proposals cause a collision
       that some proposer resolves by running a classic ballot, re-proposing
       the possibly-chosen value per the ProvedSafe rule.}}

    The module exists (a) as a reference implementation whose safety is
    checked by randomized-schedule tests (agreement, validity, and
    fast-quorum anchoring), and (b) as the conceptual core from which the
    MDCC record protocol in {!Mdcc_core} generalizes — there, the "value"
    becomes an option with an accept/reject outcome and instances hang off
    every record version.

    The value type is [string] (tests use opaque tokens); the module is
    deliberately minimal and independent of the storage layer. *)

type t
(** One consensus group (the set of acceptor nodes plus client-side
    proposer handles). *)

val create :
  net:Mdcc_sim.Network.t ->
  acceptors:Mdcc_sim.Topology.node_id list ->
  ?obs:Mdcc_obs.Obs.t ->
  unit ->
  t
(** Register acceptor handlers on the given nodes.  At least 3 acceptors.
    [obs] (default: the ambient handle) receives [cp_*] counters (fast
    accepts/rejects, Phase 1 promises, Phase 2 votes, collisions, classic
    rounds, decisions) and span events keyed by a synthetic ["cp-<pid>"]
    transaction id. *)

val propose_fast :
  t -> from:Mdcc_sim.Topology.node_id -> string -> (string -> unit) -> unit
(** Fire-and-learn a value on the fast path from node [from]; the callback
    delivers the {e chosen} value (which may be a competitor's if this
    proposal collided and lost).  The proposer watches for collisions and
    falls back to a classic ballot automatically. *)

val propose_classic :
  t -> from:Mdcc_sim.Topology.node_id -> string -> (string -> unit) -> unit
(** Run Phase 1 + Phase 2 with a fresh classic ballot from node [from]. *)

val decided : t -> string option
(** The value this group's acceptors have chosen, if observable from the
    outside (scans acceptor state; test hook). *)

val chosen_values : t -> string list
(** Every value any learner callback has reported — agreement holds iff
    this list has at most one distinct element (test hook). *)
