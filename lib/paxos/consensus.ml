module Net = Mdcc_sim.Network
module Engine = Mdcc_sim.Engine
module Rng = Mdcc_util.Rng
module Invariant = Mdcc_util.Invariant
module Obs = Mdcc_obs.Obs

type Net.payload +=
  | Cp_fast of { pid : int; value : string }
  | Cp_fast_reply of { pid : int; ballot : Ballot.t; value : string option }
  | Cp_phase1a of { pid : int; ballot : Ballot.t }
  | Cp_phase1b of {
      pid : int;
      ballot : Ballot.t;
      ok : bool;
      promised : Ballot.t;
      vote : (Ballot.t * string) option;
    }
  | Cp_phase2a of { pid : int; ballot : Ballot.t; value : string }
  | Cp_phase2b of { pid : int; ballot : Ballot.t; ok : bool }

type astate = {
  mutable promised : Ballot.t;
  mutable vballot : Ballot.t option;
  mutable vvalue : string option;
}

type phase = Fast_wait | P1_wait | P2_wait | Done

type pstate = {
  pid : int;
  from : int;
  my_value : string;
  callback : string -> unit;
  mutable phase : phase;
  mutable ballot : Ballot.t;
  mutable fast_replies : (int * (Ballot.t * string) option) list;
  mutable p1_replies : (int * (Ballot.t * string) option) list;
  mutable p2_acks : int list;
  mutable p2_value : string;
  mutable attempts : int;
}

type t = {
  net : Net.t;
  engine : Engine.t;
  acceptors : int list;
  states : (int, astate) Hashtbl.t;  (* acceptor node -> state *)
  pending : (int, pstate) Hashtbl.t;  (* pid -> proposal *)
  mutable next_pid : int;
  mutable highest_number : int;
  mutable chosen : string list;
  rng : Rng.t;
  obs : Obs.t;
}

(* Standalone consensus instances have no transaction; spans are keyed by a
   synthetic "cp-<pid>" id so vote/learn events still form a tree. *)
let span_id pid = Printf.sprintf "cp-%d" pid

let n t = List.length t.acceptors

let qc t = Quorum.classic_size ~n:(n t)

let qf t = Quorum.fast_size ~n:(n t)

let astate t node =
  match Hashtbl.find_opt t.states node with
  | Some s -> s
  | None ->
    let s = { promised = Ballot.initial_fast; vballot = None; vvalue = None } in
    Hashtbl.replace t.states node s;
    s

(* ------------------------------------------------------------------ *)
(* Acceptor                                                             *)
(* ------------------------------------------------------------------ *)

let span t ~pid ~node ~name ~detail =
  Obs.span_event t.obs ~txid:(span_id pid) ~at:(Engine.now t.engine) ~node ~name ~detail ()

let acceptor_handle t node ~src payload =
  let s = astate t node in
  let reply p = Net.send t.net ~src:node ~dst:src p in
  match payload with
  | Cp_fast { pid; value } ->
    (* Accept the first fast value while still on the implicit fast ballot. *)
    let accepted = Ballot.is_fast s.promised && s.vvalue = None in
    if accepted then begin
      s.vballot <- Some Ballot.initial_fast;
      s.vvalue <- Some value
    end;
    Obs.incr t.obs (if accepted then "cp_fast_accept" else "cp_fast_reject");
    span t ~pid ~node ~name:"vote" ~detail:(if accepted then "fast acc" else "fast rej");
    reply (Cp_fast_reply { pid; ballot = Option.value s.vballot ~default:s.promised; value = s.vvalue })
  | Cp_phase1a { pid; ballot } ->
    let ok = Ballot.compare ballot s.promised > 0 in
    if ok then s.promised <- ballot;
    if ok then Obs.incr t.obs "cp_phase1_promise";
    let vote =
      match (s.vballot, s.vvalue) with Some b, Some v -> Some (b, v) | _ -> None
    in
    reply (Cp_phase1b { pid; ballot; ok; promised = s.promised; vote })
  | Cp_phase2a { pid; ballot; value } ->
    let ok = Ballot.compare ballot s.promised >= 0 in
    if ok then begin
      s.promised <- ballot;
      s.vballot <- Some ballot;
      s.vvalue <- Some value
    end;
    if ok then Obs.incr t.obs "cp_phase2_vote";
    span t ~pid ~node ~name:"vote" ~detail:(if ok then "classic acc" else "classic rej");
    reply (Cp_phase2b { pid; ballot; ok })
  (* Proposer-bound replies; an acceptor never consumes them. *)
  | Cp_fast_reply _ | Cp_phase1b _ | Cp_phase2b _ -> ()
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Proposer                                                             *)
(* ------------------------------------------------------------------ *)

let finish t p value =
  if p.phase <> Done then begin
    p.phase <- Done;
    t.chosen <- value :: t.chosen;
    Obs.incr t.obs "cp_decided";
    span t ~pid:p.pid ~node:p.from ~name:"learn" ~detail:"decided";
    p.callback value
  end

(* Exponential backoff so dueling proposers leave each other a window of
   about a wide-area Phase1+Phase2 (Lamport's liveness argument: progress
   needs a single proposer to run unimpeded for one classic round). *)
let backoff_of t p =
  let shift = Stdlib.min p.attempts 6 in
  let base = 150.0 *. Float.of_int (1 lsl shift) in
  base *. (0.5 +. Rng.float t.rng 1.0)

let rec start_classic t p =
  if p.phase <> Done then begin
    Obs.incr t.obs "cp_classic_round";
    span t ~pid:p.pid ~node:p.from ~name:"propose" ~detail:"classic";
    p.attempts <- p.attempts + 1;
    t.highest_number <- t.highest_number + 1;
    p.ballot <- Ballot.classic ~number:t.highest_number ~proposer:p.from;
    p.phase <- P1_wait;
    p.p1_replies <- [];
    p.p2_acks <- [];
    List.iter
      (fun a -> Net.send t.net ~src:p.from ~dst:a (Cp_phase1a { pid = p.pid; ballot = p.ballot }))
      t.acceptors;
    watch t p
  end

(* Re-drive a stalled proposal (message loss). *)
and watch t p =
  let deadline = 1_500.0 *. Float.of_int (1 + p.attempts) +. Rng.float t.rng 300.0 in
  let seen = p.attempts in
  ignore
    (Engine.schedule t.engine ~after:deadline (fun () ->
         (* Only re-drive if no newer ballot was started since. *)
         if p.phase <> Done && p.attempts = seen then start_classic t p))

let on_fast_reply t p ~src ballot value =
  if p.phase = Fast_wait && not (List.mem_assoc src p.fast_replies) then begin
    let vote = match value with Some v -> Some (ballot, v) | None -> None in
    p.fast_replies <- (src, vote) :: p.fast_replies;
    (* Count supporters per value at the fast ballot. *)
    let support v =
      List.length
        (List.filter
           (fun (_, vote) ->
             match vote with Some (b, v') -> Ballot.is_fast b && String.equal v v' | None -> false)
           p.fast_replies)
    in
    let values =
      List.filter_map (fun (_, vote) -> Option.map snd vote) p.fast_replies
      |> List.sort_uniq String.compare
    in
    match List.find_opt (fun v -> support v >= qf t) values with
    | Some v -> finish t p v
    | None ->
      let replies = List.length p.fast_replies in
      let best = List.fold_left (fun acc v -> Stdlib.max acc (support v)) 0 values in
      (* Collision: no value can reach a fast quorum any more. *)
      if best + (n t - replies) < qf t then begin
        Obs.incr t.obs "cp_collision";
        span t ~pid:p.pid ~node:p.from ~name:"collision" ~detail:"fast quorum impossible";
        start_classic t p
      end
  end

let on_phase1b t p ~src ballot ok promised vote =
  match p.phase with
  | P1_wait when Ballot.equal ballot p.ballot ->
    if not ok then begin
      t.highest_number <- Stdlib.max t.highest_number promised.Ballot.number;
      let seen = p.attempts in
      ignore
        (Engine.schedule t.engine ~after:(backoff_of t p) (fun () ->
             if p.attempts = seen then start_classic t p))
    end
    else if not (List.mem_assoc src p.p1_replies) then begin
      p.p1_replies <- (src, vote) :: p.p1_replies;
      if List.length p.p1_replies >= qc t then begin
        let votes =
          List.filter_map
            (fun (a, vote) ->
              Option.map (fun (b, v) -> { Quorum.acceptor = a; ballot = b; value = v }) vote)
            p.p1_replies
        in
        let value =
          match
            Quorum.safe_value ~n:(n t) ~quorum_size:(List.length p.p1_replies)
              ~equal:String.equal votes
          with
          | Some v -> v
          | None -> p.my_value
        in
        p.phase <- P2_wait;
        p.p2_value <- value;
        List.iter
          (fun a ->
            Net.send t.net ~src:p.from ~dst:a
              (Cp_phase2a { pid = p.pid; ballot = p.ballot; value }))
          t.acceptors
      end
    end
  | P1_wait | Fast_wait | P2_wait | Done -> ()

let on_phase2b t p ~src ballot ok =
  match p.phase with
  | P2_wait when Ballot.equal ballot p.ballot ->
    if not ok then begin
      let seen = p.attempts in
      ignore
        (Engine.schedule t.engine ~after:(backoff_of t p) (fun () ->
             if p.attempts = seen then start_classic t p))
    end
    else begin
      if not (List.mem src p.p2_acks) then p.p2_acks <- src :: p.p2_acks;
      if List.length p.p2_acks >= qc t then finish t p p.p2_value
    end
  | P2_wait | P1_wait | Fast_wait | Done -> ()

let proposer_handle t ~src payload =
  match payload with
  | Cp_fast_reply { pid; ballot; value } -> (
    match Hashtbl.find_opt t.pending pid with
    | Some p -> on_fast_reply t p ~src ballot value
    | None -> ())
  | Cp_phase1b { pid; ballot; ok; promised; vote } -> (
    match Hashtbl.find_opt t.pending pid with
    | Some p -> on_phase1b t p ~src ballot ok promised vote
    | None -> ())
  | Cp_phase2b { pid; ballot; ok } -> (
    match Hashtbl.find_opt t.pending pid with
    | Some p -> on_phase2b t p ~src ballot ok
    | None -> ())
  (* Acceptor-bound requests; a proposer never consumes them. *)
  | Cp_fast _ | Cp_phase1a _ | Cp_phase2a _ -> ()
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* API                                                                  *)
(* ------------------------------------------------------------------ *)

let create ~net ~acceptors ?(obs = Obs.ambient ()) () =
  if List.length acceptors < 3 then
    Invariant.violate ~context:"Consensus.create" "need >= 3 acceptors, got %d"
      (List.length acceptors);
  let engine = Net.engine net in
  let t =
    {
      net;
      engine;
      acceptors;
      states = Hashtbl.create 8;
      pending = Hashtbl.create 8;
      next_pid = 0;
      highest_number = 0;
      chosen = [];
      rng = Rng.split (Engine.rng engine);
      obs;
    }
  in
  List.iter
    (fun node -> Net.register net node (fun ~src payload -> acceptor_handle t node ~src payload))
    acceptors;
  t

let new_proposal t ~from value callback phase =
  t.next_pid <- t.next_pid + 1;
  let p =
    {
      pid = t.next_pid;
      from;
      my_value = value;
      callback;
      phase;
      ballot = Ballot.initial_fast;
      fast_replies = [];
      p1_replies = [];
      p2_acks = [];
      p2_value = value;
      attempts = 0;
    }
  in
  Hashtbl.replace t.pending p.pid p;
  (* The proposer node must see the replies. *)
  Net.register t.net from (fun ~src payload -> proposer_handle t ~src payload);
  p

let propose_fast t ~from value callback =
  let p = new_proposal t ~from value callback Fast_wait in
  span t ~pid:p.pid ~node:from ~name:"propose" ~detail:"fast";
  List.iter
    (fun a -> Net.send t.net ~src:from ~dst:a (Cp_fast { pid = p.pid; value }))
    t.acceptors;
  watch t p

let propose_classic t ~from value callback =
  let p = new_proposal t ~from value callback P1_wait in
  start_classic t p

let decided t =
  let bindings = Mdcc_util.Table.sorted_bindings ~compare:Int.compare t.states in
  let holders v ~fast_only =
    List.fold_left
      (fun acc (_, s) ->
        match (s.vballot, s.vvalue) with
        | Some b, Some v' when String.equal v v' && ((not fast_only) || Ballot.is_fast b) ->
          acc + 1
        | _ -> acc)
      0 bindings
  in
  let values =
    List.filter_map (fun (_, s) -> s.vvalue) bindings |> List.sort_uniq String.compare
  in
  List.find_opt (fun v -> holders v ~fast_only:true >= qf t || holders v ~fast_only:false >= qc t)
    values

let chosen_values t = t.chosen
