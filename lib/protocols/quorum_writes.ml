open Mdcc_storage
module Net = Mdcc_sim.Network

type Net.payload +=
  | Qw_write of { wid : int; key : Key.t; update : Update.t }
  | Qw_ack of { wid : int; key : Key.t }

type write_state = {
  mutable waiting : int Key.Map.t;  (* acks still needed per key *)
  cb : Txn.outcome -> unit;
}

type t = {
  fabric : Fabric.t;
  w : int;
  writes : (int, write_state) Hashtbl.t;
  mutable next_wid : int;
}

(* Blind last-writer-wins apply: no validation of any kind. *)
let blind_apply store key (up : Update.t) =
  let row = Store.ensure store key in
  match up with
  | Update.Insert v | Update.Physical { value = v; _ } ->
    row.Store.value <- v;
    row.Store.exists <- true;
    row.Store.version <- row.Store.version + 1
  | Update.Delete _ ->
    row.Store.value <- Value.empty;
    row.Store.exists <- false;
    row.Store.version <- row.Store.version + 1
  | Update.Delta ds ->
    row.Store.value <-
      List.fold_left (fun v (attr, d) -> Value.add_delta v attr d) row.Store.value ds;
    row.Store.version <- row.Store.version + 1
  | Update.Read_guard _ -> ()

let storage_handler t node ~src payload =
  match payload with
  | Qw_write { wid; key; update } ->
    blind_apply (Fabric.store_of t.fabric node) key update;
    Fabric.send t.fabric ~src:node ~dst:src (Qw_ack { wid; key })
  (* Writer-bound ack; a storage replica never consumes it. *)
  | Qw_ack _ -> ()
  | _ -> ()

let app_handler t ~node:_ ~src:_ payload =
  match payload with
  | Qw_ack { wid; key } -> (
    match Hashtbl.find_opt t.writes wid with
    | None -> ()
    | Some ws -> (
      match Key.Map.find_opt key ws.waiting with
      | None -> ()
      | Some needed ->
        let needed = needed - 1 in
        ws.waiting <-
          (if needed <= 0 then Key.Map.remove key ws.waiting
           else Key.Map.add key needed ws.waiting);
        if Key.Map.is_empty ws.waiting then begin
          Hashtbl.remove t.writes wid;
          ws.cb Txn.Committed
        end))
  (* Replica-bound write; the app side never consumes it. *)
  | Qw_write _ -> ()
  | _ -> ()

let submit t ~dc (txn : Txn.t) cb =
  if Txn.is_read_only txn then
    ignore (Mdcc_sim.Engine.schedule (Fabric.engine t.fabric) ~after:0.0 (fun () -> cb Txn.Committed))
  else begin
    let wid = t.next_wid in
    t.next_wid <- t.next_wid + 1;
    let waiting =
      List.fold_left (fun m (key, _) -> Key.Map.add key t.w m) Key.Map.empty txn.Txn.updates
    in
    Hashtbl.replace t.writes wid { waiting; cb };
    let app = Fabric.app_node t.fabric ~dc in
    List.iter
      (fun (key, update) ->
        List.iter
          (fun replica -> Fabric.send t.fabric ~src:app ~dst:replica (Qw_write { wid; key; update }))
          (Fabric.replicas t.fabric key))
      txn.Txn.updates
  end

let create ~fabric ~w =
  let t = { fabric; w; writes = Hashtbl.create 256; next_wid = 0 } in
  List.iter
    (fun node -> Fabric.register_storage fabric node (storage_handler t node))
    (Fabric.storage_node_ids fabric);
  Fabric.register_all_apps fabric (app_handler t);
  t

let harness t =
  {
    Harness.name = Printf.sprintf "QW-%d" t.w;
    engine = Fabric.engine t.fabric;
    num_dcs = Fabric.num_dcs t.fabric;
    submit = (fun ~dc txn cb -> submit t ~dc txn cb);
    read_local = (fun ~dc key cb -> Fabric.read_local t.fabric ~dc key cb);
    peek = (fun ~dc key -> Fabric.peek t.fabric ~dc key);
    load = (fun rows -> Fabric.load t.fabric rows);
    fail_dc = (fun dc -> Fabric.fail_dc t.fabric dc);
    recover_dc = (fun dc -> Fabric.recover_dc t.fabric dc);
  }
