open Mdcc_storage
module Net = Mdcc_sim.Network
module Rstate = Mdcc_core.Rstate

type Net.payload +=
  | Prepare of { txid : Txn.id; key : Key.t; update : Update.t }
  | Vote of { txid : Txn.id; key : Key.t; yes : bool }
  | Decision of { txid : Txn.id; key : Key.t; update : Update.t; commit : bool }
  | Decision_ack of { txid : Txn.id; key : Key.t }

type txn_state = {
  txn : Txn.t;
  cb : Txn.outcome -> unit;
  mutable votes_missing : int;
  mutable all_yes : bool;
  mutable phase2 : bool;
  mutable acks_missing : int;
}

type t = {
  fabric : Fabric.t;
  locks : (Txn.id * Update.t) Key.Tbl.t array;  (* per storage node *)
  txns : (Txn.id, txn_state) Hashtbl.t;
}

(* Prepare: take an exclusive lock and validate, exactly once per record. *)
let prepare t node key txid update =
  let locks = t.locks.(node) in
  match Key.Tbl.find_opt locks key with
  | Some (owner, _) -> String.equal owner txid  (* duplicate prepare: same vote *)
  | None ->
    let store = Fabric.store_of t.fabric node in
    let row = Store.ensure store key in
    let valuation =
      { Rstate.value = row.Store.value; version = row.Store.version; exists = row.Store.exists }
    in
    let bounds = Schema.bounds_of (Fabric.schema t.fabric) key in
    let ok =
      Rstate.evaluate ~bounds ~demarcation:`Escrow valuation ~accepted:[] update
      = Mdcc_core.Woption.Accepted
    in
    if ok then Key.Tbl.replace locks key (txid, update);
    ok

let storage_handler t node ~src payload =
  match payload with
  | Prepare { txid; key; update } ->
    let yes = prepare t node key txid update in
    Fabric.send t.fabric ~src:node ~dst:src (Vote { txid; key; yes })
  | Decision { txid; key; update; commit } ->
    (match Key.Tbl.find_opt t.locks.(node) key with
    | Some (owner, _) when String.equal owner txid ->
      Key.Tbl.remove t.locks.(node) key;
      if commit then Store.apply (Fabric.store_of t.fabric node) key update
    | Some _ | None -> ());
    Fabric.send t.fabric ~src:node ~dst:src (Decision_ack { txid; key })
  (* Coordinator-bound replies; a participant never consumes them. *)
  | Vote _ | Decision_ack _ -> ()
  | _ -> ()

let broadcast_decision t ~app (ts : txn_state) =
  ts.phase2 <- true;
  List.iter
    (fun (key, update) ->
      List.iter
        (fun replica ->
          Fabric.send t.fabric ~src:app ~dst:replica
            (Decision { txid = ts.txn.Txn.id; key; update; commit = ts.all_yes }))
        (Fabric.replicas t.fabric key))
    ts.txn.Txn.updates

let app_handler t ~node ~src:_ payload =
  match payload with
  | Vote { txid; yes; _ } -> (
    match Hashtbl.find_opt t.txns txid with
    | None -> ()
    | Some ts ->
      if not ts.phase2 then begin
        ts.votes_missing <- ts.votes_missing - 1;
        if not yes then ts.all_yes <- false;
        (* 2PC must hear from every replica before deciding. *)
        if ts.votes_missing = 0 then broadcast_decision t ~app:node ts
      end)
  | Decision_ack { txid; _ } -> (
    match Hashtbl.find_opt t.txns txid with
    | None -> ()
    | Some ts ->
      ts.acks_missing <- ts.acks_missing - 1;
      if ts.acks_missing = 0 then begin
        Hashtbl.remove t.txns txid;
        ts.cb (if ts.all_yes then Txn.Committed else Txn.Aborted Txn.Conflict)
      end)
  (* Participant-bound requests; the coordinator never consumes them. *)
  | Prepare _ | Decision _ -> ()
  | _ -> ()

let submit t ~dc (txn : Txn.t) cb =
  if Txn.is_read_only txn then
    ignore (Mdcc_sim.Engine.schedule (Fabric.engine t.fabric) ~after:0.0 (fun () -> cb Txn.Committed))
  else begin
    let replication = Fabric.num_dcs t.fabric in
    let total = replication * List.length txn.Txn.updates in
    let ts =
      { txn; cb; votes_missing = total; all_yes = true; phase2 = false; acks_missing = total }
    in
    Hashtbl.replace t.txns txn.Txn.id ts;
    let app = Fabric.app_node t.fabric ~dc in
    List.iter
      (fun (key, update) ->
        List.iter
          (fun replica ->
            Fabric.send t.fabric ~src:app ~dst:replica
              (Prepare { txid = txn.Txn.id; key; update }))
          (Fabric.replicas t.fabric key))
      txn.Txn.updates
  end

let create ~fabric =
  let storage = Fabric.storage_node_ids fabric in
  let t =
    {
      fabric;
      locks = Array.init (List.length storage) (fun _ -> Key.Tbl.create 64);
      txns = Hashtbl.create 256;
    }
  in
  List.iter (fun node -> Fabric.register_storage fabric node (storage_handler t node)) storage;
  Fabric.register_all_apps fabric (app_handler t);
  t

let locks_held t = Array.fold_left (fun acc tbl -> acc + Key.Tbl.length tbl) 0 t.locks

let harness t =
  {
    Harness.name = "2PC";
    engine = Fabric.engine t.fabric;
    num_dcs = Fabric.num_dcs t.fabric;
    submit = (fun ~dc txn cb -> submit t ~dc txn cb);
    read_local = (fun ~dc key cb -> Fabric.read_local t.fabric ~dc key cb);
    peek = (fun ~dc key -> Fabric.peek t.fabric ~dc key);
    load = (fun rows -> Fabric.load t.fabric rows);
    fail_dc = (fun dc -> Fabric.fail_dc t.fabric dc);
    recover_dc = (fun dc -> Fabric.recover_dc t.fabric dc);
  }
