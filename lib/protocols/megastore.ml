open Mdcc_storage
module Net = Mdcc_sim.Network
module Rstate = Mdcc_core.Rstate

type Net.payload +=
  | Ms_submit of { txid : Txn.id; updates : (Key.t * Update.t) list; client : int }
  | Ms_append of { pos : int; txid : Txn.id; updates : (Key.t * Update.t) list }
  | Ms_append_ack of { pos : int }
  | Ms_result of { txid : Txn.id; committed : bool }

type inflight = {
  i_pos : int;
  i_txid : Txn.id;
  i_updates : (Key.t * Update.t) list;
  i_client : int;
  mutable i_acks : int list;
}

type replica_state = {
  mutable next_apply : int;
  buffer : (int, (Key.t * Update.t) list) Hashtbl.t;
}

type t = {
  fabric : Fabric.t;
  master_node : int;
  queue : (Txn.id * (Key.t * Update.t) list * int) Queue.t;
  mutable inflight : inflight option;
  mutable next_pos : int;
  replica : replica_state array;  (* per storage node *)
  results : (Txn.id, Txn.outcome -> unit) Hashtbl.t;
  group_replicas : int list;
}

let qc t = (Fabric.num_dcs t.fabric / 2) + 1

(* Validate a transaction against the master's (up-to-date) store: version
   preconditions plus value constraints.  Megastore has no commutative
   support, so deltas are validated like reads-modify-writes. *)
let validate t (updates : (Key.t * Update.t) list) =
  let store = Fabric.store_of t.fabric t.master_node in
  List.for_all
    (fun (key, update) ->
      let row = Store.ensure store key in
      let valuation =
        { Rstate.value = row.Store.value; version = row.Store.version; exists = row.Store.exists }
      in
      let bounds = Schema.bounds_of (Fabric.schema t.fabric) key in
      Rstate.evaluate ~bounds ~demarcation:`Escrow valuation ~accepted:[] update
      = Mdcc_core.Woption.Accepted)
    updates

let apply_at t node updates =
  let store = Fabric.store_of t.fabric node in
  List.iter (fun (key, update) -> Store.apply store key update) updates

(* Replicas apply log entries strictly in position order. *)
let replica_deliver t node pos updates =
  let rs = t.replica.(node) in
  Hashtbl.replace rs.buffer pos updates;
  let rec drain () =
    match Hashtbl.find_opt rs.buffer rs.next_apply with
    | Some entry ->
      Hashtbl.remove rs.buffer rs.next_apply;
      apply_at t node entry;
      rs.next_apply <- rs.next_apply + 1;
      drain ()
    | None -> ()
  in
  drain ()

let rec master_pump t =
  match t.inflight with
  | Some _ -> ()
  | None -> (
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (txid, updates, client) ->
      if not (validate t updates) then begin
        (* Conflicting transaction: aborted without consuming a position
           (the Paxos-CP refinement lets the non-conflicting ones proceed). *)
        Fabric.send t.fabric ~src:t.master_node ~dst:client
          (Ms_result { txid; committed = false });
        master_pump t
      end
      else begin
        let pos = t.next_pos in
        t.next_pos <- t.next_pos + 1;
        let inf = { i_pos = pos; i_txid = txid; i_updates = updates; i_client = client; i_acks = [] } in
        t.inflight <- Some inf;
        List.iter
          (fun replica ->
            if replica = t.master_node then begin
              replica_deliver t replica pos updates;
              master_ack t ~src:replica pos
            end
            else
              Fabric.send t.fabric ~src:t.master_node ~dst:replica (Ms_append { pos; txid; updates }))
          t.group_replicas
      end)

and master_ack t ~src pos =
  match t.inflight with
  | Some inf when inf.i_pos = pos ->
    if not (List.mem src inf.i_acks) then begin
      inf.i_acks <- src :: inf.i_acks;
      if List.length inf.i_acks >= qc t then begin
        t.inflight <- None;
        Fabric.send t.fabric ~src:t.master_node ~dst:inf.i_client
          (Ms_result { txid = inf.i_txid; committed = true });
        master_pump t
      end
    end
  | Some _ | None -> ()

let storage_handler t node ~src payload =
  match payload with
  | Ms_submit { txid; updates; client } ->
    if node = t.master_node then begin
      Queue.add (txid, updates, client) t.queue;
      master_pump t
    end
    else
      (* Not the master: a real system would forward; we reply with a
         redirect-style forward to keep latencies honest. *)
      Fabric.send t.fabric ~src:node ~dst:t.master_node (Ms_submit { txid; updates; client })
  | Ms_append { pos; txid = _; updates } ->
    replica_deliver t node pos updates;
    Fabric.send t.fabric ~src:node ~dst:src (Ms_append_ack { pos })
  | Ms_append_ack { pos } -> if node = t.master_node then master_ack t ~src pos
  (* Client-bound result; the replica log never consumes it. *)
  | Ms_result _ -> ()
  | _ -> ()

let app_handler t ~node:_ ~src:_ payload =
  match payload with
  | Ms_result { txid; committed } -> (
    match Hashtbl.find_opt t.results txid with
    | None -> ()
    | Some cb ->
      Hashtbl.remove t.results txid;
      cb (if committed then Txn.Committed else Txn.Aborted Txn.Conflict))
  (* Replica-log traffic; the app side never consumes it. *)
  | Ms_submit _ | Ms_append _ | Ms_append_ack _ -> ()
  | _ -> ()

let submit t ~dc (txn : Txn.t) cb =
  if Txn.is_read_only txn then
    ignore (Mdcc_sim.Engine.schedule (Fabric.engine t.fabric) ~after:0.0 (fun () -> cb Txn.Committed))
  else begin
    Hashtbl.replace t.results txn.Txn.id cb;
    let app = Fabric.app_node t.fabric ~dc in
    Fabric.send t.fabric ~src:app ~dst:t.master_node
      (Ms_submit { txid = txn.Txn.id; updates = txn.Txn.updates; client = app })
  end

let create ~fabric ?(master_dc = Mdcc_sim.Topology.us_west) () =
  let storage = Fabric.storage_node_ids fabric in
  if List.length storage <> Fabric.num_dcs fabric then
    invalid_arg "Megastore.create: fabric must have a single partition (one entity group)";
  let t =
    {
      fabric;
      master_node = master_dc;  (* one storage node per DC: id = dc *)
      queue = Queue.create ();
      inflight = None;
      next_pos = 0;
      replica =
        Array.init (List.length storage) (fun _ ->
            { next_apply = 0; buffer = Hashtbl.create 16 });
      results = Hashtbl.create 256;
      group_replicas = storage;
    }
  in
  List.iter (fun node -> Fabric.register_storage fabric node (storage_handler t node)) storage;
  Fabric.register_all_apps fabric (app_handler t);
  t

let log_length t = t.next_pos

let queue_length t = Queue.length t.queue

let harness t =
  {
    Harness.name = "Megastore*";
    engine = Fabric.engine t.fabric;
    num_dcs = Fabric.num_dcs t.fabric;
    submit = (fun ~dc txn cb -> submit t ~dc txn cb);
    read_local = (fun ~dc key cb -> Fabric.read_local t.fabric ~dc key cb);
    peek = (fun ~dc key -> Fabric.peek t.fabric ~dc key);
    load = (fun rows -> Fabric.load t.fabric rows);
    fail_dc = (fun dc -> Fabric.fail_dc t.fabric dc);
    recover_dc = (fun dc -> Fabric.recover_dc t.fabric dc);
  }
