open Mdcc_storage
module Cluster = Mdcc_core.Cluster
module Coordinator = Mdcc_core.Coordinator

type t = {
  name : string;
  engine : Mdcc_sim.Engine.t;
  num_dcs : int;
  submit : dc:int -> Txn.t -> (Txn.outcome -> unit) -> unit;
  read_local : dc:int -> Key.t -> ((Value.t * int) option -> unit) -> unit;
  peek : dc:int -> Key.t -> (Value.t * int) option;
  load : (Key.t * Value.t) list -> unit;
  fail_dc : int -> unit;
  recover_dc : int -> unit;
}

let of_mdcc cluster ~name =
  let next = Array.make (Cluster.num_dcs cluster) 0 in
  let pick dc =
    let coords =
      List.length (Cluster.coordinators cluster) / Cluster.num_dcs cluster
    in
    let rank = next.(dc) mod coords in
    next.(dc) <- next.(dc) + 1;
    Cluster.coordinator cluster ~dc ~rank
  in
  {
    name;
    engine = Cluster.engine cluster;
    num_dcs = Cluster.num_dcs cluster;
    submit = (fun ~dc txn cb -> Coordinator.submit (pick dc) txn cb);
    read_local = (fun ~dc key cb -> Coordinator.read ~level:`Local (pick dc) key cb);
    peek = (fun ~dc key -> Cluster.peek cluster ~dc key);
    load = (fun rows -> Cluster.load cluster rows);
    fail_dc = (fun dc -> Cluster.fail_dc cluster dc);
    recover_dc = (fun dc -> Cluster.recover_dc cluster dc);
  }
