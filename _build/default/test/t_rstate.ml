(* Unit and property tests of the per-record decision logic: SetCompatible,
   the one-outstanding-option rule, and quorum demarcation (§3.4.2). *)

open Mdcc_storage
module Rstate = Mdcc_core.Rstate
module Woption = Mdcc_core.Woption
module Ballot = Mdcc_paxos.Ballot

let key = Key.make ~table:"item" ~id:"k"

let bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ]

let valuation ?(exists = true) ?(version = 1) stock =
  { Rstate.value = Value.of_list [ ("stock", Value.Int stock) ]; version; exists }

let woption ?(txid = "t") update =
  { Woption.txid; key; update; write_set = [ key ]; coordinator = 99 }

let pend ?(txid = "t") ?(decision = Woption.Accepted) update =
  {
    Rstate.woption = woption ~txid update;
    decision;
    ballot = Ballot.initial_fast;
    proposed_at = 0.0;
  }

let accepted = Alcotest.testable Woption.pp_decision Woption.decision_equal

let check_eval msg expected ~demarcation v ~accepted:acc up =
  Alcotest.check accepted msg expected (Rstate.evaluate ~bounds ~demarcation v ~accepted:acc up)

let esc = `Escrow

let q54 = `Quorum (5, 4)

let test_physical_version_check () =
  let v = valuation ~version:3 10 in
  check_eval "matching vread" Woption.Accepted ~demarcation:esc v ~accepted:[]
    (Update.Physical { vread = 3; value = Value.of_list [ ("stock", Value.Int 5) ] });
  check_eval "stale vread" Woption.Rejected ~demarcation:esc v ~accepted:[]
    (Update.Physical { vread = 2; value = Value.empty });
  check_eval "future vread (straggler)" Woption.Rejected ~demarcation:esc v ~accepted:[]
    (Update.Physical { vread = 4; value = Value.empty })

let test_physical_bounds () =
  let v = valuation ~version:1 10 in
  check_eval "value violating constraint rejected" Woption.Rejected ~demarcation:esc v
    ~accepted:[]
    (Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int (-5)) ] })

let test_insert_delete () =
  let absent = valuation ~exists:false ~version:0 0 in
  let present = valuation ~version:2 5 in
  check_eval "insert on absent" Woption.Accepted ~demarcation:esc absent ~accepted:[]
    (Update.Insert Value.empty);
  check_eval "insert on present" Woption.Rejected ~demarcation:esc present ~accepted:[]
    (Update.Insert Value.empty);
  check_eval "delete with version" Woption.Accepted ~demarcation:esc present ~accepted:[]
    (Update.Delete { vread = 2 });
  check_eval "delete stale" Woption.Rejected ~demarcation:esc present ~accepted:[]
    (Update.Delete { vread = 1 });
  check_eval "delta on absent" Woption.Rejected ~demarcation:esc absent ~accepted:[]
    (Update.Delta [ ("stock", -1) ])

let test_one_outstanding_option () =
  let v = valuation ~version:1 10 in
  let outstanding = [ pend ~txid:"other" (Update.Physical { vread = 1; value = Value.empty }) ] in
  (* Deadlock avoidance: the later conflicting option is *rejected*, it does
     not wait (§3.2.2). *)
  check_eval "physical blocked by outstanding" Woption.Rejected ~demarcation:esc v
    ~accepted:outstanding
    (Update.Physical { vread = 1; value = Value.empty });
  check_eval "delta blocked by outstanding physical" Woption.Rejected ~demarcation:esc v
    ~accepted:outstanding
    (Update.Delta [ ("stock", -1) ]);
  let outstanding_delta = [ pend ~txid:"other" (Update.Delta [ ("stock", -1) ]) ] in
  check_eval "physical blocked by outstanding delta" Woption.Rejected ~demarcation:esc v
    ~accepted:outstanding_delta
    (Update.Physical { vread = 1; value = Value.empty });
  check_eval "delta pipelines with deltas" Woption.Accepted ~demarcation:esc v
    ~accepted:outstanding_delta
    (Update.Delta [ ("stock", -1) ])

let test_escrow_worst_case () =
  let v = valuation 4 in
  (* Worst case counts all pending accepted decrements as committed. *)
  let pending = List.init 3 (fun i -> pend ~txid:(string_of_int i) (Update.Delta [ ("stock", -1) ])) in
  check_eval "4th decrement fits (4-3-1 >= 0)" Woption.Accepted ~demarcation:esc v
    ~accepted:pending
    (Update.Delta [ ("stock", -1) ]);
  let pending4 = pend ~txid:"x" (Update.Delta [ ("stock", -1) ]) :: pending in
  check_eval "5th decrement rejected (paper's t5 example)" Woption.Rejected ~demarcation:esc v
    ~accepted:pending4
    (Update.Delta [ ("stock", -1) ])

let test_escrow_increments_ignore_lower () =
  let v = valuation 0 in
  check_eval "increment always fine for lower bound" Woption.Accepted ~demarcation:esc v
    ~accepted:[]
    (Update.Delta [ ("stock", 5) ]);
  (* An increment does not relax the worst case for pending decrements:
     pending increments might abort. *)
  let pending = [ pend ~txid:"inc" (Update.Delta [ ("stock", 10) ]) ] in
  check_eval "pending increment does not enable decrement" Woption.Rejected ~demarcation:esc v
    ~accepted:pending
    (Update.Delta [ ("stock", -1) ])

let test_quorum_demarcation_limit () =
  (* L = (N - Q_F)/N * X = X/5 with N=5, Q_F=4: from base 10 a single
     acceptor may only go down to 2. *)
  let v = valuation 10 in
  check_eval "down to limit ok" Woption.Accepted ~demarcation:q54 v ~accepted:[]
    (Update.Delta [ ("stock", -8) ]);
  check_eval "below limit rejected even though >= 0" Woption.Rejected ~demarcation:q54 v
    ~accepted:[]
    (Update.Delta [ ("stock", -9) ]);
  (* Escrow (sole decider) would allow -9. *)
  check_eval "escrow allows -9" Woption.Accepted ~demarcation:esc v ~accepted:[]
    (Update.Delta [ ("stock", -9) ])

let test_demarcation_formulas () =
  (* Exact integer checks of the §3.4.2 limit. *)
  Alcotest.(check bool) "10 - 8 >= 2" true
    (Rstate.demarcation_lower_ok ~n:5 ~qf:4 ~base:10 ~lower:0 ~pending_neg:0 ~delta_neg:(-8));
  Alcotest.(check bool) "10 - 9 < 2" false
    (Rstate.demarcation_lower_ok ~n:5 ~qf:4 ~base:10 ~lower:0 ~pending_neg:0 ~delta_neg:(-9));
  Alcotest.(check bool) "nonzero lower bound shifts limit" true
    (Rstate.demarcation_lower_ok ~n:5 ~qf:4 ~base:15 ~lower:5 ~pending_neg:0 ~delta_neg:(-8));
  Alcotest.(check bool) "upper symmetric" true
    (Rstate.demarcation_upper_ok ~n:5 ~qf:4 ~base:90 ~upper:100 ~pending_pos:0 ~delta_pos:8);
  Alcotest.(check bool) "upper violated" false
    (Rstate.demarcation_upper_ok ~n:5 ~qf:4 ~base:90 ~upper:100 ~pending_pos:0 ~delta_pos:9)

let test_pending_state_helpers () =
  let rs = Rstate.create key in
  Alcotest.(check bool) "fast era by default" false (Rstate.in_classic_era rs ~version:0);
  let rs2 = Rstate.create ~classic_until:5 key in
  Alcotest.(check bool) "classic below" true (Rstate.in_classic_era rs2 ~version:4);
  Alcotest.(check bool) "fast at" false (Rstate.in_classic_era rs2 ~version:5);
  Rstate.add_pending rs (pend ~txid:"a" (Update.Delta [ ("stock", -1) ]));
  Rstate.add_pending rs (pend ~txid:"b" ~decision:Woption.Rejected (Update.Delta [ ("stock", -1) ]));
  Alcotest.(check int) "two pending" 2 (List.length rs.Rstate.pending);
  Alcotest.(check int) "one accepted" 1 (List.length (Rstate.accepted rs));
  Alcotest.(check bool) "find" true (Rstate.find_pending rs "a" <> None);
  (* add_pending replaces same txid *)
  Rstate.add_pending rs (pend ~txid:"a" ~decision:Woption.Rejected (Update.Delta [ ("stock", -1) ]));
  Alcotest.(check int) "still two" 2 (List.length rs.Rstate.pending);
  Alcotest.(check int) "none accepted now" 0 (List.length (Rstate.accepted rs));
  Rstate.remove_pending rs "a";
  Alcotest.(check int) "one left" 1 (List.length rs.Rstate.pending)

(* Property: the demarcation acceptance rule is safe — for ANY subset of the
   accepted pending decrements committing, a single acceptor's accepted set
   never drives the replicated value below  L = lower + (n-qf)/n*(base-lower),
   and in particular never below zero once multiplied out across a fast
   quorum (the paper's resource argument). We check the local limit. *)
let prop_demarcation_local_safety =
  QCheck.Test.make ~name:"demarcation: accepted set respects local limit" ~count:500
    QCheck.(
      triple (int_range 0 50) (list_of_size Gen.(int_range 0 12) (int_range 1 6)) (int_range 0 5))
    (fun (base, decs, lower) ->
      QCheck.assume (base >= lower);
      let v = valuation base in
      let bounds = [ { Schema.attr = "stock"; lower = Some lower; upper = None } ] in
      (* Feed decrements one at a time through the acceptance rule. *)
      let accepted = ref [] in
      List.iteri
        (fun i d ->
          let up = Update.Delta [ ("stock", -d) ] in
          let dec =
            Rstate.evaluate ~bounds ~demarcation:q54 v ~accepted:!accepted up
          in
          if dec = Woption.Accepted then
            accepted := pend ~txid:(string_of_int i) up :: !accepted)
        decs;
      let total_accepted =
        List.fold_left
          (fun acc p ->
            acc
            + List.fold_left (fun a (_, d) -> a + d) 0 (Update.deltas p.Rstate.woption.Woption.update))
          0 !accepted
      in
      (* All accepted committing leaves the local view at or above L. *)
      5 * (base + total_accepted) >= (5 * lower) + (1 * (base - lower)))

(* Property: escrow never lets the worst case cross the bound. *)
let prop_escrow_safety =
  QCheck.Test.make ~name:"escrow: worst case stays in bounds" ~count:500
    QCheck.(pair (int_range 0 40) (list_of_size Gen.(int_range 0 15) (int_range (-5) 5)))
    (fun (base, deltas) ->
      let v = valuation base in
      let accepted = ref [] in
      List.iteri
        (fun i d ->
          QCheck.assume (d <> 0);
          let up = Update.Delta [ ("stock", d) ] in
          if Rstate.evaluate ~bounds ~demarcation:esc v ~accepted:!accepted up = Woption.Accepted
          then accepted := pend ~txid:(string_of_int i) up :: !accepted)
        deltas;
      let neg =
        List.fold_left
          (fun acc p ->
            acc
            + Stdlib.min 0
                (List.fold_left (fun a (_, d) -> a + d) 0 (Update.deltas p.Rstate.woption.Woption.update)))
          0 !accepted
      in
      base + neg >= 0)

let suite =
  [
    Alcotest.test_case "physical version check" `Quick test_physical_version_check;
    Alcotest.test_case "physical bounds check" `Quick test_physical_bounds;
    Alcotest.test_case "insert/delete validation" `Quick test_insert_delete;
    Alcotest.test_case "one outstanding option / deadlock avoidance" `Quick
      test_one_outstanding_option;
    Alcotest.test_case "escrow worst case (paper t1..t5)" `Quick test_escrow_worst_case;
    Alcotest.test_case "escrow increments" `Quick test_escrow_increments_ignore_lower;
    Alcotest.test_case "quorum demarcation limit" `Quick test_quorum_demarcation_limit;
    Alcotest.test_case "demarcation formulas" `Quick test_demarcation_formulas;
    Alcotest.test_case "pending state helpers" `Quick test_pending_state_helpers;
    QCheck_alcotest.to_alcotest prop_demarcation_local_safety;
    QCheck_alcotest.to_alcotest prop_escrow_safety;
  ]
