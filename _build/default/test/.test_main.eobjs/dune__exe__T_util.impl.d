test/t_util.ml: Alcotest Array Float Fun Gen Int List Mdcc_util QCheck QCheck_alcotest String
