test/t_extensions.ml: Alcotest Float Helpers List Mdcc_core Mdcc_sim Mdcc_storage Option Printf Txn Update
