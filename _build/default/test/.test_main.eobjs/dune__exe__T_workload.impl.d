test/t_workload.ml: Alcotest Float Key List Mdcc_protocols Mdcc_sim Mdcc_storage Mdcc_util Mdcc_workload String Txn Update Value
