test/t_edge.ml: Alcotest Array Format Key Mdcc_core Mdcc_paxos Mdcc_protocols Mdcc_sim Mdcc_storage Mdcc_util Printf Schema Txn Update Value
