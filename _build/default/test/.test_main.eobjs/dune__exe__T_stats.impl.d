test/t_stats.ml: Alcotest Helpers List Mdcc_core Mdcc_sim Mdcc_storage Mdcc_util Printf Txn Update
