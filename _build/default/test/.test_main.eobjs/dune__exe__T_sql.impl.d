test/t_sql.ml: Alcotest Format Helpers Key List Mdcc_core Mdcc_sim Mdcc_sql Mdcc_storage Printf QCheck QCheck_alcotest Txn Update Value
