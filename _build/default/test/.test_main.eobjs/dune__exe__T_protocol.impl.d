test/t_protocol.ml: Alcotest Helpers Key List Mdcc_core Mdcc_sim Mdcc_storage Printf Txn Update
