test/t_recovery.ml: Alcotest Helpers List Mdcc_core Mdcc_sim Mdcc_storage Option Printf Txn Update
