test/t_stress.ml: Alcotest Array Helpers Key List Mdcc_core Mdcc_sim Mdcc_storage Mdcc_util Printf Txn Update Value
