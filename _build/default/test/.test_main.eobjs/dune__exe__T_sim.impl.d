test/t_sim.ml: Alcotest List Mdcc_sim Mdcc_util
