test/t_baselines.ml: Alcotest Float Key List Mdcc_protocols Mdcc_sim Mdcc_storage Printf Schema Txn Update Value
