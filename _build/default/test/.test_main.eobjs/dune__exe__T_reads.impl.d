test/t_reads.ml: Alcotest Helpers Key List Mdcc_core Mdcc_sim Mdcc_storage Txn Update Value
