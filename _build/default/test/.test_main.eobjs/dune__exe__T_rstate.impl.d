test/t_rstate.ml: Alcotest Gen Key List Mdcc_core Mdcc_paxos Mdcc_storage QCheck QCheck_alcotest Schema Stdlib Update Value
