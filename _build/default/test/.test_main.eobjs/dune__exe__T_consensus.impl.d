test/t_consensus.ml: Alcotest Float List Mdcc_paxos Mdcc_sim Mdcc_util Printf String
