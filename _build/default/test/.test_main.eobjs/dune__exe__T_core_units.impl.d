test/t_core_units.ml: Alcotest Int Key List Mdcc_core Mdcc_sim Mdcc_storage Schema Txn Update Value
