test/t_storage.ml: Alcotest Gen Key List Mdcc_storage Option QCheck QCheck_alcotest Schema Store Txn Update Value
