test/t_paxos.ml: Alcotest Ballot Cstruct List Mdcc_paxos Printf QCheck QCheck_alcotest Quorum String
