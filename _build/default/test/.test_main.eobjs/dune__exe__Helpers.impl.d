test/helpers.ml: Alcotest Array Key List Mdcc_core Mdcc_sim Mdcc_storage Printf Schema Txn Value
