(* Protocol-path counters: direct evidence for the paper's headline claims
   about which path transactions take. *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator
module Rng = Mdcc_util.Rng

let total_stats cluster =
  List.fold_left
    (fun (f, a, ab, coll) c ->
      let s = Coordinator.stats c in
      ( f + s.Coordinator.fast_commits,
        a + s.Coordinator.assisted_commits,
        ab + s.Coordinator.aborts,
        coll + s.Coordinator.collisions ))
    (0, 0, 0, 0) (Cluster.coordinators cluster)

let run_uncontended mode =
  let engine, cluster = make_cluster ~mode ~items:200 () in
  let rng = Rng.create 9 in
  let submitted = ref 0 in
  for i = 0 to 99 do
    let dc = Rng.int rng 5 in
    incr submitted;
    ignore
      (Engine.schedule engine ~after:(Rng.float rng 5_000.0) (fun () ->
           Coordinator.submit
             (Cluster.coordinator cluster ~dc ~rank:0)
             (Txn.make
                ~id:(Printf.sprintf "u%d" i)
                ~updates:[ (item (2 * i), Update.Delta [ ("stock", -1) ]) ])
             (fun _ -> ())))
  done;
  Engine.run ~until:60_000.0 engine;
  (cluster, !submitted)

let test_uncontended_is_pure_fast_path () =
  (* The headline: in the common case (no conflicts), every MDCC commit is
     one wide-area round trip on the fast path. *)
  let cluster, submitted = run_uncontended Config.Full in
  let fast, assisted, aborts, collisions = total_stats cluster in
  Alcotest.(check int) "all committed" submitted (fast + assisted);
  Alcotest.(check int) "no aborts" 0 aborts;
  Alcotest.(check int) "no collisions" 0 collisions;
  Alcotest.(check int) "every commit pure fast-path" submitted fast

let test_multi_never_uses_fast_path () =
  let cluster, submitted = run_uncontended Config.Multi in
  let fast, assisted, _, _ = total_stats cluster in
  Alcotest.(check int) "no fast commits in Multi" 0 fast;
  Alcotest.(check int) "all assisted (master) commits" submitted assisted

let test_contention_produces_collisions () =
  (* Two racing physical writers from distant DCs split the acceptors'
     first-arrival votes, so neither outcome can reach a fast quorum: the
     Fast Paxos collision path must fire.  (Many-way races instead tend to
     reach four *rejects* quickly — a decisive learned rejection, not a
     collision.) *)
  let engine, cluster = make_cluster ~mode:Config.Fast_only ~items:1 () in
  for i = 0 to 1 do
    Coordinator.submit
      (Cluster.coordinator cluster ~dc:(4 * i) ~rank:0)
      (Txn.make
         ~id:(Printf.sprintf "c%d" i)
         ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row i }) ])
      (fun _ -> ())
  done;
  Engine.run ~until:60_000.0 engine;
  let fast, assisted, aborts, collisions = total_stats cluster in
  Alcotest.(check bool) "collisions detected" true (collisions > 0);
  Alcotest.(check bool) "at least one txn aborted" true (aborts >= 1);
  Alcotest.(check bool) "decisions add up" true (fast + assisted + aborts = 2)

let suite =
  [
    Alcotest.test_case "uncontended commits are pure fast-path" `Quick
      test_uncontended_is_pure_fast_path;
    Alcotest.test_case "Multi never uses the fast path" `Quick test_multi_never_uses_fast_path;
    Alcotest.test_case "contention produces collisions" `Quick
      test_contention_produces_collisions;
  ]
