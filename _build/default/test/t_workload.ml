(* Tests of the workload layer: metrics, generators, the experiment runner
   and end-to-end mini experiments. *)

open Mdcc_storage
module Metrics = Mdcc_workload.Metrics
module Generator = Mdcc_workload.Generator
module Micro = Mdcc_workload.Micro
module Tpcw = Mdcc_workload.Tpcw
module Runner = Mdcc_workload.Runner
module Setup = Mdcc_workload.Setup
module Rng = Mdcc_util.Rng
module Harness = Mdcc_protocols.Harness
module Engine = Mdcc_sim.Engine

let sample at latency outcome =
  { Metrics.submitted_at = at; latency; outcome; dc = 0 }

let test_metrics_warmup_filter () =
  let m = Metrics.create ~warmup:1000.0 in
  Metrics.add m (sample 500.0 10.0 Txn.Committed);
  Metrics.add m (sample 1500.0 20.0 Txn.Committed);
  Metrics.add m (sample 2000.0 30.0 (Txn.Aborted Txn.Conflict));
  Alcotest.(check int) "commits after warmup" 1 (Metrics.commit_count m);
  Alcotest.(check int) "aborts after warmup" 1 (Metrics.abort_count m);
  Alcotest.(check (list (float 1e-9))) "latencies" [ 20.0 ] (Metrics.commit_latencies m);
  (* The raw series keeps warm-up samples (Figure 8 shows the whole run). *)
  Alcotest.(check int) "series keeps all commits" 2 (List.length (Metrics.latency_series m))

let test_metrics_throughput () =
  let m = Metrics.create ~warmup:0.0 in
  for i = 1 to 50 do
    Metrics.add m (sample (Float.of_int i) 5.0 Txn.Committed)
  done;
  Alcotest.(check (float 1e-9)) "tps" 5.0 (Metrics.throughput m ~duration:10_000.0)

let micro_ctx seed = { Generator.rng = Rng.create seed; dc = 2; client_id = 7; seq = 0 }

(* A generator driven without any harness reads (commutative micro). *)
let gen_txn params seed =
  let gen = Micro.generator params in
  let result = ref None in
  (* commutative micro never touches the harness, so a dummy works *)
  let dummy : Harness.t =
    {
      Harness.name = "dummy";
      engine = Engine.create ~seed:0;
      num_dcs = 5;
      submit = (fun ~dc:_ _ _ -> assert false);
      read_local = (fun ~dc:_ _ _ -> assert false);
      peek = (fun ~dc:_ _ -> None);
      load = (fun _ -> ());
      fail_dc = ignore;
      recover_dc = ignore;
    }
  in
  gen.Generator.prepare (micro_ctx seed) dummy (fun txn -> result := Some txn);
  match !result with Some t -> t | None -> Alcotest.fail "generator did not yield"

let test_micro_generator_shape () =
  let params = { Micro.default with num_items = 100 } in
  for seed = 1 to 20 do
    let txn = gen_txn params seed in
    Alcotest.(check int) "3 distinct items" 3 (List.length txn.Txn.updates);
    List.iter
      (fun (key, up) ->
        Alcotest.(check string) "item table" "item" key.Key.table;
        match up with
        | Update.Delta [ ("stock", d) ] ->
          Alcotest.(check bool) "decrement 1..3" true (d <= -1 && d >= -3)
        | _ -> Alcotest.fail "expected single stock delta")
      txn.Txn.updates
  done

let test_micro_hotspot_skew () =
  let params =
    { Micro.default with num_items = 1000; hotspot = Some (0.02, 0.9) }
  in
  let hot = ref 0 and total = ref 0 in
  for seed = 1 to 200 do
    let txn = gen_txn params seed in
    List.iter
      (fun (key, _) ->
        incr total;
        if int_of_string key.Key.id < 20 then incr hot)
      txn.Txn.updates
  done;
  let frac = Float.of_int !hot /. Float.of_int !total in
  Alcotest.(check bool) "~90% of accesses hit the 2% hotspot" true (frac > 0.8 && frac < 0.97)

let test_micro_locality_pins_masters () =
  let params =
    { Micro.default with num_items = 1000; locality = Some 1.0 }
  in
  (* ctx.dc = 2: with locality 1.0 every chosen item must have master DC 2,
     i.e. item mod 5 = 2. *)
  for seed = 1 to 50 do
    let txn = gen_txn params seed in
    List.iter
      (fun (key, _) ->
        Alcotest.(check int) "local master item" 2 (int_of_string key.Key.id mod 5))
      txn.Txn.updates
  done

let test_micro_master_dc_of () =
  Alcotest.(check int) "item 7 -> dc 2" 2
    (Micro.master_dc_of ~num_dcs:5 (Key.make ~table:"item" ~id:"7"));
  Alcotest.(check int) "item 10 -> dc 0" 0
    (Micro.master_dc_of ~num_dcs:5 (Key.make ~table:"item" ~id:"10"))

let test_micro_rows () =
  let params = { Micro.default with num_items = 50; initial_stock = 33 } in
  let rows = Micro.rows params ~rng:(Rng.create 1) in
  Alcotest.(check int) "50 rows" 50 (List.length rows);
  List.iter
    (fun (_, v) -> Alcotest.(check int) "stock" 33 (Value.get_int v "stock"))
    rows

let test_tpcw_rows_and_schema () =
  let p = { Tpcw.default with items = 100 } in
  let rows = Tpcw.rows p ~rng:(Rng.create 2) in
  (* 100 items + 10 customers + 10 carts *)
  Alcotest.(check int) "row count" 120 (List.length rows);
  List.iter
    (fun ((key : Key.t), v) ->
      if String.equal key.Key.table "item" then begin
        Alcotest.(check bool) "stock loaded" true (Value.get_int v "stock" >= 500);
        Alcotest.(check bool) "price loaded" true (Value.get_int v "price" >= 1)
      end)
    rows

(* End-to-end: a small TPC-W run on every protocol decides transactions and
   keeps stock non-negative on the transactional systems. *)
let mini_spec =
  {
    Runner.clients_per_dc = [| 1; 1; 1; 0; 0 |];
    warmup = 500.0;
    duration = 4_000.0;
    drain = 20_000.0;
    seed = 3;
  }

let run_mini protocol =
  let p = { Tpcw.default with items = 100; commutative = Setup.commutative protocol } in
  let rows = Tpcw.rows p ~rng:(Rng.create 5) in
  let h = Setup.make protocol ~seed:11 ~schema:Tpcw.schema ~rows () in
  let m = Runner.run h (Tpcw.generator p) mini_spec in
  (h, m)

let test_mini_tpcw protocol () =
  let h, m = run_mini protocol in
  Alcotest.(check bool)
    (Setup.name protocol ^ " commits transactions")
    true
    (Metrics.commit_count m > 0);
  (* Transactional protocols never drive stock negative. *)
  (match protocol with
  | Setup.Qw _ -> ()
  | _ ->
    for i = 0 to 99 do
      match h.Harness.peek ~dc:0 (Key.make ~table:"item" ~id:(string_of_int i)) with
      | Some (v, _) ->
        Alcotest.(check bool) "stock >= 0" true (Value.get_int v "stock" >= 0)
      | None -> Alcotest.fail "item missing"
    done);
  (* Samples measure only write transactions. *)
  List.iter
    (fun (s : Metrics.sample) ->
      Alcotest.(check bool) "latency positive" true (s.Metrics.latency > 0.0))
    (Metrics.samples m)

let test_runner_determinism () =
  let run () =
    let _, m = run_mini Setup.Mdcc in
    (Metrics.commit_count m, Metrics.abort_count m, Metrics.commit_latencies m)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, identical run" true (a = b)

let test_quick_experiment_fig5_ordering () =
  (* The headline result at test scale: MDCC commits with lower median
     latency than Multi and 2PC on the micro-benchmark. *)
  let rows = Mdcc_workload.Experiments.fig5 ~quick:true () in
  let median name =
    match List.find_opt (fun (r : Mdcc_workload.Experiments.latency_row) -> r.proto = name) rows with
    | Some { summary = Some s; _ } -> s.Mdcc_util.Stats.p50
    | Some { summary = None; _ } | None -> Alcotest.failf "no data for %s" name
  in
  Alcotest.(check bool) "MDCC < Multi" true (median "MDCC" < median "Multi");
  Alcotest.(check bool) "MDCC < 2PC" true (median "MDCC" < median "2PC");
  Alcotest.(check bool) "Multi < 2PC" true (median "Multi" < median "2PC")

let suite =
  [
    Alcotest.test_case "metrics warmup filter" `Quick test_metrics_warmup_filter;
    Alcotest.test_case "metrics throughput" `Quick test_metrics_throughput;
    Alcotest.test_case "micro generator shape" `Quick test_micro_generator_shape;
    Alcotest.test_case "micro hotspot skew" `Quick test_micro_hotspot_skew;
    Alcotest.test_case "micro locality pins masters" `Quick test_micro_locality_pins_masters;
    Alcotest.test_case "micro master_dc_of" `Quick test_micro_master_dc_of;
    Alcotest.test_case "micro rows" `Quick test_micro_rows;
    Alcotest.test_case "tpcw rows & schema" `Quick test_tpcw_rows_and_schema;
    Alcotest.test_case "mini TPC-W on MDCC" `Quick (test_mini_tpcw Setup.Mdcc);
    Alcotest.test_case "mini TPC-W on Fast" `Quick (test_mini_tpcw Setup.Fast);
    Alcotest.test_case "mini TPC-W on Multi" `Quick (test_mini_tpcw Setup.Multi);
    Alcotest.test_case "mini TPC-W on QW-3" `Quick (test_mini_tpcw (Setup.Qw 3));
    Alcotest.test_case "mini TPC-W on 2PC" `Quick (test_mini_tpcw Setup.Two_pc);
    Alcotest.test_case "mini TPC-W on Megastore*" `Quick (test_mini_tpcw Setup.Megastore);
    Alcotest.test_case "runner determinism" `Quick test_runner_determinism;
    Alcotest.test_case "fig5 ordering at test scale" `Slow test_quick_experiment_fig5_ordering;
  ]
