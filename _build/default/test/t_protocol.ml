(* Integration tests of the MDCC commit protocol on the simulated WAN. *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config

let check_commit msg outcome = Alcotest.check outcome_testable msg Txn.Committed outcome

let check_abort msg outcome =
  Alcotest.check outcome_testable msg (Txn.Aborted Txn.Conflict) outcome

let test_single_update_commits () =
  let engine, cluster = make_cluster ~items:10 () in
  let outcome =
    run_txn engine cluster ~dc:0
      [ (item 0, Update.Physical { vread = 1; value = item_row 41 }) ]
  in
  check_commit "physical update commits" outcome;
  for dc = 0 to 4 do
    Alcotest.(check int) "replica converged" 41 (stock_at cluster ~dc 0)
  done

let test_multi_record_commit () =
  let engine, cluster = make_cluster ~items:10 () in
  let outcome =
    run_txn engine cluster ~dc:2
      [
        (item 1, Update.Physical { vread = 1; value = item_row 7 });
        (item 2, Update.Physical { vread = 1; value = item_row 8 });
        (item 3, Update.Delta [ ("stock", -5) ]);
      ]
  in
  check_commit "multi-record txn commits" outcome;
  Alcotest.(check int) "item1" 7 (stock_at cluster ~dc:0 1);
  Alcotest.(check int) "item2" 8 (stock_at cluster ~dc:4 2);
  Alcotest.(check int) "item3 delta applied" 95 (stock_at cluster ~dc:3 3)

let test_stale_vread_aborts () =
  let engine, cluster = make_cluster ~items:5 () in
  let o1 =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 50 }) ]
  in
  check_commit "first writer" o1;
  let o2 =
    run_txn engine cluster ~dc:1 [ (item 0, Update.Physical { vread = 1; value = item_row 60 }) ]
  in
  check_abort "stale vread rejected (no lost update)" o2;
  Alcotest.(check int) "value is first writer's" 50 (stock_at cluster ~dc:0 0)

let test_insert_and_conflict () =
  let engine, cluster = make_cluster ~items:0 () in
  let key = Key.make ~table:"order" ~id:"o1" in
  let o1 = run_txn engine cluster ~dc:0 [ (key, Update.Insert (item_row 1)) ] in
  check_commit "insert commits" o1;
  let o2 = run_txn engine cluster ~dc:1 [ (key, Update.Insert (item_row 2)) ] in
  check_abort "duplicate insert rejected" o2

let test_delete () =
  let engine, cluster = make_cluster ~items:3 () in
  let o = run_txn engine cluster ~dc:0 [ (item 1, Update.Delete { vread = 1 }) ] in
  check_commit "delete commits" o;
  Alcotest.(check bool) "record gone" true (Cluster.peek cluster ~dc:2 (item 1) = None)

let test_concurrent_conflict_one_wins () =
  let engine, cluster = make_cluster ~items:3 () in
  (* Two app-servers in different DCs race on the same record & version. *)
  let c0 = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  let c1 = Cluster.coordinator cluster ~dc:4 ~rank:0 in
  let r0 = ref None and r1 = ref None in
  Mdcc_core.Coordinator.submit c0
    (Txn.make ~id:"race-a" ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 10 }) ])
    (fun o -> r0 := Some o);
  Mdcc_core.Coordinator.submit c1
    (Txn.make ~id:"race-b" ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 20 }) ])
    (fun o -> r1 := Some o);
  Engine.run ~until:60_000.0 engine;
  let committed =
    List.length (List.filter (fun r -> match !r with Some o -> is_committed o | None -> false) [ r0; r1 ])
  in
  Alcotest.(check int) "exactly one of two conflicting txns commits" 1 committed;
  let final = stock_at cluster ~dc:0 0 in
  Alcotest.(check bool) "value is the winner's" true (final = 10 || final = 20)

let test_commutative_decrements_all_commit () =
  let engine, cluster = make_cluster ~items:1 ~stock:100 () in
  (* Five concurrent decrements from five DCs: all commute, all commit. *)
  let results = ref [] in
  for dc = 0 to 4 do
    let c = Cluster.coordinator cluster ~dc ~rank:0 in
    Mdcc_core.Coordinator.submit c
      (Txn.make ~id:(Printf.sprintf "dec-%d" dc)
         ~updates:[ (item 0, Update.Delta [ ("stock", -3) ]) ])
      (fun o -> results := o :: !results)
  done;
  Engine.run ~until:60_000.0 engine;
  Alcotest.(check int) "all decided" 5 (List.length !results);
  Alcotest.(check int) "all committed" 5 (List.length (List.filter is_committed !results));
  for dc = 0 to 4 do
    Alcotest.(check int) "stock converged" 85 (stock_at cluster ~dc 0)
  done

let test_constraint_rejects_oversell () =
  let engine, cluster = make_cluster ~items:1 ~stock:2 () in
  let o = run_txn engine cluster ~dc:0 [ (item 0, Update.Delta [ ("stock", -5) ]) ] in
  Alcotest.(check bool) "oversell aborted" false (is_committed o);
  Alcotest.(check int) "stock unchanged" 2 (stock_at cluster ~dc:0 0)

let test_stock_never_negative_under_contention () =
  let engine, cluster = make_cluster ~items:1 ~stock:10 () in
  (* 20 concurrent decrements of 1 against stock 10: at most 10 commit and
     the stock never goes below 0 anywhere. *)
  let results = ref [] in
  for i = 0 to 19 do
    let c = Cluster.coordinator cluster ~dc:(i mod 5) ~rank:0 in
    Mdcc_core.Coordinator.submit c
      (Txn.make ~id:(Printf.sprintf "buy-%d" i) ~updates:[ (item 0, Update.Delta [ ("stock", -1) ]) ])
      (fun o -> results := o :: !results)
  done;
  Engine.run ~until:120_000.0 engine;
  Alcotest.(check int) "all decided" 20 (List.length !results);
  let commits = List.length (List.filter is_committed !results) in
  Alcotest.(check bool) "at most 10 commit" true (commits <= 10);
  Alcotest.(check bool) "some commit" true (commits > 0);
  for dc = 0 to 4 do
    let s = stock_at cluster ~dc 0 in
    Alcotest.(check bool) "stock >= 0" true (s >= 0);
    Alcotest.(check int) "stock consistent with commits" (10 - commits) s
  done

let test_atomicity_cross_record () =
  let engine, cluster = make_cluster ~items:5 () in
  (* t1 takes item0; t2 wants item0+item1 and must abort entirely: item1
     must not change even though its option may have been accepted. *)
  let o1 =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 1 }) ]
  in
  check_commit "t1" o1;
  let o2 =
    run_txn engine cluster ~dc:1
      [
        (item 0, Update.Physical { vread = 1; value = item_row 2 });
        (item 1, Update.Physical { vread = 1; value = item_row 2 });
      ]
  in
  check_abort "t2 aborts atomically" o2;
  Alcotest.(check int) "item1 untouched" 100 (stock_at cluster ~dc:0 1)

let run_mode_matrix test () =
  List.iter (fun mode -> test mode) [ Config.Full; Config.Fast_only; Config.Multi ]

let test_modes_basic_commit mode =
  let engine, cluster = make_cluster ~mode ~items:4 () in
  let outcome =
    run_txn engine cluster ~dc:3
      [
        (item 0, Update.Physical { vread = 1; value = item_row 9 });
        (item 1, Update.Physical { vread = 1; value = item_row 9 });
      ]
  in
  check_commit (Config.mode_name mode ^ " commit") outcome;
  Alcotest.(check int) "applied" 9 (stock_at cluster ~dc:1 0)

let test_modes_conflict mode =
  let engine, cluster = make_cluster ~mode ~items:4 () in
  let o1 =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 5 }) ]
  in
  let o2 =
    run_txn engine cluster ~dc:1 [ (item 0, Update.Physical { vread = 1; value = item_row 6 }) ]
  in
  check_commit (Config.mode_name mode ^ " first") o1;
  check_abort (Config.mode_name mode ^ " second") o2

let suite =
  [
    Alcotest.test_case "single update commits" `Quick test_single_update_commits;
    Alcotest.test_case "multi-record commit" `Quick test_multi_record_commit;
    Alcotest.test_case "stale vread aborts" `Quick test_stale_vread_aborts;
    Alcotest.test_case "insert & duplicate insert" `Quick test_insert_and_conflict;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "concurrent conflict: one wins" `Quick test_concurrent_conflict_one_wins;
    Alcotest.test_case "commutative decrements all commit" `Quick
      test_commutative_decrements_all_commit;
    Alcotest.test_case "constraint rejects oversell" `Quick test_constraint_rejects_oversell;
    Alcotest.test_case "stock never negative under contention" `Quick
      test_stock_never_negative_under_contention;
    Alcotest.test_case "cross-record atomicity" `Quick test_atomicity_cross_record;
    Alcotest.test_case "all modes: basic commit" `Quick (run_mode_matrix test_modes_basic_commit);
    Alcotest.test_case "all modes: write-write conflict" `Quick
      (run_mode_matrix test_modes_conflict);
  ]
