(* Failure-scenario tests: data-center outages, master failure, dangling
   transactions (app-server death), straggler catch-up — §3.2.3 / §5.3.4. *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator
module Storage_node = Mdcc_core.Storage_node
module Topology = Mdcc_sim.Topology

let test_commit_with_failed_dc () =
  (* One data center down: fast commits still possible (4 of 5 answer). *)
  let engine, cluster = make_cluster ~items:5 () in
  Cluster.fail_dc cluster Topology.us_east;
  let o =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 9 }) ]
  in
  Alcotest.(check bool) "commits despite outage" true (is_committed o);
  Alcotest.(check int) "applied in live DCs" 9 (stock_at cluster ~dc:4 0)

let test_commit_with_failed_dc_multi () =
  (* Multi mode only needs a classic quorum: also survives an outage, as
     long as the master is alive. *)
  let master_dc_of _ = 0 in
  let engine, cluster = make_cluster ~mode:Config.Multi ~master_dc_of ~items:5 () in
  Cluster.fail_dc cluster 3;
  let o =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 9 }) ]
  in
  Alcotest.(check bool) "multi commits despite outage" true (is_committed o)

let test_master_failure_failover () =
  (* The record's master DC is dead: the coordinator's learn timeout rotates
     recovery to another replica, which acquires a higher classic ballot. *)
  let master_dc_of _ = 2 in
  let engine, cluster =
    make_cluster ~mode:Config.Multi ~master_dc_of ~learn_timeout:600.0 ~items:5 ()
  in
  Cluster.fail_dc cluster 2;
  let o =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 7 }) ]
  in
  Alcotest.(check bool) "commits after failover" true (is_committed o);
  Alcotest.(check int) "applied" 7 (stock_at cluster ~dc:0 0)

let test_recovered_dc_catches_up_on_next_update () =
  (* Records updated during an outage are healed by the next physical
     update (absolute value + version jump), as §5.3.4 describes. *)
  let engine, cluster = make_cluster ~items:5 () in
  Cluster.fail_dc cluster 4;
  let o1 =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 1; value = item_row 9 }) ]
  in
  Alcotest.(check bool) "commit during outage" true (is_committed o1);
  Cluster.recover_dc cluster 4;
  Alcotest.(check int) "dc4 still stale" 100 (stock_at cluster ~dc:4 0);
  let o2 =
    run_txn engine cluster ~dc:0 [ (item 0, Update.Physical { vread = 2; value = item_row 8 }) ]
  in
  Alcotest.(check bool) "next update commits" true (is_committed o2);
  Alcotest.(check int) "dc4 healed" 8 (stock_at cluster ~dc:4 0)

let test_dangling_txn_committed_by_recovery () =
  (* The app-server dies right after proposing: its options are accepted
     everywhere but no Visibility ever arrives.  The dangling-transaction
     scan must finish the commit on its behalf. *)
  let engine, cluster =
    make_cluster ~learn_timeout:500.0 ~txn_timeout:800.0 ~dangling_scan_every:200.0
      ~maintenance:true ~items:5 ()
  in
  let coordinator = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  let got = ref None in
  Coordinator.submit coordinator
    (Txn.make ~id:"dangling-1"
       ~updates:
         [
           (item 0, Update.Physical { vread = 1; value = item_row 55 });
           (item 1, Update.Delta [ ("stock", -5) ]);
         ])
    (fun o -> got := Some o);
  (* Kill the app-server before any vote can reach it (votes need >= 40ms). *)
  ignore
    (Engine.schedule engine ~after:20.0 (fun () ->
         Mdcc_sim.Network.fail_node (Cluster.network cluster)
           (Coordinator.node_id coordinator)));
  Engine.run ~until:30_000.0 engine;
  Alcotest.(check bool) "coordinator never heard back" true (!got = None);
  (* Recovery must have executed the options at the replicas. *)
  for dc = 0 to 4 do
    Alcotest.(check int) "item0 executed" 55 (stock_at cluster ~dc 0);
    Alcotest.(check int) "item1 executed" 95 (stock_at cluster ~dc 1)
  done;
  let pendings =
    List.fold_left (fun acc n -> acc + Storage_node.pending_options n) 0
      (Cluster.storage_nodes cluster)
  in
  Alcotest.(check int) "no dangling options left" 0 pendings

let test_dangling_txn_never_proposed_key_aborts () =
  (* The app-server dies after proposing only ONE of two options.  No
     replica of the second key ever saw an option, so recovery must seal
     that instance as rejected and abort the transaction everywhere. *)
  let engine, cluster =
    make_cluster ~learn_timeout:500.0 ~txn_timeout:800.0 ~dangling_scan_every:200.0
      ~maintenance:true ~items:5 ()
  in
  (* Simulate the partial proposal by hand-crafting the option traffic of a
     dying coordinator: propose for item0 only, with a write-set naming both
     keys. *)
  let net = Cluster.network cluster in
  let dead_app = Coordinator.node_id (Cluster.coordinator cluster ~dc:0 ~rank:0) in
  let w : Mdcc_core.Woption.t =
    {
      Mdcc_core.Woption.txid = "dangling-2";
      key = item 0;
      update = Update.Physical { vread = 1; value = item_row 77 };
      write_set = [ item 0; item 1 ];
      coordinator = dead_app;
    }
  in
  List.iter
    (fun replica ->
      Mdcc_sim.Network.send net ~src:dead_app ~dst:replica
        (Mdcc_core.Messages.Propose { woption = w; route = `Fast }))
    (Cluster.replicas cluster (item 0));
  Mdcc_sim.Network.fail_node net dead_app;
  Engine.run ~until:30_000.0 engine;
  (* The transaction aborted: neither item changed and nothing is pending. *)
  for dc = 0 to 4 do
    Alcotest.(check int) "item0 unchanged" 100 (stock_at cluster ~dc 0);
    Alcotest.(check int) "item1 unchanged" 100 (stock_at cluster ~dc 1)
  done;
  let pendings =
    List.fold_left (fun acc n -> acc + Storage_node.pending_options n) 0
      (Cluster.storage_nodes cluster)
  in
  Alcotest.(check int) "no dangling options left" 0 pendings

let test_collision_resolution_under_contention () =
  (* Many clients race on one record with physical updates: fast ballots
     collide, the master resolves with classic ballots, and exactly the
     serializable number of transactions commits. *)
  let engine, cluster = make_cluster ~mode:Config.Fast_only ~items:1 () in
  let results = ref [] in
  for i = 0 to 9 do
    let c = Cluster.coordinator cluster ~dc:(i mod 5) ~rank:0 in
    Coordinator.submit c
      (Txn.make ~id:(Printf.sprintf "race-%d" i)
         ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row (10 + i) }) ])
      (fun o -> results := o :: !results)
  done;
  Engine.run ~until:60_000.0 engine;
  Alcotest.(check int) "all decided" 10 (List.length !results);
  (* At most one same-version writer can commit; all aborting is also legal
     (the paper's deadlock-avoidance policy may reject every option when
     each acceptor accepted a different first arrival, §3.2.2). *)
  let commits = List.length (List.filter is_committed !results) in
  Alcotest.(check bool) "at most one same-version writer commits" true (commits <= 1);
  let final = stock_at cluster ~dc:0 0 in
  if commits = 1 then
    Alcotest.(check bool) "final value is the winner's" true (final >= 10 && final <= 19)
  else Alcotest.(check int) "no commit: value unchanged" 100 final;
  for dc = 1 to 4 do
    Alcotest.(check int) "replicas agree" final (stock_at cluster ~dc 0)
  done

let test_fast_era_resumes_after_gamma () =
  (* After a collision the record runs classic for gamma instances, then
     fast proposals are accepted again. *)
  let engine, cluster = make_cluster ~mode:Config.Fast_only ~gamma:2 ~items:1 () in
  (* Trigger a collision. *)
  let r1 = ref None and r2 = ref None in
  let c0 = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  let c1 = Cluster.coordinator cluster ~dc:4 ~rank:0 in
  Coordinator.submit c0
    (Txn.make ~id:"ca" ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 1 }) ])
    (fun o -> r1 := Some o);
  Coordinator.submit c1
    (Txn.make ~id:"cb" ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 2 }) ])
    (fun o -> r2 := Some o);
  Engine.run ~until:60_000.0 engine;
  (* Now run gamma (2) more updates through, then one more: all commit. *)
  let version = ref (Cluster.peek cluster ~dc:0 (item 0) |> Option.get |> snd) in
  for i = 0 to 3 do
    let o =
      run_txn engine cluster ~dc:1
        [ (item 0, Update.Physical { vread = !version; value = item_row (50 + i) }) ]
    in
    Alcotest.(check bool) (Printf.sprintf "update %d commits" i) true (is_committed o);
    incr version
  done;
  Alcotest.(check int) "final value" 53 (stock_at cluster ~dc:2 0)

let test_quorum_lost_then_restored () =
  (* With three DCs down not even a classic quorum exists: the transaction
     stays undecided (MDCC never guesses); when the DCs return, recovery
     finishes it. *)
  let engine, cluster =
    make_cluster ~learn_timeout:500.0 ~txn_timeout:1000.0 ~dangling_scan_every:300.0
      ~maintenance:true ~items:3 ()
  in
  Cluster.fail_dc cluster 2;
  Cluster.fail_dc cluster 3;
  Cluster.fail_dc cluster 4;
  let got = ref None in
  let c = Cluster.coordinator cluster ~dc:0 ~rank:0 in
  Coordinator.submit c
    (Txn.make ~id:"q" ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 5 }) ])
    (fun o -> got := Some o);
  Engine.run ~until:5_000.0 engine;
  Alcotest.(check bool) "undecided without quorum" true (!got = None);
  Cluster.recover_dc cluster 2;
  Cluster.recover_dc cluster 3;
  Cluster.recover_dc cluster 4;
  Engine.run ~until:60_000.0 engine;
  (match !got with
  | Some o -> Alcotest.(check bool) "decided after recovery" true (is_committed o)
  | None -> Alcotest.fail "still undecided after quorum restored");
  Alcotest.(check int) "applied everywhere" 5 (stock_at cluster ~dc:3 0)

let suite =
  [
    Alcotest.test_case "commit with failed DC (fast)" `Quick test_commit_with_failed_dc;
    Alcotest.test_case "commit with failed DC (multi)" `Quick test_commit_with_failed_dc_multi;
    Alcotest.test_case "master failover" `Quick test_master_failure_failover;
    Alcotest.test_case "recovered DC heals on next update" `Quick
      test_recovered_dc_catches_up_on_next_update;
    Alcotest.test_case "dangling txn committed by recovery" `Quick
      test_dangling_txn_committed_by_recovery;
    Alcotest.test_case "dangling txn with unproposed key aborts" `Quick
      test_dangling_txn_never_proposed_key_aborts;
    Alcotest.test_case "contention: collisions resolved, one winner" `Quick
      test_collision_resolution_under_contention;
    Alcotest.test_case "fast era resumes after gamma" `Quick test_fast_era_resumes_after_gamma;
    Alcotest.test_case "quorum lost then restored" `Quick test_quorum_lost_then_restored;
  ]
