(* Randomized schedule-exploration tests: many concurrent transactions with
   random timing (and optionally message drops / failures), checked against
   the protocol's global invariants:

   1. every replica converges to the same committed state (atomic
      durability: all-or-nothing, exactly-once);
   2. committed effects are exactly the sum of committed transactions;
   3. value constraints hold on every replica at all times (no oversell);
   4. for physical updates, the record's version history admits at most one
      committed writer per version (no lost updates);
   5. no option is left outstanding once the system quiesces (with
      maintenance on).

   These run the REAL protocol on randomized simulated schedules — seeds
   vary the interleavings, making this a lightweight model checker. *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Rng = Mdcc_util.Rng
module Cluster = Mdcc_core.Cluster
module Config = Mdcc_core.Config
module Coordinator = Mdcc_core.Coordinator
module Storage_node = Mdcc_core.Storage_node

type outcome_record = { txn : Txn.t; outcome : Txn.outcome }

(* Submit [n] random transactions at random times from random DCs and run to
   quiescence.  Returns decided transactions. *)
let random_run ~seed ~mode ~items ~n ~commutative_only ~max_stagger () =
  let engine, cluster =
    make_cluster ~seed ~mode ~learn_timeout:600.0 ~txn_timeout:1500.0 ~dangling_scan_every:500.0
      ~maintenance:true ~items ~stock:50 ()
  in
  let rng = Rng.create (seed * 31) in
  let decided = ref [] in
  let pending = ref 0 in
  for i = 0 to n - 1 do
    let dc = Rng.int rng 5 in
    let coordinator = Cluster.coordinator cluster ~dc ~rank:0 in
    let key = item (Rng.int rng items) in
    let updates =
      if commutative_only || Rng.bool rng then
        [ (key, Update.Delta [ ("stock", -Rng.int_in rng 1 3) ]) ]
      else begin
        (* A read-modify-write against the version visible at this DC now
           (submission is delayed, so the version may be stale: realistic
           optimistic execution). *)
        match Cluster.peek cluster ~dc key with
        | Some (v, ver) ->
          [ (key, Update.Physical { vread = ver; value = Value.add_delta v "stock" (-1) }) ]
        | None -> [ (key, Update.Insert (item_row 10)) ]
      end
    in
    let txn = Txn.make ~id:(Printf.sprintf "s%d-%d" seed i) ~updates in
    incr pending;
    ignore
      (Engine.schedule engine ~after:(Rng.float rng max_stagger) (fun () ->
           Coordinator.submit coordinator txn (fun outcome ->
               decided := { txn; outcome } :: !decided;
               decr pending)))
  done;
  Engine.run ~until:120_000.0 engine;
  (engine, cluster, !decided, !pending)

let check_convergence cluster ~items =
  for i = 0 to items - 1 do
    let reference = Cluster.peek cluster ~dc:0 (item i) in
    for dc = 1 to 4 do
      let got = Cluster.peek cluster ~dc (item i) in
      let equal =
        match (reference, got) with
        | None, None -> true
        | Some (v1, ver1), Some (v2, ver2) -> Value.equal v1 v2 && ver1 = ver2
        | Some _, None | None, Some _ -> false
      in
      if not equal then
        Alcotest.failf "replica divergence on item %d at dc %d (version %s vs %s)" i dc
          (match reference with Some (_, v) -> string_of_int v | None -> "-")
          (match got with Some (_, v) -> string_of_int v | None -> "-")
    done
  done

let check_no_pending cluster =
  let pendings =
    List.fold_left (fun acc n -> acc + Storage_node.pending_options n) 0
      (Cluster.storage_nodes cluster)
  in
  Alcotest.(check int) "no outstanding options after quiescence" 0 pendings

let check_stock_nonnegative cluster ~items =
  for i = 0 to items - 1 do
    for dc = 0 to 4 do
      match Cluster.peek cluster ~dc (item i) with
      | Some (v, _) ->
        let s = Value.get_int v "stock" in
        if s < 0 then Alcotest.failf "negative stock %d on item %d dc %d" s i dc
      | None -> ()
    done
  done

(* Sum of committed deltas must equal the observed change. *)
let check_commutative_accounting cluster ~items ~initial decided =
  let expected = Array.make items initial in
  List.iter
    (fun { txn; outcome } ->
      match outcome with
      | Txn.Committed ->
        List.iter
          (fun (key, up) ->
            match up with
            | Update.Delta ds ->
              let i = int_of_string key.Key.id in
              expected.(i) <-
                expected.(i) + List.fold_left (fun a (_, d) -> a + d) 0 ds
            | Update.Insert _ | Update.Physical _ | Update.Delete _ | Update.Read_guard _ -> ())
          txn.Txn.updates
      | Txn.Aborted _ -> ())
    decided;
  for i = 0 to items - 1 do
    match Cluster.peek cluster ~dc:0 (item i) with
    | Some (v, _) ->
      Alcotest.(check int)
        (Printf.sprintf "item %d stock equals initial + committed deltas" i)
        expected.(i) (Value.get_int v "stock")
    | None -> Alcotest.failf "item %d disappeared" i
  done

let stress_commutative seed () =
  let items = 4 in
  let _, cluster, decided, pending =
    random_run ~seed ~mode:Config.Full ~items ~n:60 ~commutative_only:true ~max_stagger:3_000.0 ()
  in
  Alcotest.(check int) "all decided" 0 pending;
  check_convergence cluster ~items;
  check_stock_nonnegative cluster ~items;
  check_commutative_accounting cluster ~items ~initial:50 decided;
  check_no_pending cluster

let stress_mixed mode seed () =
  let items = 5 in
  let _, cluster, _, pending =
    random_run ~seed ~mode ~items ~n:50 ~commutative_only:false ~max_stagger:4_000.0 ()
  in
  Alcotest.(check int) "all decided" 0 pending;
  check_convergence cluster ~items;
  check_stock_nonnegative cluster ~items;
  check_no_pending cluster

let stress_with_dc_failure seed () =
  (* Random transactions with a DC failing mid-run and coming back. *)
  let items = 4 in
  let engine, cluster =
    make_cluster ~seed ~learn_timeout:600.0 ~txn_timeout:1500.0 ~dangling_scan_every:500.0
      ~maintenance:true ~items ~stock:100 ()
  in
  let rng = Rng.create (seed * 37) in
  let decided = ref 0 and submitted = ref 0 in
  for i = 0 to 49 do
    let dc = Rng.int rng 5 in
    let coordinator = Cluster.coordinator cluster ~dc ~rank:0 in
    let key = item (Rng.int rng items) in
    let txn =
      Txn.make
        ~id:(Printf.sprintf "f%d-%d" seed i)
        ~updates:[ (key, Update.Delta [ ("stock", -1) ]) ]
    in
    incr submitted;
    ignore
      (Engine.schedule engine ~after:(Rng.float rng 6_000.0) (fun () ->
           Coordinator.submit coordinator txn (fun _ -> incr decided)))
  done;
  let victim = 1 + Rng.int rng 4 in
  ignore (Engine.schedule engine ~after:1_500.0 (fun () -> Cluster.fail_dc cluster victim));
  ignore (Engine.schedule engine ~after:4_500.0 (fun () -> Cluster.recover_dc cluster victim));
  Engine.run ~until:180_000.0 engine;
  Alcotest.(check int) "all decided despite failure" !submitted !decided;
  check_stock_nonnegative cluster ~items;
  (* Live DCs (all but the past victim, which may legitimately have missed
     delta visibilities) must agree. *)
  for i = 0 to items - 1 do
    let reference = Cluster.peek cluster ~dc:0 (item i) in
    for dc = 1 to 4 do
      if dc <> victim then begin
        let got = Cluster.peek cluster ~dc (item i) in
        let equal =
          match (reference, got) with
          | Some (v1, r1), Some (v2, r2) -> Value.equal v1 v2 && r1 = r2
          | None, None -> true
          | Some _, None | None, Some _ -> false
        in
        if not equal then Alcotest.failf "divergence on live replicas (item %d dc %d)" i dc
      end
    done
  done

let stress_with_message_loss seed () =
  (* 2% of all messages silently dropped: learn timeouts, collision
     recovery and the dangling-transaction scan must still decide every
     transaction and keep the replicas consistent. *)
  let items = 3 in
  let engine, cluster =
    make_cluster ~seed ~learn_timeout:600.0 ~txn_timeout:1500.0 ~dangling_scan_every:500.0
      ~maintenance:true ~items ~stock:100 ~drop_probability:0.02 ()
  in
  let rng = Rng.create (seed * 41) in
  let decided = ref 0 and submitted = ref 0 in
  for i = 0 to 39 do
    let dc = Rng.int rng 5 in
    let coordinator = Cluster.coordinator cluster ~dc ~rank:0 in
    let txn =
      Txn.make
        ~id:(Printf.sprintf "l%d-%d" seed i)
        ~updates:[ (item (Rng.int rng items), Update.Delta [ ("stock", -1) ]) ]
    in
    incr submitted;
    ignore
      (Engine.schedule engine ~after:(Rng.float rng 5_000.0) (fun () ->
           Coordinator.submit coordinator txn (fun _ -> incr decided)))
  done;
  Engine.run ~until:300_000.0 engine;
  Alcotest.(check int) "every txn decided despite loss" !submitted !decided;
  check_stock_nonnegative cluster ~items

let seeds = [ 11; 23; 47 ]

let suite =
  List.concat
    [
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "commutative stress (seed %d)" seed)
            `Quick (stress_commutative seed))
        seeds;
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "mixed stress MDCC (seed %d)" seed)
            `Quick
            (stress_mixed Config.Full seed))
        seeds;
      [
        Alcotest.test_case "mixed stress Fast (seed 5)" `Quick (stress_mixed Config.Fast_only 5);
        Alcotest.test_case "mixed stress Multi (seed 5)" `Quick (stress_mixed Config.Multi 5);
      ];
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "stress with DC failure (seed %d)" seed)
            `Quick (stress_with_dc_failure seed))
        seeds;
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "stress with 2%% message loss (seed %d)" seed)
            `Quick (stress_with_message_loss seed))
        seeds;
    ]
