(* Tests for ballots, quorum arithmetic, the Fast Paxos safe-value rule and
   Generalized Paxos cstructs. *)

open Mdcc_paxos

let ballot = Alcotest.testable Ballot.pp Ballot.equal

let test_ballot_ordering () =
  let f0 = Ballot.initial_fast in
  let c1 = Ballot.classic ~number:1 ~proposer:3 in
  let f1 = Ballot.fast ~number:1 ~proposer:3 in
  Alcotest.(check bool) "fast0 < classic1" true Ballot.(f0 <% c1);
  Alcotest.(check bool) "fast1 < classic1 (classic outranks fast at equal number)" true
    Ballot.(f1 <% c1);
  Alcotest.(check bool) "classic1 not < fast1" false Ballot.(c1 <% f1);
  Alcotest.(check bool) "proposer breaks ties" true
    Ballot.(Ballot.classic ~number:1 ~proposer:1 <% Ballot.classic ~number:1 ~proposer:2)

let test_ballot_next_classic () =
  let f0 = Ballot.initial_fast in
  let n = Ballot.next_classic f0 ~proposer:2 in
  Alcotest.(check bool) "next classic beats fast 0" true Ballot.(f0 <% n);
  let c5 = Ballot.classic ~number:5 ~proposer:9 in
  let n2 = Ballot.next_classic c5 ~proposer:2 in
  Alcotest.(check bool) "next classic beats classic 5.9" true Ballot.(c5 <% n2);
  Alcotest.check ballot "bumps the number" (Ballot.classic ~number:6 ~proposer:2) n2

let test_quorum_sizes () =
  Alcotest.(check int) "classic(5)" 3 (Quorum.classic_size ~n:5);
  Alcotest.(check int) "fast(5)" 4 (Quorum.fast_size ~n:5);
  Alcotest.(check int) "classic(3)" 2 (Quorum.classic_size ~n:3);
  Alcotest.(check int) "fast(3)" 3 (Quorum.fast_size ~n:3);
  Alcotest.(check int) "classic(7)" 4 (Quorum.classic_size ~n:7);
  Alcotest.(check int) "fast(7)" 6 (Quorum.fast_size ~n:7)

(* The defining property: any two fast quorums and a classic quorum share a
   member, and any two quorums intersect. *)
let prop_quorum_intersection =
  QCheck.Test.make ~name:"fast quorum intersection property" ~count:100
    QCheck.(int_range 3 15)
    (fun n ->
      let c = Quorum.classic_size ~n and f = Quorum.fast_size ~n in
      (2 * f) + c - (2 * n) >= 1 && 2 * c - n >= 1 && f <= n)

let test_fast_impossible () =
  (* n=5, f=4 *)
  Alcotest.(check bool) "3acc/0rej possible" false (Quorum.fast_impossible ~n:5 ~acks:3 ~rejects:0);
  Alcotest.(check bool) "3acc/2rej collision" true (Quorum.fast_impossible ~n:5 ~acks:3 ~rejects:2);
  Alcotest.(check bool) "2acc/2rej still open (5th could...)" true
    (Quorum.fast_impossible ~n:5 ~acks:2 ~rejects:2);
  Alcotest.(check bool) "4acc reached not impossible" false
    (Quorum.fast_impossible ~n:5 ~acks:4 ~rejects:1);
  Alcotest.(check bool) "0/0 open" false (Quorum.fast_impossible ~n:5 ~acks:0 ~rejects:0)

let fast0 = Ballot.initial_fast

let vote a v = { Quorum.acceptor = a; ballot = fast0; value = v }

let test_safe_value_classic_wins () =
  let c2 = Ballot.classic ~number:2 ~proposer:1 in
  let votes = [ vote 1 "x"; { Quorum.acceptor = 2; ballot = c2; value = "y" }; vote 3 "x" ] in
  Alcotest.(check (option string)) "classic ballot's value forced" (Some "y")
    (Quorum.safe_value ~n:5 ~quorum_size:3 ~equal:String.equal votes)

let test_safe_value_fast_threshold () =
  (* Paper's example (§3.3.1): quorum of responses where one value has
     enough support to have possibly been fast-chosen. *)
  let votes = [ vote 2 "v1->v2"; vote 3 "v1->v3"; vote 5 "v1->v2" ] in
  Alcotest.(check (option string)) "v1->v2 must be proposed" (Some "v1->v2")
    (Quorum.safe_value ~n:5 ~quorum_size:3 ~equal:String.equal votes);
  (* With only one supporter each and quorum 3 of 5, threshold is
     4 - (5 - 3) = 2: nothing is anchored. *)
  let votes2 = [ vote 2 "a"; vote 3 "b" ] in
  Alcotest.(check (option string)) "no anchored value" None
    (Quorum.safe_value ~n:5 ~quorum_size:3 ~equal:String.equal votes2)

let test_safe_value_empty () =
  Alcotest.(check (option string)) "no votes: free" None
    (Quorum.safe_value ~n:5 ~quorum_size:3 ~equal:String.equal [])

(* --- cstructs ---------------------------------------------------------- *)

module Cmd = struct
  type t = { id : string; group : char }

  let id c = c.id

  (* Commands commute unless they share a group (like two physical updates
     on the same record). *)
  let commutes a b = a.group <> b.group
end

module C = Cstruct.Make (Cmd)

let cmd id group = { Cmd.id; group }

let test_cstruct_append_dedup () =
  let c = C.append (C.append C.empty (cmd "a" 'x')) (cmd "a" 'x') in
  Alcotest.(check int) "dedup" 1 (C.size c);
  Alcotest.(check bool) "mem" true (C.mem c "a");
  Alcotest.(check bool) "not mem" false (C.mem c "b")

let test_cstruct_leq () =
  let a = C.append C.empty (cmd "a" 'x') in
  let ab = C.append a (cmd "b" 'x') in
  let ba = C.append (C.append C.empty (cmd "b" 'x')) (cmd "a" 'x') in
  Alcotest.(check bool) "empty leq anything" true (C.leq C.empty ab);
  Alcotest.(check bool) "prefix leq" true (C.leq a ab);
  Alcotest.(check bool) "not leq (missing)" false (C.leq ab a);
  Alcotest.(check bool) "order matters for conflicting" false (C.leq ab ba);
  (* commuting commands: order does not matter *)
  let ay = C.append a (cmd "c" 'y') in
  let ya = C.append (C.append C.empty (cmd "c" 'y')) (cmd "a" 'x') in
  Alcotest.(check bool) "commuting reorder leq" true (C.leq ay ya && C.leq ya ay);
  Alcotest.(check bool) "equal as cstructs" true (C.equal ay ya)

let test_cstruct_lub_compatible () =
  let a = C.append C.empty (cmd "a" 'x') in
  let b = C.append C.empty (cmd "b" 'y') in
  match C.lub a b with
  | None -> Alcotest.fail "commuting cstructs must be compatible"
  | Some u ->
    Alcotest.(check bool) "upper bound of a" true (C.leq a u);
    Alcotest.(check bool) "upper bound of b" true (C.leq b u);
    Alcotest.(check int) "union size" 2 (C.size u)

let test_cstruct_lub_incompatible () =
  let ab = C.append (C.append C.empty (cmd "a" 'x')) (cmd "b" 'x') in
  let ba = C.append (C.append C.empty (cmd "b" 'x')) (cmd "a" 'x') in
  Alcotest.(check bool) "conflicting orders incompatible" false (C.compatible ab ba)

let test_cstruct_glb () =
  let abc =
    C.append (C.append (C.append C.empty (cmd "a" 'x')) (cmd "b" 'y')) (cmd "c" 'z')
  in
  let acd = C.append (C.append (C.append C.empty (cmd "a" 'x')) (cmd "c" 'z')) (cmd "d" 'w') in
  let g = C.glb abc acd in
  Alcotest.(check bool) "glb leq left" true (C.leq g abc);
  Alcotest.(check bool) "glb leq right" true (C.leq g acd);
  Alcotest.(check bool) "contains common a" true (C.mem g "a");
  Alcotest.(check bool) "contains common c" true (C.mem g "c");
  Alcotest.(check bool) "no d" false (C.mem g "d")

(* Property: lub, when defined, is an upper bound; glb is a lower bound. *)
let gen_cstruct =
  QCheck.Gen.(
    let cmd_gen =
      map2 (fun i g -> cmd (Printf.sprintf "c%d" i) g) (int_range 0 8) (oneofl [ 'x'; 'y'; 'z' ])
    in
    map (List.fold_left C.append C.empty) (list_size (int_range 0 6) cmd_gen))

let arb_cstruct = QCheck.make gen_cstruct

let prop_lub_upper_bound =
  QCheck.Test.make ~name:"lub is an upper bound" ~count:300 (QCheck.pair arb_cstruct arb_cstruct)
    (fun (a, b) ->
      match C.lub a b with None -> true | Some u -> C.leq a u && C.leq b u)

let prop_glb_lower_bound =
  QCheck.Test.make ~name:"glb is a lower bound" ~count:300 (QCheck.pair arb_cstruct arb_cstruct)
    (fun (a, b) ->
      let g = C.glb a b in
      C.leq g a && C.leq g b)

let prop_leq_reflexive_transitive =
  QCheck.Test.make ~name:"leq reflexive & transitive" ~count:300
    (QCheck.triple arb_cstruct arb_cstruct arb_cstruct) (fun (a, b, c) ->
      C.leq a a && if C.leq a b && C.leq b c then C.leq a c else true)

let prop_append_extends =
  QCheck.Test.make ~name:"append extends (a leq a•c)" ~count:300
    (QCheck.pair arb_cstruct (QCheck.make (QCheck.Gen.return (cmd "fresh" 'x'))))
    (fun (a, c) -> C.leq a (C.append a c))

let suite =
  [
    Alcotest.test_case "ballot ordering" `Quick test_ballot_ordering;
    Alcotest.test_case "ballot next_classic" `Quick test_ballot_next_classic;
    Alcotest.test_case "quorum sizes" `Quick test_quorum_sizes;
    Alcotest.test_case "fast_impossible" `Quick test_fast_impossible;
    Alcotest.test_case "safe_value: classic wins" `Quick test_safe_value_classic_wins;
    Alcotest.test_case "safe_value: fast threshold (paper example)" `Quick
      test_safe_value_fast_threshold;
    Alcotest.test_case "safe_value: empty" `Quick test_safe_value_empty;
    Alcotest.test_case "cstruct append/dedup" `Quick test_cstruct_append_dedup;
    Alcotest.test_case "cstruct leq" `Quick test_cstruct_leq;
    Alcotest.test_case "cstruct lub compatible" `Quick test_cstruct_lub_compatible;
    Alcotest.test_case "cstruct lub incompatible" `Quick test_cstruct_lub_incompatible;
    Alcotest.test_case "cstruct glb" `Quick test_cstruct_glb;
    QCheck_alcotest.to_alcotest prop_quorum_intersection;
    QCheck_alcotest.to_alcotest prop_lub_upper_bound;
    QCheck_alcotest.to_alcotest prop_glb_lower_bound;
    QCheck_alcotest.to_alcotest prop_leq_reflexive_transitive;
    QCheck_alcotest.to_alcotest prop_append_extends;
  ]
