(* Tests of the SQL-like language: tokenizer/parser unit tests and
   end-to-end execution against a live cluster. *)

open Mdcc_storage
open Helpers
module Engine = Mdcc_sim.Engine
module Cluster = Mdcc_core.Cluster
module Session = Mdcc_core.Session
module Ast = Mdcc_sql.Ast
module Parser = Mdcc_sql.Parser
module Exec = Mdcc_sql.Exec

(* --- parser ------------------------------------------------------------ *)

let parse_ok src =
  match Parser.parse_statement src with
  | Ok stmt -> stmt
  | Error e -> Alcotest.failf "unexpected parse error: %a" Parser.pp_error e

let parse_err src =
  match Parser.parse_statement src with
  | Ok stmt -> Alcotest.failf "expected error, parsed: %a" Ast.pp_statement stmt
  | Error _ -> ()

let test_parse_select () =
  match parse_ok "SELECT * FROM item WHERE id = 'x1'" with
  | Ast.Select { table; id } ->
    Alcotest.(check string) "table" "item" table;
    Alcotest.(check string) "id" "x1" id
  | _ -> Alcotest.fail "wrong statement"

let test_parse_insert () =
  match parse_ok "INSERT INTO item (id, stock, name) VALUES ('x', 10, 'socks')" with
  | Ast.Insert { table; id; columns } ->
    Alcotest.(check string) "table" "item" table;
    Alcotest.(check string) "id" "x" id;
    Alcotest.(check int) "two non-key columns" 2 (List.length columns);
    Alcotest.(check bool) "stock=10" true (List.assoc "stock" columns = Ast.Int 10);
    Alcotest.(check bool) "name='socks'" true (List.assoc "name" columns = Ast.Str "socks")
  | _ -> Alcotest.fail "wrong statement"

let test_parse_update_delta () =
  match parse_ok "UPDATE item SET stock = stock - 2, sold = sold + 2 WHERE id = '7'" with
  | Ast.Update { assignments; _ } ->
    Alcotest.(check bool) "commutative" true (Ast.is_commutative assignments);
    Alcotest.(check bool) "minus two" true (List.mem (Ast.Add ("stock", -2)) assignments);
    Alcotest.(check bool) "plus two" true (List.mem (Ast.Add ("sold", 2)) assignments)
  | _ -> Alcotest.fail "wrong statement"

let test_parse_update_absolute () =
  match parse_ok "update item set price = 99 where id = '7'" with
  | Ast.Update { assignments; _ } ->
    Alcotest.(check bool) "not commutative" false (Ast.is_commutative assignments)
  | _ -> Alcotest.fail "wrong statement"

let test_parse_delete_begin_commit () =
  (match parse_ok "DELETE FROM item WHERE id = 'gone'" with
  | Ast.Delete { table; id } ->
    Alcotest.(check string) "table" "item" table;
    Alcotest.(check string) "id" "gone" id
  | _ -> Alcotest.fail "wrong statement");
  Alcotest.(check bool) "begin" true (parse_ok "BEGIN" = Ast.Begin);
  Alcotest.(check bool) "commit" true (parse_ok "commit" = Ast.Commit)

let test_parse_script () =
  match Parser.parse_script "BEGIN; UPDATE item SET stock = stock - 1 WHERE id = 'a'; COMMIT;" with
  | Ok [ Ast.Begin; Ast.Update _; Ast.Commit ] -> ()
  | Ok stmts -> Alcotest.failf "parsed %d statements" (List.length stmts)
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let test_parse_errors () =
  parse_err "SELEC * FROM item WHERE id = 'x'";
  parse_err "SELECT * FROM item WHERE name = 'x'";
  parse_err "UPDATE item SET stock = other + 1 WHERE id = 'x'";
  parse_err "INSERT INTO item (stock) VALUES (1)";
  parse_err "INSERT INTO item (id, stock) VALUES ('x')";
  parse_err "SELECT * FROM item WHERE id = 'x' garbage";
  parse_err "UPDATE item SET stock = 'unterminated WHERE id = 'x'"

let test_parse_negative_literal () =
  match parse_ok "INSERT INTO ledger (id, balance) VALUES ('a', -5)" with
  | Ast.Insert { columns; _ } ->
    Alcotest.(check bool) "negative" true (List.assoc "balance" columns = Ast.Int (-5))
  | _ -> Alcotest.fail "wrong statement"

(* Property: pretty-printing a statement and re-parsing it is the identity
   (for identifier-safe names). *)
let gen_name = QCheck.Gen.(map (fun i -> Printf.sprintf "col%d" i) (int_range 0 20))

let gen_statement =
  let open QCheck.Gen in
  let lit = oneof [ map (fun i -> Ast.Int i) (int_range (-500) 500);
                    map (fun i -> Ast.Str (Printf.sprintf "v%d" i)) (int_range 0 99) ] in
  let table = map (fun i -> Printf.sprintf "tbl%d" i) (int_range 0 5) in
  let id = map (fun i -> Printf.sprintf "k%d" i) (int_range 0 99) in
  let assignment =
    oneof
      [ map2 (fun a l -> Ast.Set (a, l)) gen_name lit;
        map2 (fun a d -> Ast.Add (a, d)) gen_name (oneof [ int_range 1 9; int_range (-9) (-1) ]) ]
  in
  oneof
    [
      map2 (fun table id -> Ast.Select { table; id }) table id;
      map3
        (fun table id columns -> Ast.Insert { table; id; columns })
        table id
        (list_size (int_range 0 4) (pair gen_name lit));
      map3
        (fun table id assignments -> Ast.Update { table; id; assignments })
        table id
        (list_size (int_range 1 4) assignment);
      map2 (fun table id -> Ast.Delete { table; id }) table id;
      return Ast.Begin;
      return Ast.Commit;
    ]

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"pp/parse round-trip" ~count:300 (QCheck.make gen_statement)
    (fun stmt ->
      let printed = Format.asprintf "%a" Ast.pp_statement stmt in
      match Parser.parse_statement printed with
      | Ok stmt' -> stmt = stmt'
      | Error _ -> false)

(* --- execution ---------------------------------------------------------- *)

let setup () =
  let engine, cluster = make_cluster ~items:5 () in
  let session = Session.create (Cluster.coordinator cluster ~dc:0 ~rank:0) in
  (engine, cluster, session)

let exec engine session ?serializable src =
  let result = ref None in
  Exec.run_string ?serializable session ~txid:(txid ()) src (fun r -> result := Some r);
  Engine.run ~until:(Engine.now engine +. 60_000.0) engine;
  match !result with
  | Some (Ok r) -> r
  | Some (Error e) -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | None -> Alcotest.fail "script never finished"

let committed (r : Exec.exec_result) =
  match r.Exec.outcome with Txn.Committed -> true | Txn.Aborted _ -> false

let test_exec_select () =
  let engine, _, session = setup () in
  let r = exec engine session "SELECT * FROM item WHERE id = '0'" in
  Alcotest.(check bool) "committed" true (committed r);
  match r.Exec.rows with
  | [ { value = Some v; version; _ } ] ->
    Alcotest.(check int) "stock" 100 (Value.get_int v "stock");
    Alcotest.(check int) "version" 1 version
  | _ -> Alcotest.fail "expected one row"

let test_exec_autocommit_update () =
  let engine, cluster, session = setup () in
  let r = exec engine session "UPDATE item SET stock = stock - 25 WHERE id = '1'" in
  Alcotest.(check bool) "committed" true (committed r);
  Alcotest.(check int) "applied everywhere" 75 (stock_at cluster ~dc:3 1)

let test_exec_txn_atomic () =
  let engine, cluster, session = setup () in
  let r =
    exec engine session
      "BEGIN; UPDATE item SET stock = stock - 1 WHERE id = '0'; UPDATE item SET stock = \
       stock - 2 WHERE id = '1'; INSERT INTO order (id, item) VALUES ('o1', 0); COMMIT"
  in
  Alcotest.(check bool) "committed" true (committed r);
  Alcotest.(check int) "item0" 99 (stock_at cluster ~dc:0 0);
  Alcotest.(check int) "item1" 98 (stock_at cluster ~dc:4 1);
  Alcotest.(check bool) "order inserted" true
    (Cluster.peek cluster ~dc:2 (Key.make ~table:"order" ~id:"o1") <> None)

let test_exec_constraint_abort () =
  let engine, cluster, session = setup () in
  let r = exec engine session "UPDATE item SET stock = stock - 500 WHERE id = '0'" in
  Alcotest.(check bool) "aborted" false (committed r);
  Alcotest.(check int) "unchanged" 100 (stock_at cluster ~dc:0 0)

let test_exec_absolute_update_rmw () =
  let engine, cluster, session = setup () in
  let r = exec engine session "UPDATE item SET price = 42, stock = stock - 1 WHERE id = '2'" in
  Alcotest.(check bool) "committed" true (committed r);
  match Cluster.peek cluster ~dc:1 (item 2) with
  | Some (v, _) ->
    Alcotest.(check int) "price set" 42 (Value.get_int v "price");
    Alcotest.(check int) "stock decremented" 99 (Value.get_int v "stock")
  | None -> Alcotest.fail "row missing"

let test_exec_insert_select_delete () =
  let engine, _, session = setup () in
  let r1 = exec engine session "INSERT INTO order (id, total) VALUES ('z9', 7)" in
  Alcotest.(check bool) "insert" true (committed r1);
  let r2 = exec engine session "SELECT * FROM order WHERE id = 'z9'" in
  (match r2.Exec.rows with
  | [ { value = Some v; _ } ] -> Alcotest.(check int) "total" 7 (Value.get_int v "total")
  | _ -> Alcotest.fail "row expected");
  let r3 = exec engine session "DELETE FROM order WHERE id = 'z9'" in
  Alcotest.(check bool) "delete" true (committed r3);
  let r4 = exec engine session "SELECT * FROM order WHERE id = 'z9'" in
  match r4.Exec.rows with
  | [ { value = None; _ } ] -> ()
  | _ -> Alcotest.fail "row should be gone"

let test_exec_duplicate_insert_aborts () =
  let engine, _, session = setup () in
  ignore (exec engine session "INSERT INTO order (id, total) VALUES ('dup', 1)");
  let r = exec engine session "INSERT INTO order (id, total) VALUES ('dup', 2)" in
  Alcotest.(check bool) "duplicate aborted" false (committed r)

let test_exec_serializable_script () =
  (* Read item0, then write item1 — with ~serializable the read is
     certified; a concurrent change to item0 between the read and the
     commit aborts the script. *)
  let engine, cluster, session = setup () in
  let other = Cluster.coordinator cluster ~dc:4 ~rank:0 in
  let result = ref None in
  Exec.run_string ~serializable:true session ~txid:"ser"
    "BEGIN; SELECT * FROM item WHERE id = '0'; UPDATE item SET price = 5 WHERE id = '1'; COMMIT"
    (fun r -> result := Some r);
  (* While the script's reads are in flight, another client overwrites
     item0 — schedule it to land between the read and the commit. *)
  ignore
    (Engine.schedule engine ~after:5.0 (fun () ->
         Mdcc_core.Coordinator.submit other
           (Txn.make ~id:"intruder"
              ~updates:[ (item 0, Update.Physical { vread = 1; value = item_row 1 }) ])
           (fun _ -> ())));
  Engine.run ~until:60_000.0 engine;
  match !result with
  | Some (Ok r) ->
    (* Either the guard caught the intruder (abort) or the script won the
       race and the intruder aborted — serializability allows both, but
       they cannot both commit (checked via final state). *)
    let intruder_won = stock_at cluster ~dc:0 0 = 1 in
    let script_committed = committed r in
    Alcotest.(check bool) "not both" true (not (intruder_won && script_committed))
  | Some (Error e) -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | None -> Alcotest.fail "script never finished"

let test_exec_select_all () =
  let engine, _, session = setup () in
  (* item 2 becomes the best seller. *)
  let setup_r = exec engine session "UPDATE item SET stock = 500 WHERE id = '2'" in
  Alcotest.(check bool) "setup committed" true (committed setup_r);
  let r = exec engine session "SELECT * FROM item ORDER BY stock LIMIT 2" in
  Alcotest.(check bool) "committed" true (committed r);
  (match r.Exec.rows with
  | { key; value = Some v; _ } :: _ :: [] ->
    Alcotest.(check string) "top row" "2" key.Key.id;
    Alcotest.(check int) "stock" 500 (Value.get_int v "stock")
  | _ -> Alcotest.fail "expected two rows");
  let all = exec engine session "SELECT * FROM item" in
  Alcotest.(check int) "default scan returns all 5" 5 (List.length all.Exec.rows)

let test_exec_merged_deltas () =
  let engine, cluster, session = setup () in
  let r =
    exec engine session
      "BEGIN; UPDATE item SET stock = stock - 1 WHERE id = '3'; UPDATE item SET stock = \
       stock - 2 WHERE id = '3'; COMMIT"
  in
  Alcotest.(check bool) "committed" true (committed r);
  Alcotest.(check int) "deltas merged" 97 (stock_at cluster ~dc:0 3)

let suite =
  [
    Alcotest.test_case "parse SELECT" `Quick test_parse_select;
    Alcotest.test_case "parse INSERT" `Quick test_parse_insert;
    Alcotest.test_case "parse UPDATE (delta)" `Quick test_parse_update_delta;
    Alcotest.test_case "parse UPDATE (absolute)" `Quick test_parse_update_absolute;
    Alcotest.test_case "parse DELETE/BEGIN/COMMIT" `Quick test_parse_delete_begin_commit;
    Alcotest.test_case "parse script" `Quick test_parse_script;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse negative literal" `Quick test_parse_negative_literal;
    QCheck_alcotest.to_alcotest prop_parser_roundtrip;
    Alcotest.test_case "exec SELECT" `Quick test_exec_select;
    Alcotest.test_case "exec auto-commit update" `Quick test_exec_autocommit_update;
    Alcotest.test_case "exec atomic multi-statement txn" `Quick test_exec_txn_atomic;
    Alcotest.test_case "exec constraint abort" `Quick test_exec_constraint_abort;
    Alcotest.test_case "exec absolute update (RMW)" `Quick test_exec_absolute_update_rmw;
    Alcotest.test_case "exec insert/select/delete" `Quick test_exec_insert_select_delete;
    Alcotest.test_case "exec duplicate insert aborts" `Quick test_exec_duplicate_insert_aborts;
    Alcotest.test_case "exec serializable script" `Quick test_exec_serializable_script;
    Alcotest.test_case "exec merged deltas" `Quick test_exec_merged_deltas;
    Alcotest.test_case "exec SELECT-all scan" `Quick test_exec_select_all;
  ]
