(* Tests of the comparison protocols: quorum writes, 2PC, Megastore*. *)

open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Fabric = Mdcc_protocols.Fabric
module Qw = Mdcc_protocols.Quorum_writes
module Tpc = Mdcc_protocols.Two_phase_commit
module Ms = Mdcc_protocols.Megastore
module Harness = Mdcc_protocols.Harness
module Net = Mdcc_sim.Network

let item i = Key.make ~table:"item" ~id:(string_of_int i)

let schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
    ]

let rows n stock =
  List.init n (fun i -> (item i, Value.of_list [ ("stock", Value.Int stock) ]))

let submit_sync (h : Harness.t) ~dc txn =
  let result = ref None in
  h.Harness.submit ~dc txn (fun o -> result := Some o);
  Engine.run ~until:(Engine.now h.Harness.engine +. 60_000.0) h.Harness.engine;
  match !result with Some o -> o | None -> Alcotest.fail "undecided"

let is_committed = function Txn.Committed -> true | Txn.Aborted _ -> false

(* --- quorum writes ----------------------------------------------------- *)

let make_qw ?(w = 3) () =
  let engine = Engine.create ~seed:5 in
  let fabric = Fabric.create ~engine ~schema () in
  let qw = Qw.create ~fabric ~w in
  let h = Qw.harness qw in
  h.Harness.load (rows 5 100);
  h

let test_qw_commits_and_applies () =
  let h = make_qw () in
  let o =
    submit_sync h ~dc:0
      (Txn.make ~id:"q1" ~updates:[ (item 0, Update.Delta [ ("stock", -10) ]) ])
  in
  Alcotest.(check bool) "committed" true (is_committed o);
  (* QW sends to all 5; after quiescence every replica applied it. *)
  for dc = 0 to 4 do
    match h.Harness.peek ~dc (item 0) with
    | Some (v, _) -> Alcotest.(check int) "applied" 90 (Value.get_int v "stock")
    | None -> Alcotest.fail "row"
  done

let test_qw_no_isolation_lost_update () =
  (* QW provides no isolation: two concurrent read-modify-writes both
     "commit" and one overwrites the other (the lost-update anomaly MDCC
     prevents). *)
  let h = make_qw () in
  let e = h.Harness.engine in
  let r1 = ref None and r2 = ref None in
  h.Harness.submit ~dc:0
    (Txn.make ~id:"a"
       ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 42) ] }) ])
    (fun o -> r1 := Some o);
  h.Harness.submit ~dc:1
    (Txn.make ~id:"b"
       ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 77) ] }) ])
    (fun o -> r2 := Some o);
  Engine.run e;
  Alcotest.(check bool) "both committed (no conflict detection)" true
    ((match !r1 with Some o -> is_committed o | None -> false)
    && match !r2 with Some o -> is_committed o | None -> false)

let test_qw_no_constraints () =
  (* QW applies blindly: stock goes negative. *)
  let h = make_qw () in
  let o =
    submit_sync h ~dc:0
      (Txn.make ~id:"q2" ~updates:[ (item 0, Update.Delta [ ("stock", -500) ]) ])
  in
  Alcotest.(check bool) "committed anyway" true (is_committed o);
  match h.Harness.peek ~dc:0 (item 0) with
  | Some (v, _) -> Alcotest.(check int) "negative stock" (-400) (Value.get_int v "stock")
  | None -> Alcotest.fail "row"

let test_qw4_slower_than_qw3 () =
  (* QW-4 must wait for the 4th-closest data center. *)
  let time_one w =
    let h = make_qw ~w () in
    let e = h.Harness.engine in
    let t0 = Engine.now e in
    let done_at = ref 0.0 in
    h.Harness.submit ~dc:0
      (Txn.make ~id:"t" ~updates:[ (item 0, Update.Delta [ ("stock", -1) ]) ])
      (fun _ -> done_at := Engine.now e);
    Engine.run e;
    !done_at -. t0
  in
  Alcotest.(check bool) "latency(QW-4) > latency(QW-3)" true (time_one 4 > time_one 3)

(* --- 2PC ---------------------------------------------------------------- *)

let make_2pc () =
  let engine = Engine.create ~seed:6 in
  let fabric = Fabric.create ~engine ~schema () in
  let tpc = Tpc.create ~fabric in
  let h = Tpc.harness tpc in
  h.Harness.load (rows 5 100);
  (tpc, h)

let test_2pc_commit () =
  let tpc, h = make_2pc () in
  let o =
    submit_sync h ~dc:0
      (Txn.make ~id:"t1"
         ~updates:
           [
             (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 9) ] });
             (item 1, Update.Delta [ ("stock", -1) ]);
           ])
  in
  Alcotest.(check bool) "committed" true (is_committed o);
  Alcotest.(check int) "locks released" 0 (Tpc.locks_held tpc);
  for dc = 0 to 4 do
    match h.Harness.peek ~dc (item 0) with
    | Some (v, _) -> Alcotest.(check int) "applied everywhere" 9 (Value.get_int v "stock")
    | None -> Alcotest.fail "row"
  done

let test_2pc_conflict_aborts () =
  let tpc, h = make_2pc () in
  let o1 =
    submit_sync h ~dc:0
      (Txn.make ~id:"t1"
         ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 9) ] }) ])
  in
  Alcotest.(check bool) "first commits" true (is_committed o1);
  let o2 =
    submit_sync h ~dc:1
      (Txn.make ~id:"t2"
         ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 8) ] }) ])
  in
  Alcotest.(check bool) "stale vread aborts" false (is_committed o2);
  Alcotest.(check int) "locks released after abort" 0 (Tpc.locks_held tpc)

let test_2pc_constraint_aborts () =
  let _, h = make_2pc () in
  let o =
    submit_sync h ~dc:0
      (Txn.make ~id:"t1" ~updates:[ (item 0, Update.Delta [ ("stock", -500) ]) ])
  in
  Alcotest.(check bool) "constraint enforced" false (is_committed o)

let suite_2pc_blocking () =
  (* The classic 2PC flaw: the coordinator dies between prepare and
     decision; prepared replicas stay locked forever (the blocking MDCC's
     options avoid).  We fail the coordinator's whole DC after the prepares
     went out. *)
  let tpc, h = make_2pc () in
  let e = h.Harness.engine in
  let decided = ref false in
  h.Harness.submit ~dc:0
    (Txn.make ~id:"t1"
       ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 9) ] }) ])
    (fun _ -> decided := true);
  ignore (Engine.schedule e ~after:120.0 (fun () -> h.Harness.fail_dc 0));
  Engine.run ~until:60_000.0 e;
  Alcotest.(check bool) "never decided" false !decided;
  Alcotest.(check bool) "locks still held (2PC blocks)" true (Tpc.locks_held tpc > 0)

(* --- Megastore* --------------------------------------------------------- *)

let make_ms () =
  let engine = Engine.create ~seed:7 in
  let fabric = Fabric.create ~engine ~schema () in
  let ms = Ms.create ~fabric () in
  let h = Ms.harness ms in
  h.Harness.load (rows 10 100);
  (ms, h)

let test_ms_commit_and_replication () =
  let ms, h = make_ms () in
  let o =
    submit_sync h ~dc:0
      (Txn.make ~id:"m1"
         ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 3) ] }) ])
  in
  Alcotest.(check bool) "committed" true (is_committed o);
  Alcotest.(check int) "one log position" 1 (Ms.log_length ms);
  for dc = 0 to 4 do
    match h.Harness.peek ~dc (item 0) with
    | Some (v, _) -> Alcotest.(check int) "replicated" 3 (Value.get_int v "stock")
    | None -> Alcotest.fail "row"
  done

let test_ms_conflict_aborts_without_position () =
  let ms, h = make_ms () in
  let o1 =
    submit_sync h ~dc:0
      (Txn.make ~id:"m1"
         ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 3) ] }) ])
  in
  let o2 =
    submit_sync h ~dc:1
      (Txn.make ~id:"m2"
         ~updates:[ (item 0, Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int 4) ] }) ])
  in
  Alcotest.(check bool) "first commits" true (is_committed o1);
  Alcotest.(check bool) "conflicting aborts" false (is_committed o2);
  Alcotest.(check int) "abort consumed no log position" 1 (Ms.log_length ms)

let test_ms_serialization_queueing () =
  (* Transactions submitted together are serialized through the log: later
     ones wait for earlier positions — the queueing that dominates the
     paper's Figure 3. *)
  let ms, h = make_ms () in
  let e = h.Harness.engine in
  let latencies = ref [] in
  for i = 0 to 9 do
    let t0 = 1.0 in
    ignore t0;
    let start = ref 0.0 in
    ignore
      (Engine.schedule e ~after:0.5 (fun () ->
           start := Engine.now e;
           h.Harness.submit ~dc:0
             (Txn.make
                ~id:(Printf.sprintf "m%d" i)
                ~updates:
                  [
                    ( item i,
                      Update.Physical { vread = 1; value = Value.of_list [ ("stock", Value.Int i) ] }
                    );
                  ])
             (fun _ -> latencies := (Engine.now e -. !start) :: !latencies)))
  done;
  Engine.run ~until:120_000.0 e;
  Alcotest.(check int) "all decided" 10 (List.length !latencies);
  Alcotest.(check int) "10 log positions" 10 (Ms.log_length ms);
  let sorted = List.sort Float.compare !latencies in
  let fastest = List.hd sorted and slowest = List.nth sorted 9 in
  Alcotest.(check bool) "strong queueing (10x spread)" true (slowest > 5.0 *. fastest)

let suite =
  [
    Alcotest.test_case "QW commits and applies everywhere" `Quick test_qw_commits_and_applies;
    Alcotest.test_case "QW has no isolation (lost update)" `Quick test_qw_no_isolation_lost_update;
    Alcotest.test_case "QW has no constraints" `Quick test_qw_no_constraints;
    Alcotest.test_case "QW-4 slower than QW-3" `Quick test_qw4_slower_than_qw3;
    Alcotest.test_case "2PC commit" `Quick test_2pc_commit;
    Alcotest.test_case "2PC conflict aborts" `Quick test_2pc_conflict_aborts;
    Alcotest.test_case "2PC enforces constraints" `Quick test_2pc_constraint_aborts;
    Alcotest.test_case "2PC blocks on coordinator failure" `Quick suite_2pc_blocking;
    Alcotest.test_case "Megastore* commit & replication" `Quick test_ms_commit_and_replication;
    Alcotest.test_case "Megastore* conflict aborts" `Quick test_ms_conflict_aborts_without_position;
    Alcotest.test_case "Megastore* serializes (queueing)" `Quick test_ms_serialization_queueing;
  ]
