(* Randomized safety tests of the standalone Classic/Fast Paxos instance:
   agreement (all learners report one value), validity (the value was
   proposed), and fast-value anchoring (a classic recovery cannot overwrite
   a possibly-chosen fast value). *)

module Consensus = Mdcc_paxos.Consensus
module Engine = Mdcc_sim.Engine
module Net = Mdcc_sim.Network
module Topology = Mdcc_sim.Topology
module Rng = Mdcc_util.Rng

let make ?(seed = 1) ?(drop = 0.0) () =
  let engine = Engine.create ~seed in
  (* 5 acceptors (one per DC) + 5 proposer nodes. *)
  let topo = Topology.add_nodes (Topology.ec2_five ()) ~per_dc:1 in
  let net = Net.create engine topo ~drop_probability:drop () in
  let acceptors = [ 0; 1; 2; 3; 4 ] in
  let c = Consensus.create ~net ~acceptors () in
  (engine, c)

let test_fast_uncontended () =
  let engine, c = make () in
  let got = ref None in
  Consensus.propose_fast c ~from:5 "v1" (fun v -> got := Some v);
  Engine.run ~until:10_000.0 engine;
  Alcotest.(check (option string)) "chosen" (Some "v1") !got;
  Alcotest.(check (option string)) "observable" (Some "v1") (Consensus.decided c)

let test_classic_uncontended () =
  let engine, c = make () in
  let got = ref None in
  Consensus.propose_classic c ~from:7 "v2" (fun v -> got := Some v);
  Engine.run ~until:10_000.0 engine;
  Alcotest.(check (option string)) "chosen" (Some "v2") !got

let test_fast_value_anchored () =
  (* A fast-chosen value must survive any later classic ballot. *)
  let engine, c = make () in
  let first = ref None in
  Consensus.propose_fast c ~from:5 "fastv" (fun v -> first := Some v);
  Engine.run ~until:10_000.0 engine;
  Alcotest.(check (option string)) "fast chosen" (Some "fastv") !first;
  let second = ref None in
  Consensus.propose_classic c ~from:8 "usurper" (fun v -> second := Some v);
  Engine.run ~until:20_000.0 engine;
  Alcotest.(check (option string)) "classic learns the fast value" (Some "fastv") !second

let agreement_run ~seed ~drop ~proposers ~fast =
  let engine, c = make ~seed ~drop () in
  let decided = ref [] in
  List.iteri
    (fun i from ->
      let value = Printf.sprintf "v%d" i in
      let propose () =
        if fast then Consensus.propose_fast c ~from value (fun v -> decided := v :: !decided)
        else Consensus.propose_classic c ~from value (fun v -> decided := v :: !decided)
      in
      ignore (Engine.schedule engine ~after:(Float.of_int i *. 13.7) propose))
    proposers;
  Engine.run ~until:120_000.0 engine;
  (List.length !decided, List.sort_uniq String.compare !decided, List.length proposers)

let check_agreement (count, distinct, expected) =
  Alcotest.(check int) "every proposer learned" expected count;
  Alcotest.(check bool)
    (Printf.sprintf "agreement (saw %d values)" (List.length distinct))
    true
    (List.length distinct = 1);
  List.iter
    (fun v -> Alcotest.(check bool) "validity" true (String.length v >= 2 && v.[0] = 'v'))
    distinct

let test_agreement_fast_contended () =
  List.iter
    (fun seed -> check_agreement (agreement_run ~seed ~drop:0.0 ~proposers:[ 5; 6; 7; 8; 9 ] ~fast:true))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_agreement_classic_contended () =
  List.iter
    (fun seed ->
      check_agreement (agreement_run ~seed ~drop:0.0 ~proposers:[ 5; 6; 7 ] ~fast:false))
    [ 10; 11; 12; 13 ]

let test_agreement_with_message_loss () =
  List.iter
    (fun seed ->
      check_agreement (agreement_run ~seed ~drop:0.05 ~proposers:[ 5; 6; 7; 8 ] ~fast:true))
    [ 21; 22; 23 ]

let test_agreement_mixed_paths () =
  (* Fast and classic proposers racing on the same instance. *)
  List.iter
    (fun seed ->
      let engine, c = make ~seed () in
      let decided = ref [] in
      Consensus.propose_fast c ~from:5 "vf" (fun v -> decided := v :: !decided);
      ignore
        (Engine.schedule engine ~after:30.0 (fun () ->
             Consensus.propose_classic c ~from:6 "vc" (fun v -> decided := v :: !decided)));
      Engine.run ~until:60_000.0 engine;
      Alcotest.(check int) "both learned" 2 (List.length !decided);
      Alcotest.(check int) "one value" 1 (List.length (List.sort_uniq String.compare !decided)))
    [ 31; 32; 33; 34; 35 ]

let suite =
  [
    Alcotest.test_case "fast uncontended" `Quick test_fast_uncontended;
    Alcotest.test_case "classic uncontended" `Quick test_classic_uncontended;
    Alcotest.test_case "fast value anchored vs classic" `Quick test_fast_value_anchored;
    Alcotest.test_case "agreement: contended fast" `Quick test_agreement_fast_contended;
    Alcotest.test_case "agreement: contended classic" `Quick test_agreement_classic_contended;
    Alcotest.test_case "agreement: 5% message loss" `Quick test_agreement_with_message_loss;
    Alcotest.test_case "agreement: mixed fast/classic" `Quick test_agreement_mixed_paths;
  ]
