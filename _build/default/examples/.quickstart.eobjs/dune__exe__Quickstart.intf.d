examples/quickstart.mli:
