examples/quickstart.ml: Array Format Key Mdcc_core Mdcc_sim Mdcc_storage Printf Schema Txn Update Value
