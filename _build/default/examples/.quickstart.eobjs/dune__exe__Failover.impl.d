examples/failover.ml: Array Float Key List Mdcc_core Mdcc_sim Mdcc_storage Mdcc_util Printf Schema Txn Update Value
