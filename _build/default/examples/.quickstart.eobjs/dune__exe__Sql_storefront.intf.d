examples/sql_storefront.mli:
