examples/sql_storefront.ml: Format Key List Mdcc_core Mdcc_sim Mdcc_sql Mdcc_storage Printf Schema Txn Value
