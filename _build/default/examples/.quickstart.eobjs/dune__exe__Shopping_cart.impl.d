examples/shopping_cart.ml: Float Key Mdcc_core Mdcc_sim Mdcc_storage Mdcc_util Printf Schema Txn Update Value
