examples/failover.mli:
