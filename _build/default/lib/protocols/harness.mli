(** A protocol-independent handle on a running replicated store.

    The evaluation compares MDCC against quorum writes, two-phase commit and
    Megastore*; the workload generators and the experiment runner only see
    this record, so every protocol is driven by exactly the same client
    code. *)

open Mdcc_storage

type t = {
  name : string;
  engine : Mdcc_sim.Engine.t;
  num_dcs : int;
  submit : dc:int -> Txn.t -> (Txn.outcome -> unit) -> unit;
      (** run the commit protocol from an app-server in [dc] *)
  read_local : dc:int -> Key.t -> ((Value.t * int) option -> unit) -> unit;
      (** read-committed read against the local replica *)
  peek : dc:int -> Key.t -> (Value.t * int) option;
      (** direct committed-state inspection (tests / invariant checks) *)
  load : (Key.t * Value.t) list -> unit;  (** pre-populate all replicas *)
  fail_dc : int -> unit;
  recover_dc : int -> unit;
}

val of_mdcc : Mdcc_core.Cluster.t -> name:string -> t
(** Wrap an MDCC cluster (any mode) in the common interface.  [submit]
    round-robins over the app-servers of the data center. *)
