open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Net = Mdcc_sim.Network
module Topology = Mdcc_sim.Topology
module Messages = Mdcc_core.Messages

type read_state = { r_cb : (Value.t * int) option -> unit }

type t = {
  engine : Engine.t;
  net : Net.t;
  topo : Topology.t;
  schema : Schema.t;
  dcs : int;
  partitions : int;
  app_per_dc : int;
  stores : Store.t array;
  reads : (int, read_state) Hashtbl.t;
  mutable next_rid : int;
  next_app : int array;
}

let create ~engine ?topology ?(partitions = 1) ?(app_servers_per_dc = 1) ?(jitter_sigma = 0.05)
    ~schema () =
  let storage_topo =
    match topology with
    | Some topo -> topo
    | None -> Topology.ec2_five ~nodes_per_dc:partitions ()
  in
  let dcs = Topology.num_dcs storage_topo in
  let topo = Topology.add_nodes storage_topo ~per_dc:app_servers_per_dc in
  let net = Net.create engine topo ~jitter_sigma () in
  {
    engine;
    net;
    topo;
    schema;
    dcs;
    partitions;
    app_per_dc = app_servers_per_dc;
    stores = Array.init (dcs * partitions) (fun _ -> Store.create schema);
    reads = Hashtbl.create 64;
    next_rid = 0;
    next_app = Array.make dcs 0;
  }

let engine t = t.engine

let network t = t.net

let num_dcs t = t.dcs

let schema t = t.schema

let store_of t node = t.stores.(node)

let storage_node_ids t = List.init (Array.length t.stores) Fun.id

let partition t key = Key.hash key mod t.partitions

let replicas t key =
  let p = partition t key in
  List.init t.dcs (fun dc -> (dc * t.partitions) + p)

let app_base t = t.dcs * t.partitions

let app_node t ~dc =
  let rank = t.next_app.(dc) mod t.app_per_dc in
  t.next_app.(dc) <- t.next_app.(dc) + 1;
  app_base t + (dc * t.app_per_dc) + rank

let send t ~src ~dst payload = Net.send t.net ~src ~dst payload

let register_storage t node handler =
  Net.register t.net node (fun ~src payload ->
      match payload with
      | Messages.Read_request { rid; key } ->
        let row = Store.ensure t.stores.(node) key in
        send t ~src:node ~dst:src
          (Messages.Read_reply
             { rid; key; value = row.Store.value; version = row.Store.version; exists = row.Store.exists })
      | _ -> handler ~src payload)

let register_app t node handler =
  Net.register t.net node (fun ~src payload ->
      match payload with
      | Messages.Read_reply { rid; value; version; exists; _ } -> (
        match Hashtbl.find_opt t.reads rid with
        | Some rs ->
          Hashtbl.remove t.reads rid;
          rs.r_cb (if exists then Some (value, version) else None)
        | None -> ())
      | _ -> handler ~src payload)

let register_all_apps t handler =
  for dc = 0 to t.dcs - 1 do
    for rank = 0 to t.app_per_dc - 1 do
      let node = app_base t + (dc * t.app_per_dc) + rank in
      register_app t node (fun ~src payload -> handler ~node ~src payload)
    done
  done

let read_local t ~dc key cb =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  Hashtbl.replace t.reads rid { r_cb = cb };
  let local = (dc * t.partitions) + partition t key in
  let app = app_base t + (dc * t.app_per_dc) in
  send t ~src:app ~dst:local (Messages.Read_request { rid; key })

let load t rows =
  List.iter
    (fun (key, value) ->
      List.iter
        (fun node ->
          let row = Store.ensure t.stores.(node) key in
          row.Store.value <- value;
          row.Store.version <- 1;
          row.Store.exists <- true)
        (replicas t key))
    rows

let peek t ~dc key =
  let node = (dc * t.partitions) + partition t key in
  Store.read t.stores.(node) key

let fail_dc t dc = Net.fail_dc t.net dc

let recover_dc t dc = Net.recover_dc t.net dc
