(** The two-phase-commit baseline over fully replicated records.

    The paper's strongest conventional competitor (§5.2): the app-server
    prepares {e all} replicas of every record in the write-set (exclusive
    record locks, version validation, escrow constraint checks), commits
    only if every single replica voted yes, and acknowledges the client
    after the second round completes.  Consequently it costs two wide-area
    round trips, must wait for the {e slowest} of all five data centers, and
    is not resilient to a single node failure — a prepared record stays
    locked until its coordinator decides (the blocking behaviour MDCC is
    designed to avoid). *)

open Mdcc_storage

type t

val create : fabric:Fabric.t -> t

val submit : t -> dc:int -> Txn.t -> (Txn.outcome -> unit) -> unit

val locks_held : t -> int
(** Total locks currently held across all storage nodes — used by tests to
    demonstrate 2PC's blocking behaviour on coordinator failure. *)

val harness : t -> Harness.t
