(** Shared deployment scaffolding for the baseline protocols.

    Quorum writes, 2PC and Megastore* run on the same simulated topology as
    MDCC: [partitions] storage nodes per data center plus app-server nodes.
    This module owns the stores and node-id layout, and provides the local
    read path (reads are identical across every protocol in the paper: they
    go to the replica in the client's data center), so each baseline module
    only implements its commit traffic. *)

open Mdcc_storage

type t

val create :
  engine:Mdcc_sim.Engine.t ->
  ?topology:Mdcc_sim.Topology.t ->
  ?partitions:int ->
  ?app_servers_per_dc:int ->
  ?jitter_sigma:float ->
  schema:Schema.t ->
  unit ->
  t

val engine : t -> Mdcc_sim.Engine.t
val network : t -> Mdcc_sim.Network.t
val num_dcs : t -> int
val schema : t -> Schema.t

val store_of : t -> int -> Store.t
(** Store of a storage node (raises for app-server ids). *)

val storage_node_ids : t -> int list

val replicas : t -> Key.t -> int list

val app_node : t -> dc:int -> int
(** Round-robins over the data center's app servers. *)

val register_storage : t -> int -> (src:int -> Mdcc_sim.Network.payload -> unit) -> unit
(** Install a storage node handler; [Read_request]s are answered from the
    node's store before delegating to the protocol handler. *)

val register_app : t -> int -> (src:int -> Mdcc_sim.Network.payload -> unit) -> unit
(** Install an app-server handler; [Read_reply]s for reads issued through
    {!read_local} are consumed before delegating. *)

val register_all_apps : t -> (node:int -> src:int -> Mdcc_sim.Network.payload -> unit) -> unit

val read_local : t -> dc:int -> Key.t -> ((Value.t * int) option -> unit) -> unit

val send : t -> src:int -> dst:int -> Mdcc_sim.Network.payload -> unit

val load : t -> (Key.t * Value.t) list -> unit

val peek : t -> dc:int -> Key.t -> (Value.t * int) option

val fail_dc : t -> int -> unit
val recover_dc : t -> int -> unit
