lib/protocols/megastore.ml: Array Fabric Harness Hashtbl Key List Mdcc_core Mdcc_sim Mdcc_storage Queue Schema Store Txn Update
