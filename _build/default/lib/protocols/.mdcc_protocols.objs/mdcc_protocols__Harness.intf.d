lib/protocols/harness.mli: Key Mdcc_core Mdcc_sim Mdcc_storage Txn Value
