lib/protocols/two_phase_commit.ml: Array Fabric Harness Hashtbl Key List Mdcc_core Mdcc_sim Mdcc_storage Schema Store String Txn Update
