lib/protocols/quorum_writes.ml: Fabric Harness Hashtbl Key List Mdcc_sim Mdcc_storage Printf Store Txn Update Value
