lib/protocols/megastore.mli: Fabric Harness Mdcc_storage Txn
