lib/protocols/quorum_writes.mli: Fabric Harness Mdcc_storage Txn
