lib/protocols/two_phase_commit.mli: Fabric Harness Mdcc_storage Txn
