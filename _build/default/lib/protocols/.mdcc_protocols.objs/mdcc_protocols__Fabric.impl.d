lib/protocols/fabric.ml: Array Fun Hashtbl Key List Mdcc_core Mdcc_sim Mdcc_storage Schema Store Value
