lib/protocols/fabric.mli: Key Mdcc_sim Mdcc_storage Schema Store Value
