lib/protocols/harness.ml: Array Key List Mdcc_core Mdcc_sim Mdcc_storage Txn Value
