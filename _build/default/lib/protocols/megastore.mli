(** Megastore* — the paper's simulation of Megastore's replication protocol.

    Megastore synchronously replicates a commit {e log} per entity group
    with Paxos, agreeing on one log position per transaction; only one write
    transaction can be in flight per entity group at a time.  As in the
    paper (§5.2) we: place all data in a single entity group; add the
    Paxos-CP improvement of letting non-conflicting transactions commit in
    {e subsequent} log positions instead of aborting; keep a stable master
    (Multi-Paxos, Phase 1 skipped); and play in Megastore's favour by
    putting the master in US-West, where the evaluation also places its
    clients.

    The result is a serial log: each position costs a majority round trip
    from the master, so under moderate load transactions queue — the source
    of the paper's 17.8 s median latency. *)

open Mdcc_storage

type t

val create : fabric:Fabric.t -> ?master_dc:int -> unit -> t
(** [fabric] must have one partition (a single entity group).
    [master_dc] defaults to US-West. *)

val submit : t -> dc:int -> Txn.t -> (Txn.outcome -> unit) -> unit

val log_length : t -> int
(** Number of log positions decided so far. *)

val queue_length : t -> int
(** Transactions waiting for the log at the master (diagnostics). *)

val harness : t -> Harness.t
