(** The quorum-writes baseline (QW-k): eventually consistent writes.

    "The standard for most eventually consistent systems" (§5.2): every
    update is sent to all replicas, each replica applies it immediately
    (last-writer-wins, no version checks, no constraints, no isolation or
    atomicity), and the client reports success after [w] acknowledgements
    per record.  The paper runs QW-3 and QW-4 against a replication factor
    of 5, with read quorum 1 (local reads). *)

open Mdcc_storage

type t

val create : fabric:Fabric.t -> w:int -> t
(** Register the protocol's handlers on the fabric.  [w] is the write
    quorum size (3 or 4 in the paper). *)

val submit : t -> dc:int -> Txn.t -> (Txn.outcome -> unit) -> unit
(** Always reports [Committed] (the protocol cannot abort); latency is the
    time until every record collected [w] acks. *)

val harness : t -> Harness.t
