module Smap = Map.Make (String)

type scalar = Int of int | Str of string

type t = scalar Smap.t

let empty = Smap.empty

let of_list bindings = List.fold_left (fun m (k, v) -> Smap.add k v m) empty bindings

let to_list t = Smap.bindings t

let get t attr = Smap.find_opt attr t

let get_int t attr =
  match Smap.find_opt attr t with
  | None -> 0
  | Some (Int i) -> i
  | Some (Str _) -> invalid_arg ("Value.get_int: attribute " ^ attr ^ " is a string")

let set t attr v = Smap.add attr v t

let add_delta t attr d = Smap.add attr (Int (get_int t attr + d)) t

let scalar_equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let equal = Smap.equal scalar_equal

let pp ppf t =
  let pp_scalar ppf = function
    | Int i -> Format.pp_print_int ppf i
    | Str s -> Format.fprintf ppf "%S" s
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k pp_scalar v))
    (to_list t)
