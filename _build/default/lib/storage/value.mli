(** Record values: a small attribute map.

    MDCC is a record manager; a record value is a set of named attributes.
    Integer attributes participate in commutative delta updates (e.g.
    [decrement (stock, 1)]) and in value constraints; strings are opaque. *)

type scalar = Int of int | Str of string

type t
(** Immutable attribute map. *)

val empty : t

val of_list : (string * scalar) list -> t
(** Build from bindings; later bindings win. *)

val to_list : t -> (string * scalar) list
(** Bindings in attribute-name order. *)

val get : t -> string -> scalar option

val get_int : t -> string -> int
(** Integer attribute, defaulting to 0 when absent (delta updates may touch
    attributes before any absolute write). Raises [Invalid_argument] if the
    attribute holds a string. *)

val set : t -> string -> scalar -> t

val add_delta : t -> string -> int -> t
(** [add_delta v attr d] adds [d] to the integer attribute [attr]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
