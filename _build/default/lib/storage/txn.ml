type id = string

type abort_reason = Conflict | Constraint_violation | Node_unreachable | Recovered_abort

type outcome = Committed | Aborted of abort_reason

type t = { id : id; updates : (Key.t * Update.t) list }

let make ~id ~updates =
  let keys = List.map fst updates in
  let distinct = Key.Set.of_list keys in
  if Key.Set.cardinal distinct <> List.length keys then
    invalid_arg "Txn.make: duplicate key in write-set";
  { id; updates }

let serializable ~id ~reads ~updates =
  let written = Key.Set.of_list (List.map fst updates) in
  let guards =
    List.filter_map
      (fun (key, vread) ->
        if Key.Set.mem key written then None
        else Some (key, Update.Read_guard { vread }))
      reads
  in
  make ~id ~updates:(updates @ guards)

let keys t = List.map fst t.updates

let is_read_only t = t.updates = []

let commutative_only t = List.for_all (fun (_, up) -> Update.is_commutative up) t.updates

let reason_to_string = function
  | Conflict -> "conflict"
  | Constraint_violation -> "constraint-violation"
  | Node_unreachable -> "node-unreachable"
  | Recovered_abort -> "recovered-abort"

let pp_outcome ppf = function
  | Committed -> Format.pp_print_string ppf "committed"
  | Aborted r -> Format.fprintf ppf "aborted(%s)" (reason_to_string r)

let pp ppf t =
  Format.fprintf ppf "txn %s {%a}" t.id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (k, up) -> Format.fprintf ppf "%a: %a" Key.pp k Update.pp up))
    t.updates
