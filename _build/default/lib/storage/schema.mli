(** Table schema: value constraints and default mastership.

    The paper's commutative path depends on {e value constraints} ("the stock
    must be at least 0", §3.4.2): a schema declares, per table, inclusive
    lower/upper bounds on integer attributes.  The schema also records the
    table's default master data center — used for inserts (the per-table
    insert master of §3.1.2) and as the fall-back master for collision
    resolution. *)

type bound = { attr : string; lower : int option; upper : int option }

type table = {
  name : string;
  bounds : bound list;
  master_dc : int;  (** default master data center for this table *)
}

type t

val create : table list -> t
(** Raises [Invalid_argument] on duplicate table names. *)

val table : t -> string -> table
(** Raises [Not_found] for an undeclared table — storage nodes refuse
    operations on unknown tables. *)

val tables : t -> table list

val bounds_of : t -> Key.t -> bound list
(** Constraints applying to a record (those of its table). *)

val master_dc : t -> Key.t -> int

val check_value : t -> Key.t -> Value.t -> bool
(** [check_value s k v] is [true] iff every constrained attribute of [v] is
    within its declared bounds.  Absent attributes count as 0. *)

val check_bound : bound -> int -> bool
(** Single-attribute check used by the demarcation logic. *)
