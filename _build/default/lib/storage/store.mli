(** The storage node's record store.

    One store per storage node, holding the {e committed} state of every
    record the node replicates: the current value, the version counter (one
    increment per executed update) and an existence flag (inserts/deletes).
    All protocol state (pending options, ballots) lives above this layer in
    the protocol's acceptor. *)

type row = {
  mutable value : Value.t;
  mutable version : int;
  mutable exists : bool;
}

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val find : t -> Key.t -> row option
(** The row if the key was ever touched (it may be a tombstone). *)

val ensure : t -> Key.t -> row
(** The row, created as [version 0, not exists] if never touched. *)

val read : t -> Key.t -> (Value.t * int) option
(** Committed value and version, or [None] if the record does not exist
    (never inserted, or deleted). *)

val version : t -> Key.t -> int
(** Current version (0 if never touched). *)

val validate : t -> Key.t -> Update.t -> bool
(** Would this update's version precondition hold against the committed
    state right now?  ([Insert] needs non-existence, [Physical]/[Delete]
    need a matching [vread], [Delta] needs existence.) *)

val apply : t -> Key.t -> Update.t -> unit
(** Execute an update against the committed state, bumping the version.
    The caller is responsible for having validated it; this is the
    "make the option visible" step. *)

val size : t -> int
(** Number of rows ever touched. *)

val iter : t -> (Key.t -> row -> unit) -> unit

val fold : t -> init:'a -> f:(Key.t -> row -> 'a -> 'a) -> 'a
