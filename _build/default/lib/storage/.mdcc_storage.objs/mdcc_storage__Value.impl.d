lib/storage/value.ml: Format Int List Map String
