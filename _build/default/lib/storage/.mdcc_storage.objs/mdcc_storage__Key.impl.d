lib/storage/key.ml: Format Hashtbl Map Set String
