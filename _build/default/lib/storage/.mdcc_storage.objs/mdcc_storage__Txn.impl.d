lib/storage/txn.ml: Format Key List Update
