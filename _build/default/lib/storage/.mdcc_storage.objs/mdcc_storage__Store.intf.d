lib/storage/store.mli: Key Schema Update Value
