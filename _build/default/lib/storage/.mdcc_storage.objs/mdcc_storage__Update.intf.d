lib/storage/update.mli: Format Value
