lib/storage/schema.mli: Key Value
