lib/storage/store.ml: Key List Schema Update Value
