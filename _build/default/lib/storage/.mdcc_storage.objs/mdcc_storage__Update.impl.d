lib/storage/update.ml: Format Value
