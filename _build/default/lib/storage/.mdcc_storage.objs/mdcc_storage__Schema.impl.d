lib/storage/schema.ml: Hashtbl Key List Value
