lib/storage/txn.mli: Format Key Update
