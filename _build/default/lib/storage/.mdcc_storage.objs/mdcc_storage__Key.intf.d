lib/storage/key.mli: Format Hashtbl Map Set
