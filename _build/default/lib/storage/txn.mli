(** Transactions: a unique id plus a write-set.

    Like all optimistic concurrency control schemes, MDCC assumes the
    transaction's reads have already happened by commit time and only the
    write-set reaches the protocol.  The id and the full key list travel
    inside every option so that any node can reconstruct and finish a
    dangling transaction after an app-server failure (§3.2.3). *)

type id = string

type abort_reason =
  | Conflict  (** a write-write conflict: some option was learned rejected *)
  | Constraint_violation  (** a value constraint (demarcation) rejection *)
  | Node_unreachable  (** not enough live replicas for any quorum *)
  | Recovered_abort  (** finished as aborted by the recovery path *)

type outcome = Committed | Aborted of abort_reason

type t = { id : id; updates : (Key.t * Update.t) list }

val make : id:id -> updates:(Key.t * Update.t) list -> t
(** Raises [Invalid_argument] if two updates target the same key (one
    outstanding option per record is an MDCC invariant, §3.2). *)

val serializable :
  id:id -> reads:(Key.t * int) list -> updates:(Key.t * Update.t) list -> t
(** A fully serializable transaction (§4.4): every read key that is not
    also written gets a {!Update.Read_guard} validating that the read
    version is still current at commit time.  Commit of such a transaction
    certifies both its reads and its writes. *)

val keys : t -> Key.t list

val is_read_only : t -> bool

val commutative_only : t -> bool
(** All updates are [Delta]s. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp : Format.formatter -> t -> unit
