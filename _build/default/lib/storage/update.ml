type t =
  | Insert of Value.t
  | Physical of { vread : int; value : Value.t }
  | Delete of { vread : int }
  | Delta of (string * int) list
  | Read_guard of { vread : int }

let is_commutative = function
  | Delta _ -> true
  | Insert _ | Physical _ | Delete _ | Read_guard _ -> false

let is_read_guard = function
  | Read_guard _ -> true
  | Insert _ | Physical _ | Delete _ | Delta _ -> false

let deltas = function Delta ds -> ds | Insert _ | Physical _ | Delete _ | Read_guard _ -> []

let pp ppf = function
  | Read_guard { vread } -> Format.fprintf ppf "guard v%d" vread
  | Insert v -> Format.fprintf ppf "insert %a" Value.pp v
  | Physical { vread; value } -> Format.fprintf ppf "v%d -> %a" vread Value.pp value
  | Delete { vread } -> Format.fprintf ppf "v%d -> delete" vread
  | Delta ds ->
    Format.fprintf ppf "delta [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (a, d) -> Format.fprintf ppf "%s%+d" a d))
      ds
