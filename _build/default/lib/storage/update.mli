(** Updates collected in a transaction's write-set.

    Updates are represented as [vread -> vwrite] (§3.2.1): [vread] is the
    record version the transaction read, letting storage nodes detect
    write-write conflicts by comparing it with the current version.  An
    insert has a missing [vread] and succeeds only if the record does not
    exist; a delete marks the record as deleted and is otherwise a normal
    update.  Commutative updates carry attribute deltas instead of an
    absolute value and are validated against value constraints rather than
    versions. *)

type t =
  | Insert of Value.t  (** create the record; fails if it already exists *)
  | Physical of { vread : int; value : Value.t }
      (** replace the whole value; fails unless the current version = vread *)
  | Delete of { vread : int }  (** tombstone the record *)
  | Delta of (string * int) list
      (** commutative attribute increments/decrements, e.g.
          [["stock", -2]] *)
  | Read_guard of { vread : int }
      (** validate-only: succeeds iff the record is still at version
          [vread] and no write is outstanding, and executes as a no-op.
          Adding guards for a transaction's read-set extends the commit
          protocol to full serializability — the OCC extension the paper
          sketches in §4.4. *)

val is_commutative : t -> bool
(** [true] only for [Delta]. *)

val is_read_guard : t -> bool

val deltas : t -> (string * int) list
(** The delta list of a [Delta]; [\[\]] otherwise. *)

val pp : Format.formatter -> t -> unit
