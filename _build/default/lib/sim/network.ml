module Rng = Mdcc_util.Rng

type payload = ..

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  drop_probability : float;
  jitter_sigma : float;
  rng : Rng.t;
  handlers : (src:Topology.node_id -> payload -> unit) option array;
  failed : bool array;
  stats : stats;
}

let create engine topo ?(drop_probability = 0.0) ?(jitter_sigma = 0.05) () =
  {
    engine;
    topo;
    drop_probability;
    jitter_sigma;
    rng = Rng.split (Engine.rng engine);
    handlers = Array.make (Topology.num_nodes topo) None;
    failed = Array.make (Topology.num_nodes topo) false;
    stats = { sent = 0; delivered = 0; dropped = 0 };
  }

let engine t = t.engine

let topology t = t.topo

let register t node handler = t.handlers.(node) <- Some handler

let latency_sample t ~src ~dst =
  let base = Topology.one_way t.topo src dst in
  (* Minimum processing/stack delay so even loopback costs one event tick. *)
  let floor_latency = 0.25 in
  let jitter =
    if t.jitter_sigma <= 0.0 then 1.0
    else Rng.lognormal t.rng ~mu:0.0 ~sigma:t.jitter_sigma
  in
  floor_latency +. (base *. jitter)

let send t ~src ~dst payload =
  t.stats.sent <- t.stats.sent + 1;
  if t.failed.(src) || t.failed.(dst) then t.stats.dropped <- t.stats.dropped + 1
  else if t.drop_probability > 0.0 && Rng.bernoulli t.rng t.drop_probability then
    t.stats.dropped <- t.stats.dropped + 1
  else begin
    let delay = latency_sample t ~src ~dst in
    ignore
      (Engine.schedule t.engine ~after:delay (fun () ->
           (* Failures that happened while the message was in flight also
              kill it: a dead data center receives nothing. *)
           if t.failed.(src) || t.failed.(dst) then t.stats.dropped <- t.stats.dropped + 1
           else begin
             match t.handlers.(dst) with
             | None -> t.stats.dropped <- t.stats.dropped + 1
             | Some handler ->
               t.stats.delivered <- t.stats.delivered + 1;
               handler ~src payload
           end))
  end

let broadcast t ~src ~dsts payload = List.iter (fun dst -> send t ~src ~dst payload) dsts

let fail_node t node = t.failed.(node) <- true

let recover_node t node = t.failed.(node) <- false

let is_failed t node = t.failed.(node)

let fail_dc t dc = List.iter (fail_node t) (Topology.nodes_in_dc t.topo dc)

let recover_dc t dc = List.iter (recover_node t) (Topology.nodes_in_dc t.topo dc)

let stats t = t.stats
