let flag = ref false

let enable () = flag := true

let disable () = flag := false

let enabled () = !flag

let emit engine ~tag fmt =
  Printf.ksprintf
    (fun msg -> if !flag then Printf.printf "[%10.2f] %-12s %s\n" (Engine.now engine) tag msg)
    fmt
