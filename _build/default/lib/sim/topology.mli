(** Deployment topology: data centers, nodes, and base WAN latencies.

    The paper's testbed is five Amazon EC2 regions — US West (N. California),
    US East (Virginia), EU (Ireland), AP (Singapore) and AP (Tokyo) — with a
    full replica per region and the data range-partitioned across several
    storage nodes inside each region.  {!ec2_five} reconstructs that
    deployment with the inter-region round-trip times measured around 2012.

    Node ids are dense integers [0 .. num_nodes-1]; the mapping to data
    centers is fixed at construction. *)

type node_id = int

type t = {
  dc_names : string array;  (** one entry per data center *)
  node_dc : int array;  (** node id -> data center index *)
  rtt : float array array;  (** inter-DC round-trip time in ms *)
  intra_rtt : float;  (** round-trip time between nodes of one DC *)
}

val make :
  dc_names:string array ->
  rtt:float array array ->
  ?intra_rtt:float ->
  nodes_per_dc:int ->
  unit ->
  t
(** Build a topology with [nodes_per_dc] nodes in every data center.  Node
    ids are laid out DC-major: node [d * nodes_per_dc + i] is the [i]-th node
    of DC [d].  Raises [Invalid_argument] if [rtt] is not square or does not
    match [dc_names]. *)

val ec2_five : ?nodes_per_dc:int -> unit -> t
(** The paper's 5-region EC2 deployment (default 1 node per DC). *)

val us_west : int
(** Index of the US West data center in {!ec2_five} (clients' default home,
    and the Megastore* master region in the paper's comparison). *)

val us_east : int
(** Index of US East — the region killed in the Figure 8 experiment. *)

val num_dcs : t -> int
val num_nodes : t -> int
val dc_of : t -> node_id -> int
val nodes_in_dc : t -> int -> node_id list
val all_nodes : t -> node_id list

val one_way : t -> node_id -> node_id -> float
(** Base one-way latency between two nodes (half the RTT; 0 for a node to
    itself). *)

val add_nodes : t -> per_dc:int -> t
(** A copy of the topology with [per_dc] extra nodes appended to every data
    center (their ids follow the existing ones).  Used to add app-server /
    client nodes next to the storage nodes. *)
