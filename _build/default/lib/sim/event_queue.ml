type event = {
  at : float;
  seq : int;
  mutable cancelled : bool;
  run : unit -> unit;
}

type t = { mutable heap : event array; mutable len : int }

let dummy = { at = 0.0; seq = 0; cancelled = true; run = ignore }

let create () = { heap = Array.make 64 dummy; len = 0 }

let size t = t.len

let is_empty t = t.len = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let bigger = Array.make (Array.length t.heap * 2) dummy in
  Array.blit t.heap 0 bigger 0 t.len;
  t.heap <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~at ~seq run =
  if t.len = Array.length t.heap then grow t;
  let ev = { at; seq; cancelled = false; run } in
  t.heap.(t.len) <- ev;
  t.len <- t.len + 1;
  sift_up t (t.len - 1);
  ev

let cancel ev = ev.cancelled <- true

let pop_any t =
  if t.len = 0 then None
  else begin
    let ev = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy;
    if t.len > 0 then sift_down t 0;
    Some ev
  end

let rec pop t =
  match pop_any t with
  | None -> None
  | Some ev -> if ev.cancelled then pop t else Some ev

let rec peek_time t =
  if t.len = 0 then None
  else if t.heap.(0).cancelled then begin
    (* Lazily discard cancelled events sitting at the root. *)
    ignore (pop_any t);
    peek_time t
  end
  else Some t.heap.(0).at
