(** Lightweight, globally-switched protocol tracing.

    Disabled by default so the hot simulation loop pays only a flag check;
    enable it in tests or from the CLI's [--trace] flag to get a readable
    interleaved log of protocol decisions with virtual timestamps. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val emit : Engine.t -> tag:string -> ('a, unit, string, unit) format4 -> 'a
(** [emit engine ~tag fmt ...] prints ["[%8.2f] %-10s msg"] to stdout when
    tracing is enabled; otherwise the arguments are consumed and ignored. *)
