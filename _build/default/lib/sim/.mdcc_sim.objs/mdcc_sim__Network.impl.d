lib/sim/network.ml: Array Engine List Mdcc_util Topology
