lib/sim/engine.mli: Mdcc_util
