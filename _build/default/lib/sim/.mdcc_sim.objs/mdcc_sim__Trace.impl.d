lib/sim/trace.ml: Engine Printf
