lib/sim/topology.ml: Array Fun List
