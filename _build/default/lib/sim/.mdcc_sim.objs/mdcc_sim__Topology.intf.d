lib/sim/topology.mli:
