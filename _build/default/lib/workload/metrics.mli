(** Per-transaction measurements of an experiment run.

    Collects one sample per decided write transaction and derives everything
    the paper's figures report: response-time CDFs and medians (Fig. 3/5),
    committed-transaction throughput (Fig. 4), commit/abort counts (Fig. 6),
    box plots (Fig. 7) and time series around a failure (Fig. 8).  Samples
    inside the warm-up window are excluded from all summaries. *)

open Mdcc_storage

type sample = {
  submitted_at : float;
  latency : float;
  outcome : Txn.outcome;
  dc : int;  (** client's data center *)
}

type t

val create : warmup:float -> t

val add : t -> sample -> unit

val samples : t -> sample list
(** Post-warm-up samples, oldest first. *)

val commit_count : t -> int
val abort_count : t -> int

val commit_latencies : t -> float list
(** Latencies of committed transactions (the paper's response-time curves
    only include committed write transactions). *)

val throughput : t -> duration:float -> float
(** Committed transactions per second over the measured window. *)

val summary : t -> Mdcc_util.Stats.summary option
(** Summary of commit latencies; [None] if nothing committed. *)

val latency_series : t -> (float * float) list
(** [(submission time, latency)] pairs of committed transactions, for the
    Figure 8 time series (includes warm-up: the figure shows the whole
    run). *)
