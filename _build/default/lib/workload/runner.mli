(** The experiment runner: closed-loop clients over any protocol harness.

    Reproduces the paper's measurement methodology: [clients_per_dc]
    emulated browsers per data center issue transactions back-to-back with
    no think time (the paper foregoes wait times to stress the system); a
    warm-up window is excluded; response time is measured from submission
    to the commit/abort decision.  Events (e.g. a data-center failure at a
    given time) can be injected into the run. *)

type spec = {
  clients_per_dc : int array;
  warmup : float;  (** ms *)
  duration : float;  (** measured window after warm-up, ms *)
  drain : float;  (** extra time to let in-flight txns decide, ms *)
  seed : int;
}

val default_spec : num_dcs:int -> clients:int -> spec
(** [clients] spread evenly over the data centers; 15 s warm-up, 60 s
    measurement, 30 s drain, seed 1. *)

val spec_all_in : dc:int -> num_dcs:int -> clients:int -> spec
(** All clients in one data center (the Figure 8 setup). *)

val run :
  ?events:(float * (unit -> unit)) list ->
  Mdcc_protocols.Harness.t ->
  Generator.t ->
  spec ->
  Metrics.t
(** Run the experiment to completion and return the measurements.  The
    engine must be fresh (time 0). *)
