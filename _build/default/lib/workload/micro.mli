(** The paper's micro-benchmark (§5.3).

    One [item] table with a [stock >= 0] constraint; a {e buy} transaction
    picks 3 random items and decrements each stock by 1–3 (a commutative
    operation).  Knobs reproduce the §5.3 experiments:
    {ul
    {- [commutative]: deltas (MDCC) vs. read-modify-write physical updates
       (the Fast / Multi / 2PC configurations, which have no commutative
       support);}
    {- [hotspot = Some (size, prob)]: accesses hit the first
       [size · num_items] items with probability [prob] (Figure 6 uses
       [prob = 0.9] and sizes 2–90 %);}
    {- [locality = Some p]: a fraction [p] of transactions picks only items
       whose master is in the client's data center (Figure 7).  Use
       {!master_dc_of} as the cluster's master assignment so item masters
       are [item mod num_dcs].}} *)

type params = {
  num_items : int;
  items_per_txn : int;
  max_decrement : int;
  commutative : bool;
  hotspot : (float * float) option;
  locality : float option;
  num_dcs : int;
  initial_stock : int;
}

val default : params
(** 10 000 items, 3 items per buy, decrement 1–3, commutative, no hotspot,
    no locality pinning, 5 DCs, initial stock 200. *)

val item_key : int -> Mdcc_storage.Key.t

val master_dc_of : num_dcs:int -> Mdcc_storage.Key.t -> int
(** [item i]'s master is DC [i mod num_dcs] — gives every DC an equal share
    of local-master items for the locality experiment. *)

val schema : Mdcc_storage.Schema.t

val rows : params -> rng:Mdcc_util.Rng.t -> (Mdcc_storage.Key.t * Mdcc_storage.Value.t) list
(** Initial item rows (stock = [initial_stock], random price). *)

val generator : params -> Generator.t
