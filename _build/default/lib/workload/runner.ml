open Mdcc_storage
module Engine = Mdcc_sim.Engine
module Rng = Mdcc_util.Rng
module Harness = Mdcc_protocols.Harness

type spec = {
  clients_per_dc : int array;
  warmup : float;
  duration : float;
  drain : float;
  seed : int;
}

let default_spec ~num_dcs ~clients =
  let base = clients / num_dcs and extra = clients mod num_dcs in
  {
    clients_per_dc = Array.init num_dcs (fun dc -> base + if dc < extra then 1 else 0);
    warmup = 15_000.0;
    duration = 60_000.0;
    drain = 30_000.0;
    seed = 1;
  }

let spec_all_in ~dc ~num_dcs ~clients =
  { (default_spec ~num_dcs ~clients) with
    clients_per_dc = Array.init num_dcs (fun d -> if d = dc then clients else 0) }

let run ?(events = []) (harness : Harness.t) (gen : Generator.t) spec =
  let engine = harness.Harness.engine in
  let metrics = Metrics.create ~warmup:spec.warmup in
  let t_end = spec.warmup +. spec.duration in
  let root_rng = Rng.create spec.seed in
  let client_id = ref 0 in
  Array.iteri
    (fun dc count ->
      for _ = 1 to count do
        incr client_id;
        let ctx =
          { Generator.rng = Rng.split root_rng; dc; client_id = !client_id; seq = 0 }
        in
        let rec loop () =
          if Engine.now engine < t_end then
            gen.Generator.prepare ctx harness (fun txn ->
                if Txn.is_read_only txn then
                  (* Browsing interaction: local reads only, not measured. *)
                  ignore (Engine.schedule engine ~after:1.0 loop)
                else begin
                  let t0 = Engine.now engine in
                  harness.Harness.submit ~dc txn (fun outcome ->
                      Metrics.add metrics
                        {
                          Metrics.submitted_at = t0;
                          latency = Engine.now engine -. t0;
                          outcome;
                          dc;
                        };
                      loop ())
                end)
        in
        (* Stagger client start-up to avoid a synchronized thundering herd. *)
        ignore (Engine.schedule engine ~after:(Rng.float root_rng 500.0) loop)
      done)
    spec.clients_per_dc;
  List.iter (fun (at, action) -> ignore (Engine.schedule_at engine ~at action)) events;
  Engine.run ~until:(t_end +. spec.drain) engine;
  metrics
