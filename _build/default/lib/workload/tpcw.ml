open Mdcc_storage
module Rng = Mdcc_util.Rng

type params = { items : int; commutative : bool; max_cart : int }

let default = { items = 10_000; commutative = true; max_cart = 5 }

let schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
      { Schema.name = "customer"; bounds = []; master_dc = 0 };
      { Schema.name = "cart"; bounds = []; master_dc = 0 };
      { Schema.name = "order"; bounds = []; master_dc = 0 };
      { Schema.name = "order_line"; bounds = []; master_dc = 0 };
    ]

let item_key i = Key.make ~table:"item" ~id:(string_of_int i)

let customer_key c = Key.make ~table:"customer" ~id:(string_of_int c)

let cart_key c = Key.make ~table:"cart" ~id:(string_of_int c)

let num_customers p = Stdlib.max 1 (p.items / 10)

let rows p ~rng =
  let items =
    List.init p.items (fun i ->
        ( item_key i,
          Value.of_list
            [
              ("stock", Value.Int (500 + Rng.int rng 200));
              ("price", Value.Int (Rng.int_in rng 1 100));
            ] ))
  in
  let customers =
    List.init (num_customers p) (fun c ->
        (customer_key c, Value.of_list [ ("name", Value.Str (Printf.sprintf "cust-%d" c)) ]))
  in
  let carts =
    List.init (num_customers p) (fun c ->
        (cart_key c, Value.of_list [ ("lines", Value.Int 0) ]))
  in
  items @ customers @ carts

let pick_items p rng k =
  let rec distinct acc n =
    if n <= 0 then acc
    else begin
      let i = Rng.int rng p.items in
      if List.mem i acc then distinct acc n else distinct (i :: acc) (n - 1)
    end
  in
  distinct [] (Stdlib.min k p.items)

(* Buy-confirm: stock decrements + order insert + one order-line per item. *)
let buy_confirm p (ctx : Generator.ctx) harness k =
  let txid = Generator.fresh_txid ctx in
  let cart = pick_items p ctx.rng (Rng.int_in ctx.rng 1 p.max_cart) in
  let quantities = List.map (fun i -> (i, Rng.int_in ctx.rng 1 3)) cart in
  let order = (Key.make ~table:"order" ~id:txid, Update.Insert (Value.of_list [ ("total", Value.Int 0) ])) in
  let lines =
    List.mapi
      (fun n (i, q) ->
        ( Key.make ~table:"order_line" ~id:(Printf.sprintf "%s-%d" txid n),
          Update.Insert (Value.of_list [ ("item", Value.Int i); ("qty", Value.Int q) ]) ))
      quantities
  in
  if p.commutative then begin
    let decs =
      List.map (fun (i, q) -> (item_key i, Update.Delta [ ("stock", -q) ])) quantities
    in
    k (Txn.make ~id:txid ~updates:((order :: lines) @ decs))
  end
  else
    Generator.read_many harness ~dc:ctx.dc
      (List.map (fun (i, _) -> item_key i) quantities)
      (fun results ->
        let decs =
          List.map
            (fun (i, q) ->
              let key = item_key i in
              match List.assoc key results with
              | Some (value, version) ->
                let stock = Value.get_int value "stock" in
                ( key,
                  Update.Physical
                    { vread = version; value = Value.set value "stock" (Value.Int (stock - q)) }
                )
              | None -> (key, Update.Physical { vread = -1; value = Value.empty }))
            quantities
        in
        k (Txn.make ~id:txid ~updates:((order :: lines) @ decs)))

(* Buy-request: read-modify-write of the customer's cart record. *)
let buy_request p (ctx : Generator.ctx) harness k =
  let txid = Generator.fresh_txid ctx in
  let cust = Rng.int ctx.rng (num_customers p) in
  let key = cart_key cust in
  Generator.read_many harness ~dc:ctx.dc [ key ] (fun results ->
      match List.assoc key results with
      | Some (value, version) ->
        let lines = Value.get_int value "lines" in
        k
          (Txn.make ~id:txid
             ~updates:
               [
                 ( key,
                   Update.Physical
                     { vread = version; value = Value.set value "lines" (Value.Int (lines + 1)) }
                 );
               ])
      | None ->
        k (Txn.make ~id:txid ~updates:[ (key, Update.Insert (Value.of_list [ ("lines", Value.Int 1) ])) ]))

let customer_registration (ctx : Generator.ctx) _harness k =
  let txid = Generator.fresh_txid ctx in
  let key = Key.make ~table:"customer" ~id:("new-" ^ txid) in
  k
    (Txn.make ~id:txid
       ~updates:[ (key, Update.Insert (Value.of_list [ ("name", Value.Str txid) ])) ])

(* Admin-update: change an item's price (never its stock). *)
let admin_update p (ctx : Generator.ctx) harness k =
  let txid = Generator.fresh_txid ctx in
  let key = item_key (Rng.int ctx.rng p.items) in
  Generator.read_many harness ~dc:ctx.dc [ key ] (fun results ->
      match List.assoc key results with
      | Some (value, version) ->
        k
          (Txn.make ~id:txid
             ~updates:
               [
                 ( key,
                   Update.Physical
                     {
                       vread = version;
                       value = Value.set value "price" (Value.Int (Rng.int_in ctx.rng 1 100));
                     } );
               ])
      | None -> k (Txn.make ~id:txid ~updates:[]))

(* Browsing: a handful of local reads, no writes (not measured). *)
let browse p (ctx : Generator.ctx) harness k =
  let txid = Generator.fresh_txid ctx in
  let keys = List.map item_key (pick_items p ctx.rng 3) in
  Generator.read_many harness ~dc:ctx.dc keys (fun _ -> k (Txn.make ~id:txid ~updates:[]))

let generator p =
  let prepare (ctx : Generator.ctx) harness k =
    (* The most write-heavy TPC-W profile: ordering mix. *)
    let r = Rng.float ctx.rng 1.0 in
    if r < 0.35 then buy_confirm p ctx harness k
    else if r < 0.60 then buy_request p ctx harness k
    else if r < 0.70 then customer_registration ctx harness k
    else if r < 0.80 then admin_update p ctx harness k
    else browse p ctx harness k
  in
  { Generator.name = "tpcw"; prepare }
