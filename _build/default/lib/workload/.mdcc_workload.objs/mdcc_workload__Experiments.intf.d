lib/workload/experiments.mli: Mdcc_util
