lib/workload/setup.mli: Key Mdcc_protocols Mdcc_storage Schema Value
