lib/workload/micro.mli: Generator Mdcc_storage Mdcc_util
