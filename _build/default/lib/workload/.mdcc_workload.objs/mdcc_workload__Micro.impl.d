lib/workload/micro.ml: Float Generator Hashtbl Key List Mdcc_protocols Mdcc_storage Mdcc_util Schema Stdlib Txn Update Value
