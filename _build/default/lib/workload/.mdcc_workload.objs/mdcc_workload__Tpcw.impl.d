lib/workload/tpcw.ml: Generator Key List Mdcc_storage Mdcc_util Printf Schema Stdlib Txn Update Value
