lib/workload/runner.ml: Array Generator List Mdcc_protocols Mdcc_sim Mdcc_storage Mdcc_util Metrics Txn
