lib/workload/generator.ml: List Mdcc_protocols Mdcc_storage Mdcc_util Printf Txn
