lib/workload/tpcw.mli: Generator Mdcc_storage Mdcc_util
