lib/workload/experiments.ml: Array Float List Mdcc_core Mdcc_paxos Mdcc_protocols Mdcc_sim Mdcc_util Metrics Micro Printf Runner Setup Stdlib Tpcw
