lib/workload/generator.mli: Key Mdcc_protocols Mdcc_storage Mdcc_util Txn Value
