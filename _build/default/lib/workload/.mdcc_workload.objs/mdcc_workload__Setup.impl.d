lib/workload/setup.ml: Mdcc_core Mdcc_protocols Mdcc_sim Printf
