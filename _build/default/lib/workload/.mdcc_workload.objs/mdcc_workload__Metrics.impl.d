lib/workload/metrics.ml: Float List Mdcc_storage Mdcc_util Txn
