lib/workload/runner.mli: Generator Mdcc_protocols Metrics
