lib/workload/metrics.mli: Mdcc_storage Mdcc_util Txn
