open Mdcc_storage
module Rng = Mdcc_util.Rng

type params = {
  num_items : int;
  items_per_txn : int;
  max_decrement : int;
  commutative : bool;
  hotspot : (float * float) option;
  locality : float option;
  num_dcs : int;
  initial_stock : int;
}

let default =
  {
    num_items = 10_000;
    items_per_txn = 3;
    max_decrement = 3;
    commutative = true;
    hotspot = None;
    locality = None;
    num_dcs = 5;
    initial_stock = 200;
  }

let item_key i = Key.make ~table:"item" ~id:(string_of_int i)

let master_dc_of ~num_dcs key =
  match int_of_string_opt key.Key.id with
  | Some i -> i mod num_dcs
  | None -> Hashtbl.hash (Key.to_string key) mod num_dcs

let schema =
  Schema.create
    [
      {
        Schema.name = "item";
        bounds = [ { Schema.attr = "stock"; lower = Some 0; upper = None } ];
        master_dc = 0;
      };
    ]

let rows p ~rng =
  List.init p.num_items (fun i ->
      ( item_key i,
        Value.of_list
          [ ("stock", Value.Int p.initial_stock); ("price", Value.Int (Rng.int_in rng 1 100)) ]
      ))

(* Pick one item index according to the hotspot / locality knobs. *)
let pick_item p (ctx : Generator.ctx) ~local_only =
  let in_range lo hi =
    (* Uniform in [lo, hi); restricted to the client's local-master items
       (indices congruent to dc mod num_dcs) when asked. *)
    if local_only then begin
      let span = hi - lo in
      let slots = (span + p.num_dcs - 1) / p.num_dcs in
      let slot = Rng.int ctx.rng (Stdlib.max 1 slots) in
      let candidate = lo + (slot * p.num_dcs) + ((ctx.dc - lo) mod p.num_dcs + p.num_dcs) mod p.num_dcs in
      if candidate < hi then candidate else lo + (ctx.dc mod p.num_dcs)
    end
    else lo + Rng.int ctx.rng (Stdlib.max 1 (hi - lo))
  in
  match p.hotspot with
  | None -> in_range 0 p.num_items
  | Some (size, prob) ->
    let hot = Stdlib.max 1 (Float.to_int (size *. Float.of_int p.num_items)) in
    if Rng.bernoulli ctx.rng prob then in_range 0 hot
    else if hot >= p.num_items then in_range 0 p.num_items
    else in_range hot p.num_items

let pick_items p (ctx : Generator.ctx) =
  let local_only =
    match p.locality with Some f -> Rng.bernoulli ctx.rng f | None -> false
  in
  let rec distinct acc n =
    if n <= 0 then acc
    else begin
      let i = pick_item p ctx ~local_only in
      if List.mem i acc then distinct acc n else distinct (i :: acc) (n - 1)
    end
  in
  distinct [] (Stdlib.min p.items_per_txn p.num_items)

let generator p =
  let prepare ctx (harness : Mdcc_protocols.Harness.t) k =
    let items = pick_items p ctx in
    let decs = List.map (fun i -> (i, Rng.int_in ctx.rng 1 p.max_decrement)) items in
    let txid = Generator.fresh_txid ctx in
    if p.commutative then
      k
        (Txn.make ~id:txid
           ~updates:
             (List.map (fun (i, d) -> (item_key i, Update.Delta [ ("stock", -d) ])) decs))
    else
      (* No commutative support: read each item, write back the decremented
         value with the read version (optimistic read-modify-write). *)
      Generator.read_many harness ~dc:ctx.dc
        (List.map (fun (i, _) -> item_key i) decs)
        (fun results ->
          let updates =
            List.map
              (fun (i, d) ->
                let key = item_key i in
                match List.assoc key results with
                | Some (value, version) ->
                  let stock = Value.get_int value "stock" in
                  ( key,
                    Update.Physical
                      { vread = version; value = Value.set value "stock" (Value.Int (stock - d)) }
                  )
                | None ->
                  (* Deleted under us: propose an impossible update; the
                     system will reject it (conflict). *)
                  (key, Update.Physical { vread = -1; value = Value.empty }))
              decs
          in
          k (Txn.make ~id:txid ~updates))
  in
  { Generator.name = "micro-buy"; prepare }
