(** A TPC-W-style workload (§5.2): the database access pattern of an
    e-commerce site.

    Like the paper we implement the database side of the web interactions
    and skip HTML rendering and think times, and we use the most write-heavy
    profile.  The write interactions are:
    {ul
    {- {e buy-confirm} — the checkout: decrement the stock of each cart item
       subject to [stock >= 0] (the one commutative opportunity TPC-W
       offers), insert the order and one order-line per item;}
    {- {e buy-request} — update the customer's shopping cart;}
    {- {e customer-registration} — insert a new customer;}
    {- {e admin-update} — change an item's price (read-modify-write).}}
    Browsing interactions are read-only: they issue local reads and commit
    trivially; the runner does not measure them (the paper reports write
    transactions only). *)

type params = {
  items : int;  (** TPC-W scale factor, in items *)
  commutative : bool;  (** stock decrements as deltas (MDCC) or RMW *)
  max_cart : int;  (** items per buy-confirm: 1..max_cart *)
}

val default : params
(** 10 000 items, commutative, carts of 1–5 items. *)

val schema : Mdcc_storage.Schema.t

val rows : params -> rng:Mdcc_util.Rng.t -> (Mdcc_storage.Key.t * Mdcc_storage.Value.t) list
(** Items (stock 500 + random, price), customers and their carts. *)

val generator : params -> Generator.t
