lib/core/cluster.ml: Array Config Coordinator Hashtbl Key List Mdcc_sim Mdcc_storage Schema Storage_node Store
