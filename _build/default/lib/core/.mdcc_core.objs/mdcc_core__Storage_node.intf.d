lib/core/storage_node.mli: Config Key Mdcc_sim Mdcc_storage Schema Store Value
