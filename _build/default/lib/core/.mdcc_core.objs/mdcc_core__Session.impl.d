lib/core/session.ml: Coordinator Key List Mdcc_storage Option Txn Update
