lib/core/messages.ml: Ballot Format Key List Mdcc_paxos Mdcc_sim Mdcc_storage Printf Txn Update Value Woption
