lib/core/coordinator.ml: Config Format Hashtbl Int Key List Mdcc_paxos Mdcc_sim Mdcc_storage Mdcc_util Messages Option Printf Quorum Txn Value Woption
