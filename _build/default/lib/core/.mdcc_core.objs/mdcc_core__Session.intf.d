lib/core/session.mli: Coordinator Key Mdcc_storage Txn Value
