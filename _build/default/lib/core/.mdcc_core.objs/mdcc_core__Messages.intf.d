lib/core/messages.mli: Ballot Key Mdcc_paxos Mdcc_sim Mdcc_storage Txn Update Value Woption
