lib/core/config.mli:
