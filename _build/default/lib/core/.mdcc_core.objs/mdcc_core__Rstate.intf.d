lib/core/rstate.mli: Ballot Key Mdcc_paxos Mdcc_storage Schema Txn Update Value Woption
