lib/core/woption.mli: Format Key Mdcc_storage Txn Update
