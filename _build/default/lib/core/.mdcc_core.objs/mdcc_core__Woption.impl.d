lib/core/woption.ml: Format Key List Mdcc_storage Txn Update
