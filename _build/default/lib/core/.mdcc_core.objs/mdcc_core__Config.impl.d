lib/core/config.ml: Mdcc_paxos
