lib/core/coordinator.mli: Config Key Mdcc_sim Mdcc_storage Txn Value
