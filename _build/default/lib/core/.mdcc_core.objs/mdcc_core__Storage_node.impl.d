lib/core/storage_node.ml: Ballot Config Hashtbl Int Key List Mdcc_paxos Mdcc_sim Mdcc_storage Mdcc_util Messages Option Printf Rstate Schema Stdlib Store String Txn Update Value Woption
