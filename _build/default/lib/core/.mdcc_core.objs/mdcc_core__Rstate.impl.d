lib/core/rstate.ml: Ballot Key List Mdcc_paxos Mdcc_storage Schema Stdlib String Update Value Woption
