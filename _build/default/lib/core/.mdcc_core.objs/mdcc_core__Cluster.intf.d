lib/core/cluster.mli: Config Coordinator Key Mdcc_sim Mdcc_storage Schema Storage_node Value
