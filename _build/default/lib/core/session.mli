(** Session read guarantees on top of read-committed (§4.2).

    Plain local reads may be stale (a replica can miss updates).  The paper
    sketches how to strengthen them: monotonic reads and read-your-writes
    can be guaranteed by making sure the local replica "participates in the
    quorum" — operationally, by falling back to an up-to-date (majority)
    read whenever the local replica is behind what the session has already
    observed.

    A session tracks, per key, the highest version it has read or written
    (its {e watermark}).  {!read} serves from the local replica when that is
    at or above the watermark and silently upgrades to a majority read
    otherwise; {!submit} advances watermarks when a transaction commits, so
    subsequent reads see the session's own writes. *)

open Mdcc_storage

type t

val create : Coordinator.t -> t
(** A fresh session bound to one app-server. *)

val read : t -> Key.t -> ((Value.t * int) option -> unit) -> unit
(** Monotonic, read-your-writes read: never returns a version below the
    session's watermark for the key. *)

val scan :
  t ->
  table:string ->
  ?order_by:string ->
  limit:int ->
  ((Key.t * Value.t * int) list -> unit) ->
  unit
(** Local table scan ({!Coordinator.scan_local}); read-committed but outside
    the session's per-key watermark tracking (scans are analytic reads). *)

val submit : t -> Txn.t -> (Txn.outcome -> unit) -> unit
(** {!Coordinator.submit}, additionally advancing the watermarks of the
    written keys when the transaction commits. *)

val watermark : t -> Key.t -> int
(** The session's current lower bound for the key's version (0 if never
    observed). *)
