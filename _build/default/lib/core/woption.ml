open Mdcc_storage

type decision = Accepted | Rejected

type t = {
  txid : Txn.id;
  key : Key.t;
  update : Update.t;
  write_set : Key.t list;
  coordinator : int;
}

let of_txn (txn : Txn.t) ~coordinator =
  let write_set = Txn.keys txn in
  List.map
    (fun (key, update) -> { txid = txn.Txn.id; key; update; write_set; coordinator })
    txn.Txn.updates

let is_commutative t = Update.is_commutative t.update

let decision_equal a b =
  match (a, b) with
  | Accepted, Accepted | Rejected, Rejected -> true
  | Accepted, Rejected | Rejected, Accepted -> false

let pp_decision ppf = function
  | Accepted -> Format.pp_print_string ppf "+"
  | Rejected -> Format.pp_print_string ppf "-"

let pp ppf t =
  Format.fprintf ppf "w(%s, %a, %a)" t.txid Key.pp t.key Update.pp t.update
