(** Write options — ω(up, _) in the paper's pseudocode.

    MDCC never writes a value through Paxos directly; it gets an {e option to
    execute the update} accepted.  An option embeds the transaction id and
    the primary keys of the whole write-set so that {e any} node can
    reconstruct the transaction state and finish a dangling transaction
    after an app-server failure (§3.2.3). *)

open Mdcc_storage

type decision = Accepted | Rejected
(** ω(up, ✓) / ω(up, ✗): the acceptance state of an option. *)

type t = {
  txid : Txn.id;
  key : Key.t;
  update : Update.t;
  write_set : Key.t list;  (** all keys of the owning transaction *)
  coordinator : int;  (** node id of the proposing app-server *)
}

val of_txn : Txn.t -> coordinator:int -> t list
(** One option per update of the transaction. *)

val is_commutative : t -> bool

val decision_equal : decision -> decision -> bool

val pp_decision : Format.formatter -> decision -> unit

val pp : Format.formatter -> t -> unit
