type kind = Fast | Classic

type t = { number : int; kind : kind; proposer : int }

let initial_fast = { number = 0; kind = Fast; proposer = -1 }

let classic ~number ~proposer = { number; kind = Classic; proposer }

let fast ~number ~proposer = { number; kind = Fast; proposer }

let kind_rank = function Fast -> 0 | Classic -> 1

let compare a b =
  match Int.compare a.number b.number with
  | 0 -> (
    match Int.compare (kind_rank a.kind) (kind_rank b.kind) with
    | 0 -> Int.compare a.proposer b.proposer
    | c -> c)
  | c -> c

let ( <% ) a b = compare a b < 0

let ( <=% ) a b = compare a b <= 0

let equal a b = compare a b = 0

let is_fast t = t.kind = Fast

let next_classic t ~proposer =
  let candidate = { number = t.number; kind = Classic; proposer } in
  if compare candidate t > 0 then candidate
  else { number = t.number + 1; kind = Classic; proposer }

let pp ppf t =
  Format.fprintf ppf "%d.%s.%d" t.number (match t.kind with Fast -> "f" | Classic -> "c")
    t.proposer
