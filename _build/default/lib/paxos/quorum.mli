(** Quorum arithmetic for Classic and Fast Paxos.

    With replication factor [n], a classic quorum has
    [floor(n/2) + 1] members; a fast quorum must additionally guarantee that
    any two fast quorums and any classic quorum share a member
    ([2f + c - 2n >= 1], §3.3.1 requirement (ii)); the typical setting used
    throughout the paper is [n = 5, c = 3, f = 4].

    {!safe_value} implements the collision-recovery rule of Fast Paxos
    (Phase2Start / ProvedSafe): from Phase1b responses of a classic quorum,
    find the unique value that {e may} have been chosen by a fast quorum and
    therefore must be re-proposed. *)

val classic_size : n:int -> int

val fast_size : n:int -> int
(** Smallest [f] satisfying the fast-quorum intersection requirement given
    the classic size for the same [n]. *)

type 'v vote = { acceptor : int; ballot : Ballot.t; value : 'v }
(** The highest-ballot acceptance an acceptor reported in Phase1b. *)

val safe_value :
  n:int -> quorum_size:int -> equal:('v -> 'v -> bool) -> 'v vote list -> 'v option
(** [safe_value ~n ~quorum_size ~equal votes] — [votes] are the (at most one
    per acceptor) highest-numbered acceptances reported by the responding
    classic quorum of [quorum_size] acceptors (acceptors that accepted
    nothing yet contribute no vote).
    Returns [Some v] if [v] must be proposed next:
    {ul
    {- if the highest reported ballot is classic, its value (ordinary Paxos
       Phase 2 rule);}
    {- if it is fast, the value [v] whose voter set could still intersect
       every fast quorum, i.e. [|voters v| >= f - (n - |Q|)] where [Q] is the
       responding quorum.  At most one value can qualify.}}
    [None] means no value was possibly chosen: the recovering master is free
    to propose anything. *)

val majority_reached : n:int -> int -> bool
(** [majority_reached ~n k]: has a classic quorum of acks been collected? *)

val fast_reached : n:int -> int -> bool

val fast_impossible : n:int -> acks:int -> rejects:int -> bool
(** With [acks] positive and [rejects] negative responses so far out of [n],
    can a fast quorum still be reached for {e either} outcome?  [true] means
    a Fast Paxos collision is certain and recovery should start. *)
