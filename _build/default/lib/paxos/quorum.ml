let classic_size ~n = (n / 2) + 1

let fast_size ~n =
  let c = classic_size ~n in
  (* Smallest f with 2f + c - 2n >= 1, i.e. f >= (2n - c + 1) / 2. *)
  let num = (2 * n) - c + 1 in
  (num + 1) / 2

type 'v vote = { acceptor : int; ballot : Ballot.t; value : 'v }

let safe_value ~n ~quorum_size ~equal votes =
  match votes with
  | [] -> None
  | first :: rest ->
    let k =
      List.fold_left
        (fun acc v -> if Ballot.compare v.ballot acc > 0 then v.ballot else acc)
        first.ballot rest
    in
    let at_k = List.filter (fun v -> Ballot.equal v.ballot k) votes in
    if not (Ballot.is_fast k) then
      (* Classic rule: at most one value exists at a classic ballot. *)
      match at_k with v :: _ -> Some v.value | [] -> None
    else begin
      (* Fast rule: v is possibly chosen iff a fast quorum R can exist with
         (Q inter R) all voting v, i.e. voters(v) can be completed with the
         n - |Q| acceptors outside Q to a fast quorum. *)
      let f = fast_size ~n in
      let threshold = f - (n - quorum_size) in
      let rec scan = function
        | [] -> None
        | v :: tl ->
          let supporters = List.filter (fun w -> equal w.value v.value) at_k in
          if List.length supporters >= threshold then Some v.value else scan tl
      in
      scan at_k
    end

let majority_reached ~n k = k >= classic_size ~n

let fast_reached ~n k = k >= fast_size ~n

let fast_impossible ~n ~acks ~rejects =
  let f = fast_size ~n in
  n - rejects < f && n - acks < f
