(** Ballot numbers for Classic / Fast / Generalized Paxos.

    A ballot is [(number, kind, proposer)].  Proposer ids make ballots of
    different masters unique (the paper concatenates the requester's IP
    address).  Fast ballots let any proposer talk to the acceptors directly;
    classic ballots belong to one master.  Per §3.3.1, {e classic ballots
    outrank fast ballots of the same number} so that collision resolution
    (which always runs classic) can supersede the default fast ballot 0. *)

type kind = Fast | Classic

type t = { number : int; kind : kind; proposer : int }

val initial_fast : t
(** Ballot every record implicitly starts in: [(0, Fast, -1)] — "all
    versions start as an implicitly fast ballot number" (§3.3.1). *)

val classic : number:int -> proposer:int -> t

val fast : number:int -> proposer:int -> t

val compare : t -> t -> int
(** Total order: by number, then [Classic > Fast], then proposer. *)

val ( <% ) : t -> t -> bool
val ( <=% ) : t -> t -> bool

val equal : t -> t -> bool

val is_fast : t -> bool

val next_classic : t -> proposer:int -> t
(** Smallest classic ballot of [proposer] strictly greater than the
    argument: used to start collision recovery / take over mastership. *)

val pp : Format.formatter -> t -> unit
