lib/paxos/consensus.ml: Ballot Float Hashtbl List Mdcc_sim Mdcc_util Option Quorum Stdlib String
