lib/paxos/cstruct.ml: Format Hashtbl List Option String
