lib/paxos/quorum.ml: Ballot List
