lib/paxos/quorum.mli: Ballot
