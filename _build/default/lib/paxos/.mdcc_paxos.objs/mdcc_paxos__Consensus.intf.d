lib/paxos/consensus.mli: Mdcc_sim
