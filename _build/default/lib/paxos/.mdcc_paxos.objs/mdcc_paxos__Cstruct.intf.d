lib/paxos/cstruct.mli: Format
