(** Command structures (cstructs) for Generalized Paxos.

    A cstruct is a sequence of commands modulo the commutativity of adjacent
    commands (Lamport, "Generalized Consensus and Paxos").  Acceptors in a
    fast commutative ballot each build their own cstruct in message-arrival
    order; the protocol only needs the cstructs to stay {e compatible}
    (have a common upper bound), not identical.  The partial order [leq]
    ("is a prefix of, up to commuting reorderings"), the least upper bound
    [lub] and the greatest lower bound [glb] implement the [⊑], [⊔] and [⊓]
    operators of the paper's pseudocode (Table 1).

    Commands carry a unique id (MDCC uses the transaction id — one
    outstanding option per record per transaction). *)

module type COMMAND = sig
  type t

  val id : t -> string
  (** Unique within one cstruct. *)

  val commutes : t -> t -> bool
  (** Symmetric; irrelevant for equal ids. *)
end

module Make (C : COMMAND) : sig
  type t

  val empty : t

  val append : t -> C.t -> t
  (** [append t c] is [t • c].  Appending an id already present is a no-op
      (acceptors deduplicate retransmitted proposals). *)

  val mem : t -> string -> bool

  val find : t -> string -> C.t option

  val to_list : t -> C.t list
  (** Commands in append order. *)

  val size : t -> int

  val leq : t -> t -> bool
  (** [leq a b]: [b] extends [a] — every command of [a] occurs in [b], and
      every ordered pair of non-commuting commands of [a] keeps its order in
      [b]. *)

  val lub : t -> t -> t option
  (** Least upper bound, or [None] if the cstructs are incompatible (they
      order some non-commuting pair differently). *)

  val compatible : t -> t -> bool

  val glb : t -> t -> t
  (** Greatest lower bound: the largest common "history" of the two
      cstructs. *)

  val equal : t -> t -> bool
  (** Equality as cstructs ([leq] both ways), not as sequences. *)

  val pp : (Format.formatter -> C.t -> unit) -> Format.formatter -> t -> unit
end
