module type COMMAND = sig
  type t

  val id : t -> string

  val commutes : t -> t -> bool
end

module Make (C : COMMAND) = struct
  type t = C.t list (* append order *)

  let empty = []

  let mem t id = List.exists (fun c -> String.equal (C.id c) id) t

  let find t id = List.find_opt (fun c -> String.equal (C.id c) id) t

  let append t c = if mem t (C.id c) then t else t @ [ c ]

  let to_list t = t

  let size = List.length

  (* Position of every command id in a sequence, for order checks. *)
  let positions t =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i c -> Hashtbl.replace tbl (C.id c) i) t;
    tbl

  let ordered_pairs t =
    (* All (x, y) with x strictly before y. *)
    let rec walk acc = function
      | [] -> acc
      | x :: tl -> walk (List.fold_left (fun acc y -> (x, y) :: acc) acc tl) tl
    in
    walk [] t

  let leq a b =
    let pos_b = positions b in
    List.for_all (fun c -> Hashtbl.mem pos_b (C.id c)) a
    && List.for_all
         (fun (x, y) ->
           C.commutes x y
           || Hashtbl.find pos_b (C.id x) < Hashtbl.find pos_b (C.id y))
         (ordered_pairs a)

  let lub a b =
    let ids_a = positions a in
    let extra = List.filter (fun c -> not (Hashtbl.mem ids_a (C.id c))) b in
    let candidate = a @ extra in
    if leq a candidate && leq b candidate then Some candidate else None

  let compatible a b = Option.is_some (lub a b)

  let glb a b =
    let pos_b = positions b in
    let keep acc c =
      match Hashtbl.find_opt pos_b (C.id c) with
      | None -> acc
      | Some pb ->
        (* Keep c only if it does not contradict b's ordering w.r.t. the
           non-commuting commands already kept. *)
        let ok =
          List.for_all
            (fun kept ->
              C.commutes kept c || Hashtbl.find pos_b (C.id kept) < pb)
            acc
        in
        if ok then acc @ [ c ] else acc
    in
    List.fold_left keep [] a

  let equal a b = leq a b && leq b a

  let pp pp_cmd ppf t =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_cmd)
      t
end
