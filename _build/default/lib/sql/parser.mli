(** Parser for the SQL-like language.

    A hand-rolled tokenizer and recursive-descent parser — small enough to
    read in one sitting, with error messages that carry the offending
    token.  Keywords are case-insensitive; identifiers are
    [\[A-Za-z_\]\[A-Za-z0-9_-\]*]; strings use single quotes; statements are
    separated by [;]. *)

type error = { position : int; message : string }

val parse_statement : string -> (Ast.statement, error) result
(** Parse exactly one statement. *)

val parse_script : string -> (Ast.statement list, error) result
(** Parse a [;]-separated sequence of statements (trailing [;] allowed). *)

val pp_error : Format.formatter -> error -> unit
