(** Abstract syntax of the SQL-like language.

    The paper implements TPC-W's web interactions "using our own SQL-like
    language" on top of the record manager (§5.1).  This is that language:
    single-record statements addressed by primary key, with arithmetic
    [SET attr = attr +/- n] assignments recognized as commutative delta
    updates (the only kind MDCC can run through Generalized Paxos), plus
    [BEGIN]/[COMMIT] bracketing to group statements into one atomic
    transaction. *)

type literal = Int of int | Str of string

type assignment =
  | Set of string * literal  (** [attr = 42] / [attr = 'x'] — absolute *)
  | Add of string * int
      (** [attr = attr + n] / [attr = attr - n] — commutative delta *)

type statement =
  | Select of { table : string; id : string }
      (** [SELECT * FROM table WHERE id = 'k'] *)
  | Select_all of { table : string; order_by : string option; limit : int }
      (** [SELECT * FROM table \[ORDER BY attr\] \[LIMIT n\]] — a local scan
          (TPC-W's best-sellers/search style reads); [ORDER BY] sorts
          descending on an integer attribute; default limit 50 *)
  | Insert of { table : string; id : string; columns : (string * literal) list }
      (** [INSERT INTO table (id, a, b) VALUES ('k', 1, 'x')] *)
  | Update of { table : string; id : string; assignments : assignment list }
      (** [UPDATE table SET a = 1, s = s - 2 WHERE id = 'k'] *)
  | Delete of { table : string; id : string }  (** [DELETE FROM table WHERE id = 'k'] *)
  | Begin
  | Commit

val key_of : table:string -> id:string -> Mdcc_storage.Key.t

val is_commutative : assignment list -> bool
(** All assignments are [Add]s — the update can travel as a delta option. *)

val pp_literal : Format.formatter -> literal -> unit

val pp_statement : Format.formatter -> statement -> unit
